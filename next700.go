// Package next700 is a composable in-memory transaction processing engine:
// a library in which a concrete engine is assembled from orthogonal design
// choices — concurrency-control protocol, index family, durability scheme,
// and partitioning — rather than built as a monolith. It reproduces, as a
// working system, the design space surveyed in Ailamaki's SIGMOD 2017
// keynote "The Next 700 Transaction Processing Engines".
//
// # Quickstart
//
//	db, err := next700.Open(next700.Options{Protocol: next700.Silo, Threads: 4})
//	if err != nil { ... }
//	defer db.Close()
//
//	schema := next700.MustSchema("accounts", next700.I64("balance"))
//	accounts, err := db.CreateTable(schema, next700.IndexHash)
//	// load initial data single-threaded:
//	row := schema.NewRow()
//	schema.SetInt64(row, 0, 100)
//	db.Load(accounts, 1, row)
//
//	tx := db.NewTx(0, 42) // worker slot 0, rng seed 42
//	err = tx.Run(func(tx *next700.Tx) error {
//	    row, err := tx.Update(accounts, 1)
//	    if err != nil { return err }
//	    schema.SetInt64(row, 0, schema.GetInt64(row, 0)+10)
//	    return nil
//	})
//
// Transactions are retried automatically on serialization conflicts; bodies
// must therefore be idempotent up to their writes (the standard
// optimistic-retry contract). Each Tx context is bound to a worker slot and
// must be used by one goroutine at a time.
//
// Sub-packages: next700/bench exposes the standard workloads (YCSB, TPC-C,
// SmallBank) and the measurement harness; next700/simulate exposes the
// deterministic many-core simulator.
package next700

import (
	"os"
	"time"

	"next700/internal/core"
	"next700/internal/storage"
	"next700/internal/txn"
	"next700/internal/wal"
)

// Protocol names accepted in Options.Protocol.
const (
	// NoWait is two-phase locking that aborts immediately on conflict.
	NoWait = "NO_WAIT"
	// WaitDie is two-phase locking with age-based wait/abort.
	WaitDie = "WAIT_DIE"
	// DLDetect is two-phase locking with waits-for deadlock detection.
	DLDetect = "DL_DETECT"
	// Timestamp is basic timestamp ordering.
	Timestamp = "TIMESTAMP"
	// MVCC is multi-version timestamp ordering with version chains.
	MVCC = "MVCC"
	// Silo is epoch-based optimistic concurrency control.
	Silo = "SILO"
	// TicToc is timestamp-computation OCC with read-timestamp extension.
	TicToc = "TICTOC"
	// HStore is partition-level locking.
	HStore = "HSTORE"
)

// Protocols lists every available concurrency-control protocol.
func Protocols() []string {
	return []string{NoWait, WaitDie, DLDetect, Timestamp, MVCC, Silo, TicToc, HStore}
}

// Isolation levels for the MVCC protocol.
const (
	// Serializable is full serializability (default for every protocol).
	Serializable = "serializable"
	// Snapshot is snapshot isolation (MVCC only).
	Snapshot = "snapshot"
	// ReadCommitted reads the latest committed version (MVCC only).
	ReadCommitted = "read-committed"
)

// Index kinds.
const (
	// IndexHash is a partitioned hash index (point lookups).
	IndexHash = core.IndexHash
	// IndexBTree is a concurrent B+ tree (point lookups and range scans).
	IndexBTree = core.IndexBTree
)

// Logging modes.
const (
	// LogNone disables durability.
	LogNone = wal.ModeNone
	// LogValue logs after-images of every mutated record (redo logging).
	LogValue = wal.ModeValue
	// LogCommand logs stored-procedure invocations (command logging);
	// requires Tx.RunProc.
	LogCommand = wal.ModeCommand
)

// Error sentinels returned by transaction operations. Test with errors.Is.
var (
	// ErrNotFound reports a missing key.
	ErrNotFound = txn.ErrNotFound
	// ErrDuplicate reports an insert of an existing key.
	ErrDuplicate = txn.ErrDuplicate
	// ErrUserAbort aborts the transaction without retry when returned from
	// a transaction body.
	ErrUserAbort = txn.ErrUserAbort
	// ErrConflict is the retryable serialization failure (normally handled
	// internally by Tx.Run).
	ErrConflict = txn.ErrConflict
	// ErrDeadlineExceeded is the terminal deadline abort class returned by
	// Tx.Run when a transaction's deadline (Tx.SetDeadline and friends)
	// expires while queued, blocked on a lock, backing off between
	// retries, or waiting for log durability.
	ErrDeadlineExceeded = txn.ErrDeadlineExceeded
)

// Core data types, re-exported from the engine kernel.
type (
	// DB is an open engine instance.
	DB struct {
		*core.Engine
		logFile *os.File
	}
	// Tx is a worker-bound transaction context.
	Tx = core.Tx
	// Table is a table handle.
	Table = core.Table
	// Schema describes a table's columns and row layout.
	Schema = storage.Schema
	// Column describes one schema column.
	Column = storage.Column
	// Row is a fixed-width row image.
	Row = storage.Row
	// IndexKind selects hash or B+ tree indexing.
	IndexKind = core.IndexKind
	// LogMode selects the durability scheme.
	LogMode = wal.Mode
	// RecoveryStats reports what DB.Recover replayed.
	RecoveryStats = core.RecoveryStats
)

// Schema construction helpers.
var (
	// NewSchema builds a schema from columns.
	NewSchema = storage.NewSchema
	// MustSchema is NewSchema that panics on error.
	MustSchema = storage.MustSchema
	// I64 declares an int64 column.
	I64 = storage.I64
	// F64 declares a float64 column.
	F64 = storage.F64
	// Str declares a fixed-capacity string column.
	Str = storage.Str
)

// Options configures an engine instance. The zero value is a usable
// single-threaded SILO engine without durability.
type Options struct {
	// Protocol is the concurrency-control scheme (see Protocols). Default
	// Silo.
	Protocol string
	// Threads is the number of worker slots. NewTx thread ids must stay
	// below it. Default 1.
	Threads int
	// Partitions is the partition count used by HStore and by workload
	// partitioning. Default Threads.
	Partitions int
	// Isolation tunes MVCC (Serializable, Snapshot, ReadCommitted).
	Isolation string
	// Logging selects durability; LogValue and LogCommand require LogPath.
	Logging LogMode
	// LogPath is the WAL file path (created/appended).
	LogPath string
	// GroupCommitWindow batches log syncs across concurrent commits; zero
	// syncs on every commit.
	GroupCommitWindow time.Duration
}

// Open builds an engine instance.
func Open(opts Options) (*DB, error) {
	cfg := core.Config{
		Protocol:          opts.Protocol,
		Threads:           opts.Threads,
		Partitions:        opts.Partitions,
		Isolation:         opts.Isolation,
		LogMode:           opts.Logging,
		GroupCommitWindow: opts.GroupCommitWindow,
	}
	var logFile *os.File
	if opts.Logging != LogNone && opts.LogPath != "" {
		f, err := os.OpenFile(opts.LogPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		cfg.LogDevice = f
		logFile = f
	}
	eng, err := core.Open(cfg)
	if err != nil {
		if logFile != nil {
			logFile.Close()
		}
		return nil, err
	}
	return &DB{Engine: eng, logFile: logFile}, nil
}

// Close shuts the engine down and closes the log file.
func (db *DB) Close() error {
	err := db.Engine.Close()
	if db.logFile != nil {
		if cerr := db.logFile.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// RecoverFromFile replays a WAL file into a freshly loaded engine (see
// core.Engine.Recover for the contract).
func (db *DB) RecoverFromFile(path string) (RecoveryStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return RecoveryStats{}, err
	}
	defer f.Close()
	return db.Engine.Recover(f)
}

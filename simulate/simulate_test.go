package simulate_test

import (
	"testing"

	"next700/simulate"
)

func TestRunDeterministic(t *testing.T) {
	cfg := simulate.Config{
		Protocol: "TICTOC", Cores: 16, Records: 1 << 12, Theta: 0.7,
		OpsPerTxn: 8, WriteRatio: 0.5, Horizon: 200_000, Seed: 3,
	}
	a, err := simulate.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := simulate.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Commits == 0 || a.Commits != b.Commits || a.Aborts != b.Aborts {
		t.Fatalf("nondeterministic or empty: %+v vs %+v", a, b)
	}
}

func TestDefaultCosts(t *testing.T) {
	c := simulate.DefaultCosts()
	if c.Access == 0 || c.TsAlloc == 0 {
		t.Fatalf("zeroed defaults: %+v", c)
	}
}

// Package simulate exposes the deterministic many-core discrete-event
// simulator used for the scalability-to-1024-cores and GC-free tail-latency
// experiments. See the internal/sim package documentation for the cost
// model and the per-protocol behavioral models.
package simulate

import "next700/internal/sim"

// Re-exported simulator types.
type (
	// Config describes one simulated run.
	Config = sim.Config
	// CostModel holds per-operation cycle costs.
	CostModel = sim.CostModel
	// Result summarizes one run.
	Result = sim.Result
)

// Functions.
var (
	// Run executes a simulation to completion.
	Run = sim.Run
	// DefaultCosts returns the standard cost model.
	DefaultCosts = sim.DefaultCosts
)

package next700_test

import (
	"bytes"
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"next700"
)

func TestPublicAPIQuickstart(t *testing.T) {
	db, err := next700.Open(next700.Options{Protocol: next700.Silo, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	schema := next700.MustSchema("accounts", next700.I64("balance"))
	accounts, err := db.CreateTable(schema, next700.IndexHash)
	if err != nil {
		t.Fatal(err)
	}
	row := schema.NewRow()
	for k := uint64(0); k < 10; k++ {
		schema.SetInt64(row, 0, 100)
		if err := db.Load(accounts, k, row); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tx := db.NewTx(w, uint64(w+1))
			for i := 0; i < 100; i++ {
				if err := tx.Run(func(tx *next700.Tx) error {
					r, err := tx.Update(accounts, uint64(i%10))
					if err != nil {
						return err
					}
					schema.SetInt64(r, 0, schema.GetInt64(r, 0)+1)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	tx := db.NewTx(0, 99)
	var total int64
	if err := tx.Run(func(tx *next700.Tx) error {
		total = 0
		for k := uint64(0); k < 10; k++ {
			r, err := tx.Read(accounts, k)
			if err != nil {
				return err
			}
			total += schema.GetInt64(r, 0)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if total != 10*100+400 {
		t.Fatalf("total %d want %d", total, 10*100+400)
	}
}

func TestPublicAPIAllProtocols(t *testing.T) {
	for _, p := range next700.Protocols() {
		t.Run(p, func(t *testing.T) {
			db, err := next700.Open(next700.Options{Protocol: p, Threads: 2, Partitions: 2})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			schema := next700.MustSchema("t", next700.I64("v"), next700.Str("s", 8))
			tbl, err := db.CreateTable(schema, next700.IndexBTree)
			if err != nil {
				t.Fatal(err)
			}
			row := schema.NewRow()
			for k := uint64(0); k < 50; k++ {
				schema.SetInt64(row, 0, int64(k))
				schema.SetString(row, 1, []byte("x"))
				if err := db.Load(tbl, k, row); err != nil {
					t.Fatal(err)
				}
			}
			tx := db.NewTx(0, 7)
			// Insert, scan, delete through the public surface.
			if err := tx.Run(func(tx *next700.Tx) error {
				schema.SetInt64(row, 0, 999)
				return tx.Insert(tbl, 100, row)
			}); err != nil {
				t.Fatal(err)
			}
			if err := tx.Run(func(tx *next700.Tx) error {
				n := 0
				err := tx.Scan(tbl, 40, 200, func(k uint64, r next700.Row) bool {
					n++
					return true
				})
				if n != 11 { // 40..49 plus 100
					t.Fatalf("scanned %d", n)
				}
				return err
			}); err != nil {
				t.Fatal(err)
			}
			if err := tx.Run(func(tx *next700.Tx) error { return tx.Delete(tbl, 100) }); err != nil {
				t.Fatal(err)
			}
			err = tx.Run(func(tx *next700.Tx) error {
				_, err := tx.Read(tbl, 100)
				return err
			})
			if !errors.Is(err, next700.ErrNotFound) {
				t.Fatalf("deleted read: %v", err)
			}
		})
	}
}

func TestPublicAPIDurabilityRoundTrip(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "wal.log")

	build := func() (*next700.DB, *next700.Table, *next700.Schema) {
		db, err := next700.Open(next700.Options{
			Protocol: next700.NoWait, Threads: 1,
			Logging: next700.LogValue, LogPath: logPath,
		})
		if err != nil {
			t.Fatal(err)
		}
		schema := next700.MustSchema("kv", next700.I64("v"))
		tbl, err := db.CreateTable(schema, next700.IndexHash)
		if err != nil {
			t.Fatal(err)
		}
		row := schema.NewRow()
		for k := uint64(0); k < 5; k++ {
			if err := db.Load(tbl, k, row); err != nil {
				t.Fatal(err)
			}
		}
		return db, tbl, schema
	}

	db, tbl, schema := build()
	tx := db.NewTx(0, 1)
	for i := 0; i < 5; i++ {
		if err := tx.Run(func(tx *next700.Tx) error {
			r, err := tx.Update(tbl, uint64(i))
			if err != nil {
				return err
			}
			schema.SetInt64(r, 0, int64(1000+i))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// "Crash" and recover into a rebuilt engine. Use a fresh log path for
	// the new instance so the old log is replayed, not appended.
	old := logPath
	logPath = filepath.Join(dir, "wal2.log")
	db2, tbl2, schema2 := build()
	defer db2.Close()
	st, err := db2.RecoverFromFile(old)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 5 {
		t.Fatalf("recovered %d records", st.Records)
	}
	tx2 := db2.NewTx(0, 2)
	if err := tx2.Run(func(tx *next700.Tx) error {
		for i := 0; i < 5; i++ {
			r, err := tx.Read(tbl2, uint64(i))
			if err != nil {
				return err
			}
			if schema2.GetInt64(r, 0) != int64(1000+i) {
				t.Fatalf("key %d = %d", i, schema2.GetInt64(r, 0))
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := next700.Open(next700.Options{Protocol: "NOPE"}); err == nil {
		t.Fatal("bad protocol accepted")
	}
	if _, err := next700.Open(next700.Options{Logging: next700.LogValue}); err == nil {
		t.Fatal("logging without path accepted")
	}
	if _, err := next700.Open(next700.Options{
		Logging: next700.LogValue, LogPath: "/nonexistent-dir-xyz/wal.log",
	}); err == nil {
		t.Fatal("unwritable log path accepted")
	}
}

func TestPublicAPICheckpoint(t *testing.T) {
	db, err := next700.Open(next700.Options{Protocol: next700.MVCC, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	schema := next700.MustSchema("kv", next700.I64("v"))
	tbl, err := db.CreateTable(schema, next700.IndexBTree)
	if err != nil {
		t.Fatal(err)
	}
	row := schema.NewRow()
	for k := uint64(0); k < 100; k++ {
		schema.SetInt64(row, 0, int64(k*3))
		if err := db.Load(tbl, k, row); err != nil {
			t.Fatal(err)
		}
	}
	var snap bytes.Buffer
	if err := db.Checkpoint(&snap); err != nil {
		t.Fatal(err)
	}

	db2, err := next700.Open(next700.Options{Protocol: next700.MVCC, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2, err := db2.CreateTable(schema, next700.IndexBTree)
	if err != nil {
		t.Fatal(err)
	}
	if err := db2.LoadCheckpoint(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	tx := db2.NewTx(0, 1)
	if err := tx.Run(func(tx *next700.Tx) error {
		n := 0
		err := tx.Scan(tbl2, 0, 1000, func(k uint64, r next700.Row) bool {
			if schema.GetInt64(r, 0) != int64(k*3) {
				t.Fatalf("key %d value %d", k, schema.GetInt64(r, 0))
			}
			n++
			return true
		})
		if n != 100 {
			t.Fatalf("restored %d rows", n)
		}
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

package bench

import (
	"testing"

	"next700/internal/core"
	"next700/internal/workload"
)

// BenchmarkTxnAllocs reports the steady-state per-transaction cost of the
// full hot path (begin → 8 accesses → validate → commit) for each
// protocol, one worker, no contention. Run with -benchmem; the allocs/op
// column is the number the allocation gate (TestTxnAllocBudgets) pins.
//
//	go test ./bench -run=NONE -bench=BenchmarkTxnAllocs -benchmem
func BenchmarkTxnAllocs(b *testing.B) {
	for _, proto := range []string{"SILO", "TICTOC", "MVCC", "NO_WAIT", "TIMESTAMP", "HSTORE"} {
		for _, mix := range []struct {
			name      string
			readRatio float64
		}{
			{"ReadOnly", 1},
			{"Update50", 0.5},
		} {
			b.Run(proto+"/"+mix.name, func(b *testing.B) {
				e, err := core.Open(core.Config{Protocol: proto, Threads: 1, Partitions: 1})
				if err != nil {
					b.Fatal(err)
				}
				defer e.Close()
				wl := workload.NewYCSB(workload.YCSBConfig{
					Records: 1024, OpsPerTxn: 8, ReadRatio: mix.readRatio, MaxThreads: 1,
				})
				if err := wl.Setup(e); err != nil {
					b.Fatal(err)
				}
				tx := e.NewTx(0, 42)
				for i := 0; i < allocGateWarmup; i++ {
					if err := wl.RunOne(tx); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := wl.RunOne(tx); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

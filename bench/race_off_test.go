//go:build !race

package bench

// raceEnabled reports whether the race detector is compiled in; the
// allocation gate is skipped under -race because instrumentation changes
// heap accounting.
const raceEnabled = false

// Package bench exposes the standard OLTP workloads (YCSB, TPC-C,
// SmallBank) and the measurement harness that drives them against an
// engine configuration — the public face of the repository's experiment
// machinery.
package bench

import (
	"time"

	"next700/internal/core"
	"next700/internal/harness"
	"next700/internal/wal"
	"next700/internal/workload"
)

// Re-exported workload types and constructors.
type (
	// Workload is the interface the harness drives.
	Workload = workload.Workload
	// YCSB is the skewable key-value microbenchmark.
	YCSB = workload.YCSB
	// YCSBConfig parameterizes YCSB.
	YCSBConfig = workload.YCSBConfig
	// TPCC is the TPC-C order-entry benchmark.
	TPCC = workload.TPCC
	// TPCCConfig parameterizes TPC-C.
	TPCCConfig = workload.TPCCConfig
	// SmallBank is the six-procedure banking benchmark.
	SmallBank = workload.SmallBank
	// SmallBankConfig parameterizes SmallBank.
	SmallBankConfig = workload.SmallBankConfig
	// Result is one measurement row.
	Result = harness.Result
	// RunOptions controls a measurement run.
	RunOptions = harness.RunOptions
)

// Workload constructors.
var (
	// NewYCSB builds a YCSB workload.
	NewYCSB = workload.NewYCSB
	// NewTPCC builds a TPC-C workload.
	NewTPCC = workload.NewTPCC
	// NewSmallBank builds a SmallBank workload.
	NewSmallBank = workload.NewSmallBank
	// NewWorkload builds a default-configured workload by name
	// ("ycsb", "tpcc", "smallbank").
	NewWorkload = workload.New
)

// EngineConfig selects the engine design point for a measurement.
type EngineConfig struct {
	// Protocol is the concurrency-control scheme.
	Protocol string
	// Threads is the worker count.
	Threads int
	// Partitions is the partition count.
	Partitions int
	// Isolation tunes MVCC.
	Isolation string
	// LogMode and LogPath enable durability.
	LogMode wal.Mode
	// LogPath is the WAL file (temp file recommended for benchmarks).
	LogPath string
	// GroupCommitWindow batches log syncs.
	GroupCommitWindow time.Duration
}

// Run measures one (engine, workload) combination: it opens a fresh engine,
// loads the workload, drives it per opts, closes the engine, and returns
// the result.
func Run(cfg EngineConfig, wl Workload, opts RunOptions) (Result, error) {
	c := core.Config{
		Protocol:          cfg.Protocol,
		Threads:           cfg.Threads,
		Partitions:        cfg.Partitions,
		Isolation:         cfg.Isolation,
		LogMode:           cfg.LogMode,
		GroupCommitWindow: cfg.GroupCommitWindow,
	}
	if cfg.LogMode != wal.ModeNone && cfg.LogPath != "" {
		f, err := openLog(cfg.LogPath)
		if err != nil {
			return Result{}, err
		}
		defer f.Close()
		c.LogDevice = f
	}
	return harness.Run(c, wl, opts)
}

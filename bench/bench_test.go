package bench_test

import (
	"path/filepath"
	"testing"

	"next700"
	"next700/bench"
)

func TestRunYCSB(t *testing.T) {
	wl := bench.NewYCSB(bench.YCSBConfig{Records: 1024, OpsPerTxn: 4})
	res, err := bench.Run(bench.EngineConfig{Protocol: "SILO", Threads: 2}, wl,
		bench.RunOptions{Threads: 2, TxnsPerWorker: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits != 100 || res.Tps <= 0 {
		t.Fatalf("bad result: %+v", res)
	}
}

func TestRunWithLogPath(t *testing.T) {
	wl := bench.NewYCSB(bench.YCSBConfig{Records: 512, OpsPerTxn: 2})
	res, err := bench.Run(bench.EngineConfig{
		Protocol: "NO_WAIT", Threads: 1,
		LogMode: next700.LogValue,
		LogPath: filepath.Join(t.TempDir(), "w.log"),
	}, wl, bench.RunOptions{Threads: 1, TxnsPerWorker: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits != 20 {
		t.Fatalf("commits %d", res.Commits)
	}
}

func TestNewWorkloadNames(t *testing.T) {
	for _, name := range []string{"ycsb", "tpcc", "smallbank"} {
		wl, err := bench.NewWorkload(name)
		if err != nil || wl.Name() != name {
			t.Fatalf("NewWorkload(%q): %v", name, err)
		}
	}
}

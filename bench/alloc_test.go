package bench

import (
	"testing"
	"time"

	"next700/internal/cc"
	"next700/internal/core"
	"next700/internal/det"
	"next700/internal/fault"
	"next700/internal/storage"
	"next700/internal/wal"
	"next700/internal/workload"
)

// discardDev is an allocation-free WAL device for the allocation gate: the
// gate measures the engine's logging path, not the OS write path.
type discardDev struct{}

func (discardDev) Write(p []byte) (int, error) { return len(p), nil }
func (discardDev) Sync() error                 { return nil }

// allocGateWarmup transactions run before measurement so every record's
// lazily created per-record state (lock-reader slices, MVCC freelists,
// protocol metadata chunks) and every Tx-retained buffer reaches steady
// state. With 256 records and 8 uniform accesses per transaction, 2000
// warmup transactions touch every key with overwhelming probability.
const allocGateWarmup = 2000

// readOnlyYCSBAllocs measures steady-state heap allocations per read-only
// YCSB transaction on one worker.
func readOnlyYCSBAllocs(t *testing.T, protocol string) float64 {
	t.Helper()
	e, err := core.Open(core.Config{Protocol: protocol, Threads: 1, Partitions: 1})
	if err != nil {
		t.Fatalf("open %s: %v", protocol, err)
	}
	defer e.Close()
	wl := workload.NewYCSB(workload.YCSBConfig{
		Records: 256, OpsPerTxn: 8, ReadRatio: 1, MaxThreads: 1,
	})
	if err := wl.Setup(e); err != nil {
		t.Fatalf("setup: %v", err)
	}
	tx := e.NewTx(0, 7)
	for i := 0; i < allocGateWarmup; i++ {
		if err := wl.RunOne(tx); err != nil {
			t.Fatalf("warmup txn: %v", err)
		}
	}
	return testing.AllocsPerRun(200, func() {
		if err := wl.RunOne(tx); err != nil {
			t.Fatalf("measured txn: %v", err)
		}
	})
}

// updateTxnAllocs measures steady-state heap allocations per transaction
// for a fixed 8-update transaction (every record pre-touched, so only the
// inherent per-commit cost of the protocol and log mode remains).
func updateTxnAllocs(t *testing.T, protocol string, logMode wal.Mode, streams int) float64 {
	t.Helper()
	cfg := core.Config{Protocol: protocol, Threads: 1, Partitions: 1, LogMode: logMode}
	switch {
	case streams > 1:
		cfg.WALStreams = streams
		cfg.LogDevices = make([]wal.Device, streams)
		for i := range cfg.LogDevices {
			cfg.LogDevices[i] = discardDev{}
		}
	case logMode != wal.ModeNone:
		cfg.LogDevice = discardDev{}
	}
	e, err := core.Open(cfg)
	if err != nil {
		t.Fatalf("open %s: %v", protocol, err)
	}
	defer e.Close()
	sch, err := storage.NewSchema("gate", storage.I64("v"))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := e.CreateTable(sch, core.IndexHash)
	if err != nil {
		t.Fatal(err)
	}
	row := sch.NewRow()
	const keys = 8
	for k := uint64(0); k < keys; k++ {
		if err := e.Load(tbl, k, row); err != nil {
			t.Fatal(err)
		}
	}
	tx := e.NewTx(0, 1)
	body := func(tx *core.Tx) error {
		for k := uint64(0); k < keys; k++ {
			r, err := tx.Update(tbl, k)
			if err != nil {
				return err
			}
			sch.SetInt64(r, 0, sch.GetInt64(r, 0)+1)
		}
		return nil
	}
	for i := 0; i < 300; i++ {
		if err := tx.Run(body); err != nil {
			t.Fatalf("warmup txn: %v", err)
		}
	}
	return testing.AllocsPerRun(200, func() {
		if err := tx.Run(body); err != nil {
			t.Fatalf("measured txn: %v", err)
		}
	})
}

// updateTxnAllocsPartitionWAL measures the 8-update transaction on a
// partition-affinity engine: the keys span all four partitions, so every
// commit takes the multi-stream path — quarantine gate on each op, stream
// collection, replicated AppendMulti, multi-stream durability wait.
func updateTxnAllocsPartitionWAL(t *testing.T) float64 {
	t.Helper()
	const parts = 4
	cfg := core.Config{
		Protocol: "SILO", Threads: 1, Partitions: parts,
		LogMode: wal.ModeValue, WALStreams: parts, PartitionWAL: true,
		LogDevices: make([]wal.Device, parts),
	}
	for i := range cfg.LogDevices {
		cfg.LogDevices[i] = discardDev{}
	}
	e, err := core.Open(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer e.Close()
	sch, err := storage.NewSchema("gate", storage.I64("v"))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := e.CreateTable(sch, core.IndexHash)
	if err != nil {
		t.Fatal(err)
	}
	row := sch.NewRow()
	const keys = 8
	for k := uint64(0); k < keys; k++ {
		if err := e.Load(tbl, k, row); err != nil {
			t.Fatal(err)
		}
	}
	tx := e.NewTx(0, 1)
	body := func(tx *core.Tx) error {
		for k := uint64(0); k < keys; k++ {
			r, err := tx.Update(tbl, k)
			if err != nil {
				return err
			}
			sch.SetInt64(r, 0, sch.GetInt64(r, 0)+1)
		}
		return nil
	}
	for i := 0; i < 300; i++ {
		if err := tx.Run(body); err != nil {
			t.Fatalf("warmup txn: %v", err)
		}
	}
	return testing.AllocsPerRun(200, func() {
		if err := tx.Run(body); err != nil {
			t.Fatalf("measured txn: %v", err)
		}
	})
}

// updateTxnAllocsCheckpointed measures the 8-update transaction with the
// engine logging into a checkpoint store and a checkpointer attached: the
// background loop is alive and checkpoint generations (scan, segment
// rotation, truncation) are taken between batches. AllocsPerRun counts
// process-global mallocs, so cycles run outside the measured window — what
// the measurement sees is the fenced commit path they leave behind, which
// must cost exactly what the plain parallel-WAL path costs.
func updateTxnAllocsCheckpointed(t *testing.T) float64 {
	t.Helper()
	store := fault.NewMemStore(fault.StoreChaos{})
	att, err := core.InitCheckpointLog(store, 2, wal.ModeValue)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.Open(core.Config{
		Protocol: "SILO", Threads: 1, Partitions: 1,
		LogMode: wal.ModeValue, WALStreams: 2, LogDevices: att.Devices,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	sch, err := storage.NewSchema("gate", storage.I64("v"))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := e.CreateTable(sch, core.IndexHash)
	if err != nil {
		t.Fatal(err)
	}
	row := sch.NewRow()
	const keys = 8
	for k := uint64(0); k < keys; k++ {
		if err := e.Load(tbl, k, row); err != nil {
			t.Fatal(err)
		}
	}
	ck, err := e.NewCheckpointer(store, 2, att.Devices)
	if err != nil {
		t.Fatal(err)
	}
	ck.Start(time.Hour) // loop alive; cycles are triggered explicitly below
	defer ck.Stop()     // LIFO: stops before the deferred engine Close
	tx := e.NewTx(0, 1)
	body := func(tx *core.Tx) error {
		for k := uint64(0); k < keys; k++ {
			r, err := tx.Update(tbl, k)
			if err != nil {
				return err
			}
			sch.SetInt64(r, 0, sch.GetInt64(r, 0)+1)
		}
		return nil
	}
	for i := 0; i < 300; i++ {
		if err := tx.Run(body); err != nil {
			t.Fatalf("warmup txn: %v", err)
		}
		if i%100 == 99 {
			if err := ck.CheckpointNow(); err != nil {
				t.Fatalf("checkpoint cycle: %v", err)
			}
		}
	}
	if cy := ck.Stats().Cycles; cy != 3 {
		t.Fatalf("expected 3 checkpoint cycles before measurement, got %d", cy)
	}
	return testing.AllocsPerRun(200, func() {
		if err := tx.Run(body); err != nil {
			t.Fatalf("measured txn: %v", err)
		}
	})
}

// detBatchAllocs measures steady-state heap allocations per transaction for
// queue-oriented deterministic execution: plan a fixed batch of 2-update
// transactions, execute it through the DetExecutor, repeat. At steady state
// the planner scratch (queues, homes, mailboxes), the TxnPlan slate, and
// the per-partition descriptors are all reused, so the whole
// plan-execute-seal cycle must be allocation-free per transaction.
func detBatchAllocs(t *testing.T, streams int) float64 {
	t.Helper()
	const parts = 2
	cfg := core.Config{Protocol: "QSTORE", Threads: parts, Partitions: parts}
	if streams > 1 {
		cfg.LogMode = wal.ModeValue
		cfg.WALStreams = streams
		cfg.LogDevices = make([]wal.Device, streams)
		for i := range cfg.LogDevices {
			cfg.LogDevices[i] = discardDev{}
		}
	}
	e, err := core.Open(cfg)
	if err != nil {
		t.Fatalf("open QSTORE: %v", err)
	}
	defer e.Close()
	sch, err := storage.NewSchema("gate", storage.I64("v"))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := e.CreateTable(sch, core.IndexHash)
	if err != nil {
		t.Fatal(err)
	}
	row := sch.NewRow()
	const keys = 16
	for k := uint64(0); k < keys; k++ {
		if err := e.Load(tbl, k, row); err != nil {
			t.Fatal(err)
		}
	}
	x, err := core.NewDetExecutor(e, func(tx *core.Tx, op det.Op, mb *det.Mailbox) error {
		r, err := tx.Update(tbl, op.Key)
		if err != nil {
			return err
		}
		sch.SetInt64(r, 0, sch.GetInt64(r, 0)+1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	pl := det.NewPlanner(parts, nil)
	const batchTxns = 16
	txns := make([]det.TxnPlan, batchTxns)
	runBatch := func() {
		for i := range txns {
			txns[i].Reset()
			txns[i].Add(det.OpUpdate, 0, uint64(i*3%keys), 1)
			txns[i].Add(det.OpUpdate, 0, uint64((i*5+1)%keys), 1)
		}
		if _, err := x.ExecuteBatch(pl.PlanBatch(txns)); err != nil {
			t.Fatalf("batch: %v", err)
		}
	}
	for i := 0; i < 50; i++ {
		runBatch()
	}
	return testing.AllocsPerRun(100, runBatch) / batchTxns
}

// TestTxnAllocBudgets is the allocation-regression gate: the steady-state
// transaction path must stay within small fixed allocation budgets per
// protocol (see EXPERIMENTS.md, "GC and allocation methodology").
//
// Budgets for the 8-update transaction:
//   - SILO installs copy-on-write committed images: 2 heap allocations per
//     written record (image bytes + the escaping slice header), 16 total.
//   - MVCC recycles pruned version nodes and their buffers, so the steady
//     state is allocation-free.
//   - Every other protocol installs in place from the Tx arena: 0.
//
// Value logging must add nothing: commit records, entry slices, encode
// buffers, and the group-commit batch are all reused.
func TestTxnAllocBudgets(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is distorted by the race detector")
	}
	// A hair of slack absorbs one-off runtime allocations (timer wheel,
	// map growth in the scheduler) that are not per-txn costs.
	const slack = 0.1

	t.Run("ReadOnlyYCSB", func(t *testing.T) {
		for _, proto := range cc.Names() {
			got := readOnlyYCSBAllocs(t, proto)
			if got > slack {
				t.Errorf("%s: %.2f allocs per read-only txn, want 0", proto, got)
			}
		}
	})

	budgets := map[string]float64{
		"SILO":      16, // 2 per written record (COW committed image)
		"TICTOC":    0,
		"MVCC":      0, // version nodes recycled via per-record freelist
		"TIMESTAMP": 0,
		"NO_WAIT":   0,
		"WAIT_DIE":  0,
		"DL_DETECT": 0,
		"HSTORE":    0,
	}
	t.Run("Update", func(t *testing.T) {
		for _, proto := range cc.Names() {
			got := updateTxnAllocs(t, proto, wal.ModeNone, 1)
			if got > budgets[proto]+slack {
				t.Errorf("%s: %.2f allocs per 8-update txn, budget %.0f", proto, got, budgets[proto])
			}
		}
	})

	t.Run("UpdateValueLogged", func(t *testing.T) {
		for _, proto := range []string{"SILO", "TICTOC", "NO_WAIT"} {
			got := updateTxnAllocs(t, proto, wal.ModeValue, 1)
			if got > budgets[proto]+slack {
				t.Errorf("%s+value-log: %.2f allocs per 8-update txn, budget %.0f (logging must add none)",
					proto, got, budgets[proto])
			}
		}
	})

	// The parallel WAL's commit path — append to the worker's own stream,
	// wait on the epoch frontier — must hold the same budget as the
	// single-stream writer: the stream buffer is reused ping-pong and the
	// epoch patch happens in place.
	t.Run("UpdateStreamLogged", func(t *testing.T) {
		got := updateTxnAllocs(t, "SILO", wal.ModeValue, 4)
		if got > budgets["SILO"]+slack {
			t.Errorf("SILO+4-stream-log: %.2f allocs per 8-update txn, budget %.0f (parallel WAL must add none)",
				got, budgets["SILO"])
		}
	})

	// Partition-affinity logging adds a quarantine gate per op, partition
	// routing over the write set, and replicated multi-stream appends — all
	// of which must ride the same pre-sized scratch (Tx.streamScratch, the
	// per-stream ping-pong buffers) and so hold the same budget.
	t.Run("UpdatePartitionLogged", func(t *testing.T) {
		got := updateTxnAllocsPartitionWAL(t)
		if got > budgets["SILO"]+slack {
			t.Errorf("SILO+partition-WAL: %.2f allocs per 8-update txn, budget %.0f (partition affinity must add none)",
				got, budgets["SILO"])
		}
	})

	// Deterministic execution's steady state reuses the planner scratch, the
	// TxnPlan slate, and the per-partition descriptors across batches, so the
	// entire plan-execute-seal cycle — with and without the parallel WAL —
	// must be allocation-free per transaction (QSTORE installs in place from
	// the Tx arena, like the locking protocols).
	t.Run("DetBatch", func(t *testing.T) {
		if got := detBatchAllocs(t, 1); got > slack {
			t.Errorf("QSTORE det batch: %.2f allocs per txn, want 0", got)
		}
	})
	t.Run("DetBatchStreamLogged", func(t *testing.T) {
		if got := detBatchAllocs(t, 2); got > slack {
			t.Errorf("QSTORE det batch + 2-stream log: %.2f allocs per txn, want 0 (logging must add none)", got)
		}
	})

	// The checkpoint subsystem must be invisible to the commit hot path:
	// with the engine attached to a checkpoint store, the background
	// checkpointer running, and three generations already taken (so the
	// engine is on rotated segments behind the commit fence), the budget is
	// unchanged.
	t.Run("UpdateWhileCheckpointing", func(t *testing.T) {
		got := updateTxnAllocsCheckpointed(t)
		if got > budgets["SILO"]+slack {
			t.Errorf("SILO+checkpointer: %.2f allocs per 8-update txn, budget %.0f (checkpointing must add none)",
				got, budgets["SILO"])
		}
	})
}

// TestMeasureAllocs exercises the harness-level allocation sampling used by
// next700-bench -allocs.
func TestMeasureAllocs(t *testing.T) {
	res, err := Run(EngineConfig{Protocol: "SILO", Threads: 2},
		NewYCSB(YCSBConfig{Records: 1024, OpsPerTxn: 4, ReadRatio: 1}),
		RunOptions{Threads: 2, TxnsPerWorker: 500, WarmupTxns: 200, Seed: 1, MeasureAllocs: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 {
		t.Fatal("no commits")
	}
	if !raceEnabled && res.AllocsPerTxn > 1.0 {
		t.Errorf("read-only SILO measured %.2f allocs/txn via harness, want ~0", res.AllocsPerTxn)
	}
}

package bench

import "os"

// openLog opens (creating/truncating) a WAL file for a benchmark run.
func openLog(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
}

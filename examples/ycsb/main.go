// YCSB: compare every concurrency-control protocol on the same skewed
// key-value workload — a miniature of the E2 contention experiment.
//
//	go run ./examples/ycsb
package main

import (
	"fmt"
	"log"
	"time"

	"next700"
	"next700/bench"
)

func main() {
	fmt.Println("YCSB, 4 threads, 16 ops/txn, 50/50 read/write, theta=0.9")
	fmt.Printf("%-10s %12s %10s %12s\n", "protocol", "tps", "abort", "p99")
	for _, protocol := range next700.Protocols() {
		wl := bench.NewYCSB(bench.YCSBConfig{
			Records:   64 * 1024,
			OpsPerTxn: 16,
			ReadRatio: 0.5,
			Theta:     0.9,
		})
		res, err := bench.Run(bench.EngineConfig{
			Protocol: protocol,
			Threads:  4,
		}, wl, bench.RunOptions{
			Threads:  4,
			Duration: 300 * time.Millisecond,
			Seed:     42,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12.0f %10.4f %12v\n",
			protocol, res.Tps, res.AbortRate, time.Duration(res.Latency.P99))
	}
}

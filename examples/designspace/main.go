// Designspace: the keynote's thesis in one program. Sweep the simulated
// many-core design space — every concurrency-control protocol from 1 to
// 1024 cores — and watch each design's characteristic failure mode appear:
// DL_DETECT thrashes on its shared waits-for graph, TIMESTAMP and MVCC
// saturate on the central allocator, SILO pays abort storms under skew,
// TICTOC degrades most gracefully, HSTORE is unbeatable until transactions
// cross partitions.
//
//	go run ./examples/designspace
package main

import (
	"fmt"
	"log"

	"next700"
	"next700/simulate"
)

func main() {
	cores := []int{1, 4, 16, 64, 256, 1024}

	for _, theta := range []float64{0.0, 0.8} {
		fmt.Printf("\nsimulated throughput (txns per million cycles), theta=%.1f:\n", theta)
		fmt.Printf("%-10s", "protocol")
		for _, n := range cores {
			fmt.Printf("%10d", n)
		}
		fmt.Println()
		for _, protocol := range next700.Protocols() {
			fmt.Printf("%-10s", protocol)
			for _, n := range cores {
				r, err := simulate.Run(simulate.Config{
					Protocol:   protocol,
					Cores:      n,
					Records:    1 << 16,
					Theta:      theta,
					OpsPerTxn:  16,
					WriteRatio: 0.5,
					Horizon:    500_000,
					Partitions: n,
				})
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("%10.0f", r.Throughput)
			}
			fmt.Println()
		}
	}

	// The H-Store cliff: partition-level locking wins overwhelmingly at 0%
	// multi-partition transactions and collapses as the fraction grows.
	fmt.Println("\nHSTORE vs SILO, 64 cores, by multi-partition fraction:")
	fmt.Printf("%-10s", "protocol")
	fracs := []float64{0, 0.05, 0.1, 0.2, 0.5}
	for _, f := range fracs {
		fmt.Printf("%10.0f%%", f*100)
	}
	fmt.Println()
	for _, protocol := range []string{next700.HStore, next700.Silo} {
		fmt.Printf("%-10s", protocol)
		for _, f := range fracs {
			r, err := simulate.Run(simulate.Config{
				Protocol:               protocol,
				Cores:                  64,
				Records:                1 << 16,
				OpsPerTxn:              16,
				WriteRatio:             0.5,
				Horizon:                500_000,
				Partitions:             64,
				MultiPartitionFraction: f,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%11.0f", r.Throughput)
		}
		fmt.Println()
	}
}

// Banking: concurrent transfers with a conserved-total invariant, durable
// value logging, and crash recovery — the workload pattern the keynote's
// "rich history" engines were built for.
//
//	go run ./examples/banking
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	"next700"
)

const (
	accounts = 64
	initial  = 1_000
	workers  = 4
	transfer = 500 // transfers per worker
)

func openBank(logPath string) (*next700.DB, *next700.Table, *next700.Schema, error) {
	db, err := next700.Open(next700.Options{
		Protocol: next700.WaitDie, // locks + age-based conflict handling
		Threads:  workers,
		Logging:  next700.LogValue,
		LogPath:  logPath,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	schema := next700.MustSchema("accounts", next700.I64("balance"))
	table, err := db.CreateTable(schema, next700.IndexHash)
	if err != nil {
		return nil, nil, nil, err
	}
	row := schema.NewRow()
	for k := uint64(0); k < accounts; k++ {
		schema.SetInt64(row, 0, initial)
		if err := db.Load(table, k, row); err != nil {
			return nil, nil, nil, err
		}
	}
	return db, table, schema, nil
}

func total(db *next700.DB, table *next700.Table, schema *next700.Schema) int64 {
	tx := db.NewTx(0, 999)
	var sum int64
	err := tx.Run(func(tx *next700.Tx) error {
		sum = 0
		for k := uint64(0); k < accounts; k++ {
			r, err := tx.Read(table, k)
			if err != nil {
				return err
			}
			sum += schema.GetInt64(r, 0)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	return sum
}

func main() {
	dir, err := os.MkdirTemp("", "next700-banking")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	logPath := filepath.Join(dir, "bank.wal")

	db, table, schema, err := openBank(logPath)
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tx := db.NewTx(w, uint64(w+1))
			for i := 0; i < transfer; i++ {
				from := tx.RNG().Uint64n(accounts)
				to := tx.RNG().Uint64n(accounts)
				if from == to {
					continue
				}
				amount := int64(tx.RNG().Intn(100) + 1)
				if err := tx.Run(func(tx *next700.Tx) error {
					fr, err := tx.Update(table, from)
					if err != nil {
						return err
					}
					tr, err := tx.Update(table, to)
					if err != nil {
						return err
					}
					schema.SetInt64(fr, 0, schema.GetInt64(fr, 0)-amount)
					schema.SetInt64(tr, 0, schema.GetInt64(tr, 0)+amount)
					return nil
				}); err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}
	wg.Wait()

	sum := total(db, table, schema)
	fmt.Printf("after %d concurrent transfers: total=%d (expected %d)\n",
		workers*transfer, sum, accounts*initial)
	if sum != accounts*initial {
		log.Fatal("invariant violated!")
	}
	db.Close()

	// Simulate a crash: rebuild from the deterministic load and replay the
	// WAL.
	db2, table2, schema2, err := openBank(filepath.Join(dir, "bank2.wal"))
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	st, err := db2.RecoverFromFile(logPath)
	if err != nil {
		log.Fatal(err)
	}
	sum2 := total(db2, table2, schema2)
	fmt.Printf("after recovery (%d log records, %d entries): total=%d\n",
		st.Records, st.Entries, sum2)
	if sum2 != accounts*initial {
		log.Fatal("recovery broke the invariant!")
	}
	fmt.Println("ok")
}

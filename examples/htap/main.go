// HTAP: run full-table analytical scans concurrently with hot-key OLTP
// updates and watch how the concurrency-control choice decides who
// survives. Multi-versioning serves both sides; lock-based scanning
// starves one of them; optimistic scanning aborts under writer churn.
//
//	go run ./examples/htap
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"next700"
)

const (
	records  = 8 * 1024
	writers  = 3
	duration = 300 * time.Millisecond
)

func runCell(protocol, isolation string) (oltp, scans uint64, scanAborts float64) {
	db, err := next700.Open(next700.Options{
		Protocol: protocol, Isolation: isolation, Threads: writers + 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	schema := next700.MustSchema("facts", next700.I64("v"))
	tbl, err := db.CreateTable(schema, next700.IndexBTree)
	if err != nil {
		log.Fatal(err)
	}
	row := schema.NewRow()
	for k := uint64(0); k < records; k++ {
		if err := db.Load(tbl, k, row); err != nil {
			log.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var committed atomic.Uint64
	var wg sync.WaitGroup

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tx := db.NewTx(w, uint64(w+1))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := tx.RNG().Uint64n(records / 16)
				if tx.Run(func(tx *next700.Tx) error {
					r, err := tx.Update(tbl, k)
					if err != nil {
						return err
					}
					schema.SetInt64(r, 0, schema.GetInt64(r, 0)+1)
					return nil
				}) == nil {
					committed.Add(1)
				}
			}
		}(w)
	}

	var scanCount uint64
	var scanAbortRate float64
	wg.Add(1)
	go func() {
		defer wg.Done()
		tx := db.NewTx(writers, 99)
		for {
			select {
			case <-stop:
				scanAbortRate = tx.Counter().AbortRate()
				return
			default:
			}
			if tx.Run(func(tx *next700.Tx) error {
				var sum int64
				return tx.Scan(tbl, 0, records, func(_ uint64, r next700.Row) bool {
					sum += schema.GetInt64(r, 0)
					return true
				})
			}) == nil {
				scanCount++
			}
		}
	}()

	time.AfterFunc(duration, func() { close(stop) })
	wg.Wait()
	return committed.Load(), scanCount, scanAbortRate
}

func main() {
	fmt.Printf("HTAP: %d hot-key writers + 1 full-table scanner, %v per cell\n\n",
		writers, duration)
	fmt.Printf("%-22s %12s %8s %12s\n", "protocol", "oltp txns", "scans", "scan aborts")
	cells := []struct{ proto, iso string }{
		{next700.MVCC, next700.Snapshot},
		{next700.MVCC, next700.Serializable},
		{next700.WaitDie, ""},
		{next700.NoWait, ""},
		{next700.Silo, ""},
		{next700.TicToc, ""},
	}
	for _, c := range cells {
		name := c.proto
		if c.iso != "" {
			name += "/" + c.iso
		}
		oltp, scans, aborts := runCell(c.proto, c.iso)
		fmt.Printf("%-22s %12d %8d %12.2f\n", name, oltp, scans, aborts)
	}
	fmt.Println("\nOnly multi-versioning serves both sides: lock-based scans starve")
	fmt.Println("writers (or abort), and optimistic scans fail validation under churn.")
}

// TPC-C: run the full five-transaction order-entry mix and then check the
// spec's consistency conditions.
//
//	go run ./examples/tpcc
package main

import (
	"fmt"
	"log"
	"time"

	"next700/bench"
	"next700/internal/core"
	"next700/internal/workload"
)

func main() {
	// Small-scale TPC-C so the example runs in seconds; bump Warehouses /
	// Items / CustomersPerDistrict toward spec scale for real runs.
	cfg := bench.TPCCConfig{
		Warehouses:            2,
		DistrictsPerWarehouse: 10,
		CustomersPerDistrict:  300,
		Items:                 1000,
	}

	for _, protocol := range []string{"NO_WAIT", "SILO", "MVCC", "HSTORE"} {
		wl := bench.NewTPCC(cfg)
		res, err := bench.Run(bench.EngineConfig{
			Protocol:   protocol,
			Threads:    4,
			Partitions: cfg.Warehouses,
		}, wl, bench.RunOptions{
			Threads:  4,
			Duration: 400 * time.Millisecond,
			Seed:     7,
		})
		if err != nil {
			log.Fatal(err)
		}
		c := wl.Committed()
		fmt.Printf("%-8s tps=%-9.0f abort=%-7.4f mix: NewOrder=%d Payment=%d OrderStatus=%d Delivery=%d StockLevel=%d\n",
			protocol, res.Tps, res.AbortRate, c[0], c[1], c[2], c[3], c[4])
	}

	// Consistency: run a fresh instance we keep open, then verify the
	// TPC-C invariants (warehouse/district YTD agreement, order id
	// continuity, order-line counts).
	fmt.Println("\nrunning consistency checks (TPC-C clause 3.3.2 subset)...")
	e, err := core.Open(core.Config{Protocol: "SILO", Threads: 4, Partitions: cfg.Warehouses})
	if err != nil {
		log.Fatal(err)
	}
	defer e.Close()
	wl := workload.NewTPCC(workload.TPCCConfig(cfg))
	if err := wl.Setup(e); err != nil {
		log.Fatal(err)
	}
	tx := e.NewTx(0, 1)
	for i := 0; i < 2000; i++ {
		if err := wl.RunOne(tx); err != nil {
			log.Fatal(err)
		}
	}
	if err := wl.Verify(e); err != nil {
		log.Fatal(err)
	}
	fmt.Println("consistency: ok")
}

// Quickstart: open an engine, create a table, run transactions, read back.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"next700"
)

func main() {
	// A point in the design space: Silo-style OCC, 4 worker slots.
	db, err := next700.Open(next700.Options{Protocol: next700.Silo, Threads: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Tables have typed, fixed-width schemas.
	schema := next700.MustSchema("greetings",
		next700.I64("hits"),
		next700.Str("text", 32),
	)
	table, err := db.CreateTable(schema, next700.IndexBTree)
	if err != nil {
		log.Fatal(err)
	}

	// Bulk-load initial data (single-threaded, bypasses concurrency
	// control).
	row := schema.NewRow()
	for k := uint64(0); k < 5; k++ {
		schema.SetInt64(row, 0, 0)
		schema.SetString(row, 1, []byte(fmt.Sprintf("hello #%d", k)))
		if err := db.Load(table, k, row); err != nil {
			log.Fatal(err)
		}
	}

	// Transactions run through a worker-bound context with automatic
	// retry on serialization conflicts.
	tx := db.NewTx(0, 1)
	for i := 0; i < 10; i++ {
		err := tx.Run(func(tx *next700.Tx) error {
			r, err := tx.Update(table, uint64(i%5))
			if err != nil {
				return err
			}
			schema.SetInt64(r, 0, schema.GetInt64(r, 0)+1)
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// Range scans via the B+ tree primary index.
	err = tx.Run(func(tx *next700.Tx) error {
		return tx.Scan(table, 0, 10, func(key uint64, r next700.Row) bool {
			fmt.Printf("key=%d hits=%d text=%q\n",
				key, schema.GetInt64(r, 0), schema.GetString(r, 1))
			return true
		})
	})
	if err != nil {
		log.Fatal(err)
	}
}

// next700-sim runs the deterministic many-core discrete-event simulator:
// the substitute for the 1000-core hardware simulators used by the
// published design-space studies. Results are exactly reproducible.
//
// Usage:
//
//	next700-sim -protocol SILO -cores 1024 -theta 0.8
//	next700-sim -sweep -theta 0.6               # all protocols × core counts
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"next700/internal/cc"
	"next700/internal/sim"
	"next700/internal/stats"
)

func main() {
	var (
		protocol = flag.String("protocol", "SILO", "protocol (ignored with -sweep)")
		cores    = flag.Int("cores", 64, "simulated cores (ignored with -sweep)")
		records  = flag.Uint64("records", 1<<16, "keyspace size")
		theta    = flag.Float64("theta", 0.6, "zipf skew")
		ops      = flag.Int("ops", 16, "accesses per txn")
		writes   = flag.Float64("writes", 0.5, "write fraction")
		horizon  = flag.Uint64("horizon", 2_000_000, "virtual measurement window in cycles")
		deadline = flag.Uint64("deadline", 0, "per-transaction deadline in virtual cycles: blocked or retrying transactions past it are abandoned as deadline aborts (0 = unbounded waits)")
		seed     = flag.Uint64("seed", 0x51D, "seed")
		sweep    = flag.Bool("sweep", false, "run all protocols over a core-count sweep")
		coreList = flag.String("corelist", "1,4,16,64,256,1024", "core counts for -sweep")
	)
	flag.Parse()

	if !*sweep {
		r, err := sim.Run(sim.Config{
			Protocol: *protocol, Cores: *cores, Records: *records, Theta: *theta,
			OpsPerTxn: *ops, WriteRatio: *writes, Horizon: *horizon, Seed: *seed,
			Partitions: *cores, Deadline: *deadline,
		})
		if err != nil {
			fatal("%v", err)
		}
		fmt.Println(r)
		fmt.Printf("  commits=%d aborts=%d window=%d cycles\n", r.Commits, r.Aborts, r.Makespan)
		if *deadline > 0 {
			fmt.Printf("  deadline_aborts=%d\n", r.DeadlineAborts)
		}
		fmt.Printf("  latency cycles: p50=%d p90=%d p99=%d p99.9=%d\n",
			r.Latency.P50, r.Latency.P90, r.Latency.P99, r.Latency.P999)
		return
	}

	var counts []int
	for _, s := range strings.Split(*coreList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fatal("bad -corelist entry %q", s)
		}
		counts = append(counts, n)
	}
	hdr := []string{"protocol"}
	for _, n := range counts {
		hdr = append(hdr, strconv.Itoa(n))
	}
	tbl := stats.NewTable(hdr...)
	for _, p := range cc.Names() {
		row := []interface{}{p}
		for _, n := range counts {
			r, err := sim.Run(sim.Config{
				Protocol: p, Cores: n, Records: *records, Theta: *theta,
				OpsPerTxn: *ops, WriteRatio: *writes, Horizon: *horizon, Seed: *seed,
				Partitions: n,
			})
			if err != nil {
				fatal("%v", err)
			}
			row = append(row, r.Throughput)
		}
		tbl.AddRow(row...)
	}
	fmt.Printf("simulated throughput (committed txns per Mcycle), theta=%v, %d ops/txn, %.0f%% writes\n%s",
		*theta, *ops, *writes*100, tbl)
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "next700-sim: "+format+"\n", args...)
	os.Exit(1)
}

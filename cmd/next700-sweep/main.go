// next700-sweep regenerates the evaluation suite: every experiment table in
// EXPERIMENTS.md, by id or all of them.
//
// Usage:
//
//	next700-sweep                 # run the full suite at full scale
//	next700-sweep -exp E2,E7      # selected experiments
//	next700-sweep -quick          # reduced scale (~seconds per experiment)
//	next700-sweep -list           # show the experiment index
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"next700/internal/harness"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list experiments and exit")
		exp   = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		quick = flag.Bool("quick", false, "reduced scale")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-4s %-55s %s\n", e.ID, e.Title, e.Bench)
		}
		return
	}

	var selected []harness.Experiment
	if *exp == "" {
		selected = harness.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			e := harness.ByID(id)
			if e == nil {
				fmt.Fprintf(os.Stderr, "next700-sweep: unknown experiment %q (try -list)\n", id)
				os.Exit(1)
			}
			selected = append(selected, *e)
		}
	}

	scale := "full"
	if *quick {
		scale = "quick"
	}
	fmt.Printf("next700-sweep: %d experiment(s), %s scale\n\n", len(selected), scale)
	for _, e := range selected {
		t0 := time.Now()
		fmt.Printf("== %s: %s ==\n", e.ID, e.Title)
		if err := e.Run(os.Stdout, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "next700-sweep: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %v)\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
}

// next700-lint statically enforces the engine's component contracts: the
// zero-allocation hot path, the bounded-wait (deadline) contract, typed
// abort classes, a cycle-free lock order, and atomic-field alignment.
//
// Usage:
//
//	go run ./cmd/next700-lint ./...
//	go run ./cmd/next700-lint -analyzers hotpath,lockorder ./internal/cc/...
//	go run ./cmd/next700-lint -list
//
// Exit status is 1 when any diagnostic is reported, 2 on usage or load
// errors, mirroring the go/analysis multichecker convention.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"next700/internal/analysis"
)

func main() {
	var (
		names = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		list  = flag.Bool("list", false, "list analyzers and exit")
		dir   = flag.String("C", ".", "directory to resolve patterns in (the module root)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: next700-lint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(os.Stderr, "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	suite := analysis.All()
	if *names != "" {
		suite = suite[:0]
		for _, name := range strings.Split(*names, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "next700-lint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			suite = append(suite, a)
		}
	}

	prog, err := analysis.Load(*dir, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "next700-lint:", err)
		os.Exit(2)
	}
	diags, err := prog.Run(suite...)
	for _, d := range diags {
		fmt.Printf("%s: %s: %s\n", prog.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "next700-lint:", err)
		os.Exit(2)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "next700-lint: %d issue(s)\n", len(diags))
		os.Exit(1)
	}
}

// next700-lint statically enforces the engine's component contracts: the
// zero-allocation hot path, the bounded-wait (deadline) contract, typed
// abort classes, a cycle-free lock order, atomic-field alignment, bounded
// critical sections (lockscope), deadline propagation to blocking sites
// (deadlineflow), terminal-abort retry hygiene (terminalabort), and
// suppression freshness (staleannotation).
//
// Usage:
//
//	go run ./cmd/next700-lint ./...
//	go run ./cmd/next700-lint -analyzers hotpath,lockorder ./internal/cc/...
//	go run ./cmd/next700-lint -json ./...
//	go run ./cmd/next700-lint -list
//
// Exit status mirrors the go/analysis multichecker convention:
//
//	0  clean — no non-suppressed findings
//	1  one or more findings reported (suppressed findings alone do not
//	   cause a nonzero exit; they appear only in -json output)
//	2  usage or load error (unknown analyzer, unresolvable pattern,
//	   type-check failure)
//
// With -json, machine-readable diagnostics are printed to stdout as a
// single JSON object {"findings": [...], "suppressed": [...]}; each entry
// carries file, line, col, analyzer, message, and suppressed. The
// staleannotation analyzer judges suppressions against the analyzers that
// ran over the loaded packages, so its verdicts (and the suppressed list)
// are only meaningful on whole-module invocations (./...).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"next700/internal/analysis"
)

// jsonDiag is the machine-readable form of one diagnostic.
type jsonDiag struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func main() {
	var (
		names   = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		list    = flag.Bool("list", false, "list analyzers and exit")
		dir     = flag.String("C", ".", "directory to resolve patterns in (the module root)")
		jsonOut = flag.Bool("json", false, "emit machine-readable JSON diagnostics (findings + suppressed) on stdout")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: next700-lint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(os.Stderr, "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	suite := analysis.All()
	if *names != "" {
		suite = suite[:0]
		for _, name := range strings.Split(*names, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "next700-lint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			suite = append(suite, a)
		}
	}

	prog, err := analysis.Load(*dir, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "next700-lint:", err)
		os.Exit(2)
	}
	diags, runErr := prog.Run(suite...)

	if *jsonOut {
		toJSON := func(ds []analysis.Diagnostic, suppressed bool) []jsonDiag {
			out := make([]jsonDiag, 0, len(ds))
			for _, d := range ds {
				p := prog.Fset.Position(d.Pos)
				out = append(out, jsonDiag{
					File:       p.Filename,
					Line:       p.Line,
					Col:        p.Column,
					Analyzer:   d.Analyzer,
					Message:    d.Message,
					Suppressed: suppressed,
				})
			}
			return out
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Findings   []jsonDiag `json:"findings"`
			Suppressed []jsonDiag `json:"suppressed"`
		}{toJSON(diags, false), toJSON(prog.Suppressed, true)}); err != nil {
			fmt.Fprintln(os.Stderr, "next700-lint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s: %s: %s\n", prog.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "next700-lint:", runErr)
		os.Exit(2)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "next700-lint: %d issue(s)\n", len(diags))
		os.Exit(1)
	}
}

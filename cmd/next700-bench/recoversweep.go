package main

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"next700/internal/core"
	"next700/internal/wal"
	"next700/internal/workload"
)

// The recovery sweep answers the recovery-time-objective question the way
// the WAL sweep answers the bandwidth one: build the same transaction
// history four times — once with no checkpoints (recovery = full-log
// replay) and three times with checkpoints every N, 4N, and 16N commits —
// then crash-attach each store and measure how long RecoverFromStore takes
// to reproduce the state. Bounded recovery means the checkpointed times
// track the log tail left past the last checkpoint, not the total history.

// recoverSpeedupTarget is the acceptance bar: the finest checkpoint
// interval must recover at least this many times faster than full replay.
const recoverSpeedupTarget = 5.0

type recoverSweepOpts struct {
	Threads int
	Txns    int // total committed transactions of history per point
	Every   int // finest checkpoint interval in commits (points: 0, 16N, 4N, N)
	Keep    int
	Streams int
	Seed    uint64
	Dir     string // checkpoint store scratch dir ("" = temp, removed after)
	Out     string
}

// recoverRow is one sweep point in the JSON report.
type recoverRow struct {
	// CkptEveryTxns is the checkpoint interval in commits; 0 is the
	// no-checkpoint baseline whose recovery replays the full log.
	CkptEveryTxns int    `json:"ckpt_every_txns"`
	Commits       uint64 `json:"commits"`
	CkptCycles    int    `json:"ckpt_cycles"`
	// StoreBytes is everything on disk at recovery time; SegmentBytes is
	// the log-tail portion — the number that truncation keeps bounded.
	StoreBytes   int64 `json:"store_bytes"`
	SegmentBytes int64 `json:"segment_bytes"`
	// Recovery provenance: which generation loaded and how much log was
	// actually replayed past it.
	CheckpointLoaded bool    `json:"checkpoint_loaded"`
	CheckpointGen    uint64  `json:"checkpoint_gen"`
	TailRecords      int     `json:"tail_records"`
	SkippedOldEpoch  int     `json:"skipped_old_epoch"`
	RecoveryMS       float64 `json:"recovery_ms"`
	SpeedupVsFull    float64 `json:"speedup_vs_full_replay"`
	// DigestMatch reports that a second, independent recovery of the same
	// store reproduced a byte-identical state (checkpoint-format digest).
	DigestMatch bool `json:"redundant_recovery_digest_match"`
}

type recoverReport struct {
	Workload      string       `json:"workload"`
	Protocol      string       `json:"protocol"`
	Threads       int          `json:"threads"`
	Txns          int          `json:"txns"`
	Streams       int          `json:"streams"`
	Keep          int          `json:"keep"`
	TargetSpeedup float64      `json:"target_speedup"`
	Rows          []recoverRow `json:"rows"`
}

func (o recoverSweepOpts) normalized() recoverSweepOpts {
	if o.Threads <= 0 {
		o.Threads = 4
	}
	if o.Txns <= 0 {
		o.Txns = 125_000
	}
	if o.Every <= 0 {
		o.Every = 2000
	}
	if o.Keep <= 0 {
		o.Keep = 2
	}
	if o.Streams < 2 {
		o.Streams = 2
	}
	return o
}

func runRecoverSweep(o recoverSweepOpts) {
	o = o.normalized()
	base := o.Dir
	if base == "" {
		tmp, err := os.MkdirTemp("", "next700-recover-sweep-")
		if err != nil {
			fatal("recover-sweep: %v", err)
		}
		defer os.RemoveAll(tmp)
		base = tmp
	}

	intervals := []int{0, o.Every * 16, o.Every * 4, o.Every}
	fmt.Printf("next700-bench: recovery sweep, SILO + value log, %d txns × %d threads, checkpoint intervals %v\n",
		o.Txns, o.Threads, intervals)

	rep := recoverReport{
		Workload: "ycsb", Protocol: "SILO", Threads: o.Threads, Txns: o.Txns,
		Streams: o.Streams, Keep: o.Keep, TargetSpeedup: recoverSpeedupTarget,
	}
	var fullMS float64
	for _, every := range intervals {
		dir := filepath.Join(base, fmt.Sprintf("every-%d", every))
		row, err := recoverPoint(o, dir, every)
		if err != nil {
			fatal("recover-sweep every=%d: %v", every, err)
		}
		if every == 0 {
			fullMS = row.RecoveryMS
		}
		if fullMS > 0 && row.RecoveryMS > 0 {
			row.SpeedupVsFull = fullMS / row.RecoveryMS
		}
		rep.Rows = append(rep.Rows, row)
		fmt.Printf("  every=%-6d cycles=%-3d tail_records=%-7d seg_bytes=%-9d recover=%7.1fms speedup=%.1fx digest_ok=%v\n",
			row.CkptEveryTxns, row.CkptCycles, row.TailRecords, row.SegmentBytes,
			row.RecoveryMS, row.SpeedupVsFull, row.DigestMatch)
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal("recover-sweep: %v", err)
	}
	if err := os.WriteFile(o.Out, append(out, '\n'), 0o644); err != nil {
		fatal("recover-sweep: %v", err)
	}
	fmt.Printf("  report: %s\n", o.Out)

	best := rep.Rows[len(rep.Rows)-1]
	if best.SpeedupVsFull < recoverSpeedupTarget {
		fmt.Printf("  WARNING: finest interval recovered only %.1fx faster than full replay (target %.1fx)\n",
			best.SpeedupVsFull, recoverSpeedupTarget)
	}
	for _, r := range rep.Rows {
		if !r.DigestMatch {
			fatal("recover-sweep: repeated recovery diverged at every=%d", r.CkptEveryTxns)
		}
	}
}

// recoverPoint builds one transaction history with the given checkpoint
// interval, crash-attaches the store, and measures store-based recovery.
func recoverPoint(o recoverSweepOpts, dir string, every int) (recoverRow, error) {
	row := recoverRow{CkptEveryTxns: every}
	store, err := core.NewDirStore(dir)
	if err != nil {
		return row, err
	}
	if err := recoverBuildHistory(o, store, every, &row); err != nil {
		return row, err
	}
	row.StoreBytes, row.SegmentBytes, err = storeFootprint(dir)
	if err != nil {
		return row, err
	}

	// Recovery #1: the timed one.
	digest1, rs, dur, err := recoverOnce(o, store)
	if err != nil {
		return row, err
	}
	row.CheckpointLoaded = rs.CheckpointLoaded
	row.CheckpointGen = rs.CheckpointGen
	row.TailRecords = rs.Records
	row.SkippedOldEpoch = rs.SkippedOldEpoch
	row.RecoveryMS = float64(dur) / float64(time.Millisecond)

	// Recovery #2: the sealed manifest from #1 must reproduce the exact
	// same state — the truncation decisions made once stay made.
	digest2, _, _, err := recoverOnce(o, store)
	if err != nil {
		return row, err
	}
	row.DigestMatch = digest1 == digest2
	return row, nil
}

// recoverSweepWorkload is the sweep's fixed workload shape: update-heavy so
// the log grows with every commit, and small enough that checkpoint cycles
// stay cheap relative to the run.
func recoverSweepWorkload(threads int) *workload.YCSB {
	return workload.NewYCSB(workload.YCSBConfig{
		Records: 32768, OpsPerTxn: 8, ReadRatio: 0.5, MaxThreads: threads,
	})
}

// recoverBuildHistory runs o.Txns committed transactions against a fresh
// engine logging into the store, checkpointing every `every` commits (0 =
// never), then closes the engine cleanly.
func recoverBuildHistory(o recoverSweepOpts, store *core.DirStore, every int, row *recoverRow) error {
	att, err := core.InitCheckpointLog(store, o.Streams, wal.ModeValue)
	if err != nil {
		return err
	}
	e, err := core.Open(core.Config{
		Protocol: "SILO", Threads: o.Threads,
		LogMode: wal.ModeValue, WALStreams: o.Streams, LogDevices: att.Devices,
		GroupCommitWindow: 200 * time.Microsecond,
	})
	if err != nil {
		return err
	}
	defer e.Close()
	wl := recoverSweepWorkload(o.Threads)
	if err := wl.Setup(e); err != nil {
		return err
	}
	var ck *core.Checkpointer
	if every > 0 {
		if ck, err = e.NewCheckpointer(store, o.Keep, att.Devices); err != nil {
			return err
		}
	}

	var committed atomic.Uint64
	errs := make([]error, o.Threads)
	perWorker := o.Txns / o.Threads
	var wg sync.WaitGroup
	for i := 0; i < o.Threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tx := e.NewTx(id, o.Seed*1_000_003+uint64(id)+1)
			for t := 0; t < perWorker; t++ {
				if err := wl.RunOne(tx); err != nil {
					errs[id] = err
					return
				}
				n := committed.Add(1)
				if every > 0 && n%uint64(every) == 0 {
					// The crossing worker runs the cycle inline; the others
					// keep committing — the capture is online.
					if err := ck.CheckpointNow(); err != nil {
						errs[id] = err
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	row.Commits = committed.Load()
	if ck != nil {
		row.CkptCycles = ck.Stats().Cycles
	}
	return nil
}

// recoverOnce attaches the store to a fresh schema-only engine, runs
// store-based recovery, and returns a digest of the recovered state (the
// deterministic checkpoint serialization, CRC-folded).
func recoverOnce(o recoverSweepOpts, store *core.DirStore) (digest uint32, rs core.RecoveryStats, dur time.Duration, err error) {
	att, err := core.AttachCheckpointLog(store)
	if err != nil {
		return 0, rs, 0, err
	}
	e, err := core.Open(core.Config{
		Protocol: "SILO", Threads: o.Threads,
		LogMode: wal.ModeValue, WALStreams: o.Streams, LogDevices: att.Devices,
		GroupCommitWindow: 200 * time.Microsecond,
	})
	if err != nil {
		return 0, rs, 0, err
	}
	defer e.Close()
	wl := recoverSweepWorkload(o.Threads)
	if err := wl.SetupSchema(e); err != nil {
		return 0, rs, 0, err
	}
	t0 := time.Now()
	rs, err = e.RecoverFromStore(store, att, wl.LoadData)
	dur = time.Since(t0)
	if err != nil {
		return 0, rs, dur, err
	}
	h := crc32.NewIEEE()
	if err := e.Checkpoint(h); err != nil {
		return 0, rs, dur, err
	}
	return h.Sum32(), rs, dur, nil
}

// storeFootprint sums the DirStore's on-disk bytes: total and the log
// segments alone.
func storeFootprint(dir string) (total, segments int64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, 0, err
	}
	for _, en := range entries {
		info, err := en.Info()
		if err != nil {
			return 0, 0, err
		}
		total += info.Size()
		if strings.HasPrefix(en.Name(), "seg-") {
			segments += info.Size()
		}
	}
	return total, segments, nil
}

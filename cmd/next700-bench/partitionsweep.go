package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"next700/internal/core"
	"next700/internal/fault"
	"next700/internal/storage"
	"next700/internal/wal"
	"next700/internal/xrand"
)

// The partition sweep measures the three promises of partition-fault
// isolation on one engine lifecycle:
//
//  1. Degradation is contained: with one partition quarantined, the
//     surviving partitions' per-partition goodput stays at its healthy
//     level, and every loss on the dark partition classifies as the
//     terminal ErrPartitionUnavailable (counted as partition_aborts).
//  2. Recovery is proportional to the fault: rebuilding the one dark
//     partition live (newest checkpoint slice + its own stream tail, while
//     the engine keeps serving) is measurably faster than recovering the
//     whole engine from the same store state.
//  3. Both recoveries agree: the dark partition's state after live
//     RecoverPartition equals its state after whole-engine
//     RecoverFromStore of a crash-surviving store copy.

// partitionRetainTarget is the acceptance bar for degradation containment:
// surviving partitions must retain at least this fraction of their healthy
// per-partition goodput while one partition is dark.
const partitionRetainTarget = 0.8

type partitionSweepOpts struct {
	Partitions int
	Duration   time.Duration // per measured phase
	Seed       uint64
	Out        string
}

type partitionReport struct {
	Protocol   string `json:"protocol"`
	Partitions int    `json:"partitions"`
	Records    int    `json:"records_per_partition"`
	Target     int    `json:"quarantined_partition"`
	PhaseMS    float64 `json:"phase_ms"`

	HealthyTPS       float64 `json:"healthy_goodput_tps"`
	HealthyPerPart   float64 `json:"healthy_per_partition_tps"`
	SurvivingTPS     float64 `json:"degraded_surviving_goodput_tps"`
	SurvivingPerPart float64 `json:"degraded_surviving_per_partition_tps"`
	RetainedFraction float64 `json:"surviving_retained_fraction"`
	RetainTarget     float64 `json:"retain_target"`

	PartitionAborts   uint64 `json:"partition_aborts"`
	AbortsAllTerminal bool   `json:"aborts_all_partition_class"`

	PartSliceLoaded    bool    `json:"partition_slice_loaded"`
	PartTailRecords    int     `json:"partition_tail_records"`
	PartitionRecoverMS float64 `json:"partition_recover_ms"`
	WholeCkptLoaded    bool    `json:"whole_checkpoint_loaded"`
	WholeTailRecords   int     `json:"whole_tail_records"`
	WholeRecoverMS     float64 `json:"whole_engine_recover_ms"`
	RecoverSpeedup     float64 `json:"partition_recover_speedup"`
	DigestMatch        bool    `json:"recovered_digest_match"`
}

func (o partitionSweepOpts) normalized() partitionSweepOpts {
	if o.Partitions <= 1 {
		o.Partitions = 4
	}
	if o.Partitions > 16 {
		o.Partitions = 16
	}
	if o.Duration <= 0 {
		o.Duration = time.Second
	}
	if o.Out == "" {
		o.Out = "BENCH_partition.json"
	}
	return o
}

// partSweepRecords is each partition's key count: small enough that slices
// stay cheap, large enough that recovery does real index and copy work.
const partSweepRecords = 2048

// partSweepOpsPerTxn is the read-modify-write count per transaction; all
// keys stay inside the worker's home partition.
const partSweepOpsPerTxn = 4

func runPartitionSweep(o partitionSweepOpts) {
	o = o.normalized()
	P := o.Partitions
	rep := partitionReport{
		Protocol: "SILO", Partitions: P, Records: partSweepRecords,
		Target: P - 1, PhaseMS: float64(o.Duration) / float64(time.Millisecond),
		RetainTarget: partitionRetainTarget,
	}
	fmt.Printf("next700-bench: partition-fault sweep, SILO + partition-affinity WAL, %d partitions × %d records, %s per phase\n",
		P, partSweepRecords, o.Duration)

	store := fault.NewMemStore(fault.StoreChaos{Seed: o.Seed})
	att, err := core.InitCheckpointLog(store, P, wal.ModeValue)
	if err != nil {
		fatal("partition-sweep: %v", err)
	}
	e, tbl, err := partSweepEngine(P, att.Devices)
	if err != nil {
		fatal("partition-sweep: %v", err)
	}
	if err := partSweepLoad(e, tbl, P, -1); err != nil {
		fatal("partition-sweep: load: %v", err)
	}
	ck, err := e.NewCheckpointer(store, 2, att.Devices)
	if err != nil {
		fatal("partition-sweep: %v", err)
	}

	// Phase 1: healthy goodput, all partitions committing.
	healthy, err := partSweepPhase(e, tbl, P, -1, o.Duration, o.Seed)
	if err != nil {
		fatal("partition-sweep healthy phase: %v", err)
	}
	rep.HealthyTPS = float64(healthy.commits) / o.Duration.Seconds()
	rep.HealthyPerPart = rep.HealthyTPS / float64(P)

	// One sliced generation, then a tail burst so every stream has history
	// past its slice — the single-partition recovery replays that tail.
	if err := ck.CheckpointNow(); err != nil {
		fatal("partition-sweep checkpoint: %v", err)
	}
	if _, err := partSweepPhase(e, tbl, P, -1, o.Duration/2, o.Seed^0x9e37); err != nil {
		fatal("partition-sweep tail burst: %v", err)
	}

	// Quarantine one partition and measure the survivors.
	target := P - 1
	if err := e.QuarantinePartition(target); err != nil {
		fatal("partition-sweep quarantine: %v", err)
	}
	degraded, err := partSweepPhase(e, tbl, P, target, o.Duration, o.Seed^0x7f4a)
	if err != nil {
		fatal("partition-sweep degraded phase: %v", err)
	}
	rep.SurvivingTPS = float64(degraded.commits) / o.Duration.Seconds()
	rep.SurvivingPerPart = rep.SurvivingTPS / float64(P-1)
	if rep.HealthyPerPart > 0 {
		rep.RetainedFraction = rep.SurvivingPerPart / rep.HealthyPerPart
	}
	rep.PartitionAborts = degraded.partitionAborts
	rep.AbortsAllTerminal = degraded.wrongClass == nil
	if degraded.wrongClass != nil {
		fatal("partition-sweep: loss on quarantined partition with wrong class: %v", degraded.wrongClass)
	}

	// Snapshot the store before repairing anything: the whole-engine
	// recovery below rebuilds from this same moment, so the two recovery
	// times answer "one partition vs everything" for identical history.
	surv := store.Survivor(fault.StoreChaos{Seed: o.Seed + 1})

	// Live single-partition recovery: newest slice + own stream tail.
	slice, tail, err := partSweepRecoveryInputs(store, P, target)
	if err != nil {
		fatal("partition-sweep: %v", err)
	}
	newDev, err := store.CreateSegment(fmt.Sprintf("seg-repair-%d", target))
	if err != nil {
		fatal("partition-sweep: %v", err)
	}
	var load func() error
	if slice == nil {
		load = func() error { return partSweepLoad(e, tbl, P, target) }
	}
	t0 := time.Now()
	rs, err := e.RecoverPartition(target, load, slice, tail, newDev)
	rep.PartitionRecoverMS = float64(time.Since(t0)) / float64(time.Millisecond)
	if err != nil {
		fatal("partition-sweep RecoverPartition: %v", err)
	}
	rep.PartSliceLoaded = rs.CheckpointLoaded
	rep.PartTailRecords = rs.Records

	digestLive, err := partSweepDigest(e, tbl, P, target)
	if err != nil {
		fatal("partition-sweep digest: %v", err)
	}
	// The readmitted partition must take commits again.
	if err := partSweepCommitOne(e, tbl, P, target); err != nil {
		fatal("partition-sweep post-recovery commit: %v", err)
	}
	e.Close()

	// Whole-engine recovery of the same store state.
	att2, err := core.AttachCheckpointLog(surv)
	if err != nil {
		fatal("partition-sweep: %v", err)
	}
	e2, tbl2, err := partSweepEngine(P, att2.Devices)
	if err != nil {
		fatal("partition-sweep: %v", err)
	}
	t0 = time.Now()
	rs2, err := e2.RecoverFromStore(surv, att2, func() error {
		return partSweepLoad(e2, tbl2, P, -1)
	})
	rep.WholeRecoverMS = float64(time.Since(t0)) / float64(time.Millisecond)
	if err != nil {
		fatal("partition-sweep RecoverFromStore: %v", err)
	}
	rep.WholeCkptLoaded = rs2.CheckpointLoaded
	rep.WholeTailRecords = rs2.Records
	digestWhole, err := partSweepDigest(e2, tbl2, P, target)
	if err != nil {
		fatal("partition-sweep digest: %v", err)
	}
	e2.Close()
	rep.DigestMatch = digestLive == digestWhole
	if rep.PartitionRecoverMS > 0 {
		rep.RecoverSpeedup = rep.WholeRecoverMS / rep.PartitionRecoverMS
	}

	fmt.Printf("  healthy: %8.0f tps (%0.0f/partition)\n", rep.HealthyTPS, rep.HealthyPerPart)
	fmt.Printf("  degraded (partition %d dark): %8.0f tps surviving (%0.0f/partition, %.0f%% retained), %d partition aborts, all terminal=%v\n",
		target, rep.SurvivingTPS, rep.SurvivingPerPart, rep.RetainedFraction*100,
		rep.PartitionAborts, rep.AbortsAllTerminal)
	fmt.Printf("  recovery: partition %7.2fms (slice=%v tail=%d) vs whole engine %7.2fms (tail=%d), speedup %.1fx, digest_ok=%v\n",
		rep.PartitionRecoverMS, rep.PartSliceLoaded, rep.PartTailRecords,
		rep.WholeRecoverMS, rep.WholeTailRecords, rep.RecoverSpeedup, rep.DigestMatch)

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal("partition-sweep: %v", err)
	}
	if err := os.WriteFile(o.Out, append(out, '\n'), 0o644); err != nil {
		fatal("partition-sweep: %v", err)
	}
	fmt.Printf("  report: %s\n", o.Out)

	if !rep.DigestMatch {
		fatal("partition-sweep: live partition recovery and whole-engine recovery disagree on partition %d", target)
	}
	if rep.RetainedFraction < partitionRetainTarget {
		fmt.Printf("  WARNING: surviving partitions retained only %.0f%% of healthy goodput (target %.0f%%)\n",
			rep.RetainedFraction*100, partitionRetainTarget*100)
	}
	if rep.RecoverSpeedup <= 1 {
		fmt.Printf("  WARNING: single-partition recovery (%.2fms) not faster than whole-engine (%.2fms)\n",
			rep.PartitionRecoverMS, rep.WholeRecoverMS)
	}
}

// partSweepEngine opens the partition-affinity engine and its account table.
// Keys map to partitions by the default key mod P rule, so worker p owns
// keys {i*P + p}.
func partSweepEngine(P int, devs []wal.Device) (*core.Engine, *core.Table, error) {
	e, err := core.Open(core.Config{
		Protocol:          "SILO",
		Threads:           P,
		Partitions:        P,
		LogMode:           wal.ModeValue,
		WALStreams:        P,
		LogDevices:        devs,
		PartitionWAL:      true,
		GroupCommitWindow: 200 * time.Microsecond,
		EpochInterval:     time.Millisecond,
	})
	if err != nil {
		return nil, nil, err
	}
	tbl, err := e.CreateTable(storage.MustSchema("acct", storage.I64("v")), core.IndexHash)
	if err != nil {
		e.Close()
		return nil, nil, err
	}
	return e, tbl, nil
}

// partSweepLoad zero-loads every key of partition only (or of all
// partitions when only is -1). It is both the initial load and the recovery
// fallback callbacks.
func partSweepLoad(e *core.Engine, tbl *core.Table, P, only int) error {
	sch := tbl.Schema()
	row := sch.NewRow()
	sch.SetInt64(row, 0, 0)
	for p := 0; p < P; p++ {
		if only >= 0 && p != only {
			continue
		}
		for i := 0; i < partSweepRecords; i++ {
			if err := e.Load(tbl, uint64(i*P+p), row); err != nil {
				return err
			}
		}
	}
	return nil
}

type partPhaseResult struct {
	commits         uint64 // commits on partitions other than the dark one
	partitionAborts uint64
	wrongClass      error
}

// partSweepPhase runs one closed-loop measurement window: P workers, each
// homed to its partition, each transaction a read-modify-write of
// partSweepOpsPerTxn home keys. When target >= 0 that partition is dark:
// its worker keeps attempting, every loss must classify as
// ErrPartitionUnavailable, and its attempts are excluded from goodput.
func partSweepPhase(e *core.Engine, tbl *core.Table, P, target int, dur time.Duration, seed uint64) (partPhaseResult, error) {
	var res partPhaseResult
	stop := make(chan struct{})
	time.AfterFunc(dur, func() { close(stop) })
	commits := make([]uint64, P)
	aborts := make([]uint64, P)
	errs := make([]error, P)
	wrong := make([]error, P)
	var wg sync.WaitGroup
	for p := 0; p < P; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			tx := e.NewTx(p, seed*1_000_003+uint64(p)+1)
			defer func() { aborts[p] = tx.Counter().PartitionAborts }()
			rng := xrand.New(seed ^ (0x9e3779b97f4a7c15 * uint64(p+1)))
			sch := tbl.Schema()
			for {
				select {
				case <-stop:
					return
				default:
				}
				err := tx.Run(func(tx *core.Tx) error {
					for i := 0; i < partSweepOpsPerTxn; i++ {
						key := uint64(rng.Intn(partSweepRecords)*P + p)
						r, err := tx.Update(tbl, key)
						if err != nil {
							return err
						}
						sch.SetInt64(r, 0, sch.GetInt64(r, 0)+1)
					}
					return nil
				})
				if err != nil {
					if p == target && errors.Is(err, core.ErrPartitionUnavailable) {
						// Terminal shed on the dark partition: back off the
						// way a client would and keep probing for readmission.
						time.Sleep(100 * time.Microsecond)
						continue
					}
					if p == target {
						wrong[p] = err
					} else {
						errs[p] = err
					}
					return
				}
				commits[p]++
			}
		}(p)
	}
	wg.Wait()
	for p := 0; p < P; p++ {
		if errs[p] != nil {
			return res, fmt.Errorf("worker %d: %w", p, errs[p])
		}
		if wrong[p] != nil && res.wrongClass == nil {
			res.wrongClass = wrong[p]
		}
		if p != target {
			res.commits += commits[p]
		}
		res.partitionAborts += aborts[p]
	}
	return res, nil
}

// partSweepRecoveryInputs resolves the dark partition's recovery sources
// from the store manifest: its slice of the newest fully-sliced checkpoint
// generation, and its stream's segments concatenated in manifest order
// (sealed segments trimmed to their sealing epoch, like whole-engine
// recovery does).
func partSweepRecoveryInputs(store core.CheckpointStore, P, target int) (slice, tail io.Reader, err error) {
	m, _, err := store.LoadManifest()
	if err != nil {
		return nil, nil, err
	}
	var best *wal.ManifestCheckpoint
	for i := range m.Checkpoints {
		ck := &m.Checkpoints[i]
		if ck.Slices == P && (best == nil || ck.Gen > best.Gen) {
			best = ck
		}
	}
	if best != nil {
		rc, err := store.OpenCheckpoint(core.CheckpointSliceName(best.Name, target))
		if err == nil {
			data, rerr := io.ReadAll(rc)
			rc.Close()
			if rerr == nil {
				slice = bytes.NewReader(data)
			}
		}
	}
	var image []byte
	for _, sg := range m.Segments {
		if sg.Stream != target {
			continue
		}
		rc, err := store.OpenSegment(sg.Name)
		if err != nil {
			continue
		}
		data, rerr := io.ReadAll(rc)
		rc.Close()
		if rerr != nil {
			return nil, nil, fmt.Errorf("segment %s: %w", sg.Name, rerr)
		}
		clean, serr := wal.SealSegment(data, sg.ToEpoch)
		if serr != nil {
			return nil, nil, fmt.Errorf("segment %s: %w", sg.Name, serr)
		}
		image = append(image, clean...)
	}
	return slice, bytes.NewReader(image), nil
}

// partSweepDigest folds the target partition's committed key/value pairs
// into a CRC, read through a transaction so the digest sees only committed
// state.
func partSweepDigest(e *core.Engine, tbl *core.Table, P, target int) (uint32, error) {
	h := crc32.NewIEEE()
	var buf [16]byte
	tx := e.NewTx(0, 1)
	sch := tbl.Schema()
	err := tx.Run(func(tx *core.Tx) error {
		for i := 0; i < partSweepRecords; i++ {
			key := uint64(i*P + target)
			r, err := tx.Read(tbl, key)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint64(buf[0:8], key)
			binary.LittleEndian.PutUint64(buf[8:16], uint64(sch.GetInt64(r, 0)))
			h.Write(buf[:])
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return h.Sum32(), nil
}

// partSweepCommitOne commits one update on the recovered partition — the
// readmission sanity check.
func partSweepCommitOne(e *core.Engine, tbl *core.Table, P, target int) error {
	tx := e.NewTx(0, 2)
	sch := tbl.Schema()
	return tx.Run(func(tx *core.Tx) error {
		r, err := tx.Update(tbl, uint64(target))
		if err != nil {
			return err
		}
		sch.SetInt64(r, 0, sch.GetInt64(r, 0)+1)
		return nil
	})
}

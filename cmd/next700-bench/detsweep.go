package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"next700/internal/core"
	"next700/internal/harness"
	"next700/internal/workload"
)

// detOpts parameterizes a single -det measurement.
type detOpts struct {
	Partitions int
	Batch      int
	Batches    int
	Seed       uint64
	Rate       float64
	Duration   time.Duration
	Allocs     bool
}

// runDet drives one deterministic queue-oriented measurement and prints it in
// the same shape as the interactive path. Closed mode runs a fixed batch
// count; -rate switches to batch-arrival open-loop mode for -duration.
func runDet(cfg core.Config, wl workload.DeclaredAccess, o detOpts) {
	opts := harness.DetOptions{
		Batch:         o.Batch,
		Batches:       o.Batches,
		WarmupBatches: 4,
		Seed:          o.Seed,
		MeasureAllocs: o.Allocs,
	}
	if o.Rate > 0 {
		opts.OfferedRate = o.Rate
		opts.Duration = o.Duration
	}
	cfg.Partitions = o.Partitions
	mode := fmt.Sprintf("closed, %d batches × %d txns", opts.Batches, opts.Batch)
	if o.Rate > 0 {
		mode = fmt.Sprintf("open, %.0f/s offered, batch %d, %v", o.Rate, opts.Batch, o.Duration)
	}
	fmt.Printf("next700-bench: %s on DET(QSTORE), %d partitions, %s\n",
		wl.Name(), o.Partitions, mode)
	res, err := harness.RunDet(cfg, wl, opts)
	if err != nil {
		fatal("det: %v", err)
	}
	fmt.Println(res)
	fmt.Printf("  commits=%d aborts=%d fatal_aborts=%d waits=%d\n",
		res.Commits, res.Aborts, res.FatalAborts, res.Waits)
	fmt.Printf("  latency: %s\n", res.Latency)
	if o.Rate > 0 {
		fmt.Printf("  open-loop: offered=%.0f/s arrivals=%d backlog=%d\n",
			res.Offered, res.Arrivals, res.Backlog)
		fmt.Printf("  queue: %s\n", res.QueueLatency)
		fmt.Printf("  e2e:   %s\n", res.E2ELatency)
	}
	if o.Allocs {
		fmt.Printf("  allocs/txn=%.2f bytes/txn=%.1f\n", res.AllocsPerTxn, res.BytesPerTxn)
	}
	fmt.Printf("  digest: %s\n", res.Digest)
	if res.Aborts != 0 {
		fatal("det: %d conflict aborts (deterministic execution must be abort-free)", res.Aborts)
	}
}

// detSweepOpts parameterizes the -det-sweep run.
type detSweepOpts struct {
	Threads  int
	Batch    int
	Duration time.Duration
	Seed     uint64
	Theta    float64
	Out      string
}

// detRow is one engine measurement in the JSON report. The DET row carries
// the state digest; interactive rows carry their conflict-abort rate — the
// quantity deterministic execution eliminates by construction.
type detRow struct {
	Engine    string  `json:"engine"`
	Threads   int     `json:"threads"`
	Commits   uint64  `json:"commits"`
	Aborts    uint64  `json:"aborts"`
	AbortRate float64 `json:"abort_rate"`
	Tps       float64 `json:"tps"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	Digest    string  `json:"digest,omitempty"`
}

// detReport is the full sweep, written as one JSON document.
type detReport struct {
	Workload string  `json:"workload"`
	Theta    float64 `json:"theta"`
	Batch    int     `json:"batch"`
	// DigestStable records the in-sweep determinism check: a second DET run
	// with the same seed produced a byte-identical state digest.
	DigestStable bool     `json:"digest_stable"`
	Rows         []detRow `json:"rows"`
	// DetTpsVsBestInteractive is the DET row's throughput relative to the
	// best interactive protocol measured in the same sweep.
	DetTpsVsBestInteractive float64 `json:"det_tps_vs_best_interactive"`
}

// runDetSweep compares deterministic queue-oriented execution against the
// interactive protocols at high Zipfian contention — the regime where
// interactive CC burns work on conflict aborts and lock waits while the det
// planner has already serialized every conflict into queue order. The DET
// point is run twice with the same seed as an inline determinism check
// (byte-identical digests), then NO_WAIT, SILO, and MVCC run the same
// workload configuration interactively for -duration each.
func runDetSweep(o detSweepOpts) {
	if o.Threads <= 0 {
		o.Threads = 4
	}
	if o.Batch <= 0 {
		o.Batch = 64
	}
	if o.Theta <= 0 {
		o.Theta = 0.9
	}
	// Batch count sized so the DET point commits enough work for a stable
	// throughput estimate without dominating the sweep's runtime.
	batches := 64
	wlCfg := workload.YCSBConfig{
		Records: 65536, OpsPerTxn: 8, ReadRatio: 0.5,
		Theta: o.Theta, MultiPartitionFraction: 0.1,
	}
	fmt.Printf("next700-bench: det sweep, ycsb theta=%.2f, %d threads, batch %d, %v per interactive point\n",
		o.Theta, o.Threads, o.Batch, o.Duration)

	rep := detReport{Workload: "ycsb", Theta: o.Theta, Batch: o.Batch}

	detOpts := harness.DetOptions{
		Batch: o.Batch, Batches: batches, WarmupBatches: 4, Seed: o.Seed,
	}
	dres, err := harness.RunDet(core.Config{Partitions: o.Threads}, workload.NewYCSB(wlCfg), detOpts)
	if err != nil {
		fatal("det-sweep DET: %v", err)
	}
	if dres.Aborts != 0 {
		fatal("det-sweep: DET recorded %d conflict aborts, want 0", dres.Aborts)
	}
	dres2, err := harness.RunDet(core.Config{Partitions: o.Threads}, workload.NewYCSB(wlCfg), detOpts)
	if err != nil {
		fatal("det-sweep DET rerun: %v", err)
	}
	rep.DigestStable = dres.Digest != "" && dres.Digest == dres2.Digest
	if !rep.DigestStable {
		fatal("det-sweep: same-seed digests differ: %s vs %s", dres.Digest, dres2.Digest)
	}
	rep.Rows = append(rep.Rows, detRow{
		Engine: "DET", Threads: o.Threads,
		Commits: dres.Commits, Aborts: dres.Aborts,
		Tps:    dres.Tps,
		P50Ms:  float64(dres.Latency.P50) / float64(time.Millisecond),
		P99Ms:  float64(dres.Latency.P99) / float64(time.Millisecond),
		Digest: dres.Digest,
	})
	fmt.Printf("  %-8s tps=%-9.0f aborts=%-6d p50=%-8v p99=%-8v digest=%s\n",
		"DET", dres.Tps, dres.Aborts,
		time.Duration(dres.Latency.P50).Round(time.Microsecond),
		time.Duration(dres.Latency.P99).Round(time.Microsecond),
		dres.Digest[:16]+"…")

	var bestInteractive float64
	for _, protocol := range []string{"NO_WAIT", "SILO", "MVCC"} {
		res, err := harness.Run(
			core.Config{Protocol: protocol, Threads: o.Threads},
			workload.NewYCSB(wlCfg),
			harness.RunOptions{Threads: o.Threads, Duration: o.Duration, WarmupTxns: 200, Seed: o.Seed},
		)
		if err != nil {
			fatal("det-sweep %s: %v", protocol, err)
		}
		attempts := res.Commits + res.Aborts
		row := detRow{
			Engine: protocol, Threads: o.Threads,
			Commits: res.Commits, Aborts: res.Aborts,
			Tps:   res.Tps,
			P50Ms: float64(res.Latency.P50) / float64(time.Millisecond),
			P99Ms: float64(res.Latency.P99) / float64(time.Millisecond),
		}
		if attempts > 0 {
			row.AbortRate = float64(res.Aborts) / float64(attempts)
		}
		if res.Tps > bestInteractive {
			bestInteractive = res.Tps
		}
		rep.Rows = append(rep.Rows, row)
		fmt.Printf("  %-8s tps=%-9.0f aborts=%-6d abort_rate=%.3f p50=%-8v p99=%-8v\n",
			protocol, res.Tps, res.Aborts, row.AbortRate,
			time.Duration(res.Latency.P50).Round(time.Microsecond),
			time.Duration(res.Latency.P99).Round(time.Microsecond))
	}
	if bestInteractive > 0 {
		rep.DetTpsVsBestInteractive = dres.Tps / bestInteractive
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal("det-sweep: %v", err)
	}
	if err := os.WriteFile(o.Out, append(out, '\n'), 0o644); err != nil {
		fatal("det-sweep: %v", err)
	}
	fmt.Printf("  report: %s (det/best-interactive = %.2fx, digest stable)\n",
		o.Out, rep.DetTpsVsBestInteractive)
}

// next700-bench runs a single (protocol × workload) measurement on the real
// engine and prints throughput, abort rate, and latency percentiles.
//
// Usage:
//
//	next700-bench -workload ycsb -protocol SILO -threads 8 -theta 0.8 -duration 2s
//	next700-bench -workload tpcc -protocol NO_WAIT -warehouses 4 -threads 4
//	next700-bench -workload smallbank -protocol MVCC -isolation snapshot
//	next700-bench -verify
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"next700/internal/admission"
	"next700/internal/cc"
	"next700/internal/core"
	"next700/internal/harness"
	"next700/internal/torture"
	"next700/internal/verify"
	"next700/internal/wal"
	"next700/internal/workload"
)

func main() {
	var (
		wlName     = flag.String("workload", "ycsb", "workload: ycsb | tpcc | smallbank")
		protocol   = flag.String("protocol", "SILO", "concurrency control protocol")
		threads    = flag.Int("threads", 4, "worker threads")
		partitions = flag.Int("partitions", 0, "partitions (default threads)")
		isolation  = flag.String("isolation", "", "MVCC isolation: serializable|snapshot|read-committed")
		duration   = flag.Duration("duration", 2*time.Second, "measurement duration")
		warmup     = flag.Int("warmup", 200, "warmup transactions per worker")
		seed       = flag.Uint64("seed", 42, "random seed")
		logMode    = flag.String("log", "none", "durability: none | value | command")
		logPath    = flag.String("logpath", "", "WAL file path (required for -log != none)")
		gcWindow   = flag.Duration("groupcommit", time.Millisecond, "group commit window (epoch advance period when -wal-streams > 1)")
		walStreams = flag.Int("wal-streams", 1, "parallel WAL stream count: >1 splits the log across <logpath>.<i> files with an epoch-based durable frontier and writes <logpath>.manifest.json for -recover")

		// YCSB knobs.
		records = flag.Uint64("records", 262144, "ycsb: table size")
		theta   = flag.Float64("theta", 0, "ycsb: zipf skew [0,1)")
		ops     = flag.Int("ops", 16, "ycsb: accesses per txn")
		reads   = flag.Float64("reads", 0.5, "ycsb: read fraction")
		multiP  = flag.Float64("multipartition", 0, "ycsb: multi-partition txn fraction")

		// TPC-C knobs.
		warehouses = flag.Int("warehouses", 4, "tpcc: warehouse count")
		items      = flag.Int("items", 100000, "tpcc: item count")
		customers  = flag.Int("customers", 3000, "tpcc: customers per district")

		// SmallBank knobs.
		accounts = flag.Uint64("accounts", 100000, "smallbank: account count")
		hotspot  = flag.Float64("hotspot", 0.25, "smallbank: hotspot access probability")

		doVerify  = flag.Bool("verify", false, "run a contended isolation-anomaly sweep across all protocols and exit: each protocol drives the stamped verification probe and its recorded history is checked for Adya anomalies (G0/G1/G2); honors -threads, -seed, and -isolation")
		allocs    = flag.Bool("allocs", false, "measure heap allocs/txn and bytes/txn during the run")
		allocsOut = flag.String("allocsout", "BENCH_allocs.json", "output path for the -allocs JSON report")

		// Retry/backoff policy (0 keeps the engine default).
		retryAttempts = flag.Int("retry-attempts", 0, "max attempts per txn before livelock error")
		retrySpin     = flag.Int("retry-spin", 0, "leading retries that only yield, no sleep")
		retryBase     = flag.Duration("retry-base", 0, "first sleeping retry's backoff jitter ceiling")
		retryMax      = flag.Duration("retry-max", 0, "exponential backoff ceiling cap")

		doRecover = flag.Bool("recover", false, "after the run, replay the log into a fresh engine and print recovery stats (requires -log)")
		tortureN  = flag.Int("torture", 0, "run N seeded crash-recovery torture iterations per log mode and exit")

		// Deadlines, open-loop load, and admission control.
		rate        = flag.Float64("rate", 0, "open-loop offered arrival rate in txns/sec (seeded Poisson); 0 = closed loop")
		deadlineD   = flag.Duration("deadline", 0, "per-transaction deadline, enforced through every engine wait (0 = none)")
		slo         = flag.Duration("slo", 0, "goodput window: commits slower than this (arrival to completion) count as late, not good (default -deadline)")
		admit       = flag.Bool("admit", false, "gate transactions through an admission controller (bounded in-flight + queue-deadline shedding)")
		admitMax    = flag.Int("admit-max", 0, "admission: max in-flight transactions (default 2×GOMAXPROCS)")
		admitQueue  = flag.Duration("admit-queue", 0, "admission: max wait for a slot before shedding (0 = bounded only by -deadline)")
		admitTarget = flag.Duration("admit-target", 0, "admission: AIMD target service latency; adapts the in-flight limit (0 = fixed limit)")

		admitParts = flag.Bool("admit-partitioned", false, "admission: one controller per engine partition (home-partition gating) instead of one global limit")

		// Open-loop arrival-queue discipline.
		queueLIFOAge       = flag.Duration("queue-lifo-age", 0, "open-loop queue: serve newest-first while the oldest waiting arrival is older than this (adaptive LIFO; 0 = strict FIFO)")
		queueCoDelTarget   = flag.Duration("queue-codel-target", 0, "open-loop queue: CoDel head-age target; sustained excess evicts the oldest arrivals at enqueue (0 = off)")
		queueCoDelInterval = flag.Duration("queue-codel-interval", 0, "open-loop queue: CoDel tolerance interval before dropping starts (default 100ms)")

		doOverload  = flag.Bool("overload", false, "run the overload sweep and exit: measure closed-loop capacity, then offer 1x/2x/3x that rate open-loop, unprotected vs deadline+admission")
		overloadOut = flag.String("overload-out", "BENCH_overload.json", "output path for the -overload JSON report")

		doWALSweep = flag.Bool("wal-sweep", false, "run the parallel-WAL scaling sweep and exit: SILO + value logging on a bandwidth-limited simulated device at 1/2/4 streams; writes -wal-out")
		walOut     = flag.String("wal-out", "BENCH_wal.json", "output path for the -wal-sweep JSON report")

		// Deterministic (queue-oriented) execution.
		doDet      = flag.Bool("det", false, "run a deterministic queue-oriented measurement: the sequencer plans seeded batches of declared access sets, per-partition executors drain priority queues abort-free, and the run prints the canonical state digest; honors -rate (batch-arrival open loop), -duration, -theta, -allocs")
		detBatch   = flag.Int("det-batch", 64, "deterministic mode: transactions sequenced per batch (each batch commits as one WAL epoch)")
		doDetSweep = flag.Bool("det-sweep", false, "run the deterministic-vs-interactive contention sweep and exit: DET (run twice, digests must match) vs NO_WAIT/SILO/MVCC on high-Zipfian YCSB, comparing goodput, abort rate, and tail latency; writes -det-out")
		detOut     = flag.String("det-out", "BENCH_det.json", "output path for the -det-sweep JSON report")

		// Checkpointing / bounded recovery.
		doPartSweep = flag.Bool("partition-sweep", false, "run the partition-fault sweep and exit: on a partition-affinity WAL engine, measure healthy goodput, quarantine one partition and measure surviving-partition goodput plus terminal abort classification, then compare live single-partition recovery against whole-engine store recovery of the same history; writes -partition-out")
		partOut     = flag.String("partition-out", "BENCH_partition.json", "output path for the -partition-sweep JSON report")

		doRecoverSweep = flag.Bool("recover-sweep", false, "run the checkpoint-interval recovery sweep and exit: build the same transaction history with checkpoints every {never, 16N, 4N, N} commits, crash-attach each store, and measure store-based recovery time vs full-log replay; writes -recover-out")
		recoverOut     = flag.String("recover-out", "BENCH_recovery.json", "output path for the -recover-sweep JSON report")
		recoverTxns    = flag.Int("recover-txns", 0, "recover-sweep: total committed transactions of history per point (default 125000)")
		ckptDir        = flag.String("ckpt-dir", "", "recover-sweep: checkpoint store scratch directory (default: a temp dir, removed afterwards)")
		ckptEvery      = flag.Int("ckpt-every", 0, "recover-sweep: finest checkpoint interval N in commits (default 2000)")
		ckptKeep       = flag.Int("ckpt-keep", 0, "recover-sweep: checkpoint generations to retain (default 2)")
	)
	flag.Parse()

	if *doWALSweep {
		runWALSweep(walSweepOpts{
			Threads: *threads, Duration: *duration, Warmup: *warmup,
			Seed: *seed, Out: *walOut,
		})
		return
	}
	if *doDetSweep {
		runDetSweep(detSweepOpts{
			Threads: *threads, Batch: *detBatch, Duration: *duration,
			Seed: *seed, Theta: *theta, Out: *detOut,
		})
		return
	}
	if *doPartSweep {
		runPartitionSweep(partitionSweepOpts{
			Partitions: *partitions, Duration: *duration, Seed: *seed, Out: *partOut,
		})
		return
	}
	if *doRecoverSweep {
		runRecoverSweep(recoverSweepOpts{
			Threads: *threads, Txns: *recoverTxns, Every: *ckptEvery,
			Keep: *ckptKeep, Streams: *walStreams, Seed: *seed,
			Dir: *ckptDir, Out: *recoverOut,
		})
		return
	}
	if *tortureN > 0 {
		runTorture(*protocol, *tortureN, *seed)
		return
	}
	if *doVerify {
		runVerifySweep(*isolation, *threads, *seed)
		return
	}

	cfg := core.Config{
		Protocol:          *protocol,
		Threads:           *threads,
		Partitions:        *partitions,
		Isolation:         *isolation,
		GroupCommitWindow: *gcWindow,
	}
	switch *logMode {
	case "none":
	case "value":
		cfg.LogMode = wal.ModeValue
	case "command":
		cfg.LogMode = wal.ModeCommand
	default:
		fatal("unknown -log %q", *logMode)
	}
	if cfg.LogMode != wal.ModeNone {
		if *logPath == "" {
			fatal("-log %s requires -logpath", *logMode)
		}
		if *walStreams > 1 {
			devs := make([]wal.Device, *walStreams)
			for i := range devs {
				f, err := os.OpenFile(fmt.Sprintf("%s.%d", *logPath, i),
					os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
				if err != nil {
					fatal("open log stream %d: %v", i, err)
				}
				defer f.Close()
				devs[i] = f
			}
			mf, err := os.Create(*logPath + ".manifest.json")
			if err != nil {
				fatal("create manifest: %v", err)
			}
			if err := wal.WriteManifest(mf, wal.Manifest{Streams: *walStreams, Mode: *logMode}); err != nil {
				fatal("write manifest: %v", err)
			}
			mf.Close()
			cfg.WALStreams = *walStreams
			cfg.LogDevices = devs
		} else {
			f, err := os.OpenFile(*logPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
			if err != nil {
				fatal("open log: %v", err)
			}
			defer f.Close()
			cfg.LogDevice = f
		}
	}

	var wl workload.Workload
	switch *wlName {
	case "ycsb":
		wl = workload.NewYCSB(workload.YCSBConfig{
			Records: *records, Theta: *theta, OpsPerTxn: *ops,
			ReadRatio: *reads, MultiPartitionFraction: *multiP,
		})
	case "tpcc":
		wl = workload.NewTPCC(workload.TPCCConfig{
			Warehouses: *warehouses, Items: *items, CustomersPerDistrict: *customers,
		})
	case "smallbank":
		wl = workload.NewSmallBank(workload.SmallBankConfig{
			Customers: *accounts, HotspotProb: *hotspot,
		})
	default:
		fatal("unknown -workload %q", *wlName)
	}

	if *doDet {
		da, ok := wl.(workload.DeclaredAccess)
		if !ok {
			fatal("-det requires a workload with declared access sets (ycsb)")
		}
		parts := *partitions
		if parts <= 0 {
			parts = *threads
		}
		runDet(cfg, da, detOpts{
			Partitions: parts, Batch: *detBatch, Batches: 64,
			Seed: *seed, Rate: *rate, Duration: *duration, Allocs: *allocs,
		})
		return
	}

	if *doOverload {
		runOverload(cfg, wl, overloadOpts{
			Threads: *threads, Duration: *duration, Warmup: *warmup,
			Seed: *seed, SLO: *slo, Out: *overloadOut,
		})
		return
	}

	opts := harness.RunOptions{
		Threads: *threads, Duration: *duration, WarmupTxns: *warmup, Seed: *seed,
		MeasureAllocs: *allocs,
		Retry: core.RetryPolicy{
			MaxAttempts: *retryAttempts, SpinAttempts: *retrySpin,
			BaseDelay: *retryBase, MaxDelay: *retryMax,
		},
		OfferedRate:        *rate,
		Deadline:           *deadlineD,
		GoodputWindow:      *slo,
		QueueLIFOAge:       *queueLIFOAge,
		QueueCoDelTarget:   *queueCoDelTarget,
		QueueCoDelInterval: *queueCoDelInterval,
	}
	if *admit {
		opts.Admission = &admission.Config{
			MaxInFlight: *admitMax, MaxQueueWait: *admitQueue, TargetLatency: *admitTarget,
		}
		opts.AdmissionPerPartition = *admitParts
	}
	fmt.Printf("next700-bench: %s on %s, %d threads, %v\n",
		*wlName, *protocol, *threads, *duration)
	res, err := harness.Run(cfg, wl, opts)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Println(res)
	fmt.Printf("  commits=%d aborts=%d user_aborts=%d fatal_aborts=%d deadline_aborts=%d shed=%d waits=%d\n",
		res.Commits, res.Aborts, res.UserAborts, res.FatalAborts, res.DeadlineAborts, res.ShedAborts, res.Waits)
	fmt.Printf("  latency: %s\n", res.Latency)
	if *rate > 0 {
		fmt.Printf("  open-loop: offered=%.0f/s arrivals=%d goodput=%.0f/s late=%d backlog=%d\n",
			res.Offered, res.Arrivals, res.Goodput, res.LateCommits, res.Backlog)
		if res.QueueDropped > 0 || res.QueueLIFOServed > 0 {
			fmt.Printf("  queue discipline: codel_dropped=%d lifo_served=%d\n",
				res.QueueDropped, res.QueueLIFOServed)
		}
		fmt.Printf("  queue: %s\n", res.QueueLatency)
		fmt.Printf("  e2e:   %s\n", res.E2ELatency)
		if res.AdmissionLimit > 0 {
			fmt.Printf("  admission limit: %d\n", res.AdmissionLimit)
		}
		if len(res.AdmissionLimits) > 0 {
			fmt.Printf("  per-partition limits: %v\n", res.AdmissionLimits)
		}
	}
	if *doRecover {
		if cfg.LogMode == wal.ModeNone {
			fatal("-recover requires -log value|command")
		}
		printRecovery(cfg, wl, *logPath, *walStreams)
	}
	if *allocs {
		fmt.Printf("  allocs/txn=%.2f bytes/txn=%.1f\n", res.AllocsPerTxn, res.BytesPerTxn)
		if err := writeAllocsReport(*allocsOut, *wlName, *protocol, res); err != nil {
			fatal("write allocs report: %v", err)
		}
		fmt.Printf("  allocs report: %s\n", *allocsOut)
	}
}

// runVerifySweep drives the stamped verification probe under contention on
// every protocol and prints per-protocol anomaly counts. Any anomaly under
// the default (serializable) isolation is fatal; sweeping with
// -isolation snapshot is the way to watch MVCC legitimately admit write
// skew (G2).
func runVerifySweep(isolation string, threads int, seed uint64) {
	if threads <= 0 {
		threads = 4
	}
	const txnsPerWorker = 400
	fmt.Printf("next700-bench: isolation-anomaly sweep, %d threads × %d txns, 16 keys\n",
		threads, txnsPerWorker)
	anomalous := false
	for _, protocol := range cc.Names() {
		probe := verify.NewProbe(verify.ProbeConfig{Keys: 16, MinOps: 2, MaxOps: 4})
		res, err := harness.Run(
			core.Config{Protocol: protocol, Threads: threads, Isolation: isolation},
			probe,
			harness.RunOptions{TxnsPerWorker: txnsPerWorker, Verify: true, Seed: seed},
		)
		if err != nil {
			fatal("verify %s: %v", protocol, err)
		}
		rep := res.Verification
		fmt.Printf("  %-10s txns=%-6d aborted_attempts=%-6d edges=%-8d anomalies=%d\n",
			protocol, rep.Txns, rep.AbortedTxns, rep.Edges, len(rep.Anomalies))
		for i, a := range rep.Anomalies {
			if i >= 3 {
				fmt.Printf("    ... and %d more\n", len(rep.Anomalies)-i)
				break
			}
			fmt.Printf("    %s\n", a)
		}
		if !rep.Ok() {
			anomalous = true
		}
	}
	if anomalous {
		fatal("isolation anomalies detected")
	}
	fmt.Println("  verify: all protocols anomaly-free")
}

// runTorture executes the seeded crash-recovery torture suite for both log
// modes and reports coverage. Any invariant violation is fatal and names
// the seed so the failure replays deterministically.
func runTorture(protocol string, iters int, seed uint64) {
	fmt.Printf("next700-bench: torture, %s, %d iterations per log mode\n", protocol, iters)
	for _, m := range []struct {
		name string
		mode wal.Mode
	}{{"value", wal.ModeValue}, {"command", wal.ModeCommand}} {
		var crashed, torn, acked int
		for i := 0; i < iters; i++ {
			s := seed + uint64(i)
			res, err := torture.Run(torture.Config{
				Protocol: protocol, LogMode: m.mode, Seed: s, TransientSyncEvery: 5,
			})
			if err != nil {
				fatal("torture %s seed %d: %v", m.name, s, err)
			}
			if res.Crashed {
				crashed++
			}
			if res.Recovery.TornBytes > 0 {
				torn++
			}
			acked += res.Acked
		}
		fmt.Printf("  %-7s: %d iterations, %d crashed, %d torn tails, %d acked commits, 0 violations\n",
			m.name, iters, crashed, torn, acked)
	}
}

// printRecovery replays the just-written log into a fresh engine (same
// deterministic workload load) and prints what recovery saw, including the
// damage accounting for torn tails and CRC-corrupt final records. With
// streams > 1 it pairs the manifest with the per-stream files and merges by
// epoch instead.
func printRecovery(cfg core.Config, template workload.Workload, logPath string, streams int) {
	// The replay engine's own log is irrelevant: run it single-stream into
	// a discard device regardless of how the recovered log was sharded.
	cfg.LogDevice = discardDevice{}
	cfg.WALStreams = 0
	cfg.LogDevices = nil
	e, err := core.Open(cfg)
	if err != nil {
		fatal("recover open: %v", err)
	}
	defer e.Close()
	if err := freshWorkload(template).Setup(e); err != nil {
		fatal("recover setup: %v", err)
	}
	t0 := time.Now()
	var st core.RecoveryStats
	if streams > 1 {
		mf, err := os.Open(logPath + ".manifest.json")
		if err != nil {
			fatal("recover: %v", err)
		}
		m, err := wal.ReadManifest(mf)
		mf.Close()
		if err != nil {
			fatal("recover: %v", err)
		}
		readers := make([]io.Reader, m.Streams)
		for i := range readers {
			lf, err := os.Open(fmt.Sprintf("%s.%d", logPath, i))
			if err != nil {
				fatal("recover stream %d: %v", i, err)
			}
			defer lf.Close()
			readers[i] = lf
		}
		st, err = e.RecoverStreams(readers)
		if err != nil {
			fatal("recover: %v", err)
		}
	} else {
		lf, err := os.Open(logPath)
		if err != nil {
			fatal("recover: %v", err)
		}
		defer lf.Close()
		st, err = e.Recover(lf)
		if err != nil {
			fatal("recover: %v", err)
		}
	}
	fmt.Printf("  recovery: records=%d entries=%d skipped=%d procs=%d bytes=%d torn_bytes=%d corrupt_tail=%d in %v\n",
		st.Records, st.Entries, st.Skipped, st.Procs, st.Bytes, st.TornBytes, st.CorruptTailRecords,
		time.Since(t0).Round(time.Millisecond))
	if st.Streams > 1 {
		fmt.Printf("  recovery: streams=%d frontier_epoch=%d truncated=%d\n",
			st.Streams, st.FrontierEpoch, st.TruncatedRecords)
	}
}

// discardDevice drops log writes (used by the recovery-side engine, whose
// own re-logging output is irrelevant).
type discardDevice struct{}

func (discardDevice) Write(p []byte) (int, error) { return len(p), nil }
func (discardDevice) Sync() error                 { return nil }

// allocsReport is one (protocol × workload) allocation measurement, written
// as JSON for trajectory tracking across runs.
type allocsReport struct {
	Workload     string  `json:"workload"`
	Protocol     string  `json:"protocol"`
	Threads      int     `json:"threads"`
	Commits      uint64  `json:"commits"`
	Tps          float64 `json:"tps"`
	AllocsPerTxn float64 `json:"allocs_per_txn"`
	BytesPerTxn  float64 `json:"bytes_per_txn"`
}

// writeAllocsReport appends the measurement to the JSON report: the file
// holds an array of rows so successive runs accumulate a trajectory.
func writeAllocsReport(path, wlName, protocol string, res harness.Result) error {
	var rows []allocsReport
	if prev, err := os.ReadFile(path); err == nil {
		// Best-effort: a corrupt or foreign file is restarted, not fatal.
		_ = json.Unmarshal(prev, &rows)
	}
	rows = append(rows, allocsReport{
		Workload:     wlName,
		Protocol:     protocol,
		Threads:      res.Threads,
		Commits:      res.Commits,
		Tps:          res.Tps,
		AllocsPerTxn: res.AllocsPerTxn,
		BytesPerTxn:  res.BytesPerTxn,
	})
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// freshWorkload clones a workload's configuration into an unused instance
// (workloads are single-Setup).
func freshWorkload(template workload.Workload) workload.Workload {
	switch w := template.(type) {
	case *workload.YCSB:
		return workload.NewYCSB(w.Config())
	case *workload.TPCC:
		return workload.NewTPCC(w.Config())
	case *workload.SmallBank:
		return workload.NewSmallBank(w.Config())
	default:
		return template
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "next700-bench: "+format+"\n", args...)
	os.Exit(1)
}

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"next700/internal/core"
	"next700/internal/fault"
	"next700/internal/harness"
	"next700/internal/wal"
	"next700/internal/workload"
)

// walSweepOpts parameterizes the -wal-sweep run.
type walSweepOpts struct {
	Threads  int
	Duration time.Duration
	Warmup   int
	Seed     uint64
	Out      string
}

// walRow is one stream-count measurement in the JSON report.
type walRow struct {
	Streams int     `json:"streams"`
	Threads int     `json:"threads"`
	Commits uint64  `json:"commits"`
	Tps     float64 `json:"tps"`
	P50Ms   float64 `json:"p50_ms"`
	P99Ms   float64 `json:"p99_ms"`
	// LogBytes is the total bytes written across all streams (markers
	// included) — near-constant across rows, which is what makes the
	// throughput ratio a clean bandwidth-scaling measurement.
	LogBytes int64 `json:"log_bytes"`
	// SpeedupVs1 is Tps relative to the single-stream row.
	SpeedupVs1 float64 `json:"speedup_vs_1"`
}

// walReport is the full sweep, written as one JSON document.
type walReport struct {
	Workload string `json:"workload"`
	Protocol string `json:"protocol"`
	// DeviceByteLatencyUs and DeviceSyncLatencyUs describe the simulated
	// device: a per-byte write cost (≈1 MB/s at 1µs/byte) plus a fixed
	// sync cost, so a single log stream is bandwidth-bound and the sweep
	// measures how the commit path scales when the log splits.
	DeviceByteLatencyUs float64  `json:"device_byte_latency_us"`
	DeviceSyncLatencyUs float64  `json:"device_sync_latency_us"`
	Rows                []walRow `json:"rows"`
}

// runWALSweep measures commit-path throughput under value logging on a
// bandwidth-limited simulated device at 1, 2, and 4 WAL streams. Every
// transaction commits synchronously (waits for its record to be durable), so
// throughput is gated by how fast the log drains: one stream serializes all
// workers behind a single device's transfer time, while N streams split the
// byte load N ways and the epoch-based frontier keeps the durability
// guarantee global. The per-byte device cost is what real devices charge for
// bandwidth; the sweep's speedup at 4 streams is the parallel-WAL payoff.
func runWALSweep(o walSweepOpts) {
	// The sweep needs enough concurrency to saturate the simulated device:
	// with too few workers the run is commit-latency-bound and the stream
	// count barely matters. 16 is the floor; -threads can raise it.
	if o.Threads < 16 {
		o.Threads = 16
	}
	const (
		byteLatency = time.Microsecond      // ≈1 MB/s per device
		syncLatency = 50 * time.Microsecond // fixed per-sync cost
	)
	wlCfg := workload.YCSBConfig{Records: 65536, OpsPerTxn: 8, ReadRatio: 0}
	fmt.Printf("next700-bench: parallel-WAL sweep, SILO + value log, %d threads, %v per point\n",
		o.Threads, o.Duration)

	rep := walReport{
		Workload: "ycsb", Protocol: "SILO",
		DeviceByteLatencyUs: float64(byteLatency) / float64(time.Microsecond),
		DeviceSyncLatencyUs: float64(syncLatency) / float64(time.Microsecond),
	}
	var base float64
	for _, streams := range []int{1, 2, 4} {
		devs := make([]wal.Device, streams)
		faults := make([]*fault.Device, streams)
		for i := range devs {
			faults[i] = fault.NewDevice(&fault.MemDevice{}, fault.Plan{
				Seed:             o.Seed + uint64(i),
				WriteByteLatency: byteLatency,
				SyncLatency:      syncLatency,
			})
			devs[i] = faults[i]
		}
		cfg := core.Config{
			Protocol: "SILO", Threads: o.Threads,
			LogMode:           wal.ModeValue,
			GroupCommitWindow: 200 * time.Microsecond,
		}
		if streams > 1 {
			cfg.WALStreams = streams
			cfg.LogDevices = devs
		} else {
			cfg.LogDevice = devs[0]
		}
		res, err := harness.Run(cfg, workload.NewYCSB(wlCfg), harness.RunOptions{
			Threads: o.Threads, Duration: o.Duration, WarmupTxns: o.Warmup, Seed: o.Seed,
		})
		if err != nil {
			fatal("wal-sweep streams=%d: %v", streams, err)
		}
		var logBytes int64
		for _, d := range faults {
			logBytes += d.Written()
		}
		row := walRow{
			Streams:  streams,
			Threads:  o.Threads,
			Commits:  res.Commits,
			Tps:      res.Tps,
			P50Ms:    float64(res.Latency.P50) / float64(time.Millisecond),
			P99Ms:    float64(res.Latency.P99) / float64(time.Millisecond),
			LogBytes: logBytes,
		}
		if streams == 1 {
			base = res.Tps
		}
		if base > 0 {
			row.SpeedupVs1 = res.Tps / base
		}
		rep.Rows = append(rep.Rows, row)
		fmt.Printf("  streams=%d tps=%-9.0f p50=%-8v p99=%-8v log_bytes=%d speedup=%.2fx\n",
			streams, res.Tps, time.Duration(res.Latency.P50).Round(time.Microsecond),
			time.Duration(res.Latency.P99).Round(time.Microsecond), logBytes, row.SpeedupVs1)
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal("wal-sweep: %v", err)
	}
	if err := os.WriteFile(o.Out, append(out, '\n'), 0o644); err != nil {
		fatal("wal-sweep: %v", err)
	}
	fmt.Printf("  report: %s\n", o.Out)
	last := rep.Rows[len(rep.Rows)-1]
	if last.SpeedupVs1 < 1.5 {
		fmt.Printf("  WARNING: 4-stream speedup %.2fx below the 1.5x target\n", last.SpeedupVs1)
	}
}

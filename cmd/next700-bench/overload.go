package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"next700/internal/admission"
	"next700/internal/core"
	"next700/internal/harness"
	"next700/internal/workload"
)

// overloadOpts parameterizes the -overload sweep.
type overloadOpts struct {
	Threads  int
	Duration time.Duration
	Warmup   int
	Seed     uint64
	// SLO is the goodput window: a commit slower than this (arrival to
	// completion) is late, not good. 0 selects 50ms.
	SLO time.Duration
	Out string
}

// overloadRow is one sweep measurement in the JSON report.
type overloadRow struct {
	// Mode is capacity (closed loop), unprotected (open loop, no deadline,
	// no admission), or protected (enforced deadline + admission control).
	Mode           string  `json:"mode"`
	Multiplier     float64 `json:"multiplier,omitempty"`
	OfferedTps     float64 `json:"offered_tps,omitempty"`
	Tps            float64 `json:"tps"`
	GoodputTps     float64 `json:"goodput_tps"`
	GoodputVsPeak  float64 `json:"goodput_vs_peak"`
	LateCommits    uint64  `json:"late_commits"`
	DeadlineAborts uint64  `json:"deadline_aborts"`
	ShedAborts     uint64  `json:"shed_aborts"`
	Backlog        uint64  `json:"backlog"`
	QueueP99Ms     float64 `json:"queue_p99_ms,omitempty"`
	E2EP99Ms       float64 `json:"e2e_p99_ms,omitempty"`
	AdmissionLimit int     `json:"admission_limit,omitempty"`
	// AdmissionTimeline is the per-window controller trace for protected
	// rows: how the AIMD limit, the latency EWMA, and the shed rate moved
	// over the run (harness.Result.AdmissionTimeline in report form).
	AdmissionTimeline []admissionPoint `json:"admission_timeline,omitempty"`
}

// admissionPoint is one admission-timeline sample in report form.
type admissionPoint struct {
	OffsetMs float64 `json:"offset_ms"`
	Limit    int     `json:"limit"`
	InFlight int     `json:"in_flight"`
	EWMAMs   float64 `json:"ewma_ms"`
	ShedRate float64 `json:"shed_rate"`
}

// overloadReport is the full sweep, written as one JSON document.
type overloadReport struct {
	Workload   string        `json:"workload"`
	Protocol   string        `json:"protocol"`
	Threads    int           `json:"threads"`
	SLOMs      float64       `json:"slo_ms"`
	DeadlineMs float64       `json:"deadline_ms"`
	PeakTps    float64       `json:"peak_tps"`
	Rows       []overloadRow `json:"rows"`
}

// runOverload measures closed-loop capacity, then offers 1x/2x/3x that rate
// open-loop, once with no protection (every arrival is eventually executed,
// however stale) and once with an enforced deadline plus admission control.
// The contrast is the point of the experiment: the unprotected engine's raw
// throughput survives overload but its goodput collapses — the queue grows
// without bound, so everything it commits is already late — while the
// protected engine sheds stale and excess work cheaply and keeps goodput
// near the closed-loop peak.
//
// The protected rows enforce a deadline of SLO/2, not the SLO itself: under
// sustained overload a FIFO queue serves arrivals right at the age-out
// edge, so enforcing the SLO directly would commit mostly just-late work.
// Enforcing at half leaves survivors headroom to land inside the SLO. The
// open-loop rows run a worker pool twice the capacity configuration so the
// admission semaphore (capped at the measured-capacity concurrency) is a
// real constraint rather than a no-op behind the pool size.
func runOverload(cfg core.Config, template workload.Workload, o overloadOpts) {
	if o.SLO <= 0 {
		o.SLO = 50 * time.Millisecond
	}
	deadline := o.SLO / 2
	fmt.Printf("next700-bench: overload sweep, %s on %s, %d threads, %v per row, slo=%v deadline=%v\n",
		template.Name(), cfg.Protocol, o.Threads, o.Duration, o.SLO, deadline)

	base := harness.RunOptions{
		Threads: o.Threads, Duration: o.Duration, WarmupTxns: o.Warmup, Seed: o.Seed,
	}
	peak, err := harness.Run(cfg, freshWorkload(template), base)
	if err != nil {
		fatal("overload capacity run: %v", err)
	}
	fmt.Printf("  closed-loop capacity: %.0f tps (p99 %v)\n",
		peak.Tps, time.Duration(peak.Latency.P99))

	rep := overloadReport{
		Workload: template.Name(), Protocol: cfg.Protocol, Threads: o.Threads,
		SLOMs:      float64(o.SLO) / float64(time.Millisecond),
		DeadlineMs: float64(deadline) / float64(time.Millisecond),
		PeakTps:    peak.Tps,
		Rows: []overloadRow{{
			Mode: "capacity", Tps: peak.Tps, GoodputTps: peak.Tps, GoodputVsPeak: 1,
		}},
	}

	fmt.Printf("  %-12s %5s %12s %12s %12s %8s %10s %10s %10s %12s\n",
		"mode", "mult", "offered/s", "tps", "goodput/s", "good%", "late", "dl_aborts", "shed", "e2e_p99")
	for _, mult := range []float64{1, 2, 3} {
		rate := mult * peak.Tps
		open := base
		open.Threads = 2 * o.Threads
		open.OfferedRate = rate

		un := open
		un.GoodputWindow = o.SLO
		resU, err := harness.Run(cfg, freshWorkload(template), un)
		if err != nil {
			fatal("overload unprotected %gx: %v", mult, err)
		}
		rep.Rows = append(rep.Rows, sweepRow("unprotected", mult, rate, peak.Tps, resU))
		printSweepRow(rep.Rows[len(rep.Rows)-1])

		pr := open
		pr.Deadline = deadline
		pr.GoodputWindow = o.SLO
		pr.Admission = &admission.Config{
			MaxInFlight:   o.Threads,
			MaxQueueWait:  deadline / 2,
			TargetLatency: deadline,
		}
		resP, err := harness.Run(cfg, freshWorkload(template), pr)
		if err != nil {
			fatal("overload protected %gx: %v", mult, err)
		}
		rep.Rows = append(rep.Rows, sweepRow("protected", mult, rate, peak.Tps, resP))
		printSweepRow(rep.Rows[len(rep.Rows)-1])
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal("overload report: %v", err)
	}
	if err := os.WriteFile(o.Out, append(out, '\n'), 0o644); err != nil {
		fatal("overload report: %v", err)
	}
	fmt.Printf("  overload report: %s\n", o.Out)
}

func sweepRow(mode string, mult, rate, peakTps float64, res harness.Result) overloadRow {
	var tl []admissionPoint
	for _, s := range res.AdmissionTimeline {
		tl = append(tl, admissionPoint{
			OffsetMs: float64(s.Offset) / float64(time.Millisecond),
			Limit:    s.Limit,
			InFlight: s.InFlight,
			EWMAMs:   float64(s.LatencyEWMA) / float64(time.Millisecond),
			ShedRate: s.ShedRate,
		})
	}
	return overloadRow{
		Mode:              mode,
		Multiplier:        mult,
		OfferedTps:        rate,
		Tps:               res.Tps,
		GoodputTps:        res.Goodput,
		GoodputVsPeak:     res.Goodput / peakTps,
		LateCommits:       res.LateCommits,
		DeadlineAborts:    res.DeadlineAborts,
		ShedAborts:        res.ShedAborts,
		Backlog:           res.Backlog,
		QueueP99Ms:        float64(res.QueueLatency.P99) / float64(time.Millisecond),
		E2EP99Ms:          float64(res.E2ELatency.P99) / float64(time.Millisecond),
		AdmissionLimit:    res.AdmissionLimit,
		AdmissionTimeline: tl,
	}
}

func printSweepRow(r overloadRow) {
	fmt.Printf("  %-12s %4gx %12.0f %12.0f %12.0f %7.1f%% %10d %10d %10d %10.1fms\n",
		r.Mode, r.Multiplier, r.OfferedTps, r.Tps, r.GoodputTps, 100*r.GoodputVsPeak,
		r.LateCommits, r.DeadlineAborts, r.ShedAborts, r.E2EP99Ms)
}

package harness

import (
	"math"
	"sync"
	"time"
)

// arrivalQueue is the open-loop arrival buffer with a pluggable discipline.
// The default is the classic bounded FIFO. Two overload disciplines can be
// layered on, both standard results from datacenter queueing practice:
//
//   - Adaptive LIFO (lifoAge > 0): while the queue is congested — the
//     oldest waiting arrival is older than lifoAge — workers serve
//     newest-first. Under sustained overload a FIFO serves every entry
//     right at the age-out edge and goodput collapses to zero even though
//     the engine is saturated with work; LIFO serves fresh arrivals that
//     can still meet their deadline and lets the stale ones age out
//     unexecuted. When the queue drains below the threshold the discipline
//     reverts to FIFO, so an uncongested run is byte-for-byte unchanged.
//
//   - CoDel-style age dropping at enqueue (codelTarget > 0): the queue
//     tracks how long the head has continuously exceeded the target age;
//     once that persists for a full interval it enters a dropping state and
//     evicts the head at enqueue time, at the CoDel control-law rate
//     (interval / sqrt(drops)), until the head age dips back under the
//     target. Dropping at enqueue means a doomed arrival is shed before a
//     worker spends scheduling work on it — the difference between
//     shedding in the queue and shedding in the engine is the shed work
//     per good commit.
//
// All methods taking an explicit now are deterministic and unit-testable;
// the blocking pop wraps them with the real clock.
type arrivalQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []int64 // arrival timestamps (UnixNano); buf[head:] is the queue, oldest first
	head   int
	cap    int
	closed bool

	lifoAge       time.Duration
	codelTarget   time.Duration
	codelInterval time.Duration

	// CoDel state machine.
	firstAbove int64 // when the head age first stayed above target (0 = below)
	dropping   bool
	dropNext   int64
	dropCount  int

	// Discipline accounting.
	dropped  uint64 // CoDel evictions at enqueue
	overflow uint64 // bounded-capacity rejections
	lifoPops uint64 // pops served newest-first
}

func newArrivalQueue(capacity int, lifoAge, codelTarget, codelInterval time.Duration) *arrivalQueue {
	if codelTarget > 0 && codelInterval <= 0 {
		codelInterval = 100 * time.Millisecond // the CoDel paper's default RTT-scale window
	}
	q := &arrivalQueue{
		cap:           capacity,
		lifoAge:       lifoAge,
		codelTarget:   codelTarget,
		codelInterval: codelInterval,
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *arrivalQueue) size() int { return len(q.buf) - q.head }

// pushAt offers one arrival at time now. CoDel evictions happen here, on
// the oldest entries, before the capacity check.
func (q *arrivalQueue) pushAt(ts, now int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	if q.codelTarget > 0 {
		q.codelDrop(now)
	}
	if q.size() >= q.cap {
		q.overflow++
		return
	}
	q.buf = append(q.buf, ts)
	q.cond.Signal()
}

// codelDrop runs the CoDel control law against the head age, with q.mu
// held: persistent congestion (head older than target for a whole
// interval) starts evicting the head at interval/sqrt(n) spacing until the
// head age falls back under the target.
func (q *arrivalQueue) codelDrop(now int64) {
	for {
		if q.size() == 0 || now-q.buf[q.head] < int64(q.codelTarget) {
			q.firstAbove = 0
			q.dropping = false
			return
		}
		if q.firstAbove == 0 {
			q.firstAbove = now + int64(q.codelInterval)
			return
		}
		if !q.dropping {
			if now < q.firstAbove {
				return
			}
			q.dropping = true
			q.dropCount = 0
			q.dropNext = now
		}
		if now < q.dropNext {
			return
		}
		q.takeHead()
		q.dropped++
		q.dropCount++
		// Advance from the previous schedule, not from now: when enqueues
		// are sparse relative to the drop spacing the law catches up with a
		// batch of evictions, exactly as CoDel's estimator does.
		q.dropNext += int64(float64(q.codelInterval) / math.Sqrt(float64(q.dropCount)))
	}
}

func (q *arrivalQueue) takeHead() int64 {
	ts := q.buf[q.head]
	q.head++
	if q.head > len(q.buf)/2 && q.head > 64 {
		q.buf = append(q.buf[:0], q.buf[q.head:]...)
		q.head = 0
	}
	return ts
}

func (q *arrivalQueue) takeTail() int64 {
	ts := q.buf[len(q.buf)-1]
	q.buf = q.buf[:len(q.buf)-1]
	return ts
}

// popAt takes one arrival at time now without blocking. The second result
// is false when nothing is queued or the queue is closed — a closed queue
// stops serving immediately; whatever remains is backlog, exactly like the
// undrained channel buffer the queue replaced.
func (q *arrivalQueue) popAt(now int64) (int64, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.popLocked(now)
}

func (q *arrivalQueue) popLocked(now int64) (int64, bool) {
	if q.closed || q.size() == 0 {
		return 0, false
	}
	if q.lifoAge > 0 && q.size() > 1 && now-q.buf[q.head] >= int64(q.lifoAge) {
		q.lifoPops++
		return q.takeTail(), true
	}
	return q.takeHead(), true
}

// pop blocks until an arrival is available or the queue closes.
func (q *arrivalQueue) pop() (int64, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			return 0, false
		}
		if q.size() > 0 {
			return q.popLocked(time.Now().UnixNano())
		}
		q.cond.Wait()
	}
}

// close stops the queue: blocked and future pops return false immediately.
func (q *arrivalQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// stats returns (remaining, codel-dropped, overflow, lifo-served).
func (q *arrivalQueue) stats() (remaining int, dropped, overflow, lifoPops uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size(), q.dropped, q.overflow, q.lifoPops
}

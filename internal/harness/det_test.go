package harness

import (
	"testing"
	"time"

	"next700/internal/core"
	"next700/internal/verify"
	"next700/internal/workload"
)

func detYCSB() *workload.YCSB {
	return workload.NewYCSB(workload.YCSBConfig{
		Records:                2048,
		OpsPerTxn:              8,
		ReadRatio:              0.5,
		Theta:                  0.9, // high contention: where det's abort-freedom matters
		MultiPartitionFraction: 0.3,
	})
}

// TestRunDetSameSeedSameDigest is determinism oracle #1: two runs of the
// same seeded schedule produce byte-identical state digests, abort-free.
func TestRunDetSameSeedSameDigest(t *testing.T) {
	opts := DetOptions{Batch: 32, Batches: 12, Seed: 7}
	cfg := core.Config{Partitions: 2}
	a, err := RunDet(cfg, detYCSB(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDet(cfg, detYCSB(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest == "" || a.Digest != b.Digest {
		t.Fatalf("same-seed digests differ: %q vs %q", a.Digest, b.Digest)
	}
	if a.Commits != 32*12 {
		t.Fatalf("commits = %d, want %d", a.Commits, 32*12)
	}
	if a.Aborts != 0 || a.FatalAborts != 0 {
		t.Fatalf("deterministic run aborted: %d conflict, %d fatal", a.Aborts, a.FatalAborts)
	}
}

// TestRunDetDigestAcrossWorkers is determinism oracle #2: the same seeded
// schedule executed with 1, 2, 4, and 8 partition executors reaches the
// same digest — queue-oriented execution is equivalent to the serial
// priority order at any worker count.
func TestRunDetDigestAcrossWorkers(t *testing.T) {
	opts := DetOptions{Batch: 32, Batches: 10, Seed: 99}
	var ref string
	for _, workers := range []int{1, 2, 4, 8} {
		res, err := RunDet(core.Config{Partitions: workers}, detYCSB(), opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Aborts != 0 {
			t.Fatalf("workers=%d: %d conflict aborts", workers, res.Aborts)
		}
		if ref == "" {
			ref = res.Digest
		} else if res.Digest != ref {
			t.Fatalf("workers=%d digest %s != reference %s", workers, res.Digest, ref)
		}
	}
}

// TestRunDetOpenLoop smoke-tests batch-arrival mode: arrivals flow, batches
// cut on size or age, and the latency decomposition is populated.
func TestRunDetOpenLoop(t *testing.T) {
	res, err := RunDet(core.Config{Partitions: 2}, detYCSB(), DetOptions{
		Batch:         16,
		Seed:          3,
		OfferedRate:   4000,
		MaxBatchDelay: 2 * time.Millisecond,
		Duration:      250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 {
		t.Fatal("open-loop det run committed nothing")
	}
	if res.Arrivals < res.Commits {
		t.Fatalf("arrivals %d < commits %d", res.Arrivals, res.Commits)
	}
	if res.QueueLatency.Count == 0 || res.E2ELatency.Count == 0 {
		t.Fatalf("latency decomposition missing: queue=%d e2e=%d",
			res.QueueLatency.Count, res.E2ELatency.Count)
	}
	if res.Aborts != 0 {
		t.Fatalf("open-loop det run had %d conflict aborts", res.Aborts)
	}
}

// TestRunDetVerified drives the deterministic stamped probe through RunDet
// with history recording on: the checked report must be anomaly-free, on a
// contended keyspace with cross-partition delivery pairs in the mix.
func TestRunDetVerified(t *testing.T) {
	probe := verify.NewDetProbe(verify.ProbeConfig{
		Keys:          12,
		MinOps:        2,
		MaxOps:        6,
		WriteRatio:    0.5,
		CrossFraction: 0.3,
	})
	res, err := RunDet(core.Config{Partitions: 4}, probe, DetOptions{Batch: 24, Batches: 10, Seed: 5, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verification == nil {
		t.Fatal("no verification report")
	}
	if !res.Verification.Ok() {
		t.Fatalf("anomalies in deterministic history: %v", res.Verification.Anomalies)
	}
	if res.Verification.Txns != 24*10 {
		t.Fatalf("checked %d transactions, want %d", res.Verification.Txns, 24*10)
	}
	if res.Aborts != 0 {
		t.Fatalf("deterministic probe run had %d conflict aborts", res.Aborts)
	}
}

package harness

import (
	"fmt"
	"io"
	"os"
	"time"

	"next700/internal/cc"
	"next700/internal/core"
	"next700/internal/partition"
	"next700/internal/sim"
	"next700/internal/stats"
	"next700/internal/wal"
	"next700/internal/workload"
	"next700/internal/xrand"
)

// Experiment is one reproducible entry of the evaluation suite (see
// DESIGN.md's per-experiment index).
type Experiment struct {
	// ID is the experiment identifier (E1..E14).
	ID string
	// Title is the one-line description.
	Title string
	// Bench is the bench_test.go target that exercises the same code.
	Bench string
	// Run executes the experiment, writing its table(s) to w. quick
	// shrinks scale for fast runs (tests, smoke checks).
	Run func(w io.Writer, quick bool) error
}

// All returns the experiment suite in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "YCSB thread scalability, low contention", "BenchmarkE1_YCSBLowContention", runE1},
		{"E2", "YCSB throughput vs contention (Zipf theta)", "BenchmarkE2_YCSBContention", runE2},
		{"E3", "YCSB abort rate vs contention", "BenchmarkE3_AbortRates", runE3},
		{"E4", "YCSB read-mix sweep under contention", "BenchmarkE4_ReadMix", runE4},
		{"E5", "TPC-C throughput vs warehouse count", "BenchmarkE5_TPCC", runE5},
		{"E6", "TPC-C thread scalability at fixed warehouses", "BenchmarkE6_TPCCScale", runE6},
		{"E7", "Simulated many-core scalability (1..1024 cores)", "BenchmarkE7_ManyCore", runE7},
		{"E8", "Logging overhead and recovery", "BenchmarkE8_Logging", runE8},
		{"E9", "Simulated tail latency under contention", "BenchmarkE9_TailLatency", runE9},
		{"E10", "H-Store multi-partition cliff", "BenchmarkE10_MultiPartition", runE10},
		{"E11", "Data-oriented (DORA) vs thread-to-transaction", "BenchmarkE11_DORA", runE11},
		{"E12", "Index structure ablation (hash vs B+ tree)", "BenchmarkE12_Index", runE12},
		{"E13", "Group-commit window ablation", "BenchmarkE13_GroupCommit", runE13},
		{"E14", "MVCC isolation-level ablation", "BenchmarkE14_Isolation", runE14},
		{"E15", "HTAP: analytical scans concurrent with OLTP (extension)", "BenchmarkE15_HTAP", runE15},
	}
}

// ByID returns the experiment with the given id, or nil.
func ByID(id string) *Experiment {
	for _, e := range All() {
		if e.ID == id {
			ex := e
			return &ex
		}
	}
	return nil
}

// measurement scale helpers.
func ycsbRecords(quick bool) uint64 {
	if quick {
		return 16 * 1024
	}
	return 256 * 1024
}

func runOpts(quick bool, threads int) RunOptions {
	if quick {
		return RunOptions{Threads: threads, TxnsPerWorker: 300, WarmupTxns: 30, Seed: 7}
	}
	return RunOptions{Threads: threads, Duration: 400 * time.Millisecond, WarmupTxns: 200, Seed: 7}
}

func simHorizon(quick bool) uint64 {
	if quick {
		return 200_000
	}
	return 2_000_000
}

// ycsbSweep measures every protocol over a parameter list.
func ycsbSweep[T any](w io.Writer, header string, params []T,
	mkCfg func(p T) (core.Config, workload.YCSBConfig, RunOptions),
	cell func(r Result) interface{}) error {
	tbl := stats.NewTable(append([]string{"protocol"}, toStrings(params)...)...)
	for _, proto := range cc.Names() {
		row := make([]interface{}, 0, len(params)+1)
		row = append(row, proto)
		for _, p := range params {
			cfg, ycfg, opts := mkCfg(p)
			cfg.Protocol = proto
			r, err := Run(cfg, workload.NewYCSB(ycfg), opts)
			if err != nil {
				return fmt.Errorf("%s %v: %w", proto, p, err)
			}
			row = append(row, cell(r))
		}
		tbl.AddRow(row...)
	}
	fmt.Fprintf(w, "%s\n%s\n", header, tbl)
	return nil
}

func toStrings[T any](params []T) []string {
	out := make([]string, len(params))
	for i, p := range params {
		out[i] = fmt.Sprintf("%v", p)
	}
	return out
}

// E1: thread scalability, low contention (uniform keys, 95% reads).
func runE1(w io.Writer, quick bool) error {
	threads := []int{1, 2, 4, 8}
	return ycsbSweep(w, "E1: YCSB tps, theta=0, 95% reads, by thread count", threads,
		func(th int) (core.Config, workload.YCSBConfig, RunOptions) {
			return core.Config{Threads: th, Partitions: th},
				workload.YCSBConfig{Records: ycsbRecords(quick), OpsPerTxn: 16, ReadRatio: 0.95},
				runOpts(quick, th)
		},
		func(r Result) interface{} { return r.Tps })
}

// contentionSweep is shared by E2 and E3.
func contentionSweep(w io.Writer, quick bool, header string, cell func(Result) interface{}) error {
	thetas := []float64{0, 0.6, 0.8, 0.9, 0.99}
	const threads = 8
	return ycsbSweep(w, header, thetas,
		func(theta float64) (core.Config, workload.YCSBConfig, RunOptions) {
			return core.Config{Threads: threads, Partitions: threads},
				workload.YCSBConfig{
					Records: ycsbRecords(quick), OpsPerTxn: 16, ReadRatio: 0.5,
					Theta: theta, InterleaveOps: true,
				},
				runOpts(quick, threads)
		}, cell)
}

// E2: throughput vs skew.
func runE2(w io.Writer, quick bool) error {
	return contentionSweep(w, quick,
		"E2: YCSB tps, 8 threads, 50/50 mix, by Zipf theta",
		func(r Result) interface{} { return r.Tps })
}

// E3: abort rate vs skew (same sweep as E2).
func runE3(w io.Writer, quick bool) error {
	return contentionSweep(w, quick,
		"E3: YCSB abort rate (aborts per attempt), 8 threads, 50/50 mix, by Zipf theta",
		func(r Result) interface{} { return r.AbortRate })
}

// E4: read-mix sweep under contention.
func runE4(w io.Writer, quick bool) error {
	ratios := []float64{0, 0.25, 0.5, 0.75, 0.9, 1}
	const threads = 8
	return ycsbSweep(w, "E4: YCSB tps, theta=0.8, 8 threads, by read fraction", ratios,
		func(ratio float64) (core.Config, workload.YCSBConfig, RunOptions) {
			return core.Config{Threads: threads, Partitions: threads},
				workload.YCSBConfig{
					Records: ycsbRecords(quick), OpsPerTxn: 16, ReadRatio: ratio,
					Theta: 0.8, InterleaveOps: true,
				},
				runOpts(quick, threads)
		},
		func(r Result) interface{} { return r.Tps })
}

func tpccConfig(quick bool, warehouses int) workload.TPCCConfig {
	if quick {
		return workload.TPCCConfig{
			Warehouses: warehouses, DistrictsPerWarehouse: 4,
			CustomersPerDistrict: 120, Items: 500, InitialOrdersPerDistrict: 120,
		}
	}
	return workload.TPCCConfig{
		Warehouses: warehouses, DistrictsPerWarehouse: 10,
		CustomersPerDistrict: 600, Items: 10_000, InitialOrdersPerDistrict: 600,
	}
}

// E5: TPC-C throughput by warehouse count.
func runE5(w io.Writer, quick bool) error {
	warehouses := []int{1, 2, 4}
	const threads = 4
	tbl := stats.NewTable(append([]string{"protocol"}, toStrings(warehouses)...)...)
	for _, proto := range cc.Names() {
		row := []interface{}{proto}
		for _, wh := range warehouses {
			r, err := Run(core.Config{Protocol: proto, Threads: threads, Partitions: wh},
				workload.NewTPCC(tpccConfig(quick, wh)), runOpts(quick, threads))
			if err != nil {
				return err
			}
			row = append(row, r.Tps)
		}
		tbl.AddRow(row...)
	}
	fmt.Fprintf(w, "E5: TPC-C tps (full mix), 4 threads, by warehouse count\n%s\n", tbl)
	return nil
}

// E6: TPC-C thread scalability at W=4.
func runE6(w io.Writer, quick bool) error {
	threads := []int{1, 2, 4, 8}
	tbl := stats.NewTable(append([]string{"protocol"}, toStrings(threads)...)...)
	for _, proto := range cc.Names() {
		row := []interface{}{proto}
		for _, th := range threads {
			r, err := Run(core.Config{Protocol: proto, Threads: th, Partitions: 4},
				workload.NewTPCC(tpccConfig(quick, 4)), runOpts(quick, th))
			if err != nil {
				return err
			}
			row = append(row, r.Tps)
		}
		tbl.AddRow(row...)
	}
	fmt.Fprintf(w, "E6: TPC-C tps (full mix), W=4, by thread count\n%s\n", tbl)
	return nil
}

// E7: simulated many-core scalability.
func runE7(w io.Writer, quick bool) error {
	cores := []int{1, 4, 16, 64, 256, 1024}
	if quick {
		cores = []int{1, 16, 256}
	}
	for _, theta := range []float64{0.6, 0.8} {
		tbl := stats.NewTable(append([]string{"protocol"}, toStrings(cores)...)...)
		for _, proto := range cc.Names() {
			row := []interface{}{proto}
			for _, n := range cores {
				r, err := sim.Run(sim.Config{
					Protocol: proto, Cores: n, Records: 1 << 16, Theta: theta,
					OpsPerTxn: 16, WriteRatio: 0.5, Horizon: simHorizon(quick),
					Partitions: n,
				})
				if err != nil {
					return err
				}
				row = append(row, r.Throughput)
			}
			tbl.AddRow(row...)
		}
		fmt.Fprintf(w, "E7: simulated throughput (txn per Mcycle), theta=%.1f, by core count\n%s\n", theta, tbl)
	}
	return nil
}

// E8: logging overhead and recovery.
func runE8(w io.Writer, quick bool) error {
	const threads = 4
	records := ycsbRecords(quick)
	tbl := stats.NewTable("mode", "tps", "p99", "log_bytes", "recover_txn", "torn_bytes", "recover_ms")

	for _, mode := range []wal.Mode{wal.ModeNone, wal.ModeValue, wal.ModeCommand} {
		cfg := core.Config{Protocol: "NO_WAIT", Threads: threads, LogMode: mode}
		var logPath string
		if mode != wal.ModeNone {
			f, err := os.CreateTemp("", "next700-e8-*.log")
			if err != nil {
				return err
			}
			logPath = f.Name()
			defer os.Remove(logPath)
			cfg.LogDevice = f
			cfg.GroupCommitWindow = time.Millisecond
			defer f.Close()
		}
		ycfg := workload.YCSBConfig{Records: records, OpsPerTxn: 8, ReadRatio: 0.5, Theta: 0.4}
		r, err := Run(cfg, workload.NewYCSB(ycfg), runOpts(quick, threads))
		if err != nil {
			return err
		}

		var logBytes, tornBytes int64
		recovered := 0
		var recoverMS float64
		if mode != wal.ModeNone {
			if fi, err := os.Stat(logPath); err == nil {
				logBytes = fi.Size()
			}
			// Fresh engine + replay.
			e2, err := core.Open(core.Config{Protocol: "NO_WAIT", Threads: 1, LogMode: mode, LogDevice: nullDevice{}})
			if err != nil {
				return err
			}
			wl2 := workload.NewYCSB(ycfg)
			if err := wl2.Setup(e2); err != nil {
				return err
			}
			lf, err := os.Open(logPath)
			if err != nil {
				return err
			}
			t0 := time.Now()
			st, err := e2.Recover(lf)
			recoverMS = float64(time.Since(t0).Microseconds()) / 1000
			lf.Close()
			e2.Close()
			if err != nil {
				return err
			}
			recovered = st.Records
			tornBytes = st.TornBytes
		}
		tbl.AddRow(mode.String(), r.Tps, time.Duration(r.Latency.P99).String(), logBytes, recovered, tornBytes, recoverMS)
	}
	fmt.Fprintf(w, "E8: YCSB with durability (NO_WAIT, 4 threads, group commit 1ms)\n%s\n", tbl)
	return nil
}

// nullDevice discards log writes (recovery-side engines re-log replayed
// commands; their log output is irrelevant).
type nullDevice struct{}

func (nullDevice) Write(p []byte) (int, error) { return len(p), nil }
func (nullDevice) Sync() error                 { return nil }

// E9: simulated tail latency.
func runE9(w io.Writer, quick bool) error {
	tbl := stats.NewTable("protocol", "p50", "p90", "p99", "p99.9", "abort")
	for _, proto := range cc.Names() {
		r, err := sim.Run(sim.Config{
			Protocol: proto, Cores: 64, Records: 1 << 14, Theta: 0.9,
			OpsPerTxn: 16, WriteRatio: 0.5, Horizon: simHorizon(quick),
			Partitions: 64,
		})
		if err != nil {
			return err
		}
		tbl.AddRow(proto, r.Latency.P50, r.Latency.P90, r.Latency.P99, r.Latency.P999, r.AbortRate)
	}
	fmt.Fprintf(w, "E9: simulated per-txn latency in cycles, 64 cores, theta=0.9, 50/50 mix\n%s\n", tbl)
	return nil
}

// E10: H-Store multi-partition cliff.
func runE10(w io.Writer, quick bool) error {
	fracs := []float64{0, 0.05, 0.1, 0.2, 0.5, 1}
	const threads = 8
	tbl := stats.NewTable(append([]string{"protocol"}, toStrings(fracs)...)...)
	for _, proto := range []string{"HSTORE", "SILO", "NO_WAIT"} {
		row := []interface{}{proto}
		for _, mp := range fracs {
			r, err := Run(core.Config{Protocol: proto, Threads: threads, Partitions: threads},
				workload.NewYCSB(workload.YCSBConfig{
					Records: ycsbRecords(quick), OpsPerTxn: 16, ReadRatio: 0.5,
					PartitionLocal: true, MultiPartitionFraction: mp,
				}), runOpts(quick, threads))
			if err != nil {
				return err
			}
			row = append(row, r.Tps)
		}
		tbl.AddRow(row...)
	}
	fmt.Fprintf(w, "E10: YCSB tps, 8 threads/partitions, by multi-partition fraction\n%s\n", tbl)
	return nil
}

// E11: data-oriented execution vs thread-to-transaction under skew.
func runE11(w io.Writer, quick bool) error {
	records := ycsbRecords(quick)
	const parts = 8
	const ops = 4
	txns := 2000
	if quick {
		txns = 500
	}
	tbl := stats.NewTable("execution", "theta=0.6", "theta=0.95")

	// DORA: partitioned counters, owner-thread execution, no locks.
	doraRow := []interface{}{"DORA"}
	for _, theta := range []float64{0.6, 0.95} {
		counters := make([]int64, records)
		ex := partition.NewExecutor(parts, 256)
		part := partition.NewHashPartitioner(parts)
		t0 := time.Now()
		var wg workerGroup
		for th := 0; th < parts; th++ {
			wg.Go(func(th int) {
				rng := xrand.New(uint64(th + 1))
				zipf := xrand.NewZipf(rng, records/parts, theta)
				keys := make([]uint64, ops)
				for i := 0; i < txns; i++ {
					home := th % parts
					for j := range keys {
						keys[j] = zipf.Next()*parts + uint64(home)
					}
					ex.ExecSingle(part.Partition(keys[0]), func() {
						for _, k := range keys {
							counters[k]++
						}
					})
				}
			}, th)
		}
		wg.Wait()
		ex.Stop()
		doraRow = append(doraRow, float64(parts*txns)/time.Since(t0).Seconds())
	}
	tbl.AddRow(doraRow...)

	// Thread-to-transaction: the engine with record-level CC.
	for _, proto := range []string{"NO_WAIT", "SILO"} {
		row := []interface{}{"t2t/" + proto}
		for _, theta := range []float64{0.6, 0.95} {
			r, err := Run(core.Config{Protocol: proto, Threads: parts, Partitions: parts},
				workload.NewYCSB(workload.YCSBConfig{
					Records: records, OpsPerTxn: ops, ReadRatio: 0, Theta: theta,
					PartitionLocal: true,
				}), RunOptions{Threads: parts, TxnsPerWorker: txns, Seed: 7})
			if err != nil {
				return err
			}
			row = append(row, r.Tps)
		}
		tbl.AddRow(row...)
	}
	fmt.Fprintf(w, "E11: RMW tps, 8 workers, data-oriented vs thread-to-transaction\n%s\n", tbl)
	return nil
}

// workerGroup is a tiny indexed WaitGroup helper.
type workerGroup struct{ wg []chan struct{} }

func (g *workerGroup) Go(fn func(int), arg int) {
	done := make(chan struct{})
	g.wg = append(g.wg, done)
	go func() {
		defer close(done)
		fn(arg)
	}()
}

func (g *workerGroup) Wait() {
	for _, d := range g.wg {
		<-d
	}
}

// E12: index structure ablation.
func runE12(w io.Writer, quick bool) error {
	const threads = 4
	tbl := stats.NewTable("workload", "hash", "btree")

	// Point-only.
	row := []interface{}{"point ops"}
	for _, scan := range []float64{0, 0.000001} { // >0 forces btree primary
		r, err := Run(core.Config{Protocol: "SILO", Threads: threads},
			workload.NewYCSB(workload.YCSBConfig{
				Records: ycsbRecords(quick), OpsPerTxn: 16, ReadRatio: 0.5,
				Theta: 0.4, ScanFraction: scan,
			}), runOpts(quick, threads))
		if err != nil {
			return err
		}
		row = append(row, r.Tps)
	}
	tbl.AddRow(row...)

	// Scan-heavy (btree only; hash cannot).
	r, err := Run(core.Config{Protocol: "SILO", Threads: threads},
		workload.NewYCSB(workload.YCSBConfig{
			Records: ycsbRecords(quick), OpsPerTxn: 4, ReadRatio: 0.8,
			Theta: 0.4, ScanFraction: 0.5, ScanLength: 50,
		}), runOpts(quick, threads))
	if err != nil {
		return err
	}
	tbl.AddRow("50% scans", "n/a", r.Tps)
	fmt.Fprintf(w, "E12: YCSB tps by primary index kind (SILO, 4 threads)\n%s\n", tbl)
	return nil
}

// E13: group-commit window ablation.
func runE13(w io.Writer, quick bool) error {
	const threads = 4
	windows := []time.Duration{0, time.Millisecond, 5 * time.Millisecond}
	tbl := stats.NewTable("window", "tps", "p50", "p99")
	for _, win := range windows {
		f, err := os.CreateTemp("", "next700-e13-*.log")
		if err != nil {
			return err
		}
		r, err := Run(core.Config{
			Protocol: "NO_WAIT", Threads: threads,
			LogMode: wal.ModeValue, LogDevice: f, GroupCommitWindow: win,
		}, workload.NewYCSB(workload.YCSBConfig{
			Records: ycsbRecords(quick), OpsPerTxn: 8, ReadRatio: 0.5,
		}), runOpts(quick, threads))
		f.Close()
		os.Remove(f.Name())
		if err != nil {
			return err
		}
		tbl.AddRow(win.String(), r.Tps,
			time.Duration(r.Latency.P50).String(), time.Duration(r.Latency.P99).String())
	}
	fmt.Fprintf(w, "E13: YCSB with value logging, by group-commit window\n%s\n", tbl)
	return nil
}

// E14: MVCC isolation-level ablation.
func runE14(w io.Writer, quick bool) error {
	const threads = 8
	tbl := stats.NewTable("isolation", "tps", "abort")
	for _, iso := range []string{cc.IsoSerializable, cc.IsoSnapshot, cc.IsoReadCommitted} {
		r, err := Run(core.Config{Protocol: "MVCC", Threads: threads, Isolation: iso},
			workload.NewYCSB(workload.YCSBConfig{
				Records: ycsbRecords(quick), OpsPerTxn: 16, ReadRatio: 0.5,
				Theta: 0.9, InterleaveOps: true,
			}), runOpts(quick, threads))
		if err != nil {
			return err
		}
		tbl.AddRow(iso, r.Tps, r.AbortRate)
	}
	fmt.Fprintf(w, "E14: YCSB on MVCC, theta=0.9, 8 threads, by isolation level\n%s\n", tbl)
	return nil
}

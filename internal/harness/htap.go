package harness

import (
	"fmt"
	"io"
	"sync"
	"time"

	"next700/internal/core"
	"next700/internal/stats"
	"next700/internal/storage"
)

// runE15 is the HTAP extension experiment: one analytical worker repeatedly
// scans and aggregates the whole table while OLTP workers update hot rows.
// The question the keynote raises — can fresh data be analyzed without
// strangling the transactional side? — becomes a concrete comparison:
// multi-version reads let scans run against a consistent snapshot without
// blocking or aborting writers, single-version lock-based scans serialize
// against them, and OCC scans abort when any scanned row moves.
func runE15(w io.Writer, quick bool) error {
	const oltpWorkers = 3
	records := uint64(16 * 1024)
	duration := 400 * time.Millisecond
	if quick {
		records = 4 * 1024
		duration = 150 * time.Millisecond
	}

	tbl := stats.NewTable("protocol", "oltp_tps", "oltp_abort", "scans/s", "scan_p99", "scan_abort")
	configs := []core.Config{
		{Protocol: "MVCC", Isolation: "serializable"},
		{Protocol: "MVCC", Isolation: "snapshot"},
		{Protocol: "NO_WAIT"},
		{Protocol: "WAIT_DIE"},
		{Protocol: "SILO"},
		{Protocol: "TICTOC"},
	}
	for _, cfg := range configs {
		cfg.Threads = oltpWorkers + 1
		name := cfg.Protocol
		if cfg.Isolation != "" {
			name += "/" + cfg.Isolation
		}
		row, err := runHTAPCell(cfg, records, duration, oltpWorkers)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		tbl.AddRow(name, row.oltpTps, row.oltpAbort, row.scansPerSec, row.scanP99.String(), row.scanAbort)
	}
	fmt.Fprintf(w, "E15: HTAP — full-table scans concurrent with OLTP updates (%d writers + 1 scanner)\n%s\n", oltpWorkers, tbl)
	return nil
}

type htapRow struct {
	oltpTps     float64
	oltpAbort   float64
	scansPerSec float64
	scanP99     time.Duration
	scanAbort   float64
}

func runHTAPCell(cfg core.Config, records uint64, duration time.Duration, oltpWorkers int) (htapRow, error) {
	e, err := core.Open(cfg)
	if err != nil {
		return htapRow{}, err
	}
	defer e.Close()

	sch := storage.MustSchema("facts", storage.I64("v"))
	tbl, err := e.CreateTable(sch, core.IndexBTree)
	if err != nil {
		return htapRow{}, err
	}
	row := sch.NewRow()
	for k := uint64(0); k < records; k++ {
		sch.SetInt64(row, 0, 1)
		if err := e.Load(tbl, k, row); err != nil {
			return htapRow{}, err
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	counters := make([]stats.Counter, oltpWorkers)

	for wkr := 0; wkr < oltpWorkers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			tx := e.NewTx(wkr, uint64(wkr+1))
			for {
				select {
				case <-stop:
					counters[wkr] = *tx.Counter()
					return
				default:
				}
				// Short RMW transactions over a hot prefix.
				k := tx.RNG().Uint64n(records / 16)
				tx.Run(func(tx *core.Tx) error {
					r, err := tx.Update(tbl, k)
					if err != nil {
						return err
					}
					sch.SetInt64(r, 0, sch.GetInt64(r, 0)+1)
					return nil
				})
			}
		}(wkr)
	}

	// Analytical worker: full-table aggregation per transaction.
	var scanHist *stats.Histogram
	var scanCounter stats.Counter
	wg.Add(1)
	go func() {
		defer wg.Done()
		tx := e.NewTx(oltpWorkers, 99)
		hist := stats.NewHistogram()
		for {
			select {
			case <-stop:
				scanHist = hist
				scanCounter = *tx.Counter()
				return
			default:
			}
			t0 := time.Now()
			tx.Run(func(tx *core.Tx) error {
				var sum int64
				return tx.Scan(tbl, 0, records, func(_ uint64, r storage.Row) bool {
					sum += sch.GetInt64(r, 0)
					return true
				})
			})
			hist.RecordDuration(time.Since(t0))
		}
	}()

	start := time.Now()
	time.AfterFunc(duration, func() { close(stop) })
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	var oltp stats.Counter
	for i := range counters {
		oltp.Add(&counters[i])
	}
	return htapRow{
		oltpTps:     float64(oltp.Commits) / elapsed,
		oltpAbort:   oltp.AbortRate(),
		scansPerSec: float64(scanCounter.Commits) / elapsed,
		scanP99:     time.Duration(scanHist.Percentile(99)),
		scanAbort:   scanCounter.AbortRate(),
	}, nil
}

package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"next700/internal/core"
	"next700/internal/verify"
	"next700/internal/workload"
)

func TestRunFixedCount(t *testing.T) {
	r, err := Run(core.Config{Protocol: "SILO", Threads: 2},
		workload.NewYCSB(workload.YCSBConfig{Records: 1024, OpsPerTxn: 4}),
		RunOptions{Threads: 2, TxnsPerWorker: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Commits != 200 {
		t.Fatalf("commits %d", r.Commits)
	}
	if r.Latency.Count != 200 {
		t.Fatalf("latency samples %d", r.Latency.Count)
	}
	if r.Tps <= 0 || r.Protocol != "SILO" || r.Workload != "ycsb" {
		t.Fatalf("bad result: %+v", r)
	}
	if !strings.Contains(r.String(), "SILO") {
		t.Fatal("result String missing protocol")
	}
}

func TestRunDurationMode(t *testing.T) {
	r, err := Run(core.Config{Protocol: "NO_WAIT", Threads: 2},
		workload.NewYCSB(workload.YCSBConfig{Records: 1024, OpsPerTxn: 4}),
		RunOptions{Threads: 2, Duration: 50 * time.Millisecond, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Commits == 0 {
		t.Fatal("no commits in duration mode")
	}
	if r.Elapsed < 50*time.Millisecond {
		t.Fatalf("elapsed %v below duration", r.Elapsed)
	}
}

func TestRunWarmupExcluded(t *testing.T) {
	r, err := Run(core.Config{Protocol: "SILO", Threads: 1},
		workload.NewYCSB(workload.YCSBConfig{Records: 512, OpsPerTxn: 2}),
		RunOptions{Threads: 1, TxnsPerWorker: 50, WarmupTxns: 25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Commits != 50 {
		t.Fatalf("warmup leaked into counters: %d commits", r.Commits)
	}
}

func TestRunBadConfig(t *testing.T) {
	_, err := Run(core.Config{Protocol: "NOPE"},
		workload.NewYCSB(workload.YCSBConfig{Records: 64}), RunOptions{TxnsPerWorker: 1})
	if err == nil {
		t.Fatal("bad protocol accepted")
	}
}

// TestRunVerifyProbe: a Verify run with the stamped probe produces a checked
// report covering every transaction, including warmup; without Verify, no
// report exists.
func TestRunVerifyProbe(t *testing.T) {
	r, err := Run(core.Config{Protocol: "SILO", Threads: 2},
		verify.NewProbe(verify.ProbeConfig{Keys: 8}),
		RunOptions{Threads: 2, TxnsPerWorker: 50, WarmupTxns: 10, Seed: 1, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := r.Verification
	if rep == nil {
		t.Fatal("Verify run produced no report")
	}
	if want := 2 * (50 + 10); rep.Txns != want {
		t.Fatalf("report covers %d txns, want %d (warmup included)", rep.Txns, want)
	}
	if !rep.Ok() {
		t.Fatalf("anomalies on SILO: %v", rep.Anomalies)
	}

	r, err = Run(core.Config{Protocol: "SILO", Threads: 2},
		verify.NewProbe(verify.ProbeConfig{Keys: 8}),
		RunOptions{Threads: 2, TxnsPerWorker: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verification != nil {
		t.Fatal("report present without Verify")
	}
}

// TestRunVerifyRequiresRecordable: Verify on a workload that cannot record
// is a setup error, not a silent no-op.
func TestRunVerifyRequiresRecordable(t *testing.T) {
	_, err := Run(core.Config{Protocol: "SILO", Threads: 1},
		workload.NewYCSB(workload.YCSBConfig{Records: 64}),
		RunOptions{TxnsPerWorker: 1, Verify: true})
	if err == nil || !strings.Contains(err.Error(), "verification") {
		t.Fatalf("non-recordable workload accepted for Verify: err=%v", err)
	}
}

func TestExperimentRegistry(t *testing.T) {
	all := All()
	if len(all) != 15 {
		t.Fatalf("expected 15 experiments, got %d", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Bench == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if ByID("E7") == nil || ByID("E7").ID != "E7" {
		t.Fatal("ByID broken")
	}
	if ByID("E99") != nil {
		t.Fatal("ByID invented an experiment")
	}
}

// TestExperimentsQuick smoke-runs every experiment at quick scale and
// checks each emits a table mentioning its id.
func TestExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test is not -short")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, true); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if !strings.Contains(out, e.ID+":") {
				t.Fatalf("%s output missing header:\n%s", e.ID, out)
			}
			if !strings.Contains(out, "---") {
				t.Fatalf("%s output has no table:\n%s", e.ID, out)
			}
		})
	}
}

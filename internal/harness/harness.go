// Package harness runs (engine configuration × workload) combinations and
// aggregates throughput, abort, and latency statistics — the machinery that
// regenerates every experiment table in EXPERIMENTS.md.
package harness

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"next700/internal/admission"
	"next700/internal/core"
	"next700/internal/stats"
	"next700/internal/verify"
	"next700/internal/workload"
)

// RunOptions controls one measurement run.
type RunOptions struct {
	// Threads is the worker count (defaults to the engine's).
	Threads int
	// Duration bounds the run in wall-clock time (used when
	// TxnsPerWorker is 0).
	Duration time.Duration
	// TxnsPerWorker, when > 0, runs a fixed transaction count instead of a
	// fixed duration (deterministic; preferred in tests).
	TxnsPerWorker int
	// WarmupTxns per worker are executed before measurement starts.
	WarmupTxns int
	// Seed perturbs worker RNGs.
	Seed uint64
	// MeasureAllocs samples runtime.MemStats around the measurement window
	// and reports heap allocations per committed transaction. A GC cycle is
	// forced before the window, so enable this only for allocation
	// profiling, not latency measurement.
	MeasureAllocs bool
	// Retry overrides the engine's transient-abort retry/backoff policy
	// (zero fields keep the engine defaults; see core.RetryPolicy).
	Retry core.RetryPolicy
	// Verify enables isolation-anomaly recording: the workload must
	// implement verify.Recordable (the stamped verify.Probe does). A
	// History is attached before setup, every committed and aborted attempt
	// is recorded during the run (warmup included), and the checked report
	// lands in Result.Verification. Strictly opt-in: when false, no
	// recording state exists anywhere near the engine's commit path.
	Verify bool

	// OfferedRate, when > 0, switches the run to open-loop mode: seeded
	// Poisson arrivals are generated at this rate (txns/sec) regardless of
	// completion rate, workers drain the arrival queue, and queue latency
	// (arrival → execution start) is recorded separately from service
	// latency. This is the regime where overload is measurable: a
	// closed-loop run can never offer more than capacity.
	OfferedRate float64
	// Deadline, when > 0, is the enforced per-transaction deadline: from
	// arrival in open-loop mode, from execution start in closed-loop mode.
	// Expired transactions abort with the deadline class (engine-level
	// waits included) instead of blocking; a worker treats the deadline
	// abort as a per-transaction outcome, not a run failure.
	Deadline time.Duration
	// GoodputWindow classifies commits as goodput without enforcing
	// anything: a commit whose arrival → completion time exceeds the
	// window counts as late, not good. Defaults to Deadline. Setting only
	// GoodputWindow measures how an unprotected engine's output decays
	// under overload — the baseline the admission rows are judged against.
	// When both are set, the window classifies and the (typically tighter)
	// deadline enforces: under sustained overload a FIFO queue serves
	// entries right at the age-out edge, so an engine enforcing the SLO
	// itself as the deadline commits mostly just-late work; enforcing at a
	// fraction of the SLO leaves the survivors headroom to land inside it.
	GoodputWindow time.Duration
	// Admission, when non-nil, gates every transaction through an
	// admission controller built from this config; rejected transactions
	// count as ShedAborts and never touch the engine.
	Admission *admission.Config
	// AdmissionPerPartition splits admission control by home partition:
	// instead of one global in-flight limit, every engine partition gets
	// its own controller built from Admission, and a worker gates through
	// the controller of its home partition (worker id mod partitions — the
	// same affinity PartitionLocal workloads and the simulator use). A hot
	// partition then sheds its own overload without the shared limit
	// starving the cold ones; this is the natural shape for HSTORE, where
	// the serializing resource is the partition, not the engine. Ignored
	// unless Admission is set.
	AdmissionPerPartition bool
	// AdmissionSampleEvery is the sampling interval for the admission
	// timeline recorded during open-loop runs with a controller; zero
	// defaults to Duration/16. Each interval contributes one
	// Result.AdmissionTimeline sample.
	AdmissionSampleEvery time.Duration
	// QueueLIFOAge, when > 0, turns on adaptive LIFO for the open-loop
	// arrival queue: while the oldest waiting arrival is older than this,
	// workers serve newest-first, so fresh arrivals that can still meet
	// their deadline run instead of stale ones that will only age out.
	// The queue reverts to FIFO as it drains. Zero keeps strict FIFO.
	QueueLIFOAge time.Duration
	// QueueCoDelTarget, when > 0, enables CoDel-style age dropping at
	// enqueue: once the queue head stays older than the target for a full
	// QueueCoDelInterval, the queue evicts its oldest entries at the CoDel
	// control-law rate until the head age recovers. Evictions count in
	// Result.QueueDropped and never reach a worker — shedding in the queue
	// instead of the engine is what cuts shed work per good commit.
	// QueueCoDelInterval defaults to 100ms.
	QueueCoDelTarget   time.Duration
	QueueCoDelInterval time.Duration
}

// AdmissionSample is one periodic observation of the admission controller
// during an open-loop run.
type AdmissionSample struct {
	// Offset is the sample time relative to measurement start.
	Offset time.Duration
	// Limit and InFlight are the AIMD concurrency limit and the number of
	// admissions currently executing; LatencyEWMA is the controller's
	// smoothed service latency — the signal AIMD steers on.
	Limit       int
	InFlight    int
	LatencyEWMA time.Duration
	// Admitted and Shed are cumulative counts at the sample instant.
	Admitted uint64
	Shed     uint64
	// ShedRate is the shed fraction within this sample's window alone
	// (delta-based, not cumulative): shed / (admitted + shed) since the
	// previous sample.
	ShedRate float64
}

// Result is one measurement row.
type Result struct {
	Protocol string
	Workload string
	Threads  int
	Elapsed  time.Duration
	Commits  uint64
	// Aborts counts transient (conflict) aborts that were retried;
	// UserAborts and FatalAborts are terminal per-transaction outcomes.
	Aborts      uint64
	UserAborts  uint64
	FatalAborts uint64
	// DeadlineAborts counts transactions terminated by deadline expiry
	// (queued past the deadline, blocked past it, or out of retry budget);
	// ShedAborts counts admission-control rejections. Both are terminal
	// and never touched — or immediately released — engine state.
	DeadlineAborts uint64
	ShedAborts     uint64
	// PartitionAborts counts terminal aborts on a quarantined partition
	// (core.ErrPartitionUnavailable) while the engine degraded around a
	// partition fault.
	PartitionAborts uint64
	Waits           uint64
	Tps             float64
	AbortRate       float64
	Latency         stats.Summary

	// Open-loop fields, set when RunOptions.OfferedRate > 0.
	//
	// Offered is the configured arrival rate; Arrivals the transactions
	// actually generated; Backlog the arrivals never picked up before the
	// window closed (plus any dropped on a full arrival queue).
	Offered  float64
	Arrivals uint64
	Backlog  uint64
	// Goodput is commits completing within the goodput window per second
	// (== Tps when no window is configured); LateCommits are commits that
	// finished but missed the window.
	Goodput     float64
	LateCommits uint64
	// QueueDropped counts arrivals the CoDel discipline evicted at enqueue
	// (RunOptions.QueueCoDelTarget); QueueLIFOServed counts arrivals served
	// newest-first under adaptive LIFO (RunOptions.QueueLIFOAge). Both are
	// zero under the default FIFO discipline.
	QueueDropped    uint64
	QueueLIFOServed uint64
	// QueueLatency is arrival → execution start for executed transactions;
	// E2ELatency is arrival → completion for committed ones. Service
	// latency stays in Latency.
	QueueLatency stats.Summary
	E2ELatency   stats.Summary
	// AdmissionLimit is the controller's concurrency limit at the end of
	// the run (0 = no controller) — under AIMD this is the operating point
	// the controller converged to. With per-partition admission it is the
	// sum over partitions.
	AdmissionLimit int
	// AdmissionLimits are the per-partition limits at the end of the run,
	// indexed by partition (set only when RunOptions.AdmissionPerPartition
	// is on). Skew shows up here directly: a hot partition's AIMD limit
	// decays while the cold partitions stay at their ceiling.
	AdmissionLimits []int
	// AdmissionTimeline traces the controller over the run: one sample per
	// RunOptions.AdmissionSampleEvery plus a closing sample, capturing how
	// the AIMD limit, the latency EWMA, and the shed rate evolved. Set only
	// for open-loop runs with a controller configured.
	AdmissionTimeline []AdmissionSample
	// AllocsPerTxn / BytesPerTxn are heap allocations and bytes per
	// committed transaction across the whole process during the measurement
	// window (set only when RunOptions.MeasureAllocs is on). Aborted
	// attempts' allocations are charged to the transactions that commit.
	AllocsPerTxn float64
	BytesPerTxn  float64
	// Verification is the isolation-anomaly report for the recorded
	// history (set only when RunOptions.Verify is on).
	Verification *verify.Report
	// Digest is the hex-encoded canonical state digest after the run, set
	// only by deterministic runs (RunDet) — the determinism oracles compare
	// it across seeds, worker counts, and crash recovery.
	Digest string
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("%-10s %-9s threads=%-3d tps=%-12.0f abort=%-7.4f p99=%v",
		r.Protocol, r.Workload, r.Threads, r.Tps, r.AbortRate,
		time.Duration(r.Latency.P99))
}

// Run opens an engine with cfg, sets up wl, and drives it with the given
// options. The engine is closed before returning. Setup problems and the
// first worker failure are both reported as errors.
func Run(cfg core.Config, wl workload.Workload, opts RunOptions) (Result, error) {
	if opts.Threads <= 0 {
		opts.Threads = cfg.Threads
	}
	if cfg.Threads < opts.Threads {
		cfg.Threads = opts.Threads
	}
	if opts.Duration <= 0 && opts.TxnsPerWorker <= 0 {
		opts.Duration = time.Second
	}
	if opts.Retry != (core.RetryPolicy{}) {
		cfg.Retry = opts.Retry
	}
	var hist *verify.History
	if opts.Verify {
		rec, ok := wl.(verify.Recordable)
		if !ok {
			return Result{}, fmt.Errorf("harness: workload %q does not support verification recording", wl.Name())
		}
		hist = verify.NewHistory(cfg.Threads)
		rec.AttachHistory(hist)
	}
	e, err := core.Open(cfg)
	if err != nil {
		return Result{}, err
	}
	defer e.Close()
	if err := wl.Setup(e); err != nil {
		return Result{}, err
	}
	var res Result
	if opts.OfferedRate > 0 {
		res, err = driveOpen(e, wl, opts)
	} else {
		res, err = drive(e, wl, opts)
	}
	res.Protocol = e.Protocol()
	res.Workload = wl.Name()
	if err == nil && hist != nil {
		final, ferr := wl.(verify.Recordable).FinalVersions(e)
		if ferr != nil {
			return res, fmt.Errorf("harness: reading final versions: %w", ferr)
		}
		res.Verification = hist.Check(final)
	}
	return res, err
}

// drive executes the measurement against an already set-up engine.
func drive(e *core.Engine, wl workload.Workload, opts RunOptions) (Result, error) {
	threads := opts.Threads
	type workerOut struct {
		counter stats.Counter
		hist    *stats.Histogram
		err     error
	}
	outs := make([]workerOut, threads)
	var wg sync.WaitGroup
	var stop chan struct{}
	if opts.TxnsPerWorker <= 0 {
		stop = make(chan struct{})
	}

	// Workers rendezvous after warmup so the measurement window (and its
	// duration timer) begins only once every worker is warm — otherwise a
	// slow-commit configuration can burn the whole window warming up.
	var warm sync.WaitGroup
	warm.Add(threads)
	begin := make(chan struct{})

	var start time.Time
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tx := e.NewTx(id, opts.Seed*1_000_003+uint64(id)+1)
			hist := stats.NewHistogram()
			for w := 0; w < opts.WarmupTxns; w++ {
				if err := wl.RunOne(tx); err != nil {
					outs[id].err = err
					warm.Done()
					return
				}
			}
			warm.Done()
			<-begin
			// Snapshot counters after warmup so it is excluded.
			base := *tx.Counter()
			n := 0
			for {
				if opts.TxnsPerWorker > 0 {
					if n >= opts.TxnsPerWorker {
						break
					}
				} else if stopped(stop) {
					break
				}
				if opts.Deadline > 0 {
					tx.SetDeadlineAfter(opts.Deadline)
				}
				t0 := time.Now()
				if err := wl.RunOne(tx); err != nil {
					if errors.Is(err, core.ErrDeadlineExceeded) {
						// A deadline abort is a measured per-transaction
						// outcome (already accounted by the engine), not a
						// run failure.
						n++
						continue //next700:allowretry(measured outcome: the worker advances to the next transaction; the deadline-aborted one is not re-run)
					}
					outs[id].err = err
					break
				}
				hist.RecordDuration(time.Since(t0))
				n++
			}
			tx.ClearDeadline()
			c := *tx.Counter()
			c.Commits -= base.Commits
			c.Aborts -= base.Aborts
			c.UserAborts -= base.UserAborts
			c.FatalAborts -= base.FatalAborts
			c.DeadlineAborts -= base.DeadlineAborts
			c.ShedAborts -= base.ShedAborts
			c.PartitionAborts -= base.PartitionAborts
			c.Reads -= base.Reads
			c.Writes -= base.Writes
			c.Inserts -= base.Inserts
			c.Deletes -= base.Deletes
			c.Scans -= base.Scans
			c.Waits -= base.Waits
			outs[id].counter = c
			outs[id].hist = hist
		}(i)
	}
	warm.Wait()
	var memBefore runtime.MemStats
	if opts.MeasureAllocs {
		// Settle the heap so warmup garbage is not charged to the window.
		runtime.GC()
		runtime.ReadMemStats(&memBefore)
	}
	start = time.Now()
	close(begin)
	if stop != nil {
		time.AfterFunc(opts.Duration, func() { close(stop) })
	}
	wg.Wait()
	elapsed := time.Since(start)
	var memAfter runtime.MemStats
	if opts.MeasureAllocs {
		runtime.ReadMemStats(&memAfter)
	}

	var total stats.Counter
	hist := stats.NewHistogram()
	var firstErr error
	for i := range outs {
		total.Add(&outs[i].counter)
		hist.Merge(outs[i].hist)
		if outs[i].err != nil && firstErr == nil {
			firstErr = fmt.Errorf("worker %d: %w", i, outs[i].err)
		}
	}
	res := Result{
		Threads:         threads,
		Elapsed:         elapsed,
		Commits:         total.Commits,
		Aborts:          total.Aborts,
		UserAborts:      total.UserAborts,
		FatalAborts:     total.FatalAborts,
		DeadlineAborts:  total.DeadlineAborts,
		ShedAborts:      total.ShedAborts,
		PartitionAborts: total.PartitionAborts,
		Waits:           total.Waits,
		Tps:             float64(total.Commits) / elapsed.Seconds(),
		Goodput:         float64(total.Commits) / elapsed.Seconds(),
		AbortRate:       total.AbortRate(),
		Latency:         hist.Summarize(),
	}
	if opts.MeasureAllocs && total.Commits > 0 {
		res.AllocsPerTxn = float64(memAfter.Mallocs-memBefore.Mallocs) / float64(total.Commits)
		res.BytesPerTxn = float64(memAfter.TotalAlloc-memBefore.TotalAlloc) / float64(total.Commits)
	}
	return res, firstErr
}

func stopped(stop chan struct{}) bool {
	if stop == nil {
		return false
	}
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

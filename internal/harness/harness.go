// Package harness runs (engine configuration × workload) combinations and
// aggregates throughput, abort, and latency statistics — the machinery that
// regenerates every experiment table in EXPERIMENTS.md.
package harness

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"next700/internal/core"
	"next700/internal/stats"
	"next700/internal/verify"
	"next700/internal/workload"
)

// RunOptions controls one measurement run.
type RunOptions struct {
	// Threads is the worker count (defaults to the engine's).
	Threads int
	// Duration bounds the run in wall-clock time (used when
	// TxnsPerWorker is 0).
	Duration time.Duration
	// TxnsPerWorker, when > 0, runs a fixed transaction count instead of a
	// fixed duration (deterministic; preferred in tests).
	TxnsPerWorker int
	// WarmupTxns per worker are executed before measurement starts.
	WarmupTxns int
	// Seed perturbs worker RNGs.
	Seed uint64
	// MeasureAllocs samples runtime.MemStats around the measurement window
	// and reports heap allocations per committed transaction. A GC cycle is
	// forced before the window, so enable this only for allocation
	// profiling, not latency measurement.
	MeasureAllocs bool
	// Retry overrides the engine's transient-abort retry/backoff policy
	// (zero fields keep the engine defaults; see core.RetryPolicy).
	Retry core.RetryPolicy
	// Verify enables isolation-anomaly recording: the workload must
	// implement verify.Recordable (the stamped verify.Probe does). A
	// History is attached before setup, every committed and aborted attempt
	// is recorded during the run (warmup included), and the checked report
	// lands in Result.Verification. Strictly opt-in: when false, no
	// recording state exists anywhere near the engine's commit path.
	Verify bool
}

// Result is one measurement row.
type Result struct {
	Protocol string
	Workload string
	Threads  int
	Elapsed  time.Duration
	Commits  uint64
	// Aborts counts transient (conflict) aborts that were retried;
	// UserAborts and FatalAborts are terminal per-transaction outcomes.
	Aborts      uint64
	UserAborts  uint64
	FatalAborts uint64
	Waits       uint64
	Tps         float64
	AbortRate   float64
	Latency     stats.Summary
	// AllocsPerTxn / BytesPerTxn are heap allocations and bytes per
	// committed transaction across the whole process during the measurement
	// window (set only when RunOptions.MeasureAllocs is on). Aborted
	// attempts' allocations are charged to the transactions that commit.
	AllocsPerTxn float64
	BytesPerTxn  float64
	// Verification is the isolation-anomaly report for the recorded
	// history (set only when RunOptions.Verify is on).
	Verification *verify.Report
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("%-10s %-9s threads=%-3d tps=%-12.0f abort=%-7.4f p99=%v",
		r.Protocol, r.Workload, r.Threads, r.Tps, r.AbortRate,
		time.Duration(r.Latency.P99))
}

// Run opens an engine with cfg, sets up wl, and drives it with the given
// options. The engine is closed before returning. Setup problems and the
// first worker failure are both reported as errors.
func Run(cfg core.Config, wl workload.Workload, opts RunOptions) (Result, error) {
	if opts.Threads <= 0 {
		opts.Threads = cfg.Threads
	}
	if cfg.Threads < opts.Threads {
		cfg.Threads = opts.Threads
	}
	if opts.Duration <= 0 && opts.TxnsPerWorker <= 0 {
		opts.Duration = time.Second
	}
	if opts.Retry != (core.RetryPolicy{}) {
		cfg.Retry = opts.Retry
	}
	var hist *verify.History
	if opts.Verify {
		rec, ok := wl.(verify.Recordable)
		if !ok {
			return Result{}, fmt.Errorf("harness: workload %q does not support verification recording", wl.Name())
		}
		hist = verify.NewHistory(cfg.Threads)
		rec.AttachHistory(hist)
	}
	e, err := core.Open(cfg)
	if err != nil {
		return Result{}, err
	}
	defer e.Close()
	if err := wl.Setup(e); err != nil {
		return Result{}, err
	}
	res, err := drive(e, wl, opts)
	res.Protocol = e.Protocol()
	res.Workload = wl.Name()
	if err == nil && hist != nil {
		final, ferr := wl.(verify.Recordable).FinalVersions(e)
		if ferr != nil {
			return res, fmt.Errorf("harness: reading final versions: %w", ferr)
		}
		res.Verification = hist.Check(final)
	}
	return res, err
}

// drive executes the measurement against an already set-up engine.
func drive(e *core.Engine, wl workload.Workload, opts RunOptions) (Result, error) {
	threads := opts.Threads
	type workerOut struct {
		counter stats.Counter
		hist    *stats.Histogram
		err     error
	}
	outs := make([]workerOut, threads)
	var wg sync.WaitGroup
	var stop chan struct{}
	if opts.TxnsPerWorker <= 0 {
		stop = make(chan struct{})
	}

	// Workers rendezvous after warmup so the measurement window (and its
	// duration timer) begins only once every worker is warm — otherwise a
	// slow-commit configuration can burn the whole window warming up.
	var warm sync.WaitGroup
	warm.Add(threads)
	begin := make(chan struct{})

	var start time.Time
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tx := e.NewTx(id, opts.Seed*1_000_003+uint64(id)+1)
			hist := stats.NewHistogram()
			for w := 0; w < opts.WarmupTxns; w++ {
				if err := wl.RunOne(tx); err != nil {
					outs[id].err = err
					warm.Done()
					return
				}
			}
			warm.Done()
			<-begin
			// Snapshot counters after warmup so it is excluded.
			base := *tx.Counter()
			n := 0
			for {
				if opts.TxnsPerWorker > 0 {
					if n >= opts.TxnsPerWorker {
						break
					}
				} else if stopped(stop) {
					break
				}
				t0 := time.Now()
				if err := wl.RunOne(tx); err != nil {
					outs[id].err = err
					break
				}
				hist.RecordDuration(time.Since(t0))
				n++
			}
			c := *tx.Counter()
			c.Commits -= base.Commits
			c.Aborts -= base.Aborts
			c.UserAborts -= base.UserAborts
			c.FatalAborts -= base.FatalAborts
			c.Reads -= base.Reads
			c.Writes -= base.Writes
			c.Inserts -= base.Inserts
			c.Deletes -= base.Deletes
			c.Scans -= base.Scans
			c.Waits -= base.Waits
			outs[id].counter = c
			outs[id].hist = hist
		}(i)
	}
	warm.Wait()
	var memBefore runtime.MemStats
	if opts.MeasureAllocs {
		// Settle the heap so warmup garbage is not charged to the window.
		runtime.GC()
		runtime.ReadMemStats(&memBefore)
	}
	start = time.Now()
	close(begin)
	if stop != nil {
		time.AfterFunc(opts.Duration, func() { close(stop) })
	}
	wg.Wait()
	elapsed := time.Since(start)
	var memAfter runtime.MemStats
	if opts.MeasureAllocs {
		runtime.ReadMemStats(&memAfter)
	}

	var total stats.Counter
	hist := stats.NewHistogram()
	var firstErr error
	for i := range outs {
		total.Add(&outs[i].counter)
		hist.Merge(outs[i].hist)
		if outs[i].err != nil && firstErr == nil {
			firstErr = fmt.Errorf("worker %d: %w", i, outs[i].err)
		}
	}
	res := Result{
		Threads:     threads,
		Elapsed:     elapsed,
		Commits:     total.Commits,
		Aborts:      total.Aborts,
		UserAborts:  total.UserAborts,
		FatalAborts: total.FatalAborts,
		Waits:       total.Waits,
		Tps:         float64(total.Commits) / elapsed.Seconds(),
		AbortRate:   total.AbortRate(),
		Latency:     hist.Summarize(),
	}
	if opts.MeasureAllocs && total.Commits > 0 {
		res.AllocsPerTxn = float64(memAfter.Mallocs-memBefore.Mallocs) / float64(total.Commits)
		res.BytesPerTxn = float64(memAfter.TotalAlloc-memBefore.TotalAlloc) / float64(total.Commits)
	}
	return res, firstErr
}

func stopped(stop chan struct{}) bool {
	if stop == nil {
		return false
	}
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

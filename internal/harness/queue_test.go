package harness

import (
	"testing"
	"time"

	"next700/internal/core"
	"next700/internal/workload"
)

const ms = int64(time.Millisecond)

// TestQueueFIFODefault: with no discipline configured the queue is a plain
// bounded FIFO and reports no discipline activity.
func TestQueueFIFODefault(t *testing.T) {
	q := newArrivalQueue(4, 0, 0, 0)
	for i := int64(1); i <= 4; i++ {
		q.pushAt(i, i)
	}
	q.pushAt(5, 5) // over capacity
	for want := int64(1); want <= 4; want++ {
		got, ok := q.popAt(1000 * ms)
		if !ok || got != want {
			t.Fatalf("pop = %d,%v want %d", got, ok, want)
		}
	}
	if _, ok := q.popAt(1000 * ms); ok {
		t.Fatal("pop from empty queue succeeded")
	}
	remaining, dropped, overflow, lifo := q.stats()
	if remaining != 0 || dropped != 0 || lifo != 0 || overflow != 1 {
		t.Fatalf("stats = %d remaining, %d dropped, %d overflow, %d lifo", remaining, dropped, overflow, lifo)
	}
}

// TestQueueAdaptiveLIFO: an aged head flips service to newest-first; a
// fresh queue stays FIFO.
func TestQueueAdaptiveLIFO(t *testing.T) {
	q := newArrivalQueue(16, 10*time.Millisecond, 0, 0)
	q.pushAt(0, 0)
	q.pushAt(1*ms, 1*ms)
	q.pushAt(2*ms, 2*ms)

	// Head age 2ms < 10ms: FIFO.
	if got, _ := q.popAt(2 * ms); got != 0 {
		t.Fatalf("uncongested pop = %d, want head 0", got)
	}
	// Head (1ms) is now 19ms old: LIFO serves the newest arrival.
	if got, _ := q.popAt(20 * ms); got != 2*ms {
		t.Fatalf("congested pop = %d, want tail %d", got, 2*ms)
	}
	// One entry left: served regardless of age (the drain path).
	if got, _ := q.popAt(40 * ms); got != 1*ms {
		t.Fatalf("drain pop = %d, want %d", got, 1*ms)
	}
	if _, _, _, lifo := q.stats(); lifo != 1 {
		t.Fatalf("lifo pops = %d, want 1", lifo)
	}
}

// TestQueueCoDelDrop: the control law tolerates a transient age excursion
// for one interval, then evicts aged heads until the head age recovers.
func TestQueueCoDelDrop(t *testing.T) {
	target, interval := 5*time.Millisecond, 20*time.Millisecond
	q := newArrivalQueue(1024, 0, target, interval)

	q.pushAt(0, 0)
	// Head 6ms old (> target): arms the interval clock, no drop yet.
	q.pushAt(6*ms, 6*ms)
	if _, dropped, _, _ := q.stats(); dropped != 0 {
		t.Fatalf("dropped %d before a full interval elapsed", dropped)
	}
	// Still above target but inside the armed interval (6+20=26ms): no drop.
	q.pushAt(20*ms, 20*ms)
	if _, dropped, _, _ := q.stats(); dropped != 0 {
		t.Fatalf("dropped %d inside the tolerance interval", dropped)
	}
	// Past the armed interval with the head still above target: dropping
	// starts and evicts aged heads (0, 6ms, 20ms are all > 5ms old at 30ms;
	// the control law spaces further drops, so exactly one goes now).
	q.pushAt(30*ms, 30*ms)
	if _, dropped, _, _ := q.stats(); dropped != 1 {
		_, d, _, _ := q.stats()
		t.Fatalf("dropped = %d at dropping onset, want 1", d)
	}
	// Far later, everything queued is ancient: the schedule catches up in a
	// batch — every stale head is evicted and only the fresh arrival
	// remains (an emptied queue also disarms the congestion state).
	q.pushAt(230*ms, 230*ms)
	remaining, dropped, _, _ := q.stats()
	if remaining != 1 {
		t.Fatalf("remaining = %d, want only the fresh arrival", remaining)
	}
	if dropped != 4 {
		t.Fatalf("dropped = %d, want all 4 stale arrivals", dropped)
	}
	// Recovery: a young head disarms the state machine; nothing dropped.
	for {
		if _, ok := q.popAt(231 * ms); !ok {
			break
		}
	}
	before := dropped
	q.pushAt(240*ms, 240*ms)
	q.pushAt(241*ms, 241*ms)
	if _, d, _, _ := q.stats(); d != before {
		t.Fatalf("recovered queue dropped %d more", d-before)
	}
}

// TestQueueCloseUnblocks: close wakes blocked pops and stops service even
// with entries still queued (they are backlog, as with the old channel).
func TestQueueCloseUnblocks(t *testing.T) {
	q := newArrivalQueue(16, 0, 0, 0)
	done := make(chan bool)
	go func() {
		_, ok := q.pop()
		done <- ok
	}()
	time.Sleep(5 * time.Millisecond)
	q.close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("pop on closed queue returned an item")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("close did not unblock pop")
	}
	q.pushAt(1, 1) // ignored after close
	if remaining, _, _, _ := q.stats(); remaining != 0 {
		t.Fatalf("closed queue accepted a push: %d queued", remaining)
	}
}

// TestOpenLoopQueueDiscipline drives a deliberately overloaded open-loop
// run with adaptive LIFO and CoDel on: the disciplines must engage (LIFO
// service and enqueue drops observed) and the run must stay accounted —
// every arrival is executed, shed, dropped, expired, or backlog.
func TestOpenLoopQueueDiscipline(t *testing.T) {
	res, err := Run(core.Config{Protocol: "SILO"},
		workload.NewYCSB(workload.YCSBConfig{Records: 4096, OpsPerTxn: 64}),
		RunOptions{
			Threads:            1,
			Duration:           300 * time.Millisecond,
			WarmupTxns:         10,
			Seed:               1,
			OfferedRate:        300_000, // far past one thread's capacity
			Deadline:           20 * time.Millisecond,
			QueueLIFOAge:       2 * time.Millisecond,
			QueueCoDelTarget:   5 * time.Millisecond,
			QueueCoDelInterval: 10 * time.Millisecond,
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 {
		t.Fatal("no commits under overload")
	}
	if res.QueueLIFOServed == 0 {
		t.Fatal("adaptive LIFO never engaged under overload")
	}
	if res.QueueDropped == 0 {
		t.Fatal("CoDel never dropped under overload")
	}
	accounted := res.Commits + res.Aborts + res.UserAborts + res.FatalAborts +
		res.DeadlineAborts + res.ShedAborts + res.QueueDropped + res.Backlog
	if accounted < res.Arrivals {
		t.Fatalf("arrivals=%d but only %d accounted for", res.Arrivals, accounted)
	}
}

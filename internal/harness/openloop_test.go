package harness

import (
	"testing"
	"time"

	"next700/internal/admission"
	"next700/internal/core"
	"next700/internal/workload"
)

func TestOpenLoopProtected(t *testing.T) {
	res, err := Run(core.Config{Protocol: "SILO"},
		workload.NewYCSB(workload.YCSBConfig{Records: 1024, OpsPerTxn: 4}),
		RunOptions{
			Threads:     2,
			Duration:    300 * time.Millisecond,
			WarmupTxns:  20,
			Seed:        1,
			OfferedRate: 2000,
			Deadline:    20 * time.Millisecond,
			Admission:   &admission.Config{MaxQueueWait: 10 * time.Millisecond},
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered != 2000 {
		t.Fatalf("offered = %v", res.Offered)
	}
	if res.Arrivals == 0 {
		t.Fatal("no arrivals generated")
	}
	if res.Commits == 0 {
		t.Fatal("no commits in open-loop run")
	}
	// At an offered rate far below capacity nothing should be late and
	// goodput should track throughput.
	if res.Goodput <= 0 || res.Goodput > res.Tps+1 {
		t.Fatalf("goodput = %v vs tps = %v", res.Goodput, res.Tps)
	}
	// Every generated arrival is accounted for: executed (commit or
	// terminal abort), shed, expired in queue, or left in the backlog.
	accounted := res.Commits + res.Aborts + res.UserAborts + res.FatalAborts +
		res.DeadlineAborts + res.ShedAborts + res.Backlog
	if accounted < res.Arrivals {
		t.Fatalf("arrivals=%d but only %d accounted for", res.Arrivals, accounted)
	}
	if res.AdmissionLimit <= 0 {
		t.Fatalf("admission limit = %d with a controller configured", res.AdmissionLimit)
	}
	if res.QueueLatency.Count == 0 || res.E2ELatency.Count == 0 {
		t.Fatal("queue/e2e latency not recorded")
	}
}

// TestOpenLoopUnprotectedClassifiesLateness: with only a goodput window (no
// enforcement) every commit still lands, but commits slower than the window
// end-to-end are classified late rather than good.
func TestOpenLoopUnprotectedWindow(t *testing.T) {
	res, err := Run(core.Config{Protocol: "SILO"},
		workload.NewYCSB(workload.YCSBConfig{Records: 1024, OpsPerTxn: 4}),
		RunOptions{
			Threads:       1,
			Duration:      200 * time.Millisecond,
			Seed:          1,
			OfferedRate:   500,
			GoodputWindow: 50 * time.Millisecond,
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineAborts != 0 || res.ShedAborts != 0 {
		t.Fatalf("window-only run enforced something: deadline_aborts=%d shed=%d",
			res.DeadlineAborts, res.ShedAborts)
	}
	if res.Commits == 0 {
		t.Fatal("no commits")
	}
	goodOrLate := uint64(res.Goodput*res.Elapsed.Seconds()+0.5) + res.LateCommits
	if diff := int64(goodOrLate) - int64(res.Commits); diff > 1 || diff < -1 {
		t.Fatalf("good(%d)+late(%d) != commits(%d)", goodOrLate-res.LateCommits,
			res.LateCommits, res.Commits)
	}
}

// TestClosedLoopDeadlinePassThrough: the closed-loop driver treats a
// deadline abort as a per-transaction outcome, and an ample deadline leaves
// a normal run untouched.
func TestClosedLoopDeadlineHarmless(t *testing.T) {
	res, err := Run(core.Config{Protocol: "SILO"},
		workload.NewYCSB(workload.YCSBConfig{Records: 1024, OpsPerTxn: 4}),
		RunOptions{Threads: 2, TxnsPerWorker: 100, Seed: 1, Deadline: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 || res.DeadlineAborts != 0 {
		t.Fatalf("commits=%d deadline_aborts=%d", res.Commits, res.DeadlineAborts)
	}
}

// TestAdmissionTimeline checks the per-window controller trace: samples are
// time-ordered, carry a live limit, are cumulative-consistent, and the
// closing sample agrees with the Result's final operating point.
func TestAdmissionTimeline(t *testing.T) {
	res, err := Run(core.Config{Protocol: "SILO"},
		workload.NewYCSB(workload.YCSBConfig{Records: 1024, OpsPerTxn: 4}),
		RunOptions{
			Threads:              2,
			Duration:             300 * time.Millisecond,
			WarmupTxns:           20,
			Seed:                 1,
			OfferedRate:          2000,
			Deadline:             20 * time.Millisecond,
			Admission:            &admission.Config{MaxQueueWait: 10 * time.Millisecond},
			AdmissionSampleEvery: 25 * time.Millisecond,
		})
	if err != nil {
		t.Fatal(err)
	}
	tl := res.AdmissionTimeline
	if len(tl) < 2 {
		t.Fatalf("timeline has %d samples, want >= 2", len(tl))
	}
	for i, s := range tl {
		if s.Limit <= 0 {
			t.Fatalf("sample %d: limit = %d", i, s.Limit)
		}
		if s.ShedRate < 0 || s.ShedRate > 1 {
			t.Fatalf("sample %d: shed rate = %v", i, s.ShedRate)
		}
		if i == 0 {
			continue
		}
		if s.Offset <= tl[i-1].Offset {
			t.Fatalf("sample %d: offset %v not after %v", i, s.Offset, tl[i-1].Offset)
		}
		if s.Admitted < tl[i-1].Admitted || s.Shed < tl[i-1].Shed {
			t.Fatalf("sample %d: cumulative counters went backwards", i)
		}
	}
	final := tl[len(tl)-1]
	if final.Limit != res.AdmissionLimit {
		t.Fatalf("closing sample limit %d != final AdmissionLimit %d", final.Limit, res.AdmissionLimit)
	}
	if final.Admitted == 0 {
		t.Fatal("controller admitted nothing")
	}
}

// TestAdmissionPerPartition runs HSTORE with one admission controller per
// partition: every partition reports its own limit, the aggregate equals the
// sum, and the partition-local workload still commits through its home
// controller.
func TestAdmissionPerPartition(t *testing.T) {
	const parts = 4
	res, err := Run(core.Config{Protocol: "HSTORE", Threads: parts, Partitions: parts},
		workload.NewYCSB(workload.YCSBConfig{
			Records: 1024, OpsPerTxn: 4, Partitions: parts, PartitionLocal: true,
		}),
		RunOptions{
			Threads:               parts,
			Duration:              300 * time.Millisecond,
			WarmupTxns:            20,
			Seed:                  1,
			OfferedRate:           2000,
			Deadline:              20 * time.Millisecond,
			Admission:             &admission.Config{MaxQueueWait: 10 * time.Millisecond},
			AdmissionPerPartition: true,
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 {
		t.Fatal("no commits")
	}
	if len(res.AdmissionLimits) != parts {
		t.Fatalf("AdmissionLimits has %d entries, want %d", len(res.AdmissionLimits), parts)
	}
	sum := 0
	for p, l := range res.AdmissionLimits {
		if l <= 0 {
			t.Fatalf("partition %d limit = %d", p, l)
		}
		sum += l
	}
	if sum != res.AdmissionLimit {
		t.Fatalf("sum of per-partition limits %d != AdmissionLimit %d", sum, res.AdmissionLimit)
	}
	if len(res.AdmissionTimeline) == 0 {
		t.Fatal("no admission timeline with per-partition controllers")
	}
	// The closing aggregate sample agrees with the summed operating point.
	if final := res.AdmissionTimeline[len(res.AdmissionTimeline)-1]; final.Limit != res.AdmissionLimit {
		t.Fatalf("closing sample limit %d != AdmissionLimit %d", final.Limit, res.AdmissionLimit)
	}
}

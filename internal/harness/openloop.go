package harness

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"next700/internal/admission"
	"next700/internal/core"
	"next700/internal/stats"
	"next700/internal/workload"
	"next700/internal/xrand"
)

// maxArrivalQueue bounds the arrival channel: past this many undrained
// arrivals the generator counts drops into the backlog instead of buffering
// — the run is already deep in collapse territory by then and the exact
// queue contents no longer change the story.
const maxArrivalQueue = 1 << 20

// driveOpen is the open-loop counterpart of drive: a seeded Poisson
// generator offers transactions at opts.OfferedRate regardless of how fast
// they complete, workers drain the arrival queue, and queue latency is
// recorded separately from service latency. Closed-loop measurement caps
// offered load at capacity by construction; this mode is what makes
// overload — goodput, shedding, latency collapse — observable at all.
func driveOpen(e *core.Engine, wl workload.Workload, opts RunOptions) (Result, error) {
	threads := opts.Threads
	if opts.Duration <= 0 {
		opts.Duration = time.Second
	}
	// The goodput window classifies, the deadline enforces. When only a
	// deadline is set it plays both roles; when both are set the deadline is
	// typically tighter (enforce early, leave SLO headroom for the work that
	// survives).
	budget := opts.GoodputWindow
	if budget == 0 {
		budget = opts.Deadline
	}
	// One controller by default; one per engine partition when
	// AdmissionPerPartition is on. A worker gates through the controller of
	// its home partition (id mod partitions — matching PartitionLocal
	// workload affinity), so a hot partition's AIMD limit decays without
	// choking admissions to the cold ones.
	var ctrls []*admission.Controller
	if opts.Admission != nil {
		n := 1
		if opts.AdmissionPerPartition {
			if p := e.Config().Partitions; p > 1 {
				n = p
			}
		}
		ctrls = make([]*admission.Controller, n)
		for i := range ctrls {
			ctrls[i] = admission.New(*opts.Admission)
		}
	}

	type workerOut struct {
		counter         stats.Counter
		svc, queue, e2e *stats.Histogram
		good, late      uint64
		err             error
	}
	outs := make([]workerOut, threads)

	qcap := int(opts.OfferedRate*opts.Duration.Seconds()*1.25) + 1024
	if qcap > maxArrivalQueue {
		qcap = maxArrivalQueue
	}
	arrivals := newArrivalQueue(qcap, opts.QueueLIFOAge, opts.QueueCoDelTarget, opts.QueueCoDelInterval)
	stop := make(chan struct{})

	var warm sync.WaitGroup
	warm.Add(threads)
	begin := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tx := e.NewTx(id, opts.Seed*1_000_003+uint64(id)+1)
			var ctrl *admission.Controller
			if len(ctrls) > 0 {
				ctrl = ctrls[id%len(ctrls)]
			}
			out := &outs[id]
			out.svc, out.queue, out.e2e = stats.NewHistogram(), stats.NewHistogram(), stats.NewHistogram()
			for w := 0; w < opts.WarmupTxns; w++ {
				if err := wl.RunOne(tx); err != nil {
					out.err = err
					warm.Done()
					return
				}
			}
			warm.Done()
			<-begin
			base := *tx.Counter()
			ctr := tx.Counter()
		loop:
			for {
				// The queue closes when the window ends (the generator's
				// deferred close), so a blocked pop wakes promptly and
				// whatever is still queued counts as backlog.
				a, ok := arrivals.pop()
				if !ok {
					break loop
				}
				start := time.Now().UnixNano()
				var dl int64
				if opts.Deadline > 0 {
					dl = a + int64(opts.Deadline)
					if start >= dl {
						// Aged out while queued: shed for free, before the
						// engine sees it.
						ctr.DeadlineAborts++
						continue
					}
				}
				tx.SetDeadlineNanos(dl)
				if ctrl != nil {
					if err := ctrl.Acquire(dl); err != nil {
						ctr.ShedAborts++
						continue //next700:allowretry(shed arrivals are counted outcomes; the loop moves to the next arrival, not a retry)
					}
				}
				out.queue.Record(time.Now().UnixNano() - a)
				commitsBefore := ctr.Commits
				t0 := time.Now()
				err := wl.RunOne(tx)
				svc := time.Since(t0)
				if ctrl != nil {
					ctrl.Release(svc)
				}
				if err != nil && !errors.Is(err, core.ErrDeadlineExceeded) {
					out.err = err
					break loop
				}
				if ctr.Commits > commitsBefore {
					out.svc.RecordDuration(svc)
					e2e := time.Now().UnixNano() - a
					out.e2e.Record(e2e)
					if budget > 0 && e2e > int64(budget) {
						out.late++
					} else {
						out.good++
					}
				}
			}
			tx.ClearDeadline()
			c := *tx.Counter()
			c.Commits -= base.Commits
			c.Aborts -= base.Aborts
			c.UserAborts -= base.UserAborts
			c.FatalAborts -= base.FatalAborts
			c.DeadlineAborts -= base.DeadlineAborts
			c.ShedAborts -= base.ShedAborts
			c.PartitionAborts -= base.PartitionAborts
			c.Reads -= base.Reads
			c.Writes -= base.Writes
			c.Inserts -= base.Inserts
			c.Deletes -= base.Deletes
			c.Scans -= base.Scans
			c.Waits -= base.Waits
			out.counter = c
		}(i)
	}
	warm.Wait()
	start := time.Now()
	close(begin)

	// The admission sampler turns the controller's Snapshot into a
	// per-window timeline: AIMD limit and latency EWMA at each instant,
	// plus the shed rate within each window (delta-based, so a burst of
	// early shedding does not mask late-run health). The closing sample
	// (on stop) records the operating point the controller converged to.
	var timeline []AdmissionSample
	samplerDone := make(chan struct{})
	if len(ctrls) > 0 {
		every := opts.AdmissionSampleEvery
		if every <= 0 {
			every = opts.Duration / 16
		}
		if every < time.Millisecond {
			every = time.Millisecond
		}
		// With per-partition controllers the timeline aggregates: limits,
		// in-flight, and counts sum across partitions; the EWMA reported is
		// the worst (highest) partition's — the one actually steering shed
		// decisions somewhere.
		snapshot := func() admission.Stats {
			var agg admission.Stats
			for _, c := range ctrls {
				s := c.Snapshot()
				agg.Limit += s.Limit
				agg.InFlight += s.InFlight
				agg.Admitted += s.Admitted
				agg.Shed += s.Shed
				if s.LatencyEWMA > agg.LatencyEWMA {
					agg.LatencyEWMA = s.LatencyEWMA
				}
			}
			return agg
		}
		go func() {
			defer close(samplerDone)
			tick := time.NewTicker(every)
			defer tick.Stop()
			var prev admission.Stats
			sample := func() {
				s := snapshot()
				dAdmitted, dShed := s.Admitted-prev.Admitted, s.Shed-prev.Shed
				rate := 0.0
				if dAdmitted+dShed > 0 {
					rate = float64(dShed) / float64(dAdmitted+dShed)
				}
				timeline = append(timeline, AdmissionSample{
					Offset:      time.Since(start),
					Limit:       s.Limit,
					InFlight:    s.InFlight,
					LatencyEWMA: s.LatencyEWMA,
					Admitted:    s.Admitted,
					Shed:        s.Shed,
					ShedRate:    rate,
				})
				prev = s
			}
			for {
				select {
				case <-stop:
					sample()
					return
				case <-tick.C:
					sample()
				}
			}
		}()
	} else {
		close(samplerDone)
	}

	// The arrival generator: exponential inter-arrival times from a seeded
	// RNG make the offered process Poisson and the run replayable. Sleeps
	// under ~2ms are skipped (the OS timer would oversleep them), so high
	// rates arrive in millisecond-scale bursts — far below the latency
	// scales being measured.
	var generated uint64
	genDone := make(chan struct{})
	genRNG := xrand.New(opts.Seed*9_176_867 + 0xfeed)
	go func() {
		defer close(genDone)
		defer arrivals.close()
		next := time.Now()
		for {
			select {
			case <-stop:
				return
			default:
			}
			u := genRNG.Float64()
			if u > 0.999999 {
				u = 0.999999
			}
			next = next.Add(time.Duration(-math.Log(1-u) / opts.OfferedRate * float64(time.Second)))
			if d := time.Until(next); d > 2*time.Millisecond {
				select {
				case <-stop:
					return
				case <-time.After(d):
				}
			}
			generated++
			arrivals.pushAt(next.UnixNano(), time.Now().UnixNano())
		}
	}()
	time.AfterFunc(opts.Duration, func() { close(stop) })
	<-genDone
	wg.Wait()
	elapsed := time.Since(start)

	var total stats.Counter
	svcH, queueH, e2eH := stats.NewHistogram(), stats.NewHistogram(), stats.NewHistogram()
	var good, late uint64
	var firstErr error
	for i := range outs {
		total.Add(&outs[i].counter)
		svcH.Merge(outs[i].svc)
		queueH.Merge(outs[i].queue)
		e2eH.Merge(outs[i].e2e)
		good += outs[i].good
		late += outs[i].late
		if outs[i].err != nil && firstErr == nil {
			firstErr = fmt.Errorf("worker %d: %w", i, outs[i].err)
		}
	}
	remaining, qDropped, overflow, lifoServed := arrivals.stats()
	res := Result{
		Threads:         threads,
		Elapsed:         elapsed,
		Commits:         total.Commits,
		Aborts:          total.Aborts,
		UserAborts:      total.UserAborts,
		FatalAborts:     total.FatalAborts,
		DeadlineAborts:  total.DeadlineAborts,
		ShedAborts:      total.ShedAborts,
		PartitionAborts: total.PartitionAborts,
		Waits:           total.Waits,
		Tps:             float64(total.Commits) / elapsed.Seconds(),
		AbortRate:       total.AbortRate(),
		Latency:         svcH.Summarize(),
		Offered:         opts.OfferedRate,
		Arrivals:        generated,
		Backlog:         uint64(remaining) + overflow,
		Goodput:         float64(good) / elapsed.Seconds(),
		LateCommits:     late,
		QueueDropped:    qDropped,
		QueueLIFOServed: lifoServed,
		QueueLatency:    queueH.Summarize(),
		E2ELatency:      e2eH.Summarize(),
	}
	if len(ctrls) > 0 {
		<-samplerDone
		for _, c := range ctrls {
			res.AdmissionLimit += c.Limit()
		}
		if opts.AdmissionPerPartition {
			res.AdmissionLimits = make([]int, len(ctrls))
			for i, c := range ctrls {
				res.AdmissionLimits[i] = c.Limit()
			}
		}
		res.AdmissionTimeline = timeline
	}
	return res, firstErr
}

package harness

import (
	"encoding/hex"
	"fmt"
	"math"
	"runtime"
	"time"

	"next700/internal/core"
	"next700/internal/det"
	"next700/internal/stats"
	"next700/internal/verify"
	"next700/internal/workload"
	"next700/internal/xrand"
)

// DetBatchObserver is implemented by deterministic workloads that keep
// per-batch state. RunDet calls BeginBatch before planning a batch's first
// transaction and EndBatch after the batch has executed and sealed — the
// verify.DetProbe uses the pair to flush its deferred history on the
// sequencer goroutine.
type DetBatchObserver interface {
	BeginBatch()
	EndBatch()
}

// DetOptions controls one deterministic (queue-oriented) measurement run.
type DetOptions struct {
	// Batch is the number of transactions sequenced into each batch
	// (default 64).
	Batch int
	// Batches is the number of measured batches in closed mode
	// (default 64). Ignored in open-loop mode.
	Batches int
	// WarmupBatches are executed before measurement starts (closed mode).
	WarmupBatches int
	// Seed seeds the sequencer RNG; the same seed yields the same planned
	// batches at any partition count — the premise of the determinism
	// oracle.
	Seed uint64
	// Verify enables isolation-anomaly recording; the workload must
	// implement verify.Recordable (verify.DetProbe does).
	Verify bool
	// MeasureAllocs reports heap allocations per committed transaction over
	// the measured window (closed mode; forces a GC first).
	MeasureAllocs bool

	// OfferedRate, when > 0, switches to batch-arrival open-loop mode:
	// transactions arrive by a seeded Poisson process and the sequencer
	// cuts a batch when it reaches Batch transactions or when the oldest
	// waiting arrival has aged past MaxBatchDelay. Queue latency (arrival →
	// batch start) and end-to-end latency (arrival → batch durable) are
	// recorded separately; the run lasts Duration.
	OfferedRate   float64
	MaxBatchDelay time.Duration
	Duration      time.Duration
}

func (o *DetOptions) normalize() {
	if o.Batch <= 0 {
		o.Batch = 64
	}
	if o.Batches <= 0 {
		o.Batches = 64
	}
	if o.MaxBatchDelay <= 0 {
		o.MaxBatchDelay = 5 * time.Millisecond
	}
	if o.Duration <= 0 {
		o.Duration = time.Second
	}
}

// RunDet opens a QSTORE engine with cfg, sets up wl, and drives it through
// the deterministic queue-oriented executor. The Protocol field of cfg is
// overridden ("QSTORE" is the only sound protocol under the deterministic
// scheduler) and Threads is raised to the partition count if needed.
// Deterministic planning uses the engine's default key-modulo partitioning.
//
// The returned Result's Digest is the engine's canonical state digest after
// the run — the comparand of the determinism oracles.
func RunDet(cfg core.Config, wl workload.DeclaredAccess, opts DetOptions) (Result, error) {
	opts.normalize()
	cfg.Protocol = "QSTORE"
	if cfg.Partitions <= 0 {
		cfg.Partitions = 1
	}
	if cfg.Threads < cfg.Partitions {
		cfg.Threads = cfg.Partitions
	}
	var hist *verify.History
	if opts.Verify {
		rec, ok := wl.(verify.Recordable)
		if !ok {
			return Result{}, fmt.Errorf("harness: workload %q does not support verification recording", wl.Name())
		}
		hist = verify.NewHistory(1)
		rec.AttachHistory(hist)
	}
	e, err := core.Open(cfg)
	if err != nil {
		return Result{}, err
	}
	defer e.Close()
	if err := wl.Setup(e); err != nil {
		return Result{}, err
	}
	x, err := core.NewDetExecutor(e, wl.ExecOp)
	if err != nil {
		return Result{}, err
	}
	defer x.Close()

	var res Result
	if opts.OfferedRate > 0 {
		res, err = driveDetOpen(e, x, wl, opts)
	} else {
		res, err = driveDetClosed(e, x, wl, opts)
	}
	res.Protocol = e.Protocol()
	res.Workload = wl.Name()
	res.Threads = cfg.Partitions
	d := e.StateDigest()
	res.Digest = hex.EncodeToString(d[:])
	if err == nil && hist != nil {
		final, ferr := wl.(verify.Recordable).FinalVersions(e)
		if ferr != nil {
			return res, fmt.Errorf("harness: reading final versions: %w", ferr)
		}
		res.Verification = hist.Check(final)
	}
	return res, err
}

// detSequencer owns batch planning: a single goroutine, a single RNG, a
// reused TxnPlan slate, and the planner scratch.
type detSequencer struct {
	wl   workload.DeclaredAccess
	obs  DetBatchObserver // nil when the workload keeps no batch state
	rng  *xrand.RNG
	pl   *det.Planner
	txns []det.TxnPlan
	n    int // transactions planned into the open batch
}

func newDetSequencer(wl workload.DeclaredAccess, parts int, opts DetOptions) *detSequencer {
	s := &detSequencer{
		wl:   wl,
		rng:  xrand.New(opts.Seed*1_000_003 + 0xD0_0D),
		pl:   det.NewPlanner(parts, nil),
		txns: make([]det.TxnPlan, opts.Batch),
	}
	s.obs, _ = wl.(DetBatchObserver)
	return s
}

// planOne declares the next transaction into the open batch, opening a new
// batch first if none is.
func (s *detSequencer) planOne() {
	if s.n == 0 && s.obs != nil {
		s.obs.BeginBatch()
	}
	tp := &s.txns[s.n]
	tp.Reset()
	s.wl.PlanTxn(s.rng, tp)
	s.n++
}

// execute compiles and runs the open batch, returning its size.
func (s *detSequencer) execute(x *core.DetExecutor) (int, error) {
	n := s.n
	s.n = 0
	_, err := x.ExecuteBatch(s.pl.PlanBatch(s.txns[:n]))
	if err != nil {
		return n, err
	}
	if s.obs != nil {
		s.obs.EndBatch()
	}
	return n, nil
}

// driveDetClosed runs a fixed batch count back to back. Each committed
// transaction's latency is its batch's plan-to-durable time: under batched
// deterministic execution no transaction completes before its batch seals.
func driveDetClosed(e *core.Engine, x *core.DetExecutor, wl workload.DeclaredAccess, opts DetOptions) (Result, error) {
	seq := newDetSequencer(wl, x.Parts(), opts)
	runBatch := func() (int, time.Duration, error) {
		t0 := time.Now()
		for i := 0; i < opts.Batch; i++ {
			seq.planOne()
		}
		n, err := seq.execute(x)
		return n, time.Since(t0), err
	}
	for b := 0; b < opts.WarmupBatches; b++ {
		if _, _, err := runBatch(); err != nil {
			return Result{}, err
		}
	}
	var memBefore runtime.MemStats
	if opts.MeasureAllocs {
		runtime.GC()
		runtime.ReadMemStats(&memBefore)
	}
	base := e.TotalCounter()
	hist := stats.NewHistogram()
	var commits uint64
	start := time.Now()
	for b := 0; b < opts.Batches; b++ {
		n, d, err := runBatch()
		if err != nil {
			return Result{}, err
		}
		commits += uint64(n)
		for i := 0; i < n; i++ {
			hist.RecordDuration(d)
		}
	}
	elapsed := time.Since(start)
	var memAfter runtime.MemStats
	if opts.MeasureAllocs {
		runtime.ReadMemStats(&memAfter)
	}
	res := detResult(e, base, commits, elapsed, hist)
	if opts.MeasureAllocs && commits > 0 {
		res.AllocsPerTxn = float64(memAfter.Mallocs-memBefore.Mallocs) / float64(commits)
		res.BytesPerTxn = float64(memAfter.TotalAlloc-memBefore.TotalAlloc) / float64(commits)
	}
	return res, nil
}

// driveDetOpen is the batch-arrival open-loop mode: a seeded Poisson
// arrival process feeds the sequencer, which cuts a batch at Batch
// transactions or when the oldest arrival has waited MaxBatchDelay. Unlike
// the interactive open loop there is no arrival queue to drain — planning
// IS admission — so backlog only accumulates while a batch executes, and
// the latency decomposition is queue (arrival → batch execution start) vs
// end-to-end (arrival → batch durable).
func driveDetOpen(e *core.Engine, x *core.DetExecutor, wl workload.DeclaredAccess, opts DetOptions) (Result, error) {
	seq := newDetSequencer(wl, x.Parts(), opts)
	arrRNG := xrand.New(opts.Seed*9_176_867 + 0xfeed)
	gap := func() time.Duration {
		u := arrRNG.Float64()
		if u > 0.999999 {
			u = 0.999999
		}
		return time.Duration(-math.Log(1-u) / opts.OfferedRate * float64(time.Second))
	}
	hist := stats.NewHistogram()
	queueH := stats.NewHistogram()
	e2eH := stats.NewHistogram()
	arrivalAt := make([]time.Time, opts.Batch)
	base := e.TotalCounter()
	var commits, arrivals uint64

	start := time.Now()
	deadline := start.Add(opts.Duration)
	next := start.Add(gap())
	flush := func() error {
		execStart := time.Now()
		n, err := seq.execute(x)
		if err != nil {
			return err
		}
		done := time.Now()
		commits += uint64(n)
		for i := 0; i < n; i++ {
			queueH.RecordDuration(execStart.Sub(arrivalAt[i]))
			e2eH.RecordDuration(done.Sub(arrivalAt[i]))
			hist.RecordDuration(done.Sub(execStart))
		}
		return nil
	}
	for {
		now := time.Now()
		if now.After(deadline) {
			break
		}
		if !now.Before(next) {
			// An arrival is due: plan it immediately (planning is the
			// sequencer's admission) and schedule the next one.
			arrivalAt[seq.n] = next
			seq.planOne()
			arrivals++
			next = next.Add(gap())
			if seq.n == opts.Batch {
				if err := flush(); err != nil {
					return Result{}, err
				}
			}
			continue
		}
		if seq.n > 0 && now.Sub(arrivalAt[0]) >= opts.MaxBatchDelay {
			if err := flush(); err != nil {
				return Result{}, err
			}
			continue
		}
		// Idle: sleep until the next arrival or the batch-age cut, whichever
		// comes first. Sub-2ms sleeps oversleep on the OS timer, so short
		// waits just yield (matching the interactive open loop's policy).
		wake := next
		if seq.n > 0 {
			if cut := arrivalAt[0].Add(opts.MaxBatchDelay); cut.Before(wake) {
				wake = cut
			}
		}
		if d := time.Until(wake); d > 2*time.Millisecond {
			time.Sleep(d)
		} else {
			runtime.Gosched()
		}
	}
	backlog := uint64(seq.n)
	elapsed := time.Since(start)
	res := detResult(e, base, commits, elapsed, hist)
	res.Offered = opts.OfferedRate
	res.Arrivals = arrivals
	res.Backlog = backlog
	res.QueueLatency = queueH.Summarize()
	res.E2ELatency = e2eH.Summarize()
	return res, nil
}

// detResult assembles the common fields from the engine's counter delta.
func detResult(e *core.Engine, base stats.Counter, commits uint64, elapsed time.Duration, hist *stats.Histogram) Result {
	c := e.TotalCounter()
	return Result{
		Elapsed: elapsed,
		Commits: commits,
		// Deterministic execution is abort-free by construction; these
		// deltas are the proof surfaced per run (conflict aborts must be 0).
		Aborts:      c.Aborts - base.Aborts,
		FatalAborts: c.FatalAborts - base.FatalAborts,
		Waits:       c.Waits - base.Waits,
		Tps:         float64(commits) / elapsed.Seconds(),
		Goodput:     float64(commits) / elapsed.Seconds(),
		Latency:     hist.Summarize(),
	}
}

package cc

import (
	"sync"
	"time"

	"next700/internal/storage"
	"next700/internal/txn"
)

// twoPLVariant selects the conflict-resolution policy of the 2PL family.
type twoPLVariant uint8

const (
	// variantNoWait aborts the requester immediately on any conflict.
	variantNoWait twoPLVariant = iota
	// variantWaitDie lets older transactions wait for younger holders and
	// kills younger requesters ("die"), which is deadlock-free and
	// starvation-free because aborted transactions retain their age.
	variantWaitDie
	// variantDLDetect always waits but maintains a global waits-for graph
	// and kills the requester when its wait would close a cycle.
	variantDLDetect
)

func (v twoPLVariant) name() string {
	switch v {
	case variantNoWait:
		return "NO_WAIT"
	case variantWaitDie:
		return "WAIT_DIE"
	default:
		return "DL_DETECT"
	}
}

// lockState is the per-record lock word of the 2PL family: one exclusive
// holder or a set of shared holders, identified by transaction priority
// stamps (unique, monotone — smaller is older).
type lockState struct {
	mu      sync.Mutex
	cond    *sync.Cond
	writer  uint64   // priority of exclusive holder; 0 = none
	readers []uint64 // priorities of shared holders
}

func (st *lockState) broadcast() {
	if st.cond != nil {
		st.cond.Broadcast()
	}
}

// wait parks the caller until a holder releases or aborts (broadcast).
// Deadline-free transactions opt out of bounded waiting by contract; their
// progress is bounded by policy instead — WAIT_DIE wound-ordering kills
// younger waiters, DL_DETECT clears its waits-for edges on every exit path.
//
//next700:allowwait(deadline-free transactions opt out; WAIT_DIE/DL_DETECT policies bound progress, deadline path uses waitDeadline)
func (st *lockState) wait() {
	if st.cond == nil {
		st.cond = sync.NewCond(&st.mu)
	}
	st.cond.Wait()
}

// waitDeadline is wait with an absolute deadline (Unix nanoseconds): a
// timer broadcasts the condition at the deadline so a waiter whose holder
// never releases still wakes. Returns false when the deadline has already
// passed (no wait happened). Spurious wakeups of co-waiters on the same
// record are possible and harmless — they re-check and wait again. The
// timer allocation happens only on the blocked (slow) path; deadline-free
// waits take the allocation-free wait() above.
//
//next700:allowalloc(the audited timed-wait timer: allocation happens only on the blocked path, documented above)
func (st *lockState) waitDeadline(deadline int64) bool {
	remaining := deadline - time.Now().UnixNano()
	if remaining <= 0 {
		return false
	}
	if st.cond == nil {
		st.cond = sync.NewCond(&st.mu)
	}
	t := time.AfterFunc(time.Duration(remaining), func() {
		st.mu.Lock()
		st.cond.Broadcast()
		st.mu.Unlock()
	})
	st.cond.Wait() //next700:allowwait(the AfterFunc broadcast above bounds this wait at the deadline)
	t.Stop()
	return true
}

func (st *lockState) hasReader(id uint64) bool {
	for _, r := range st.readers {
		if r == id {
			return true
		}
	}
	return false
}

func (st *lockState) removeReader(id uint64) {
	for i, r := range st.readers {
		if r == id {
			st.readers[i] = st.readers[len(st.readers)-1]
			st.readers = st.readers[:len(st.readers)-1]
			return
		}
	}
}

// conflictHolders appends to dst the ids currently blocking a request by me
// in the given mode (exclusive or shared).
func (st *lockState) conflictHolders(dst []uint64, me uint64, exclusive bool) []uint64 {
	if st.writer != 0 && st.writer != me {
		dst = append(dst, st.writer)
	}
	if exclusive {
		for _, r := range st.readers {
			if r != me {
				dst = append(dst, r)
			}
		}
	}
	return dst
}

// waitsFor is the global waits-for graph used by DL_DETECT. All mutation
// and cycle checks take one mutex — deliberately: the shared graph is the
// scalability bottleneck the design-space experiments quantify.
type waitsFor struct {
	mu    sync.Mutex
	edges map[uint64]map[uint64]struct{}
}

func newWaitsFor() *waitsFor {
	return &waitsFor{edges: make(map[uint64]map[uint64]struct{})}
}

// addWouldCycle installs edges me->holders and reports whether doing so
// closes a cycle through me. If it does, the edges are removed again and
// true is returned (the caller must die rather than wait).
//
//next700:allowalloc(deadlock-detection bookkeeping runs only on the conflict path, never on uncontended acquires)
//next700:locked(waitsFor.mu: deadlock-detection bookkeeping runs only on the conflict path, never on uncontended acquires)
func (w *waitsFor) addWouldCycle(me uint64, holders []uint64) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	m := w.edges[me]
	if m == nil {
		m = make(map[uint64]struct{}, len(holders))
		w.edges[me] = m
	}
	for _, h := range holders {
		m[h] = struct{}{}
	}
	// DFS from me; cycle iff me is reachable from one of its targets.
	if w.reaches(me, me, make(map[uint64]bool)) {
		delete(w.edges, me)
		return true
	}
	return false
}

// reaches reports whether target is reachable from any successor of from.
func (w *waitsFor) reaches(from, target uint64, seen map[uint64]bool) bool {
	for next := range w.edges[from] {
		if next == target {
			return true
		}
		if !seen[next] {
			seen[next] = true
			if w.reaches(next, target, seen) {
				return true
			}
		}
	}
	return false
}

// clear removes all outgoing edges of me (called when its wait ends).
func (w *waitsFor) clear(me uint64) {
	w.mu.Lock()
	delete(w.edges, me)
	w.mu.Unlock()
}

// twoPL implements the three lock-based protocols over shared machinery.
type twoPL struct {
	env     *Env
	variant twoPLVariant
	meta    tableMetas[lockState]
	graph   *waitsFor // DL_DETECT only
}

func newTwoPL(env *Env, v twoPLVariant) *twoPL {
	p := &twoPL{env: env, variant: v}
	if v == variantDLDetect {
		p.graph = newWaitsFor()
	}
	return p
}

// Name implements Protocol.
func (p *twoPL) Name() string { return p.variant.name() }

// Begin implements Protocol. The priority stamp doubles as the lock-holder
// identity; retries keep it so WAIT_DIE cannot starve.
func (p *twoPL) Begin(tx *txn.Txn) {
	if tx.Priority == 0 {
		tx.Priority = p.env.TS.Next()
	}
	tx.ID = tx.Priority
}

// acquire takes the record lock in the requested mode, applying the
// variant's conflict policy. Returns txn.ErrConflict when the requester
// must die.
func (p *twoPL) acquire(tx *txn.Txn, st *lockState, exclusive bool) error {
	me := tx.Priority
	var holders []uint64

	st.mu.Lock()
	defer st.mu.Unlock()
	for {
		if st.writer == me {
			return nil // already exclusive; covers shared too
		}
		if exclusive {
			if st.writer == 0 && (len(st.readers) == 0 ||
				(len(st.readers) == 1 && st.readers[0] == me)) {
				st.removeReader(me) // upgrade
				st.writer = me
				return nil
			}
		} else {
			if st.writer == 0 {
				if !st.hasReader(me) {
					st.readers = append(st.readers, me)
				}
				return nil
			}
		}

		// Conflict.
		switch p.variant {
		case variantNoWait:
			return txn.ErrConflict
		case variantWaitDie:
			holders = st.conflictHolders(holders[:0], me, exclusive)
			for _, h := range holders {
				if me > h {
					// Someone older holds the lock: die.
					return txn.ErrConflict
				}
			}
			if tx.Counter != nil {
				tx.Counter.Waits++
			}
			if dl := tx.Deadline; dl != 0 {
				if !st.waitDeadline(dl) {
					// Expired while blocked: no lock request is queued
					// (waiters re-poll), so simply stop waiting. Locks
					// acquired earlier are released by the engine's Abort.
					return txn.ErrDeadlineExceeded
				}
			} else {
				st.wait()
			}
		case variantDLDetect:
			holders = st.conflictHolders(holders[:0], me, exclusive)
			if p.graph.addWouldCycle(me, holders) {
				return txn.ErrConflict
			}
			if tx.Counter != nil {
				tx.Counter.Waits++
			}
			if dl := tx.Deadline; dl != 0 {
				waited := st.waitDeadline(dl)
				// The waits-for edges must come out whether the wait ended
				// by grant, by broadcast, or by deadline — an expired waiter
				// must never leave dangling edges that strand later cycle
				// checks.
				p.graph.clear(me)
				if !waited {
					return txn.ErrDeadlineExceeded
				}
			} else {
				st.wait()
				p.graph.clear(me)
			}
		}
	}
}

// release drops whatever me holds on st and wakes waiters.
func (st *lockState) release(me uint64) {
	st.mu.Lock()
	if st.writer == me {
		st.writer = 0
	}
	st.removeReader(me)
	st.broadcast()
	st.mu.Unlock()
}

// Read implements Protocol: S-lock then return the row in place (stable
// while the S lock is held, since writers install only under X).
func (p *twoPL) Read(tx *txn.Txn, tbl *storage.Table, rid storage.RecordID) ([]byte, error) {
	st := p.meta.get(tbl, rid)
	if err := p.acquire(tx, st, false); err != nil {
		return nil, err
	}
	tx.AddAccess(txn.Access{Table: tbl, RID: rid, Kind: txn.KindRead})
	if tbl.IsTombstoned(rid) {
		return nil, txn.ErrNotFound
	}
	return tbl.Row(rid), nil
}

// ReadForUpdate implements Protocol: X-lock, buffer an after-image.
func (p *twoPL) ReadForUpdate(tx *txn.Txn, tbl *storage.Table, rid storage.RecordID) ([]byte, error) {
	st := p.meta.get(tbl, rid)
	if err := p.acquire(tx, st, true); err != nil {
		return nil, err
	}
	if tbl.IsTombstoned(rid) {
		tx.AddAccess(txn.Access{Table: tbl, RID: rid, Kind: txn.KindRead})
		return nil, txn.ErrNotFound
	}
	row := tbl.Row(rid)
	buf := tx.Buf(len(row))
	copy(buf, row)
	tx.AddAccess(txn.Access{Table: tbl, RID: rid, Kind: txn.KindWrite, Data: buf})
	return buf, nil
}

// RegisterInsert implements Protocol: X-lock the fresh record (uncontended)
// so readers chasing the index entry block or die until the outcome.
func (p *twoPL) RegisterInsert(tx *txn.Txn, tbl *storage.Table, rid storage.RecordID, key uint64, data []byte) error {
	st := p.meta.get(tbl, rid)
	if err := p.acquire(tx, st, true); err != nil {
		return err
	}
	tx.AddAccess(txn.Access{Table: tbl, RID: rid, Kind: txn.KindInsert, Key: key, Data: data})
	return nil
}

// RegisterDelete implements Protocol: X-lock and tombstone at commit.
func (p *twoPL) RegisterDelete(tx *txn.Txn, tbl *storage.Table, rid storage.RecordID, key uint64) error {
	st := p.meta.get(tbl, rid)
	if err := p.acquire(tx, st, true); err != nil {
		return err
	}
	if tbl.IsTombstoned(rid) {
		return txn.ErrNotFound
	}
	tx.AddAccess(txn.Access{Table: tbl, RID: rid, Kind: txn.KindDelete, Key: key})
	return nil
}

// Commit implements Protocol. SS2PL: by this point every access is locked,
// so installation cannot fail.
//
// Allocation budget: zero steady-state for all three variants — images
// install in place under the held exclusive locks, and each lockState's
// reader/waiter slices grow to a contention high-water mark on first use,
// then are reused. Pinned by bench/alloc_test.go.
func (p *twoPL) Commit(tx *txn.Txn) error {
	return p.CommitHooked(tx, nil)
}

// CommitHooked implements HookedCommitter: beforeRelease runs after all
// writes are installed but before any lock is released, giving the engine a
// point where a commit sequence number reflects the serialization order.
func (p *twoPL) CommitHooked(tx *txn.Txn, beforeRelease func()) error {
	for i := range tx.Accesses {
		a := &tx.Accesses[i]
		if a.Kind != txn.KindRead {
			applyWrite(a)
		}
	}
	if beforeRelease != nil {
		beforeRelease()
	}
	p.releaseAll(tx)
	return nil
}

// Abort implements Protocol.
func (p *twoPL) Abort(tx *txn.Txn) {
	if p.variant == variantDLDetect {
		p.graph.clear(tx.Priority)
	}
	p.releaseAll(tx)
}

func (p *twoPL) releaseAll(tx *txn.Txn) {
	me := tx.Priority
	// release is idempotent per lockState, so duplicate accesses to the
	// same record are harmless.
	for i := range tx.Accesses {
		a := &tx.Accesses[i]
		p.meta.get(a.Table, a.RID).release(me)
	}
}

// Package cc implements the engine's pluggable concurrency-control
// protocols — the axis of the design space the keynote spends most of its
// time on. Eight protocols are provided behind one interface:
//
//	NO_WAIT    two-phase locking, abort immediately on conflict
//	WAIT_DIE   two-phase locking, age-based wait/abort
//	DL_DETECT  two-phase locking, waits-for graph deadlock detection
//	TIMESTAMP  basic timestamp ordering (T/O)
//	MVCC       multi-version T/O with version chains and GC
//	SILO       OCC with epoch-based TIDs and Silo's commit validation
//	TICTOC     timestamp computation with read-timestamp extension
//	HSTORE     partition-level locking, single-threaded partition semantics
//
// All protocols provide serializability (MVCC can optionally run at weaker
// isolation for the isolation-ablation experiment). Writes are buffered in
// the transaction write set and applied at commit; reads return images that
// remain valid until the transaction ends.
package cc

import (
	"fmt"
	"sync"
	"sync/atomic"

	"next700/internal/storage"
	"next700/internal/txn"
)

// Protocol is the concurrency-control interface the engine composes over.
// Implementations must be safe for concurrent use by the configured number
// of worker threads.
type Protocol interface {
	// Name returns the canonical scheme name (e.g. "SILO").
	Name() string

	// Begin initializes protocol state for a transaction attempt. The
	// descriptor has been Reset by the caller.
	Begin(tx *txn.Txn)

	// Read returns a stable image of the record, recording the access. The
	// returned slice must remain valid until Commit/Abort. The caller has
	// already resolved own-writes; Read only sees committed state plus
	// protocol-internal pending state.
	Read(tx *txn.Txn, tbl *storage.Table, rid storage.RecordID) ([]byte, error)

	// ReadForUpdate returns a writable after-image buffer seeded with the
	// record's current value and records a write-set entry. Mutations to
	// the buffer become visible atomically at commit.
	ReadForUpdate(tx *txn.Txn, tbl *storage.Table, rid storage.RecordID) ([]byte, error)

	// RegisterInsert takes ownership of a freshly allocated record (still
	// tombstoned by the engine) so that it becomes visible to others only
	// at commit, when data is installed and the tombstone cleared. The
	// engine publishes the index entry after RegisterInsert returns;
	// concurrent readers that chase it must be handled per protocol
	// (blocked, aborted, or shown an invisible record).
	RegisterInsert(tx *txn.Txn, tbl *storage.Table, rid storage.RecordID, key uint64, data []byte) error

	// RegisterDelete records intent to delete the record at commit.
	RegisterDelete(tx *txn.Txn, tbl *storage.Table, rid storage.RecordID, key uint64) error

	// Commit validates and installs the transaction. On success all writes
	// are visible; on txn.ErrConflict the transaction has been fully rolled
	// back (as if Abort ran) and may be retried by the caller.
	Commit(tx *txn.Txn) error

	// Abort rolls back the attempt, releasing all protocol state. The
	// engine retracts index entries for the transaction's inserts after
	// Abort returns.
	Abort(tx *txn.Txn)
}

// PartitionAware is implemented by protocols (H-Store) that need the
// transaction's partition set declared before any access.
type PartitionAware interface {
	// DeclarePartitions acquires whatever partition-level protection the
	// protocol uses. Must be called after Begin and before any access.
	DeclarePartitions(tx *txn.Txn, parts []int) error
}

// HookedCommitter is implemented by lock-based protocols whose commit has a
// point where every write is installed but still protected. The engine uses
// the hook to draw a commit sequence number that reflects the serialization
// order of conflicting transactions, which value-log replay relies on.
// Version-stamped protocols (SILO, TICTOC, TIMESTAMP, MVCC) do not need it:
// their tx.ID after commit is already per-record monotone.
type HookedCommitter interface {
	CommitHooked(tx *txn.Txn, beforeRelease func()) error
}

// Loader is implemented by protocols that must observe bulk-loaded records
// (MVCC seeds version chains; HSTORE tags partitions). The engine calls it
// once per record during the single-threaded load phase, before any
// transactions run.
type Loader interface {
	LoadRecord(tbl *storage.Table, rid storage.RecordID, key uint64, data []byte)
}

// Env carries the shared runtime services protocols draw on.
type Env struct {
	// TS is the central timestamp allocator (TO, MVCC, WAIT_DIE priorities).
	TS *txn.TimestampSource
	// Epoch is the Silo epoch source, advanced by the engine.
	Epoch *txn.Epoch
	// Active tracks per-thread active begin-timestamps for MVCC garbage
	// collection.
	Active *ActiveTable
	// NumThreads is the worker count the engine was configured with.
	NumThreads int
	// NumPartitions is the partition count for HSTORE (>= 1). Records are
	// assigned to partitions by primary key (key mod NumPartitions) unless
	// PartitionOf overrides the mapping.
	NumPartitions int
	// PartitionOf, when non-nil, maps (table, primary key) to a partition
	// for HSTORE. Workloads install it to partition by their own notion of
	// locality (e.g. TPC-C warehouses).
	PartitionOf func(tbl *storage.Table, key uint64) int
	// IsolationLevel tunes MVCC: "serializable" (default), "snapshot",
	// "read-committed".
	IsolationLevel string
}

// NewEnv builds an Env with fresh sources.
func NewEnv(numThreads int) *Env {
	if numThreads <= 0 {
		numThreads = 1
	}
	return &Env{
		TS:            &txn.TimestampSource{},
		Epoch:         txn.NewEpoch(),
		Active:        NewActiveTable(numThreads),
		NumThreads:    numThreads,
		NumPartitions: 1,
	}
}

// New constructs the named protocol. Names are case-sensitive canonical
// identifiers; see Names.
func New(name string, env *Env) (Protocol, error) {
	switch name {
	case "NO_WAIT":
		return newTwoPL(env, variantNoWait), nil
	case "WAIT_DIE":
		return newTwoPL(env, variantWaitDie), nil
	case "DL_DETECT":
		return newTwoPL(env, variantDLDetect), nil
	case "TIMESTAMP":
		return newTO(env), nil
	case "MVCC":
		return newMVCC(env), nil
	case "SILO":
		return newSilo(env), nil
	case "TICTOC":
		return newTicToc(env), nil
	case "HSTORE":
		return newHStore(env), nil
	case "QSTORE":
		// Deterministic pass-through: only sound under the queue-oriented
		// scheduler (core.DetExecutor), so it is constructible here but not
		// part of Names' interactive sweep.
		return newQStore(env), nil
	default:
		// Config-time validation, never an abort path: no transaction is
		// running when protocol construction fails.
		return nil, fmt.Errorf("cc: unknown protocol %q", name) //next700:allowabort(config-time constructor error; no abort path reaches this)
	}
}

// Names lists the canonical protocol names in presentation order.
func Names() []string {
	return []string{"NO_WAIT", "WAIT_DIE", "DL_DETECT", "TIMESTAMP", "MVCC", "SILO", "TICTOC", "HSTORE"}
}

// ActiveTable tracks the begin-timestamp of the transaction currently
// running on each worker thread (MaxUint64 when idle). MVCC GC prunes
// versions no active transaction can reach.
type ActiveTable struct {
	slots []atomic.Uint64
}

// NewActiveTable creates a table for n threads.
func NewActiveTable(n int) *ActiveTable {
	at := &ActiveTable{slots: make([]atomic.Uint64, n)}
	for i := range at.slots {
		at.slots[i].Store(^uint64(0))
	}
	return at
}

// Enter marks thread as running a transaction with the given begin-ts.
func (at *ActiveTable) Enter(thread int, ts uint64) {
	if thread < len(at.slots) {
		at.slots[thread].Store(ts)
	}
}

// Leave marks thread idle.
func (at *ActiveTable) Leave(thread int) {
	if thread < len(at.slots) {
		at.slots[thread].Store(^uint64(0))
	}
}

// Min returns the smallest active begin-ts, or MaxUint64 if none.
func (at *ActiveTable) Min() uint64 {
	min := ^uint64(0)
	for i := range at.slots {
		if v := at.slots[i].Load(); v < min {
			min = v
		}
	}
	return min
}

// metaChunkBits matches the storage chunk geometry so metadata chunks grow
// in step with table chunks.
const metaChunkBits = 16

const metaChunkSize = 1 << metaChunkBits

// metaTable is a growable parallel array of per-record protocol metadata,
// indexed by RecordID. Reads are wait-free once a chunk exists; growth is
// serialized.
type metaTable[T any] struct {
	mu     sync.Mutex
	chunks atomic.Pointer[[]*[metaChunkSize]T]
}

//next700:allowalloc(first-touch slow path: a table's metadata directory is built once, on the first record access)
func newMetaTable[T any]() *metaTable[T] {
	mt := &metaTable[T]{}
	empty := make([]*[metaChunkSize]T, 0, 16)
	mt.chunks.Store(&empty)
	return mt
}

// get returns the metadata slot for rid, growing the directory as needed.
func (mt *metaTable[T]) get(rid storage.RecordID) *T {
	idx := int(rid >> metaChunkBits)
	chunks := *mt.chunks.Load()
	if idx >= len(chunks) {
		mt.grow(idx)
		chunks = *mt.chunks.Load()
	}
	return &chunks[idx][rid&(metaChunkSize-1)]
}

func (mt *metaTable[T]) grow(idx int) {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	chunks := *mt.chunks.Load()
	for idx >= len(chunks) {
		//next700:locked(metaTable.mu: chunk growth is a once-per-chunk slow path; allocating outside the lock would race a concurrent grow)
		grown := append(chunks, new([metaChunkSize]T)) //next700:allowalloc(per-record metadata chunk growth, amortized over the table lifetime)
		mt.chunks.Store(&grown)
		chunks = grown
	}
}

// tableMetas maps table id -> metaTable for protocols that keep per-record
// state. Table ids are small and dense.
type tableMetas[T any] struct {
	mu   sync.RWMutex
	byID []*metaTable[T]
}

func (tm *tableMetas[T]) forTable(tbl *storage.Table) *metaTable[T] {
	id := tbl.ID()
	tm.mu.RLock()
	if id < len(tm.byID) && tm.byID[id] != nil {
		mt := tm.byID[id]
		tm.mu.RUnlock()
		return mt
	}
	tm.mu.RUnlock()
	tm.mu.Lock()
	defer tm.mu.Unlock()
	for id >= len(tm.byID) {
		tm.byID = append(tm.byID, nil)
	}
	if tm.byID[id] == nil {
		tm.byID[id] = newMetaTable[T]()
	}
	return tm.byID[id]
}

// get resolves the metadata slot for (tbl, rid).
func (tm *tableMetas[T]) get(tbl *storage.Table, rid storage.RecordID) *T {
	return tm.forTable(tbl).get(rid)
}

// sortWriteIndices returns the indices of write-kind accesses sorted by
// (table id, rid) — the canonical deadlock-free lock acquisition order used
// by the commit phases of SILO and TICTOC. The slice is descriptor-owned
// scratch: reused across transactions, no allocation on the commit path.
func sortWriteIndices(tx *txn.Txn) []int {
	return tx.SortedWriteIndices()
}

// applyWrite installs an access's after-image into the table, honoring
// delete tombstones. Caller must hold whatever write protection the
// protocol requires.
func applyWrite(a *txn.Access) {
	switch a.Kind {
	case txn.KindWrite, txn.KindInsert:
		copy(a.Table.Row(a.RID), a.Data)
		if a.Kind == txn.KindInsert {
			a.Table.SetTombstone(a.RID, false)
		}
	case txn.KindDelete:
		a.Table.SetTombstone(a.RID, true)
	}
}

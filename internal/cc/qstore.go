package cc

import (
	"next700/internal/storage"
	"next700/internal/txn"
)

// qstore is the pass-through protocol for queue-oriented deterministic
// execution (Q-Store). It takes no locks, keeps no per-record metadata, and
// performs no validation: the deterministic scheduler (internal/det +
// core.DetExecutor) guarantees that every access to a record happens on that
// record's home partition, in global priority order, on a single goroutine —
// conflicts are impossible by construction, so the protocol's only job is to
// buffer writes in the access set and install them at commit.
//
// QSTORE is an execution-architecture axis, not a point in the concurrency
// sweep: it is constructed by cc.New but deliberately absent from cc.Names,
// because driving it with free-running interactive workers would be unsound
// (nothing detects the conflicts the scheduler is supposed to have planned
// away).
type qstore struct {
	env *Env
}

func newQStore(env *Env) *qstore { return &qstore{env: env} }

func (q *qstore) Name() string { return "QSTORE" }

func (q *qstore) Begin(tx *txn.Txn) {}

// Read returns the live row image directly: no copy, no access entry. The
// image is stable for the transaction's lifetime because any later write to
// this record in the batch belongs to a lower-priority transaction on the
// same partition queue, which cannot run until this one commits.
//
//next700:hotpath
func (q *qstore) Read(tx *txn.Txn, tbl *storage.Table, rid storage.RecordID) ([]byte, error) {
	if tbl.IsTombstoned(rid) {
		return nil, txn.ErrNotFound
	}
	return tbl.Row(rid), nil
}

// ReadForUpdate buffers an after-image in the transaction arena, exactly
// like the locking protocols but with nothing to acquire.
//
//next700:hotpath
func (q *qstore) ReadForUpdate(tx *txn.Txn, tbl *storage.Table, rid storage.RecordID) ([]byte, error) {
	if tbl.IsTombstoned(rid) {
		return nil, txn.ErrNotFound
	}
	row := tbl.Row(rid)
	buf := tx.Buf(len(row))
	copy(buf, row)
	tx.AddAccess(txn.Access{Table: tbl, RID: rid, Kind: txn.KindWrite, Data: buf})
	return buf, nil
}

func (q *qstore) RegisterInsert(tx *txn.Txn, tbl *storage.Table, rid storage.RecordID, key uint64, data []byte) error {
	tx.AddAccess(txn.Access{Table: tbl, RID: rid, Kind: txn.KindInsert, Key: key, Data: data})
	return nil
}

func (q *qstore) RegisterDelete(tx *txn.Txn, tbl *storage.Table, rid storage.RecordID, key uint64) error {
	if tbl.IsTombstoned(rid) {
		return txn.ErrNotFound
	}
	tx.AddAccess(txn.Access{Table: tbl, RID: rid, Kind: txn.KindDelete, Key: key})
	return nil
}

// Commit installs the write set. Nothing can fail and nothing is released:
// the transaction ran conflict-free by plan. tx.ID is left untouched — the
// deterministic executor assigns replay-ordered commit IDs before calling
// Commit, so qstore must not overwrite them (it is deliberately not a
// HookedCommitter).
//
//next700:hotpath
func (q *qstore) Commit(tx *txn.Txn) error {
	for i := range tx.Accesses {
		applyWrite(&tx.Accesses[i])
	}
	return nil
}

// Abort drops the buffered writes (the arena is reset by the descriptor).
// Only reachable on non-conflict failures — a dead log device or a canceled
// batch — never for conflicts.
func (q *qstore) Abort(tx *txn.Txn) {}

package cc

import (
	"sync"

	"next700/internal/storage"
	"next700/internal/txn"
)

// Isolation levels supported by the MVCC protocol (E14 ablation).
const (
	// IsoSerializable is multi-version timestamp ordering: reads stamp rts,
	// writes validate against rts and newer versions.
	IsoSerializable = "serializable"
	// IsoSnapshot reads a begin-time snapshot and enforces
	// first-committer-wins on write-write conflicts only (write skew is
	// permitted).
	IsoSnapshot = "snapshot"
	// IsoReadCommitted reads the newest committed version with no read
	// tracking at all.
	IsoReadCommitted = "read-committed"
)

// mvVersion is one entry of a record's newest-first version chain. Versions
// are immutable once installed, so readers may hold their data without
// copies or latches.
type mvVersion struct {
	begin   uint64 // timestamp from which this version is visible
	deleted bool
	data    []byte
	next    *mvVersion
}

// mvMeta is the per-record state: the chain head, the largest read
// timestamp (serializable only), the write-intent marker, and a freelist of
// pruned version nodes recycled by later commits.
type mvMeta struct {
	mu      sync.Mutex
	rts     uint64
	pending uint64 // timestamp of the transaction holding write intent
	head    *mvVersion
	free    *mvVersion
}

// mvFreeLimit bounds the per-record freelist so a burst of versions on a hot
// record does not pin memory forever.
const mvFreeLimit = 4

// allocVersion pops a recycled node (or allocates). Caller holds m.mu.
func (m *mvMeta) allocVersion() *mvVersion {
	v := m.free
	if v == nil {
		return &mvVersion{} //next700:allowalloc(freelist miss: version nodes are recycled on GC; the alloc gate pins the budget)
	}
	m.free = v.next
	v.next = nil
	v.deleted = false
	return v
}

// setData fills v with a copy of data, reusing the node's retained buffer
// when it is large enough.
func (v *mvVersion) setData(data []byte) {
	if cap(v.data) >= len(data) {
		v.data = v.data[:len(data)]
	} else {
		v.data = make([]byte, len(data)) //next700:allowalloc(version payload growth; retained capacity absorbs the steady state)
	}
	copy(v.data, data)
}

// mvcc is multi-version concurrency control with timestamp ordering,
// version-chain storage and active-transaction-watermark garbage
// collection. Table rows are never read directly — all data lives in
// version chains seeded by LoadRecord.
type mvcc struct {
	env   *Env
	level string
	meta  tableMetas[mvMeta]
}

func newMVCC(env *Env) *mvcc {
	level := env.IsolationLevel
	if level == "" {
		level = IsoSerializable
	}
	return &mvcc{env: env, level: level}
}

// Name implements Protocol.
func (p *mvcc) Name() string { return "MVCC" }

// Begin implements Protocol: draw the begin timestamp and register it for
// GC visibility.
func (p *mvcc) Begin(tx *txn.Txn) {
	tx.ID = p.env.TS.Next()
	if tx.Priority == 0 {
		tx.Priority = tx.ID
	}
	p.env.Active.Enter(tx.ThreadID, tx.ID)
}

// LoadRecord implements the engine's bulk-load hook: install the initial
// version, visible to every transaction.
func (p *mvcc) LoadRecord(tbl *storage.Table, rid storage.RecordID, key uint64, data []byte) {
	m := p.meta.get(tbl, rid)
	// Build the version outside the critical section; the lock only covers
	// the head-pointer install.
	cp := make([]byte, len(data))
	copy(cp, data)
	v := &mvVersion{begin: 0, data: cp}
	m.mu.Lock()
	m.head = v
	m.mu.Unlock()
}

// visible returns the newest version with begin <= ts (nil if none).
func visibleVersion(head *mvVersion, ts uint64) *mvVersion {
	for v := head; v != nil; v = v.next {
		if v.begin <= ts {
			return v
		}
	}
	return nil
}

// Read implements Protocol.
func (p *mvcc) Read(tx *txn.Txn, tbl *storage.Table, rid storage.RecordID) ([]byte, error) {
	m := p.meta.get(tbl, rid)
	m.mu.Lock()
	var v *mvVersion
	switch p.level {
	case IsoReadCommitted:
		v = m.head
	default:
		// A pending writer with a smaller timestamp may commit a version
		// this read should have observed: abort rather than read around it.
		if m.pending != 0 && m.pending != tx.ID && m.pending < tx.ID {
			m.mu.Unlock()
			return nil, txn.ErrConflict
		}
		v = visibleVersion(m.head, tx.ID)
		if p.level == IsoSerializable && tx.ID > m.rts {
			m.rts = tx.ID
		}
	}
	m.mu.Unlock()
	tx.AddAccess(txn.Access{Table: tbl, RID: rid, Kind: txn.KindRead})
	if v == nil || v.deleted {
		return nil, txn.ErrNotFound
	}
	return v.data, nil
}

// preWrite validates and takes the write intent per the isolation level.
// Caller holds m.mu.
func (p *mvcc) preWrite(tx *txn.Txn, m *mvMeta) error {
	if m.pending != 0 && m.pending != tx.ID {
		return txn.ErrConflict
	}
	switch p.level {
	case IsoSerializable:
		if tx.ID < m.rts {
			return txn.ErrConflict
		}
		if m.head != nil && m.head.begin > tx.ID {
			return txn.ErrConflict
		}
	case IsoSnapshot:
		// First-committer-wins: a version committed after our snapshot
		// began means a concurrent writer beat us.
		if m.head != nil && m.head.begin > tx.ID {
			return txn.ErrConflict
		}
	}
	m.pending = tx.ID
	return nil
}

// ReadForUpdate implements Protocol.
func (p *mvcc) ReadForUpdate(tx *txn.Txn, tbl *storage.Table, rid storage.RecordID) ([]byte, error) {
	m := p.meta.get(tbl, rid)
	m.mu.Lock()
	if err := p.preWrite(tx, m); err != nil {
		m.mu.Unlock()
		return nil, err
	}
	var v *mvVersion
	if p.level == IsoReadCommitted {
		v = m.head
	} else {
		v = visibleVersion(m.head, tx.ID)
	}
	if v == nil || v.deleted {
		m.pending = 0
		m.mu.Unlock()
		return nil, txn.ErrNotFound
	}
	buf := tx.Buf(len(v.data))
	copy(buf, v.data)
	m.mu.Unlock()
	tx.AddAccess(txn.Access{Table: tbl, RID: rid, Kind: txn.KindWrite, Data: buf})
	return buf, nil
}

// RegisterInsert implements Protocol: write intent on a chain with no
// committed versions keeps the record invisible until commit.
func (p *mvcc) RegisterInsert(tx *txn.Txn, tbl *storage.Table, rid storage.RecordID, key uint64, data []byte) error {
	m := p.meta.get(tbl, rid)
	m.mu.Lock()
	err := p.preWrite(tx, m)
	m.mu.Unlock()
	if err != nil {
		return err
	}
	tx.AddAccess(txn.Access{Table: tbl, RID: rid, Kind: txn.KindInsert, Key: key, Data: data})
	return nil
}

// RegisterDelete implements Protocol: a delete is a tombstone version.
func (p *mvcc) RegisterDelete(tx *txn.Txn, tbl *storage.Table, rid storage.RecordID, key uint64) error {
	m := p.meta.get(tbl, rid)
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := p.preWrite(tx, m); err != nil {
		return err
	}
	v := visibleVersion(m.head, tx.ID)
	if v == nil || v.deleted {
		m.pending = 0
		return txn.ErrNotFound
	}
	tx.AddAccess(txn.Access{Table: tbl, RID: rid, Kind: txn.KindDelete, Key: key})
	return nil
}

// Commit implements Protocol: install versions and prune garbage.
func (p *mvcc) Commit(tx *txn.Txn) error {
	if !tx.HasWrites() {
		p.env.Active.Leave(tx.ThreadID)
		return nil
	}
	// Serializable MV-TO installs at the begin timestamp; snapshot and
	// read-committed stamp a fresh commit timestamp so that versions appear
	// in commit order.
	installTS := tx.ID
	if p.level != IsoSerializable {
		installTS = p.env.TS.Next()
	}
	watermark := p.env.Active.Min()

	for i := range tx.Accesses {
		a := &tx.Accesses[i]
		if a.Kind == txn.KindRead {
			continue
		}
		m := p.meta.get(a.Table, a.RID)
		m.mu.Lock()
		if p.level == IsoSnapshot && m.head != nil && m.head.begin > tx.ID && m.pending != tx.ID {
			// Should not happen (pending guards us), defensive only.
			m.mu.Unlock()
			p.Abort(tx)
			return txn.ErrConflict
		}
		v := m.allocVersion()
		v.begin = installTS
		v.next = m.head
		switch a.Kind {
		case txn.KindDelete:
			v.deleted = true
			v.data = v.data[:0]
		default:
			v.setData(a.Data)
		}
		m.head = v
		m.pending = 0
		pruneVersions(m, watermark)
		m.mu.Unlock()
	}
	// Expose the version timestamp so value-log replay can order entries.
	tx.ID = installTS
	p.env.Active.Leave(tx.ThreadID)
	return nil
}

// pruneVersions drops chain entries that no active transaction can reach —
// everything past the newest version with begin <= watermark — and recycles
// the cut nodes into the record's freelist. Recycling is safe: a pruned
// version is strictly older than the newest version visible at the
// watermark, and under every isolation level a version installed while a
// reader was active carries a begin timestamp the reader cannot see past,
// so no still-running transaction can hold a pruned node's data. Caller
// holds m.mu.
func pruneVersions(m *mvMeta, watermark uint64) {
	for v := m.head; v != nil; v = v.next {
		if v.begin <= watermark {
			cut := v.next
			v.next = nil
			freeCount := 0
			for f := m.free; f != nil; f = f.next {
				freeCount++
			}
			for cut != nil && freeCount < mvFreeLimit {
				next := cut.next
				cut.next = m.free
				m.free = cut
				freeCount++
				cut = next
			}
			return
		}
	}
}

// Abort implements Protocol: release write intents.
func (p *mvcc) Abort(tx *txn.Txn) {
	for i := range tx.Accesses {
		a := &tx.Accesses[i]
		if a.Kind == txn.KindRead {
			continue
		}
		m := p.meta.get(a.Table, a.RID)
		m.mu.Lock()
		if m.pending == tx.ID {
			m.pending = 0
		}
		m.mu.Unlock()
	}
	p.env.Active.Leave(tx.ThreadID)
}

package cc

import (
	"errors"
	"sync"
	"testing"

	"next700/internal/storage"
	"next700/internal/txn"
	"next700/internal/xrand"
)

func mkTxn(thread int, prio uint64) *txn.Txn {
	tx := txn.NewTxn(thread, xrand.New(uint64(thread+1)), nil)
	tx.Priority = prio
	tx.ID = prio
	return tx
}

func TestLockStateSharedCompatibility(t *testing.T) {
	p := newTwoPL(NewEnv(2), variantNoWait)
	st := &lockState{}
	t1, t2 := mkTxn(0, 1), mkTxn(1, 2)
	if err := p.acquire(t1, st, false); err != nil {
		t.Fatal(err)
	}
	if err := p.acquire(t2, st, false); err != nil {
		t.Fatal("shared locks must be compatible:", err)
	}
	// Exclusive conflicts with both readers.
	t3 := mkTxn(0, 3)
	if err := p.acquire(t3, st, true); !errors.Is(err, txn.ErrConflict) {
		t.Fatal("X over S must conflict under NO_WAIT")
	}
	st.release(t1.Priority)
	st.release(t2.Priority)
	if err := p.acquire(t3, st, true); err != nil {
		t.Fatal("X after release failed:", err)
	}
	// Re-entrant: X holder may read and write again.
	if err := p.acquire(t3, st, false); err != nil {
		t.Fatal("reentrant S under X failed:", err)
	}
	if err := p.acquire(t3, st, true); err != nil {
		t.Fatal("reentrant X failed:", err)
	}
}

func TestLockStateUpgrade(t *testing.T) {
	p := newTwoPL(NewEnv(2), variantNoWait)
	st := &lockState{}
	t1 := mkTxn(0, 1)
	if err := p.acquire(t1, st, false); err != nil {
		t.Fatal(err)
	}
	// Sole reader upgrades in place.
	if err := p.acquire(t1, st, true); err != nil {
		t.Fatal("sole-reader upgrade failed:", err)
	}
	if st.writer != t1.Priority || len(st.readers) != 0 {
		t.Fatalf("upgrade state wrong: writer=%d readers=%v", st.writer, st.readers)
	}
	// With a second reader present, upgrade conflicts.
	st.release(t1.Priority)
	t2 := mkTxn(1, 2)
	p.acquire(t1, st, false)
	p.acquire(t2, st, false)
	if err := p.acquire(t1, st, true); !errors.Is(err, txn.ErrConflict) {
		t.Fatal("upgrade with other readers must conflict under NO_WAIT")
	}
}

func TestWaitDieYoungerDies(t *testing.T) {
	p := newTwoPL(NewEnv(2), variantWaitDie)
	st := &lockState{}
	older := mkTxn(0, 1) // smaller priority = older
	younger := mkTxn(1, 2)
	if err := p.acquire(older, st, true); err != nil {
		t.Fatal(err)
	}
	// Younger requester must die immediately.
	if err := p.acquire(younger, st, true); !errors.Is(err, txn.ErrConflict) {
		t.Fatal("younger must die under WAIT_DIE")
	}
}

func TestWaitDieOlderWaits(t *testing.T) {
	p := newTwoPL(NewEnv(2), variantWaitDie)
	st := &lockState{}
	younger := mkTxn(1, 10)
	older := mkTxn(0, 5)
	if err := p.acquire(younger, st, true); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- p.acquire(older, st, true) // should block, then acquire
	}()
	// Release from the younger holder; the older waiter must proceed.
	st.release(younger.Priority)
	if err := <-done; err != nil {
		t.Fatal("older waiter should acquire after release:", err)
	}
	if st.writer != older.Priority {
		t.Fatal("older did not take the lock")
	}
}

func TestWaitsForCycleDetection(t *testing.T) {
	w := newWaitsFor()
	if w.addWouldCycle(1, []uint64{2}) {
		t.Fatal("1->2 is no cycle")
	}
	if w.addWouldCycle(2, []uint64{3}) {
		t.Fatal("2->3 is no cycle")
	}
	if !w.addWouldCycle(3, []uint64{1}) {
		t.Fatal("3->1 closes a cycle and must be detected")
	}
	// The rejected edge must have been rolled back: 3 can wait on 4.
	if w.addWouldCycle(3, []uint64{4}) {
		t.Fatal("edge rollback failed")
	}
	w.clear(1)
	// With 1's edges gone, 3->1 no longer cycles.
	if w.addWouldCycle(1, []uint64{3}) {
		t.Fatal("cleared graph must not cycle")
	}
}

func TestWaitsForSelfEdgeIgnored(t *testing.T) {
	w := newWaitsFor()
	// A direct self-edge is a degenerate cycle.
	if !w.addWouldCycle(7, []uint64{7}) {
		t.Fatal("self edge must be a cycle")
	}
}

func TestDLDetectTwoTxnDeadlock(t *testing.T) {
	// T1 holds A wants B; T2 holds B wants A. Exactly one must die; the
	// other completes.
	p := newTwoPL(NewEnv(2), variantDLDetect)
	stA, stB := &lockState{}, &lockState{}
	t1, t2 := mkTxn(0, 1), mkTxn(1, 2)
	if err := p.acquire(t1, stA, true); err != nil {
		t.Fatal(err)
	}
	if err := p.acquire(t2, stB, true); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		errs[0] = p.acquire(t1, stB, true)
		if errs[0] != nil {
			stA.release(t1.Priority)
			p.graph.clear(t1.Priority)
		}
	}()
	go func() {
		defer wg.Done()
		errs[1] = p.acquire(t2, stA, true)
		if errs[1] != nil {
			stB.release(t2.Priority)
			p.graph.clear(t2.Priority)
		}
	}()
	wg.Wait()
	dead := 0
	for _, e := range errs {
		if errors.Is(e, txn.ErrConflict) {
			dead++
		}
	}
	if dead != 1 {
		t.Fatalf("expected exactly one deadlock victim, got %d (errs=%v)", dead, errs)
	}
}

func TestMVCCVersionChain(t *testing.T) {
	env := NewEnv(2)
	p := newMVCC(env)
	sch := storage.MustSchema("t", storage.I64("v"))
	tbl := storage.NewTable(sch, 0)
	rid := tbl.Alloc()
	init := make([]byte, sch.RowSize())
	sch.SetInt64(init, 0, 100)
	p.LoadRecord(tbl, rid, 0, init)

	// An old reader begins first (smaller timestamp, registered as active
	// so GC keeps its snapshot), then a writer updates to 200.
	old := mkTxn(1, 0)
	old.Reset()
	p.Begin(old)

	w := mkTxn(0, 0)
	w.Reset()
	p.Begin(w)
	buf, err := p.ReadForUpdate(w, tbl, rid)
	if err != nil {
		t.Fatal(err)
	}
	sch.SetInt64(buf, 0, 200)
	if err := p.Commit(w); err != nil {
		t.Fatal(err)
	}

	// The old reader must still see the pre-update version.
	data, err := p.Read(old, tbl, rid)
	if err != nil {
		t.Fatal(err)
	}
	if got := sch.GetInt64(data, 0); got != 100 {
		t.Fatalf("old reader saw %d, want 100", got)
	}
	p.Abort(old)

	// A fresh reader sees the new version.
	fresh := mkTxn(1, 0)
	fresh.Reset()
	p.Begin(fresh)
	data, err = p.Read(fresh, tbl, rid)
	if err != nil {
		t.Fatal(err)
	}
	if got := sch.GetInt64(data, 0); got != 200 {
		t.Fatalf("fresh reader saw %d, want 200", got)
	}
	p.Commit(fresh)
}

func TestMVCCGarbageCollection(t *testing.T) {
	env := NewEnv(1)
	p := newMVCC(env)
	sch := storage.MustSchema("t", storage.I64("v"))
	tbl := storage.NewTable(sch, 0)
	rid := tbl.Alloc()
	init := make([]byte, sch.RowSize())
	p.LoadRecord(tbl, rid, 0, init)

	// With no concurrent readers, repeated updates must keep the chain
	// pruned to a handful of versions.
	for i := 0; i < 100; i++ {
		w := mkTxn(0, 0)
		w.Reset()
		p.Begin(w)
		buf, err := p.ReadForUpdate(w, tbl, rid)
		if err != nil {
			t.Fatal(err)
		}
		sch.SetInt64(buf, 0, int64(i))
		if err := p.Commit(w); err != nil {
			t.Fatal(err)
		}
	}
	m := p.meta.get(tbl, rid)
	depth := 0
	for v := m.head; v != nil; v = v.next {
		depth++
	}
	if depth > 3 {
		t.Fatalf("version chain not pruned: depth=%d", depth)
	}
}

func TestMVCCSnapshotAllowsWriteSkew(t *testing.T) {
	// Write skew: T1 reads A writes B, T2 reads B writes A. Serializable
	// MVCC must reject one; snapshot isolation commits both.
	run := func(level string) (commits int) {
		env := NewEnv(2)
		env.IsolationLevel = level
		p := newMVCC(env)
		sch := storage.MustSchema("t", storage.I64("v"))
		tbl := storage.NewTable(sch, 0)
		ridA, ridB := tbl.Alloc(), tbl.Alloc()
		init := make([]byte, sch.RowSize())
		p.LoadRecord(tbl, ridA, 0, init)
		p.LoadRecord(tbl, ridB, 1, init)

		t1, t2 := mkTxn(0, 0), mkTxn(1, 0)
		t1.Reset()
		t2.Reset()
		p.Begin(t1)
		p.Begin(t2)
		// Interleave: both read their peer's record, then write their own.
		if _, err := p.Read(t1, tbl, ridA); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Read(t2, tbl, ridB); err != nil {
			t.Fatal(err)
		}
		ok1, ok2 := true, true
		if _, err := p.ReadForUpdate(t1, tbl, ridB); err != nil {
			ok1 = false
		}
		if _, err := p.ReadForUpdate(t2, tbl, ridA); err != nil {
			ok2 = false
		}
		if ok1 {
			if err := p.Commit(t1); err != nil {
				ok1 = false
			}
		} else {
			p.Abort(t1)
		}
		if ok2 {
			if err := p.Commit(t2); err != nil {
				ok2 = false
			}
		} else {
			p.Abort(t2)
		}
		if ok1 {
			commits++
		}
		if ok2 {
			commits++
		}
		return commits
	}
	if got := run(IsoSerializable); got > 1 {
		t.Fatalf("serializable committed both write-skew txns (%d)", got)
	}
	if got := run(IsoSnapshot); got != 2 {
		t.Fatalf("snapshot should commit both write-skew txns, got %d", got)
	}
}

func TestSiloCommitTIDMonotone(t *testing.T) {
	env := NewEnv(1)
	p := newSilo(env)
	sch := storage.MustSchema("t", storage.I64("v"))
	tbl := storage.NewTable(sch, 0)
	rid := tbl.Alloc()
	init := make([]byte, sch.RowSize())
	p.LoadRecord(tbl, rid, 0, init)

	prev := uint64(0)
	for i := 0; i < 50; i++ {
		tx := mkTxn(0, 0)
		tx.Reset()
		p.Begin(tx)
		buf, err := p.ReadForUpdate(tx, tbl, rid)
		if err != nil {
			t.Fatal(err)
		}
		sch.SetInt64(buf, 0, int64(i))
		if err := p.Commit(tx); err != nil {
			t.Fatal(err)
		}
		if tx.ID <= prev {
			t.Fatalf("commit TID not monotone: %d after %d", tx.ID, prev)
		}
		if tx.ID>>32 < tx.Epoch {
			t.Fatalf("TID epoch bits %d below epoch %d", tx.ID>>32, tx.Epoch)
		}
		prev = tx.ID
	}
	// Epoch advance lifts the TID range.
	env.Epoch.Advance()
	tx := mkTxn(0, 0)
	tx.Reset()
	p.Begin(tx)
	buf, _ := p.ReadForUpdate(tx, tbl, rid)
	sch.SetInt64(buf, 0, 999)
	if err := p.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if tx.ID>>32 != env.Epoch.Now() {
		t.Fatalf("TID not in new epoch: %d", tx.ID>>32)
	}
}

func TestSiloValidationAbortsStaleRead(t *testing.T) {
	env := NewEnv(2)
	p := newSilo(env)
	sch := storage.MustSchema("t", storage.I64("v"))
	tbl := storage.NewTable(sch, 0)
	rid := tbl.Alloc()
	init := make([]byte, sch.RowSize())
	p.LoadRecord(tbl, rid, 0, init)
	rid2 := tbl.Alloc()
	p.LoadRecord(tbl, rid2, 1, init)

	reader := mkTxn(0, 0)
	reader.Reset()
	p.Begin(reader)
	if _, err := p.Read(reader, tbl, rid); err != nil {
		t.Fatal(err)
	}
	// Make the read-only reader also a writer of another record so commit
	// exercises the full path.
	if _, err := p.ReadForUpdate(reader, tbl, rid2); err != nil {
		t.Fatal(err)
	}

	// Concurrent writer commits a new version of rid.
	writer := mkTxn(1, 0)
	writer.Reset()
	p.Begin(writer)
	buf, err := p.ReadForUpdate(writer, tbl, rid)
	if err != nil {
		t.Fatal(err)
	}
	sch.SetInt64(buf, 0, 42)
	if err := p.Commit(writer); err != nil {
		t.Fatal(err)
	}

	// Reader's validation must now fail.
	if err := p.Commit(reader); !errors.Is(err, txn.ErrConflict) {
		t.Fatalf("stale read passed validation: %v", err)
	}
}

func TestTicTocExtensionCommitsReadOnly(t *testing.T) {
	// TicToc's hallmark: a reader that overlapped a writer can still commit
	// by computing a timestamp below the writer's, provided its read
	// versions were not overwritten before validation.
	env := NewEnv(2)
	p := newTicToc(env)
	sch := storage.MustSchema("t", storage.I64("v"))
	tbl := storage.NewTable(sch, 0)
	ridA, ridB := tbl.Alloc(), tbl.Alloc()
	sch.SetInt64(tbl.Row(ridA), 0, 1)
	sch.SetInt64(tbl.Row(ridB), 0, 2)

	reader := mkTxn(0, 0)
	reader.Reset()
	p.Begin(reader)
	if _, err := p.Read(reader, tbl, ridA); err != nil {
		t.Fatal(err)
	}

	// Writer commits to a DIFFERENT record; reader then reads it and can
	// still commit (its timestamp straddles both versions).
	writer := mkTxn(1, 0)
	writer.Reset()
	p.Begin(writer)
	buf, err := p.ReadForUpdate(writer, tbl, ridB)
	if err != nil {
		t.Fatal(err)
	}
	sch.SetInt64(buf, 0, 20)
	if err := p.Commit(writer); err != nil {
		t.Fatal(err)
	}

	if _, err := p.Read(reader, tbl, ridB); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(reader); err != nil {
		t.Fatalf("TicToc reader should commit via extension: %v", err)
	}
	if reader.ID < writer.ID {
		// Reader serialized before writer is also acceptable; either way
		// it must have committed. Nothing to assert beyond success.
		_ = reader.ID
	}
}

func TestTicTocWriteWriteConflictAborts(t *testing.T) {
	env := NewEnv(2)
	p := newTicToc(env)
	sch := storage.MustSchema("t", storage.I64("v"))
	tbl := storage.NewTable(sch, 0)
	rid := tbl.Alloc()

	t1, t2 := mkTxn(0, 0), mkTxn(1, 0)
	t1.Reset()
	t2.Reset()
	p.Begin(t1)
	p.Begin(t2)
	if _, err := p.ReadForUpdate(t1, tbl, rid); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ReadForUpdate(t2, tbl, rid); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(t1); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(t2); !errors.Is(err, txn.ErrConflict) {
		t.Fatalf("second writer must abort: %v", err)
	}
	p.Abort(t2)
}

func TestTOOrderingRules(t *testing.T) {
	env := NewEnv(2)
	p := newTO(env)
	sch := storage.MustSchema("t", storage.I64("v"))
	tbl := storage.NewTable(sch, 0)
	rid := tbl.Alloc()

	// Newer reader bumps rts; an older writer must then abort.
	newer := mkTxn(0, 0)
	newer.Reset()
	p.Begin(newer)
	older := mkTxn(1, 0)
	older.Reset()
	p.Begin(older) // drawn later => larger ts; swap roles below

	// env.TS is monotonic: 'newer' got ts1 < ts2 of 'older'. Use the larger
	// one as the reader.
	reader, writer := older, newer // reader.ts > writer.ts
	if _, err := p.Read(reader, tbl, rid); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ReadForUpdate(writer, tbl, rid); !errors.Is(err, txn.ErrConflict) {
		t.Fatalf("write below rts must abort: %v", err)
	}
	p.Abort(writer)
	if err := p.Commit(reader); err != nil {
		t.Fatal(err)
	}
}

func TestTODirtyReadAborts(t *testing.T) {
	env := NewEnv(2)
	p := newTO(env)
	sch := storage.MustSchema("t", storage.I64("v"))
	tbl := storage.NewTable(sch, 0)
	rid := tbl.Alloc()

	w := mkTxn(0, 0)
	w.Reset()
	p.Begin(w)
	if _, err := p.ReadForUpdate(w, tbl, rid); err != nil {
		t.Fatal(err)
	}
	// A later reader hits the dirty pre-write and aborts.
	r := mkTxn(1, 0)
	r.Reset()
	p.Begin(r)
	if _, err := p.Read(r, tbl, rid); !errors.Is(err, txn.ErrConflict) {
		t.Fatalf("dirty read must abort: %v", err)
	}
	p.Abort(r)
	if err := p.Commit(w); err != nil {
		t.Fatal(err)
	}
}

func TestHStoreSinglePartitionNoInterference(t *testing.T) {
	env := NewEnv(2)
	env.NumPartitions = 4
	p := newHStore(env)
	sch := storage.MustSchema("t", storage.I64("v"))
	tbl := storage.NewTable(sch, 0)
	// Keys 0 and 1 land in partitions 0 and 1.
	rid0, rid1 := tbl.Alloc(), tbl.Alloc()
	p.LoadRecord(tbl, rid0, 0, tbl.Row(rid0))
	p.LoadRecord(tbl, rid1, 1, tbl.Row(rid1))

	t1, t2 := mkTxn(0, 0), mkTxn(1, 0)
	t1.Reset()
	t2.Reset()
	p.Begin(t1)
	p.Begin(t2)
	if err := p.DeclarePartitions(t1, []int{0}); err != nil {
		t.Fatal(err)
	}
	if err := p.DeclarePartitions(t2, []int{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ReadForUpdate(t1, tbl, rid0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ReadForUpdate(t2, tbl, rid1); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(t1); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(t2); err != nil {
		t.Fatal(err)
	}
}

func TestHStoreLazyOutOfOrderAborts(t *testing.T) {
	env := NewEnv(2)
	env.NumPartitions = 4
	p := newHStore(env)
	sch := storage.MustSchema("t", storage.I64("v"))
	tbl := storage.NewTable(sch, 0)
	// partition 2 and 1.
	ridHi, ridLo := tbl.Alloc(), tbl.Alloc()
	p.LoadRecord(tbl, ridHi, 2, tbl.Row(ridHi))
	p.LoadRecord(tbl, ridLo, 1, tbl.Row(ridLo))

	// T2 holds partition 1.
	t2 := mkTxn(1, 0)
	t2.Reset()
	p.Begin(t2)
	if err := p.DeclarePartitions(t2, []int{1}); err != nil {
		t.Fatal(err)
	}

	// T1 grabs partition 2, then lazily needs partition 1 (out of order):
	// must try-lock and abort because T2 holds it.
	t1 := mkTxn(0, 0)
	t1.Reset()
	p.Begin(t1)
	if _, err := p.Read(t1, tbl, ridHi); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Read(t1, tbl, ridLo); !errors.Is(err, txn.ErrConflict) {
		t.Fatalf("out-of-order busy partition must conflict: %v", err)
	}
	p.Abort(t1)
	if err := p.Commit(t2); err != nil {
		t.Fatal(err)
	}
}

func TestMetaTableGrowth(t *testing.T) {
	mt := newMetaTable[uint64]()
	big := storage.RecordID(metaChunkSize*3 + 5)
	*mt.get(big) = 42
	if *mt.get(big) != 42 {
		t.Fatal("value lost after growth")
	}
	if *mt.get(0) != 0 {
		t.Fatal("other slots not zero")
	}
	// Concurrent growth.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				rid := storage.RecordID(w*metaChunkSize + i*17)
				*mt.get(rid) = uint64(rid)
			}
		}(w)
	}
	wg.Wait()
}

func TestActiveTable(t *testing.T) {
	at := NewActiveTable(3)
	if at.Min() != ^uint64(0) {
		t.Fatal("empty table min should be max")
	}
	at.Enter(0, 100)
	at.Enter(1, 50)
	if at.Min() != 50 {
		t.Fatalf("min %d", at.Min())
	}
	at.Leave(1)
	if at.Min() != 100 {
		t.Fatalf("min after leave %d", at.Min())
	}
	// Out-of-range thread ids are ignored, not panics.
	at.Enter(99, 1)
	at.Leave(99)
}

func TestSortWriteIndices(t *testing.T) {
	s := storage.MustSchema("t", storage.I64("v"))
	tblA := storage.NewTable(s, 1)
	tblB := storage.NewTable(s, 0)
	tx := mkTxn(0, 1)
	tx.Accesses = append(tx.Accesses,
		txn.Access{Table: tblA, RID: 5, Kind: txn.KindWrite},
		txn.Access{Table: tblB, RID: 9, Kind: txn.KindWrite},
		txn.Access{Table: tblA, RID: 2, Kind: txn.KindRead}, // excluded
		txn.Access{Table: tblA, RID: 1, Kind: txn.KindDelete},
	)
	got := sortWriteIndices(tx)
	if len(got) != 3 {
		t.Fatalf("want 3 writes, got %d", len(got))
	}
	// Order: tblB(id0) rid9, tblA(id1) rid1, tblA rid5.
	want := []int{1, 3, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

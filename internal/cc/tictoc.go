package cc

import (
	"runtime"
	"sync"

	"next700/internal/storage"
	"next700/internal/txn"
)

// ttMeta is TicToc's per-record state: the write timestamp of the installed
// version, the read timestamp up to which that version is known valid, and
// a commit-phase write lock.
type ttMeta struct {
	mu       sync.Mutex
	wts, rts uint64
	lockedBy uint64 // priority of the committing writer; 0 = free
}

// ticTocSpinLimit bounds commit-lock spinning before aborting.
const ticTocSpinLimit = 256

// ticToc implements TicToc (Yu et al., SIGMOD'16): each access records the
// version interval [wts, rts] it observed; at commit, a transaction
// timestamp is *computed* from those intervals rather than allocated
// centrally, and read validity is extended lazily ("timestamp extension").
// This removes the central allocator bottleneck and commits many schedules
// 2PL and T/O reject.
type ticToc struct {
	env  *Env
	meta tableMetas[ttMeta]
}

func newTicToc(env *Env) *ticToc {
	return &ticToc{env: env}
}

// Name implements Protocol.
func (p *ticToc) Name() string { return "TICTOC" }

// Begin implements Protocol: no timestamp is drawn — that is the point.
func (p *ticToc) Begin(tx *txn.Txn) {
	if tx.Priority == 0 {
		tx.Priority = p.env.TS.Next()
	}
}

// observe copies the record and its [wts, rts] interval. Aborts if the
// record stays commit-locked past the spin budget.
func (p *ticToc) observe(tx *txn.Txn, tbl *storage.Table, rid storage.RecordID, m *ttMeta) ([]byte, uint64, uint64, error) {
	for spin := 0; ; spin++ {
		m.mu.Lock()
		if m.lockedBy != 0 && m.lockedBy != tx.Priority {
			m.mu.Unlock()
			if spin >= ticTocSpinLimit {
				return nil, 0, 0, txn.ErrConflict
			}
			runtime.Gosched()
			continue
		}
		if tbl.IsTombstoned(rid) {
			wts, rts := m.wts, m.rts
			m.mu.Unlock()
			return nil, wts, rts, txn.ErrNotFound
		}
		row := tbl.Row(rid)
		buf := tx.Buf(len(row))
		copy(buf, row)
		wts, rts := m.wts, m.rts
		m.mu.Unlock()
		return buf, wts, rts, nil
	}
}

// Read implements Protocol.
func (p *ticToc) Read(tx *txn.Txn, tbl *storage.Table, rid storage.RecordID) ([]byte, error) {
	m := p.meta.get(tbl, rid)
	buf, wts, rts, err := p.observe(tx, tbl, rid, m)
	if err == txn.ErrNotFound {
		tx.AddAccess(txn.Access{Table: tbl, RID: rid, Kind: txn.KindRead, Obs: wts, Obs2: rts})
		return nil, err
	}
	if err != nil {
		return nil, err
	}
	tx.AddAccess(txn.Access{Table: tbl, RID: rid, Kind: txn.KindRead, Obs: wts, Obs2: rts})
	return buf, nil
}

// ReadForUpdate implements Protocol.
func (p *ticToc) ReadForUpdate(tx *txn.Txn, tbl *storage.Table, rid storage.RecordID) ([]byte, error) {
	m := p.meta.get(tbl, rid)
	buf, wts, rts, err := p.observe(tx, tbl, rid, m)
	if err != nil {
		return nil, err
	}
	tx.AddAccess(txn.Access{Table: tbl, RID: rid, Kind: txn.KindWrite, Data: buf, Obs: wts, Obs2: rts})
	return buf, nil
}

// RegisterInsert implements Protocol: commit-lock the fresh record so
// readers chasing the index entry spin/abort until the outcome.
func (p *ticToc) RegisterInsert(tx *txn.Txn, tbl *storage.Table, rid storage.RecordID, key uint64, data []byte) error {
	m := p.meta.get(tbl, rid)
	m.mu.Lock()
	m.lockedBy = tx.Priority
	m.mu.Unlock()
	tx.AddAccess(txn.Access{Table: tbl, RID: rid, Kind: txn.KindInsert, Key: key, Data: data})
	return nil
}

// RegisterDelete implements Protocol.
func (p *ticToc) RegisterDelete(tx *txn.Txn, tbl *storage.Table, rid storage.RecordID, key uint64) error {
	m := p.meta.get(tbl, rid)
	_, wts, rts, err := p.observe(tx, tbl, rid, m)
	if err != nil {
		return err
	}
	tx.AddAccess(txn.Access{Table: tbl, RID: rid, Kind: txn.KindDelete, Key: key, Obs: wts, Obs2: rts})
	return nil
}

// lockForCommit takes the record's commit lock, failing if the version
// moved past the observation (inserts pass obs=0 and skip that check via
// ownLock).
func (p *ticToc) lockForCommit(tx *txn.Txn, m *ttMeta, a *txn.Access) bool {
	for spin := 0; ; spin++ {
		m.mu.Lock()
		if m.lockedBy == tx.Priority {
			m.mu.Unlock()
			return true // insert-time lock
		}
		if m.lockedBy == 0 {
			if a.Kind != txn.KindInsert && m.wts != a.Obs {
				m.mu.Unlock()
				return false
			}
			m.lockedBy = tx.Priority
			// Refresh the write entry's rts so the commit timestamp
			// computation sees the latest extension.
			a.Obs2 = m.rts
			m.mu.Unlock()
			return true
		}
		m.mu.Unlock()
		if spin >= ticTocSpinLimit {
			return false
		}
		runtime.Gosched()
	}
}

// Commit implements Protocol: lock writes, compute the commit timestamp,
// validate/extend reads, install.
//
// Allocation budget: zero. Installation writes the after-image in place
// under the record lock (readers revalidate by timestamp, so no committed
// copy is needed, unlike SILO), and sortWriteIndices reuses the Txn's
// index scratch. The alloc gate (bench/alloc_test.go) pins this at 0.
func (p *ticToc) Commit(tx *txn.Txn) error {
	writes := sortWriteIndices(tx)

	// Phase 1: lock write set in canonical order.
	locked := 0
	for _, wi := range writes {
		a := &tx.Accesses[wi]
		m := p.meta.get(a.Table, a.RID)
		if !p.lockForCommit(tx, m, a) {
			p.unlockWrites(tx, writes, locked)
			return txn.ErrConflict
		}
		locked++
	}

	// Phase 2: compute commit_ts = max(write rts + 1, read wts).
	commitTS := uint64(0)
	for i := range tx.Accesses {
		a := &tx.Accesses[i]
		if a.Kind == txn.KindRead {
			if a.Obs > commitTS {
				commitTS = a.Obs
			}
		} else {
			if a.Obs2+1 > commitTS {
				commitTS = a.Obs2 + 1
			}
		}
	}

	// Phase 3: validate reads, extending rts where possible.
	for i := range tx.Accesses {
		a := &tx.Accesses[i]
		if a.Kind != txn.KindRead || a.Obs2 >= commitTS {
			continue // version already valid through commitTS
		}
		m := p.meta.get(a.Table, a.RID)
		m.mu.Lock()
		if m.wts != a.Obs {
			m.mu.Unlock()
			p.unlockWrites(tx, writes, locked)
			return txn.ErrConflict
		}
		if m.lockedBy != 0 && m.lockedBy != tx.Priority && m.rts < commitTS {
			// Someone is installing a new version and we cannot extend
			// past their lock.
			m.mu.Unlock()
			p.unlockWrites(tx, writes, locked)
			return txn.ErrConflict
		}
		if m.rts < commitTS {
			m.rts = commitTS // timestamp extension
		}
		m.mu.Unlock()
	}

	// Phase 4: install writes at commitTS.
	for _, wi := range writes {
		a := &tx.Accesses[wi]
		m := p.meta.get(a.Table, a.RID)
		m.mu.Lock()
		applyWrite(a)
		m.wts, m.rts = commitTS, commitTS
		m.lockedBy = 0
		m.mu.Unlock()
	}
	tx.ID = commitTS
	return nil
}

func (p *ticToc) unlockWrites(tx *txn.Txn, writes []int, n int) {
	for k := 0; k < n; k++ {
		a := &tx.Accesses[writes[k]]
		m := p.meta.get(a.Table, a.RID)
		m.mu.Lock()
		if m.lockedBy == tx.Priority {
			m.lockedBy = 0
		}
		m.mu.Unlock()
	}
}

// Abort implements Protocol: release insert-time locks.
func (p *ticToc) Abort(tx *txn.Txn) {
	for i := range tx.Accesses {
		a := &tx.Accesses[i]
		if a.Kind != txn.KindInsert {
			continue
		}
		m := p.meta.get(a.Table, a.RID)
		m.mu.Lock()
		if m.lockedBy == tx.Priority {
			m.lockedBy = 0
		}
		m.mu.Unlock()
	}
}

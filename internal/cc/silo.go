package cc

import (
	"runtime"
	"sync/atomic"

	"next700/internal/storage"
	"next700/internal/txn"
)

// siloMeta is the per-record state: the TID word (bit 0 is the commit lock,
// upper 63 bits the TID of the last writer) and a pointer to the immutable
// committed row image. Readers load the pointer between two word loads —
// the Go-memory-model-clean equivalent of Silo's seqlock read: because
// writers hold the lock bit across the data-pointer store, two equal
// unlocked word loads bracket an unchanged pointer.
//
// A nil data pointer means the record is absent (never inserted, or
// deleted).
type siloMeta struct {
	word atomic.Uint64
	data atomic.Pointer[[]byte]
}

const siloLockBit = uint64(1)

// siloSpinLimit bounds how long a reader spins on a locked TID word before
// aborting. Writers hold the lock only across the short install phase, so a
// small budget suffices; aborting under heavy contention is part of OCC's
// characteristic profile.
const siloSpinLimit = 256

// silo is Silo-style optimistic concurrency control (Tu et al., SOSP'13):
// invisible reads via TID-word versioning, write locks taken only at commit
// in canonical order, read-set validation, and epoch-based commit TIDs so
// the common case touches no shared counters at all.
//
// Committed row images live behind per-record atomic pointers rather than
// in the table arena, trading one allocation per committed write for reads
// that are free of both latches and torn-read retries.
type silo struct {
	env     *Env
	meta    tableMetas[siloMeta]
	lastTID []atomic.Uint64 // per-thread last commit TID
}

func newSilo(env *Env) *silo {
	return &silo{env: env, lastTID: make([]atomic.Uint64, env.NumThreads)}
}

// Name implements Protocol.
func (p *silo) Name() string { return "SILO" }

// Begin implements Protocol: record the epoch; no shared state is touched.
func (p *silo) Begin(tx *txn.Txn) {
	if tx.Priority == 0 {
		tx.Priority = p.env.TS.Next()
	}
	tx.Epoch = p.env.Epoch.Now()
}

// LoadRecord implements Loader: seed the committed image.
func (p *silo) LoadRecord(tbl *storage.Table, rid storage.RecordID, key uint64, data []byte) {
	m := p.meta.get(tbl, rid)
	cp := make([]byte, len(data))
	copy(cp, data)
	m.data.Store(&cp)
}

// stableRead returns the committed row image and the TID word it belongs
// to. Aborts (ErrConflict) if the word stays locked past the spin budget;
// returns ErrNotFound (with a valid observation) for absent records.
func (p *silo) stableRead(m *siloMeta) ([]byte, uint64, error) {
	for spin := 0; ; spin++ {
		v1 := m.word.Load()
		if v1&siloLockBit != 0 {
			if spin >= siloSpinLimit {
				return nil, 0, txn.ErrConflict
			}
			runtime.Gosched()
			continue
		}
		ptr := m.data.Load()
		if m.word.Load() != v1 {
			continue
		}
		if ptr == nil {
			return nil, v1, txn.ErrNotFound
		}
		return *ptr, v1, nil
	}
}

// Read implements Protocol.
func (p *silo) Read(tx *txn.Txn, tbl *storage.Table, rid storage.RecordID) ([]byte, error) {
	m := p.meta.get(tbl, rid)
	buf, obs, err := p.stableRead(m)
	if err != nil && err != txn.ErrNotFound {
		return nil, err
	}
	// Record the observation even for absent records: committing against a
	// record that (re)appears must fail validation.
	tx.AddAccess(txn.Access{Table: tbl, RID: rid, Kind: txn.KindRead, Obs: obs})
	return buf, err
}

// ReadForUpdate implements Protocol: an invisible read that seeds the
// after-image; the record is locked only at commit.
func (p *silo) ReadForUpdate(tx *txn.Txn, tbl *storage.Table, rid storage.RecordID) ([]byte, error) {
	m := p.meta.get(tbl, rid)
	cur, obs, err := p.stableRead(m)
	if err != nil {
		return nil, err
	}
	buf := tx.Buf(len(cur))
	copy(buf, cur)
	tx.AddAccess(txn.Access{Table: tbl, RID: rid, Kind: txn.KindWrite, Data: buf, Obs: obs})
	return buf, nil
}

// ownInsertFlag marks accesses whose record lock was taken at insert time.
const ownInsertFlag = 1

// RegisterInsert implements Protocol: lock the fresh record's TID word so
// concurrent readers spin/abort until the outcome.
func (p *silo) RegisterInsert(tx *txn.Txn, tbl *storage.Table, rid storage.RecordID, key uint64, data []byte) error {
	m := p.meta.get(tbl, rid)
	if !m.word.CompareAndSwap(0, siloLockBit) {
		// Only possible if record slots were reused, which they are not.
		return txn.ErrConflict
	}
	tx.AddAccess(txn.Access{Table: tbl, RID: rid, Kind: txn.KindInsert, Key: key, Data: data, Obs2: ownInsertFlag})
	return nil
}

// RegisterDelete implements Protocol: a delete is a write whose install
// clears the data pointer.
func (p *silo) RegisterDelete(tx *txn.Txn, tbl *storage.Table, rid storage.RecordID, key uint64) error {
	m := p.meta.get(tbl, rid)
	_, obs, err := p.stableRead(m)
	if err != nil {
		return err
	}
	tx.AddAccess(txn.Access{Table: tbl, RID: rid, Kind: txn.KindDelete, Key: key, Obs: obs})
	return nil
}

// lockWord spin-locks a TID word, verifying the version did not move past
// the observation (early validation, cuts wasted installs).
func (p *silo) lockWord(m *siloMeta, obs uint64) bool {
	for spin := 0; ; spin++ {
		v := m.word.Load()
		if v&siloLockBit == 0 {
			if v != obs {
				return false
			}
			if m.word.CompareAndSwap(v, v|siloLockBit) {
				return true
			}
			continue
		}
		if spin >= siloSpinLimit {
			return false
		}
		runtime.Gosched()
	}
}

// Commit implements Protocol: Silo's three-phase commit.
func (p *silo) Commit(tx *txn.Txn) error {
	writes := sortWriteIndices(tx)

	// Phase 1: lock the write set in canonical order.
	locked := 0
	for _, wi := range writes {
		a := &tx.Accesses[wi]
		if a.Obs2 == ownInsertFlag {
			locked++ // locked since RegisterInsert
			continue
		}
		m := p.meta.get(a.Table, a.RID)
		if !p.lockWord(m, a.Obs) {
			p.unlockWrites(tx, writes, locked)
			return txn.ErrConflict
		}
		locked++
	}

	// Phase 2: validate the read set against current words.
	for i := range tx.Accesses {
		a := &tx.Accesses[i]
		if a.Kind != txn.KindRead {
			continue
		}
		m := p.meta.get(a.Table, a.RID)
		cur := m.word.Load()
		if cur&siloLockBit != 0 {
			// Locked by us (also in write set) is fine; anyone else fails.
			if tx.FindWrite(a.Table, a.RID) == nil {
				p.unlockWrites(tx, writes, locked)
				return txn.ErrConflict
			}
			cur &^= siloLockBit
		}
		if cur != a.Obs {
			p.unlockWrites(tx, writes, locked)
			return txn.ErrConflict
		}
	}

	if len(writes) == 0 {
		return nil // read-only: validated, done
	}

	// Phase 3: compute the commit TID and install. The data pointer is
	// stored while the word still carries the lock bit; the final word
	// store releases.
	tid := p.commitTID(tx)
	word := tid << 1
	for _, wi := range writes {
		a := &tx.Accesses[wi]
		m := p.meta.get(a.Table, a.RID)
		switch a.Kind {
		case txn.KindDelete:
			m.data.Store(nil)
			a.Table.SetTombstone(a.RID, true)
		default:
			// Allocation budget: this copy is SILO's only steady-state heap
			// traffic — 2 allocations per written record (the image bytes and
			// the slice header escaping into the atomic.Pointer). It is load-
			// bearing: readers hold the previous image lock-free, so the
			// committed image must be freshly owned, never a view of the
			// transaction's arena. The alloc gate (bench/alloc_test.go) pins
			// this budget at exactly 2/write.
			cp := make([]byte, len(a.Data)) //next700:allowalloc(the documented per-write publish copy, pinned by the alloc-gate budget)
			copy(cp, a.Data)
			m.data.Store(&cp)
			if a.Kind == txn.KindInsert {
				a.Table.SetTombstone(a.RID, false)
			}
		}
		m.word.Store(word) // install + unlock in one store
	}
	tx.ID = tid
	return nil
}

// commitTID returns a TID greater than every observed TID, greater than
// this thread's previous commit TID, and within the transaction's epoch.
func (p *silo) commitTID(tx *txn.Txn) uint64 {
	tid := uint64(0)
	for i := range tx.Accesses {
		if obs := tx.Accesses[i].Obs >> 1; obs > tid {
			tid = obs
		}
	}
	if last := p.lastTID[tx.ThreadID].Load(); last > tid {
		tid = last
	}
	tid++
	if min := tx.Epoch << 32; tid < min {
		tid = min | 1
	}
	p.lastTID[tx.ThreadID].Store(tid)
	return tid
}

// unlockWrites releases the first n locked write-set entries, restoring
// their observed words (or the cleared insert word).
func (p *silo) unlockWrites(tx *txn.Txn, writes []int, n int) {
	for k := 0; k < n; k++ {
		a := &tx.Accesses[writes[k]]
		m := p.meta.get(a.Table, a.RID)
		if a.Obs2 == ownInsertFlag {
			m.word.Store(0)
		} else {
			m.word.Store(a.Obs)
		}
	}
}

// Abort implements Protocol: only insert-time locks are held outside
// commit.
func (p *silo) Abort(tx *txn.Txn) {
	for i := range tx.Accesses {
		a := &tx.Accesses[i]
		if a.Kind == txn.KindInsert && a.Obs2 == ownInsertFlag {
			m := p.meta.get(a.Table, a.RID)
			m.word.Store(0)
		}
	}
}

package cc

import (
	"sync"

	"next700/internal/storage"
	"next700/internal/txn"
)

// toMeta is the per-record state of basic timestamp ordering: the largest
// read and write timestamps that touched the record, plus a pre-write
// ("dirty") marker set between write access and commit.
type toMeta struct {
	mu    sync.Mutex
	wts   uint64
	rts   uint64
	dirty uint64 // timestamp of the transaction holding a pre-write; 0 = none
}

// timestampOrdering implements basic T/O (the abort-on-violation variant:
// readers and writers that arrive "too late" in timestamp order abort, and
// readers abort rather than wait on dirty pre-writes). Its profile —
// correct, simple, abort-heavy under contention, bottlenecked on the
// central allocator at scale — is exactly the one the design-space
// experiments chart.
type timestampOrdering struct {
	env  *Env
	meta tableMetas[toMeta]
}

func newTO(env *Env) *timestampOrdering {
	return &timestampOrdering{env: env}
}

// Name implements Protocol.
func (p *timestampOrdering) Name() string { return "TIMESTAMP" }

// Begin implements Protocol: draw the serialization timestamp up front.
func (p *timestampOrdering) Begin(tx *txn.Txn) {
	tx.ID = p.env.TS.Next()
	if tx.Priority == 0 {
		tx.Priority = tx.ID
	}
}

// Read implements Protocol.
func (p *timestampOrdering) Read(tx *txn.Txn, tbl *storage.Table, rid storage.RecordID) ([]byte, error) {
	m := p.meta.get(tbl, rid)
	m.mu.Lock()
	if m.dirty != 0 && m.dirty != tx.ID {
		m.mu.Unlock()
		return nil, txn.ErrConflict
	}
	if tx.ID < m.wts {
		// A younger write already committed; this read arrived too late.
		m.mu.Unlock()
		return nil, txn.ErrConflict
	}
	if tx.ID > m.rts {
		m.rts = tx.ID
	}
	if tbl.IsTombstoned(rid) {
		m.mu.Unlock()
		return nil, txn.ErrNotFound
	}
	row := tbl.Row(rid)
	buf := tx.Buf(len(row))
	copy(buf, row)
	m.mu.Unlock()
	tx.AddAccess(txn.Access{Table: tbl, RID: rid, Kind: txn.KindRead})
	return buf, nil
}

// preWrite validates timestamp order and takes the dirty marker.
func (p *timestampOrdering) preWrite(tx *txn.Txn, m *toMeta) error {
	if m.dirty != 0 && m.dirty != tx.ID {
		return txn.ErrConflict
	}
	if tx.ID < m.rts || tx.ID < m.wts {
		return txn.ErrConflict
	}
	m.dirty = tx.ID
	return nil
}

// ReadForUpdate implements Protocol.
func (p *timestampOrdering) ReadForUpdate(tx *txn.Txn, tbl *storage.Table, rid storage.RecordID) ([]byte, error) {
	m := p.meta.get(tbl, rid)
	m.mu.Lock()
	if err := p.preWrite(tx, m); err != nil {
		m.mu.Unlock()
		return nil, err
	}
	if tbl.IsTombstoned(rid) {
		m.mu.Unlock()
		return nil, txn.ErrNotFound
	}
	row := tbl.Row(rid)
	buf := tx.Buf(len(row))
	copy(buf, row)
	m.mu.Unlock()
	tx.AddAccess(txn.Access{Table: tbl, RID: rid, Kind: txn.KindWrite, Data: buf})
	return buf, nil
}

// RegisterInsert implements Protocol: the dirty marker keeps the record
// invisible until commit.
func (p *timestampOrdering) RegisterInsert(tx *txn.Txn, tbl *storage.Table, rid storage.RecordID, key uint64, data []byte) error {
	m := p.meta.get(tbl, rid)
	m.mu.Lock()
	err := p.preWrite(tx, m)
	m.mu.Unlock()
	if err != nil {
		return err
	}
	tx.AddAccess(txn.Access{Table: tbl, RID: rid, Kind: txn.KindInsert, Key: key, Data: data})
	return nil
}

// RegisterDelete implements Protocol.
func (p *timestampOrdering) RegisterDelete(tx *txn.Txn, tbl *storage.Table, rid storage.RecordID, key uint64) error {
	m := p.meta.get(tbl, rid)
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := p.preWrite(tx, m); err != nil {
		return err
	}
	if tbl.IsTombstoned(rid) {
		m.dirty = 0
		return txn.ErrNotFound
	}
	tx.AddAccess(txn.Access{Table: tbl, RID: rid, Kind: txn.KindDelete, Key: key})
	return nil
}

// Commit implements Protocol: install pre-writes and stamp wts.
//
// Allocation budget: zero steady-state — pre-write slots were reserved at
// ReadForUpdate time and images install in place; per-record toMeta nodes
// allocate once on first touch only. Pinned by bench/alloc_test.go.
func (p *timestampOrdering) Commit(tx *txn.Txn) error {
	for i := range tx.Accesses {
		a := &tx.Accesses[i]
		if a.Kind == txn.KindRead {
			continue
		}
		m := p.meta.get(a.Table, a.RID)
		m.mu.Lock()
		applyWrite(a)
		if tx.ID > m.wts {
			m.wts = tx.ID
		}
		if m.dirty == tx.ID {
			m.dirty = 0
		}
		m.mu.Unlock()
	}
	return nil
}

// Abort implements Protocol: drop pre-write markers.
func (p *timestampOrdering) Abort(tx *txn.Txn) {
	for i := range tx.Accesses {
		a := &tx.Accesses[i]
		if a.Kind == txn.KindRead {
			continue
		}
		m := p.meta.get(a.Table, a.RID)
		m.mu.Lock()
		if m.dirty == tx.ID {
			m.dirty = 0
		}
		m.mu.Unlock()
	}
}

package cc

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"next700/internal/storage"
	"next700/internal/txn"
)

// hstoreState is the per-transaction scratch: which partition locks are
// held, sorted ascending, plus a reusable staging slice for
// DeclarePartitions so steady-state declaration allocates nothing.
type hstoreState struct {
	held []int
	decl []int
}

func (s *hstoreState) holds(p int) bool {
	for _, h := range s.held {
		if h == p {
			return true
		}
	}
	return false
}

// hstore implements H-Store-style partition-level concurrency control
// (Stonebraker et al., VLDB'07): the database is split into partitions,
// each logically owned by one execution site; a transaction locks every
// partition it touches for its whole duration and then runs without any
// record-level coordination at all. Single-partition transactions are
// nearly free; multi-partition transactions serialize whole partitions,
// which is the cliff experiment E10 charts.
type hstore struct {
	env   *Env
	locks []sync.Mutex
	// partOf tags each record with its partition, set by LoadRecord and
	// RegisterInsert. Value is partition+1 so zero means "untagged".
	partOf tableMetas[int32]
}

func newHStore(env *Env) *hstore {
	n := env.NumPartitions
	if n < 1 {
		n = 1
	}
	return &hstore{env: env, locks: make([]sync.Mutex, n)}
}

// Name implements Protocol.
func (p *hstore) Name() string { return "HSTORE" }

// Begin implements Protocol.
func (p *hstore) Begin(tx *txn.Txn) {
	if tx.Priority == 0 {
		tx.Priority = p.env.TS.Next()
	}
	st, _ := tx.Scratch.(*hstoreState)
	if st == nil {
		st = &hstoreState{}
		tx.Scratch = st
	}
	st.held = st.held[:0]
}

// DeclarePartitions implements PartitionAware: blocking acquisition in
// ascending order is deadlock-free.
func (p *hstore) DeclarePartitions(tx *txn.Txn, parts []int) error {
	st := tx.Scratch.(*hstoreState)
	sorted := append(st.decl[:0], parts...)
	sort.Ints(sorted)
	st.decl = sorted
	prev := -1
	for _, part := range sorted {
		if part == prev {
			continue
		}
		prev = part
		if part < 0 || part >= len(p.locks) {
			return txn.ErrConflict
		}
		if st.holds(part) {
			continue
		}
		if err := p.acquireOrdered(tx, st, part); err != nil {
			return err
		}
	}
	return nil
}

// acquireOrdered takes a partition lock. If the partition id is above every
// held lock the acquisition blocks (safe); otherwise it must try-lock to
// stay deadlock-free and the transaction aborts on failure. A transaction
// with a deadline never parks on the mutex: it polls with backoff so a
// stalled partition owner cannot strand it past its budget.
func (p *hstore) acquireOrdered(tx *txn.Txn, st *hstoreState, part int) error {
	if len(st.held) == 0 || part > st.held[len(st.held)-1] {
		if dl := tx.Deadline; dl != 0 {
			if err := lockWithDeadline(&p.locks[part], dl); err != nil {
				return err
			}
		} else {
			// Transaction-duration partition lock, released by release():
			// deadline-free transactions block behind the owner by design
			// (H-Store's single-owner partition model).
			p.locks[part].Lock() //next700:allowwait(deadline-free transactions opt out; ascending partition order keeps this deadlock-free and release() frees it at txn end)
		}
	} else if !p.locks[part].TryLock() {
		return txn.ErrConflict
	}
	st.held = append(st.held, part)
	sort.Ints(st.held)
	return nil
}

// lockWithDeadline acquires mu or gives up at the absolute deadline (Unix
// nanoseconds). Contended acquisition spins with escalating sleeps — the
// partition lock is mutex-based with no waiter queue to time out of, and
// polling at ≤100µs granularity bounds both the overshoot and the wasted
// spin.
//next700:allowalloc(contended path only: the TryLock fast path costs nothing; polling while blocked needs the clock)
func lockWithDeadline(mu *sync.Mutex, deadline int64) error {
	backoff := time.Microsecond
	for !mu.TryLock() {
		if time.Now().UnixNano() >= deadline {
			return txn.ErrDeadlineExceeded
		}
		runtime.Gosched()
		time.Sleep(backoff)
		if backoff < 100*time.Microsecond {
			backoff *= 2
		}
	}
	return nil
}

// LoadRecord implements the engine's bulk-load hook: tag the record's
// partition.
func (p *hstore) LoadRecord(tbl *storage.Table, rid storage.RecordID, key uint64, data []byte) {
	*p.partOf.get(tbl, rid) = int32(p.partitionOfKey(tbl, key)) + 1
}

func (p *hstore) partitionOfKey(tbl *storage.Table, key uint64) int {
	if p.env.PartitionOf != nil {
		part := p.env.PartitionOf(tbl, key)
		if part >= 0 && part < len(p.locks) {
			return part
		}
	}
	return int(key % uint64(len(p.locks)))
}

// ensure makes sure the transaction holds the record's partition lock,
// lazily acquiring it (try-lock when out of order) for transactions that
// did not pre-declare.
func (p *hstore) ensure(tx *txn.Txn, tbl *storage.Table, rid storage.RecordID) error {
	tag := *p.partOf.get(tbl, rid)
	part := int(tag) - 1
	if tag == 0 {
		part = int(uint64(rid) % uint64(len(p.locks)))
	}
	st := tx.Scratch.(*hstoreState)
	if st.holds(part) {
		return nil
	}
	if err := p.acquireOrdered(tx, st, part); err != nil {
		if tx.Counter != nil {
			tx.Counter.Waits++
		}
		return err
	}
	return nil
}

// Read implements Protocol: with the partition lock held the row is stable.
func (p *hstore) Read(tx *txn.Txn, tbl *storage.Table, rid storage.RecordID) ([]byte, error) {
	if err := p.ensure(tx, tbl, rid); err != nil {
		return nil, err
	}
	tx.AddAccess(txn.Access{Table: tbl, RID: rid, Kind: txn.KindRead})
	if tbl.IsTombstoned(rid) {
		return nil, txn.ErrNotFound
	}
	return tbl.Row(rid), nil
}

// ReadForUpdate implements Protocol.
func (p *hstore) ReadForUpdate(tx *txn.Txn, tbl *storage.Table, rid storage.RecordID) ([]byte, error) {
	if err := p.ensure(tx, tbl, rid); err != nil {
		return nil, err
	}
	if tbl.IsTombstoned(rid) {
		return nil, txn.ErrNotFound
	}
	row := tbl.Row(rid)
	buf := tx.Buf(len(row))
	copy(buf, row)
	tx.AddAccess(txn.Access{Table: tbl, RID: rid, Kind: txn.KindWrite, Data: buf})
	return buf, nil
}

// RegisterInsert implements Protocol.
func (p *hstore) RegisterInsert(tx *txn.Txn, tbl *storage.Table, rid storage.RecordID, key uint64, data []byte) error {
	*p.partOf.get(tbl, rid) = int32(p.partitionOfKey(tbl, key)) + 1
	if err := p.ensure(tx, tbl, rid); err != nil {
		return err
	}
	tx.AddAccess(txn.Access{Table: tbl, RID: rid, Kind: txn.KindInsert, Key: key, Data: data})
	return nil
}

// RegisterDelete implements Protocol.
func (p *hstore) RegisterDelete(tx *txn.Txn, tbl *storage.Table, rid storage.RecordID, key uint64) error {
	if err := p.ensure(tx, tbl, rid); err != nil {
		return err
	}
	if tbl.IsTombstoned(rid) {
		return txn.ErrNotFound
	}
	tx.AddAccess(txn.Access{Table: tbl, RID: rid, Kind: txn.KindDelete, Key: key})
	return nil
}

// Commit implements Protocol: install writes, release partitions.
func (p *hstore) Commit(tx *txn.Txn) error {
	return p.CommitHooked(tx, nil)
}

// CommitHooked implements HookedCommitter (see twoPL.CommitHooked).
func (p *hstore) CommitHooked(tx *txn.Txn, beforeRelease func()) error {
	for i := range tx.Accesses {
		a := &tx.Accesses[i]
		if a.Kind != txn.KindRead {
			applyWrite(a)
		}
	}
	if beforeRelease != nil {
		beforeRelease()
	}
	p.releaseAll(tx)
	return nil
}

// Abort implements Protocol.
func (p *hstore) Abort(tx *txn.Txn) {
	p.releaseAll(tx)
}

func (p *hstore) releaseAll(tx *txn.Txn) {
	st, _ := tx.Scratch.(*hstoreState)
	if st == nil {
		return
	}
	for _, part := range st.held {
		p.locks[part].Unlock()
	}
	st.held = st.held[:0]
}

package cc

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"next700/internal/stats"
	"next700/internal/storage"
	"next700/internal/txn"
	"next700/internal/xrand"
)

// fixture is a tiny engine stand-in: one table of int64 counters, loaded
// through the protocol's Loader hook when present, plus a retrying
// transaction runner with own-write visibility — the same discipline the
// real engine uses.
type fixture struct {
	p     Protocol
	env   *Env
	tbl   *storage.Table
	sch   *storage.Schema
	nrows int
}

func newFixture(t testing.TB, name string, threads, nrows int) *fixture {
	t.Helper()
	env := NewEnv(threads)
	env.NumPartitions = 4
	p, err := New(name, env)
	if err != nil {
		t.Fatal(err)
	}
	sch := storage.MustSchema("counters", storage.I64("v"))
	tbl := storage.NewTable(sch, 0)
	loader, _ := p.(Loader)
	for i := 0; i < nrows; i++ {
		rid := tbl.Alloc()
		row := tbl.Row(rid)
		sch.SetInt64(row, 0, 0)
		if loader != nil {
			loader.LoadRecord(tbl, rid, uint64(rid), row)
		}
	}
	return &fixture{p: p, env: env, tbl: tbl, sch: sch, nrows: nrows}
}

// read returns the value of row rid with own-write visibility.
func (f *fixture) read(tx *txn.Txn, rid storage.RecordID) (int64, error) {
	if w := tx.FindWrite(f.tbl, rid); w != nil {
		if w.Kind == txn.KindDelete {
			return 0, txn.ErrNotFound
		}
		return f.sch.GetInt64(w.Data, 0), nil
	}
	data, err := f.p.Read(tx, f.tbl, rid)
	if err != nil {
		return 0, err
	}
	return f.sch.GetInt64(data, 0), nil
}

// add increments row rid by delta.
func (f *fixture) add(tx *txn.Txn, rid storage.RecordID, delta int64) error {
	if w := tx.FindWrite(f.tbl, rid); w != nil && w.Kind != txn.KindDelete {
		f.sch.SetInt64(w.Data, 0, f.sch.GetInt64(w.Data, 0)+delta)
		return nil
	}
	buf, err := f.p.ReadForUpdate(tx, f.tbl, rid)
	if err != nil {
		return err
	}
	f.sch.SetInt64(buf, 0, f.sch.GetInt64(buf, 0)+delta)
	return nil
}

// run executes body as a transaction with retry-on-conflict and randomized
// backoff (the same discipline the engine uses; without backoff NO_WAIT
// style protocols livelock under adversarial interleavings).
func (f *fixture) run(tx *txn.Txn, body func(tx *txn.Txn) error) error {
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			runtime.Gosched()
			if attempt > 4 {
				backoff := tx.RNG.Intn(1 << uint(min(attempt, 12)))
				time.Sleep(time.Duration(backoff) * time.Microsecond)
			}
		}
		tx.Reset()
		f.p.Begin(tx)
		err := body(tx)
		if err == nil {
			err = f.p.Commit(tx)
			if err == nil {
				tx.ClearPriority()
				if tx.Counter != nil {
					tx.Counter.Commits++
				}
				return nil
			}
		} else if !errors.Is(err, txn.ErrConflict) {
			f.p.Abort(tx)
			tx.ClearPriority()
			return err
		} else {
			f.p.Abort(tx)
		}
		if tx.Counter != nil {
			tx.Counter.Aborts++
		}
		if attempt > 100000 {
			return fmt.Errorf("%s: livelock after %d attempts", f.p.Name(), attempt)
		}
	}
}

func newTxnFor(thread int) *txn.Txn {
	return txn.NewTxn(thread, xrand.New(uint64(thread+1)), &stats.Counter{})
}

func allProtocols(t *testing.T, f func(t *testing.T, name string)) {
	t.Helper()
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) { f(t, name) })
	}
}

func TestNames(t *testing.T) {
	if len(Names()) != 8 {
		t.Fatalf("expected 8 protocols, got %d", len(Names()))
	}
	for _, n := range Names() {
		p, err := New(n, NewEnv(1))
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != n {
			t.Fatalf("New(%q).Name() = %q", n, p.Name())
		}
	}
	if _, err := New("bogus", NewEnv(1)); err == nil {
		t.Fatal("unknown protocol must error")
	}
}

func TestSingleThreadReadWrite(t *testing.T) {
	allProtocols(t, func(t *testing.T, name string) {
		f := newFixture(t, name, 1, 10)
		tx := newTxnFor(0)
		// Write then read back in a later transaction.
		if err := f.run(tx, func(tx *txn.Txn) error {
			return f.add(tx, 3, 42)
		}); err != nil {
			t.Fatal(err)
		}
		var got int64
		if err := f.run(tx, func(tx *txn.Txn) error {
			v, err := f.read(tx, 3)
			got = v
			return err
		}); err != nil {
			t.Fatal(err)
		}
		if got != 42 {
			t.Fatalf("read %d want 42", got)
		}
	})
}

func TestOwnWriteVisibility(t *testing.T) {
	allProtocols(t, func(t *testing.T, name string) {
		f := newFixture(t, name, 1, 10)
		tx := newTxnFor(0)
		if err := f.run(tx, func(tx *txn.Txn) error {
			if err := f.add(tx, 1, 7); err != nil {
				return err
			}
			v, err := f.read(tx, 1)
			if err != nil {
				return err
			}
			if v != 7 {
				t.Fatalf("own write invisible: %d", v)
			}
			return f.add(tx, 1, 3)
		}); err != nil {
			t.Fatal(err)
		}
		tx2 := newTxnFor(0)
		f.run(tx2, func(tx *txn.Txn) error {
			v, err := f.read(tx, 1)
			if err != nil {
				return err
			}
			if v != 10 {
				t.Fatalf("accumulated write wrong: %d", v)
			}
			return nil
		})
	})
}

func TestAbortRollsBack(t *testing.T) {
	allProtocols(t, func(t *testing.T, name string) {
		f := newFixture(t, name, 1, 10)
		tx := newTxnFor(0)
		err := f.run(tx, func(tx *txn.Txn) error {
			if err := f.add(tx, 5, 99); err != nil {
				return err
			}
			return txn.ErrUserAbort
		})
		if !errors.Is(err, txn.ErrUserAbort) {
			t.Fatalf("got %v", err)
		}
		f.run(tx, func(tx *txn.Txn) error {
			v, err := f.read(tx, 5)
			if err != nil {
				return err
			}
			if v != 0 {
				t.Fatalf("aborted write leaked: %d", v)
			}
			return nil
		})
	})
}

// TestLostUpdate hammers a single counter from many goroutines; the final
// value must equal the number of committed increments for every protocol.
func TestLostUpdate(t *testing.T) {
	allProtocols(t, func(t *testing.T, name string) {
		const workers = 8
		const perWorker = 500
		f := newFixture(t, name, workers, 4)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				tx := newTxnFor(w)
				for i := 0; i < perWorker; i++ {
					if err := f.run(tx, func(tx *txn.Txn) error {
						return f.add(tx, 0, 1)
					}); err != nil {
						t.Error(err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		tx := newTxnFor(0)
		f.run(tx, func(tx *txn.Txn) error {
			v, err := f.read(tx, 0)
			if err != nil {
				return err
			}
			if v != workers*perWorker {
				t.Fatalf("lost updates: %d want %d", v, workers*perWorker)
			}
			return nil
		})
	})
}

// TestBankInvariant runs random transfers between accounts; the total must
// be conserved in every committed state — the classic serializability
// smoke test.
func TestBankInvariant(t *testing.T) {
	allProtocols(t, func(t *testing.T, name string) {
		const workers = 8
		const accounts = 16
		const initial = 1000
		const perWorker = 400
		f := newFixture(t, name, workers, accounts)
		// Fund the accounts.
		tx0 := newTxnFor(0)
		if err := f.run(tx0, func(tx *txn.Txn) error {
			for a := 0; a < accounts; a++ {
				if err := f.add(tx, storage.RecordID(a), initial); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}

		stop := make(chan struct{})
		var transfers sync.WaitGroup
		for w := 0; w < workers-1; w++ {
			transfers.Add(1)
			go func(w int) {
				defer transfers.Done()
				tx := newTxnFor(w)
				rng := xrand.New(uint64(w + 100))
				for i := 0; i < perWorker; i++ {
					from := storage.RecordID(rng.Intn(accounts))
					to := storage.RecordID(rng.Intn(accounts))
					if from == to {
						continue
					}
					amount := int64(rng.Intn(50) + 1)
					if err := f.run(tx, func(tx *txn.Txn) error {
						if err := f.add(tx, from, -amount); err != nil {
							return err
						}
						return f.add(tx, to, amount)
					}); err != nil {
						t.Error(err)
						return
					}
				}
			}(w)
		}
		// Auditor thread: every committed snapshot must conserve the total.
		var auditor sync.WaitGroup
		auditor.Add(1)
		go func() {
			defer auditor.Done()
			tx := newTxnFor(workers - 1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				var total int64
				if err := f.run(tx, func(tx *txn.Txn) error {
					total = 0
					for a := 0; a < accounts; a++ {
						v, err := f.read(tx, storage.RecordID(a))
						if err != nil {
							return err
						}
						total += v
					}
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
				if total != accounts*initial {
					t.Errorf("%s: invariant broken: total=%d want %d", name, total, accounts*initial)
					return
				}
			}
		}()
		// Let the auditor overlap the whole transfer phase, then stop it.
		transfers.Wait()
		close(stop)
		auditor.Wait()

		// Final audit.
		tx := newTxnFor(0)
		var total int64
		if err := f.run(tx, func(tx *txn.Txn) error {
			total = 0
			for a := 0; a < accounts; a++ {
				v, err := f.read(tx, storage.RecordID(a))
				if err != nil {
					return err
				}
				total += v
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if total != accounts*initial {
			t.Fatalf("%s: final invariant broken: total=%d want %d", name, total, accounts*initial)
		}
	})
}

// TestInsertVisibility checks that inserted records appear only after
// commit and vanish on abort.
func TestInsertVisibility(t *testing.T) {
	allProtocols(t, func(t *testing.T, name string) {
		f := newFixture(t, name, 2, 4)
		loaderDone := f.tbl.NumRows()

		// Aborted insert: record stays invisible.
		tx := newTxnFor(0)
		rid := f.tbl.Alloc()
		f.tbl.SetTombstone(rid, true)
		tx.Reset()
		f.p.Begin(tx)
		data := make([]byte, f.sch.RowSize())
		f.sch.SetInt64(data, 0, 123)
		if err := f.p.RegisterInsert(tx, f.tbl, rid, uint64(rid), data); err != nil {
			t.Fatal(err)
		}
		f.p.Abort(tx)

		tx2 := newTxnFor(1)
		if err := f.run(tx2, func(tx *txn.Txn) error {
			_, err := f.read(tx, rid)
			if !errors.Is(err, txn.ErrNotFound) {
				t.Fatalf("aborted insert visible: %v", err)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}

		// Committed insert: record becomes visible with its data.
		rid2 := f.tbl.Alloc()
		f.tbl.SetTombstone(rid2, true)
		tx.Reset()
		tx.ClearPriority()
		f.p.Begin(tx)
		data2 := tx.Buf(f.sch.RowSize())
		f.sch.SetInt64(data2, 0, 456)
		if err := f.p.RegisterInsert(tx, f.tbl, rid2, uint64(rid2), data2); err != nil {
			t.Fatal(err)
		}
		if err := f.p.Commit(tx); err != nil {
			t.Fatal(err)
		}
		if err := f.run(tx2, func(tx *txn.Txn) error {
			v, err := f.read(tx, rid2)
			if err != nil {
				return err
			}
			if v != 456 {
				t.Fatalf("insert data wrong: %d", v)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		_ = loaderDone
	})
}

// TestDelete checks delete-at-commit semantics.
func TestDelete(t *testing.T) {
	allProtocols(t, func(t *testing.T, name string) {
		f := newFixture(t, name, 1, 8)
		tx := newTxnFor(0)
		if err := f.run(tx, func(tx *txn.Txn) error {
			return f.p.RegisterDelete(tx, f.tbl, 2, 2)
		}); err != nil {
			t.Fatal(err)
		}
		if err := f.run(tx, func(tx *txn.Txn) error {
			_, err := f.read(tx, 2)
			if !errors.Is(err, txn.ErrNotFound) {
				t.Fatalf("deleted record readable: %v", err)
			}
			// Double delete must report not-found.
			err = f.p.RegisterDelete(tx, f.tbl, 2, 2)
			if !errors.Is(err, txn.ErrNotFound) {
				t.Fatalf("double delete: %v", err)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	})
}

// TestReadOnlyNoConflictSingleThread ensures read-only transactions commit
// cleanly.
func TestReadOnly(t *testing.T) {
	allProtocols(t, func(t *testing.T, name string) {
		f := newFixture(t, name, 1, 8)
		tx := newTxnFor(0)
		if err := f.run(tx, func(tx *txn.Txn) error {
			for i := 0; i < 8; i++ {
				if _, err := f.read(tx, storage.RecordID(i)); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	})
}

package storage

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("acct", I64("id"), F64("balance"), Str("name", 16))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaLayout(t *testing.T) {
	s := testSchema(t)
	if s.RowSize() != 8+8+2+16 {
		t.Fatalf("row size %d", s.RowSize())
	}
	if s.NumColumns() != 3 {
		t.Fatalf("columns %d", s.NumColumns())
	}
	if s.ColumnIndex("balance") != 1 || s.ColumnIndex("nope") != -1 {
		t.Fatal("column index lookup broken")
	}
	if s.Column(2).Type != TypeString || s.Column(2).Size != 16 {
		t.Fatal("column descriptor wrong")
	}
}

func TestSchemaErrors(t *testing.T) {
	cases := []struct {
		name string
		cols []Column
	}{
		{"", []Column{I64("a")}},
		{"t", nil},
		{"t", []Column{{Name: "", Type: TypeInt64}}},
		{"t", []Column{I64("a"), I64("a")}},
		{"t", []Column{{Name: "s", Type: TypeString, Size: 0}}},
		{"t", []Column{{Name: "s", Type: TypeString, Size: 1 << 17}}},
		{"t", []Column{{Name: "x", Type: ColType(99)}}},
	}
	for i, c := range cases {
		if _, err := NewSchema(c.name, c.cols...); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustSchema("")
}

func TestRowRoundTrip(t *testing.T) {
	s := testSchema(t)
	row := s.NewRow()
	s.SetInt64(row, 0, -42)
	s.SetFloat64(row, 1, 3.5)
	s.SetString(row, 2, []byte("alice"))
	if got := s.GetInt64(row, 0); got != -42 {
		t.Fatalf("int64 %d", got)
	}
	if got := s.GetFloat64(row, 1); got != 3.5 {
		t.Fatalf("float64 %v", got)
	}
	if got := s.GetString(row, 2); !bytes.Equal(got, []byte("alice")) {
		t.Fatalf("string %q", got)
	}
}

func TestRowRoundTripProperty(t *testing.T) {
	s := testSchema(t)
	row := s.NewRow()
	err := quick.Check(func(i int64, f float64, str string) bool {
		if len(str) > 16 {
			str = str[:16]
		}
		s.SetInt64(row, 0, i)
		s.SetFloat64(row, 1, f)
		s.SetString(row, 2, []byte(str))
		return s.GetInt64(row, 0) == i &&
			(s.GetFloat64(row, 1) == f || f != f) && // NaN compares unequal
			bytes.Equal(s.GetString(row, 2), []byte(str))
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestStringTruncation(t *testing.T) {
	s := testSchema(t)
	row := s.NewRow()
	long := bytes.Repeat([]byte("x"), 100)
	s.SetString(row, 2, long)
	if got := s.GetString(row, 2); len(got) != 16 {
		t.Fatalf("truncation failed: %d bytes", len(got))
	}
}

func TestTableAllocAndAccess(t *testing.T) {
	s := testSchema(t)
	tbl := NewTable(s, 0)
	if tbl.NumRows() != 0 {
		t.Fatal("new table not empty")
	}
	rids := make([]RecordID, 100)
	for i := range rids {
		rids[i] = tbl.Alloc()
		row := tbl.Row(rids[i])
		s.SetInt64(row, 0, int64(i))
	}
	for i, rid := range rids {
		if rid != RecordID(i) {
			t.Fatalf("non-dense rid %d at %d", rid, i)
		}
		if got := s.GetInt64(tbl.Row(rid), 0); got != int64(i) {
			t.Fatalf("row %d content %d", i, got)
		}
	}
}

func TestTableChunkGrowth(t *testing.T) {
	s := MustSchema("small", I64("v"))
	tbl := NewTable(s, 0)
	n := chunkSize*2 + 10
	for i := 0; i < n; i++ {
		rid := tbl.Alloc()
		s.SetInt64(tbl.Row(rid), 0, int64(i))
	}
	// Verify values across chunk boundaries survived growth.
	for _, i := range []int{0, chunkSize - 1, chunkSize, chunkSize + 1, 2*chunkSize - 1, 2 * chunkSize, n - 1} {
		if got := s.GetInt64(tbl.Row(RecordID(i)), 0); got != int64(i) {
			t.Fatalf("row %d content %d after growth", i, got)
		}
	}
}

func TestTableRowOutOfRangePanics(t *testing.T) {
	tbl := NewTable(MustSchema("t", I64("v")), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tbl.Row(0)
}

func TestTableConcurrentAlloc(t *testing.T) {
	s := MustSchema("c", I64("v"))
	tbl := NewTable(s, 0)
	const workers, perWorker = 8, 20000
	var wg sync.WaitGroup
	rids := make([][]RecordID, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := make([]RecordID, perWorker)
			for i := range mine {
				rid := tbl.Alloc()
				s.SetInt64(tbl.Row(rid), 0, int64(rid))
				mine[i] = rid
			}
			rids[w] = mine
		}(w)
	}
	wg.Wait()
	if tbl.NumRows() != workers*perWorker {
		t.Fatalf("allocated %d rows", tbl.NumRows())
	}
	seen := make(map[RecordID]bool, workers*perWorker)
	for _, batch := range rids {
		for _, rid := range batch {
			if seen[rid] {
				t.Fatalf("duplicate rid %d", rid)
			}
			seen[rid] = true
			if got := s.GetInt64(tbl.Row(rid), 0); got != int64(rid) {
				t.Fatalf("rid %d content %d", rid, got)
			}
		}
	}
}

func TestTombstones(t *testing.T) {
	s := MustSchema("t", I64("v"))
	tbl := NewTable(s, 0)
	rid := tbl.Alloc()
	if tbl.IsTombstoned(rid) {
		t.Fatal("fresh row tombstoned")
	}
	tbl.SetTombstone(rid, true)
	if !tbl.IsTombstoned(rid) {
		t.Fatal("tombstone not set")
	}
	tbl.SetTombstone(rid, false)
	if tbl.IsTombstoned(rid) {
		t.Fatal("tombstone not cleared")
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	s1 := MustSchema("a", I64("v"))
	s2 := MustSchema("b", I64("v"))
	t1, err := c.CreateTable(s1)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := c.CreateTable(s2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTable(s1); err == nil {
		t.Fatal("duplicate create must fail")
	}
	if c.Table("a") != t1 || c.Table("b") != t2 || c.Table("z") != nil {
		t.Fatal("lookup by name broken")
	}
	if c.TableByID(t1.ID()) != t1 || c.TableByID(99) != nil || c.TableByID(-1) != nil {
		t.Fatal("lookup by id broken")
	}
	if got := c.Tables(); len(got) != 2 || got[0] != t1 || got[1] != t2 {
		t.Fatal("Tables() broken")
	}
}

func TestColTypeString(t *testing.T) {
	if TypeInt64.String() != "int64" || TypeFloat64.String() != "float64" ||
		TypeString.String() != "string" {
		t.Fatal("stringer broken")
	}
	if ColType(42).String() == "" {
		t.Fatal("unknown type must still render")
	}
}

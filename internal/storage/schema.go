// Package storage implements the in-memory row store underneath the engine:
// typed schemas with a fixed-width row codec, chunked append-only table
// arenas addressed by record IDs, and a catalog.
//
// Tuples are fixed-width byte slices. Fixed width keeps the record path
// allocation-free and makes per-record concurrency-control metadata a simple
// parallel array indexed by record ID — the same layout decision DBx1000 and
// most research main-memory engines make.
package storage

import (
	"encoding/binary"
	"fmt"
	"math"
)

// ColType enumerates supported column types.
type ColType uint8

const (
	// TypeInt64 is a signed 64-bit integer column.
	TypeInt64 ColType = iota
	// TypeFloat64 is a 64-bit IEEE float column.
	TypeFloat64
	// TypeString is a fixed-capacity string column (length-prefixed inside
	// the fixed slot).
	TypeString
)

// String implements fmt.Stringer.
func (t ColType) String() string {
	switch t {
	case TypeInt64:
		return "int64"
	case TypeFloat64:
		return "float64"
	case TypeString:
		return "string"
	default:
		return fmt.Sprintf("ColType(%d)", uint8(t))
	}
}

// Column describes one column of a schema.
type Column struct {
	Name string
	Type ColType
	// Size is the fixed byte capacity for TypeString columns (excluding the
	// 2-byte length prefix); ignored for numeric types.
	Size int
}

// Schema is an ordered list of columns with precomputed offsets into the
// fixed-width row image.
type Schema struct {
	name    string
	cols    []Column
	offsets []int
	rowSize int
	byName  map[string]int
}

// NewSchema builds a schema. Column names must be unique and non-empty;
// string columns must declare a positive Size.
func NewSchema(name string, cols ...Column) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("storage: schema needs a name")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("storage: schema %q needs at least one column", name)
	}
	s := &Schema{
		name:    name,
		cols:    append([]Column(nil), cols...),
		offsets: make([]int, len(cols)),
		byName:  make(map[string]int, len(cols)),
	}
	off := 0
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("storage: schema %q column %d has empty name", name, i)
		}
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("storage: schema %q duplicate column %q", name, c.Name)
		}
		s.byName[c.Name] = i
		s.offsets[i] = off
		switch c.Type {
		case TypeInt64, TypeFloat64:
			off += 8
		case TypeString:
			if c.Size <= 0 || c.Size > math.MaxUint16 {
				return nil, fmt.Errorf("storage: schema %q string column %q needs Size in [1,65535]", name, c.Name)
			}
			off += 2 + c.Size
		default:
			return nil, fmt.Errorf("storage: schema %q column %q has unknown type", name, c.Name)
		}
	}
	s.rowSize = off
	return s, nil
}

// MustSchema is NewSchema that panics on error; for statically known schemas.
func MustSchema(name string, cols ...Column) *Schema {
	s, err := NewSchema(name, cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Name returns the schema (table) name.
func (s *Schema) Name() string { return s.name }

// RowSize returns the fixed row image size in bytes.
func (s *Schema) RowSize() int { return s.rowSize }

// NumColumns returns the number of columns.
func (s *Schema) NumColumns() int { return len(s.cols) }

// Column returns the i-th column descriptor.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// ColumnIndex returns the index of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// Row is a fixed-width tuple image laid out per a Schema. Accessors do not
// retain the slice.
type Row []byte

// GetInt64 reads the i-th column as int64.
func (s *Schema) GetInt64(row Row, i int) int64 {
	return int64(binary.LittleEndian.Uint64(row[s.offsets[i]:]))
}

// SetInt64 writes the i-th column as int64.
func (s *Schema) SetInt64(row Row, i int, v int64) {
	binary.LittleEndian.PutUint64(row[s.offsets[i]:], uint64(v))
}

// GetFloat64 reads the i-th column as float64.
func (s *Schema) GetFloat64(row Row, i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(row[s.offsets[i]:]))
}

// SetFloat64 writes the i-th column as float64.
func (s *Schema) SetFloat64(row Row, i int, v float64) {
	binary.LittleEndian.PutUint64(row[s.offsets[i]:], math.Float64bits(v))
}

// GetString reads the i-th column as a string. The returned slice aliases
// row; copy it if it must outlive the row buffer.
func (s *Schema) GetString(row Row, i int) []byte {
	off := s.offsets[i]
	n := int(binary.LittleEndian.Uint16(row[off:]))
	return row[off+2 : off+2+n]
}

// SetString writes the i-th column as a string, truncating to the column's
// declared capacity.
func (s *Schema) SetString(row Row, i int, v []byte) {
	off := s.offsets[i]
	capacity := s.cols[i].Size
	if len(v) > capacity {
		v = v[:capacity]
	}
	binary.LittleEndian.PutUint16(row[off:], uint16(len(v)))
	copy(row[off+2:], v)
}

// NewRow allocates a zeroed row image for this schema.
func (s *Schema) NewRow() Row { return make(Row, s.rowSize) }

// I64 is shorthand for an int64 column.
func I64(name string) Column { return Column{Name: name, Type: TypeInt64} }

// F64 is shorthand for a float64 column.
func F64(name string) Column { return Column{Name: name, Type: TypeFloat64} }

// Str is shorthand for a fixed-capacity string column.
func Str(name string, size int) Column { return Column{Name: name, Type: TypeString, Size: size} }

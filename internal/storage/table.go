package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// RecordID identifies a row slot within a table. IDs are dense, starting at
// 0, and never reused; concurrency-control protocols key their per-record
// metadata off them.
type RecordID uint64

// InvalidRecordID is returned by lookups that find nothing.
const InvalidRecordID = RecordID(1<<64 - 1)

// chunkBits sets the chunk capacity (2^chunkBits rows per chunk). 16 bits =
// 65536 rows keeps chunk allocation rare while bounding wasted tail space.
const chunkBits = 16

const chunkSize = 1 << chunkBits

// Table is a chunked, append-only arena of fixed-width rows. Row allocation
// is lock-free in the common case (atomic bump within the current chunk
// directory); chunk growth takes a mutex. Row access is wait-free.
//
// The table itself performs no concurrency control on row contents — that is
// the cc package's job. Deleted rows are tombstoned, not reclaimed; the
// engine-level garbage collector may reuse them via the free list.
type Table struct {
	schema *Schema
	id     int

	mu     sync.Mutex // guards chunk growth
	chunks atomic.Pointer[[][]byte]
	next   atomic.Uint64 // next RecordID to hand out

	tombstone []atomic.Bool // parallel to rows; grown with chunks
	tombMu    sync.RWMutex  // guards tombstone slice header during growth
}

// NewTable creates an empty table over schema.
func NewTable(schema *Schema, id int) *Table {
	t := &Table{schema: schema, id: id}
	empty := make([][]byte, 0, 16)
	t.chunks.Store(&empty)
	return t
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// ID returns the catalog-assigned table id.
func (t *Table) ID() int { return t.id }

// Name returns the schema name.
func (t *Table) Name() string { return t.schema.Name() }

// NumRows returns the number of allocated row slots (including tombstoned
// ones).
func (t *Table) NumRows() uint64 { return t.next.Load() }

// Alloc reserves a new row slot and returns its RecordID. The slot's row
// image is zeroed.
func (t *Table) Alloc() RecordID {
	rid := RecordID(t.next.Add(1) - 1)
	t.ensureChunk(rid)
	return rid
}

// ensureChunk guarantees that the chunk containing rid exists.
func (t *Table) ensureChunk(rid RecordID) {
	idx := int(rid >> chunkBits)
	chunks := *t.chunks.Load()
	if idx < len(chunks) {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	chunks = *t.chunks.Load()
	for idx >= len(chunks) {
		chunk := make([]byte, chunkSize*t.schema.rowSize)
		grown := append(chunks, chunk)
		t.chunks.Store(&grown)
		chunks = grown

		t.tombMu.Lock()
		t.tombstone = append(t.tombstone, make([]atomic.Bool, chunkSize)...)
		t.tombMu.Unlock()
	}
}

// Row returns the row image for rid. The slice aliases table memory; writers
// must hold whatever protection the active concurrency-control protocol
// requires. Panics if rid was never allocated.
func (t *Table) Row(rid RecordID) Row {
	if uint64(rid) >= t.next.Load() {
		//next700:allowalloc(panic path: formatting a programming-error message happens at most once)
		panic(fmt.Sprintf("storage: table %q row %d out of range (allocated %d)",
			t.Name(), rid, t.next.Load()))
	}
	chunks := *t.chunks.Load()
	chunk := chunks[rid>>chunkBits]
	off := int(rid&(chunkSize-1)) * t.schema.rowSize
	return chunk[off : off+t.schema.rowSize : off+t.schema.rowSize]
}

// SetTombstone marks rid deleted (or undeleted, for abort paths).
func (t *Table) SetTombstone(rid RecordID, dead bool) {
	t.tombMu.RLock()
	t.tombstone[rid].Store(dead)
	t.tombMu.RUnlock()
}

// IsTombstoned reports whether rid is deleted.
func (t *Table) IsTombstoned(rid RecordID) bool {
	t.tombMu.RLock()
	dead := t.tombstone[rid].Load()
	t.tombMu.RUnlock()
	return dead
}

// Catalog maps table names to tables and assigns table ids. It is safe for
// concurrent readers once tables are registered; registration itself is
// serialized.
type Catalog struct {
	mu     sync.RWMutex
	byName map[string]*Table
	byID   []*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{byName: make(map[string]*Table)}
}

// CreateTable registers a new table under its schema name.
func (c *Catalog) CreateTable(schema *Schema) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.byName[schema.Name()]; exists {
		return nil, fmt.Errorf("storage: table %q already exists", schema.Name())
	}
	t := NewTable(schema, len(c.byID))
	c.byName[schema.Name()] = t
	c.byID = append(c.byID, t)
	return t, nil
}

// Table returns the named table, or nil.
func (c *Catalog) Table(name string) *Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.byName[name]
}

// TableByID returns the table with the given id, or nil.
func (c *Catalog) TableByID(id int) *Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if id < 0 || id >= len(c.byID) {
		return nil
	}
	return c.byID[id]
}

// Tables returns all tables in id order.
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]*Table(nil), c.byID...)
}

package partition

import (
	"sync"
	"testing"
	"testing/quick"

	"next700/internal/xrand"
)

func TestHashPartitioner(t *testing.T) {
	p := NewHashPartitioner(4)
	if p.N() != 4 {
		t.Fatal("N")
	}
	err := quick.Check(func(key uint64) bool {
		part := p.Partition(key)
		return part >= 0 && part < 4 && part == int(key%4)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if NewHashPartitioner(0).N() != 1 {
		t.Fatal("zero partitions not clamped")
	}
}

func TestRangePartitioner(t *testing.T) {
	p := NewRangePartitioner(4, 1000)
	cases := map[uint64]int{0: 0, 249: 0, 250: 1, 999: 3, 5000: 3}
	for key, want := range cases {
		if got := p.Partition(key); got != want {
			t.Errorf("Partition(%d) = %d want %d", key, got, want)
		}
	}
	// Monotone.
	prev := 0
	for k := uint64(0); k < 1000; k += 13 {
		part := p.Partition(k)
		if part < prev {
			t.Fatalf("range partitioner not monotone at %d", k)
		}
		prev = part
	}
	if NewRangePartitioner(0, 0).Partition(5) != 0 {
		t.Fatal("degenerate range partitioner broken")
	}
}

func TestExecSingleSerialPerPartition(t *testing.T) {
	e := NewExecutor(4, 0)
	defer e.Stop()
	// Unsynchronized per-partition counters: safe iff execution is serial
	// per partition.
	counters := make([]int, 4)
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(uint64(w + 1))
			for i := 0; i < per; i++ {
				part := rng.Intn(4)
				if err := e.ExecSingle(part, func() { counters[part]++ }); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, c := range counters {
		total += c
	}
	if total != workers*per {
		t.Fatalf("lost increments: %d want %d", total, workers*per)
	}
}

func TestExecMultiExclusive(t *testing.T) {
	e := NewExecutor(4, 0)
	defer e.Stop()
	// Transfers between two partition-local balances; multi-partition
	// bodies run with both partitions quiescent, so no synchronization is
	// used inside.
	balances := []int{1000, 1000, 1000, 1000}
	var wg sync.WaitGroup
	const workers, per = 6, 300
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(uint64(w + 11))
			for i := 0; i < per; i++ {
				a, b := rng.Intn(4), rng.Intn(4)
				if a == b {
					continue
				}
				if err := e.ExecMulti([]int{a, b}, func() {
					balances[a]--
					balances[b]++
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, b := range balances {
		total += b
	}
	if total != 4000 {
		t.Fatalf("conservation broken: %d", total)
	}
}

func TestExecMixedSingleAndMulti(t *testing.T) {
	e := NewExecutor(3, 8)
	defer e.Stop()
	vals := make([]int, 3)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(uint64(w + 21))
			for i := 0; i < 200; i++ {
				if rng.Bool(0.2) {
					e.ExecMulti([]int{0, 1, 2}, func() {
						vals[0]++
						vals[1]++
						vals[2]++
					})
				} else {
					p := rng.Intn(3)
					e.ExecSingle(p, func() { vals[p]++ })
				}
			}
		}(w)
	}
	wg.Wait()
	// No assertion beyond absence of data races (run under -race) and
	// completion without deadlock; sanity check that work happened.
	if vals[0] == 0 || vals[1] == 0 || vals[2] == 0 {
		t.Fatalf("no work recorded: %v", vals)
	}
}

func TestExecMultiDuplicatePartitions(t *testing.T) {
	e := NewExecutor(2, 0)
	defer e.Stop()
	ran := false
	if err := e.ExecMulti([]int{1, 1, 0, 1}, func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("body did not run")
	}
}

func TestExecutorErrors(t *testing.T) {
	e := NewExecutor(2, 0)
	if err := e.ExecSingle(5, func() {}); err == nil {
		t.Fatal("bad partition accepted")
	}
	if err := e.ExecMulti(nil, func() {}); err == nil {
		t.Fatal("empty set accepted")
	}
	if err := e.ExecMulti([]int{0, 9}, func() {}); err == nil {
		t.Fatal("bad multi partition accepted")
	}
	e.Stop()
	e.Stop() // idempotent
	if err := e.ExecSingle(0, func() {}); err != ErrStopped {
		t.Fatalf("post-stop submit: %v", err)
	}
	if err := e.ExecMulti([]int{0, 1}, func() {}); err != ErrStopped {
		t.Fatalf("post-stop multi: %v", err)
	}
}

func TestExecSingleOnSingletonExecutor(t *testing.T) {
	e := NewExecutor(0, 0) // clamped to 1
	defer e.Stop()
	if e.N() != 1 {
		t.Fatal("not clamped")
	}
	v := 0
	e.ExecSingle(0, func() { v = 42 })
	if v != 42 {
		t.Fatal("work lost")
	}
}

// Package partition implements the engine's partitioning axis: key
// partitioners and a DORA-style data-oriented executor (Pandis et al.,
// "Data-Oriented Transaction Execution", VLDB 2010).
//
// In the conventional thread-to-transaction model, any worker may touch any
// record, so every record access pays concurrency control. Data-oriented
// execution inverts the assignment: each partition of the data is owned by
// exactly one worker goroutine, transactions are routed to owners, and
// accesses within a partition need no locks at all. Cross-partition
// transactions synchronize the owners involved with a rendezvous barrier —
// the coordination cost the design trades for lock-freedom.
package partition

import (
	"errors"
	"sync"
)

// Partitioner maps keys to partitions.
type Partitioner interface {
	// Partition returns the partition of key, in [0, N).
	Partition(key uint64) int
	// N returns the partition count.
	N() int
}

// HashPartitioner assigns keys round-robin by value (key mod n).
type HashPartitioner struct{ n int }

// NewHashPartitioner creates a modulo partitioner over n partitions.
func NewHashPartitioner(n int) *HashPartitioner {
	if n < 1 {
		n = 1
	}
	return &HashPartitioner{n: n}
}

// Partition implements Partitioner.
func (p *HashPartitioner) Partition(key uint64) int { return int(key % uint64(p.n)) }

// N implements Partitioner.
func (p *HashPartitioner) N() int { return p.n }

// RangePartitioner splits [0, max) into n contiguous ranges.
type RangePartitioner struct {
	n   int
	max uint64
}

// NewRangePartitioner creates a range partitioner over [0, max).
func NewRangePartitioner(n int, max uint64) *RangePartitioner {
	if n < 1 {
		n = 1
	}
	if max == 0 {
		max = 1
	}
	return &RangePartitioner{n: n, max: max}
}

// Partition implements Partitioner.
func (p *RangePartitioner) Partition(key uint64) int {
	if key >= p.max {
		return p.n - 1
	}
	part := int(key * uint64(p.n) / p.max)
	if part >= p.n {
		part = p.n - 1
	}
	return part
}

// N implements Partitioner.
func (p *RangePartitioner) N() int { return p.n }

// task is one unit of work routed to a partition owner.
type task struct {
	fn      func()
	barrier *barrier // non-nil for multi-partition rendezvous
}

// barrier synchronizes the owners of a multi-partition transaction: every
// owner parks at the barrier; the executor runs the transaction body while
// they are parked (so it has exclusive access to all their partitions) and
// then releases them.
type barrier struct {
	arrive  sync.WaitGroup // owners that have parked
	release chan struct{}
}

// ErrStopped is returned for work submitted after Stop.
var ErrStopped = errors.New("partition: executor stopped")

// Executor is the data-oriented runtime: one goroutine per partition
// draining a work queue. The caller guarantees that work submitted to a
// partition touches only that partition's data; the executor guarantees
// serial execution per partition.
type Executor struct {
	queues  []chan task
	wg      sync.WaitGroup
	mu      sync.Mutex // serializes multi-partition dispatch (deadlock freedom)
	stopped bool
}

// NewExecutor starts owners for n partitions. queueDepth bounds each
// owner's backlog (0 means 1024).
func NewExecutor(n int, queueDepth int) *Executor {
	if n < 1 {
		n = 1
	}
	if queueDepth <= 0 {
		queueDepth = 1024
	}
	e := &Executor{queues: make([]chan task, n)}
	for i := range e.queues {
		e.queues[i] = make(chan task, queueDepth)
		e.wg.Add(1)
		go e.owner(i)
	}
	return e
}

// N returns the partition count.
func (e *Executor) N() int { return len(e.queues) }

func (e *Executor) owner(i int) {
	defer e.wg.Done()
	for t := range e.queues[i] {
		if t.barrier != nil {
			t.barrier.arrive.Done()
			<-t.barrier.release
			continue
		}
		t.fn()
	}
}

// ExecSingle runs fn on the owner of part and waits for completion. fn must
// only touch data in that partition.
func (e *Executor) ExecSingle(part int, fn func()) error {
	if part < 0 || part >= len(e.queues) {
		return errors.New("partition: bad partition id")
	}
	done := make(chan struct{})
	if err := e.submit(part, task{fn: func() { fn(); close(done) }}); err != nil {
		return err
	}
	<-done
	return nil
}

// ExecMulti parks the owners of parts at a rendezvous, runs fn with
// exclusive access to all of them, and releases. Dispatch of multi-partition
// work is serialized so barrier order is consistent across queues
// (deadlock freedom).
func (e *Executor) ExecMulti(parts []int, fn func()) error {
	if len(parts) == 0 {
		return errors.New("partition: empty partition set")
	}
	if len(parts) == 1 {
		return e.ExecSingle(parts[0], fn)
	}
	b := &barrier{release: make(chan struct{})}
	seen := make(map[int]bool, len(parts))

	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return ErrStopped
	}
	for _, p := range parts {
		if p < 0 || p >= len(e.queues) {
			e.mu.Unlock()
			close(b.release)
			return errors.New("partition: bad partition id")
		}
		if seen[p] {
			continue
		}
		seen[p] = true
		b.arrive.Add(1)
		e.queues[p] <- task{barrier: b}
	}
	e.mu.Unlock()

	b.arrive.Wait() // all owners parked: their partitions are quiescent
	fn()
	close(b.release)
	return nil
}

func (e *Executor) submit(part int, t task) error {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return ErrStopped
	}
	e.queues[part] <- t
	e.mu.Unlock()
	return nil
}

// Stop drains and terminates the owners. Idempotent.
func (e *Executor) Stop() {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	e.stopped = true
	for _, q := range e.queues {
		close(q)
	}
	e.mu.Unlock()
	e.wg.Wait()
}

package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"next700/internal/storage"
	"next700/internal/txn"
	"next700/internal/wal"
)

// This file is the partition-fault isolation layer: with Config.PartitionWAL
// the parallel WAL is sharded by partition instead of worker thread, and the
// partition becomes the unit of failure, degradation, and recovery.
//
//   - Routing: a commit appends its full record to the stream of every
//     partition it wrote (one epoch tag for all copies), so each stream is a
//     self-contained log of its partition's effects.
//   - Quarantine: when a stream's device sticky-fails (or stalls past
//     Config.QuarantineStall), the guard marks the partition quarantined.
//     Transactions touching it abort with the terminal
//     ErrPartitionUnavailable class; healthy partitions keep committing
//     durably against the frontier re-certified over the survivors.
//   - Recovery: RecoverPartition rebuilds one partition from its newest
//     valid checkpoint slice plus its own stream's certified tail while the
//     rest of the engine serves traffic, then readmits the stream on a
//     fresh device and lifts the quarantine.
//
// The cross-partition contract matches the partitioned replay contract in
// wal.ReplayStreamsPartitioned: an acknowledged commit is certified on every
// stream it touched and always recovers in full; an unacknowledged commit in
// a failed partition's loss window may recover on its healthy partitions
// only. Reads that completed before a quarantine may likewise have observed
// state the failed partition later rolls back to its durable frontier —
// cross-partition read dependencies on that never-acknowledged suffix are
// not tracked.

// ErrPartitionUnavailable is the terminal abort class for transactions that
// touch a quarantined partition while the engine degrades around a
// partition fault. It is never retried; Run accounts it as
// Counter.PartitionAborts. Match with errors.Is.
var ErrPartitionUnavailable = errors.New("core: partition unavailable")

// errPartitionGate is prebuilt because the quarantine gate sits on
// operation and commit hot paths.
var errPartitionGate = fmt.Errorf("core: transaction touches quarantined partition: %w", ErrPartitionUnavailable)

// errStreamStalled is the cause recorded when the guard escalates a
// sustained gray stall (no sync progress with records pending for
// Config.QuarantineStall) to a stream failure.
var errStreamStalled = fmt.Errorf("core: log stream sync stalled: %w", ErrPartitionUnavailable)

// ErrCheckpointQuarantined defers sliced checkpoint cycles while any
// partition is quarantined: a generation taken then could not rotate the
// dead stream, and its slice for the quarantined partition would capture
// memory state ahead of that partition's durable frontier.
var ErrCheckpointQuarantined = errors.New("core: checkpoint deferred: partition quarantined")

// partitionOfKey maps a primary key to its partition: the installed
// partitioner when one is set (out-of-range answers fall back), key mod
// Partitions otherwise — the same default HSTORE uses, so WAL routing and
// protocol partitioning always agree.
//
//next700:hotpath
func (e *Engine) partitionOfKey(st *storage.Table, key uint64) int {
	if fn := e.env.PartitionOf; fn != nil {
		if p := fn(st, key); p >= 0 && p < e.cfg.Partitions {
			return p
		}
	}
	return int(key % uint64(e.cfg.Partitions))
}

// partitionGate aborts an operation that touches a quarantined partition.
// In a healthy engine (any mode) the gate is one atomic load of a zero
// mask; the partition is computed only while a quarantine is in force.
//
//next700:hotpath
func (t *Tx) partitionGate(tbl *Table, key uint64) error {
	e := t.eng
	mask := e.quarMask.Load()
	if mask == 0 {
		return nil
	}
	if mask&(1<<uint(e.partitionOfKey(tbl.tbl, key))) != 0 {
		return errPartitionGate
	}
	return nil
}

// collectStreams computes the set of partitions the transaction's write set
// touches into t.streamScratch (ascending, deduplicated through the
// returned bitmask). Scratch capacity is pre-sized to the partition bound,
// so the commit path allocates nothing.
//
//next700:hotpath
func (t *Tx) collectStreams() uint64 {
	e := t.eng
	inner := t.inner
	var mask uint64
	for i := range inner.Accesses {
		a := &inner.Accesses[i]
		if a.Kind == txn.KindRead {
			continue
		}
		mask |= 1 << uint(e.partitionOfKey(a.Table, a.Key))
	}
	sc := t.streamScratch[:0]
	for m, p := mask, 0; m != 0; m, p = m>>1, p+1 {
		if m&1 != 0 {
			sc = append(sc, p)
		}
	}
	t.streamScratch = sc
	return mask
}

// waitStreamsDurable parks on the epoch frontier until the record is
// certified on every touched stream (partition-affinity commits).
//
//next700:hotpath
func (t *Tx) waitStreamsDurable(epoch uint64) error {
	e := t.eng
	if err := e.logs.WaitDurableMulti(t.streamScratch, epoch, t.inner.Deadline); err != nil {
		if errors.Is(err, wal.ErrWaitDeadline) {
			return errDurabilityDeadline
		}
		return e.wrapPartitionErr(err)
	}
	return nil
}

// wrapPartitionErr classifies a per-stream log failure as a partition
// outage in partition-affinity mode, so callers (and the torture oracle)
// see every loss on a failed partition under one terminal class.
//
//next700:allowalloc(stream-failure path: never taken while the log is healthy)
func (e *Engine) wrapPartitionErr(err error) error {
	if e.cfg.PartitionWAL && errors.Is(err, wal.ErrStreamFailed) {
		return fmt.Errorf("%w: %w", ErrPartitionUnavailable, err)
	}
	return err
}

// QuarantinedPartitions returns the quarantine bitmask (bit p set =
// partition p unavailable).
func (e *Engine) QuarantinedPartitions() uint64 { return e.quarMask.Load() }

// quarantine marks partition p unavailable and excludes its stream from the
// durable frontier. The mask is set before the frontier re-certifies so no
// new transaction can route a commit at the dead stream while healthy
// waiters are being released. Idempotent.
func (e *Engine) quarantine(p int) {
	bit := uint64(1) << uint(p)
	for {
		old := e.quarMask.Load()
		if old&bit != 0 {
			return
		}
		if e.quarMask.CompareAndSwap(old, old|bit) {
			break
		}
	}
	// The stream is failed (the guard only quarantines after the failure
	// signal); Quarantine re-certifies the frontier over the survivors.
	_ = e.logs.Quarantine(p)
	if cb := e.cfg.OnPartitionDown; cb != nil {
		cb(p, true)
	}
}

// QuarantinePartition fails partition p's stream (if it has not already
// failed) and quarantines it — the manual form of what the guard does on a
// device failure, for operators, benchmarks, and tests.
func (e *Engine) QuarantinePartition(p int) error {
	if !e.cfg.PartitionWAL {
		return fmt.Errorf("core: QuarantinePartition requires PartitionWAL: %w", ErrInvalidUsage)
	}
	if p < 0 || p >= e.cfg.Partitions {
		return fmt.Errorf("core: partition %d out of range: %w", p, ErrInvalidUsage)
	}
	if err := e.logs.FailStream(p, nil); err != nil {
		return err
	}
	e.quarantine(p)
	return nil
}

// partitionGuard is the quarantine monitor: it converts per-stream failure
// signals into partition quarantines, and escalates sustained gray stalls
// (claim stagnant with records pending for Config.QuarantineStall) into
// failures. One goroutine per engine, started only in partition mode.
func (e *Engine) partitionGuard() {
	defer close(e.guardDone)
	type stallState struct {
		claim uint64
		since time.Time
	}
	n := e.logs.NumStreams()
	states := make([]stallState, n)
	var tickC <-chan time.Time
	if e.cfg.QuarantineStall > 0 {
		interval := e.cfg.QuarantineStall / 4
		if interval <= 0 {
			interval = e.cfg.QuarantineStall
		}
		tick := time.NewTicker(interval)
		defer tick.Stop()
		tickC = tick.C
	}
	for {
		select {
		case <-e.guardStop:
			return
		case i, ok := <-e.logs.FailureC():
			if !ok {
				return
			}
			e.quarantine(i)
		case now := <-tickC:
			// A stalled stream is one whose claim froze while the global
			// epoch kept advancing past it: healthy streams certify every
			// epoch within a flush latency (an idle stream still syncs the
			// epoch marker), so a claim pinned more than one epoch behind
			// for the full window means its device is wedged — the staged
			// batch may already be swapped in-flight and parked inside
			// Sync, so buffered bytes are NOT a reliable signal.
			epoch := e.logs.CurrentEpoch()
			for i := range states {
				if e.logs.StreamFailed(i) {
					continue
				}
				claim := e.logs.StreamClaim(i)
				if claim != states[i].claim || epoch <= claim+1 {
					states[i] = stallState{claim: claim}
					continue
				}
				if states[i].since.IsZero() {
					states[i].since = now
					continue
				}
				if now.Sub(states[i].since) >= e.cfg.QuarantineStall {
					// The failure signal loops back through FailureC, which
					// performs the quarantine.
					_ = e.logs.FailStream(i, errStreamStalled)
				}
			}
		}
	}
}

// clearPartition removes every record of partition p from memory: primary
// and secondary index entries are retracted and the rows tombstoned. Safe
// while healthy-partition traffic runs, provided the quarantine mask
// already covers p and the attempt gate has been drained since (no live
// transaction can then be touching p's records).
func (e *Engine) clearPartition(p int) {
	for _, t := range e.snapshotTables() {
		// Collect first: deleting under Iterate would mutate the index
		// mid-walk.
		keys := make([]uint64, 0, 64)
		rids := make([]storage.RecordID, 0, 64)
		t.primary.Iterate(func(key uint64, rid storage.RecordID) bool {
			if e.partitionOfKey(t.tbl, key) == p {
				keys = append(keys, key)
				rids = append(rids, rid)
			}
			return true
		})
		for i, key := range keys {
			rid := rids[i]
			for j := range t.secondaries {
				s := &t.secondaries[j]
				s.idx.Delete(s.extract(t.sch, t.tbl.Row(rid), key))
			}
			t.primary.Delete(key)
			t.tbl.SetTombstone(rid, true)
		}
	}
}

// applyValueRecordPartition applies the entries of one commit record that
// belong to the given partition, with the same applied-if-newer filtering
// as whole-engine replay. In partition-affinity logs a multi-partition
// record is replicated on every touched stream; filtering by entry
// partition makes each stream's replay exactly its partition's history.
//
// Unlike whole-engine replay, partition replay is key-addressed rather than
// slot-addressed: the base state it replays over may have been
// re-materialized at fresh record ids (a RecoverPartition load callback, an
// older generation's slice), so reusing the logged record id could collide
// with a live row of a different key. Each after-image instead applies to
// its key's current slot, materializing one when the key is absent — a
// value-mode entry carries the full image, so the upsert loses nothing.
func (e *Engine) applyValueRecordPartition(cr *wal.CommitRecord, part int, versions recordVersion, rs *RecoveryStats) error {
	applied := false
	for i := range cr.Entries {
		en := &cr.Entries[i]
		th := e.tableByID(int(en.Table))
		if th == nil {
			return fmt.Errorf("core: recovery references unknown table %d: %w", en.Table, wal.ErrCorrupt)
		}
		if e.partitionOfKey(th.tbl, en.Key) != part {
			continue
		}
		applied = true
		if !versions.newer(en.Table, en.RID, cr.Epoch, cr.TxnID) {
			rs.Skipped++
			continue
		}
		rs.Entries++
		cur, ok := th.primary.Lookup(en.Key)
		switch en.Kind {
		case wal.EntryDelete:
			if !ok {
				continue // already absent in the replayed base
			}
			for j := range th.secondaries {
				s := &th.secondaries[j]
				s.idx.Delete(s.extract(th.sch, th.tbl.Row(cur), en.Key))
			}
			th.primary.Delete(en.Key)
			th.tbl.SetTombstone(cur, true)
		default: // insert or update: upsert the after-image
			if !ok {
				cur = th.tbl.Alloc()
				th.primary.Insert(en.Key, cur)
				for j := range th.secondaries {
					s := &th.secondaries[j]
					s.idx.Insert(s.extract(th.sch, storage.Row(en.Data), en.Key), cur)
				}
			}
			copy(th.tbl.Row(cur), en.Data)
			th.tbl.SetTombstone(cur, false)
			e.reloadRecord(th, cur, en.Key, en.Data)
		}
	}
	if applied {
		rs.Records++
	}
	return nil
}

// PartitionFrontier returns the quarantined partition's certified durable
// epoch: every commit it acknowledged is tagged at or below it. It is the
// epoch RecoverPartition recovers to.
func (e *Engine) PartitionFrontier(p int) uint64 {
	claim := e.logs.StreamClaim(p)
	if claim == 0 {
		return 0
	}
	return claim - 1
}

// RecoverPartition rebuilds quarantined partition p while the engine serves
// traffic on its healthy partitions, then readmits the partition's stream
// on newDev and lifts the quarantine:
//
//  1. Drain the attempt gate, so no transaction predating the quarantine
//     can still observe p's records.
//  2. Clear p's in-memory state; reload its initial rows via load (nil when
//     the partition had no pre-log state or a slice covers it).
//  3. Restore the newest state from slice (a version-2 checkpoint slice for
//     p; nil recovers from the log alone).
//  4. Replay tail — the failed stream's salvaged bytes — applying only p's
//     entries with epochs in (sliceEpoch, PartitionFrontier(p)]: the
//     certified prefix. Records beyond the frontier were never
//     acknowledged and stay dead, exactly like whole-engine recovery.
//  5. Readmit the stream on newDev and clear the quarantine bit.
//
// The recovered tail lives on the retired device and in memory but not yet
// in the readmitted stream: take a checkpoint generation after recovery to
// close that durability window (the Checkpointer resumes automatically once
// the quarantine lifts).
func (e *Engine) RecoverPartition(p int, load func() error, slice io.Reader, tail io.Reader, newDev wal.Device) (RecoveryStats, error) {
	var rs RecoveryStats
	if !e.cfg.PartitionWAL {
		return rs, fmt.Errorf("core: RecoverPartition requires PartitionWAL: %w", ErrInvalidUsage)
	}
	if p < 0 || p >= e.cfg.Partitions {
		return rs, fmt.Errorf("core: partition %d out of range: %w", p, ErrInvalidUsage)
	}
	if e.quarMask.Load()&(1<<uint(p)) == 0 {
		return rs, fmt.Errorf("core: partition %d is not quarantined: %w", p, ErrInvalidUsage)
	}

	// Attempt-gate drain: afterwards every in-flight transaction began
	// after the quarantine mask was set and is gated off p entirely.
	e.quiesce.Lock()
	e.quiesce.Unlock() //nolint:staticcheck // empty critical section is the drain
	e.clearPartition(p)

	if load != nil {
		if err := load(); err != nil {
			return rs, err
		}
	}
	var afterEpoch uint64
	if slice != nil {
		ep, err := e.LoadCheckpointSlice(slice, p)
		if err != nil {
			return rs, err
		}
		rs.CheckpointLoaded = true
		rs.CheckpointEpoch = ep
		afterEpoch = ep
	}

	frontier := e.PartitionFrontier(p)
	rs.FrontierEpoch = frontier
	rs.Streams = 1
	if tail != nil {
		versions := make(recordVersion)
		// The tail is in the per-stream segment format (framed records plus
		// epoch markers); a single-reader partitioned replay certifies it by
		// its own markers, and the live claim caps it at the epochs the
		// stream actually acknowledged before it died.
		st, err := wal.ReplayStreamsPartitioned([]io.Reader{tail}, func(_ int, cr *wal.CommitRecord) error {
			if cr.Epoch <= afterEpoch {
				rs.SkippedOldEpoch++
				return nil
			}
			if cr.Epoch > frontier {
				rs.TruncatedRecords++
				return nil
			}
			return e.applyValueRecordPartition(cr, p, versions, &rs)
		})
		rs.Bytes, rs.TornBytes, rs.CorruptTailRecords = st.Bytes, st.TornBytes, st.CorruptTailRecords
		rs.TruncatedRecords += st.TruncatedRecords
		if err != nil {
			return rs, err
		}
	}

	// Second drain before readmitting: nothing may sit between an append
	// to the old incarnation and its durability wait when the stream comes
	// back healthy.
	e.quiesce.Lock()
	e.quiesce.Unlock() //nolint:staticcheck // empty critical section is the drain
	if err := e.logs.Readmit(p, newDev); err != nil {
		return rs, err
	}
	bit := uint64(1) << uint(p)
	for {
		old := e.quarMask.Load()
		if e.quarMask.CompareAndSwap(old, old&^bit) {
			break
		}
	}
	if cb := e.cfg.OnPartitionDown; cb != nil {
		cb(p, false)
	}
	return rs, nil
}

// recoverFromStorePartitioned is RecoverFromStore's partition-affinity
// path: every checkpoint generation is a set of per-partition slices, each
// partition falls back through generations independently, and the log tail
// replays each stream to its own certified frontier (each stream is its
// partition's authority — wal.ReplayStreamsPartitioned).
func (e *Engine) recoverFromStorePartitioned(store CheckpointStore, att *LogAttachment, load func() error, rs *RecoveryStats) error {
	P := e.cfg.Partitions
	m := att.recover

	// Resolve each partition's newest loadable slice, falling back through
	// generations per partition: a corrupt slice costs its partition's
	// bounded-recovery head start, nobody else's.
	type sliceLoad struct {
		plan  []ckptTableLoad
		epoch uint64
		gen   uint64
	}
	resolved := make([]*sliceLoad, P)
	missing := P
	cks := append([]wal.ManifestCheckpoint(nil), m.Checkpoints...)
	sort.Slice(cks, func(i, j int) bool { return cks[i].Gen > cks[j].Gen })
	for _, ck := range cks {
		if missing == 0 {
			break
		}
		if ck.Slices != P {
			// A whole-image or differently-partitioned generation cannot be
			// loaded piecewise; skip it.
			rs.CheckpointFallbacks++
			continue
		}
		for p := 0; p < P; p++ {
			if resolved[p] != nil {
				continue
			}
			rc, err := store.OpenCheckpoint(sliceName(ck.Name, p))
			if err != nil {
				rs.CheckpointFallbacks++
				continue //next700:allowretry(fallback scan: a failed slice open is counted and the next candidate is tried; nothing is re-run)
			}
			data, rerr := io.ReadAll(rc)
			rc.Close()
			if rerr != nil {
				rs.CheckpointFallbacks++
				continue
			}
			plan, meta, perr := e.parseCheckpoint(data)
			if perr != nil || !meta.sliced || meta.partition != p {
				rs.CheckpointFallbacks++
				continue
			}
			resolved[p] = &sliceLoad{plan: plan, epoch: meta.epoch, gen: ck.Gen}
			missing--
		}
	}

	perPartEpoch := make([]uint64, P)
	if missing == 0 {
		// Slices validate against the engine (unknown tables, duplicate
		// keys) at parse time; partitions are key-disjoint, so the plans
		// compose.
		for p := 0; p < P; p++ {
			e.applyCheckpointPlan(resolved[p].plan)
			perPartEpoch[p] = resolved[p].epoch
			if resolved[p].gen > rs.CheckpointGen {
				rs.CheckpointGen = resolved[p].gen
			}
			if p == 0 || resolved[p].epoch < rs.CheckpointEpoch {
				rs.CheckpointEpoch = resolved[p].epoch
			}
		}
		rs.CheckpointLoaded = true
	} else if load != nil {
		// No usable generation for at least one partition (none taken yet,
		// or a double fault ate every copy of some slice): degrade to
		// initial load plus full-log replay for everyone. Partial initial
		// loads cannot be expressed through the load callback, and mixing
		// them with slice state would be exactly the silent partial load
		// the format forbids.
		if err := load(); err != nil {
			return err
		}
	}

	readers := make([]io.Reader, m.Streams)
	for i := 0; i < m.Streams; i++ {
		var image []byte
		for _, sg := range m.Segments {
			if sg.Stream != i {
				continue
			}
			rc, err := store.OpenSegment(sg.Name)
			if err != nil {
				continue //next700:allowretry(degraded replay: a missing segment contributes an empty stream; the scan advances)
			}
			data, err := io.ReadAll(rc)
			rc.Close()
			if err != nil {
				return fmt.Errorf("core: recovery segment %s: %w", sg.Name, err)
			}
			clean, err := wal.SealSegment(data, sg.ToEpoch)
			if err != nil {
				return fmt.Errorf("core: recovery segment %s: %w", sg.Name, err)
			}
			image = append(image, clean...)
		}
		readers[i] = bytes.NewReader(image)
	}

	versions := make(recordVersion)
	st, err := wal.ReplayStreamsPartitioned(readers, func(stream int, cr *wal.CommitRecord) error {
		if stream < P && cr.Epoch <= perPartEpoch[stream] {
			rs.SkippedOldEpoch++
			return nil
		}
		return e.applyValueRecordPartition(cr, stream, versions, rs)
	})
	rs.Bytes, rs.TornBytes, rs.CorruptTailRecords = st.Bytes, st.TornBytes, st.CorruptTailRecords
	rs.Streams, rs.FrontierEpoch, rs.TruncatedRecords = st.Streams, st.Frontier, st.TruncatedRecords
	rs.MaxEpoch = st.MaxEpoch
	rs.StreamFrontiers = append([]uint64(nil), st.StreamFrontiers...)
	if err != nil {
		return err
	}

	base := rs.MaxEpoch
	for _, ep := range perPartEpoch {
		if ep > base {
			base = ep
		}
	}
	e.logs.RaiseEpoch(base)

	// Seal inherited actives at each stream's own frontier: the per-stream
	// truncation decision is what keeps a partition's never-acknowledged
	// suffix dead across every later recovery.
	return e.sealInheritedSegments(store, att, func(stream int) uint64 {
		if stream < len(st.StreamFrontiers) {
			return st.StreamFrontiers[stream]
		}
		return 0
	}, rs)
}

package core

// Regression tests for the abort-class taxonomy the abortclass analyzer
// enforces statically: every error the engine mints must be classifiable
// with errors.Is against a package sentinel, so harness workers and retry
// policies can tell misuse from conflict from corruption.

import (
	"errors"
	"testing"

	"next700/internal/storage"
	"next700/internal/txn"
	"next700/internal/wal"
)

func TestInvalidUsageClass(t *testing.T) {
	// Config validation: a logging mode without a device.
	if _, err := Open(Config{Protocol: "SILO", Threads: 1, LogMode: wal.ModeValue}); !errors.Is(err, ErrInvalidUsage) {
		t.Fatalf("Open with LogMode but no LogDevice = %v, want ErrInvalidUsage", err)
	}

	e := openEngine(t, Config{Protocol: "SILO", Threads: 1})
	tbl := kvTable(t, e, "kv", IndexHash, 4)

	if err := e.NewTx(0, 1).RunProc(99, nil); !errors.Is(err, ErrInvalidUsage) {
		t.Fatalf("unknown proc = %v, want ErrInvalidUsage", err)
	}
	if err := e.NewTx(0, 2).Run(func(tx *Tx) error {
		bad := make(storage.Row, tbl.Schema().RowSize()+1)
		return tx.Insert(tbl, 100, bad)
	}); !errors.Is(err, ErrInvalidUsage) {
		t.Fatalf("insert with wrong row size = %v, want ErrInvalidUsage", err)
	}
	if err := e.NewTx(0, 3).Run(func(tx *Tx) error {
		_, err := tx.LookupIndex(tbl, "nope", 1)
		return err
	}); !errors.Is(err, ErrInvalidUsage) {
		t.Fatalf("lookup on missing index = %v, want ErrInvalidUsage", err)
	}
	if err := e.RegisterProc(0, func(tx *Tx, params []byte) error { return nil }); !errors.Is(err, ErrInvalidUsage) {
		t.Fatalf("proc id 0 = %v, want ErrInvalidUsage", err)
	}
}

func TestLoadDuplicateClass(t *testing.T) {
	e := openEngine(t, Config{Protocol: "SILO", Threads: 1})
	tbl := kvTable(t, e, "kv", IndexHash, 4) // loads keys 0..3
	if err := e.Load(tbl, 0, tbl.Schema().NewRow()); !errors.Is(err, txn.ErrDuplicate) {
		t.Fatalf("duplicate load = %v, want txn.ErrDuplicate", err)
	}
}

// TestRecoveryUnknownTableIsCorruption replays a healthy log into an engine
// whose schema lost the logged table: the log and the schema diverged, which
// is classified as log corruption.
func TestRecoveryUnknownTableIsCorruption(t *testing.T) {
	dev := &memDevice{}
	e := openEngine(t, Config{Protocol: "SILO", Threads: 1, LogMode: wal.ModeValue, LogDevice: dev})
	tbl := kvTable(t, e, "kv", IndexHash, 2)
	if err := e.NewTx(0, 1).Run(func(tx *Tx) error {
		row, err := tx.Update(tbl, 0)
		if err != nil {
			return err
		}
		setV(tbl, row, 42)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	e.Close()

	e2 := openEngine(t, Config{Protocol: "SILO", Threads: 1, LogMode: wal.ModeValue, LogDevice: &memDevice{}})
	if _, err := e2.Recover(dev.reader()); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("recovery with missing table = %v, want wal.ErrCorrupt", err)
	}
}

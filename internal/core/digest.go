package core

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"

	"next700/internal/storage"
)

// StateDigest returns a canonical SHA-256 digest of all live table state:
// for every table in name order, every live (key, row image) pair in key
// order. Record IDs, index layout, and partition assignment are deliberately
// excluded — the digest captures logical database state, so two engines that
// executed the same transactions reach the same digest regardless of worker
// count or allocation order. This is the oracle deterministic execution is
// judged by: same seed, same batches ⇒ byte-identical digests.
//
// The engine must be quiescent; StateDigest reads rows without concurrency
// control.
//
//next700:locked(Engine.mu: verification-only digest; the engine is quiescent by contract when this runs)
func (e *Engine) StateDigest() [sha256.Size]byte {
	e.mu.RLock()
	names := make([]string, 0, len(e.tables))
	for name := range e.tables {
		names = append(names, name)
	}
	tables := make([]*Table, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		tables = append(tables, e.tables[name])
	}
	e.mu.RUnlock()

	h := sha256.New()
	var scratch [8]byte
	var keys []uint64
	var rids []storage.RecordID
	for i, t := range tables {
		keys = keys[:0]
		rids = rids[:0]
		t.primary.Iterate(func(key uint64, rid storage.RecordID) bool {
			if t.tbl.IsTombstoned(rid) {
				return true
			}
			keys = append(keys, key)
			rids = append(rids, rid)
			return true
		})
		// Key-sort so hash-index iteration order cannot leak into the
		// digest (the B+ tree already iterates in key order; the hash index
		// does not).
		sort.Sort(&keyRIDSort{keys: keys, rids: rids})
		h.Write([]byte(names[i]))
		for j, key := range keys {
			binary.LittleEndian.PutUint64(scratch[:], key)
			h.Write(scratch[:])
			h.Write(t.tbl.Row(rids[j]))
		}
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// keyRIDSort sorts parallel key/rid slices by key.
type keyRIDSort struct {
	keys []uint64
	rids []storage.RecordID
}

func (s *keyRIDSort) Len() int           { return len(s.keys) }
func (s *keyRIDSort) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *keyRIDSort) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.rids[i], s.rids[j] = s.rids[j], s.rids[i]
}

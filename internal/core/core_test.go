package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"sync"
	"testing"
	"time"

	"next700/internal/cc"
	"next700/internal/storage"
	"next700/internal/txn"
	"next700/internal/wal"
)

// memDevice is an in-memory wal.Device for recovery tests.
type memDevice struct {
	mu   sync.Mutex
	data []byte
}

func (d *memDevice) Write(p []byte) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.data = append(d.data, p...)
	return len(p), nil
}

func (d *memDevice) Sync() error { return nil }

func (d *memDevice) bytes() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]byte(nil), d.data...)
}

func (d *memDevice) reader() *bytes.Reader {
	d.mu.Lock()
	defer d.mu.Unlock()
	return bytes.NewReader(append([]byte(nil), d.data...))
}

func openEngine(t testing.TB, cfg Config) *Engine {
	t.Helper()
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// kvTable creates a simple key->int64 table loaded with n zero rows.
func kvTable(t testing.TB, e *Engine, name string, kind IndexKind, n int) *Table {
	t.Helper()
	sch := storage.MustSchema(name, storage.I64("v"))
	tbl, err := e.CreateTable(sch, kind)
	if err != nil {
		t.Fatal(err)
	}
	row := sch.NewRow()
	for i := 0; i < n; i++ {
		sch.SetInt64(row, 0, 0)
		if err := e.Load(tbl, uint64(i), row); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func getV(tbl *Table, row storage.Row) int64    { return tbl.Schema().GetInt64(row, 0) }
func setV(tbl *Table, row storage.Row, v int64) { tbl.Schema().SetInt64(row, 0, v) }

func forAllProtocols(t *testing.T, fn func(t *testing.T, protocol string)) {
	for _, p := range cc.Names() {
		t.Run(p, func(t *testing.T) { fn(t, p) })
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Open(Config{Protocol: "NOPE"}); err == nil {
		t.Fatal("bad protocol accepted")
	}
	if _, err := Open(Config{LogMode: wal.ModeValue}); err == nil {
		t.Fatal("logging without device accepted")
	}
	e := openEngine(t, Config{})
	if e.Protocol() != "SILO" {
		t.Fatalf("default protocol %q", e.Protocol())
	}
	if e.Config().Threads != 1 {
		t.Fatal("default threads")
	}
}

func TestEngineCRUD(t *testing.T) {
	forAllProtocols(t, func(t *testing.T, protocol string) {
		e := openEngine(t, Config{Protocol: protocol, Threads: 2, Partitions: 4})
		tbl := kvTable(t, e, "kv", IndexHash, 10)
		tx := e.NewTx(0, 1)

		// Update.
		if err := tx.Run(func(tx *Tx) error {
			row, err := tx.Update(tbl, 3)
			if err != nil {
				return err
			}
			setV(tbl, row, 42)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		// Read back.
		if err := tx.Run(func(tx *Tx) error {
			row, err := tx.Read(tbl, 3)
			if err != nil {
				return err
			}
			if getV(tbl, row) != 42 {
				t.Fatalf("read %d", getV(tbl, row))
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		// Insert + read.
		if err := tx.Run(func(tx *Tx) error {
			row := tbl.Schema().NewRow()
			setV(tbl, row, 77)
			return tx.Insert(tbl, 100, row)
		}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Run(func(tx *Tx) error {
			row, err := tx.Read(tbl, 100)
			if err != nil {
				return err
			}
			if getV(tbl, row) != 77 {
				t.Fatalf("inserted value %d", getV(tbl, row))
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		// Duplicate insert fails.
		err := tx.Run(func(tx *Tx) error {
			return tx.Insert(tbl, 100, tbl.Schema().NewRow())
		})
		if !errors.Is(err, txn.ErrDuplicate) {
			t.Fatalf("duplicate insert: %v", err)
		}
		// Delete, then reads miss.
		if err := tx.Run(func(tx *Tx) error { return tx.Delete(tbl, 100) }); err != nil {
			t.Fatal(err)
		}
		err = tx.Run(func(tx *Tx) error {
			_, err := tx.Read(tbl, 100)
			return err
		})
		if !errors.Is(err, txn.ErrNotFound) {
			t.Fatalf("deleted key read: %v", err)
		}
		// Missing key.
		err = tx.Run(func(tx *Tx) error {
			_, err := tx.Read(tbl, 9999)
			return err
		})
		if !errors.Is(err, txn.ErrNotFound) {
			t.Fatalf("missing key read: %v", err)
		}
	})
}

func TestEngineBankInvariant(t *testing.T) {
	forAllProtocols(t, func(t *testing.T, protocol string) {
		const workers = 6
		const accounts = 20
		const initial = 500
		e := openEngine(t, Config{Protocol: protocol, Threads: workers, Partitions: 4})
		tbl := kvTable(t, e, "acct", IndexHash, 0)
		sch := tbl.Schema()
		row := sch.NewRow()
		for i := 0; i < accounts; i++ {
			sch.SetInt64(row, 0, initial)
			if err := e.Load(tbl, uint64(i), row); err != nil {
				t.Fatal(err)
			}
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				tx := e.NewTx(w, uint64(w+1))
				for i := 0; i < 300; i++ {
					from := tx.RNG().Uint64n(accounts)
					to := tx.RNG().Uint64n(accounts)
					if from == to {
						continue
					}
					amt := int64(tx.RNG().Intn(20) + 1)
					if err := tx.Run(func(tx *Tx) error {
						fr, err := tx.Update(tbl, from)
						if err != nil {
							return err
						}
						tr, err := tx.Update(tbl, to)
						if err != nil {
							return err
						}
						setV(tbl, fr, getV(tbl, fr)-amt)
						setV(tbl, tr, getV(tbl, tr)+amt)
						return nil
					}); err != nil {
						t.Error(err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		tx := e.NewTx(0, 99)
		var total int64
		if err := tx.Run(func(tx *Tx) error {
			total = 0
			for i := 0; i < accounts; i++ {
				row, err := tx.Read(tbl, uint64(i))
				if err != nil {
					return err
				}
				total += getV(tbl, row)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if total != accounts*initial {
			t.Fatalf("invariant broken: %d != %d", total, accounts*initial)
		}
	})
}

func TestEngineScan(t *testing.T) {
	forAllProtocols(t, func(t *testing.T, protocol string) {
		e := openEngine(t, Config{Protocol: protocol, Threads: 1, Partitions: 2})
		tbl := kvTable(t, e, "kv", IndexBTree, 0)
		sch := tbl.Schema()
		row := sch.NewRow()
		for i := 0; i < 100; i++ {
			sch.SetInt64(row, 0, int64(i*10))
			if err := e.Load(tbl, uint64(i), row); err != nil {
				t.Fatal(err)
			}
		}
		tx := e.NewTx(0, 1)
		// Ascending scan with values.
		if err := tx.Run(func(tx *Tx) error {
			var keys []uint64
			err := tx.Scan(tbl, 10, 20, func(key uint64, row storage.Row) bool {
				keys = append(keys, key)
				if getV(tbl, row) != int64(key*10) {
					t.Fatalf("key %d has value %d", key, getV(tbl, row))
				}
				return true
			})
			if err != nil {
				return err
			}
			if len(keys) != 11 || keys[0] != 10 || keys[10] != 20 {
				t.Fatalf("scan keys %v", keys)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		// Descending.
		if err := tx.Run(func(tx *Tx) error {
			var keys []uint64
			err := tx.ScanDesc(tbl, 95, 200, func(key uint64, _ storage.Row) bool {
				keys = append(keys, key)
				return len(keys) < 3
			})
			if err != nil {
				return err
			}
			if len(keys) != 3 || keys[0] != 99 || keys[2] != 97 {
				t.Fatalf("desc scan keys %v", keys)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		// Deleted rows are skipped.
		if err := tx.Run(func(tx *Tx) error { return tx.Delete(tbl, 15) }); err != nil {
			t.Fatal(err)
		}
		if err := tx.Run(func(tx *Tx) error {
			count := 0
			err := tx.Scan(tbl, 10, 20, func(uint64, storage.Row) bool {
				count++
				return true
			})
			if count != 10 {
				t.Fatalf("deleted row not skipped: %d", count)
			}
			return err
		}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestSecondaryIndex(t *testing.T) {
	e := openEngine(t, Config{Protocol: "SILO", Threads: 1})
	sch := storage.MustSchema("users", storage.I64("group"), storage.Str("name", 8))
	tbl, err := e.CreateTable(sch, IndexHash)
	if err != nil {
		t.Fatal(err)
	}
	// Secondary: by (group, pk) — a non-unique index modeled with pk in
	// the low bits.
	if err := e.AddIndex(tbl, "by_group", IndexBTree,
		func(s *storage.Schema, row storage.Row, pk uint64) uint64 {
			return uint64(s.GetInt64(row, 0))<<32 | pk
		}); err != nil {
		t.Fatal(err)
	}
	row := sch.NewRow()
	for i := 0; i < 10; i++ {
		sch.SetInt64(row, 0, int64(i%3)) // groups 0,1,2
		sch.SetString(row, 1, []byte("u"))
		if err := e.Load(tbl, uint64(i), row); err != nil {
			t.Fatal(err)
		}
	}
	tx := e.NewTx(0, 1)
	// Scan group 1: keys 1, 4, 7.
	if err := tx.Run(func(tx *Tx) error {
		var pks []uint64
		err := tx.ScanIndex(tbl, "by_group", 1<<32, 2<<32-1, false,
			func(ik uint64, _ storage.Row) bool {
				pks = append(pks, ik&0xFFFFFFFF)
				return true
			})
		if err != nil {
			return err
		}
		if len(pks) != 3 || pks[0] != 1 || pks[1] != 4 || pks[2] != 7 {
			t.Fatalf("group scan pks %v", pks)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Insert into group 1, rescan includes it; delete removes it.
	if err := tx.Run(func(tx *Tx) error {
		sch.SetInt64(row, 0, 1)
		sch.SetString(row, 1, []byte("new"))
		return tx.Insert(tbl, 50, row)
	}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Run(func(tx *Tx) error { return tx.Delete(tbl, 4) }); err != nil {
		t.Fatal(err)
	}
	if err := tx.Run(func(tx *Tx) error {
		var pks []uint64
		tx.ScanIndex(tbl, "by_group", 1<<32, 2<<32-1, false,
			func(ik uint64, _ storage.Row) bool {
				pks = append(pks, ik&0xFFFFFFFF)
				return true
			})
		if len(pks) != 3 || pks[0] != 1 || pks[1] != 7 || pks[2] != 50 {
			t.Fatalf("after insert+delete: %v", pks)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// LookupIndex point access.
	if err := tx.Run(func(tx *Tx) error {
		row, err := tx.LookupIndex(tbl, "by_group", 1<<32|50)
		if err != nil {
			return err
		}
		if string(sch.GetString(row, 1)) != "new" {
			t.Fatalf("lookup wrong row")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Unknown index errors.
	if err := tx.Run(func(tx *Tx) error {
		_, err := tx.LookupIndex(tbl, "nope", 1)
		return err
	}); err == nil {
		t.Fatal("unknown index accepted")
	}
}

func TestAbortedInsertInvisibleAndKeyReusable(t *testing.T) {
	forAllProtocols(t, func(t *testing.T, protocol string) {
		e := openEngine(t, Config{Protocol: protocol, Threads: 1, Partitions: 2})
		tbl := kvTable(t, e, "kv", IndexHash, 2)
		tx := e.NewTx(0, 1)
		err := tx.Run(func(tx *Tx) error {
			row := tbl.Schema().NewRow()
			setV(tbl, row, 5)
			if err := tx.Insert(tbl, 55, row); err != nil {
				return err
			}
			return txn.ErrUserAbort
		})
		if !errors.Is(err, txn.ErrUserAbort) {
			t.Fatal(err)
		}
		// Key is free again.
		if err := tx.Run(func(tx *Tx) error {
			_, err := tx.Read(tbl, 55)
			if !errors.Is(err, txn.ErrNotFound) {
				t.Fatalf("aborted insert visible: %v", err)
			}
			row := tbl.Schema().NewRow()
			setV(tbl, row, 7)
			return tx.Insert(tbl, 55, row)
		}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Run(func(tx *Tx) error {
			row, err := tx.Read(tbl, 55)
			if err != nil {
				return err
			}
			if getV(tbl, row) != 7 {
				t.Fatalf("reinserted value %d", getV(tbl, row))
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestValueLoggingRecovery(t *testing.T) {
	for _, protocol := range []string{"SILO", "NO_WAIT", "MVCC", "TICTOC"} {
		t.Run(protocol, func(t *testing.T) {
			dev := &memDevice{}
			build := func() (*Engine, *Table) {
				e := openEngine(t, Config{
					Protocol: protocol, Threads: 2,
					LogMode: wal.ModeValue, LogDevice: dev,
				})
				return e, kvTable(t, e, "kv", IndexHash, 10)
			}
			e, tbl := build()
			tx := e.NewTx(0, 1)
			// A mix of updates, an insert, and a delete.
			for i := 0; i < 5; i++ {
				if err := tx.Run(func(tx *Tx) error {
					row, err := tx.Update(tbl, uint64(i))
					if err != nil {
						return err
					}
					setV(tbl, row, int64(100+i))
					return nil
				}); err != nil {
					t.Fatal(err)
				}
			}
			if err := tx.Run(func(tx *Tx) error {
				row := tbl.Schema().NewRow()
				setV(tbl, row, 999)
				return tx.Insert(tbl, 77, row)
			}); err != nil {
				t.Fatal(err)
			}
			if err := tx.Run(func(tx *Tx) error { return tx.Delete(tbl, 9) }); err != nil {
				t.Fatal(err)
			}
			e.Close()

			// "Crash": rebuild a fresh engine from the deterministic load,
			// then replay the log.
			e2, tbl2 := build()
			rs, err := e2.Recover(dev.reader())
			if err != nil {
				t.Fatal(err)
			}
			if rs.Records != 7 {
				t.Fatalf("replayed %d records, want 7", rs.Records)
			}
			tx2 := e2.NewTx(0, 2)
			if err := tx2.Run(func(tx *Tx) error {
				for i := 0; i < 5; i++ {
					row, err := tx.Read(tbl2, uint64(i))
					if err != nil {
						return err
					}
					if getV(tbl2, row) != int64(100+i) {
						t.Fatalf("key %d = %d after recovery", i, getV(tbl2, row))
					}
				}
				row, err := tx.Read(tbl2, 77)
				if err != nil {
					return err
				}
				if getV(tbl2, row) != 999 {
					t.Fatalf("recovered insert value %d", getV(tbl2, row))
				}
				if _, err := tx.Read(tbl2, 9); !errors.Is(err, txn.ErrNotFound) {
					t.Fatalf("recovered delete still present: %v", err)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// addProc encodes (key, delta) and adds delta to the key's value.
func addProcParams(key uint64, delta int64) []byte {
	var b [16]byte
	binary.LittleEndian.PutUint64(b[0:], key)
	binary.LittleEndian.PutUint64(b[8:], uint64(delta))
	return b[:]
}

func registerAddProc(t *testing.T, e *Engine, tbl *Table) {
	t.Helper()
	err := e.RegisterProc(1, func(tx *Tx, params []byte) error {
		key := binary.LittleEndian.Uint64(params[0:])
		delta := int64(binary.LittleEndian.Uint64(params[8:]))
		row, err := tx.Update(tbl, key)
		if err != nil {
			return err
		}
		tbl.Schema().SetInt64(row, 0, tbl.Schema().GetInt64(row, 0)+delta)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommandLoggingRecovery(t *testing.T) {
	dev := &memDevice{}
	build := func(d *memDevice) (*Engine, *Table) {
		e := openEngine(t, Config{
			Protocol: "NO_WAIT", Threads: 1,
			LogMode: wal.ModeCommand, LogDevice: d,
		})
		tbl := kvTable(t, e, "kv", IndexHash, 4)
		registerAddProc(t, e, tbl)
		return e, tbl
	}
	e, _ := build(dev)
	tx := e.NewTx(0, 1)
	for i := 0; i < 10; i++ {
		if err := tx.RunProc(1, addProcParams(uint64(i%4), 10)); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()

	e2, tbl2 := build(&memDevice{})
	rs, err := e2.Recover(dev.reader())
	if err != nil {
		t.Fatal(err)
	}
	if rs.Procs != 10 {
		t.Fatalf("re-executed %d procs, want 10", rs.Procs)
	}
	tx2 := e2.NewTx(0, 2)
	if err := tx2.Run(func(tx *Tx) error {
		want := []int64{30, 30, 20, 20}
		for i, w := range want {
			row, err := tx.Read(tbl2, uint64(i))
			if err != nil {
				return err
			}
			if getV(tbl2, row) != w {
				t.Fatalf("key %d = %d, want %d", i, getV(tbl2, row), w)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCommandLoggingRequiresRunProc(t *testing.T) {
	e := openEngine(t, Config{
		Protocol: "NO_WAIT", Threads: 1,
		LogMode: wal.ModeCommand, LogDevice: &memDevice{},
	})
	tbl := kvTable(t, e, "kv", IndexHash, 2)
	tx := e.NewTx(0, 1)
	err := tx.Run(func(tx *Tx) error {
		row, err := tx.Update(tbl, 0)
		if err != nil {
			return err
		}
		setV(tbl, row, 1)
		return nil
	})
	if err == nil {
		t.Fatal("plain Run with command logging should fail")
	}
}

func TestHStoreDeclaredPartitions(t *testing.T) {
	e := openEngine(t, Config{Protocol: "HSTORE", Threads: 2, Partitions: 4})
	tbl := kvTable(t, e, "kv", IndexHash, 8) // keys 0..7 over partitions 0..3
	tx := e.NewTx(0, 1)
	if err := tx.Run(func(tx *Tx) error {
		if err := tx.DeclarePartitions(0, 1); err != nil {
			return err
		}
		r0, err := tx.Update(tbl, 0) // partition 0
		if err != nil {
			return err
		}
		r1, err := tx.Update(tbl, 1) // partition 1
		if err != nil {
			return err
		}
		setV(tbl, r0, 1)
		setV(tbl, r1, 2)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterProcValidation(t *testing.T) {
	e := openEngine(t, Config{})
	if err := e.RegisterProc(0, nil); err == nil {
		t.Fatal("proc id 0 accepted")
	}
	if err := e.RegisterProc(5, func(*Tx, []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterProc(5, func(*Tx, []byte) error { return nil }); err == nil {
		t.Fatal("duplicate proc accepted")
	}
	tx := e.NewTx(0, 1)
	if err := tx.RunProc(99, nil); err == nil {
		t.Fatal("unknown proc accepted")
	}
}

func TestEngineCloseIdempotent(t *testing.T) {
	e, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEpochTickerAdvances(t *testing.T) {
	e := openEngine(t, Config{EpochInterval: time.Millisecond})
	start := time.Now()
	for time.Since(start) < time.Second {
		if e.env.Epoch.Now() > 2 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("epoch did not advance")
}

func TestRecoverRequiresLogging(t *testing.T) {
	e := openEngine(t, Config{})
	if _, err := e.Recover(bytes.NewReader(nil)); err == nil {
		t.Fatal("recover without logging accepted")
	}
}

func TestLoadValidation(t *testing.T) {
	e := openEngine(t, Config{})
	tbl := kvTable(t, e, "kv", IndexHash, 1)
	if err := e.Load(tbl, 0, tbl.Schema().NewRow()); err == nil {
		t.Fatal("duplicate load key accepted")
	}
	if err := e.Load(tbl, 1, make(storage.Row, 3)); err == nil {
		t.Fatal("bad row size accepted")
	}
}

package core

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"next700/internal/cc"
	"next700/internal/storage"
	"next700/internal/txn"
	"next700/internal/wal"
)

// TestPairedWriteConsistency: writers always set records k and k+pairBase
// to the same value inside one transaction; concurrent readers must never
// observe a torn pair under any serializable protocol (and under MVCC
// snapshot isolation, whose reads are point-in-time).
func TestPairedWriteConsistency(t *testing.T) {
	const pairs = 8
	const pairBase = 1000
	configs := make([]Config, 0, len(cc.Names())+1)
	for _, p := range cc.Names() {
		configs = append(configs, Config{Protocol: p, Threads: 4, Partitions: 2})
	}
	configs = append(configs, Config{Protocol: "MVCC", Threads: 4, Isolation: cc.IsoSnapshot})

	for _, cfg := range configs {
		name := cfg.Protocol + "/" + cfg.Isolation
		t.Run(name, func(t *testing.T) {
			e := openEngine(t, cfg)
			tbl := kvTable(t, e, "kv", IndexHash, 0)
			sch := tbl.Schema()
			row := sch.NewRow()
			for k := 0; k < pairs; k++ {
				if err := e.Load(tbl, uint64(k), row); err != nil {
					t.Fatal(err)
				}
				if err := e.Load(tbl, uint64(k+pairBase), row); err != nil {
					t.Fatal(err)
				}
			}

			var wg sync.WaitGroup
			// Writers.
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					tx := e.NewTx(w, uint64(w+1))
					for i := 0; i < 400; i++ {
						k := tx.RNG().Uint64n(pairs)
						v := int64(tx.RNG().Uint64n(1 << 30))
						if err := tx.Run(func(tx *Tx) error {
							a, err := tx.Update(tbl, k)
							if err != nil {
								return err
							}
							b, err := tx.Update(tbl, k+pairBase)
							if err != nil {
								return err
							}
							setV(tbl, a, v)
							setV(tbl, b, v)
							return nil
						}); err != nil {
							t.Error(err)
							return
						}
					}
				}(w)
			}
			// Readers: check pair agreement.
			for r := 0; r < 2; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					tx := e.NewTx(2+r, uint64(100+r))
					for i := 0; i < 400; i++ {
						k := tx.RNG().Uint64n(pairs)
						var va, vb int64
						if err := tx.Run(func(tx *Tx) error {
							a, err := tx.Read(tbl, k)
							if err != nil {
								return err
							}
							va = getV(tbl, a)
							b, err := tx.Read(tbl, k+pairBase)
							if err != nil {
								return err
							}
							vb = getV(tbl, b)
							return nil
						}); err != nil {
							t.Error(err)
							return
						}
						if va != vb {
							t.Errorf("torn pair at %d: %d != %d", k, va, vb)
							return
						}
					}
				}(r)
			}
			wg.Wait()
		})
	}
}

// failingDevice writes successfully until the byte budget runs out, then
// fails — simulating a disk that dies mid-run.
type failingDevice struct {
	mu     sync.Mutex
	data   []byte
	budget int
}

func (d *failingDevice) Write(p []byte) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.data)+len(p) > d.budget {
		// Take a partial prefix (torn write), then fail.
		room := d.budget - len(d.data)
		if room > 0 {
			d.data = append(d.data, p[:room]...)
		}
		return room, errors.New("disk died")
	}
	d.data = append(d.data, p...)
	return len(p), nil
}

func (d *failingDevice) Sync() error { return nil }

// TestCrashMidRunRecoverPrefix: the log device dies mid-run; recovery must
// replay the durable prefix with every commit record applied atomically
// (paired entries inside one record never tear).
func TestCrashMidRunRecoverPrefix(t *testing.T) {
	const pairBase = 100
	dev := &failingDevice{budget: 4096}
	e, err := Open(Config{Protocol: "NO_WAIT", Threads: 1, LogMode: wal.ModeValue, LogDevice: dev})
	if err != nil {
		t.Fatal(err)
	}
	tbl := kvTable(t, e, "kv", IndexHash, 0)
	sch := tbl.Schema()
	row := sch.NewRow()
	for k := 0; k < 4; k++ {
		e.Load(tbl, uint64(k), row)
		e.Load(tbl, uint64(k+pairBase), row)
	}
	tx := e.NewTx(0, 3)
	sawFailure := false
	for i := 0; i < 500 && !sawFailure; i++ {
		k := uint64(i % 4)
		v := int64(i + 1)
		err := tx.Run(func(tx *Tx) error {
			a, err := tx.Update(tbl, k)
			if err != nil {
				return err
			}
			b, err := tx.Update(tbl, k+pairBase)
			if err != nil {
				return err
			}
			setV(tbl, a, v)
			setV(tbl, b, v)
			return nil
		})
		if err != nil {
			sawFailure = true // the disk died; stop issuing work
		}
	}
	e.Close()
	if !sawFailure {
		t.Fatal("device never failed; raise the workload or lower the budget")
	}

	// Recover from the durable prefix.
	e2 := openEngine(t, Config{Protocol: "NO_WAIT", Threads: 1, LogMode: wal.ModeValue, LogDevice: &memDevice{}})
	tbl2 := kvTable(t, e2, "kv", IndexHash, 0)
	sch2 := tbl2.Schema()
	row2 := sch2.NewRow()
	for k := 0; k < 4; k++ {
		e2.Load(tbl2, uint64(k), row2)
		e2.Load(tbl2, uint64(k+pairBase), row2)
	}
	st, err := e2.Recover(bytes.NewReader(dev.data))
	if err != nil {
		t.Fatal(err)
	}
	if st.Records == 0 {
		t.Fatal("nothing recovered from durable prefix")
	}
	// Every pair must agree (atomic per-record replay).
	tx2 := e2.NewTx(0, 4)
	if err := tx2.Run(func(tx *Tx) error {
		for k := uint64(0); k < 4; k++ {
			a, err := tx.Read(tbl2, k)
			if err != nil {
				return err
			}
			b, err := tx.Read(tbl2, k+pairBase)
			if err != nil {
				return err
			}
			if getV(tbl2, a) != getV(tbl2, b) {
				t.Fatalf("recovered torn pair at %d: %d != %d",
					k, getV(tbl2, a), getV(tbl2, b))
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentInsertDeleteStress: index and tombstone bookkeeping stays
// coherent under concurrent inserts, deletes, and re-inserts of
// overlapping keys.
func TestConcurrentInsertDeleteStress(t *testing.T) {
	for _, protocol := range []string{"NO_WAIT", "SILO", "MVCC"} {
		t.Run(protocol, func(t *testing.T) {
			const workers = 4
			e := openEngine(t, Config{Protocol: protocol, Threads: workers})
			tbl := kvTable(t, e, "kv", IndexHash, 0)
			sch := tbl.Schema()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					tx := e.NewTx(w, uint64(w+1))
					row := sch.NewRow()
					for i := 0; i < 300; i++ {
						key := tx.RNG().Uint64n(64)
						switch tx.RNG().Intn(3) {
						case 0:
							tx.Run(func(tx *Tx) error {
								setV2(sch, row, int64(key))
								err := tx.Insert(tbl, key, row)
								if errors.Is(err, txn.ErrDuplicate) {
									return nil // someone else holds the key
								}
								return err
							})
						case 1:
							tx.Run(func(tx *Tx) error {
								err := tx.Delete(tbl, key)
								if errors.Is(err, txn.ErrNotFound) {
									return nil
								}
								return err
							})
						default:
							tx.Run(func(tx *Tx) error {
								row, err := tx.Read(tbl, key)
								if errors.Is(err, txn.ErrNotFound) {
									return nil
								}
								if err != nil {
									return err
								}
								if got := sch.GetInt64(row, 0); got != int64(key) {
									t.Errorf("key %d has value %d", key, got)
								}
								return nil
							})
						}
					}
				}(w)
			}
			wg.Wait()
			// Post-condition: every present key reads back its own value,
			// index length matches reachable records.
			tx := e.NewTx(0, 99)
			present := 0
			if err := tx.Run(func(tx *Tx) error {
				present = 0
				for key := uint64(0); key < 64; key++ {
					row, err := tx.Read(tbl, key)
					if errors.Is(err, txn.ErrNotFound) {
						continue
					}
					if err != nil {
						return err
					}
					present++
					if got := sch.GetInt64(row, 0); got != int64(key) {
						t.Fatalf("final: key %d has value %d", key, got)
					}
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if tbl.PrimaryLen() != present {
				t.Fatalf("index len %d but %d readable keys", tbl.PrimaryLen(), present)
			}
		})
	}
}

func setV2(sch *storage.Schema, row storage.Row, v int64) { sch.SetInt64(row, 0, v) }

package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"next700/internal/storage"
	"next700/internal/txn"
)

// TestAddIndexBackfill: AddIndex after Load must index the existing rows
// (it used to come up silently empty), skipping tombstones.
func TestAddIndexBackfill(t *testing.T) {
	e := openEngine(t, Config{Protocol: "SILO", Threads: 1})
	tbl := kvTable(t, e, "bf", IndexHash, 10)
	tx := e.NewTx(0, 1)
	if err := tx.Run(func(tx *Tx) error { return tx.Delete(tbl, 3) }); err != nil {
		t.Fatal(err)
	}

	if err := e.AddIndex(tbl, "mirror", IndexBTree,
		func(_ *storage.Schema, _ storage.Row, pk uint64) uint64 { return pk + 100 }); err != nil {
		t.Fatal(err)
	}
	if err := tx.Run(func(tx *Tx) error {
		for k := uint64(0); k < 10; k++ {
			row, err := tx.LookupIndex(tbl, "mirror", k+100)
			if k == 3 {
				if !errors.Is(err, txn.ErrNotFound) {
					return fmt.Errorf("deleted pk 3 present in backfilled index: %v", err)
				}
				continue
			}
			if err != nil {
				return fmt.Errorf("pk %d missing from backfilled index: %v", k, err)
			}
			_ = row
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// A unique-key conflict during backfill must surface as an error, not a
	// silently partial index.
	err := e.AddIndex(tbl, "collide", IndexHash,
		func(_ *storage.Schema, _ storage.Row, _ uint64) uint64 { return 7 })
	if err == nil {
		t.Fatal("duplicate-key backfill succeeded; want error")
	}
}

// TestScanScratchTrim: a huge scan must not pin its scratch capacity on the
// Tx forever, while small scans keep reusing theirs.
func TestScanScratchTrim(t *testing.T) {
	e := openEngine(t, Config{Protocol: "SILO", Threads: 1})
	const rows = maxRetainedScanCap + 1000
	tbl := kvTable(t, e, "big", IndexBTree, rows)
	tx := e.NewTx(0, 1)

	scan := func(lo, hi uint64) int {
		n := 0
		if err := tx.Run(func(tx *Tx) error {
			return tx.Scan(tbl, lo, hi, func(uint64, storage.Row) bool { n++; return true })
		}); err != nil {
			t.Fatal(err)
		}
		return n
	}

	if got := scan(0, 99); got != 100 {
		t.Fatalf("small scan saw %d rows", got)
	}
	smallCap := cap(tx.scanKeys)
	if smallCap == 0 || smallCap > maxRetainedScanCap {
		t.Fatalf("small scan retained cap %d, want (0, %d]", smallCap, maxRetainedScanCap)
	}
	if got := scan(0, 99); got != 100 {
		t.Fatalf("second small scan saw %d rows", got)
	}
	if cap(tx.scanKeys) != smallCap {
		t.Fatalf("small-scan scratch not reused: cap %d -> %d", smallCap, cap(tx.scanKeys))
	}

	if got := scan(0, rows); got != rows {
		t.Fatalf("big scan saw %d rows, want %d", got, rows)
	}
	if cap(tx.scanKeys) != 0 || cap(tx.scanRIDs) != 0 {
		t.Fatalf("huge scan scratch retained: caps %d/%d, want released",
			cap(tx.scanKeys), cap(tx.scanRIDs))
	}
}

// TestTxReuseImageStability: a row image handed to the transaction body
// must stay intact for the whole body even though the reused Tx recycles
// its arena and access slots across transactions — later reads and writes
// within the same transaction must not scribble over it.
func TestTxReuseImageStability(t *testing.T) {
	forAllProtocols(t, func(t *testing.T, protocol string) {
		e := openEngine(t, Config{Protocol: protocol, Threads: 1})
		tbl := kvTable(t, e, "alias", IndexHash, 16)
		tx := e.NewTx(0, 99)
		for round := int64(1); round <= 50; round++ {
			if err := tx.Run(func(tx *Tx) error {
				row, err := tx.Read(tbl, 0)
				if err != nil {
					return err
				}
				if got := getV(tbl, row); got != round-1 {
					return fmt.Errorf("round %d: key 0 reads %d", round, got)
				}
				snap := append([]byte(nil), row...)
				// Churn the arena: read and update every other key.
				for k := uint64(1); k < 16; k++ {
					r, err := tx.Update(tbl, k)
					if err != nil {
						return err
					}
					setV(tbl, r, round*100+int64(k))
				}
				if !bytes.Equal([]byte(row), snap) {
					return fmt.Errorf("round %d: key 0 image mutated under the body", round)
				}
				// Finally write key 0 so the next round observes the bump.
				r, err := tx.Update(tbl, 0)
				if err != nil {
					return err
				}
				setV(tbl, r, round)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		// Committed state reflects the last round for every key.
		if err := tx.Run(func(tx *Tx) error {
			for k := uint64(1); k < 16; k++ {
				row, err := tx.Read(tbl, k)
				if err != nil {
					return err
				}
				if got := getV(tbl, row); got != 50*100+int64(k) {
					return fmt.Errorf("key %d committed %d", k, got)
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	})
}

package core

import (
	"errors"
	"fmt"
	"sync"

	"next700/internal/det"
	"next700/internal/txn"
	"next700/internal/wal"
)

// DetExecFunc executes one planned operation inside a fragment's
// transaction context. The workload layer supplies it (the engine knows
// queues and commits, not table semantics). Implementations must be pure
// functions of (engine state, op, mailbox) — no randomness, no clocks —
// or determinism is lost.
type DetExecFunc func(tx *Tx, op det.Op, mb *det.Mailbox) error

// Deterministic-execution limits: the replay-ordered commit ID packs
// (batch, txn, partition) into 64 bits as batch<<24 | txn<<8 | partition,
// so IDs stay unique and, per record, monotone in priority order — which is
// exactly what value-replay's applied-if-newer filter needs.
const (
	maxDetBatchTxns  = 1 << 16
	maxDetPartitions = 1 << 8
)

// detID is the deterministic commit ID for transaction txnIdx's fragment on
// partition part in batch batchNo.
func detID(batchNo uint64, txnIdx int32, part int) uint64 {
	return batchNo<<24 | uint64(uint32(txnIdx))<<8 | uint64(part)
}

// ErrDetBatchFailed is the terminal class for a deterministic batch that
// could not complete (dead log device, canceled plan, workload error).
// Deterministic execution has no conflict aborts to retry; any failure
// leaves the batch partially applied in memory and the engine should be
// treated as crashed (recover from the log, which truncates to the last
// complete batch epoch).
var ErrDetBatchFailed = errors.New("core: deterministic batch failed")

// DetBatchResult reports one executed batch.
type DetBatchResult struct {
	// Committed is the number of transactions that committed (all of them,
	// on success — deterministic execution is abort-free).
	Committed int
	// Epoch is the WAL epoch the batch sealed (parallel WAL only): batch
	// boundaries map 1:1 onto epoch boundaries, so the durable frontier is
	// always a whole number of batches.
	Epoch uint64
	// DurableLSN is the batch's high-water LSN (single-stream WAL only).
	DurableLSN uint64
}

// DetExecutor drives queue-oriented deterministic execution against an
// engine opened with Protocol "QSTORE": one long-lived goroutine per
// partition drains that partition's priority-ordered queue, fragments
// commit through the pass-through protocol with replay-ordered IDs, and the
// whole batch becomes durable as one WAL epoch. Execution is equivalent to
// running the batch serially in priority order — for any partition count —
// which is what the determinism oracles (same digest across worker counts)
// verify.
type DetExecutor struct {
	e     *Engine
	parts int
	exec  DetExecFunc
	txs   []*Tx

	batchNo uint64
	plan    *det.Plan
	// epochs/lsns/errs are per-partition outputs of the current batch,
	// indexed by partition; each slot is owned by one executor goroutine
	// between wg.Add and wg.Done.
	epochs []uint64
	lsns   []uint64
	errs   []error

	wg    sync.WaitGroup
	start []chan struct{}
	stop  chan struct{}
	join  sync.WaitGroup
}

// NewDetExecutor builds the executor and starts its partition goroutines.
// The engine must use the QSTORE protocol, have at least as many worker
// slots as partitions, and — when logging through a parallel WAL — use an
// immediate group-commit window (0), so that epochs advance only at batch
// boundaries and the frontier maps 1:1 onto batches. Close stops the
// goroutines; the engine outlives the executor.
func NewDetExecutor(e *Engine, exec DetExecFunc) (*DetExecutor, error) {
	if e.Protocol() != "QSTORE" {
		return nil, fmt.Errorf("core: deterministic execution requires the QSTORE protocol, engine has %s: %w",
			e.Protocol(), ErrInvalidUsage)
	}
	parts := e.cfg.Partitions
	if parts > maxDetPartitions {
		return nil, fmt.Errorf("core: deterministic execution supports at most %d partitions, have %d: %w",
			maxDetPartitions, parts, ErrInvalidUsage)
	}
	if e.cfg.Threads < parts {
		return nil, fmt.Errorf("core: deterministic execution needs Threads >= Partitions (%d < %d): %w",
			e.cfg.Threads, parts, ErrInvalidUsage)
	}
	if e.logs != nil && e.cfg.GroupCommitWindow != 0 {
		return nil, fmt.Errorf("core: deterministic execution on a parallel WAL requires GroupCommitWindow=0 "+
			"(epochs must advance only at batch boundaries): %w", ErrInvalidUsage)
	}
	if e.cfg.LogMode == wal.ModeCommand {
		return nil, fmt.Errorf("core: deterministic execution requires value logging or none "+
			"(fragments are not stored procedures): %w", ErrInvalidUsage)
	}
	x := &DetExecutor{
		e:      e,
		parts:  parts,
		exec:   exec,
		txs:    make([]*Tx, parts),
		epochs: make([]uint64, parts),
		lsns:   make([]uint64, parts),
		errs:   make([]error, parts),
		start:  make([]chan struct{}, parts),
		stop:   make(chan struct{}),
	}
	for p := 0; p < parts; p++ {
		x.txs[p] = e.NewTx(p, uint64(p)+1)
		x.start[p] = make(chan struct{})
		x.join.Add(1)
		go x.partitionLoop(p)
	}
	return x, nil
}

// Close stops the partition goroutines. Must not race an ExecuteBatch.
func (x *DetExecutor) Close() {
	close(x.stop)
	x.join.Wait()
}

// Parts returns the partition (executor) count.
func (x *DetExecutor) Parts() int { return x.parts }

// partitionLoop parks until a batch start signal, drains the partition's
// queue, and reports through wg.
func (x *DetExecutor) partitionLoop(p int) {
	defer x.join.Done()
	for {
		select {
		case <-x.stop:
			return
		case <-x.start[p]:
			x.errs[p] = x.drain(p)
			x.wg.Done()
		}
	}
}

// ExecuteBatch runs one compiled batch to completion and waits for its
// durability. On success every transaction in the batch committed; on error
// the in-memory state is partially applied and only recovery from the log
// (which truncates to the last complete batch epoch) yields a consistent
// state again.
func (x *DetExecutor) ExecuteBatch(plan *det.Plan) (DetBatchResult, error) {
	if plan.Txns > maxDetBatchTxns {
		return DetBatchResult{}, fmt.Errorf("core: deterministic batch of %d txns exceeds the %d limit: %w",
			plan.Txns, maxDetBatchTxns, ErrInvalidUsage)
	}
	if len(plan.Queues) != x.parts {
		return DetBatchResult{}, fmt.Errorf("core: plan has %d partitions, executor has %d: %w",
			len(plan.Queues), x.parts, ErrInvalidUsage)
	}
	x.batchNo++
	x.plan = plan
	for p := 0; p < x.parts; p++ {
		x.epochs[p], x.lsns[p], x.errs[p] = 0, 0, nil
	}
	x.wg.Add(x.parts)
	for p := 0; p < x.parts; p++ {
		x.start[p] <- struct{}{}
	}
	x.wg.Wait() // barrier: every partition drained its queue (bounded by the batch's finite op count)
	var res DetBatchResult
	for p := 0; p < x.parts; p++ {
		if x.errs[p] != nil {
			return res, fmt.Errorf("%w: partition %d: %w", ErrDetBatchFailed, p, x.errs[p])
		}
		if x.epochs[p] > res.Epoch {
			res.Epoch = x.epochs[p]
		}
		if x.lsns[p] > res.DurableLSN {
			res.DurableLSN = x.lsns[p]
		}
	}
	res.Committed = plan.Txns
	// Seal the batch: one durability wait closes the epoch (its kick is
	// what advances the immediate-mode coordinator), so the next batch's
	// appends land in a fresh epoch and the frontier stays batch-aligned.
	e := x.e
	if e.logs != nil && res.Epoch > 0 {
		if err := e.logs.WaitDurable(0, res.Epoch); err != nil {
			return res, fmt.Errorf("%w: sealing epoch %d: %w", ErrDetBatchFailed, res.Epoch, err)
		}
	} else if e.logw != nil && res.DurableLSN > 0 {
		if err := e.logw.WaitDurable(res.DurableLSN); err != nil {
			return res, fmt.Errorf("%w: waiting lsn %d: %w", ErrDetBatchFailed, res.DurableLSN, err)
		}
	}
	return res, nil
}

// drain executes one partition's queue for the current batch: each maximal
// run of same-transaction ops is a fragment, executed and committed as one
// protocol transaction with a replay-ordered deterministic ID.
func (x *DetExecutor) drain(p int) error {
	q := x.plan.Queues[p]
	for i := 0; i < len(q); {
		var err error
		i, err = x.runFragment(p, q, i)
		if err != nil {
			// Cancel the batch so peers blocked in Mailbox.Collect unwind
			// instead of waiting for sends that will never happen.
			x.plan.Cancel()
			return err
		}
	}
	return nil
}

// runFragment executes q[i:] up to the end of the fragment starting at i,
// returning the index past it.
func (x *DetExecutor) runFragment(p int, q []det.Op, i int) (int, error) {
	e := x.e
	t := x.txs[p]
	inner := t.inner
	txnIdx := q[i].Txn
	mb := &x.plan.Mailboxes[txnIdx]
	inner.Reset()
	// The quiesce gate brackets the fragment like an interactive attempt:
	// command-logged checkpoints still get a true quiescent point between
	// fragments.
	e.quiesce.RLock()
	e.proto.Begin(inner)
	var err error
	for ; i < len(q) && q[i].Txn == txnIdx; i++ {
		if err == nil {
			//next700:locked(Engine.quiesce: the gate read side deliberately brackets queued-transaction execution so command-logged checkpoints quiesce between fragments)
			err = x.exec(t, q[i], mb)
		}
	}
	if err != nil {
		e.proto.Abort(inner)
		t.retractInserts()
		e.quiesce.RUnlock()
		inner.Counter.FatalAborts++
		return i, err
	}
	err = x.commitFragment(t, p, detID(x.batchNo, txnIdx, p))
	e.quiesce.RUnlock()
	if err != nil {
		inner.Counter.FatalAborts++
		return i, err
	}
	if x.plan.Home[txnIdx] == int32(p) {
		inner.Counter.Commits++
	}
	return i, nil
}

// commitFragment mirrors Tx.commit for the deterministic path: protocol
// commit, delete-retraction, WAL encode and append — but the durability
// wait is deferred to the batch seal in ExecuteBatch, and the commit ID is
// the replay-ordered deterministic ID rather than a timestamp draw.
//
//next700:hotpath
func (x *DetExecutor) commitFragment(t *Tx, p int, id uint64) error {
	e := x.e
	inner := t.inner
	inner.ID = id

	logging := (e.logw != nil || e.logs != nil) && !t.noLog
	fenced := e.logs != nil
	if fenced {
		e.ckptFence.RLock()
	}
	if logging && e.logFailed() {
		if fenced {
			e.ckptFence.RUnlock()
		}
		e.proto.Abort(inner)
		t.retractInserts()
		return e.logErr()
	}
	if err := e.proto.Commit(inner); err != nil {
		// Unreachable for QSTORE (pass-through commit cannot fail), kept
		// for structural parity with Tx.commit.
		if fenced {
			e.ckptFence.RUnlock()
		}
		t.retractInserts()
		return err
	}
	for i := range inner.Accesses {
		a := &inner.Accesses[i]
		if a.Kind != txn.KindDelete {
			continue
		}
		th := e.tableByID(a.Table.ID())
		if th == nil {
			continue
		}
		th.primary.Delete(a.Key)
		if len(th.secondaries) > 0 {
			row := a.Table.Row(a.RID)
			for j := range th.secondaries {
				s := &th.secondaries[j]
				//next700:locked(Engine.ckptFence: abort-path index undo invokes the table engine-registered key extractor; bounded, lock-free)
				s.idx.Delete(s.extract(th.sch, row, a.Key))
			}
		}
	}
	if logging && inner.HasWrites() {
		if err := t.encodeLog(0, nil); err != nil {
			if fenced {
				e.ckptFence.RUnlock()
			}
			return err
		}
		if e.logs != nil {
			epoch, aerr := e.logs.Append(t.logStream, t.logBuf)
			e.ckptFence.RUnlock()
			if aerr != nil {
				return aerr
			}
			if epoch > x.epochs[p] {
				x.epochs[p] = epoch
			}
			return nil
		}
		lsn, aerr := e.logw.Append(t.logBuf)
		if aerr != nil {
			return aerr
		}
		if lsn > x.lsns[p] {
			x.lsns[p] = lsn
		}
		return nil
	}
	if fenced {
		e.ckptFence.RUnlock()
	}
	return nil
}

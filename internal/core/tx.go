package core

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"next700/internal/cc"
	"next700/internal/fault"
	"next700/internal/index"
	"next700/internal/stats"
	"next700/internal/storage"
	"next700/internal/txn"
	"next700/internal/wal"
	"next700/internal/xrand"
)

// Tx is the transaction context handed to transaction bodies. It wraps the
// descriptor with engine-level semantics: index resolution, own-write
// visibility, and secondary-index maintenance.
type Tx struct {
	eng   *Engine
	inner *txn.Txn
	// scratch for scan rid collection, reused across scans.
	scanKeys []uint64
	scanRIDs []storage.RecordID
	// encode buffer for WAL records, reused across transactions.
	logBuf []byte
	// logRec is the reusable commit record; its Entries slice keeps its
	// capacity across transactions so value logging allocates nothing.
	logRec wal.CommitRecord
	// seqHook is the pre-built commit-sequence-number closure handed to
	// HookedCommitter protocols; building it once per context keeps the
	// logging commit path allocation-free.
	seqHook func()
	// logStream is this worker's parallel-WAL stream (threadID modulo the
	// stream count); 0 when the engine logs through the single Writer.
	logStream int
	// streamScratch is the commit path's touched-partition set under
	// PartitionWAL (ascending stream ids, deduplicated); pre-sized to the
	// partition bound so collectStreams allocates nothing.
	streamScratch []int
	// noLog suppresses write-ahead logging for this context. Store-based
	// recovery sets it while re-executing the command-log tail: the sealed
	// segments remain the authoritative tail until the next checkpoint
	// prunes them, so re-logging the replayed procedures would make a second
	// crash re-execute them twice.
	noLog bool
}

// maxRetainedScanCap bounds the scan scratch capacity a Tx keeps between
// transactions. One huge scan must not permanently bloat every worker.
const maxRetainedScanCap = 4096

// NewTx creates a reusable transaction context bound to a worker slot.
// threadID must be < Config.Threads. Each context may be used by one
// goroutine at a time. Contexts sharing a threadID share the worker's
// statistics slot.
func (e *Engine) NewTx(threadID int, seed uint64) *Tx {
	t := &Tx{
		eng:   e,
		inner: txn.NewTxn(threadID, xrand.New(seed), e.counterSlot(threadID)),
	}
	t.seqHook = func() {
		// Draw the commit sequence number while writes are still
		// protected: log replay orders entries by it.
		t.inner.ID = e.env.TS.Next()
	}
	if e.logs != nil {
		t.logStream = threadID % e.logs.NumStreams()
		if t.logStream < 0 {
			t.logStream = 0
		}
	}
	if e.cfg.PartitionWAL {
		t.streamScratch = make([]int, 0, e.cfg.Partitions)
	}
	return t
}

// RNG returns the worker-local random source.
func (t *Tx) RNG() *xrand.RNG { return t.inner.RNG }

// SetDeadline sets the absolute deadline for subsequent transactions run on
// this context. Every blocking site — lock waits, durability waits, retry
// backoff — charges against it, and Run returns an error satisfying
// errors.Is(err, ErrDeadlineExceeded) once the budget is gone. The deadline
// is a plain int64 (Unix nanoseconds) on the descriptor: no context.Context,
// no allocation, and with no deadline set the hot path pays one branch.
// The deadline persists across Run calls until changed or cleared.
func (t *Tx) SetDeadline(at time.Time) { t.inner.Deadline = at.UnixNano() }

// SetDeadlineAfter sets the deadline d from now.
func (t *Tx) SetDeadlineAfter(d time.Duration) {
	t.inner.Deadline = time.Now().Add(d).UnixNano()
}

// SetDeadlineNanos sets the deadline as absolute Unix nanoseconds
// (0 clears it). This is the allocation-free form harness layers use to
// derive per-transaction deadlines from queue-arrival timestamps.
func (t *Tx) SetDeadlineNanos(nanos int64) { t.inner.Deadline = nanos }

// ClearDeadline removes any deadline.
func (t *Tx) ClearDeadline() { t.inner.Deadline = 0 }

// DeadlineNanos returns the current absolute deadline in Unix nanoseconds
// (0 = none).
func (t *Tx) DeadlineNanos() int64 { return t.inner.Deadline }

// Counter returns the per-worker statistics counter.
func (t *Tx) Counter() *stats.Counter { return t.inner.Counter }

// ThreadID returns the worker slot.
func (t *Tx) ThreadID() int { return t.inner.ThreadID }

// Schema is a convenience accessor for a table's schema.
func (t *Tx) Schema(tbl *Table) *storage.Schema { return tbl.sch }

// DeclarePartitions pre-declares the partitions this transaction touches.
// Required for HSTORE multi-partition transactions; a no-op elsewhere.
func (t *Tx) DeclarePartitions(parts ...int) error {
	if pa, ok := t.eng.proto.(cc.PartitionAware); ok {
		return pa.DeclarePartitions(t.inner, parts)
	}
	return nil
}

// lookup resolves key in tbl's primary index.
func (t *Tx) lookup(tbl *Table, key uint64) (storage.RecordID, bool) {
	return tbl.primary.Lookup(key)
}

// Read returns the row image for key. The returned slice is read-only and
// valid until the transaction ends.
//
//next700:hotpath
func (t *Tx) Read(tbl *Table, key uint64) (storage.Row, error) {
	t.inner.Counter.Reads++
	if err := t.partitionGate(tbl, key); err != nil {
		return nil, err
	}
	rid, ok := t.lookup(tbl, key)
	if !ok {
		return nil, txn.ErrNotFound
	}
	return t.readRID(tbl, rid)
}

// readRID reads a record by rid with own-write visibility.
func (t *Tx) readRID(tbl *Table, rid storage.RecordID) (storage.Row, error) {
	if w := t.inner.FindWrite(tbl.tbl, rid); w != nil {
		if w.Kind == txn.KindDelete {
			return nil, txn.ErrNotFound
		}
		return storage.Row(w.Data), nil
	}
	data, err := t.eng.proto.Read(t.inner, tbl.tbl, rid)
	if err != nil {
		return nil, err
	}
	return storage.Row(data), nil
}

// Update returns a writable after-image for key; mutations become visible
// atomically at commit.
//
//next700:hotpath
func (t *Tx) Update(tbl *Table, key uint64) (storage.Row, error) {
	t.inner.Counter.Writes++
	if err := t.partitionGate(tbl, key); err != nil {
		return nil, err
	}
	rid, ok := t.lookup(tbl, key)
	if !ok {
		return nil, txn.ErrNotFound
	}
	if w := t.inner.FindWrite(tbl.tbl, rid); w != nil {
		if w.Kind == txn.KindDelete {
			return nil, txn.ErrNotFound
		}
		return storage.Row(w.Data), nil
	}
	buf, err := t.eng.proto.ReadForUpdate(t.inner, tbl.tbl, rid)
	if err != nil {
		return nil, err
	}
	// Protocols record update accesses by RID alone; stamp the primary key
	// so partition-affinity routing (collectStreams) and key-addressed
	// partition replay see it in the value log's after-images.
	if w := t.inner.FindWrite(tbl.tbl, rid); w != nil {
		w.Key = key
	}
	return storage.Row(buf), nil
}

// Insert adds a new row under key. Fails with txn.ErrDuplicate if the key
// exists (including uncommitted inserts by concurrent transactions).
//
// Ordering: the fresh record is tombstoned, the primary index entry is
// published (reserving the key — the duplicate check), and only then is the
// record registered with the protocol. A reader chasing the index entry in
// the window sees an untouched, tombstoned record and reports not-found,
// which protocols turn into a validation/lock dependency as appropriate.
func (t *Tx) Insert(tbl *Table, key uint64, row storage.Row) error {
	t.inner.Counter.Inserts++
	if err := t.partitionGate(tbl, key); err != nil {
		return err
	}
	if len(row) != tbl.sch.RowSize() {
		return errInsertSize
	}
	rid := tbl.tbl.Alloc()
	tbl.tbl.SetTombstone(rid, true)
	data := t.inner.Buf(len(row))
	copy(data, row)
	if _, ok := tbl.primary.Insert(key, rid); !ok {
		return txn.ErrDuplicate
	}
	if err := t.eng.proto.RegisterInsert(t.inner, tbl.tbl, rid, key, data); err != nil {
		// No access entry was recorded; retract the published key so it
		// does not orphan (the transaction as a whole is about to abort,
		// but this insert is not in its access set).
		tbl.primary.Delete(key)
		return err
	}
	for i := range tbl.secondaries {
		s := &tbl.secondaries[i]
		s.idx.Insert(s.extract(tbl.sch, row, key), rid)
	}
	return nil
}

// Delete removes key's record at commit.
func (t *Tx) Delete(tbl *Table, key uint64) error {
	t.inner.Counter.Deletes++
	if err := t.partitionGate(tbl, key); err != nil {
		return err
	}
	rid, ok := t.lookup(tbl, key)
	if !ok {
		return txn.ErrNotFound
	}
	if w := t.inner.FindWrite(tbl.tbl, rid); w != nil && w.Kind == txn.KindDelete {
		return txn.ErrNotFound
	}
	return t.eng.proto.RegisterDelete(t.inner, tbl.tbl, rid, key)
}

// Scan visits rows with primary keys in [lo, hi] ascending. The primary
// index must be a B+ tree. fn receives the key and a read-only row image;
// return false to stop. Deleted/invisible records are skipped.
func (t *Tx) Scan(tbl *Table, lo, hi uint64, fn func(key uint64, row storage.Row) bool) error {
	return t.scan(tbl, lo, hi, false, fn)
}

// ScanDesc is Scan in descending key order.
func (t *Tx) ScanDesc(tbl *Table, lo, hi uint64, fn func(key uint64, row storage.Row) bool) error {
	return t.scan(tbl, lo, hi, true, fn)
}

// trimScanScratch caps the retained capacity of the scan scratch slices so
// one huge scan does not permanently bloat the worker's footprint.
func (t *Tx) trimScanScratch() {
	if cap(t.scanKeys) > maxRetainedScanCap {
		t.scanKeys = nil
		t.scanRIDs = nil
	}
}

func (t *Tx) scan(tbl *Table, lo, hi uint64, desc bool, fn func(key uint64, row storage.Row) bool) error {
	t.inner.Counter.Scans++
	r, ok := tbl.ranger()
	if !ok {
		return fmt.Errorf("core: table %s primary index does not support scans: %w", tbl.Name(), ErrInvalidUsage)
	}
	defer t.trimScanScratch()
	// Collect matches first so no index latches are held while protocol
	// reads block or wait — mixing latch and lock ordering risks deadlock.
	t.scanKeys = t.scanKeys[:0]
	t.scanRIDs = t.scanRIDs[:0]
	collect := func(key uint64, rid storage.RecordID) bool {
		t.scanKeys = append(t.scanKeys, key)
		t.scanRIDs = append(t.scanRIDs, rid)
		return true
	}
	if desc {
		r.ScanDesc(lo, hi, collect)
	} else {
		r.Scan(lo, hi, collect)
	}
	// One quarantine-mask load covers the whole scan; partitions are
	// computed per key only while a quarantine is in force.
	mask := t.eng.quarMask.Load()
	for i := range t.scanKeys {
		if mask != 0 && mask&(1<<uint(t.eng.partitionOfKey(tbl.tbl, t.scanKeys[i]))) != 0 {
			return errPartitionGate
		}
		row, err := t.readRID(tbl, t.scanRIDs[i])
		if errors.Is(err, txn.ErrNotFound) {
			continue // deleted or not yet visible
		}
		if err != nil {
			return err
		}
		if !fn(t.scanKeys[i], row) {
			return nil
		}
	}
	return nil
}

// LookupIndex resolves a key in a named secondary index and reads the row.
func (t *Tx) LookupIndex(tbl *Table, indexName string, key uint64) (storage.Row, error) {
	s := tbl.findSecondary(indexName)
	if s == nil {
		return nil, fmt.Errorf("core: no index %s on %s: %w", indexName, tbl.Name(), ErrInvalidUsage)
	}
	rid, ok := s.idx.Lookup(key)
	if !ok {
		return nil, txn.ErrNotFound
	}
	return t.readRID(tbl, rid)
}

// ScanIndex range-scans a named secondary index (must be a B+ tree),
// passing each index key and row image to fn.
func (t *Tx) ScanIndex(tbl *Table, indexName string, lo, hi uint64, desc bool,
	fn func(indexKey uint64, row storage.Row) bool) error {
	s := tbl.findSecondary(indexName)
	if s == nil {
		return fmt.Errorf("core: no index %s on %s: %w", indexName, tbl.Name(), ErrInvalidUsage)
	}
	r, ok := s.idx.(index.Ranger)
	if !ok {
		return fmt.Errorf("core: index %s does not support scans: %w", indexName, ErrInvalidUsage)
	}
	defer t.trimScanScratch()
	t.scanKeys = t.scanKeys[:0]
	t.scanRIDs = t.scanRIDs[:0]
	collect := func(key uint64, rid storage.RecordID) bool {
		t.scanKeys = append(t.scanKeys, key)
		t.scanRIDs = append(t.scanRIDs, rid)
		return true
	}
	if desc {
		r.ScanDesc(lo, hi, collect)
	} else {
		r.Scan(lo, hi, collect)
	}
	for i := range t.scanKeys {
		row, err := t.readRID(tbl, t.scanRIDs[i])
		if errors.Is(err, txn.ErrNotFound) {
			continue
		}
		if err != nil {
			return err
		}
		if !fn(t.scanKeys[i], row) {
			return nil
		}
	}
	return nil
}

// ErrLivelock is returned by Run when a transaction exhausts the retry
// policy's attempt budget without committing.
var ErrLivelock = errors.New("core: transaction livelocked")

// ErrInvalidUsage is the API-misuse class: statement- or setup-level errors
// caused by the caller (wrong row size, unknown index or proc, logging-mode
// misconfiguration) rather than by data or contention. It is never produced
// by a well-formed workload, so harness workers treat it as a run failure,
// not a per-transaction outcome. All such errors wrap it; match with
// errors.Is(err, core.ErrInvalidUsage).
var ErrInvalidUsage = errors.New("core: invalid usage")

// errNeedRunProc is prebuilt because appendLog sits on the commit hot path.
var errNeedRunProc = fmt.Errorf("core: command logging requires RunProc: %w", ErrInvalidUsage)

// errInsertSize is prebuilt because Insert sits on workload hot paths.
var errInsertSize = fmt.Errorf("core: insert row size mismatch: %w", ErrInvalidUsage)

// ErrDeadlineExceeded is the terminal deadline abort class: Run returns an
// error satisfying errors.Is(err, ErrDeadlineExceeded) when the
// transaction's deadline expires while queued, blocked, backing off, or
// waiting for durability.
var ErrDeadlineExceeded = txn.ErrDeadlineExceeded

// Run executes body as a transaction, retrying transient (conflict) aborts
// under the engine's RetryPolicy with bounded exponential backoff and full
// jitter. Non-transient errors — user aborts, application errors, sticky
// log failure — abort cleanly without retry and are returned. Abort classes
// are accounted separately: Counter.Aborts counts retried transient aborts,
// UserAborts and FatalAborts the terminal ones.
func (t *Tx) Run(body func(tx *Tx) error) error {
	return t.run(body, 0, nil)
}

// RunProc executes a registered stored procedure; under command logging
// its (id, params) pair is logged instead of the write set.
func (t *Tx) RunProc(procID int32, params []byte) error {
	fn := t.eng.proc(procID)
	if fn == nil {
		return fmt.Errorf("core: unknown proc %d: %w", procID, ErrInvalidUsage)
	}
	return t.run(func(tx *Tx) error { return fn(tx, params) }, procID, params)
}

func (t *Tx) run(body func(tx *Tx) error, procID int32, params []byte) error {
	e := t.eng
	inner := t.inner
	pol := &e.cfg.Retry
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			runtime.Gosched()
			if d := pol.Delay(inner.RNG, attempt); d > 0 {
				// Backoff is charged against the deadline budget: a sleep
				// that would end at or past the deadline is not taken at
				// all, because the retry it precedes could never finish in
				// time.
				if dl := inner.Deadline; dl != 0 {
					if remaining := time.Duration(dl - time.Now().UnixNano()); d >= remaining {
						return t.deadlineAbort()
					}
				}
				time.Sleep(d)
			}
			if attempt >= pol.MaxAttempts {
				return ErrLivelock
			}
		}
		if inner.Expired() {
			// Expired before the attempt could start (e.g. the transaction
			// aged out while queued, or a previous attempt consumed the
			// budget blocking on a lock).
			return t.deadlineAbort()
		}
		inner.Reset()
		// The quiesce gate brackets the whole attempt, Begin through
		// commit/abort. Command-logged and HSTORE checkpoints take the
		// write side to capture a true quiescent point; value-mode
		// checkpoints never contend it, so steady state pays one
		// uncontended atomic per attempt.
		e.quiesce.RLock()
		e.proto.Begin(inner)

		//next700:locked(Engine.quiesce: the gate read side deliberately brackets the user transaction body; writers only contend during checkpoint quiesce)
		err := body(t)
		fromCommit := false
		if err == nil {
			committed, cerr := t.commit(procID, params)
			if cerr == nil {
				e.quiesce.RUnlock()
				inner.ClearPriority()
				inner.Counter.Commits++
				return nil
			}
			if committed {
				// The transaction is durably committed in memory but
				// logging failed: surface the error without rolling back.
				e.quiesce.RUnlock()
				inner.ClearPriority()
				inner.Counter.Commits++
				return cerr
			}
			// Protocol commit failed (validation conflict, dead log, ...):
			// state was already rolled back inside commit. Classify the
			// error below without aborting twice.
			err = cerr
			fromCommit = true
		}
		if !fromCommit {
			e.proto.Abort(inner)
			t.retractInserts()
		}
		e.quiesce.RUnlock()
		if fault.IsTransient(err) {
			inner.Counter.Aborts++
			continue
		}
		inner.ClearPriority()
		switch {
		case errors.Is(err, txn.ErrUserAbort):
			inner.Counter.UserAborts++
		case errors.Is(err, txn.ErrDeadlineExceeded):
			inner.Counter.DeadlineAborts++
		case errors.Is(err, ErrPartitionUnavailable):
			inner.Counter.PartitionAborts++
		default:
			inner.Counter.FatalAborts++
		}
		return err
	}
}

// deadlineAbort accounts a terminal deadline abort. Any prior attempt was
// already rolled back before the retry loop re-entered, so there is no
// protocol state to release here.
func (t *Tx) deadlineAbort() error {
	t.inner.ClearPriority()
	t.inner.Counter.DeadlineAborts++
	return txn.ErrDeadlineExceeded
}

// commit drives the protocol commit, post-commit index maintenance, and
// write-ahead logging. committed reports whether the protocol commit
// succeeded (after which errors are logging failures, not rollbacks).
//
//next700:hotpath
func (t *Tx) commit(procID int32, params []byte) (committed bool, err error) {
	e := t.eng
	inner := t.inner

	logging := (e.logw != nil || e.logs != nil) && !t.noLog
	// On the parallel WAL the checkpoint fence spans memory publication
	// through log append: the record's epoch tag is drawn while the fence
	// is held, so a checkpoint rotation that has drained the fence knows no
	// in-flight commit can tag at or below its boundary epoch. The
	// durability wait happens after release — the fence drains in
	// microseconds even under group-commit windows. Uncontended, the read
	// lock is one atomic each way; it is only ever contended for the
	// rotation instant itself.
	fenced := e.logs != nil
	if fenced {
		e.ckptFence.RLock()
	}

	// A dead log device cannot make any new commit durable: degrade to a
	// clean abort instead of committing memory state that would silently
	// vanish on recovery. One atomic load; free when the log is healthy.
	if logging && e.logFailed() {
		if fenced {
			e.ckptFence.RUnlock()
		}
		e.proto.Abort(inner)
		t.retractInserts()
		return false, e.logErr()
	}

	// Partition-affinity pre-commit gate: a write set that touches a
	// quarantined partition can never be made durable, so it aborts here —
	// before the protocol commit, while rollback is still possible. The ops
	// gates make this race-narrow; this check makes it sound.
	pwal := logging && e.cfg.PartitionWAL
	if pwal {
		if wmask := t.collectStreams(); wmask != 0 && e.quarMask.Load()&wmask != 0 {
			if fenced {
				e.ckptFence.RUnlock()
			}
			e.proto.Abort(inner)
			t.retractInserts()
			return false, errPartitionGate
		}
	}

	if logging {
		if hooked, ok := e.proto.(cc.HookedCommitter); ok {
			err = hooked.CommitHooked(inner, t.seqHook)
		} else {
			err = e.proto.Commit(inner)
		}
	} else {
		err = e.proto.Commit(inner)
	}
	if err != nil {
		if fenced {
			e.ckptFence.RUnlock()
		}
		t.retractInserts()
		return false, err
	}

	// Post-commit index maintenance: retract deleted keys.
	for i := range inner.Accesses {
		a := &inner.Accesses[i]
		if a.Kind != txn.KindDelete {
			continue
		}
		th := e.tableByID(a.Table.ID())
		if th == nil {
			continue
		}
		th.primary.Delete(a.Key)
		if len(th.secondaries) > 0 {
			row := a.Table.Row(a.RID)
			for j := range th.secondaries {
				s := &th.secondaries[j]
				//next700:locked(Engine.ckptFence: abort-path index undo invokes the table engine-registered key extractor; bounded, lock-free)
				s.idx.Delete(s.extract(th.sch, row, a.Key))
			}
		}
	}

	if logging && inner.HasWrites() {
		if e.logs == nil {
			// Single-stream Writer path: no fence is held (fenced is false
			// whenever e.logs is nil).
			return true, t.appendLog(procID, params)
		}
		// Parallel WAL: encode and append inside the fence — the record's
		// epoch tag is drawn under the stream mutex — then release the
		// fence before the durability wait, which may park for a full
		// epoch window.
		err = t.encodeLog(procID, params)
		if err != nil {
			e.ckptFence.RUnlock()
			return true, err
		}
		if pwal {
			// Partition affinity: the record is replicated onto the stream
			// of every partition it wrote, under one epoch tag, and the
			// durability wait certifies it on each of them. A stream that
			// dies in the window is a partition outage, not a rollback.
			epoch, aerr := e.logs.AppendMulti(t.streamScratch, t.logBuf)
			e.ckptFence.RUnlock()
			if aerr != nil {
				return true, e.wrapPartitionErr(aerr)
			}
			return true, t.waitStreamsDurable(epoch)
		}
		epoch, aerr := e.logs.Append(t.logStream, t.logBuf)
		e.ckptFence.RUnlock()
		if aerr != nil {
			return true, aerr
		}
		return true, t.waitStreamDurable(epoch)
	}
	if fenced {
		e.ckptFence.RUnlock()
	}
	return true, nil
}

// encodeLog builds the commit record for the committed transaction into
// t.logBuf. The commit record, its entries slice, and the encode buffer are
// all Tx-owned and reused, so steady-state logging allocates nothing per
// commit.
//
//next700:hotpath
func (t *Tx) encodeLog(procID int32, params []byte) error {
	e := t.eng
	inner := t.inner
	cr := &t.logRec
	cr.TxnID = inner.ID
	cr.Proc, cr.Params = 0, nil
	cr.Entries = cr.Entries[:0]
	if e.cfg.LogMode == wal.ModeCommand {
		if procID == 0 {
			return errNeedRunProc
		}
		cr.Proc = procID
		cr.Params = params
	} else {
		for i := range inner.Accesses {
			a := &inner.Accesses[i]
			if a.Kind == txn.KindRead {
				continue
			}
			entry := wal.Entry{Table: int32(a.Table.ID()), RID: uint64(a.RID), Key: a.Key}
			switch a.Kind {
			case txn.KindInsert:
				entry.Kind = wal.EntryInsert
				entry.Data = a.Data
			case txn.KindDelete:
				entry.Kind = wal.EntryDelete
			default:
				entry.Kind = wal.EntryUpdate
				entry.Data = a.Data
			}
			cr.Entries = append(cr.Entries, entry)
		}
	}
	t.logBuf = cr.Encode(t.logBuf)
	// Drop row-image aliases before the next transaction resets the arena.
	for i := range cr.Entries {
		cr.Entries[i].Data = nil
	}
	cr.Params = nil
	return nil
}

// waitStreamDurable parks on the parallel WAL's epoch frontier until the
// committed record's epoch is durable on every stream.
//
//next700:hotpath
func (t *Tx) waitStreamDurable(epoch uint64) error {
	e := t.eng
	if dl := t.inner.Deadline; dl != 0 {
		if werr := e.logs.WaitDurableUntil(t.logStream, epoch, dl); werr != nil {
			if errors.Is(werr, wal.ErrWaitDeadline) {
				return errDurabilityDeadline
			}
			return werr
		}
		return nil
	}
	return e.logs.WaitDurable(t.logStream, epoch)
}

// appendLog encodes, appends, and waits out the WAL record on the
// single-stream group-commit Writer.
func (t *Tx) appendLog(procID int32, params []byte) error {
	e := t.eng
	if err := t.encodeLog(procID, params); err != nil {
		return err
	}
	lsn, err := e.logw.Append(t.logBuf)
	if err != nil {
		return err
	}
	if dl := t.inner.Deadline; dl != 0 {
		if werr := e.logw.WaitDurableUntil(lsn, dl); werr != nil {
			if errors.Is(werr, wal.ErrWaitDeadline) {
				return errDurabilityDeadline
			}
			return werr
		}
		return nil
	}
	return e.logw.WaitDurable(lsn)
}

// errDurabilityDeadline is the pre-built (allocation-free) error returned
// when the deadline expires while waiting for WAL durability. The
// transaction is committed in memory and its record stays staged, so the
// outcome is indeterminate — it may yet become durable — which is why Run
// still counts the commit while surfacing the deadline class to the caller.
var errDurabilityDeadline = fmt.Errorf("core: commit durability wait: %w", txn.ErrDeadlineExceeded)

// retractInserts undoes index publication for the aborted transaction's
// inserts. Protocol state was already released by Abort (or by the failed
// Commit itself).
func (t *Tx) retractInserts() {
	inner := t.inner
	for i := range inner.Accesses {
		a := &inner.Accesses[i]
		if a.Kind != txn.KindInsert {
			continue
		}
		th := t.eng.tableByID(a.Table.ID())
		if th == nil {
			continue
		}
		th.primary.Delete(a.Key)
		for j := range th.secondaries {
			s := &th.secondaries[j]
			s.idx.Delete(s.extract(th.sch, storage.Row(a.Data), a.Key))
		}
	}
}

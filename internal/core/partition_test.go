package core

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"next700/internal/fault"
	"next700/internal/storage"
	"next700/internal/testutil"
	"next700/internal/wal"
)

// partEngine opens a PartitionWAL engine with parts partitions over fresh
// fault.MemDevices (returned in stream order) and a kv table of n keys.
// With the default partitioner, key k lives in partition k % parts.
func partEngine(t testing.TB, parts, n int, tweak func(cfg *Config, devs []wal.Device)) (*Engine, []*fault.MemDevice, *Table) {
	t.Helper()
	mems := make([]*fault.MemDevice, parts)
	devs := make([]wal.Device, parts)
	for i := range mems {
		mems[i] = &fault.MemDevice{}
		devs[i] = mems[i]
	}
	cfg := Config{
		Protocol:          "SILO",
		Threads:           parts,
		Partitions:        parts,
		LogMode:           wal.ModeValue,
		WALStreams:        parts,
		LogDevices:        devs,
		PartitionWAL:      true,
		GroupCommitWindow: 200 * time.Microsecond,
		EpochInterval:     time.Millisecond,
	}
	if tweak != nil {
		tweak(&cfg, devs)
	}
	e := openEngine(t, cfg)
	tbl := kvTable(t, e, "kv", IndexHash, n)
	return e, mems, tbl
}

// setKey commits value v under key k on tx, returning the commit error.
func setKey(tx *Tx, tbl *Table, k uint64, v int64) error {
	return tx.Run(func(tx *Tx) error {
		row, err := tx.Update(tbl, k)
		if err != nil {
			return err
		}
		setV(tbl, row, v)
		return nil
	})
}

func TestPartitionWALConfigValidation(t *testing.T) {
	devs := func(n int) []wal.Device {
		out := make([]wal.Device, n)
		for i := range out {
			out[i] = &fault.MemDevice{}
		}
		return out
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"single stream", Config{Partitions: 1, LogMode: wal.ModeValue, WALStreams: 1,
			LogDevices: devs(1), PartitionWAL: true}},
		{"command mode", Config{Partitions: 2, LogMode: wal.ModeCommand, WALStreams: 2,
			LogDevices: devs(2), PartitionWAL: true}},
		{"streams != partitions", Config{Partitions: 4, LogMode: wal.ModeValue, WALStreams: 2,
			LogDevices: devs(2), PartitionWAL: true}},
		{"too many partitions", Config{Partitions: 65, LogMode: wal.ModeValue, WALStreams: 65,
			LogDevices: devs(65), PartitionWAL: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Open(tc.cfg); !errors.Is(err, ErrInvalidUsage) {
				t.Fatalf("Open = %v, want ErrInvalidUsage", err)
			}
		})
	}
}

// TestPartitionQuarantineLifecycle walks the whole degradation arc on one
// engine — quarantine, gated operations, healthy-partition commits, live
// recovery, re-admission — and proves the engine sheds no goroutines along
// the way.
func TestPartitionQuarantineLifecycle(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	const parts = 4
	var downs []int
	var mu sync.Mutex
	e, mems, tbl := partEngine(t, parts, 64, func(cfg *Config, _ []wal.Device) {
		cfg.OnPartitionDown = func(p int, down bool) {
			mu.Lock()
			if down {
				downs = append(downs, p)
			} else {
				downs = append(downs, -p)
			}
			mu.Unlock()
		}
	})

	// Seed every partition with acknowledged commits: key k := 7+k.
	tx := e.NewTx(0, 1)
	for k := uint64(0); k < 16; k++ {
		if err := setKey(tx, tbl, k, int64(7+k)); err != nil {
			t.Fatal(err)
		}
	}

	const dead = 2
	if err := e.QuarantinePartition(dead); err != nil {
		t.Fatal(err)
	}
	if got := e.QuarantinedPartitions(); got != 1<<dead {
		t.Fatalf("QuarantinedPartitions = %#x, want %#x", got, 1<<dead)
	}

	// Every operation class touching the dead partition aborts terminally
	// with ErrPartitionUnavailable; key 6 lives in partition 2.
	base := tx.Counter().PartitionAborts
	ops := map[string]func(tx *Tx) error{
		"read":   func(tx *Tx) error { _, err := tx.Read(tbl, 6); return err },
		"update": func(tx *Tx) error { _, err := tx.Update(tbl, 6); return err },
		"insert": func(tx *Tx) error { return tx.Insert(tbl, 1006, tbl.Schema().NewRow()) },
		"delete": func(tx *Tx) error { return tx.Delete(tbl, 6) },
	}
	for name, op := range ops {
		if err := tx.Run(op); !errors.Is(err, ErrPartitionUnavailable) {
			t.Fatalf("%s on quarantined partition = %v, want ErrPartitionUnavailable", name, err)
		}
	}
	if got := tx.Counter().PartitionAborts - base; got != uint64(len(ops)) {
		t.Fatalf("PartitionAborts delta = %d, want %d", got, len(ops))
	}

	// A scan over a B+ tree table crossing the dead partition is gated too.
	btbl := kvTable(t, e, "kvbt", IndexBTree, 16)
	if err := tx.Run(func(tx *Tx) error {
		return tx.Scan(btbl, 0, 15, func(uint64, storage.Row) bool { return true })
	}); !errors.Is(err, ErrPartitionUnavailable) {
		t.Fatalf("scan across quarantined partition = %v, want ErrPartitionUnavailable", err)
	}

	// Healthy partitions keep committing, and the commits are certified
	// durable (the frontier re-certified over the survivors advances).
	before := e.DurableEpoch()
	for k := uint64(0); k < 16; k++ {
		if k%parts == dead {
			continue
		}
		if err := setKey(tx, tbl, k, int64(100+k)); err != nil {
			t.Fatalf("healthy-partition commit after quarantine: %v", err)
		}
	}
	if e.DurableEpoch() < before {
		t.Fatalf("durable frontier regressed: %d -> %d", before, e.DurableEpoch())
	}

	// Live recovery: partition 2's own stream tail is the authority.
	frontier := e.PartitionFrontier(dead)
	if frontier == 0 {
		t.Fatal("PartitionFrontier = 0 for a partition with acked commits")
	}
	rs, err := e.RecoverPartition(dead, nil, nil, bytes.NewReader(mems[dead].Bytes()), &fault.MemDevice{})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Entries == 0 {
		t.Fatal("partition recovery applied no entries")
	}
	if e.QuarantinedPartitions() != 0 {
		t.Fatalf("quarantine mask %#x after recovery, want 0", e.QuarantinedPartitions())
	}

	// The acknowledged pre-quarantine values are back, and the partition
	// accepts new durable commits on its fresh device.
	for k := uint64(dead); k < 16; k += parts {
		row, err := tx.Run2(tbl, k)
		if err != nil {
			t.Fatal(err)
		}
		if got := getV(tbl, row); got != int64(7+k) {
			t.Fatalf("recovered key %d = %d, want %d", k, got, 7+k)
		}
	}
	if err := setKey(tx, tbl, dead, 999); err != nil {
		t.Fatalf("commit on readmitted partition: %v", err)
	}
	// Close before the leak check runs: openEngine's cleanup fires after
	// function-level defers.
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(downs) != 2 || downs[0] != dead || downs[1] != -dead {
		t.Fatalf("OnPartitionDown calls = %v, want [%d %d]", downs, dead, -dead)
	}
}

// Run2 reads one key in its own transaction (test helper).
func (t *Tx) Run2(tbl *Table, k uint64) ([]byte, error) {
	var out []byte
	err := t.Run(func(tx *Tx) error {
		row, err := tx.Read(tbl, k)
		if err != nil {
			return err
		}
		out = append(out[:0], row...)
		return nil
	})
	return out, err
}

// TestPartitionDeviceFailureAutoQuarantine crashes one partition's device
// mid-run and proves the guard quarantines exactly that partition: its
// transactions classify ErrPartitionUnavailable, the others keep going.
func TestPartitionDeviceFailureAutoQuarantine(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	const parts = 4
	const dead = 1
	e, _, tbl := partEngine(t, parts, 64, func(cfg *Config, devs []wal.Device) {
		devs[dead] = fault.NewDevice(&fault.MemDevice{}, fault.Plan{CrashAtByte: 200})
	})
	tx := e.NewTx(0, 2)

	// Hammer the doomed partition until the crash surfaces. The commit that
	// hits the dead device classifies as a partition outage either way: at
	// the append/wait (committed in memory, not durable) or at the gate
	// once the guard has quarantined.
	var sawUnavailable bool
	for i := 0; i < 200; i++ {
		err := setKey(tx, tbl, dead, int64(i))
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrPartitionUnavailable) {
			t.Fatalf("doomed-partition commit error = %v, want ErrPartitionUnavailable", err)
		}
		sawUnavailable = true
		break
	}
	if !sawUnavailable {
		t.Fatal("crash never surfaced")
	}

	// The guard quarantines asynchronously; wait for the mask.
	deadline := time.Now().Add(5 * time.Second)
	for e.QuarantinedPartitions() != 1<<dead {
		if time.Now().After(deadline) {
			t.Fatalf("guard never quarantined: mask %#x", e.QuarantinedPartitions())
		}
		time.Sleep(time.Millisecond)
	}

	// Terminal, not retried: one attempt, one PartitionAborts.
	before := tx.Counter().PartitionAborts
	if err := setKey(tx, tbl, dead, 1); !errors.Is(err, ErrPartitionUnavailable) {
		t.Fatalf("gated commit error = %v", err)
	}
	if got := tx.Counter().PartitionAborts - before; got != 1 {
		t.Fatalf("PartitionAborts delta = %d, want 1", got)
	}

	// Healthy partitions are oblivious.
	for k := uint64(0); k < uint64(parts); k++ {
		if k == dead {
			continue
		}
		if err := setKey(tx, tbl, k, 5); err != nil {
			t.Fatalf("healthy partition %d: %v", k, err)
		}
	}
	e.Close()
}

// TestPartitionStallEscalation stalls one device's sync forever and proves
// the guard escalates the gray failure to a quarantine after
// QuarantineStall, unblocking the parked commit with the partition class.
func TestPartitionStallEscalation(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	const parts = 2
	const dead = 1
	var stalled *fault.Device
	e, _, tbl := partEngine(t, parts, 16, func(cfg *Config, devs []wal.Device) {
		stalled = fault.NewDevice(&fault.MemDevice{}, fault.Plan{StallSyncAt: 1})
		devs[dead] = stalled
		cfg.QuarantineStall = 50 * time.Millisecond
	})
	// Release the stalled sync before Close so the flusher can drain.
	defer stalled.Release()

	tx := e.NewTx(0, 3)
	err := setKey(tx, tbl, dead, 42)
	if !errors.Is(err, ErrPartitionUnavailable) {
		t.Fatalf("stalled-partition commit = %v, want ErrPartitionUnavailable", err)
	}
	if e.QuarantinedPartitions() != 1<<dead {
		t.Fatalf("mask = %#x, want %#x", e.QuarantinedPartitions(), 1<<dead)
	}
	// The healthy partition was never frozen for long: it still commits.
	if err := setKey(tx, tbl, 0, 1); err != nil {
		t.Fatal(err)
	}
	stalled.Release()
	e.Close()
}

// TestMultiPartitionCommitReplication proves a cross-partition write is
// replicated on every touched stream — each stream's replay independently
// yields its partition's slice of the transaction.
func TestMultiPartitionCommitReplication(t *testing.T) {
	const parts = 3
	e, mems, tbl := partEngine(t, parts, 16, nil)
	tx := e.NewTx(0, 4)
	if err := tx.Run(func(tx *Tx) error {
		for k := uint64(0); k < parts; k++ {
			row, err := tx.Update(tbl, k)
			if err != nil {
				return err
			}
			setV(tbl, row, int64(70+k))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < parts; p++ {
		var saw uint64
		if _, err := wal.ReplayStreamsPartitioned([]io.Reader{bytes.NewReader(mems[p].Bytes())}, func(_ int, cr *wal.CommitRecord) error {
			// Every stream carries the full record.
			if len(cr.Entries) != parts {
				t.Fatalf("stream %d record has %d entries, want %d", p, len(cr.Entries), parts)
			}
			for i := range cr.Entries {
				saw += cr.Entries[i].Key
			}
			return nil
		}); err != nil {
			t.Fatalf("stream %d replay: %v", p, err)
		}
		if saw != 0+1+2 {
			t.Fatalf("stream %d saw keys summing %d", p, saw)
		}
	}
}

// TestSlicedCheckpointRecoverFromStore runs the full sliced lifecycle:
// checkpoint generations written as per-partition slices, crash, partitioned
// store recovery (each partition from its own newest valid slice plus its
// stream's certified tail) — then again with one slice corrupted, proving
// the corrupt slice degrades only its partition's bounded-recovery head
// start, never correctness.
func TestSlicedCheckpointRecoverFromStore(t *testing.T) {
	const parts = 2
	const keys = 32
	store := fault.NewMemStore(fault.StoreChaos{Seed: 7})
	att, err := InitCheckpointLog(store, parts, wal.ModeValue)
	if err != nil {
		t.Fatal(err)
	}
	e := openEngine(t, Config{
		Protocol:          "SILO",
		Threads:           parts,
		Partitions:        parts,
		LogMode:           wal.ModeValue,
		WALStreams:        parts,
		LogDevices:        att.Devices,
		PartitionWAL:      true,
		GroupCommitWindow: 100 * time.Microsecond,
		EpochInterval:     time.Millisecond,
	})
	tbl := kvTable(t, e, "kv", IndexHash, keys)
	tx := e.NewTx(0, 5)
	for k := uint64(0); k < keys; k++ {
		if err := setKey(tx, tbl, k, int64(k)); err != nil {
			t.Fatal(err)
		}
	}
	ck, err := e.NewCheckpointer(store, 2, att.Devices)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	m := ck.Manifest()
	if len(m.Checkpoints) != 1 || m.Checkpoints[0].Slices != parts {
		t.Fatalf("manifest checkpoints = %+v, want one sliced generation", m.Checkpoints)
	}
	// Post-checkpoint tail: bump half the keys.
	for k := uint64(0); k < keys; k += 2 {
		if err := setKey(tx, tbl, k, int64(1000+k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	want := func(k uint64) int64 {
		if k%2 == 0 {
			return int64(1000 + k)
		}
		return int64(k)
	}
	recoverAndVerify := func(t *testing.T, s *fault.MemStore, wantFallbacks bool) {
		att2, err := AttachCheckpointLog(s)
		if err != nil {
			t.Fatal(err)
		}
		e2 := openEngine(t, Config{
			Protocol:          "SILO",
			Threads:           parts,
			Partitions:        parts,
			LogMode:           wal.ModeValue,
			WALStreams:        parts,
			LogDevices:        att2.Devices,
			PartitionWAL:      true,
			GroupCommitWindow: 100 * time.Microsecond,
			EpochInterval:     time.Millisecond,
		})
		tbl2 := kvTable(t, e2, "kv", IndexHash, 0)
		load := func() error {
			row := tbl2.Schema().NewRow()
			for k := uint64(0); k < keys; k++ {
				if err := e2.Load(tbl2, k, row); err != nil {
					return err
				}
			}
			return nil
		}
		rs, err := e2.RecoverFromStore(s, att2, load)
		if err != nil {
			t.Fatal(err)
		}
		if wantFallbacks != (rs.CheckpointFallbacks > 0) {
			t.Fatalf("CheckpointFallbacks = %d, want >0 == %v", rs.CheckpointFallbacks, wantFallbacks)
		}
		tx2 := e2.NewTx(0, 6)
		for k := uint64(0); k < keys; k++ {
			row, err := tx2.Run2(tbl2, k)
			if err != nil {
				t.Fatalf("key %d: %v", k, err)
			}
			if got := tbl2.Schema().GetInt64(row, 0); got != want(k) {
				t.Fatalf("key %d = %d, want %d", k, got, want(k))
			}
		}
	}

	t.Run("clean", func(t *testing.T) {
		recoverAndVerify(t, store.Survivor(fault.StoreChaos{Seed: 8}), false)
	})
	t.Run("corrupt slice", func(t *testing.T) {
		s := store.Survivor(fault.StoreChaos{Seed: 9})
		if !s.FlipCheckpointByte(sliceName(checkpointName(1), 0), 40) {
			t.Fatal("no slice object to corrupt")
		}
		// Partition 0's slice is unloadable; with only one generation the
		// engine degrades to initial load plus full-log replay — and still
		// lands on the exact committed state.
		recoverAndVerify(t, s, true)
	})
}

// TestCheckpointDeferredWhileQuarantined proves a sliced checkpoint cycle
// refuses to run while any partition is quarantined, and resumes after
// recovery lifts the quarantine.
func TestCheckpointDeferredWhileQuarantined(t *testing.T) {
	const parts = 2
	store := fault.NewMemStore(fault.StoreChaos{Seed: 11})
	att, err := InitCheckpointLog(store, parts, wal.ModeValue)
	if err != nil {
		t.Fatal(err)
	}
	e := openEngine(t, Config{
		Protocol:          "SILO",
		Threads:           parts,
		Partitions:        parts,
		LogMode:           wal.ModeValue,
		WALStreams:        parts,
		LogDevices:        att.Devices,
		PartitionWAL:      true,
		GroupCommitWindow: 100 * time.Microsecond,
		EpochInterval:     time.Millisecond,
	})
	tbl := kvTable(t, e, "kv", IndexHash, 8)
	tx := e.NewTx(0, 7)
	for k := uint64(0); k < 8; k++ {
		if err := setKey(tx, tbl, k, int64(k)); err != nil {
			t.Fatal(err)
		}
	}
	ck, err := e.NewCheckpointer(store, 2, att.Devices)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.QuarantinePartition(1); err != nil {
		t.Fatal(err)
	}
	if err := ck.CheckpointNow(); !errors.Is(err, ErrCheckpointQuarantined) {
		t.Fatalf("CheckpointNow under quarantine = %v, want ErrCheckpointQuarantined", err)
	}
	// Recover partition 1 from its own stream tail and readmit on a fresh
	// store segment, then the cycle goes through.
	rc, err := store.OpenSegment(segmentName(att.Gen, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	newDev, err := store.CreateSegment("seg-repair-1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RecoverPartition(1, nil, nil, rc, newDev); err != nil {
		t.Fatal(err)
	}
	if err := ck.CheckpointNow(); err != nil {
		t.Fatalf("CheckpointNow after recovery: %v", err)
	}
}

// TestLoadCheckpointSliceValidation proves the slice format is
// reject-completely-or-load-completely in both directions: LoadCheckpoint
// refuses a slice, LoadCheckpointSlice refuses a whole image and the wrong
// partition's slice.
func TestLoadCheckpointSliceValidation(t *testing.T) {
	e, _, tbl := partEngine(t, 2, 8, nil)
	tx := e.NewTx(0, 8)
	for k := uint64(0); k < 8; k++ {
		if err := setKey(tx, tbl, k, int64(k)); err != nil {
			t.Fatal(err)
		}
	}
	var whole, slice0 bytes.Buffer
	if err := e.Checkpoint(&whole); err != nil {
		t.Fatal(err)
	}
	if err := e.CheckpointSlice(&slice0, 0, 3, false); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadCheckpoint(bytes.NewReader(slice0.Bytes())); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("LoadCheckpoint(slice) = %v, want ErrBadCheckpoint", err)
	}
	if _, err := e.LoadCheckpointSlice(bytes.NewReader(whole.Bytes()), 0); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("LoadCheckpointSlice(whole) = %v, want ErrBadCheckpoint", err)
	}
	if _, err := e.LoadCheckpointSlice(bytes.NewReader(slice0.Bytes()), 1); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("LoadCheckpointSlice(wrong partition) = %v, want ErrBadCheckpoint", err)
	}
	// A slice loads only onto a cleared partition (live keys reject it —
	// that is the parse-fully-before-apply duplicate check above).
	e.clearPartition(0)
	if ep, err := e.LoadCheckpointSlice(bytes.NewReader(slice0.Bytes()), 0); err != nil || ep != 3 {
		t.Fatalf("LoadCheckpointSlice = (%d, %v), want (3, nil)", ep, err)
	}
	tx2 := e.NewTx(0, 9)
	for k := uint64(0); k < 8; k += 2 {
		row, err := tx2.Run2(tbl, k)
		if err != nil {
			t.Fatal(err)
		}
		if got := getV(tbl, row); got != int64(k) {
			t.Fatalf("slice-restored key %d = %d, want %d", k, got, k)
		}
	}
}

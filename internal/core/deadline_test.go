package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"next700/internal/fault"
	"next700/internal/testutil"
	"next700/internal/txn"
	"next700/internal/wal"
)

// deadlineSlack is how far past its deadline a transaction may plausibly
// take to surface the abort on a loaded CI machine. The product guarantee
// under test is "bounded, and bounded near the deadline" — not a hard
// real-time bound.
const deadlineSlack = 2 * time.Second

// withEngine opens an engine, runs fn, closes the engine, and then asserts
// no goroutine survived the close. Close happens inside the leak-checked
// region (unlike openEngine's t.Cleanup), which is the point: expired
// waiters, broadcast timers, and the WAL flusher must all be gone.
func withEngine(t *testing.T, cfg Config, fn func(e *Engine)) {
	t.Helper()
	defer testutil.CheckGoroutines(t)()
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	fn(e)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDeadlineBoundsRetryBackoff is the all-protocols half of the
// conformance matrix: a transaction that only ever conflicts must stop
// retrying — charging its backoff sleeps against the budget — and abort
// with the deadline class close to the deadline, under every protocol.
func TestDeadlineBoundsRetryBackoff(t *testing.T) {
	forAllProtocols(t, func(t *testing.T, protocol string) {
		withEngine(t, Config{
			Protocol: protocol,
			Threads:  1,
			Retry: RetryPolicy{
				MaxAttempts:  1 << 30,
				SpinAttempts: 1,
				BaseDelay:    2 * time.Millisecond,
				MaxDelay:     8 * time.Millisecond,
			},
		}, func(e *Engine) {
			tx := e.NewTx(0, 1)
			const deadline = 50 * time.Millisecond
			tx.SetDeadlineAfter(deadline)
			start := time.Now()
			err := tx.Run(func(*Tx) error { return txn.ErrConflict })
			elapsed := time.Since(start)
			if !errors.Is(err, ErrDeadlineExceeded) {
				t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
			}
			if elapsed > deadline+deadlineSlack {
				t.Fatalf("deadline abort took %v, want ~%v", elapsed, deadline)
			}
			c := tx.Counter()
			if c.DeadlineAborts != 1 || c.Commits != 0 {
				t.Fatalf("counters: deadline_aborts=%d commits=%d", c.DeadlineAborts, c.Commits)
			}
		})
	})
}

// testBlockedAcquireDeadline stages the blocking half of the matrix: a
// holder transaction sits on key 0 for longer than the victim's deadline,
// and the victim — begun earlier, so it is the older transaction where age
// matters (WAIT_DIE) — must come back with a deadline abort instead of
// waiting out the holder. The holder must then commit untouched: the
// victim's expiry may not corrupt lock or waits-for state.
func testBlockedAcquireDeadline(t *testing.T, protocol string) {
	withEngine(t, Config{Protocol: protocol, Threads: 2}, func(e *Engine) {
		tbl := kvTable(t, e, "kv", IndexHash, 4)

		victimBegan := make(chan struct{})
		holderHasLock := make(chan struct{})
		release := make(chan struct{})
		holderDone := make(chan error, 1)
		var beganOnce, lockedOnce sync.Once

		go func() {
			// Begin only after the victim's attempt has begun, so the victim
			// holds the older (smaller) priority stamp.
			<-victimBegan
			txH := e.NewTx(1, 2)
			holderDone <- txH.Run(func(tx *Tx) error {
				row, err := tx.Update(tbl, 0)
				if err != nil {
					return err
				}
				setV(tbl, row, 7)
				lockedOnce.Do(func() { close(holderHasLock) })
				<-release
				return nil
			})
		}()

		txV := e.NewTx(0, 1)
		const deadline = 60 * time.Millisecond
		txV.SetDeadlineAfter(deadline)
		start := time.Now()
		err := txV.Run(func(tx *Tx) error {
			beganOnce.Do(func() { close(victimBegan) })
			<-holderHasLock
			_, uerr := tx.Update(tbl, 0)
			return uerr
		})
		elapsed := time.Since(start)
		close(release)

		if !errors.Is(err, ErrDeadlineExceeded) {
			t.Fatalf("victim err = %v, want ErrDeadlineExceeded", err)
		}
		if elapsed > deadline+deadlineSlack {
			t.Fatalf("victim aborted after %v, want ~%v", elapsed, deadline)
		}
		if c := txV.Counter(); c.DeadlineAborts != 1 {
			t.Fatalf("victim deadline_aborts = %d, want 1", c.DeadlineAborts)
		}
		if herr := <-holderDone; herr != nil {
			t.Fatalf("holder err = %v", herr)
		}
		// The victim's expiry left the lock table sane: its slot can run
		// again and sees the holder's committed write.
		txV.ClearDeadline()
		if err := txV.Run(func(tx *Tx) error {
			row, rerr := tx.Read(tbl, 0)
			if rerr != nil {
				return rerr
			}
			if v := getV(tbl, row); v != 7 {
				t.Errorf("post-expiry read = %d, want 7", v)
			}
			return nil
		}); err != nil {
			t.Fatalf("post-expiry txn: %v", err)
		}
	})
}

// TestDeadlineBlockedAcquire covers every configuration that can actually
// park or spin on a held lock: the three 2PL variants and HSTORE's
// partition mutex. (The OCC and timestamp protocols never block on
// acquisition; their conformance path is the retry/backoff matrix above.)
func TestDeadlineBlockedAcquire(t *testing.T) {
	for _, protocol := range []string{"NO_WAIT", "WAIT_DIE", "DL_DETECT", "HSTORE"} {
		t.Run(protocol, func(t *testing.T) { testBlockedAcquireDeadline(t, protocol) })
	}
}

// TestDeadlineBoundsDurabilityWait pins the commit-wait-timeout semantics:
// with the log device stalled (gray failure: hung, not erroring), a
// deadline transaction comes back near its deadline with the deadline
// class, but the commit is still counted — it is memory-committed and its
// record stays staged, so the outcome is indeterminate, and indeed becomes
// durable once the device recovers.
func TestDeadlineBoundsDurabilityWait(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	mem := &fault.MemDevice{}
	dev := fault.NewDevice(mem, fault.Plan{StallSyncAt: 1})
	e, err := Open(Config{Protocol: "SILO", Threads: 1, LogMode: wal.ModeValue, LogDevice: dev})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tbl := kvTable(t, e, "kv", IndexHash, 4)

	tx := e.NewTx(0, 1)
	const deadline = 40 * time.Millisecond
	tx.SetDeadlineAfter(deadline)
	start := time.Now()
	err = tx.Run(func(tx *Tx) error {
		row, uerr := tx.Update(tbl, 0)
		if uerr != nil {
			return uerr
		}
		setV(tbl, row, 9)
		return nil
	})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if elapsed > deadline+deadlineSlack {
		t.Fatalf("durability wait returned after %v, want ~%v", elapsed, deadline)
	}
	c := tx.Counter()
	if c.Commits != 1 || c.DeadlineAborts != 0 {
		t.Fatalf("counters: commits=%d deadline_aborts=%d (indeterminate commit must count as a commit)", c.Commits, c.DeadlineAborts)
	}
	// Recover the device: the staged record drains and durability lands.
	dev.Release()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if mem.SyncedLen() == 0 {
		t.Fatal("record never reached the device after the stall cleared")
	}
}

// TestDeadlineClearedAndZeroIsNone: a cleared or never-set deadline must
// never abort, and a deadline in the future must not perturb a fast
// transaction.
func TestDeadlineFutureAndClearedAreHarmless(t *testing.T) {
	withEngine(t, Config{Protocol: "SILO", Threads: 1}, func(e *Engine) {
		tbl := kvTable(t, e, "kv", IndexHash, 4)
		tx := e.NewTx(0, 1)
		tx.SetDeadlineAfter(10 * time.Second)
		if err := tx.Run(func(tx *Tx) error {
			_, err := tx.Read(tbl, 1)
			return err
		}); err != nil {
			t.Fatalf("fast txn under future deadline: %v", err)
		}
		tx.ClearDeadline()
		if got := tx.DeadlineNanos(); got != 0 {
			t.Fatalf("DeadlineNanos after clear = %d", got)
		}
		if err := tx.Run(func(tx *Tx) error {
			_, err := tx.Read(tbl, 2)
			return err
		}); err != nil {
			t.Fatalf("txn after ClearDeadline: %v", err)
		}
		if c := tx.Counter(); c.Commits != 2 || c.DeadlineAborts != 0 {
			t.Fatalf("counters: commits=%d deadline_aborts=%d", c.Commits, c.DeadlineAborts)
		}
	})
}

// TestDeadlineAlreadyExpired: a deadline in the past aborts before the body
// ever runs.
func TestDeadlineAlreadyExpired(t *testing.T) {
	withEngine(t, Config{Protocol: "SILO", Threads: 1}, func(e *Engine) {
		tx := e.NewTx(0, 1)
		tx.SetDeadlineNanos(time.Now().Add(-time.Millisecond).UnixNano())
		ran := false
		err := tx.Run(func(*Tx) error { ran = true; return nil })
		if !errors.Is(err, ErrDeadlineExceeded) {
			t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
		}
		if ran {
			t.Fatal("body ran despite an expired deadline")
		}
		if c := tx.Counter(); c.DeadlineAborts != 1 {
			t.Fatalf("deadline_aborts = %d, want 1", c.DeadlineAborts)
		}
	})
}

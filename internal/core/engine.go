// Package core is the engine kernel: it composes a storage catalog, index
// structures, a pluggable concurrency-control protocol, and an optional
// write-ahead log into a runnable transaction processing engine — the
// "composable engine" the keynote argues the next 700 designs should be
// instances of.
//
// The public façade package (next700) wraps this kernel with a stable API;
// workloads and benchmarks drive it directly.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"next700/internal/cc"
	"next700/internal/index"
	"next700/internal/stats"
	"next700/internal/storage"
	"next700/internal/txn"
	"next700/internal/wal"
)

// IndexKind selects the index family for a table's primary or secondary
// index.
type IndexKind int

const (
	// IndexHash is a partitioned hash index: point lookups only.
	IndexHash IndexKind = iota
	// IndexBTree is a concurrent B+ tree: point lookups and range scans.
	IndexBTree
)

// Config selects a point in the engine design space.
type Config struct {
	// Protocol is the concurrency-control scheme (see cc.Names).
	Protocol string
	// Threads is the number of worker slots; ThreadIDs passed to NewTx must
	// be < Threads.
	Threads int
	// Partitions is the partition count (HSTORE; also used by workloads).
	Partitions int
	// Isolation tunes MVCC ("serializable" default, "snapshot",
	// "read-committed").
	Isolation string
	// LogMode selects durability: none, value, or command logging.
	LogMode wal.Mode
	// LogDevice is the durable sink when LogMode != ModeNone and
	// WALStreams <= 1 (the classic single-stream group-commit writer).
	LogDevice wal.Device
	// WALStreams selects the parallel-WAL stream count. Above 1 the engine
	// logs through a wal.StreamSet: workers append to stream
	// threadID % WALStreams and commit waits block on the epoch-based
	// durable frontier instead of a per-record LSN.
	WALStreams int
	// LogDevices are the per-stream durable sinks when WALStreams > 1;
	// exactly WALStreams devices are required.
	LogDevices []wal.Device
	// GroupCommitWindow is the group-commit batching window (0 = flush on
	// every commit). With WALStreams > 1 it is the epoch advance period.
	GroupCommitWindow time.Duration
	// PartitionWAL shards the parallel WAL by partition instead of worker
	// thread: stream p is partition p's log (WALStreams must equal
	// Partitions, value mode only, at most 64 partitions), commits append to
	// every stream their write set touches, and a stream's device failure
	// degrades only its partition — the engine quarantines it, sheds its
	// transactions with ErrPartitionUnavailable, and keeps the healthy
	// partitions committing durably. See QuarantinePartition and
	// RecoverPartition.
	PartitionWAL bool
	// QuarantineStall, when > 0 with PartitionWAL, is the gray-failure
	// escalation threshold: a stream whose sync claim makes no progress
	// while records are pending for this long is failed and quarantined as
	// if its device had errored. Zero disables stall escalation.
	QuarantineStall time.Duration
	// OnPartitionDown, when set with PartitionWAL, is invoked after a
	// partition is quarantined (down=true) and after RecoverPartition
	// readmits it (down=false). Harness layers hook per-partition admission
	// shedding here. Called from the quarantine guard goroutine or the
	// recovering caller; it must not block.
	OnPartitionDown func(part int, down bool)
	// EpochInterval is the Silo epoch advance period (default 10ms).
	EpochInterval time.Duration
	// Retry bounds Tx.Run's transient-abort retry loop and its jittered
	// exponential backoff; zero fields select defaults (see RetryPolicy).
	Retry RetryPolicy
}

// normalize fills defaults and validates.
func (c *Config) normalize() error {
	if c.Protocol == "" {
		c.Protocol = "SILO"
	}
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.Partitions <= 0 {
		c.Partitions = c.Threads
	}
	if c.EpochInterval <= 0 {
		c.EpochInterval = 10 * time.Millisecond
	}
	c.Retry = c.Retry.normalized()
	if c.WALStreams == 1 && c.LogDevice == nil && len(c.LogDevices) == 1 {
		c.LogDevice = c.LogDevices[0]
	}
	if c.WALStreams > 1 {
		if c.LogMode == wal.ModeNone {
			return fmt.Errorf("core: WALStreams requires a logging mode: %w", ErrInvalidUsage)
		}
		if len(c.LogDevices) != c.WALStreams {
			return fmt.Errorf("core: WALStreams=%d requires exactly that many LogDevices, have %d: %w",
				c.WALStreams, len(c.LogDevices), ErrInvalidUsage)
		}
	} else if c.LogMode != wal.ModeNone && c.LogDevice == nil {
		return fmt.Errorf("core: LogMode %v requires a LogDevice: %w", c.LogMode, ErrInvalidUsage)
	}
	if c.PartitionWAL {
		if c.WALStreams <= 1 {
			return fmt.Errorf("core: PartitionWAL requires WALStreams > 1: %w", ErrInvalidUsage)
		}
		if c.LogMode != wal.ModeValue {
			// Command replay re-executes procedures, which cannot be sliced
			// per partition or replayed idempotently from a fuzzy base.
			return fmt.Errorf("core: PartitionWAL requires value logging, have %v: %w", c.LogMode, ErrInvalidUsage)
		}
		if c.WALStreams != c.Partitions {
			return fmt.Errorf("core: PartitionWAL requires WALStreams == Partitions, have %d streams for %d partitions: %w",
				c.WALStreams, c.Partitions, ErrInvalidUsage)
		}
		if c.Partitions > 64 {
			// The quarantine mask is one uint64 so the hot-path gate is a
			// single atomic load.
			return fmt.Errorf("core: PartitionWAL supports at most 64 partitions, have %d: %w", c.Partitions, ErrInvalidUsage)
		}
	}
	return nil
}

// secondary is a non-primary index with a key extractor.
type secondary struct {
	name    string
	idx     index.Index
	extract func(sch *storage.Schema, row storage.Row, pk uint64) uint64
}

// Table is the engine-level table handle: storage plus its indexes.
type Table struct {
	tbl         *storage.Table
	sch         *storage.Schema
	primary     index.Index
	secondaries []secondary
}

// Schema returns the table's schema.
func (t *Table) Schema() *storage.Schema { return t.sch }

// Name returns the table name.
func (t *Table) Name() string { return t.sch.Name() }

// NumRows returns the number of allocated row slots.
func (t *Table) NumRows() uint64 { return t.tbl.NumRows() }

// PrimaryLen returns the number of live keys in the primary index.
func (t *Table) PrimaryLen() int { return t.primary.Len() }

// Ranger returns the primary index as a Ranger if it supports scans.
func (t *Table) ranger() (index.Ranger, bool) {
	r, ok := t.primary.(index.Ranger)
	return r, ok
}

// Proc is a registered stored procedure for command logging: it must be
// deterministic given its parameter blob.
type Proc func(tx *Tx, params []byte) error

// Engine is the composed transaction processing engine.
type Engine struct {
	cfg     Config
	catalog *storage.Catalog
	env     *cc.Env
	proto   cc.Protocol

	// counters holds one cache-line-padded statistics slot per worker
	// thread; NewTx hands out slot threadID. Workers bump their own slot
	// without synchronization and totals are aggregated only at report
	// time, so the commit hot path never bounces a shared cache line.
	counters *stats.CounterSet

	mu     sync.RWMutex
	tables map[string]*Table
	byID   []*Table
	procs  map[int32]Proc

	logw     *wal.Writer
	logs     *wal.StreamSet
	stopTick chan struct{}
	tickDone chan struct{}
	closed   bool

	// quarMask is the quarantined-partition bitmask (bit p set = partition
	// p unavailable). The operation and commit gates load it once; in a
	// healthy engine it is zero and the gate is a single branch.
	quarMask atomic.Uint64
	// guardStop/guardDone bracket the partition guard goroutine
	// (PartitionWAL only).
	guardStop chan struct{}
	guardDone chan struct{}

	// ckptFence serializes online checkpointing against the commit path's
	// publish-to-append window. Commits on the parallel WAL hold the read
	// side from protocol commit through log append, so when a checkpointer
	// takes the write side to rotate the log it knows every commit is
	// wholly before or wholly after the rotation boundary: the commit's
	// epoch tag is drawn inside the fence, and the rotation bumps the epoch
	// while the fence is drained. Uncontended, the read lock is one atomic
	// on the hot path.
	ckptFence sync.RWMutex

	// quiesce is the transaction-attempt gate: every Tx.run attempt holds
	// the read side from Begin through commit/abort. Command-logged and
	// HSTORE checkpoints take the write side to get a true quiescent point
	// — their state cannot be captured fuzzily because command replay
	// re-executes procedures, which is not idempotent against a partially
	// captured prefix. Value-mode checkpoints never take it.
	quiesce sync.RWMutex

	// ckptThread is the reserved worker slot for checkpoint reads:
	// cc.NewEnv is sized one past Config.Threads so the online scan can run
	// protocol reads concurrently with a full complement of workers without
	// sharing per-thread protocol state or a statistics cache line.
	ckptThread int

	// ckptTx is the lazily created context used by checkpoint-phase reads.
	ckptTx *Tx
}

// Open builds an engine for the given configuration.
func Open(cfg Config) (*Engine, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	// One extra protocol slot beyond the configured workers: the online
	// checkpointer reads through it (see ckptThread).
	env := cc.NewEnv(cfg.Threads + 1)
	env.NumPartitions = cfg.Partitions
	env.IsolationLevel = cfg.Isolation
	proto, err := cc.New(cfg.Protocol, env)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:      cfg,
		catalog:  storage.NewCatalog(),
		env:      env,
		proto:    proto,
		counters: stats.NewCounterSet(cfg.Threads),
		tables:   make(map[string]*Table),
		procs:    make(map[int32]Proc),
		stopTick: make(chan struct{}),
		tickDone: make(chan struct{}),
	}
	e.ckptThread = cfg.Threads
	if cfg.LogMode != wal.ModeNone {
		if cfg.WALStreams > 1 {
			if cfg.PartitionWAL {
				e.logs = wal.NewStreamSetScoped(cfg.LogDevices, cfg.GroupCommitWindow)
			} else {
				e.logs = wal.NewStreamSet(cfg.LogDevices, cfg.GroupCommitWindow)
			}
		} else {
			e.logw = wal.NewWriter(cfg.LogDevice, cfg.GroupCommitWindow)
		}
	}
	if cfg.PartitionWAL {
		e.guardStop = make(chan struct{})
		e.guardDone = make(chan struct{})
		go e.partitionGuard()
	}
	go e.epochTicker()
	return e, nil
}

// epochTicker advances the Silo epoch periodically.
func (e *Engine) epochTicker() {
	defer close(e.tickDone)
	t := time.NewTicker(e.cfg.EpochInterval)
	defer t.Stop()
	for {
		select {
		case <-e.stopTick:
			return
		case <-t.C:
			e.env.Epoch.Advance()
		}
	}
}

// Close stops background work and flushes the log.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	close(e.stopTick)
	<-e.tickDone //next700:allowwait(shutdown join: stopTick close guarantees the epoch ticker exits)
	if e.guardStop != nil {
		close(e.guardStop)
		<-e.guardDone //next700:allowwait(shutdown join: guardStop close guarantees the partition guard exits)
	}
	if e.logw != nil {
		return e.logw.Close()
	}
	if e.logs != nil {
		return e.logs.Close()
	}
	return nil
}

// counterSlot returns the padded statistics slot for a worker thread.
// ThreadIDs beyond the configured worker count (auxiliary contexts) get a
// private counter so they never contend with measured workers.
func (e *Engine) counterSlot(threadID int) *stats.Counter {
	if threadID >= 0 && threadID < e.counters.Len() {
		return e.counters.Slot(threadID)
	}
	return &stats.Counter{}
}

// TotalCounter aggregates every worker slot's statistics. Exact once
// workers are quiescent.
func (e *Engine) TotalCounter() stats.Counter { return e.counters.Total() }

// Protocol returns the active protocol's name.
func (e *Engine) Protocol() string { return e.proto.Name() }

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// CreateTable registers a table with a primary index of the given kind.
// Primary keys are caller-supplied uint64s (composite keys are bit-packed
// by the workload layer).
func (e *Engine) CreateTable(sch *storage.Schema, primary IndexKind) (*Table, error) {
	tbl, err := e.catalog.CreateTable(sch)
	if err != nil {
		return nil, err
	}
	t := &Table{tbl: tbl, sch: sch}
	switch primary {
	case IndexHash:
		t.primary = index.NewHash(sch.Name()+".pk", 0)
	case IndexBTree:
		t.primary = index.NewBTree(sch.Name() + ".pk")
	default:
		return nil, fmt.Errorf("core: unknown index kind %d: %w", primary, ErrInvalidUsage)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.tables[sch.Name()] = t
	for tbl.ID() >= len(e.byID) {
		e.byID = append(e.byID, nil)
	}
	e.byID[tbl.ID()] = t
	return t, nil
}

// AddIndex attaches a secondary index. extract derives the (unique) index
// key from a row image and its primary key; non-unique indexes are modeled
// by folding a uniquifier (e.g. the primary key) into the low bits.
// Secondary indexes are maintained on insert and delete; updates must not
// change indexed columns (the standard research-engine restriction).
//
// If the table already holds rows (AddIndex after Load), the existing rows
// are backfilled from the primary index so the new index is complete.
// AddIndex must not run concurrently with transactions.
func (e *Engine) AddIndex(t *Table, name string, kind IndexKind,
	extract func(sch *storage.Schema, row storage.Row, pk uint64) uint64) error {
	var idx index.Index
	switch kind {
	case IndexHash:
		idx = index.NewHash(t.Name()+"."+name, 0)
	case IndexBTree:
		idx = index.NewBTree(t.Name() + "." + name)
	default:
		return fmt.Errorf("core: unknown index kind %d: %w", kind, ErrInvalidUsage)
	}
	var backfillErr error
	if t.tbl.NumRows() > 0 {
		// Backfill: walk the primary index so each live row's key is known.
		t.primary.Iterate(func(key uint64, rid storage.RecordID) bool {
			if t.tbl.IsTombstoned(rid) {
				return true
			}
			if _, ok := idx.Insert(extract(t.sch, t.tbl.Row(rid), key), rid); !ok {
				backfillErr = fmt.Errorf("core: duplicate key backfilling index %s.%s (pk %d): %w",
					t.Name(), name, key, txn.ErrDuplicate)
				return false
			}
			return true
		})
	}
	if backfillErr != nil {
		return backfillErr
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	t.secondaries = append(t.secondaries, secondary{name: name, idx: idx, extract: extract})
	return nil
}

// Table returns the named table handle, or nil.
func (e *Engine) Table(name string) *Table {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.tables[name]
}

// tableByID resolves a storage table id to the engine handle.
func (e *Engine) tableByID(id int) *Table {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if id < 0 || id >= len(e.byID) {
		return nil
	}
	return e.byID[id]
}

// findSecondary returns the named secondary index of t, or nil.
func (t *Table) findSecondary(name string) *secondary {
	for i := range t.secondaries {
		if t.secondaries[i].name == name {
			return &t.secondaries[i]
		}
	}
	return nil
}

// Load inserts a row during the single-threaded load phase, bypassing
// concurrency control (but informing protocols that track record state).
// It must not run concurrently with transactions.
func (e *Engine) Load(t *Table, key uint64, row storage.Row) error {
	if len(row) != t.sch.RowSize() {
		return fmt.Errorf("core: row size %d != schema %d for %q: %w", len(row), t.sch.RowSize(), t.Name(), ErrInvalidUsage)
	}
	rid := t.tbl.Alloc()
	copy(t.tbl.Row(rid), row)
	if _, ok := t.primary.Insert(key, rid); !ok {
		return fmt.Errorf("core: duplicate key %d loading %q: %w", key, t.Name(), txn.ErrDuplicate)
	}
	for i := range t.secondaries {
		s := &t.secondaries[i]
		s.idx.Insert(s.extract(t.sch, row, key), rid)
	}
	if loader, ok := e.proto.(cc.Loader); ok {
		loader.LoadRecord(t.tbl, rid, key, row)
	}
	return nil
}

// SetPartitioner installs a (table, key) -> partition mapping used by
// HSTORE. Must be called before Load and before transactions run.
func (e *Engine) SetPartitioner(fn func(tbl *Table, key uint64) int) {
	e.env.PartitionOf = func(st *storage.Table, key uint64) int {
		th := e.tableByID(st.ID())
		if th == nil {
			return -1
		}
		return fn(th, key)
	}
}

// RegisterProc registers a stored procedure for command logging and
// recovery. IDs must be stable across restarts.
func (e *Engine) RegisterProc(id int32, fn Proc) error {
	if id == 0 {
		return fmt.Errorf("core: proc id 0 is reserved: %w", ErrInvalidUsage)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.procs[id]; dup {
		return fmt.Errorf("core: proc %d already registered: %w", id, ErrInvalidUsage)
	}
	e.procs[id] = fn
	return nil
}

// proc returns the registered procedure, or nil.
func (e *Engine) proc(id int32) Proc {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.procs[id]
}

// DurableLSN returns the log writer's durable LSN (0 when logging is off or
// the engine logs through a parallel StreamSet — see DurableEpoch).
func (e *Engine) DurableLSN() uint64 {
	if e.logw == nil {
		return 0
	}
	return e.logw.Durable()
}

// DurableEpoch returns the parallel log's durable epoch frontier (0 when
// the engine is not logging through a StreamSet).
func (e *Engine) DurableEpoch() uint64 {
	if e.logs == nil {
		return 0
	}
	return e.logs.DurableEpoch()
}

// logFailed reports sticky log-device failure for whichever log backend is
// active; one atomic load on the commit hot path.
func (e *Engine) logFailed() bool {
	if e.logw != nil {
		return e.logw.Failed()
	}
	return e.logs != nil && e.logs.Failed()
}

// logErr returns the sticky log error for the active backend.
func (e *Engine) logErr() error {
	if e.logw != nil {
		return e.logw.Err()
	}
	if e.logs != nil {
		return e.logs.Err()
	}
	return nil
}

// AdvanceEpoch manually advances the Silo epoch (tests and benchmarks).
func (e *Engine) AdvanceEpoch() { e.env.Epoch.Advance() }

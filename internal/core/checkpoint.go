package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"time"

	"next700/internal/storage"
	"next700/internal/txn"
)

// Checkpoint format:
//
//	magic "N7CK" | version u32 | tableCount u32
//	per table: nameLen u32 | name | rowSize u32 | entryCount u64
//	  per entry: key u64 | rid u64 | row bytes (rowSize)
//	crc32 (IEEE) over everything before it
//
// Version 2 is the partition-sliced variant: after the version word it
// carries `partition u32 | epoch u64` — the slice's partition id and its
// epoch fence (the slice holds that partition's effects through this
// epoch, healed by replaying the partition's log tail past it). A sliced
// generation is one version-2 object per partition, each independently
// CRC-sealed, so corruption of one slice degrades only that partition's
// recovery path.
//
// Entries are written in ascending key order so checkpoints of equal state
// are byte-identical.

var checkpointMagic = [4]byte{'N', '7', 'C', 'K'}

const (
	checkpointVersion      = 1
	checkpointSliceVersion = 2
)

// ckptMeta is the parsed identity of a checkpoint stream: whole-engine
// (sliced false) or one partition's slice with its embedded epoch fence.
type ckptMeta struct {
	sliced    bool
	partition int
	epoch     uint64
}

// ErrBadCheckpoint reports a malformed or corrupt checkpoint stream.
var ErrBadCheckpoint = errors.New("core: bad checkpoint")

// crcWriter tees writes into a running CRC.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p)
	return cw.w.Write(p)
}

// Checkpoint serializes a transactionally consistent snapshot of every
// table to w. The engine must be quiesced (no in-flight transactions);
// combined with starting a fresh WAL right after, it bounds recovery to
// checkpoint load plus the log tail.
//
// Only index-reachable, live records are written; aborted or deleted
// residue is not. Record ids are preserved so a value-log tail written
// after the checkpoint replays against the restored state.
func (e *Engine) Checkpoint(w io.Writer) error {
	return e.writeCheckpoint(w, nil, e.collectQuiesced)
}

// CheckpointOnline serializes a fuzzy snapshot of every table while
// transactions keep running: each row is captured through a committed-read
// micro-transaction on the reserved checkpoint slot, so no image is ever
// torn, but different rows may reflect different commit points. The result
// is consistent only after replaying the value-log tail past the capture's
// start epoch (see Checkpointer): any commit the scan raced with tags an
// epoch at or after it, and value replay is idempotent. It must therefore
// only be used under value logging; command replay re-executes procedures
// and cannot heal a fuzzy base.
//
// Rows whose committed image is not visible (uncommitted inserts, deleted
// residue) are skipped: if they commit, the log tail has them.
func (e *Engine) CheckpointOnline(w io.Writer) error {
	return e.writeCheckpoint(w, nil, e.collectOnline)
}

// CheckpointSlice serializes one partition's slice of the engine state:
// only rows whose primary key maps to part are written, under the
// version-2 format carrying (part, epoch) as the slice identity and epoch
// fence. online selects the fuzzy scan (value logging; heal by replaying
// the partition's tail past epoch); otherwise the caller must have
// quiesced the engine.
func (e *Engine) CheckpointSlice(w io.Writer, part int, epoch uint64, online bool) error {
	collect := e.collectQuiesced
	if online {
		collect = e.collectOnline
	}
	sliced := func(t *Table) ([]ckptEntry, error) {
		entries, err := collect(t)
		if err != nil {
			return nil, err
		}
		out := entries[:0]
		for _, en := range entries {
			if e.partitionOfKey(t.tbl, en.key) == part {
				out = append(out, en)
			}
		}
		return out, nil
	}
	return e.writeCheckpoint(w, &ckptMeta{sliced: true, partition: part, epoch: epoch}, sliced)
}

// writeCheckpoint writes the checkpoint format around a row collector.
// slice non-nil selects the version-2 per-partition header.
func (e *Engine) writeCheckpoint(w io.Writer, slice *ckptMeta, collect func(t *Table) ([]ckptEntry, error)) error {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	var scratch [20]byte

	tables := e.snapshotTables()
	if _, err := cw.Write(checkpointMagic[:]); err != nil {
		return err
	}
	version := uint32(checkpointVersion)
	if slice != nil {
		version = checkpointSliceVersion
	}
	binary.LittleEndian.PutUint32(scratch[0:], version)
	if _, err := cw.Write(scratch[:4]); err != nil {
		return err
	}
	if slice != nil {
		binary.LittleEndian.PutUint32(scratch[0:], uint32(slice.partition))
		binary.LittleEndian.PutUint64(scratch[4:], slice.epoch)
		if _, err := cw.Write(scratch[:12]); err != nil {
			return err
		}
	}
	binary.LittleEndian.PutUint32(scratch[0:], uint32(len(tables)))
	if _, err := cw.Write(scratch[:4]); err != nil {
		return err
	}

	for _, t := range tables {
		entries, err := collect(t)
		if err != nil {
			return err
		}
		name := t.Name()
		binary.LittleEndian.PutUint32(scratch[0:], uint32(len(name)))
		if _, err := cw.Write(scratch[:4]); err != nil {
			return err
		}
		if _, err := io.WriteString(cw, name); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(scratch[0:], uint32(t.sch.RowSize()))
		binary.LittleEndian.PutUint64(scratch[4:], uint64(len(entries)))
		if _, err := cw.Write(scratch[:12]); err != nil {
			return err
		}
		for _, en := range entries {
			binary.LittleEndian.PutUint64(scratch[0:], en.key)
			binary.LittleEndian.PutUint64(scratch[8:], uint64(en.rid))
			if _, err := cw.Write(scratch[:16]); err != nil {
				return err
			}
			if _, err := cw.Write(en.row); err != nil {
				return err
			}
		}
	}

	binary.LittleEndian.PutUint32(scratch[0:], cw.crc)
	if _, err := bw.Write(scratch[:4]); err != nil {
		return err
	}
	return bw.Flush()
}

// ckptEntry is one collected (key, rid, row image) triple.
type ckptEntry struct {
	key uint64
	rid storage.RecordID
	row []byte
}

// collectKeys snapshots a table's primary index into key order.
func collectKeys(t *Table) []ckptEntry {
	entries := make([]ckptEntry, 0, t.primary.Len())
	t.primary.Iterate(func(key uint64, rid storage.RecordID) bool {
		entries = append(entries, ckptEntry{key: key, rid: rid})
		return true
	})
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	return entries
}

// collectQuiesced captures rows with the engine quiesced. Images are
// copied out because protocol reads may return a per-context buffer that
// the next read reuses.
func (e *Engine) collectQuiesced(t *Table) ([]ckptEntry, error) {
	entries := collectKeys(t)
	for i := range entries {
		entries[i].row = append([]byte(nil), e.checkpointRow(t, entries[i].rid)...)
	}
	return entries, nil
}

// onlineRowAttempts bounds the committed-read retries per row before the
// checkpoint cycle fails cleanly (no generation is installed). Conflicts
// here are rare: a row is only contended for the length of one commit.
const onlineRowAttempts = 64

// collectOnline captures rows through per-row committed-read
// micro-transactions concurrent with workers. A read that cannot see a
// committed image (ErrNotFound: uncommitted insert, tombstoned residue)
// skips the row; a conflicting read (lock busy under the 2PL variants) is
// retried a bounded number of times. Images are copied out before the read
// transaction is released, so nothing aliases memory a writer may recycle.
func (e *Engine) collectOnline(t *Table) ([]ckptEntry, error) {
	entries := collectKeys(t)
	tx := e.checkpointTx()
	out := entries[:0]
	for i := range entries {
		en := entries[i]
		var row []byte
		var err error
		for attempt := 0; ; attempt++ {
			row, err = e.onlineRow(tx, t, en.rid)
			if err == nil || errors.Is(err, txn.ErrNotFound) {
				break
			}
			if attempt+1 >= onlineRowAttempts {
				return nil, fmt.Errorf("core: online checkpoint of %q rid %d: %w", t.Name(), en.rid, err)
			}
			time.Sleep(time.Duration(attempt+1) * 10 * time.Microsecond)
		}
		if err != nil {
			continue //next700:allowretry(skip, not retry: the row is left to the log tail; the loop advances to the next entry)
		}
		en.row = row
		out = append(out, en)
	}
	return out, nil
}

// onlineRow reads one committed row image through a throwaway transaction
// and returns a copy.
func (e *Engine) onlineRow(tx *Tx, t *Table, rid storage.RecordID) ([]byte, error) {
	tx.inner.Reset()
	e.proto.Begin(tx.inner)
	data, err := e.proto.Read(tx.inner, t.tbl, rid)
	if err != nil {
		e.proto.Abort(tx.inner)
		return nil, err
	}
	row := append([]byte(nil), data...)
	e.proto.Abort(tx.inner)
	return row, nil
}

// checkpointRow returns the committed image of a live record. For
// version-storing protocols (MVCC, SILO) the table row can be stale, so
// the committed image is fetched through a throwaway read.
func (e *Engine) checkpointRow(t *Table, rid storage.RecordID) []byte {
	tx := e.checkpointTx()
	tx.inner.Reset()
	e.proto.Begin(tx.inner)
	data, err := e.proto.Read(tx.inner, t.tbl, rid)
	if err != nil {
		// Tombstoned or invisible residue: emit the raw row (it will be
		// superseded by log replay if it matters).
		data = t.tbl.Row(rid)
	}
	e.proto.Abort(tx.inner)
	return data
}

// checkpointTx lazily creates the dedicated checkpoint-phase context. It
// runs on the reserved protocol slot past the worker range, so its reads
// share no per-thread protocol state or statistics cache line with workers
// even when the scan is online.
func (e *Engine) checkpointTx() *Tx {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.ckptTx == nil {
		e.ckptTx = e.NewTx(e.ckptThread, 0xC4EC)
	}
	return e.ckptTx
}

// ckptTableLoad is one fully validated table section of a checkpoint,
// ready to apply. Entry rows alias the checkpoint buffer.
type ckptTableLoad struct {
	t       *Table
	entries []ckptEntry
}

// LoadCheckpoint restores a checkpoint into a freshly created engine whose
// tables have already been created with matching schemas (the same
// contract as Recover). Must not run concurrently with transactions.
//
// The stream is read fully, CRC-verified, and structurally validated —
// tables known, row sizes matching, record ids in range, keys free of
// duplicates (within the checkpoint and against the engine) — before
// anything is applied, so a corrupt checkpoint never partially mutates the
// engine: it either loads completely or leaves the engine untouched.
func (e *Engine) LoadCheckpoint(r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("%w: read: %v", ErrBadCheckpoint, err)
	}
	plan, meta, err := e.parseCheckpoint(data)
	if err != nil {
		return err
	}
	if meta.sliced {
		// A slice is one partition's state, not the engine's: loading it as
		// a whole checkpoint would silently drop every other partition.
		return fmt.Errorf("%w: stream is a partition slice (partition %d), not a whole checkpoint",
			ErrBadCheckpoint, meta.partition)
	}
	e.applyCheckpointPlan(plan)
	return nil
}

// LoadCheckpointSlice restores one partition's slice into the engine and
// returns the slice's epoch fence. The stream must be a version-2 slice for
// exactly part, and every key in it must map to part under the engine's
// partitioner — a slice written under a different partitioning (or routed
// to the wrong partition) is rejected completely, like any corrupt
// checkpoint: it either loads completely or leaves the engine untouched.
func (e *Engine) LoadCheckpointSlice(r io.Reader, part int) (uint64, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, fmt.Errorf("%w: read: %v", ErrBadCheckpoint, err)
	}
	plan, meta, err := e.parseCheckpoint(data)
	if err != nil {
		return 0, err
	}
	if !meta.sliced {
		return 0, fmt.Errorf("%w: stream is a whole checkpoint, not a partition slice", ErrBadCheckpoint)
	}
	if meta.partition != part {
		return 0, fmt.Errorf("%w: slice is for partition %d, want %d", ErrBadCheckpoint, meta.partition, part)
	}
	for _, tl := range plan {
		for _, en := range tl.entries {
			if p := e.partitionOfKey(tl.t.tbl, en.key); p != part {
				return 0, fmt.Errorf("%w: slice for partition %d holds key %d of partition %d",
					ErrBadCheckpoint, part, en.key, p)
			}
		}
	}
	e.applyCheckpointPlan(plan)
	return meta.epoch, nil
}

// applyCheckpointPlan applies a fully validated checkpoint plan.
func (e *Engine) applyCheckpointPlan(plan []ckptTableLoad) {
	for _, tl := range plan {
		t := tl.t
		for _, en := range tl.entries {
			for t.tbl.NumRows() <= uint64(en.rid) {
				t.tbl.Alloc()
			}
			copy(t.tbl.Row(en.rid), en.row)
			t.tbl.SetTombstone(en.rid, false)
			t.primary.Insert(en.key, en.rid)
			for j := range t.secondaries {
				s := &t.secondaries[j]
				s.idx.Insert(s.extract(t.sch, en.row, en.key), en.rid)
			}
			e.reloadRecord(t, en.rid, en.key, en.row)
		}
	}
}

// parseCheckpoint verifies the CRC and fully validates the checkpoint
// structure without touching engine state. Returned entry rows alias data.
func (e *Engine) parseCheckpoint(data []byte) ([]ckptTableLoad, ckptMeta, error) {
	var meta ckptMeta
	if len(data) < 4+8+4 {
		return nil, meta, fmt.Errorf("%w: too short", ErrBadCheckpoint)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, meta, fmt.Errorf("%w: crc mismatch", ErrBadCheckpoint)
	}

	take := func(n int) ([]byte, error) {
		if n < 0 || len(body) < n {
			return nil, fmt.Errorf("%w: truncated body", ErrBadCheckpoint)
		}
		out := body[:n]
		body = body[n:]
		return out, nil
	}

	hdr, err := take(4 + 4)
	if err != nil {
		return nil, meta, err
	}
	if [4]byte(hdr[:4]) != checkpointMagic {
		return nil, meta, fmt.Errorf("%w: bad magic", ErrBadCheckpoint)
	}
	switch v := binary.LittleEndian.Uint32(hdr[4:]); v {
	case checkpointVersion:
	case checkpointSliceVersion:
		sh, err := take(4 + 8)
		if err != nil {
			return nil, meta, err
		}
		meta.sliced = true
		meta.partition = int(binary.LittleEndian.Uint32(sh))
		meta.epoch = binary.LittleEndian.Uint64(sh[4:])
		if meta.partition < 0 || meta.partition >= e.cfg.Partitions {
			return nil, meta, fmt.Errorf("%w: slice partition %d out of range", ErrBadCheckpoint, meta.partition)
		}
	default:
		return nil, meta, fmt.Errorf("%w: unsupported version %d", ErrBadCheckpoint, v)
	}
	cb, err := take(4)
	if err != nil {
		return nil, meta, err
	}
	tableCount := int(binary.LittleEndian.Uint32(cb))

	plan := make([]ckptTableLoad, 0, tableCount)
	seenTables := make(map[string]bool, tableCount)
	for ti := 0; ti < tableCount; ti++ {
		b, err := take(4)
		if err != nil {
			return nil, meta, err
		}
		nameLen := int(binary.LittleEndian.Uint32(b))
		if nameLen > 1<<16 {
			return nil, meta, fmt.Errorf("%w: absurd name length", ErrBadCheckpoint)
		}
		nameBytes, err := take(nameLen)
		if err != nil {
			return nil, meta, err
		}
		name := string(nameBytes)
		t := e.Table(name)
		if t == nil {
			return nil, meta, fmt.Errorf("%w: unknown table %q", ErrBadCheckpoint, name)
		}
		if seenTables[name] {
			return nil, meta, fmt.Errorf("%w: table %q appears twice", ErrBadCheckpoint, name)
		}
		seenTables[name] = true
		b, err = take(12)
		if err != nil {
			return nil, meta, err
		}
		rowSize := int(binary.LittleEndian.Uint32(b))
		if rowSize != t.sch.RowSize() {
			return nil, meta, fmt.Errorf("%w: table %q row size %d != schema %d",
				ErrBadCheckpoint, t.Name(), rowSize, t.sch.RowSize())
		}
		count := binary.LittleEndian.Uint64(b[4:])
		// Every rid in a valid checkpoint is below the source table's
		// allocation count, which is at most the entry count of all tables
		// combined plus pre-existing rows; the body length bounds that. A
		// slice carries only its partition's rows but source-table rids, so
		// the bound scales by the partition count — under heavy allocation
		// skew a legitimate slice can still exceed it, in which case the
		// parse error costs that partition its bounded-recovery head start
		// (CheckpointFallbacks), never correctness.
		maxRID := uint64(len(data))/16 + t.tbl.NumRows() + 1
		if meta.sliced {
			maxRID = uint64(len(data))/16*uint64(e.cfg.Partitions) + t.tbl.NumRows() + 1
		}
		if count > uint64(len(body)) {
			return nil, meta, fmt.Errorf("%w: truncated body", ErrBadCheckpoint)
		}
		tl := ckptTableLoad{t: t, entries: make([]ckptEntry, 0, count)}
		seenKeys := make(map[uint64]bool, count)
		for i := uint64(0); i < count; i++ {
			b, err = take(16 + rowSize)
			if err != nil {
				return nil, meta, err
			}
			key := binary.LittleEndian.Uint64(b)
			rid := storage.RecordID(binary.LittleEndian.Uint64(b[8:]))
			if uint64(rid) > maxRID {
				return nil, meta, fmt.Errorf("%w: record id %d out of range", ErrBadCheckpoint, rid)
			}
			if seenKeys[key] {
				return nil, meta, fmt.Errorf("%w: duplicate key %d in %q", ErrBadCheckpoint, key, t.Name())
			}
			seenKeys[key] = true
			if _, exists := t.primary.Lookup(key); exists {
				return nil, meta, fmt.Errorf("%w: key %d already present in %q", ErrBadCheckpoint, key, t.Name())
			}
			tl.entries = append(tl.entries, ckptEntry{key: key, rid: rid, row: b[16:]})
		}
		plan = append(plan, tl)
	}
	if len(body) != 0 {
		return nil, meta, fmt.Errorf("%w: %d trailing bytes", ErrBadCheckpoint, len(body))
	}
	return plan, meta, nil
}

// snapshotTables returns the table handles in id order.
//
//next700:locked(Engine.mu: checkpoint-path snapshot of the table registry; small, and never on the txn path)
func (e *Engine) snapshotTables() []*Table {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]*Table, 0, len(e.byID))
	for _, t := range e.byID {
		if t != nil {
			out = append(out, t)
		}
	}
	return out
}

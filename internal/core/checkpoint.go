package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"next700/internal/storage"
)

// Checkpoint format:
//
//	magic "N7CK" | version u32 | tableCount u32
//	per table: nameLen u32 | name | rowSize u32 | entryCount u64
//	  per entry: key u64 | rid u64 | row bytes (rowSize)
//	crc32 (IEEE) over everything before it
//
// Entries are written in ascending key order so checkpoints of equal state
// are byte-identical.

var checkpointMagic = [4]byte{'N', '7', 'C', 'K'}

const checkpointVersion = 1

// ErrBadCheckpoint reports a malformed or corrupt checkpoint stream.
var ErrBadCheckpoint = errors.New("core: bad checkpoint")

// crcWriter tees writes into a running CRC.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p)
	return cw.w.Write(p)
}

// Checkpoint serializes a transactionally consistent snapshot of every
// table to w. The engine must be quiesced (no in-flight transactions);
// combined with starting a fresh WAL right after, it bounds recovery to
// checkpoint load plus the log tail.
//
// Only index-reachable, live records are written; aborted or deleted
// residue is not. Record ids are preserved so a value-log tail written
// after the checkpoint replays against the restored state.
func (e *Engine) Checkpoint(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	var scratch [20]byte

	tables := e.snapshotTables()
	if _, err := cw.Write(checkpointMagic[:]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(scratch[0:], checkpointVersion)
	binary.LittleEndian.PutUint32(scratch[4:], uint32(len(tables)))
	if _, err := cw.Write(scratch[:8]); err != nil {
		return err
	}

	for _, t := range tables {
		type entry struct {
			key uint64
			rid storage.RecordID
		}
		entries := make([]entry, 0, t.primary.Len())
		t.primary.Iterate(func(key uint64, rid storage.RecordID) bool {
			entries = append(entries, entry{key, rid})
			return true
		})
		sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })

		name := t.Name()
		binary.LittleEndian.PutUint32(scratch[0:], uint32(len(name)))
		if _, err := cw.Write(scratch[:4]); err != nil {
			return err
		}
		if _, err := io.WriteString(cw, name); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(scratch[0:], uint32(t.sch.RowSize()))
		binary.LittleEndian.PutUint64(scratch[4:], uint64(len(entries)))
		if _, err := cw.Write(scratch[:12]); err != nil {
			return err
		}
		for _, en := range entries {
			binary.LittleEndian.PutUint64(scratch[0:], en.key)
			binary.LittleEndian.PutUint64(scratch[8:], uint64(en.rid))
			if _, err := cw.Write(scratch[:16]); err != nil {
				return err
			}
			row := e.checkpointRow(t, en.rid)
			if _, err := cw.Write(row); err != nil {
				return err
			}
		}
	}

	binary.LittleEndian.PutUint32(scratch[0:], cw.crc)
	if _, err := bw.Write(scratch[:4]); err != nil {
		return err
	}
	return bw.Flush()
}

// checkpointRow returns the committed image of a live record. For
// version-storing protocols (MVCC, SILO) the table row can be stale, so
// the committed image is fetched through a throwaway read.
func (e *Engine) checkpointRow(t *Table, rid storage.RecordID) []byte {
	tx := e.checkpointTx()
	tx.inner.Reset()
	e.proto.Begin(tx.inner)
	data, err := e.proto.Read(tx.inner, t.tbl, rid)
	if err != nil {
		// Tombstoned or invisible residue: emit the raw row (it will be
		// superseded by log replay if it matters).
		data = t.tbl.Row(rid)
	}
	e.proto.Abort(tx.inner)
	return data
}

// checkpointTx lazily creates the dedicated quiesced-phase context.
func (e *Engine) checkpointTx() *Tx {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.ckptTx == nil {
		e.ckptTx = e.NewTx(0, 0xC4EC)
	}
	return e.ckptTx
}

// LoadCheckpoint restores a checkpoint into a freshly created engine whose
// tables have already been created with matching schemas (the same
// contract as Recover). Must not run concurrently with transactions.
//
// The stream is read fully and CRC-verified before anything is applied, so
// a corrupt checkpoint never partially mutates the engine.
func (e *Engine) LoadCheckpoint(r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("%w: read: %v", ErrBadCheckpoint, err)
	}
	if len(data) < 4+8+4 {
		return fmt.Errorf("%w: too short", ErrBadCheckpoint)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return fmt.Errorf("%w: crc mismatch", ErrBadCheckpoint)
	}

	take := func(n int) ([]byte, error) {
		if n < 0 || len(body) < n {
			return nil, fmt.Errorf("%w: truncated body", ErrBadCheckpoint)
		}
		out := body[:n]
		body = body[n:]
		return out, nil
	}

	hdr, err := take(4 + 8)
	if err != nil {
		return err
	}
	if [4]byte(hdr[:4]) != checkpointMagic {
		return fmt.Errorf("%w: bad magic", ErrBadCheckpoint)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != checkpointVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrBadCheckpoint, v)
	}
	tableCount := int(binary.LittleEndian.Uint32(hdr[8:]))

	for ti := 0; ti < tableCount; ti++ {
		b, err := take(4)
		if err != nil {
			return err
		}
		nameLen := int(binary.LittleEndian.Uint32(b))
		if nameLen > 1<<16 {
			return fmt.Errorf("%w: absurd name length", ErrBadCheckpoint)
		}
		nameBytes, err := take(nameLen)
		if err != nil {
			return err
		}
		t := e.Table(string(nameBytes))
		if t == nil {
			return fmt.Errorf("%w: unknown table %q", ErrBadCheckpoint, nameBytes)
		}
		b, err = take(12)
		if err != nil {
			return err
		}
		rowSize := int(binary.LittleEndian.Uint32(b))
		if rowSize != t.sch.RowSize() {
			return fmt.Errorf("%w: table %q row size %d != schema %d",
				ErrBadCheckpoint, t.Name(), rowSize, t.sch.RowSize())
		}
		count := binary.LittleEndian.Uint64(b[4:])
		// Every rid in a valid checkpoint is below the source table's
		// allocation count, which is at most the entry count of all tables
		// combined plus pre-existing rows; the body length bounds that.
		maxRID := uint64(len(data))/16 + t.tbl.NumRows() + 1
		for i := uint64(0); i < count; i++ {
			b, err = take(16 + rowSize)
			if err != nil {
				return err
			}
			key := binary.LittleEndian.Uint64(b)
			rid := storage.RecordID(binary.LittleEndian.Uint64(b[8:]))
			if uint64(rid) > maxRID {
				return fmt.Errorf("%w: record id %d out of range", ErrBadCheckpoint, rid)
			}
			row := b[16:]
			for t.tbl.NumRows() <= uint64(rid) {
				t.tbl.Alloc()
			}
			copy(t.tbl.Row(rid), row)
			t.tbl.SetTombstone(rid, false)
			if _, ok := t.primary.Insert(key, rid); !ok {
				return fmt.Errorf("%w: duplicate key %d in %q", ErrBadCheckpoint, key, t.Name())
			}
			for j := range t.secondaries {
				s := &t.secondaries[j]
				s.idx.Insert(s.extract(t.sch, row, key), rid)
			}
			e.reloadRecord(t, rid, key, row)
		}
	}
	if len(body) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadCheckpoint, len(body))
	}
	return nil
}

// snapshotTables returns the table handles in id order.
func (e *Engine) snapshotTables() []*Table {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]*Table, 0, len(e.byID))
	for _, t := range e.byID {
		if t != nil {
			out = append(out, t)
		}
	}
	return out
}

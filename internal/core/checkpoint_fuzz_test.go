package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"next700/internal/storage"
)

// fuzzEngine opens a fresh engine with the fuzz schema (one table "acct",
// a single i64 column) and returns it with its table handle.
func fuzzEngine(t testing.TB) (*Engine, *Table) {
	t.Helper()
	e, err := Open(Config{Protocol: "SILO", Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	tbl, err := e.CreateTable(storage.MustSchema("acct", storage.I64("v")), IndexHash)
	if err != nil {
		t.Fatal(err)
	}
	return e, tbl
}

// fuzzCheckpointImage builds a valid checkpoint of the fuzz schema with the
// given number of rows.
func fuzzCheckpointImage(t testing.TB, rows uint64) []byte {
	t.Helper()
	e, tbl := fuzzEngine(t)
	sch := tbl.sch
	row := sch.NewRow()
	for k := uint64(0); k < rows; k++ {
		sch.SetInt64(row, 0, int64(k)*3+1)
		if err := e.Load(tbl, k, row); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := e.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// refitCRC rewrites the trailing CRC so a structural corruption is reached
// instead of being masked by the checksum check.
func refitCRC(img []byte) []byte {
	out := append([]byte(nil), img...)
	binary.LittleEndian.PutUint32(out[len(out)-4:], crc32.ChecksumIEEE(out[:len(out)-4]))
	return out
}

// fuzzDuplicateKeySeed crafts a CRC-valid image whose second entry repeats
// the first entry's key: the validator must reject it before applying
// anything. Layout per checkpoint.go: magic(4) version(4) tables(4) |
// nameLen(4) "acct" rowSize(4) count(8) | entries of key(8) rid(8) row(8).
func fuzzDuplicateKeySeed(t testing.TB) []byte {
	t.Helper()
	img := append([]byte(nil), fuzzCheckpointImage(t, 2)...)
	entry0 := 4 + 4 + 4 + 4 + len("acct") + 4 + 8
	entry1 := entry0 + 16 + 8
	copy(img[entry1:entry1+8], img[entry0:entry0+8])
	return refitCRC(img)
}

// FuzzLoadCheckpoint drives LoadCheckpoint with corrupt inputs and checks
// its documented contract: it never panics, rejects anything malformed with
// ErrBadCheckpoint, and a rejected stream leaves the engine completely
// untouched — no rows allocated, no index entries inserted.
func FuzzLoadCheckpoint(f *testing.F) {
	valid := fuzzCheckpointImage(f, 16)
	f.Add([]byte{})
	f.Add([]byte("N7CK"))
	f.Add(append([]byte(nil), valid...))
	// Truncations: inside the header, inside an entry, and the lost CRC.
	f.Add(append([]byte(nil), valid[:9]...))
	f.Add(append([]byte(nil), valid[:len(valid)/3]...))
	f.Add(append([]byte(nil), valid[:len(valid)-5]...))
	// Bit flips at structurally interesting offsets, CRC refitted so the
	// validator sees them (and one raw flip so the CRC check sees it too).
	for _, off := range []int{0, 5, 14, len(valid) / 2, len(valid) - 6} {
		flipped := append([]byte(nil), valid...)
		flipped[off] ^= 0x40
		f.Add(refitCRC(flipped))
		f.Add(append([]byte(nil), flipped...))
	}
	f.Add(fuzzDuplicateKeySeed(f))

	f.Fuzz(func(t *testing.T, data []byte) {
		e, tbl := fuzzEngine(t)
		err := e.LoadCheckpoint(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadCheckpoint) {
				t.Fatalf("rejection must classify as ErrBadCheckpoint, got %v", err)
			}
			if n := tbl.tbl.NumRows(); n != 0 {
				t.Fatalf("rejected checkpoint allocated %d rows", n)
			}
			if n := tbl.primary.Len(); n != 0 {
				t.Fatalf("rejected checkpoint inserted %d index entries", n)
			}
			return
		}
		// An accepted image must round-trip: re-serializing the loaded state
		// and loading it into a second fresh engine succeeds byte-for-byte.
		var buf bytes.Buffer
		if err := e.Checkpoint(&buf); err != nil {
			t.Fatalf("re-checkpoint after accepted load: %v", err)
		}
		e2, _ := fuzzEngine(t)
		if err := e2.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("round-trip of accepted checkpoint rejected: %v", err)
		}
	})
}

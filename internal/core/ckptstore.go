package core

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"next700/internal/wal"
)

// CheckpointStore is the durable home of the bounded-recovery state: the
// checkpoint generations, the per-stream WAL segments, and the recovery
// manifest that ties them together. The engine's checkpointer drives it; the
// torture harness substitutes a chaos implementation (fault.MemStore) to
// crash, tear, and corrupt every object in the lifecycle.
//
// Contract highlights:
//   - WriteCheckpoint is atomic: the object named name exists only if write
//     returned nil and the installation completed. A crash mid-write must
//     never leave a partial object under the final name.
//   - SaveManifest is atomic with history: a failed or torn save must leave
//     the previously saved manifest loadable (LoadManifest falls back).
//   - OpenSegment on a never-written or missing segment may fail; recovery
//     treats a missing segment as empty (the create-then-publish crash
//     window leaves exactly that state).
type CheckpointStore interface {
	// WriteCheckpoint atomically creates the named checkpoint object with
	// the bytes produced by write.
	WriteCheckpoint(name string, write func(w io.Writer) error) error
	// OpenCheckpoint opens a checkpoint object for reading.
	OpenCheckpoint(name string) (io.ReadCloser, error)
	// RemoveCheckpoint deletes a checkpoint object.
	RemoveCheckpoint(name string) error
	// CreateSegment creates (or truncates) a log segment open for append.
	CreateSegment(name string) (wal.Device, error)
	// OpenSegment opens a segment's bytes for reading.
	OpenSegment(name string) (io.ReadCloser, error)
	// RemoveSegment deletes a segment.
	RemoveSegment(name string) error
	// SaveManifest durably installs the recovery manifest.
	SaveManifest(m wal.Manifest) error
	// LoadManifest returns the newest loadable manifest; the bool reports
	// whether a fallback (previous) copy had to be used.
	LoadManifest() (wal.Manifest, bool, error)
}

// DirStore is the file-backed CheckpointStore: every object is a file in
// one directory, checkpoints and the manifest are installed via temp file +
// fsync + rename, and the manifest keeps a .prev fallback copy (see
// wal.SaveManifestFile).
type DirStore struct {
	dir string
}

// NewDirStore creates the directory if needed and returns the store.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirStore{dir: dir}, nil
}

// Dir returns the backing directory.
func (s *DirStore) Dir() string { return s.dir }

func (s *DirStore) path(name string) string { return filepath.Join(s.dir, name) }

// WriteCheckpoint implements CheckpointStore with the temp-file-and-rename
// discipline: the final name appears only after the full image is written
// and fsynced, so a crash mid-checkpoint leaves no generation at all rather
// than a torn one.
func (s *DirStore) WriteCheckpoint(name string, write func(w io.Writer) error) error {
	tmp := s.path(name) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := write(bw); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, s.path(name))
}

// OpenCheckpoint implements CheckpointStore.
func (s *DirStore) OpenCheckpoint(name string) (io.ReadCloser, error) {
	return os.Open(s.path(name))
}

// RemoveCheckpoint implements CheckpointStore.
func (s *DirStore) RemoveCheckpoint(name string) error {
	return os.Remove(s.path(name))
}

// CreateSegment implements CheckpointStore. The returned *os.File is the
// wal.Device (File.Sync is the durability barrier) and also an io.Closer
// the checkpointer closes once the segment is sealed and swapped out.
func (s *DirStore) CreateSegment(name string) (wal.Device, error) {
	return os.Create(s.path(name))
}

// OpenSegment implements CheckpointStore.
func (s *DirStore) OpenSegment(name string) (io.ReadCloser, error) {
	return os.Open(s.path(name))
}

// RemoveSegment implements CheckpointStore.
func (s *DirStore) RemoveSegment(name string) error {
	return os.Remove(s.path(name))
}

// SaveManifest implements CheckpointStore via wal.SaveManifestFile's
// CRC-sealed atomic install with a .prev fallback copy.
func (s *DirStore) SaveManifest(m wal.Manifest) error {
	return wal.SaveManifestFile(s.path(manifestName), m)
}

// LoadManifest implements CheckpointStore.
func (s *DirStore) LoadManifest() (wal.Manifest, bool, error) {
	return wal.LoadManifestFile(s.path(manifestName))
}

// manifestName is the manifest file name inside a DirStore directory.
const manifestName = "MANIFEST"

// checkpointName renders the store object name for generation gen.
func checkpointName(gen uint64) string { return fmt.Sprintf("ckpt-%06d", gen) }

// sliceName renders the store object name for one partition's slice of a
// sliced checkpoint generation (ManifestCheckpoint.Slices > 0).
func sliceName(ckptName string, part int) string {
	return fmt.Sprintf("%s-p%d", ckptName, part)
}

// CheckpointSliceName exposes the slice object naming scheme: harnesses use
// it to address one partition's slice of a manifest checkpoint entry (for
// corruption injection and single-partition recovery).
func CheckpointSliceName(ckptName string, part int) string { return sliceName(ckptName, part) }

// segmentName renders the store object name for the segment opened at
// generation gen on the given stream. Generation 0 is the bootstrap segment.
func segmentName(gen uint64, stream int) string {
	return fmt.Sprintf("seg-%06d-%d", gen, stream)
}

var _ CheckpointStore = (*DirStore)(nil)

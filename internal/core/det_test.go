package core

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"next700/internal/det"
	"next700/internal/fault"
	"next700/internal/storage"
	"next700/internal/wal"
	"next700/internal/xrand"
)

// detHarness bundles a QSTORE engine, one table, and the standard exec
// function the deterministic tests share: OpUpdate adds the signed Aux
// delta, OpReadSend delivers the current value, OpRecvUpdate sets the key
// to (delivered value + Aux).
type detHarness struct {
	e   *Engine
	tbl *Table
	sch *storage.Schema
}

func newDetHarness(t *testing.T, cfg Config, keys uint64) *detHarness {
	t.Helper()
	cfg.Protocol = "QSTORE"
	e, err := Open(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { e.Close() })
	sch := storage.MustSchema("det_accounts", storage.I64("v"))
	tbl, err := e.CreateTable(sch, IndexHash)
	if err != nil {
		t.Fatal(err)
	}
	row := sch.NewRow()
	for k := uint64(0); k < keys; k++ {
		sch.SetInt64(row, 0, int64(k)*10)
		if err := e.Load(tbl, k, row); err != nil {
			t.Fatal(err)
		}
	}
	return &detHarness{e: e, tbl: tbl, sch: sch}
}

func (h *detHarness) exec(tx *Tx, op det.Op, mb *det.Mailbox) error {
	switch op.Kind {
	case det.OpRead:
		row, err := tx.Read(h.tbl, op.Key)
		if err != nil {
			return err
		}
		_ = h.sch.GetInt64(row, 0)
		return nil
	case det.OpUpdate:
		row, err := tx.Update(h.tbl, op.Key)
		if err != nil {
			return err
		}
		h.sch.SetInt64(row, 0, h.sch.GetInt64(row, 0)+int64(op.Aux))
		return nil
	case det.OpReadSend:
		row, err := tx.Read(h.tbl, op.Key)
		if err != nil {
			return err
		}
		mb.Send(op.Slot, uint64(h.sch.GetInt64(row, 0)))
		return nil
	case det.OpRecvUpdate:
		if err := mb.Collect(); err != nil {
			return err
		}
		row, err := tx.Update(h.tbl, op.Key)
		if err != nil {
			return err
		}
		h.sch.SetInt64(row, 0, int64(mb.Vals[0])+int64(op.Aux))
		return nil
	default:
		return errors.New("det_test: unknown op kind")
	}
}

// value reads a key outside any transaction (the engine is quiescent).
func (h *detHarness) value(t *testing.T, key uint64) int64 {
	t.Helper()
	tx := h.e.NewTx(0, 1)
	var v int64
	if err := tx.Run(func(tx *Tx) error {
		row, err := tx.Read(h.tbl, key)
		if err != nil {
			return err
		}
		v = h.sch.GetInt64(row, 0)
		return nil
	}); err != nil {
		t.Fatalf("read key %d: %v", key, err)
	}
	return v
}

// serialModel applies batches to a map exactly as a serial priority-order
// executor would: per transaction, hoisted order (sends first, reading
// pre-transaction partition state; then the rest in declared order with
// writes visible immediately).
func serialModel(init map[uint64]int64, batches [][]det.TxnPlan) map[uint64]int64 {
	m := make(map[uint64]int64, len(init))
	for k, v := range init {
		m[k] = v
	}
	for _, batch := range batches {
		for _, tp := range batch {
			var vals []uint64
			for _, op := range tp.Ops {
				if op.Kind == det.OpReadSend {
					vals = append(vals, uint64(m[op.Key]))
				}
			}
			for _, op := range tp.Ops {
				switch op.Kind {
				case det.OpUpdate:
					m[op.Key] += int64(op.Aux)
				case det.OpRecvUpdate:
					m[op.Key] = int64(vals[0]) + int64(op.Aux)
				}
			}
		}
	}
	return m
}

// randomDetBatches generates seeded batches mixing reads, updates, and
// cross-partition copy transactions (ReadSend -> RecvUpdate).
func randomDetBatches(seed uint64, nBatches, txnsPerBatch int, keys uint64) [][]det.TxnPlan {
	rng := xrand.New(seed)
	batches := make([][]det.TxnPlan, nBatches)
	for b := range batches {
		txns := make([]det.TxnPlan, txnsPerBatch)
		for t := range txns {
			switch rng.Intn(3) {
			case 0: // plain update txn, 2 keys
				txns[t].Add(det.OpUpdate, 0, rng.Uint64n(keys), uint64(int64(rng.Intn(9)-4)))
				txns[t].Add(det.OpUpdate, 0, rng.Uint64n(keys), uint64(int64(rng.Intn(9)-4)))
			case 1: // read + update
				txns[t].Add(det.OpRead, 0, rng.Uint64n(keys), 0)
				txns[t].Add(det.OpUpdate, 0, rng.Uint64n(keys), uint64(int64(rng.Intn(9)-4)))
			default: // copy txn: dst := src + delta (declared recv-first on
				// purpose; the planner must hoist the send)
				src, dst := rng.Uint64n(keys), rng.Uint64n(keys)
				txns[t].Add(det.OpRecvUpdate, 0, dst, uint64(int64(rng.Intn(5))))
				txns[t].Add(det.OpReadSend, 0, src, 0)
			}
		}
		batches[b] = txns
	}
	return batches
}

// runDetBatches plans and executes the batches on a fresh harness with the
// given partition count, returning the harness.
func runDetBatches(t *testing.T, cfg Config, parts int, keys uint64, batches [][]det.TxnPlan) *detHarness {
	t.Helper()
	cfg.Partitions = parts
	cfg.Threads = parts
	h := newDetHarness(t, cfg, keys)
	x, err := NewDetExecutor(h.e, h.exec)
	if err != nil {
		t.Fatalf("executor: %v", err)
	}
	t.Cleanup(x.Close)
	pl := det.NewPlanner(parts, nil)
	for _, batch := range batches {
		if _, err := x.ExecuteBatch(pl.PlanBatch(batch)); err != nil {
			t.Fatalf("batch: %v", err)
		}
	}
	return h
}

func TestDetExecutorSerialEquivalence(t *testing.T) {
	const keys = 64
	batches := randomDetBatches(0xABCD, 6, 40, keys)
	init := make(map[uint64]int64, keys)
	for k := uint64(0); k < keys; k++ {
		init[k] = int64(k) * 10
	}
	want := serialModel(init, batches)

	var digests [][32]byte
	for _, parts := range []int{1, 2, 4} {
		h := runDetBatches(t, Config{}, parts, keys, batches)
		for k := uint64(0); k < keys; k++ {
			if got := h.value(t, k); got != want[k] {
				t.Fatalf("parts=%d key %d = %d, want %d (serial model)", parts, k, got, want[k])
			}
		}
		digests = append(digests, h.e.StateDigest())
		// Abort-free: the conflict-abort counter must be exactly zero.
		if c := h.e.TotalCounter(); c.Aborts != 0 {
			t.Fatalf("parts=%d: %d conflict aborts in deterministic mode", parts, c.Aborts)
		}
	}
	for i := 1; i < len(digests); i++ {
		if !bytes.Equal(digests[0][:], digests[i][:]) {
			t.Fatalf("digest differs across partition counts: %x vs %x", digests[0], digests[i])
		}
	}
}

func TestDetExecutorCommitAccounting(t *testing.T) {
	const keys = 16
	batches := randomDetBatches(7, 4, 25, keys)
	h := runDetBatches(t, Config{}, 2, keys, batches)
	c := h.e.TotalCounter()
	if want := uint64(4 * 25); c.Commits != want {
		t.Fatalf("commits = %d, want %d", c.Commits, want)
	}
	if c.Aborts != 0 || c.FatalAborts != 0 || c.Waits != 0 {
		t.Fatalf("unexpected aborts/waits: %+v", c)
	}
}

func TestDetExecutorCrossPartitionDelivery(t *testing.T) {
	// Chain of copies across partitions in one batch: each txn copies the
	// previous target forward, so every delivery must observe the value the
	// serial order establishes, across partitions.
	const keys = 8
	const parts = 4
	var batch []det.TxnPlan
	for i := 0; i < 6; i++ {
		var tp det.TxnPlan
		src := uint64(i % keys)
		dst := uint64((i + 1) % keys)
		tp.Add(det.OpRecvUpdate, 0, dst, 1)
		tp.Add(det.OpReadSend, 0, src, 0)
		batch = append(batch, tp)
	}
	batches := [][]det.TxnPlan{batch}
	init := make(map[uint64]int64, keys)
	for k := uint64(0); k < keys; k++ {
		init[k] = int64(k) * 10
	}
	want := serialModel(init, batches)
	h := runDetBatches(t, Config{}, parts, keys, batches)
	for k := uint64(0); k < keys; k++ {
		if got := h.value(t, k); got != want[k] {
			t.Fatalf("key %d = %d, want %d", k, got, want[k])
		}
	}
}

func TestDetExecutorBatchPerEpochWAL(t *testing.T) {
	const parts = 2
	const keys = 32
	devs := []wal.Device{&fault.MemDevice{}, &fault.MemDevice{}}
	cfg := Config{LogMode: wal.ModeValue, WALStreams: parts, LogDevices: devs}
	batches := randomDetBatches(99, 5, 20, keys)
	h := runDetBatches(t, cfg, parts, keys, batches)

	// Batch <-> epoch 1:1: five batches sealed five epochs.
	if got := h.e.DurableEpoch(); got != 5 {
		t.Fatalf("durable epoch = %d, want 5 (one per batch)", got)
	}

	// Replaying the streams into a fresh engine reproduces the digest.
	ref := h.e.StateDigest()
	e2, err := Open(Config{Protocol: "QSTORE", Threads: parts, Partitions: parts,
		LogMode: wal.ModeValue, WALStreams: parts,
		LogDevices: []wal.Device{&fault.MemDevice{}, &fault.MemDevice{}}})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	sch := storage.MustSchema("det_accounts", storage.I64("v"))
	tbl, err := e2.CreateTable(sch, IndexHash)
	if err != nil {
		t.Fatal(err)
	}
	row := sch.NewRow()
	for k := uint64(0); k < keys; k++ {
		sch.SetInt64(row, 0, int64(k)*10)
		if err := e2.Load(tbl, k, row); err != nil {
			t.Fatal(err)
		}
	}
	readers := []*bytes.Reader{
		bytes.NewReader(devs[0].(*fault.MemDevice).SyncedBytes()),
		bytes.NewReader(devs[1].(*fault.MemDevice).SyncedBytes()),
	}
	if _, err := e2.RecoverStreams([]io.Reader{readers[0], readers[1]}); err != nil {
		t.Fatalf("recover: %v", err)
	}
	got := e2.StateDigest()
	if !bytes.Equal(ref[:], got[:]) {
		t.Fatalf("recovered digest %x != live digest %x", got, ref)
	}
}

func TestDetExecutorConfigValidation(t *testing.T) {
	// Wrong protocol.
	e, err := Open(Config{Protocol: "SILO", Threads: 2, Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := NewDetExecutor(e, func(*Tx, det.Op, *det.Mailbox) error { return nil }); !errors.Is(err, ErrInvalidUsage) {
		t.Fatalf("SILO engine accepted: %v", err)
	}
	// Parallel WAL with a non-zero window breaks the batch=epoch mapping.
	devs := []wal.Device{&fault.MemDevice{}, &fault.MemDevice{}}
	e2, err := Open(Config{Protocol: "QSTORE", Threads: 2, Partitions: 2,
		LogMode: wal.ModeValue, WALStreams: 2, LogDevices: devs, GroupCommitWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if _, err := NewDetExecutor(e2, func(*Tx, det.Op, *det.Mailbox) error { return nil }); !errors.Is(err, ErrInvalidUsage) {
		t.Fatalf("windowed parallel WAL accepted: %v", err)
	}
	// Command logging cannot express fragments.
	e3, err := Open(Config{Protocol: "QSTORE", Threads: 1, Partitions: 1,
		LogMode: wal.ModeCommand, LogDevice: &fault.MemDevice{}})
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Close()
	if _, err := NewDetExecutor(e3, func(*Tx, det.Op, *det.Mailbox) error { return nil }); !errors.Is(err, ErrInvalidUsage) {
		t.Fatalf("command logging accepted: %v", err)
	}
}

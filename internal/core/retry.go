package core

import (
	"time"

	"next700/internal/xrand"
)

// RetryPolicy bounds the transient-abort retry loop of Tx.Run: how many
// times a conflicted transaction is re-executed and how long it backs off
// between attempts. Backoff is bounded exponential with full jitter — the
// ceiling doubles per sleeping retry up to MaxDelay and the actual sleep is
// uniform in [0, ceiling) — drawn from the worker's deterministic RNG so a
// seeded run replays the same backoff schedule. Computing a delay performs
// no heap allocation; with the zero (default) policy the first few retries
// only yield the processor, keeping backoff entirely off the fast path.
type RetryPolicy struct {
	// MaxAttempts bounds total attempts before Run gives up with a livelock
	// error. <= 0 selects the default (1<<20).
	MaxAttempts int
	// SpinAttempts is the number of leading retries that only yield the
	// processor without sleeping: short conflicts usually clear immediately
	// and a timer would overshoot. <= 0 selects the default (4).
	SpinAttempts int
	// BaseDelay is the jitter ceiling of the first sleeping retry.
	// <= 0 selects the default (2µs).
	BaseDelay time.Duration
	// MaxDelay caps the exponential ceiling. <= 0 selects the default (4ms).
	MaxDelay time.Duration
}

// Retry policy defaults; see RetryPolicy field docs.
const (
	defaultMaxAttempts  = 1 << 20
	defaultSpinAttempts = 4
	defaultBaseDelay    = 2 * time.Microsecond
	defaultMaxDelay     = 4 * time.Millisecond
)

// normalized fills zero fields with defaults and repairs inverted bounds.
func (p RetryPolicy) normalized() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = defaultMaxAttempts
	}
	if p.SpinAttempts <= 0 {
		p.SpinAttempts = defaultSpinAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = defaultBaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = defaultMaxDelay
	}
	if p.MaxDelay < p.BaseDelay {
		p.MaxDelay = p.BaseDelay
	}
	return p
}

// Delay returns the jittered backoff before retry attempt (1-based: the
// first retry is attempt 1). Attempts up to SpinAttempts sleep zero. The
// policy must be normalized (engine configs are normalized in Open).
func (p *RetryPolicy) Delay(rng *xrand.RNG, attempt int) time.Duration {
	shift := attempt - p.SpinAttempts - 1
	if shift < 0 {
		return 0
	}
	ceiling := p.MaxDelay
	// 2^shift would overflow long before 63; past 30 doublings any sane
	// BaseDelay has hit the cap.
	if shift < 30 {
		if c := p.BaseDelay << uint(shift); c < ceiling {
			ceiling = c
		}
	}
	return time.Duration(rng.Uint64n(uint64(ceiling)))
}

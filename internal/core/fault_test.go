package core

import (
	"errors"
	"testing"
	"time"

	"next700/internal/fault"
	"next700/internal/txn"
	"next700/internal/wal"
	"next700/internal/xrand"
)

// TestLogFailureDegradesToCleanAborts: once the log device dies, every
// subsequent commit must come back promptly as a clean abort carrying
// ErrLogFailed — no hangs, no panics, and no memory state mutated by the
// failed transactions.
func TestLogFailureDegradesToCleanAborts(t *testing.T) {
	for _, protocol := range []string{"SILO", "NO_WAIT", "MVCC", "TICTOC"} {
		t.Run(protocol, func(t *testing.T) {
			mem := &fault.MemDevice{}
			dev := fault.NewDevice(mem, fault.Plan{CrashAtByte: 1})
			e := openEngine(t, Config{
				Protocol: protocol, Threads: 1,
				LogMode: wal.ModeValue, LogDevice: dev,
			})
			tbl := kvTable(t, e, "kv", IndexHash, 10)
			tx := e.NewTx(0, 1)

			update := func(key uint64, v int64) error {
				return tx.Run(func(tx *Tx) error {
					row, err := tx.Update(tbl, key)
					if err != nil {
						return err
					}
					setV(tbl, row, v)
					return nil
				})
			}

			// The first durable commit hits the crash. Depending on flusher
			// timing it surfaces on this or the next transaction, but it must
			// surface as ErrLogFailed, not hang.
			done := make(chan error, 1)
			go func() { done <- update(0, 100) }()
			var first error
			select {
			case first = <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("commit hung on dead log device")
			}
			if !errors.Is(first, wal.ErrLogFailed) || !errors.Is(first, fault.ErrCrashed) {
				t.Fatalf("first commit err=%v, want ErrLogFailed wrapping ErrCrashed", first)
			}

			// From here on the writer is marked failed: commits degrade to
			// clean aborts via the pre-commit check.
			for i := 1; i <= 3; i++ {
				err := update(uint64(i), 500+int64(i))
				if !errors.Is(err, wal.ErrLogFailed) {
					t.Fatalf("commit %d after log death err=%v", i, err)
				}
			}
			c := e.TotalCounter()
			if c.FatalAborts < 3 {
				t.Fatalf("FatalAborts=%d, want >= 3", c.FatalAborts)
			}

			// Clean abort means no memory mutation: keys 1..3 keep their
			// loaded value.
			if err := tx.Run(func(tx *Tx) error {
				for i := 1; i <= 3; i++ {
					row, err := tx.Read(tbl, uint64(i))
					if err != nil {
						return err
					}
					if got := getV(tbl, row); got != 0 {
						t.Fatalf("key %d = %d after failed commit, want 0", i, got)
					}
				}
				return nil
			}); err != nil && !errors.Is(err, wal.ErrLogFailed) {
				t.Fatal(err)
			}
			// Close surfaces the loss instead of pretending a clean shutdown.
			if err := e.Close(); !errors.Is(err, wal.ErrLogFailed) {
				t.Fatalf("Close err=%v, want ErrLogFailed", err)
			}
		})
	}
}

// TestFatalAbortAccounting: a non-retryable application error is counted as
// a fatal abort, not a conflict abort and not a user abort.
func TestFatalAbortAccounting(t *testing.T) {
	e := openEngine(t, Config{Protocol: "SILO", Threads: 1})
	tbl := kvTable(t, e, "kv", IndexHash, 2)
	tx := e.NewTx(0, 1)
	boom := errors.New("application failure")
	if err := tx.Run(func(tx *Tx) error {
		if _, err := tx.Update(tbl, 0); err != nil {
			return err
		}
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err=%v", err)
	}
	if err := tx.Run(func(tx *Tx) error { return txn.ErrUserAbort }); !errors.Is(err, txn.ErrUserAbort) {
		t.Fatalf("err=%v", err)
	}
	c := e.TotalCounter()
	if c.FatalAborts != 1 || c.UserAborts != 1 || c.Aborts != 0 {
		t.Fatalf("fatal=%d user=%d transient=%d, want 1/1/0", c.FatalAborts, c.UserAborts, c.Aborts)
	}
}

func TestRetryPolicyDefaults(t *testing.T) {
	p := RetryPolicy{}.normalized()
	if p.MaxAttempts != defaultMaxAttempts || p.SpinAttempts != defaultSpinAttempts ||
		p.BaseDelay != defaultBaseDelay || p.MaxDelay != defaultMaxDelay {
		t.Fatalf("normalized zero policy = %+v", p)
	}
	// Inverted bounds are repaired.
	p = RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: time.Microsecond}.normalized()
	if p.MaxDelay != p.BaseDelay {
		t.Fatalf("MaxDelay %v < BaseDelay %v after normalize", p.MaxDelay, p.BaseDelay)
	}
}

func TestRetryPolicyDelay(t *testing.T) {
	p := RetryPolicy{SpinAttempts: 2, BaseDelay: time.Microsecond, MaxDelay: 8 * time.Microsecond}.normalized()
	rng := xrand.New(7)
	// Spin attempts sleep zero.
	for a := 1; a <= 2; a++ {
		if d := p.Delay(rng, a); d != 0 {
			t.Fatalf("attempt %d delay %v, want 0", a, d)
		}
	}
	// The jitter ceiling doubles per attempt and is capped at MaxDelay,
	// including far past any representable shift.
	for a := 3; a < 70; a++ {
		ceil := p.MaxDelay
		if shift := a - p.SpinAttempts - 1; shift < 30 {
			if c := p.BaseDelay << uint(shift); c < ceil {
				ceil = c
			}
		}
		for i := 0; i < 50; i++ {
			if d := p.Delay(rng, a); d < 0 || d >= ceil {
				t.Fatalf("attempt %d delay %v outside [0, %v)", a, d, ceil)
			}
		}
	}
	// Deterministic given the RNG seed.
	a, b := xrand.New(42), xrand.New(42)
	for i := 1; i < 32; i++ {
		if p.Delay(a, i) != p.Delay(b, i) {
			t.Fatalf("delay diverged at attempt %d", i)
		}
	}
}

// TestRetryDelayAllocFree: computing a backoff must not allocate — the
// retry loop runs on the transaction hot path.
func TestRetryDelayAllocFree(t *testing.T) {
	p := RetryPolicy{}.normalized()
	rng := xrand.New(1)
	attempt := 0
	allocs := testing.AllocsPerRun(1000, func() {
		attempt++
		_ = p.Delay(rng, attempt%64+1)
	})
	if allocs != 0 {
		t.Fatalf("Delay allocates %.1f per call, want 0", allocs)
	}
}

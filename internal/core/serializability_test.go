// Serializability conformance, externally: every protocol × index family ×
// contention level is driven through the stamped verification probe and its
// recorded history is checked for Adya anomalies by internal/verify — the
// subsystem this test's bespoke predecessor was promoted into. The test
// lives in package core_test because verify imports core.
package core_test

import (
	"sync"
	"testing"

	"next700/internal/cc"
	"next700/internal/core"
	"next700/internal/harness"
	"next700/internal/storage"
	"next700/internal/verify"
)

// TestIsolationConformanceMatrix checks that every protocol produces
// anomaly-free histories under both index families and both contention
// levels. High contention (8 keys, 4 workers, 2-4 ops each) is where
// isolation bugs live; low contention (512 keys) covers the mostly-disjoint
// fast paths.
func TestIsolationConformanceMatrix(t *testing.T) {
	indexes := []struct {
		name string
		kind core.IndexKind
	}{
		{"hash", core.IndexHash},
		{"btree", core.IndexBTree},
	}
	contentions := []struct {
		name string
		keys uint64
	}{
		{"high", 8},
		{"low", 512},
	}
	txns := 200
	if testing.Short() {
		txns = 50
	}
	for _, protocol := range cc.Names() {
		for _, ix := range indexes {
			for _, ct := range contentions {
				protocol, ix, ct := protocol, ix, ct
				t.Run(protocol+"/"+ix.name+"/"+ct.name, func(t *testing.T) {
					t.Parallel()
					probe := verify.NewProbe(verify.ProbeConfig{Keys: ct.keys, Index: ix.kind})
					res, err := harness.Run(
						core.Config{Protocol: protocol, Threads: 4, Partitions: 2},
						probe,
						harness.RunOptions{TxnsPerWorker: txns, Verify: true, Seed: 42},
					)
					if err != nil {
						t.Fatal(err)
					}
					rep := res.Verification
					if rep == nil {
						t.Fatal("Verify run produced no verification report")
					}
					if rep.Txns == 0 {
						t.Fatal("no transactions recorded")
					}
					if !rep.Ok() {
						for _, a := range rep.Anomalies {
							t.Errorf("%s: %s", a.Class, a.Message)
							for _, e := range a.Witness {
								t.Errorf("  witness: %s", e)
							}
						}
					}
				})
			}
		}
	}
	// MVCC at snapshot isolation legitimately admits write skew (G2); the
	// checker's ability to see it is asserted by TestVerifyDetectsWriteSkew
	// below rather than a pass here.
}

// TestIsolationConformanceMatrixDet extends the conformance matrix with the
// queue-oriented deterministic executor: the same stamped-history oracle,
// driven through declared access sets (verify.DetProbe) over both index
// families and both contention levels, with cross-partition delivery pairs
// in the mix. Deterministic execution must clear a strictly higher bar than
// the interactive protocols: zero Adya anomalies AND zero conflict aborts —
// abort-freedom under contention is the mode's defining claim, so any
// nonzero conflict-abort counter is a failure even if the history checks
// out.
func TestIsolationConformanceMatrixDet(t *testing.T) {
	indexes := []struct {
		name string
		kind core.IndexKind
	}{
		{"hash", core.IndexHash},
		{"btree", core.IndexBTree},
	}
	contentions := []struct {
		name string
		keys uint64
	}{
		{"high", 8},
		{"low", 512},
	}
	batches := 16
	if testing.Short() {
		batches = 5
	}
	for _, ix := range indexes {
		for _, ct := range contentions {
			ix, ct := ix, ct
			t.Run("DET/"+ix.name+"/"+ct.name, func(t *testing.T) {
				t.Parallel()
				probe := verify.NewDetProbe(verify.ProbeConfig{
					Keys:          ct.keys,
					Index:         ix.kind,
					CrossFraction: 0.25,
				})
				res, err := harness.RunDet(
					core.Config{Partitions: 4},
					probe,
					harness.DetOptions{Batch: 50, Batches: batches, Seed: 42, Verify: true},
				)
				if err != nil {
					t.Fatal(err)
				}
				rep := res.Verification
				if rep == nil {
					t.Fatal("Verify run produced no verification report")
				}
				if rep.Txns == 0 {
					t.Fatal("no transactions recorded")
				}
				if !rep.Ok() {
					for _, a := range rep.Anomalies {
						t.Errorf("%s: %s", a.Class, a.Message)
						for _, e := range a.Witness {
							t.Errorf("  witness: %s", e)
						}
					}
				}
				// The abort-free assertion: conflict aborts exactly zero.
				if res.Aborts != 0 {
					t.Errorf("deterministic run recorded %d conflict aborts, want 0", res.Aborts)
				}
				if rep.AbortedTxns != 0 {
					t.Errorf("history recorded %d aborted attempts, want 0", rep.AbortedTxns)
				}
			})
		}
	}
}

// TestVerifyDetectsWriteSkew is the end-to-end negative control: MVCC at
// snapshot isolation legitimately admits write skew, and the verify
// subsystem must report it as G2 — from a real engine run, not a hand-built
// history. Two transactions each read keys 0 and 1, rendezvous so both hold
// begin-time snapshots, then write disjoint keys; snapshot isolation's
// first-committer-wins rule sees no write-write overlap and commits both.
func TestVerifyDetectsWriteSkew(t *testing.T) {
	e, err := core.Open(core.Config{Protocol: "MVCC", Isolation: cc.IsoSnapshot, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	sch := storage.MustSchema("ws", storage.I64("stamp"), storage.I64("prev"))
	tbl, err := e.CreateTable(sch, core.IndexHash)
	if err != nil {
		t.Fatal(err)
	}
	row := sch.NewRow()
	for k := uint64(0); k < 2; k++ {
		sch.SetInt64(row, 0, 0)
		sch.SetInt64(row, 1, -1)
		if err := e.Load(tbl, k, row); err != nil {
			t.Fatal(err)
		}
	}

	hist := verify.NewHistory(2)
	// Each worker closes its channel once its reads are done (Once guards
	// against body retries); both wait for the other before writing, so both
	// snapshots predate both writes.
	var once [2]sync.Once
	readsDone := [2]chan struct{}{make(chan struct{}), make(chan struct{})}
	errs := [2]error{}
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rec := hist.Recorder(w)
			tx := e.NewTx(w, uint64(w)+1)
			writeKey := uint64(w)
			errs[w] = tx.Run(func(tx *core.Tx) error {
				rec.Begin()
				for k := uint64(0); k < 2; k++ {
					r, err := tx.Read(tbl, k)
					if err != nil {
						return err
					}
					rec.Read(k, sch.GetInt64(r, 0))
				}
				once[w].Do(func() { close(readsDone[w]) })
				<-readsDone[1-w]
				r, err := tx.Update(tbl, writeKey)
				if err != nil {
					return err
				}
				prev := sch.GetInt64(r, 0)
				stamp := rec.Write(writeKey, prev)
				sch.SetInt64(r, 0, stamp)
				sch.SetInt64(r, 1, prev)
				return nil
			})
			if errs[w] != nil {
				rec.Abort()
			} else {
				rec.Commit()
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}

	final := make(map[uint64]int64, 2)
	tx := e.NewTx(0, 9)
	if err := tx.Run(func(tx *core.Tx) error {
		for k := uint64(0); k < 2; k++ {
			r, err := tx.Read(tbl, k)
			if err != nil {
				return err
			}
			final[k] = sch.GetInt64(r, 0)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	rep := hist.Check(final)
	if rep.Ok() {
		t.Fatal("write skew under snapshot isolation went undetected")
	}
	for _, a := range rep.Anomalies {
		if a.Class != verify.ClassG2 {
			t.Errorf("unexpected anomaly class %s: %s", a.Class, a.Message)
		}
		if len(a.Witness) == 0 {
			t.Errorf("anomaly without witness: %s", a.Message)
		}
	}
}

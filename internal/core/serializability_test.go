package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"next700/internal/cc"
	"next700/internal/storage"
)

// The serializability checker. Each record carries (stamp, prev): writers
// stamp a globally unique value and record the stamp they overwrote, so the
// committed version order of every record is reconstructible afterwards as
// a chain of prev-pointers. Each committed transaction also logs what stamp
// every read observed. From this we build the full dependency graph —
// write-write (chain order), write-read (reads-from), and read-write
// (anti-dependencies against the chain successor) — and verify it is
// acyclic. A cycle is a concrete serializability violation.

type szOp struct {
	key     uint64
	stamp   int64 // stamp written (writes) or observed (reads)
	prev    int64 // overwritten stamp (writes only)
	isWrite bool
}

type szTxn struct {
	id  int64
	ops []szOp
}

func runSerializabilityCheck(t *testing.T, cfg Config) {
	t.Helper()
	const keys = 12
	const workers = 4
	const txnsPerWorker = 250

	e := openEngine(t, cfg)
	sch := storage.MustSchema("sz", storage.I64("stamp"), storage.I64("prev"))
	tbl, err := e.CreateTable(sch, IndexHash)
	if err != nil {
		t.Fatal(err)
	}
	row := sch.NewRow()
	for k := uint64(0); k < keys; k++ {
		sch.SetInt64(row, 0, 0) // stamp 0: the loader's version
		sch.SetInt64(row, 1, -1)
		if err := e.Load(tbl, k, row); err != nil {
			t.Fatal(err)
		}
	}

	var stampCtr atomic.Int64
	var txnCtr atomic.Int64
	committed := make([][]szTxn, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tx := e.NewTx(w, uint64(w)*31+7)
			mine := make([]szTxn, 0, txnsPerWorker)
			scratch := make([]uint64, 0, 4)
			for i := 0; i < txnsPerWorker; i++ {
				// Plan 2-4 distinct keys, ~half written.
				n := 2 + tx.RNG().Intn(3)
				scratch = scratch[:0]
				for len(scratch) < n {
					k := tx.RNG().Uint64n(keys)
					dup := false
					for _, s := range scratch {
						if s == k {
							dup = true
						}
					}
					if !dup {
						scratch = append(scratch, k)
					}
				}
				var rec szTxn
				err := tx.Run(func(tx *Tx) error {
					rec = szTxn{id: txnCtr.Add(1)}
					for j, k := range scratch {
						runtime.Gosched() // force interleaving
						if j%2 == 0 {
							r, err := tx.Update(tbl, k)
							if err != nil {
								return err
							}
							prev := sch.GetInt64(r, 0)
							stamp := stampCtr.Add(1)
							sch.SetInt64(r, 0, stamp)
							sch.SetInt64(r, 1, prev)
							rec.ops = append(rec.ops, szOp{key: k, stamp: stamp, prev: prev, isWrite: true})
						} else {
							r, err := tx.Read(tbl, k)
							if err != nil {
								return err
							}
							rec.ops = append(rec.ops, szOp{key: k, stamp: sch.GetInt64(r, 0)})
						}
					}
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				mine = append(mine, rec)
			}
			committed[w] = mine
		}(w)
	}
	wg.Wait()

	// Collect all committed transactions; map each written stamp to its
	// writer and its prev.
	type writeInfo struct {
		txn  int64
		prev int64
	}
	writerOf := map[int64]writeInfo{0: {txn: 0, prev: -1}} // loader
	var all []szTxn
	for _, batch := range committed {
		for _, rec := range batch {
			all = append(all, rec)
			for _, op := range rec.ops {
				if op.isWrite {
					if _, dup := writerOf[op.stamp]; dup {
						t.Fatalf("stamp %d written twice", op.stamp)
					}
					writerOf[op.stamp] = writeInfo{txn: rec.id, prev: op.prev}
				}
			}
		}
	}

	// Reconstruct the per-key version chains from the final state and
	// verify every committed write appears in exactly one chain position
	// (a missing write is a lost update; a fork is a split-brain).
	successor := make(map[int64]int64) // stamp -> overwriting stamp
	inChain := make(map[int64]bool)    // stamps reachable from final states
	tx := e.NewTx(0, 1)
	if err := tx.Run(func(tx *Tx) error {
		for k := uint64(0); k < keys; k++ {
			r, err := tx.Read(tbl, k)
			if err != nil {
				return err
			}
			cur := sch.GetInt64(r, 0)
			seen := map[int64]bool{}
			for cur != 0 {
				if seen[cur] {
					return fmt.Errorf("key %d: cycle in version chain at stamp %d", k, cur)
				}
				seen[cur] = true
				inChain[cur] = true
				wi, ok := writerOf[cur]
				if !ok {
					return fmt.Errorf("key %d: stamp %d has no committed writer (dirty write survived)", k, cur)
				}
				// Stamp 0 is each key's loader version and is shared
				// across keys, so successor tracking (and hence fork
				// detection and rw edges) applies only to real stamps.
				if wi.prev > 0 {
					if _, dup := successor[wi.prev]; dup {
						return fmt.Errorf("key %d: stamp %d overwritten twice (fork)", k, wi.prev)
					}
					successor[wi.prev] = cur
				}
				cur = wi.prev
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Every committed write must be reachable from the final state — a
	// committed write outside all chains is a lost update.
	for stamp, wi := range writerOf {
		if stamp != 0 && !inChain[stamp] {
			t.Fatalf("lost update: committed stamp %d (txn %d) not in any version chain", stamp, wi.txn)
		}
	}

	// Build the dependency graph over txn ids and check acyclicity.
	edges := make(map[int64]map[int64]bool)
	addEdge := func(from, to int64) {
		if from == to {
			return
		}
		m := edges[from]
		if m == nil {
			m = make(map[int64]bool)
			edges[from] = m
		}
		m[to] = true
	}
	for _, rec := range all {
		for _, op := range rec.ops {
			if op.isWrite {
				// ww: the writer of the version we overwrote precedes us.
				if w, ok := writerOf[op.prev]; ok {
					addEdge(w.txn, rec.id)
				}
			} else {
				// wr: the writer of what we read precedes us.
				if w, ok := writerOf[op.stamp]; ok {
					addEdge(w.txn, rec.id)
				}
				// rw: we precede whoever overwrote what we read.
				if succ, ok := successor[op.stamp]; ok {
					if w, ok := writerOf[succ]; ok {
						addEdge(rec.id, w.txn)
					}
				}
			}
		}
	}

	// Cycle check by iterative DFS with colors.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[int64]int, len(edges))
	for start := range edges {
		if color[start] != white {
			continue
		}
		type frame struct {
			node int64
			next []int64
		}
		frames := []frame{{node: start, next: keysOf(edges[start])}}
		color[start] = gray
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if len(f.next) == 0 {
				color[f.node] = black
				frames = frames[:len(frames)-1]
				continue
			}
			n := f.next[0]
			f.next = f.next[1:]
			switch color[n] {
			case gray:
				t.Fatalf("serializability violated: dependency cycle through txn %d", n)
			case white:
				color[n] = gray
				frames = append(frames, frame{node: n, next: keysOf(edges[n])})
			}
		}
	}
}

func keysOf(m map[int64]bool) []int64 {
	out := make([]int64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestSerializabilityGraph(t *testing.T) {
	for _, protocol := range cc.Names() {
		t.Run(protocol, func(t *testing.T) {
			runSerializabilityCheck(t, Config{Protocol: protocol, Threads: 4, Partitions: 2})
		})
	}
	// MVCC at snapshot isolation is exercised for crash-freedom only — it
	// legitimately admits cycles (write skew), so no assertion there.
}

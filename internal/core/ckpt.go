package core

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"next700/internal/wal"
)

// errTruncateUnsafe is the defensive invariant-violation class for the
// truncation step: a sealed segment's ToEpoch exceeded the durable
// frontier, so removing it could destroy an epoch recovery still needs.
var errTruncateUnsafe = errors.New("core: segment sealed above durable frontier")

// This file is the checkpoint lifecycle: bootstrap (InitCheckpointLog /
// AttachCheckpointLog) and the Checkpointer that takes online checkpoint
// generations, rotates the parallel WAL, and truncates sealed segments the
// retained generations no longer need.
//
// A checkpoint cycle for generation G is a two-phase manifest protocol.
// Every step leaves the store in a state recovery handles:
//
//  1. Scan: capture every table. Value logging scans fuzzily while workers
//     run (CheckpointOnline) with checkpoint epoch C = CurrentEpoch()-1
//     drawn before the scan: any commit the scan races with tags an epoch
//     > C, so replaying the tail past C heals the capture. Command logging
//     and HSTORE quiesce instead (re-execution cannot heal a fuzzy base),
//     holding the gate through rotation so C = the rotation boundary.
//  2. Install ckpt-G atomically (temp + CRC + rename). A crash before this
//     completes leaves no object; recovery uses the previous generation.
//  3. Create segment files seg-G-* and publish them in manifest M1
//     alongside the still-active old segments. A crash here leaves empty
//     segments that recovery treats as empty tails.
//  4. Rotate the StreamSet onto the new segments under the commit fence:
//     the boundary epoch B is certified durable, old segments stop
//     growing, and every later commit tags > B.
//  5. Manifest M2: seal the old segments at ToEpoch = B, add the
//     checkpoint entry (gen G, epoch C), and prune — keep the last K
//     generations, drop sealed segments whose ToEpoch is at or below the
//     oldest kept checkpoint's epoch. A crash between M1 and M2 recovers
//     from the previous generation with the full (old + new) tail.
//  6. Physically remove pruned objects. Removal is the only irreversible
//     step and happens strictly after M2 is durable, so truncation can
//     never eat an epoch recovery still needs.

// LogAttachment is the result of bootstrapping a checkpoint store: the
// fresh segment devices to open the engine with, plus the recovery state
// captured before the new segments were published.
type LogAttachment struct {
	// Devices are the newly created per-stream segment devices, in stream
	// order; pass them as Config.LogDevices.
	Devices []wal.Device
	// Gen is the generation the new segments belong to.
	Gen uint64
	// recover is the manifest snapshot to replay from — it excludes the
	// segments created by this attachment, which are empty by definition
	// and may be concurrently appended to once the engine opens.
	recover wal.Manifest
	// fellBack reports the manifest was loaded from its .prev copy.
	fellBack bool
}

// Streams returns the stream count of the attached log.
func (a *LogAttachment) Streams() int { return len(a.Devices) }

// InitCheckpointLog bootstraps an empty store: it creates the generation-0
// segments and the initial manifest. Use it for a fresh database;
// AttachCheckpointLog resumes an existing one.
func InitCheckpointLog(store CheckpointStore, streams int, mode wal.Mode) (*LogAttachment, error) {
	if streams <= 0 {
		return nil, fmt.Errorf("core: checkpoint log needs streams >= 1: %w", ErrInvalidUsage)
	}
	att := &LogAttachment{Gen: 0}
	m := wal.Manifest{Streams: streams, Mode: mode.String()}
	for i := 0; i < streams; i++ {
		name := segmentName(0, i)
		dev, err := store.CreateSegment(name)
		if err != nil {
			return nil, err
		}
		att.Devices = append(att.Devices, dev)
		m.Segments = append(m.Segments, wal.ManifestSegment{Stream: i, Name: name})
	}
	if err := store.SaveManifest(m); err != nil {
		return nil, err
	}
	att.recover = wal.Manifest{Streams: streams, Mode: m.Mode}
	return att, nil
}

// AttachCheckpointLog resumes an existing store after a shutdown or crash:
// it loads the manifest (falling back to the previous copy if the newest
// save was torn), snapshots it as the recovery source, then creates and
// publishes a fresh generation of segments for the restarting engine to
// log into. The old segments are left untouched — they remain the
// authoritative log tail until the next checkpoint seals and prunes them.
func AttachCheckpointLog(store CheckpointStore) (*LogAttachment, error) {
	m, fellBack, err := store.LoadManifest()
	if err != nil {
		return nil, err
	}
	if m.Streams <= 0 {
		return nil, fmt.Errorf("core: manifest has no streams: %w", wal.ErrCorrupt)
	}
	att := &LogAttachment{recover: m, fellBack: fellBack, Gen: manifestMaxGen(&m) + 1}
	for i := 0; i < m.Streams; i++ {
		name := segmentName(att.Gen, i)
		dev, err := store.CreateSegment(name)
		if err != nil {
			return nil, err
		}
		att.Devices = append(att.Devices, dev)
		m.Segments = append(m.Segments, wal.ManifestSegment{Stream: i, Name: name})
	}
	if err := store.SaveManifest(m); err != nil {
		return nil, err
	}
	return att, nil
}

// manifestMaxGen returns the highest generation named anywhere in the
// manifest, from checkpoint entries and segment names.
func manifestMaxGen(m *wal.Manifest) uint64 {
	var max uint64
	for i := range m.Checkpoints {
		if g := m.Checkpoints[i].Gen; g > max {
			max = g
		}
	}
	for i := range m.Segments {
		var g uint64
		var s int
		if _, err := fmt.Sscanf(m.Segments[i].Name, "seg-%d-%d", &g, &s); err == nil && g > max {
			max = g
		}
	}
	return max
}

// Checkpointer drives checkpoint cycles for an engine logging through a
// parallel WAL whose segments live in a CheckpointStore. One cycle at a
// time; CheckpointNow may be called directly or via the Start/Stop
// background loop.
type Checkpointer struct {
	e     *Engine
	store CheckpointStore
	keep  int

	mu       sync.Mutex
	manifest wal.Manifest
	nextGen  uint64
	cur      []wal.Device
	// sliceEpoch is the epoch fence the in-progress sliced generation's
	// slices embed (cycle-scoped; held here so writeImage's closure over
	// the loop variable stays allocation-simple).
	sliceEpoch uint64

	loopMu sync.Mutex
	stopCh chan struct{}
	doneCh chan struct{}

	cycles   int
	failures int
	lastErr  error
}

// CheckpointerStats is a snapshot of checkpointer progress.
type CheckpointerStats struct {
	// Cycles is the number of completed checkpoint generations.
	Cycles int
	// Failures is the number of cycles that failed cleanly (no generation
	// installed).
	Failures int
	// LastErr is the most recent cycle failure (nil after a success).
	LastErr error
	// Generations is the number of checkpoint generations currently
	// retained in the manifest.
	Generations int
	// Segments is the number of log segments currently in the manifest.
	Segments int
}

// NewCheckpointer builds a checkpointer over the engine's parallel WAL.
// devices must be the active segment devices the engine was opened with
// (LogAttachment.Devices); keep is the number of checkpoint generations to
// retain (minimum 1, default 2).
func (e *Engine) NewCheckpointer(store CheckpointStore, keep int, devices []wal.Device) (*Checkpointer, error) {
	if e.logs == nil {
		return nil, fmt.Errorf("core: checkpointer requires a parallel WAL (WALStreams > 1 or a checkpoint log attachment): %w", ErrInvalidUsage)
	}
	if len(devices) != e.logs.NumStreams() {
		return nil, fmt.Errorf("core: checkpointer got %d devices for %d streams: %w",
			len(devices), e.logs.NumStreams(), ErrInvalidUsage)
	}
	if keep <= 0 {
		keep = 2
	}
	m, _, err := store.LoadManifest()
	if err != nil {
		return nil, err
	}
	return &Checkpointer{
		e:        e,
		store:    store,
		keep:     keep,
		manifest: m,
		nextGen:  manifestMaxGen(&m) + 1,
		cur:      append([]wal.Device(nil), devices...),
	}, nil
}

// Stats returns a progress snapshot.
func (c *Checkpointer) Stats() CheckpointerStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CheckpointerStats{
		Cycles:      c.cycles,
		Failures:    c.failures,
		LastErr:     c.lastErr,
		Generations: len(c.manifest.Checkpoints),
		Segments:    len(c.manifest.Segments),
	}
}

// Manifest returns a copy of the last manifest this checkpointer wrote or
// loaded.
func (c *Checkpointer) Manifest() wal.Manifest {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.manifest
	m.Checkpoints = append([]wal.ManifestCheckpoint(nil), c.manifest.Checkpoints...)
	m.Segments = append([]wal.ManifestSegment(nil), c.manifest.Segments...)
	return m
}

// CheckpointNow runs one full checkpoint cycle synchronously. On failure
// no new generation is installed and the engine keeps running on its
// current log; the store may retain a harmless partial (an uninstalled
// checkpoint object or empty published segments) that the next successful
// cycle or recovery tolerates.
func (c *Checkpointer) CheckpointNow() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := c.cycle()
	if err != nil {
		c.failures++
		c.lastErr = err
		return err
	}
	c.cycles++
	c.lastErr = nil
	return nil
}

// cycle is CheckpointNow's body, with c.mu held.
func (c *Checkpointer) cycle() error {
	e := c.e
	if e.logFailed() {
		return e.logErr()
	}
	// Sliced mode defers while any partition is quarantined: the dead
	// stream cannot rotate, and a slice of the quarantined partition would
	// capture memory state ahead of its durable frontier. The loop retries
	// after RecoverPartition lifts the quarantine — and its next success is
	// what closes the recovered tail's durability window.
	sliced := e.cfg.PartitionWAL
	if sliced {
		if mask := e.quarMask.Load(); mask != 0 {
			return fmt.Errorf("%w (mask %#x)", ErrCheckpointQuarantined, mask)
		}
	}
	gen := c.nextGen
	ckName := checkpointName(gen)

	// Command replay re-executes procedures and HSTORE reads raw rows, so
	// neither can heal a fuzzy capture: both quiesce for the scan and hold
	// the gate through rotation. Value logging elsewhere scans online.
	fuzzy := e.cfg.LogMode == wal.ModeValue && e.proto.Name() != "HSTORE"

	// writeImage writes the generation's image objects: one whole-engine
	// object, or one slice per partition (each with its own CRC and epoch
	// fence) in sliced mode. Sliced generations always fence at
	// CurrentEpoch()-1 — even on the quiesced path, where the manifest
	// epoch is likewise kept at the fence rather than the rotation
	// boundary: value-mode replay of the (fence, boundary] gap is
	// idempotent, and the fence must be known when the slices are written.
	writeImage := func(online bool) error {
		if !sliced {
			if online {
				return c.store.WriteCheckpoint(ckName, e.CheckpointOnline)
			}
			return c.store.WriteCheckpoint(ckName, e.Checkpoint)
		}
		for p := 0; p < e.cfg.Partitions; p++ {
			part := p
			err := c.store.WriteCheckpoint(sliceName(ckName, part), func(w io.Writer) error {
				return e.CheckpointSlice(w, part, c.sliceEpoch, online)
			})
			if err != nil {
				return err
			}
		}
		return nil
	}

	var ckptEpoch uint64
	quiesced := false
	if fuzzy {
		if cur := e.logs.CurrentEpoch(); cur > 0 {
			ckptEpoch = cur - 1
		}
		c.sliceEpoch = ckptEpoch
		if err := writeImage(true); err != nil {
			return fmt.Errorf("core: checkpoint gen %d scan: %w", gen, err)
		}
	} else {
		e.quiesce.Lock()
		quiesced = true
		if sliced {
			if cur := e.logs.CurrentEpoch(); cur > 0 {
				ckptEpoch = cur - 1
			}
			c.sliceEpoch = ckptEpoch
		}
		if err := writeImage(false); err != nil {
			e.quiesce.Unlock()
			return fmt.Errorf("core: checkpoint gen %d scan: %w", gen, err)
		}
	}

	// Create and publish (M1) the new generation's segments.
	//next700:locked(Engine.quiesce: the checkpoint cycle allocates its generation segment table inside the quiesce window; once per checkpoint, never on the txn path)
	newDevs := make([]wal.Device, e.logs.NumStreams())
	m1 := c.manifest
	m1.Checkpoints = append([]wal.ManifestCheckpoint(nil), c.manifest.Checkpoints...)
	m1.Segments = append([]wal.ManifestSegment(nil), c.manifest.Segments...)
	for i := range newDevs {
		dev, err := c.store.CreateSegment(segmentName(gen, i))
		if err != nil {
			if quiesced {
				e.quiesce.Unlock()
			}
			return fmt.Errorf("core: checkpoint gen %d segment %d: %w", gen, i, err)
		}
		newDevs[i] = dev
		m1.Segments = append(m1.Segments, wal.ManifestSegment{Stream: i, Name: segmentName(gen, i)})
	}
	if err := c.store.SaveManifest(m1); err != nil {
		if quiesced {
			e.quiesce.Unlock()
		}
		return fmt.Errorf("core: checkpoint gen %d manifest M1: %w", gen, err)
	}

	// Rotate under the commit fence (the quiesce gate already excludes
	// commits entirely on the quiesced path). Rotation certifies the
	// boundary epoch durable before returning.
	if !quiesced {
		e.ckptFence.Lock()
	}
	boundary, rerr := e.logs.Rotate(newDevs)
	if !quiesced {
		e.ckptFence.Unlock()
	} else {
		e.quiesce.Unlock()
	}
	if rerr != nil {
		return fmt.Errorf("core: checkpoint gen %d rotate: %w", gen, rerr)
	}
	if !fuzzy && !sliced {
		// Quiesced capture: the state is exactly the commits at or below
		// the rotation boundary. (Sliced generations keep the pre-scan
		// fence their slices embed — see writeImage.)
		ckptEpoch = boundary
	}

	// M2: seal the swapped-out segments, install the checkpoint entry, and
	// prune generations and fully covered sealed segments.
	m2 := m1
	m2.Checkpoints = append([]wal.ManifestCheckpoint(nil), m1.Checkpoints...)
	m2.Segments = append([]wal.ManifestSegment(nil), m1.Segments...)
	//next700:locked(Engine.ckptFence: sealing bookkeeping runs once per checkpoint inside the fence; never on the txn path)
	newSeg := make(map[string]bool, len(newDevs))
	for i := range newDevs {
		newSeg[segmentName(gen, i)] = true
	}
	for i := range m2.Segments {
		sg := &m2.Segments[i]
		if sg.ToEpoch == 0 && !newSeg[sg.Name] {
			sg.ToEpoch = boundary
		}
	}
	entry := wal.ManifestCheckpoint{Gen: gen, Name: ckName, Epoch: ckptEpoch}
	if sliced {
		entry.Slices = e.cfg.Partitions
	}
	m2.Checkpoints = append(m2.Checkpoints, entry)

	var dropCkpts []wal.ManifestCheckpoint
	if len(m2.Checkpoints) > c.keep {
		n := len(m2.Checkpoints) - c.keep
		dropCkpts = append(dropCkpts, m2.Checkpoints[:n]...)
		m2.Checkpoints = m2.Checkpoints[n:]
	}
	// Everything at or below the oldest retained checkpoint's epoch is
	// recoverable from that checkpoint; sealed segments fully below it are
	// dead weight.
	cMin := m2.Checkpoints[0].Epoch
	var dropSegs []wal.ManifestSegment
	liveSegs := m2.Segments[:0]
	for _, sg := range m2.Segments {
		if sg.ToEpoch != 0 && sg.ToEpoch <= cMin {
			dropSegs = append(dropSegs, sg)
			continue
		}
		liveSegs = append(liveSegs, sg)
	}
	m2.Segments = liveSegs
	if err := c.store.SaveManifest(m2); err != nil {
		return fmt.Errorf("core: checkpoint gen %d manifest M2: %w", gen, err)
	}

	// Physical removal, strictly after M2 is durable. The durable-frontier
	// assertion is defensive: rotation certifies every sealed boundary
	// durable, so a violation here means an epoch recovery might still
	// need was about to be destroyed.
	durable := e.logs.DurableEpoch()
	for _, sg := range dropSegs {
		if sg.ToEpoch > durable {
			return fmt.Errorf("%w: refusing to truncate %s sealed at epoch %d, durable frontier %d",
				errTruncateUnsafe, sg.Name, sg.ToEpoch, durable)
		}
		if err := c.store.RemoveSegment(sg.Name); err != nil {
			return fmt.Errorf("core: checkpoint gen %d truncate %s: %w", gen, sg.Name, err)
		}
	}
	for _, ck := range dropCkpts {
		if ck.Slices > 0 {
			for p := 0; p < ck.Slices; p++ {
				if err := c.store.RemoveCheckpoint(sliceName(ck.Name, p)); err != nil {
					return fmt.Errorf("core: checkpoint gen %d prune %s: %w", gen, sliceName(ck.Name, p), err)
				}
			}
			continue
		}
		if err := c.store.RemoveCheckpoint(ck.Name); err != nil {
			return fmt.Errorf("core: checkpoint gen %d prune %s: %w", gen, ck.Name, err)
		}
	}

	// The old devices are fully sealed and no longer referenced; release
	// their handles.
	for _, d := range c.cur {
		if cl, ok := d.(io.Closer); ok {
			cl.Close()
		}
	}
	c.cur = newDevs
	c.manifest = m2
	c.nextGen = gen + 1
	return nil
}

// Start launches the background checkpoint loop with the given interval.
// A failed cycle is recorded and the loop keeps going — a sticky log
// failure makes every subsequent cycle fail fast without touching the
// store. Stop (or a second Start) must be called before engine Close.
//
//next700:locked(Checkpointer.loopMu: lifecycle start runs once per engine; launching the loop goroutine under the lifecycle mutex is the point)
func (c *Checkpointer) Start(interval time.Duration) {
	c.loopMu.Lock()
	defer c.loopMu.Unlock()
	if c.stopCh != nil {
		return
	}
	c.stopCh = make(chan struct{})
	c.doneCh = make(chan struct{})
	go c.loop(interval, c.stopCh, c.doneCh)
}

// Stop halts the background loop and waits for any in-flight cycle to
// finish. Safe to call when the loop was never started.
func (c *Checkpointer) Stop() {
	c.loopMu.Lock()
	stop, done := c.stopCh, c.doneCh
	c.stopCh, c.doneCh = nil, nil
	c.loopMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done //next700:allowwait(shutdown join: stop close guarantees the loop exits after at most one cycle)
}

// loop is the background checkpoint driver.
func (c *Checkpointer) loop(interval time.Duration, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			// Errors are recorded in Stats; the loop never wedges on them.
			_ = c.CheckpointNow()
		}
	}
}

package core

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"next700/internal/fault"
	"next700/internal/testutil"
	"next700/internal/wal"
)

// The chaos store must satisfy the engine's store contract structurally
// (fault cannot import core).
var _ CheckpointStore = (*fault.MemStore)(nil)

const ckptTestKeys = 64

// ckptEngine opens an engine on a fresh attachment over dir.
func ckptEngine(t *testing.T, dir, protocol string, mode wal.Mode, fresh bool) (*Engine, *DirStore, *LogAttachment, *Table) {
	t.Helper()
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	var att *LogAttachment
	if fresh {
		att, err = InitCheckpointLog(store, 2, mode)
	} else {
		att, err = AttachCheckpointLog(store)
	}
	if err != nil {
		t.Fatal(err)
	}
	e := openEngine(t, Config{
		Protocol:   protocol,
		Threads:    2,
		LogMode:    mode,
		WALStreams: att.Streams(),
		LogDevices: att.Devices,
	})
	n := ckptTestKeys
	if !fresh {
		n = 0 // restored below by recovery (or its load callback)
	}
	tbl := kvTable(t, e, "kv", IndexHash, n)
	return e, store, att, tbl
}

// verifyValues checks every key holds want(key).
func verifyValues(t *testing.T, e *Engine, tbl *Table, want func(k uint64) int64) {
	t.Helper()
	tx := e.NewTx(0, 99)
	if err := tx.Run(func(tx *Tx) error {
		for k := uint64(0); k < ckptTestKeys; k++ {
			row, err := tx.Read(tbl, k)
			if err != nil {
				return err
			}
			if got := getV(tbl, row); got != want(k) {
				t.Fatalf("key %d = %d, want %d", k, got, want(k))
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointerOnlineCycleRecover drives concurrent writers through two
// online checkpoint cycles, crashes (closes) the engine, and verifies
// bounded recovery — newest checkpoint plus log tail — reproduces the
// exact final state for every value-logged protocol.
func TestCheckpointerOnlineCycleRecover(t *testing.T) {
	for _, protocol := range []string{"SILO", "MVCC", "NO_WAIT"} {
		t.Run(protocol, func(t *testing.T) {
			dir := t.TempDir()
			e, store, att, tbl := ckptEngine(t, dir, protocol, wal.ModeValue, true)
			ck, err := e.NewCheckpointer(store, 2, att.Devices)
			if err != nil {
				t.Fatal(err)
			}

			const rounds = 40
			var wg sync.WaitGroup
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					tx := e.NewTx(w, uint64(w+1))
					for r := 1; r <= rounds; r++ {
						for k := uint64(w); k < ckptTestKeys; k += 2 {
							if err := tx.Run(func(tx *Tx) error {
								row, err := tx.Update(tbl, k)
								if err != nil {
									return err
								}
								setV(tbl, row, int64(r)*1000+int64(k))
								return nil
							}); err != nil {
								t.Error(err)
								return
							}
						}
						if r == rounds/3 || r == 2*rounds/3 {
							// Mid-traffic checkpoints: the scan races these
							// writers and must be healed by the tail.
							if err := ck.CheckpointNow(); err != nil {
								t.Error(err)
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			if st := ck.Stats(); st.Cycles != 4 || st.Failures != 0 {
				t.Fatalf("checkpointer stats %+v", st)
			}
			if err := e.Close(); err != nil { // crash: no final checkpoint
				t.Fatal(err)
			}

			e2, store2, att2, tbl2 := ckptEngine(t, dir, protocol, wal.ModeValue, false)
			rs, err := e2.RecoverFromStore(store2, att2, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !rs.CheckpointLoaded {
				t.Fatalf("recovery ignored the checkpoint: %+v", rs)
			}
			if rs.CheckpointFallbacks != 0 || rs.ManifestFallback {
				t.Fatalf("unexpected fallbacks: %+v", rs)
			}
			verifyValues(t, e2, tbl2, func(k uint64) int64 { return rounds*1000 + int64(k) })
		})
	}
}

// ckptAddProc registers the command-logged increment procedure.
func ckptAddProc(t *testing.T, e *Engine, tbl *Table) {
	t.Helper()
	if err := e.RegisterProc(7, func(tx *Tx, params []byte) error {
		k := binary.LittleEndian.Uint64(params)
		d := int64(binary.LittleEndian.Uint64(params[8:]))
		row, err := tx.Update(tbl, k)
		if err != nil {
			return err
		}
		setV(tbl, row, getV(tbl, row)+d)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointerCommandCycleRecover exercises the quiesced checkpoint
// path: command logging re-executes the tail, so the capture pauses the
// engine and the checkpoint epoch is the rotation boundary.
func TestCheckpointerCommandCycleRecover(t *testing.T) {
	dir := t.TempDir()
	e, store, att, tbl := ckptEngine(t, dir, "SILO", wal.ModeCommand, true)
	ckptAddProc(t, e, tbl)
	ck, err := e.NewCheckpointer(store, 2, att.Devices)
	if err != nil {
		t.Fatal(err)
	}

	add := func(tx *Tx, k uint64, d int64) {
		t.Helper()
		var params [16]byte
		binary.LittleEndian.PutUint64(params[:], k)
		binary.LittleEndian.PutUint64(params[8:], uint64(d))
		if err := tx.RunProc(7, params[:]); err != nil {
			t.Fatal(err)
		}
	}
	tx := e.NewTx(0, 3)
	for k := uint64(0); k < ckptTestKeys; k++ {
		add(tx, k, 10)
	}
	if err := ck.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < ckptTestKeys; k++ {
		add(tx, k, 5) // the tail to re-execute
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, store2, att2, tbl2 := ckptEngine(t, dir, "SILO", wal.ModeCommand, false)
	ckptAddProc(t, e2, tbl2)
	rs, err := e2.RecoverFromStore(store2, att2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.CheckpointLoaded || rs.Procs == 0 {
		t.Fatalf("expected checkpoint + re-executed tail, got %+v", rs)
	}
	verifyValues(t, e2, tbl2, func(uint64) int64 { return 15 })

	// The tail was not re-logged: a second recovery from the same store
	// must not double-apply it.
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	e3, store3, att3, tbl3 := ckptEngine(t, dir, "SILO", wal.ModeCommand, false)
	ckptAddProc(t, e3, tbl3)
	if _, err := e3.RecoverFromStore(store3, att3, nil); err != nil {
		t.Fatal(err)
	}
	verifyValues(t, e3, tbl3, func(uint64) int64 { return 15 })
}

// TestCheckpointCorruptFallsBack flips a byte in the newest checkpoint
// generation: recovery must fall back to the previous generation and still
// reach the exact final state through the longer tail.
func TestCheckpointCorruptFallsBack(t *testing.T) {
	dir := t.TempDir()
	e, store, att, tbl := ckptEngine(t, dir, "SILO", wal.ModeValue, true)
	ck, err := e.NewCheckpointer(store, 2, att.Devices)
	if err != nil {
		t.Fatal(err)
	}
	tx := e.NewTx(0, 3)
	set := func(k uint64, v int64) {
		t.Helper()
		if err := tx.Run(func(tx *Tx) error {
			row, err := tx.Update(tbl, k)
			if err != nil {
				return err
			}
			setV(tbl, row, v)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < ckptTestKeys; k++ {
		set(k, 1)
	}
	if err := ck.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < ckptTestKeys; k++ {
		set(k, 2)
	}
	if err := ck.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	set(5, 3)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the newest generation's image on disk.
	m, _, err := store.LoadManifest()
	if err != nil {
		t.Fatal(err)
	}
	newest := m.Checkpoints[len(m.Checkpoints)-1]
	path := filepath.Join(dir, newest.Name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	e2, store2, att2, tbl2 := ckptEngine(t, dir, "SILO", wal.ModeValue, false)
	rs, err := e2.RecoverFromStore(store2, att2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rs.CheckpointFallbacks != 1 || !rs.CheckpointLoaded {
		t.Fatalf("expected one generation fallback, got %+v", rs)
	}
	if rs.CheckpointGen == newest.Gen {
		t.Fatal("recovery used the corrupt generation")
	}
	verifyValues(t, e2, tbl2, func(k uint64) int64 {
		if k == 5 {
			return 3
		}
		return 2
	})
}

// TestCheckpointRetentionBoundsWAL runs repeated cycles with traffic and
// verifies truncation keeps the store bounded: old generations and their
// fully covered sealed segments are physically removed.
func TestCheckpointRetentionBoundsWAL(t *testing.T) {
	dir := t.TempDir()
	e, store, att, tbl := ckptEngine(t, dir, "SILO", wal.ModeValue, true)
	const keep = 2
	ck, err := e.NewCheckpointer(store, keep, att.Devices)
	if err != nil {
		t.Fatal(err)
	}
	tx := e.NewTx(0, 3)
	const cycles = 5
	for c := 1; c <= cycles; c++ {
		for k := uint64(0); k < ckptTestKeys; k++ {
			if err := tx.Run(func(tx *Tx) error {
				row, err := tx.Update(tbl, k)
				if err != nil {
					return err
				}
				setV(tbl, row, int64(c))
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := ck.CheckpointNow(); err != nil {
			t.Fatal(err)
		}
	}

	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var ckpts, segs int
	for _, en := range ents {
		switch {
		case strings.HasPrefix(en.Name(), "ckpt-"):
			ckpts++
		case strings.HasPrefix(en.Name(), "seg-"):
			segs++
		}
	}
	if ckpts != keep {
		t.Fatalf("retained %d checkpoint files, want %d", ckpts, keep)
	}
	// Per stream: the active segment plus at most the sealed tail segments
	// the retained generations still need (one per kept generation, plus
	// the pre-history segment of the oldest kept checkpoint).
	maxSegs := att.Streams() * (keep + 2)
	if segs > maxSegs {
		t.Fatalf("WAL not bounded: %d segment files on disk, want <= %d", segs, maxSegs)
	}
	// Generation-0 segments must be gone after this many cycles.
	for i := 0; i < att.Streams(); i++ {
		if _, err := os.Stat(filepath.Join(dir, segmentName(0, i))); !os.IsNotExist(err) {
			t.Fatalf("bootstrap segment %d survived truncation", i)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointerStartStopNoLeak covers the background loop's lifecycle:
// clean shutdown leaves no goroutine behind, double Start is a no-op, and
// Stop without Start is safe.
func TestCheckpointerStartStopNoLeak(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	dir := t.TempDir()
	e, store, att, tbl := ckptEngine(t, dir, "SILO", wal.ModeValue, true)
	ck, err := e.NewCheckpointer(store, 2, att.Devices)
	if err != nil {
		t.Fatal(err)
	}
	ck.Stop() // never started: no-op

	tx := e.NewTx(0, 3)
	if err := tx.Run(func(tx *Tx) error {
		row, err := tx.Update(tbl, 1)
		if err != nil {
			return err
		}
		setV(tbl, row, 42)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	ck.Start(time.Millisecond)
	ck.Start(time.Millisecond) // double start: no second loop
	deadline := time.Now().Add(5 * time.Second)
	for ck.Stats().Cycles == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ck.Stop()
	ck.Stop() // idempotent
	if ck.Stats().Cycles == 0 {
		t.Fatal("background loop never completed a cycle")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointerClosedEngineFailsCleanly verifies a cycle against a
// closed (poisoned) WAL fails without installing a generation and without
// wedging Stop.
func TestCheckpointerClosedEngineFailsCleanly(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	dir := t.TempDir()
	e, store, att, _ := ckptEngine(t, dir, "SILO", wal.ModeValue, true)
	ck, err := e.NewCheckpointer(store, 2, att.Devices)
	if err != nil {
		t.Fatal(err)
	}
	ck.Start(time.Millisecond)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for ck.Stats().Failures == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ck.Stop()
	st := ck.Stats()
	if st.Failures == 0 || st.LastErr == nil {
		t.Fatalf("cycle against closed WAL should fail cleanly: %+v", st)
	}
	if st.Cycles != 0 {
		t.Fatalf("no generation should have installed: %+v", st)
	}
}

package core

import (
	"fmt"
	"io"

	"next700/internal/storage"
	"next700/internal/wal"
)

// RecoveryStats reports what a recovery pass did.
type RecoveryStats struct {
	// Records is the number of intact commit records replayed.
	Records int
	// Entries is the number of value-log entries applied (value mode).
	Entries int
	// Skipped counts value-log entries superseded by newer versions of the
	// same record later in the log (applied-if-newer filtering).
	Skipped int
	// Procs is the number of re-executed procedures (command mode).
	Procs int
	// Bytes is the log bytes consumed by intact, replayed records.
	Bytes int64
	// TornBytes is trailing bytes discarded as a torn tail — a record the
	// crash cut off mid-write, which a correct recovery must skip.
	TornBytes int64
	// CorruptTailRecords counts final records dropped because their CRC
	// failed at end-of-stream (torn payload of full length). Corruption
	// before the tail is not skippable and fails recovery instead.
	CorruptTailRecords int
	// Streams is the number of log streams merged (1 for single-stream
	// recovery).
	Streams int
	// FrontierEpoch is the merged durable frontier for multi-stream
	// recovery: the last epoch fully present across all streams.
	FrontierEpoch uint64
	// TruncatedRecords counts intact records beyond the frontier that
	// multi-stream recovery dropped (partially durable epochs are never
	// resurrected).
	TruncatedRecords int
}

// Recover replays a log stream into the engine. The engine must be in its
// freshly loaded initial state (same deterministic load as when the log was
// written) and must not be executing transactions.
//
// Value mode: after-images are applied directly, ordered per record by the
// commit version stamped at log time, with tables grown to cover logged
// record ids and indexes maintained.
//
// Command mode: each logged (proc, params) pair is re-executed serially in
// log order through the normal transaction path. This reproduces the
// H-Store/VoltDB recovery model; it is exact when the log order matches the
// serialization order (single worker or HSTORE), which is how the recovery
// experiment runs it.
func (e *Engine) Recover(log io.Reader) (RecoveryStats, error) {
	var rs RecoveryStats
	switch e.cfg.LogMode {
	case wal.ModeValue:
		return e.recoverValue(log)
	case wal.ModeCommand:
		return e.recoverCommand(log)
	default:
		return rs, fmt.Errorf("core: recovery requires a logging mode, have %v: %w", e.cfg.LogMode, ErrInvalidUsage)
	}
}

// recordVersion tracks the newest version applied per (table, rid).
type recordVersion map[int32]map[uint64]uint64

func (rv recordVersion) newer(table int32, rid, ver uint64) bool {
	m := rv[table]
	if m == nil {
		m = make(map[uint64]uint64)
		rv[table] = m
	}
	if old, ok := m[rid]; ok && old >= ver {
		return false
	}
	m[rid] = ver
	return true
}

// applyValueRecord applies one value-logged commit record with
// applied-if-newer filtering, growing tables and maintaining indexes.
func (e *Engine) applyValueRecord(cr *wal.CommitRecord, versions recordVersion, rs *RecoveryStats) error {
	rs.Records++
	for i := range cr.Entries {
		en := &cr.Entries[i]
		th := e.tableByID(int(en.Table))
		if th == nil {
			// A structurally valid record naming a table this engine
			// does not have means the log and the schema diverged —
			// classified as log corruption for the caller.
			return fmt.Errorf("core: recovery references unknown table %d: %w", en.Table, wal.ErrCorrupt)
		}
		if !versions.newer(en.Table, en.RID, cr.TxnID) {
			rs.Skipped++
			continue
		}
		rs.Entries++
		rid := storage.RecordID(en.RID)
		// Grow the table to cover the logged slot.
		for th.tbl.NumRows() <= en.RID {
			th.tbl.Alloc()
		}
		switch en.Kind {
		case wal.EntryDelete:
			th.tbl.SetTombstone(rid, true)
			th.primary.Delete(en.Key)
			for j := range th.secondaries {
				s := &th.secondaries[j]
				s.idx.Delete(s.extract(th.sch, th.tbl.Row(rid), en.Key))
			}
		case wal.EntryInsert:
			copy(th.tbl.Row(rid), en.Data)
			th.tbl.SetTombstone(rid, false)
			th.primary.Insert(en.Key, rid)
			for j := range th.secondaries {
				s := &th.secondaries[j]
				s.idx.Insert(s.extract(th.sch, storage.Row(en.Data), en.Key), rid)
			}
			e.reloadRecord(th, rid, en.Key, en.Data)
		default: // update
			copy(th.tbl.Row(rid), en.Data)
			th.tbl.SetTombstone(rid, false)
			e.reloadRecord(th, rid, en.Key, en.Data)
		}
	}
	return nil
}

func (e *Engine) recoverValue(log io.Reader) (RecoveryStats, error) {
	rs := RecoveryStats{Streams: 1}
	versions := make(recordVersion)
	st, err := wal.ReplayWithStats(log, func(cr *wal.CommitRecord) error {
		return e.applyValueRecord(cr, versions, &rs)
	})
	rs.Bytes, rs.TornBytes, rs.CorruptTailRecords = st.Bytes, st.TornBytes, st.CorruptTailRecords
	return rs, err
}

// RecoverStreams replays a multi-stream parallel WAL into the engine: the
// streams are merged by epoch and truncated to the last epoch fully present
// across all of them (see wal.ReplayStreams). The engine must be freshly
// loaded, as for Recover. Value mode applies after-images with the same
// applied-if-newer filtering; command mode re-executes procedures in
// (epoch, commit-sequence) order — the merged serialization order.
func (e *Engine) RecoverStreams(logs []io.Reader) (RecoveryStats, error) {
	var rs RecoveryStats
	if e.cfg.LogMode != wal.ModeValue && e.cfg.LogMode != wal.ModeCommand {
		return rs, fmt.Errorf("core: recovery requires a logging mode, have %v: %w", e.cfg.LogMode, ErrInvalidUsage)
	}
	versions := make(recordVersion)
	var tx *Tx
	st, err := wal.ReplayStreams(logs, func(_ int, cr *wal.CommitRecord) error {
		if e.cfg.LogMode == wal.ModeValue {
			return e.applyValueRecord(cr, versions, &rs)
		}
		rs.Records++
		if tx == nil {
			tx = e.NewTx(0, 0x5ec0Fe5)
		}
		// Params alias the replay buffer; copy before re-execution.
		params := append([]byte(nil), cr.Params...)
		if err := tx.RunProc(cr.Proc, params); err != nil {
			return fmt.Errorf("core: proc %d replay: %w", cr.Proc, err)
		}
		rs.Procs++
		return nil
	})
	rs.Bytes, rs.TornBytes, rs.CorruptTailRecords = st.Bytes, st.TornBytes, st.CorruptTailRecords
	rs.Streams, rs.FrontierEpoch, rs.TruncatedRecords = st.Streams, st.Frontier, st.TruncatedRecords
	return rs, err
}

// reloadRecord refreshes protocol-side state (version chains, committed
// image pointers) for a recovered record.
func (e *Engine) reloadRecord(th *Table, rid storage.RecordID, key uint64, data []byte) {
	if loader, ok := e.proto.(interface {
		LoadRecord(tbl *storage.Table, rid storage.RecordID, key uint64, data []byte)
	}); ok {
		loader.LoadRecord(th.tbl, rid, key, data)
	}
}

func (e *Engine) recoverCommand(log io.Reader) (RecoveryStats, error) {
	rs := RecoveryStats{Streams: 1}
	tx := e.NewTx(0, 0x5ec0Fe5)
	st, err := wal.ReplayWithStats(log, func(cr *wal.CommitRecord) error {
		rs.Records++
		// Params alias the replay buffer; copy before re-execution. Replay
		// goes through RunProc so the recovered engine's own command log
		// stays complete.
		params := append([]byte(nil), cr.Params...)
		if err := tx.RunProc(cr.Proc, params); err != nil {
			return fmt.Errorf("core: proc %d replay: %w", cr.Proc, err)
		}
		rs.Procs++
		return nil
	})
	rs.Bytes, rs.TornBytes, rs.CorruptTailRecords = st.Bytes, st.TornBytes, st.CorruptTailRecords
	return rs, err
}

package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"

	"next700/internal/storage"
	"next700/internal/wal"
)

// RecoveryStats reports what a recovery pass did.
type RecoveryStats struct {
	// Records is the number of intact commit records replayed.
	Records int
	// Entries is the number of value-log entries applied (value mode).
	Entries int
	// Skipped counts value-log entries superseded by newer versions of the
	// same record later in the log (applied-if-newer filtering).
	Skipped int
	// Procs is the number of re-executed procedures (command mode).
	Procs int
	// Bytes is the log bytes consumed by intact, replayed records.
	Bytes int64
	// TornBytes is trailing bytes discarded as a torn tail — a record the
	// crash cut off mid-write, which a correct recovery must skip.
	TornBytes int64
	// CorruptTailRecords counts final records dropped because their CRC
	// failed at end-of-stream (torn payload of full length). Corruption
	// before the tail is not skippable and fails recovery instead.
	CorruptTailRecords int
	// Streams is the number of log streams merged (1 for single-stream
	// recovery).
	Streams int
	// FrontierEpoch is the merged durable frontier for multi-stream
	// recovery: the last epoch fully present across all streams.
	FrontierEpoch uint64
	// TruncatedRecords counts intact records beyond the frontier that
	// multi-stream recovery dropped (partially durable epochs are never
	// resurrected).
	TruncatedRecords int
	// CheckpointGen and CheckpointEpoch identify the checkpoint generation
	// store-based recovery restored from (both zero when recovery replayed
	// the full log from the initial load).
	CheckpointGen   uint64
	CheckpointEpoch uint64
	// CheckpointLoaded reports that a checkpoint generation was restored.
	CheckpointLoaded bool
	// CheckpointFallbacks counts newer checkpoint generations skipped
	// because they were missing or corrupt before one loaded.
	CheckpointFallbacks int
	// SkippedOldEpoch counts intact log records dropped because their epoch
	// is already covered by the restored checkpoint.
	SkippedOldEpoch int
	// ManifestFallback reports the recovery manifest was loaded from its
	// previous copy because the newest save was torn.
	ManifestFallback bool
	// MaxEpoch is the highest intact epoch observed anywhere in the replayed
	// streams, truncated records included. Store-based recovery raises the
	// engine's epoch counter past it so post-recovery appends never collide
	// with epochs already in the log.
	MaxEpoch uint64
	// SealedSegments counts inherited active segments this recovery sealed at
	// the replay frontier (or dropped outright when nothing in them was
	// recoverable), making the truncation decision durable: a record this
	// recovery refused to resurrect stays dead in every later recovery.
	SealedSegments int
	// StreamFrontiers holds each stream's own certified frontier when the
	// recovery ran in partitioned (per-stream-frontier) mode; nil otherwise.
	StreamFrontiers []uint64
}

// Recover replays a log stream into the engine. The engine must be in its
// freshly loaded initial state (same deterministic load as when the log was
// written) and must not be executing transactions.
//
// Value mode: after-images are applied directly, ordered per record by the
// commit version stamped at log time, with tables grown to cover logged
// record ids and indexes maintained.
//
// Command mode: each logged (proc, params) pair is re-executed serially in
// log order through the normal transaction path. This reproduces the
// H-Store/VoltDB recovery model; it is exact when the log order matches the
// serialization order (single worker or HSTORE), which is how the recovery
// experiment runs it.
func (e *Engine) Recover(log io.Reader) (RecoveryStats, error) {
	var rs RecoveryStats
	switch e.cfg.LogMode {
	case wal.ModeValue:
		return e.recoverValue(log)
	case wal.ModeCommand:
		return e.recoverCommand(log)
	default:
		return rs, fmt.Errorf("core: recovery requires a logging mode, have %v: %w", e.cfg.LogMode, ErrInvalidUsage)
	}
}

// recordVersion tracks the newest version applied per (table, rid). The
// version is (epoch, txnID), epoch-major: transaction ids are only
// comparable within one engine incarnation, but epochs are monotone across
// the whole manifest history (RaiseEpoch keeps a restarted engine's tags
// above everything already logged), so a record written after a restart
// always supersedes a pre-restart image even though its txnID restarted
// small. Single-stream logs leave Epoch zero and reduce to the txnID order.
type recordVersion map[int32]map[uint64]recVer

type recVer struct{ epoch, txn uint64 }

func (rv recordVersion) newer(table int32, rid, epoch, ver uint64) bool {
	m := rv[table]
	if m == nil {
		m = make(map[uint64]recVer)
		rv[table] = m
	}
	if old, ok := m[rid]; ok {
		if old.epoch > epoch || (old.epoch == epoch && old.txn >= ver) {
			return false
		}
	}
	m[rid] = recVer{epoch: epoch, txn: ver}
	return true
}

// applyValueRecord applies one value-logged commit record with
// applied-if-newer filtering, growing tables and maintaining indexes.
func (e *Engine) applyValueRecord(cr *wal.CommitRecord, versions recordVersion, rs *RecoveryStats) error {
	rs.Records++
	for i := range cr.Entries {
		en := &cr.Entries[i]
		th := e.tableByID(int(en.Table))
		if th == nil {
			// A structurally valid record naming a table this engine
			// does not have means the log and the schema diverged —
			// classified as log corruption for the caller.
			return fmt.Errorf("core: recovery references unknown table %d: %w", en.Table, wal.ErrCorrupt)
		}
		if !versions.newer(en.Table, en.RID, cr.Epoch, cr.TxnID) {
			rs.Skipped++
			continue
		}
		rs.Entries++
		rid := storage.RecordID(en.RID)
		// Grow the table to cover the logged slot.
		for th.tbl.NumRows() <= en.RID {
			th.tbl.Alloc()
		}
		switch en.Kind {
		case wal.EntryDelete:
			th.tbl.SetTombstone(rid, true)
			th.primary.Delete(en.Key)
			for j := range th.secondaries {
				s := &th.secondaries[j]
				s.idx.Delete(s.extract(th.sch, th.tbl.Row(rid), en.Key))
			}
		case wal.EntryInsert:
			copy(th.tbl.Row(rid), en.Data)
			th.tbl.SetTombstone(rid, false)
			th.primary.Insert(en.Key, rid)
			for j := range th.secondaries {
				s := &th.secondaries[j]
				s.idx.Insert(s.extract(th.sch, storage.Row(en.Data), en.Key), rid)
			}
			e.reloadRecord(th, rid, en.Key, en.Data)
		default: // update
			copy(th.tbl.Row(rid), en.Data)
			th.tbl.SetTombstone(rid, false)
			e.reloadRecord(th, rid, en.Key, en.Data)
		}
	}
	return nil
}

func (e *Engine) recoverValue(log io.Reader) (RecoveryStats, error) {
	rs := RecoveryStats{Streams: 1}
	versions := make(recordVersion)
	st, err := wal.ReplayWithStats(log, func(cr *wal.CommitRecord) error {
		return e.applyValueRecord(cr, versions, &rs)
	})
	rs.Bytes, rs.TornBytes, rs.CorruptTailRecords = st.Bytes, st.TornBytes, st.CorruptTailRecords
	return rs, err
}

// RecoverStreams replays a multi-stream parallel WAL into the engine: the
// streams are merged by epoch and truncated to the last epoch fully present
// across all of them (see wal.ReplayStreams). The engine must be freshly
// loaded, as for Recover. Value mode applies after-images with the same
// applied-if-newer filtering; command mode re-executes procedures in
// (epoch, commit-sequence) order — the merged serialization order.
func (e *Engine) RecoverStreams(logs []io.Reader) (RecoveryStats, error) {
	var rs RecoveryStats
	err := e.recoverStreamsFrom(logs, 0, false, &rs)
	return rs, err
}

// recoverStreamsFrom is the shared multi-stream replay: records tagged at
// or below afterEpoch are skipped (they are covered by a restored
// checkpoint), and noLog suppresses re-logging of re-executed procedures
// (store-based recovery keeps the sealed segments authoritative instead).
func (e *Engine) recoverStreamsFrom(logs []io.Reader, afterEpoch uint64, noLog bool, rs *RecoveryStats) error {
	if e.cfg.LogMode != wal.ModeValue && e.cfg.LogMode != wal.ModeCommand {
		return fmt.Errorf("core: recovery requires a logging mode, have %v: %w", e.cfg.LogMode, ErrInvalidUsage)
	}
	versions := make(recordVersion)
	var tx *Tx
	st, err := wal.ReplayStreams(logs, func(_ int, cr *wal.CommitRecord) error {
		if cr.Epoch <= afterEpoch {
			rs.SkippedOldEpoch++
			return nil
		}
		if e.cfg.LogMode == wal.ModeValue {
			return e.applyValueRecord(cr, versions, rs)
		}
		rs.Records++
		if tx == nil {
			tx = e.NewTx(0, 0x5ec0Fe5)
			tx.noLog = noLog
		}
		// Params alias the replay buffer; copy before re-execution.
		params := append([]byte(nil), cr.Params...)
		if err := tx.RunProc(cr.Proc, params); err != nil {
			return fmt.Errorf("core: proc %d replay: %w", cr.Proc, err)
		}
		rs.Procs++
		return nil
	})
	rs.Bytes, rs.TornBytes, rs.CorruptTailRecords = st.Bytes, st.TornBytes, st.CorruptTailRecords
	rs.Streams, rs.FrontierEpoch, rs.TruncatedRecords = st.Streams, st.Frontier, st.TruncatedRecords
	rs.MaxEpoch = st.MaxEpoch
	return err
}

// RecoverFromStore performs bounded store-based recovery: restore the
// newest loadable checkpoint generation from att's manifest snapshot, then
// replay only the log tail past its epoch. A corrupt or missing generation
// falls back to the next older one; with no usable checkpoint (or none
// taken yet) load is called to produce the initial state and the full log
// replays. The engine must be freshly opened with att.Devices and its
// schema created; transactions must not be running.
//
// Re-executed procedures under command logging are not re-logged: the
// sealed segments named by the manifest remain the authoritative tail
// until a later checkpoint prunes them, so a second crash before then
// replays the same state, never a doubled one.
func (e *Engine) RecoverFromStore(store CheckpointStore, att *LogAttachment, load func() error) (RecoveryStats, error) {
	var rs RecoveryStats
	rs.ManifestFallback = att.fellBack
	m := att.recover

	if e.cfg.PartitionWAL {
		err := e.recoverFromStorePartitioned(store, att, load, &rs)
		return rs, err
	}

	// Newest loadable generation wins; corruption falls back.
	cks := append([]wal.ManifestCheckpoint(nil), m.Checkpoints...)
	sort.Slice(cks, func(i, j int) bool { return cks[i].Gen > cks[j].Gen })
	var afterEpoch uint64
	for _, ck := range cks {
		rc, err := store.OpenCheckpoint(ck.Name)
		if err != nil {
			rs.CheckpointFallbacks++
			continue //next700:allowretry(fallback scan: an unreadable checkpoint falls back to the next-newest generation by design)
		}
		err = e.LoadCheckpoint(rc)
		rc.Close()
		if err != nil {
			if errors.Is(err, ErrBadCheckpoint) {
				rs.CheckpointFallbacks++
				continue
			}
			return rs, err
		}
		rs.CheckpointLoaded = true
		rs.CheckpointGen, rs.CheckpointEpoch = ck.Gen, ck.Epoch
		afterEpoch = ck.Epoch
		break
	}
	if !rs.CheckpointLoaded {
		if load != nil {
			if err := load(); err != nil {
				return rs, err
			}
		}
	}

	// Per stream, the tail is the manifest's segments in generation order,
	// concatenated. Each segment is sealed individually before the splice:
	// its torn tail is trimmed (a crash artifact that would otherwise sit
	// mid-stream, where the scanner treats it as hard corruption) and, for
	// segments a previous recovery or checkpoint sealed, frames above the
	// sealing epoch are dropped — the durable form of that pass's truncation
	// decision. Segments published but never written (a crash between
	// publication and first append, or this attachment's own siblings in a
	// chained recovery) read as empty.
	readers := make([]io.Reader, m.Streams)
	for i := 0; i < m.Streams; i++ {
		var image []byte
		for _, sg := range m.Segments {
			if sg.Stream != i {
				continue
			}
			rc, err := store.OpenSegment(sg.Name)
			if err != nil {
				continue //next700:allowretry(degraded replay: a missing segment contributes an empty stream; the scan advances)
			}
			data, err := io.ReadAll(rc)
			rc.Close()
			if err != nil {
				return rs, fmt.Errorf("core: recovery segment %s: %w", sg.Name, err)
			}
			clean, err := wal.SealSegment(data, sg.ToEpoch)
			if err != nil {
				return rs, fmt.Errorf("core: recovery segment %s: %w", sg.Name, err)
			}
			image = append(image, clean...)
		}
		readers[i] = bytes.NewReader(image)
	}
	if err := e.recoverStreamsFrom(readers, afterEpoch, true, &rs); err != nil {
		return rs, err
	}

	// Post-recovery appends must tag strictly above every epoch already in
	// the log (or covered by the restored checkpoint), or a later recovery
	// would merge the incarnations out of order.
	base := rs.MaxEpoch
	if afterEpoch > base {
		base = afterEpoch
	}
	if e.logs != nil {
		e.logs.RaiseEpoch(base)
	}

	err := e.sealInheritedSegments(store, att, func(int) uint64 { return rs.FrontierEpoch }, &rs)
	return rs, err
}

// sealInheritedSegments makes a store-based recovery's truncation decision
// durable: the inherited active segments are sealed at frontierOf(stream) so
// any intact record beyond that — a commit that was never acknowledged —
// stays dead in every later recovery, even once new epochs grow past it.
// When nothing in a stream was recoverable (frontier zero) its inherited
// actives are dropped outright. The attachment's own fresh segments stay
// active. Whole-engine recovery passes the merged frontier for every stream;
// partitioned recovery passes each stream's own certified frontier.
func (e *Engine) sealInheritedSegments(store CheckpointStore, att *LogAttachment, frontierOf func(stream int) uint64, rs *RecoveryStats) error {
	m := att.recover
	sealed := wal.Manifest{Streams: m.Streams, Mode: m.Mode}
	sealed.Checkpoints = append([]wal.ManifestCheckpoint(nil), m.Checkpoints...)
	var dropped []wal.ManifestSegment
	for _, sg := range m.Segments {
		if sg.ToEpoch == 0 {
			rs.SealedSegments++
			frontier := frontierOf(sg.Stream)
			if frontier == 0 {
				dropped = append(dropped, sg)
				continue
			}
			sg.ToEpoch = frontier
		}
		sealed.Segments = append(sealed.Segments, sg)
	}
	if rs.SealedSegments > 0 {
		for i := range att.Devices {
			sealed.Segments = append(sealed.Segments, wal.ManifestSegment{Stream: i, Name: segmentName(att.Gen, i)})
		}
		if err := store.SaveManifest(sealed); err != nil {
			return fmt.Errorf("core: recovery manifest seal: %w", err)
		}
		for _, sg := range dropped {
			if err := store.RemoveSegment(sg.Name); err != nil {
				return fmt.Errorf("core: recovery drop %s: %w", sg.Name, err)
			}
		}
	}
	return nil
}

// reloadRecord refreshes protocol-side state (version chains, committed
// image pointers) for a recovered record.
func (e *Engine) reloadRecord(th *Table, rid storage.RecordID, key uint64, data []byte) {
	if loader, ok := e.proto.(interface {
		LoadRecord(tbl *storage.Table, rid storage.RecordID, key uint64, data []byte)
	}); ok {
		loader.LoadRecord(th.tbl, rid, key, data)
	}
}

func (e *Engine) recoverCommand(log io.Reader) (RecoveryStats, error) {
	rs := RecoveryStats{Streams: 1}
	tx := e.NewTx(0, 0x5ec0Fe5)
	st, err := wal.ReplayWithStats(log, func(cr *wal.CommitRecord) error {
		rs.Records++
		// Params alias the replay buffer; copy before re-execution. Replay
		// goes through RunProc so the recovered engine's own command log
		// stays complete.
		params := append([]byte(nil), cr.Params...)
		if err := tx.RunProc(cr.Proc, params); err != nil {
			return fmt.Errorf("core: proc %d replay: %w", cr.Proc, err)
		}
		rs.Procs++
		return nil
	})
	rs.Bytes, rs.TornBytes, rs.CorruptTailRecords = st.Bytes, st.TornBytes, st.CorruptTailRecords
	return rs, err
}

package core

import (
	"bytes"
	"errors"
	"testing"

	"next700/internal/storage"
	"next700/internal/txn"
	"next700/internal/wal"
)

// populate runs a deterministic mutation workload: updates, inserts, and a
// delete.
func populateForCheckpoint(t *testing.T, e *Engine, tbl *Table) {
	t.Helper()
	tx := e.NewTx(0, 5)
	for i := 0; i < 8; i++ {
		if err := tx.Run(func(tx *Tx) error {
			row, err := tx.Update(tbl, uint64(i))
			if err != nil {
				return err
			}
			setV(tbl, row, int64(500+i))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Run(func(tx *Tx) error {
		row := tbl.Schema().NewRow()
		setV(tbl, row, 777)
		return tx.Insert(tbl, 40, row)
	}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Run(func(tx *Tx) error { return tx.Delete(tbl, 9) }); err != nil {
		t.Fatal(err)
	}
}

func checkRestored(t *testing.T, e *Engine, tbl *Table) {
	t.Helper()
	tx := e.NewTx(0, 6)
	if err := tx.Run(func(tx *Tx) error {
		for i := 0; i < 8; i++ {
			row, err := tx.Read(tbl, uint64(i))
			if err != nil {
				return err
			}
			if getV(tbl, row) != int64(500+i) {
				t.Fatalf("key %d = %d", i, getV(tbl, row))
			}
		}
		row, err := tx.Read(tbl, 40)
		if err != nil {
			return err
		}
		if getV(tbl, row) != 777 {
			t.Fatalf("insert lost: %d", getV(tbl, row))
		}
		if _, err := tx.Read(tbl, 9); !errors.Is(err, txn.ErrNotFound) {
			t.Fatalf("delete lost: %v", err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	for _, protocol := range []string{"NO_WAIT", "SILO", "MVCC", "TICTOC"} {
		t.Run(protocol, func(t *testing.T) {
			e := openEngine(t, Config{Protocol: protocol, Threads: 1})
			tbl := kvTable(t, e, "kv", IndexHash, 10)
			populateForCheckpoint(t, e, tbl)

			var buf bytes.Buffer
			if err := e.Checkpoint(&buf); err != nil {
				t.Fatal(err)
			}

			e2 := openEngine(t, Config{Protocol: protocol, Threads: 1})
			tbl2 := kvTable(t, e2, "kv", IndexHash, 0) // empty: restored below
			if err := e2.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatal(err)
			}
			checkRestored(t, e2, tbl2)
		})
	}
}

func TestCheckpointDeterministic(t *testing.T) {
	mk := func() []byte {
		e := openEngine(t, Config{Protocol: "NO_WAIT", Threads: 1})
		tbl := kvTable(t, e, "kv", IndexHash, 10)
		populateForCheckpoint(t, e, tbl)
		var buf bytes.Buffer
		if err := e.Checkpoint(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := mk(), mk()
	if !bytes.Equal(a, b) {
		t.Fatal("checkpoints of identical state differ")
	}
}

func TestCheckpointPlusLogTail(t *testing.T) {
	// checkpoint, continue mutating with value logging, crash, restore
	// checkpoint + replay tail.
	dev := &memDevice{}
	e := openEngine(t, Config{Protocol: "SILO", Threads: 1, LogMode: wal.ModeValue, LogDevice: dev})
	tbl := kvTable(t, e, "kv", IndexHash, 10)
	populateForCheckpoint(t, e, tbl) // these mutations are logged too

	var ckpt bytes.Buffer
	if err := e.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	tailStart := len(dev.bytes())

	// Post-checkpoint tail: more updates.
	tx := e.NewTx(0, 9)
	for i := 0; i < 5; i++ {
		if err := tx.Run(func(tx *Tx) error {
			row, err := tx.Update(tbl, uint64(i))
			if err != nil {
				return err
			}
			setV(tbl, row, int64(9000+i))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()

	// Recover: fresh engine + checkpoint + tail replay.
	e2 := openEngine(t, Config{Protocol: "SILO", Threads: 1, LogMode: wal.ModeValue, LogDevice: &memDevice{}})
	tbl2 := kvTable(t, e2, "kv", IndexHash, 0)
	if err := e2.LoadCheckpoint(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatal(err)
	}
	tail := dev.bytes()[tailStart:]
	if _, err := e2.Recover(bytes.NewReader(tail)); err != nil {
		t.Fatal(err)
	}
	tx2 := e2.NewTx(0, 10)
	if err := tx2.Run(func(tx *Tx) error {
		for i := 0; i < 5; i++ {
			row, err := tx.Read(tbl2, uint64(i))
			if err != nil {
				return err
			}
			if getV(tbl2, row) != int64(9000+i) {
				t.Fatalf("tail update lost at %d: %d", i, getV(tbl2, row))
			}
		}
		// Pre-checkpoint state beyond the tail must also be intact.
		row, err := tx.Read(tbl2, 40)
		if err != nil {
			return err
		}
		if getV(tbl2, row) != 777 {
			t.Fatalf("checkpoint state lost: %d", getV(tbl2, row))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadCheckpointRejectsCorruption(t *testing.T) {
	e := openEngine(t, Config{Protocol: "NO_WAIT", Threads: 1})
	tbl := kvTable(t, e, "kv", IndexHash, 10)
	populateForCheckpoint(t, e, tbl)
	var buf bytes.Buffer
	if err := e.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"flipped byte":    flip(good, len(good)/2),
		"truncated":       good[:len(good)-10],
		"bad magic":       flip(good, 0),
		"flipped content": flip(good, 30),
	}
	for name, data := range cases {
		e2 := openEngine(t, Config{Protocol: "NO_WAIT", Threads: 1})
		kvTable(t, e2, "kv", IndexHash, 0)
		if err := e2.LoadCheckpoint(bytes.NewReader(data)); !errors.Is(err, ErrBadCheckpoint) {
			t.Errorf("%s: got %v", name, err)
		}
	}
	// Unknown table.
	e3 := openEngine(t, Config{Protocol: "NO_WAIT", Threads: 1})
	kvTable(t, e3, "different", IndexHash, 0)
	if err := e3.LoadCheckpoint(bytes.NewReader(good)); !errors.Is(err, ErrBadCheckpoint) {
		t.Errorf("unknown table: got %v", err)
	}
}

func flip(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0xFF
	return out
}

func TestCheckpointSecondaryIndexes(t *testing.T) {
	e := openEngine(t, Config{Protocol: "SILO", Threads: 1})
	tbl := kvTable(t, e, "kv", IndexHash, 0)
	if err := e.AddIndex(tbl, "by_v", IndexBTree,
		func(s *storage.Schema, row storage.Row, pk uint64) uint64 {
			return uint64(s.GetInt64(row, 0))<<20 | pk
		}); err != nil {
		t.Fatal(err)
	}
	sch := tbl.Schema()
	row := sch.NewRow()
	for i := 0; i < 10; i++ {
		sch.SetInt64(row, 0, int64(i%3))
		if err := e.Load(tbl, uint64(i), row); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := e.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}

	e2 := openEngine(t, Config{Protocol: "SILO", Threads: 1})
	tbl2 := kvTable(t, e2, "kv", IndexHash, 0)
	if err := e2.AddIndex(tbl2, "by_v", IndexBTree,
		func(s *storage.Schema, row storage.Row, pk uint64) uint64 {
			return uint64(s.GetInt64(row, 0))<<20 | pk
		}); err != nil {
		t.Fatal(err)
	}
	if err := e2.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	tx := e2.NewTx(0, 1)
	if err := tx.Run(func(tx *Tx) error {
		n := 0
		err := tx.ScanIndex(tbl2, "by_v", 1<<20, 2<<20-1, false,
			func(uint64, storage.Row) bool {
				n++
				return true
			})
		if n != 3 { // values 1 at pks 1,4,7
			t.Fatalf("secondary index restored %d entries", n)
		}
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

package wal

// Regression tests for the ErrClosed shutdown class (surfaced by the
// abortclass analyzer): a writer that has been Closed must fail operations
// with an error classifiable as ErrClosed, never a bare sentinel-free error.

import (
	"errors"
	"testing"
)

func TestAppendAfterCloseIsErrClosed(t *testing.T) {
	w := NewWriter(&memDevice{}, 0)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte{1, 2, 3}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
}

func TestWaitDurableAfterCloseWrapsErrClosed(t *testing.T) {
	w := NewWriter(&memDevice{}, 0)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// An LSN beyond anything appended can never become durable on a closed
	// writer; the wait must fail with the shutdown class, not hang.
	if err := w.WaitDurable(1 << 20); !errors.Is(err, ErrClosed) {
		t.Fatalf("WaitDurable after Close = %v, want ErrClosed", err)
	}
}

package wal

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
)

// The recovery manifest is the root of trust for bounded recovery: it names
// the checkpoint generations, the log segments each stream has accumulated,
// and the epoch each sealed segment runs through. It is small and rewritten
// on every checkpoint cycle, so it gets the full durability treatment the
// log itself gets: a CRC seal over the serialized body, an atomic
// temp-file-and-rename install, and a retained previous copy (<path>.prev)
// the loader falls back to when the current file is torn or corrupt.

// ManifestCheckpoint names one checkpoint generation.
type ManifestCheckpoint struct {
	// Gen is the monotonically increasing generation number.
	Gen uint64 `json:"gen"`
	// Name is the store object holding the checkpoint image.
	Name string `json:"name"`
	// Epoch is the complete-through epoch: the checkpoint contains the
	// effects of every commit tagged <= Epoch (and possibly some later ones,
	// which replay overwrites idempotently in value mode). Recovery from
	// this generation replays only records with epoch > Epoch.
	Epoch uint64 `json:"epoch"`
	// Slices, when > 0, marks a partition-sliced generation: the image is
	// split into that many per-partition objects named Name + "-p<part>",
	// each with its own CRC and embedded epoch fence, so a corrupt slice
	// degrades only its partition's recovery path. 0 is a whole-engine
	// image under Name.
	Slices int `json:"slices,omitempty"`
}

// ManifestSegment names one log segment of one stream.
type ManifestSegment struct {
	// Stream is the stream index the segment belongs to.
	Stream int `json:"stream"`
	// Name is the store object holding the segment bytes.
	Name string `json:"name"`
	// ToEpoch is the sealing epoch: every record in the segment is tagged
	// <= ToEpoch. Zero means the segment is still active (open for append)
	// and may contain any epoch.
	ToEpoch uint64 `json:"to_epoch,omitempty"`
}

// manifestTrailerLen is the length of the CRC trailer line appended to an
// encoded manifest: "N7MF" + 8 hex digits + newline.
const manifestTrailerLen = 4 + 8 + 1

// EncodeManifest serializes m with a trailing CRC seal line. The body stays
// human-readable JSON; the trailer makes a torn or bit-flipped file
// detectable instead of silently trusted.
func EncodeManifest(m Manifest) ([]byte, error) {
	if m.Streams <= 0 {
		return nil, fmt.Errorf("wal: manifest needs a positive stream count, have %d: %w", m.Streams, ErrCorrupt)
	}
	body, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	crc := crc32.ChecksumIEEE(body)
	out := make([]byte, 0, len(body)+manifestTrailerLen)
	out = append(out, body...)
	out = append(out, 'N', '7', 'M', 'F')
	var hex [8]byte
	const digits = "0123456789abcdef"
	for i := 0; i < 8; i++ {
		hex[i] = digits[(crc>>uint(28-4*i))&0xf]
	}
	out = append(out, hex[:]...)
	out = append(out, '\n')
	return out, nil
}

// DecodeManifest parses and CRC-verifies an encoded manifest. Any framing or
// checksum failure wraps ErrCorrupt so callers can fall back to a previous
// copy.
func DecodeManifest(data []byte) (Manifest, error) {
	var m Manifest
	if len(data) < manifestTrailerLen {
		return m, fmt.Errorf("wal: manifest too short: %w", ErrCorrupt)
	}
	body, trailer := data[:len(data)-manifestTrailerLen], data[len(data)-manifestTrailerLen:]
	if string(trailer[:4]) != "N7MF" || trailer[12] != '\n' {
		return m, fmt.Errorf("wal: manifest missing CRC trailer: %w", ErrCorrupt)
	}
	var want uint32
	for _, c := range trailer[4:12] {
		var v uint32
		switch {
		case c >= '0' && c <= '9':
			v = uint32(c - '0')
		case c >= 'a' && c <= 'f':
			v = uint32(c-'a') + 10
		default:
			return m, fmt.Errorf("wal: manifest CRC trailer malformed: %w", ErrCorrupt)
		}
		want = want<<4 | v
	}
	if crc32.ChecksumIEEE(body) != want {
		return m, fmt.Errorf("wal: manifest CRC mismatch: %w", ErrCorrupt)
	}
	if err := json.Unmarshal(body, &m); err != nil {
		return m, fmt.Errorf("wal: manifest body: %v: %w", err, ErrCorrupt)
	}
	if m.Streams <= 0 {
		return m, fmt.Errorf("wal: manifest stream count %d invalid: %w", m.Streams, ErrCorrupt)
	}
	return m, nil
}

// SaveManifestFile atomically installs m at path: the encoded bytes are
// written to a temp file and fsynced, the current file (if any) is preserved
// as <path>.prev, and the temp file is renamed into place. A crash at any
// point leaves either the old manifest, the old manifest under .prev, or the
// new one — never a half-written file that parses.
func SaveManifestFile(path string, m Manifest) error {
	data, err := EncodeManifest(m)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if _, err := os.Stat(path); err == nil {
		// Preserve the previous generation for torn-install fallback. If the
		// rename below then fails or the process dies, LoadManifestFile still
		// finds a valid manifest at .prev.
		if err := os.Rename(path, path+".prev"); err != nil {
			return err
		}
	}
	return os.Rename(tmp, path)
}

// LoadManifestFile reads the manifest at path, falling back to <path>.prev
// when the current file is missing, torn, or corrupt. The returned bool
// reports whether the fallback copy was used.
func LoadManifestFile(path string) (Manifest, bool, error) {
	data, rerr := os.ReadFile(path)
	if rerr == nil {
		if m, err := DecodeManifest(data); err == nil {
			return m, false, nil
		} else {
			rerr = err
		}
	}
	prev, perr := os.ReadFile(path + ".prev")
	if perr == nil {
		if m, err := DecodeManifest(prev); err == nil {
			return m, true, nil
		} else {
			perr = err
		}
	}
	return Manifest{}, false, fmt.Errorf("wal: no valid manifest at %s (%v) or fallback (%v): %w", path, rerr, perr, ErrCorrupt)
}

package wal

import (
	"bytes"
	"errors"
	"testing"

	"next700/internal/xrand"
)

// FuzzReplay throws arbitrarily damaged logs at ReplayWithStats: a
// deterministic valid log (derived from seed/nRecs) truncated at cut with
// tail appended. Replay must never panic, must fail only with ErrCorrupt,
// and must never resurrect data past the intact prefix: every applied record
// that lies within the surviving whole-record prefix must be byte-identical
// to the original, and a truncation with no foreign tail must replay exactly
// the whole records and nothing else.
func FuzzReplay(f *testing.F) {
	// Seed corpus: clean log, torn mid-record, zero-length frame (torn
	// preallocated region), garbage tail, pure garbage with no log at all.
	f.Add(uint64(1), uint8(3), uint16(0xFFFF), []byte{})
	f.Add(uint64(2), uint8(2), uint16(13), []byte{})
	f.Add(uint64(3), uint8(1), uint16(0xFFFF), []byte{0, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Add(uint64(4), uint8(2), uint16(0xFFFF), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add(uint64(5), uint8(0), uint16(0), []byte("not a wal log at all"))

	f.Fuzz(func(t *testing.T, seed uint64, nRecs uint8, cut uint16, tail []byte) {
		originals, log, ends := buildLog(seed, int(nRecs%8))

		c := int(cut)
		if c > len(log) {
			c = len(log)
		}
		input := append(append([]byte{}, log[:c]...), tail...)

		// whole is how many records survive intact within the cut — the
		// synced-prefix analogue: nothing beyond it may be resurrected as
		// original data, and nothing within it may be lost.
		whole := 0
		for whole < len(ends) && ends[whole] <= c {
			whole++
		}

		var applied []CommitRecord
		st, err := ReplayWithStats(bytes.NewReader(input), func(cr *CommitRecord) error {
			applied = append(applied, copyRecord(cr))
			return nil
		})
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("replay failed with a non-corruption error: %v", err)
		}
		if st.Bytes > int64(len(input)) {
			t.Fatalf("replay accounted %d bytes from a %d-byte input", st.Bytes, len(input))
		}
		if len(applied) < whole {
			t.Fatalf("replay applied %d records, %d are intact before the cut", len(applied), whole)
		}
		for i := 0; i < whole; i++ {
			if !sameRecord(&applied[i], &originals[i]) {
				t.Fatalf("record %d altered by replay:\n got %+v\nwant %+v", i, applied[i], originals[i])
			}
		}
		if len(tail) == 0 {
			// A pure truncation is a torn tail: exactly the whole records
			// replay, and the damage is never an error.
			if err != nil {
				t.Fatalf("truncated log failed replay: %v", err)
			}
			if len(applied) != whole {
				t.Fatalf("truncated log replayed %d records, want %d", len(applied), whole)
			}
		}
	})
}

// buildLog derives a deterministic valid log from seed: the decoded records,
// the framed bytes, and each record's end offset.
func buildLog(seed uint64, n int) (recs []CommitRecord, log []byte, ends []int) {
	rng := xrand.New(seed ^ 0x5ee0)
	var buf []byte
	for i := 0; i < n; i++ {
		var cr CommitRecord
		cr.TxnID = rng.Uint64()
		cr.Epoch = rng.Uint64n(1 << 20)
		if rng.Bool(0.3) {
			cr.Proc = int32(rng.IntRange(1, 100))
			cr.Params = randBytes(rng, rng.Intn(20))
		} else {
			for j := rng.IntRange(1, 4); j > 0; j-- {
				cr.Entries = append(cr.Entries, Entry{
					Kind:  EntryKind(rng.Intn(3)),
					Table: int32(rng.Intn(4)),
					RID:   rng.Uint64(),
					Key:   rng.Uint64n(1024),
					Data:  randBytes(rng, rng.Intn(24)),
				})
			}
		}
		buf = cr.Encode(buf[:0])
		log = append(log, buf...)
		ends = append(ends, len(log))
		recs = append(recs, cr)
	}
	return recs, log, ends
}

func randBytes(rng *xrand.RNG, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return b
}

// copyRecord deep-copies a decoded record, whose slices alias the replay
// buffer.
func copyRecord(cr *CommitRecord) CommitRecord {
	out := CommitRecord{TxnID: cr.TxnID, Epoch: cr.Epoch, Proc: cr.Proc}
	if cr.Params != nil {
		out.Params = append([]byte{}, cr.Params...)
	}
	for _, e := range cr.Entries {
		e.Data = append([]byte{}, e.Data...)
		out.Entries = append(out.Entries, e)
	}
	return out
}

func sameRecord(a, b *CommitRecord) bool {
	if a.TxnID != b.TxnID || a.Epoch != b.Epoch || a.Proc != b.Proc ||
		!bytes.Equal(a.Params, b.Params) || len(a.Entries) != len(b.Entries) {
		return false
	}
	for i := range a.Entries {
		x, y := &a.Entries[i], &b.Entries[i]
		if x.Kind != y.Kind || x.Table != y.Table || x.RID != y.RID || x.Key != y.Key ||
			!bytes.Equal(x.Data, y.Data) {
			return false
		}
	}
	return true
}

// Package wal implements write-ahead logging for the engine: binary
// redo-only commit records (value logging) or stored-procedure invocations
// (command logging), a group-commit writer that batches fsyncs across
// worker threads, and crash recovery that replays a CRC-validated log
// prefix and stops cleanly at a torn tail.
//
// The two logging modes bracket the design space the durability experiment
// (E8) explores: value logging pays per-write log volume but replays
// mechanically; command logging is nearly free at runtime but must
// re-execute transaction logic (serially, or with PACMAN-style dependency
// parallelism) at recovery.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects the logging strategy.
type Mode int

const (
	// ModeNone disables durability.
	ModeNone Mode = iota
	// ModeValue logs after-images of every mutated record per commit.
	ModeValue
	// ModeCommand logs the transaction's procedure id and parameters.
	ModeCommand
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeValue:
		return "value"
	case ModeCommand:
		return "command"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// EntryKind classifies one mutation inside a value-logged commit record.
type EntryKind uint8

const (
	// EntryUpdate is an in-place after-image.
	EntryUpdate EntryKind = iota
	// EntryInsert is a new record (key carries the primary index key).
	EntryInsert
	// EntryDelete removes the key.
	EntryDelete
)

// Entry is one mutation of a value-logged commit.
type Entry struct {
	Kind  EntryKind
	Table int32
	RID   uint64
	Key   uint64
	Data  []byte
}

// CommitRecord is the unit of logging: everything a committed transaction
// changed (value mode) or the command that reproduces it (command mode).
type CommitRecord struct {
	TxnID uint64
	// Epoch is the durability epoch the record was appended under. Single-
	// stream Writer logs leave it zero (the per-record LSN orders them); a
	// StreamSet stamps it at append time and recovery truncates the merged
	// streams to the last epoch fully present across all of them.
	Epoch uint64
	// Entries is set in value mode.
	Entries []Entry
	// Proc/Params are set in command mode.
	Proc   int32
	Params []byte
}

// record framing: [len u32][crc u32][payload]; crc covers payload.
const headerSize = 8

const (
	payloadValue   = byte(1)
	payloadCommand = byte(2)
	// payloadEpoch is a per-stream epoch marker: a flusher syncing through
	// epoch C appends one to certify that every record of this stream with
	// Epoch < C precedes it on the device. Markers carry only the epoch.
	payloadEpoch = byte(3)
)

// epochOffset is the byte offset of the Epoch field inside a framed
// value/command record: header + type byte + TxnID. StreamSet.Append patches
// the epoch (and re-seals the CRC) in place under the stream mutex, which is
// what makes per-stream epoch tags monotone.
const epochOffset = headerSize + 1 + 8

// Encode serializes the record into buf (reusing its storage) and returns
// the framed bytes.
//
//next700:hotpath
func (cr *CommitRecord) Encode(buf []byte) []byte {
	b := buf[:0]
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	if cr.Proc != 0 || cr.Params != nil {
		b = append(b, payloadCommand)
		b = binary.LittleEndian.AppendUint64(b, cr.TxnID)
		b = binary.LittleEndian.AppendUint64(b, cr.Epoch)
		b = binary.LittleEndian.AppendUint32(b, uint32(cr.Proc))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(cr.Params)))
		b = append(b, cr.Params...)
	} else {
		b = append(b, payloadValue)
		b = binary.LittleEndian.AppendUint64(b, cr.TxnID)
		b = binary.LittleEndian.AppendUint64(b, cr.Epoch)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(cr.Entries)))
		for i := range cr.Entries {
			e := &cr.Entries[i]
			b = append(b, byte(e.Kind))
			b = binary.LittleEndian.AppendUint32(b, uint32(e.Table))
			b = binary.LittleEndian.AppendUint64(b, e.RID)
			b = binary.LittleEndian.AppendUint64(b, e.Key)
			b = binary.LittleEndian.AppendUint32(b, uint32(len(e.Data)))
			b = append(b, e.Data...)
		}
	}
	payload := b[headerSize:]
	binary.LittleEndian.PutUint32(b[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[4:], crc32.ChecksumIEEE(payload))
	return b
}

// ErrCorrupt reports a CRC mismatch inside the log (as opposed to a clean
// torn tail, which Replay treats as end-of-log).
var ErrCorrupt = errors.New("wal: corrupt record")

// ErrClosed is returned by operations on a Writer after Close: Append
// rejects new records and waiters that cannot become durable report it
// (wrapped). It is a typed class — callers distinguish an orderly shutdown
// from a device failure (ErrLogFailed) with errors.Is.
var ErrClosed = errors.New("wal: writer closed")

// errClosedBeforeDurable is the prebuilt waiter-side wrapping of ErrClosed
// (prebuilt so the durability wait path stays allocation-free).
var errClosedBeforeDurable = fmt.Errorf("wal: writer closed before durability: %w", ErrClosed)

// ErrLogFailed is the sticky writer error: once the device has failed
// non-transiently, every Append and WaitDurable wraps it, all blocked
// waiters are woken, and the engine turns subsequent commits into clean
// aborts instead of hanging on durability that can never arrive.
var ErrLogFailed = errors.New("wal: log device failed")

// transient is implemented by injected device errors a retry may clear
// (see internal/fault). Any other flush error is sticky and fails the
// writer permanently.
type transient interface{ Transient() bool }

// isTransient reports whether err (or anything it wraps) marks itself
// retryable.
func isTransient(err error) bool {
	var t transient
	return errors.As(err, &t) && t.Transient()
}

// maxSyncRetries bounds re-Sync attempts on transient device errors before
// the writer declares the device dead.
const maxSyncRetries = 8

// decode parses one payload into cr. Data slices alias the payload.
func decode(payload []byte, cr *CommitRecord) error {
	if len(payload) < 17 {
		return ErrCorrupt
	}
	typ := payload[0]
	cr.TxnID = binary.LittleEndian.Uint64(payload[1:])
	cr.Epoch = binary.LittleEndian.Uint64(payload[9:])
	rest := payload[17:]
	switch typ {
	case payloadCommand:
		if len(rest) < 8 {
			return ErrCorrupt
		}
		cr.Proc = int32(binary.LittleEndian.Uint32(rest))
		n := int(binary.LittleEndian.Uint32(rest[4:]))
		rest = rest[8:]
		if len(rest) < n {
			return ErrCorrupt
		}
		cr.Params = rest[:n]
		cr.Entries = nil
	case payloadValue:
		if len(rest) < 4 {
			return ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		cr.Proc, cr.Params = 0, nil
		cr.Entries = cr.Entries[:0]
		for i := 0; i < n; i++ {
			if len(rest) < 25 {
				return ErrCorrupt
			}
			var e Entry
			e.Kind = EntryKind(rest[0])
			e.Table = int32(binary.LittleEndian.Uint32(rest[1:]))
			e.RID = binary.LittleEndian.Uint64(rest[5:])
			e.Key = binary.LittleEndian.Uint64(rest[13:])
			dn := int(binary.LittleEndian.Uint32(rest[21:]))
			rest = rest[25:]
			if len(rest) < dn {
				return ErrCorrupt
			}
			e.Data = rest[:dn]
			rest = rest[dn:]
			cr.Entries = append(cr.Entries, e)
		}
	default:
		return ErrCorrupt
	}
	return nil
}

// Device is the durable sink. *os.File satisfies it; tests and the torture
// harness use fault.MemDevice (an in-memory device that tracks the synced
// watermark), usually wrapped in fault.Device for seeded injection of torn
// writes, sync failures, and latency — see internal/fault.
type Device interface {
	io.Writer
	Sync() error
}

// Writer is the group-commit log writer. Workers Append encoded records and
// then WaitDurable; a single flusher goroutine drains the shared buffer
// every Window (or immediately when Window is zero) and issues one Sync per
// batch, amortizing the sync cost across all transactions in the window —
// the classic group commit.
type Writer struct {
	dev    Device
	window time.Duration

	mu      sync.Mutex
	cond    *sync.Cond
	buf     []byte
	spare   []byte // recycled batch buffer; buf and spare ping-pong across flushes
	next    uint64 // LSN after the last appended byte
	durable uint64 // LSN through which data is synced
	closed  bool
	err     error

	// failed mirrors err != nil without the mutex, so engines can gate
	// commits on log health from the hot path without contending.
	failed atomic.Bool

	wake chan struct{}
	done chan struct{}
}

// NewWriter starts a group-commit writer over dev. window is the maximum
// time a committing transaction waits for peers to share its sync; zero
// means every WaitDurable triggers an immediate flush.
func NewWriter(dev Device, window time.Duration) *Writer {
	w := &Writer{
		dev:    dev,
		window: window,
		wake:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	w.cond = sync.NewCond(&w.mu)
	go w.flusher()
	return w
}

// Append stages an encoded record and returns the LSN a caller must wait
// for to know it is durable.
//
//next700:hotpath
func (w *Writer) Append(rec []byte) (uint64, error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0, ErrClosed
	}
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return 0, err
	}
	w.buf = append(w.buf, rec...)
	w.next += uint64(len(rec))
	lsn := w.next
	w.mu.Unlock()
	return lsn, nil
}

// WaitDurable blocks until everything up to lsn is on the device. With a
// batching window the caller simply waits for the flusher's next tick —
// that wait is the group-commit latency the window trades for sync
// amortization; in immediate mode (window 0) the flusher is kicked.
func (w *Writer) WaitDurable(lsn uint64) error {
	return w.waitDurable(lsn, 0)
}

// ErrWaitDeadline is returned by WaitDurableUntil when the deadline passes
// before the record becomes durable. The record stays staged: it may still
// reach the device later, so the caller's outcome is indeterminate (the
// classic commit-wait timeout), but the caller is never stranded on a
// stalled — as opposed to poisoned — device.
var ErrWaitDeadline = errors.New("wal: durability wait deadline exceeded")

// WaitDurableUntil is WaitDurable bounded by an absolute deadline in Unix
// nanoseconds (0 means wait forever). A timer broadcast wakes the waiter
// even when the device is hung mid-Sync and the flusher can make no
// progress.
func (w *Writer) WaitDurableUntil(lsn uint64, deadline int64) error {
	return w.waitDurable(lsn, deadline)
}

//next700:allowalloc(blocked path only: the deadline timer and clock reads happen while parked, never on a commit that finds its LSN durable)
func (w *Writer) waitDurable(lsn uint64, deadline int64) error {
	var timer *time.Timer
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.durable < lsn && w.err == nil && !w.closed {
		if deadline != 0 {
			remaining := deadline - time.Now().UnixNano()
			if remaining <= 0 {
				if timer != nil {
					timer.Stop()
				}
				return ErrWaitDeadline
			}
			if timer == nil {
				//next700:locked(Writer.mu: deadline timer armed at most once per parked waiter; commits that find their LSN durable never reach this)
				timer = time.AfterFunc(time.Duration(remaining), func() {
					w.mu.Lock()
					w.cond.Broadcast()
					w.mu.Unlock()
				})
			}
		}
		if w.window == 0 {
			w.kick()
		}
		// Deadline-aware by construction when deadline != 0: the AfterFunc
		// broadcast above re-wakes this Wait and the loop head re-checks the
		// deadline. The deadline==0 form is the caller's explicit opt-out
		// (WaitDurable), kept for loaders and tests.
		w.cond.Wait() //next700:allowwait(timer broadcast re-wakes; deadline re-checked at loop head; deadline==0 is the caller's opt-out)
	}
	if timer != nil {
		timer.Stop()
	}
	if w.durable >= lsn {
		// The record made it to the device; a later failure does not
		// retract its durability.
		return nil
	}
	if w.err != nil {
		return w.err
	}
	return errClosedBeforeDurable
}

// kick nudges the flusher without blocking.
func (w *Writer) kick() {
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// flusher drains the buffer on wakeups and window ticks.
func (w *Writer) flusher() {
	defer close(w.done)
	var ticker *time.Ticker
	var tick <-chan time.Time
	if w.window > 0 {
		ticker = time.NewTicker(w.window)
		tick = ticker.C
		defer ticker.Stop()
	}
	for {
		select {
		case _, ok := <-w.wake:
			if !ok {
				w.flush()
				return
			}
		case <-tick:
		}
		w.flush()
	}
}

// maxRetainedBatchCap bounds the capacity of the recycled batch buffer so
// one oversized group commit does not pin memory for the writer's lifetime.
const maxRetainedBatchCap = 4 << 20

// flush writes and syncs the staged buffer. The flushed batch and the
// staging buffer ping-pong so the steady state appends into retained
// capacity instead of reallocating per group commit.
//
//next700:hotpath
func (w *Writer) flush() {
	w.mu.Lock()
	if w.err != nil {
		// The log is dead. Writing more would leave a gap after the failed
		// batch and corrupt the LSN accounting, so staged bytes are dropped —
		// loudly: every waiter is woken and observes the sticky error.
		w.buf = w.buf[:0]
		w.cond.Broadcast()
		w.mu.Unlock()
		return
	}
	if len(w.buf) == 0 {
		w.cond.Broadcast()
		w.mu.Unlock()
		return
	}
	batch := w.buf
	w.buf = w.spare[:0]
	w.spare = nil
	target := w.next
	w.mu.Unlock()

	_, err := w.dev.Write(batch)
	if err == nil {
		err = w.dev.Sync()
		// A transient sync failure (injected by fault devices, or the moral
		// equivalent of EINTR) is retried in place; only persistent failure
		// poisons the writer.
		for retries := 0; err != nil && isTransient(err) && retries < maxSyncRetries; retries++ {
			err = w.dev.Sync()
		}
	}

	w.mu.Lock()
	if err != nil {
		//next700:allowalloc(device-failure path: the sticky error is built once, after which the writer is dead)
		w.err = fmt.Errorf("%w: %w", ErrLogFailed, err)
		w.failed.Store(true)
	} else {
		w.durable = target
	}
	if cap(batch) <= maxRetainedBatchCap {
		w.spare = batch[:0]
	}
	w.cond.Broadcast()
	w.mu.Unlock()
}

// Close flushes remaining records and stops the flusher. When the device
// has failed, records buffered after the failure cannot be made durable;
// Close reports the sticky error rather than dropping them silently.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	close(w.wake)
	<-w.done //next700:allowwait(shutdown join: closing wake guarantees the flusher drains and exits)
	w.mu.Lock()
	defer w.mu.Unlock()
	w.cond.Broadcast()
	return w.err
}

// Durable returns the currently durable LSN.
func (w *Writer) Durable() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.durable
}

// Failed reports whether the writer has hit a sticky device failure. It is
// a single atomic load, cheap enough for the commit hot path to gate on.
func (w *Writer) Failed() bool { return w.failed.Load() }

// Err returns the sticky writer error (wrapping ErrLogFailed), or nil.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// ReplayStats describes what a replay pass consumed and what it skipped —
// the raw material for recovery reports (core.RecoveryStats) and for the
// torture harness's prefix accounting.
type ReplayStats struct {
	// Records is the number of intact records applied.
	Records int
	// Markers is the number of intact epoch markers seen (stream logs only).
	Markers int
	// Bytes is the total length of the applied records, framing included.
	Bytes int64
	// TornBytes is the length of the trailing torn or zeroed region skipped
	// at end of log: the partial record a crashed write left behind.
	TornBytes int64
	// CorruptTailRecords counts complete-looking final records dropped for a
	// CRC mismatch with nothing after them — torn in place rather than
	// truncated. Mid-stream CRC mismatches are ErrCorrupt instead.
	CorruptTailRecords int
}

// Replay scans a log stream, invoking apply for every intact record in
// order. It returns the number of records applied. A truncated final
// record (torn write at crash) ends replay without error; a CRC mismatch
// in the middle of the stream returns ErrCorrupt.
func Replay(r io.Reader, apply func(*CommitRecord) error) (int, error) {
	st, err := ReplayWithStats(r, apply)
	return st.Records, err
}

// ReplayWithStats is Replay with full skipped/torn-tail accounting. Epoch
// markers (written by StreamSet flushers) are counted and skipped; use
// ScanStream when the marker values matter (stream recovery).
func ReplayWithStats(r io.Reader, apply func(*CommitRecord) error) (ReplayStats, error) {
	return ScanStream(r, apply, nil)
}

// ScanStream scans one log stream, invoking apply for every intact record
// and marker (when non-nil) for every intact epoch marker. Torn-tail
// semantics match Replay: a truncated or in-place-torn final frame ends the
// scan without error; damage before the end is ErrCorrupt.
func ScanStream(r io.Reader, apply func(*CommitRecord) error, marker func(epoch uint64) error) (ReplayStats, error) {
	var st ReplayStats
	var hdr [headerSize]byte
	var payload []byte
	var cr CommitRecord
	for {
		hn, err := io.ReadFull(r, hdr[:])
		if err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				st.TornBytes += int64(hn) // clean end or torn header
				return st, nil
			}
			return st, err
		}
		size := binary.LittleEndian.Uint32(hdr[0:])
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if size == 0 || size > 1<<30 {
			// Zeroed/torn tail (e.g. a preallocated region never written):
			// everything from this header on is skipped.
			rest, _ := io.Copy(io.Discard, r)
			st.TornBytes += headerSize + rest
			return st, nil
		}
		if cap(payload) < int(size) {
			payload = make([]byte, size)
		}
		payload = payload[:size]
		pn, err := io.ReadFull(r, payload)
		if err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				st.TornBytes += headerSize + int64(pn) // torn payload
				return st, nil
			}
			return st, err
		}
		if crc32.ChecksumIEEE(payload) != crc {
			// Could be a torn tail (last record) or corruption. Peek: if
			// nothing follows, treat as torn tail.
			var one [1]byte
			if _, err := io.ReadFull(r, one[:]); err == io.EOF {
				st.TornBytes += headerSize + int64(size)
				st.CorruptTailRecords++
				return st, nil
			}
			return st, ErrCorrupt
		}
		if len(payload) > 0 && payload[0] == payloadEpoch {
			if len(payload) != 9 {
				return st, ErrCorrupt
			}
			st.Markers++
			st.Bytes += headerSize + int64(size)
			if marker != nil {
				if err := marker(binary.LittleEndian.Uint64(payload[1:])); err != nil {
					return st, err
				}
			}
			continue
		}
		if err := decode(payload, &cr); err != nil {
			return st, err
		}
		if err := apply(&cr); err != nil {
			return st, err
		}
		st.Records++
		st.Bytes += headerSize + int64(size)
	}
}

// IsMarkerPayload reports whether a framed payload is an epoch marker
// rather than a commit record. Exposed for tools that slice raw stream
// images by frame (the torture harness's negative controls).
func IsMarkerPayload(p []byte) bool {
	return len(p) == 9 && p[0] == payloadEpoch
}

// appendMarker frames an epoch marker onto buf.
func appendMarker(buf []byte, epoch uint64) []byte {
	b := append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
	b = append(b, payloadEpoch)
	b = binary.LittleEndian.AppendUint64(b, epoch)
	payload := b[len(b)-9:]
	binary.LittleEndian.PutUint32(b[len(b)-9-headerSize:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[len(b)-9-headerSize+4:], crc32.ChecksumIEEE(payload))
	return b
}

package wal

import (
	"bytes"
	"errors"
	"testing"
)

// sealFrame encodes one value record tagged with the given epoch.
func sealFrame(txn, epoch uint64) []byte {
	cr := &CommitRecord{
		TxnID: txn,
		Epoch: epoch,
		Entries: []Entry{
			{Kind: EntryUpdate, Table: 1, RID: txn, Key: txn, Data: []byte{1, 2, 3, 4}},
		},
	}
	return cr.Encode(nil)
}

// sealEpochs replays a sealed image and returns the record epochs in order.
func sealEpochs(t *testing.T, img []byte) []uint64 {
	t.Helper()
	var out []uint64
	if _, err := ScanStream(bytes.NewReader(img), func(cr *CommitRecord) error {
		out = append(out, cr.Epoch)
		return nil
	}, nil); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSealSegmentTrimsTornTail(t *testing.T) {
	var img []byte
	img = append(img, sealFrame(1, 1)...)
	img = append(img, sealFrame(2, 2)...)
	whole := len(img)
	last := sealFrame(3, 3)
	img = append(img, last[:len(last)/2]...) // torn final frame

	clean, err := SealSegment(img, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean) != whole {
		t.Fatalf("sealed %d bytes, want %d", len(clean), whole)
	}
	if got := sealEpochs(t, clean); len(got) != 2 {
		t.Fatalf("sealed image has %d records, want 2: %v", len(got), got)
	}
}

func TestSealSegmentTornFinalPayload(t *testing.T) {
	// A full-length final record with a bad CRC is a torn write too.
	var img []byte
	img = append(img, sealFrame(1, 1)...)
	whole := len(img)
	img = append(img, sealFrame(2, 2)...)
	img[len(img)-1] ^= 0xFF

	clean, err := SealSegment(img, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean) != whole {
		t.Fatalf("sealed %d bytes, want %d", len(clean), whole)
	}
}

func TestSealSegmentMidCorruptionFails(t *testing.T) {
	first := sealFrame(1, 1)
	var img []byte
	img = append(img, first...)
	img = append(img, sealFrame(2, 2)...)
	img[headerSize+2] ^= 0xFF // corrupt the first payload, not the last
	if _, err := SealSegment(img, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-stream corruption must fail, got %v", err)
	}
}

func TestSealSegmentCeilingDropsLateFrames(t *testing.T) {
	var img []byte
	img = append(img, sealFrame(1, 4)...)
	img = append(img, sealFrame(2, 5)...)
	img = append(img, appendMarker(nil, 6)...)
	img = append(img, sealFrame(3, 6)...)

	clean, err := SealSegment(img, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := sealEpochs(t, clean); len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Fatalf("ceiling 5 kept %v, want [4 5]", got)
	}
	// Frames above the ceiling are replaced by exactly one marker for
	// ceiling+1: the sealing epoch is a completeness certificate, so the
	// sealed image must keep claiming "complete through 5" — but nothing
	// beyond it, or a record the ceiling killed could be resurrected.
	var markers []uint64
	if _, err := ScanStream(bytes.NewReader(clean), func(*CommitRecord) error { return nil },
		func(epoch uint64) error { markers = append(markers, epoch); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(markers) != 1 || markers[0] != 6 {
		t.Fatalf("sealed image markers %v, want exactly [6]", markers)
	}
	// Ceiling zero keeps everything and adds nothing.
	all, err := SealSegment(img, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(img) {
		t.Fatalf("ceiling 0 changed an intact image: %d != %d", len(all), len(img))
	}
}

func TestRaiseEpochMonotone(t *testing.T) {
	dev := &memDevice{}
	s := NewStreamSet([]Device{dev}, 0)
	defer s.Close()
	if got := s.CurrentEpoch(); got != 1 {
		t.Fatalf("fresh epoch %d, want 1", got)
	}
	s.RaiseEpoch(100)
	if got := s.CurrentEpoch(); got != 101 {
		t.Fatalf("raised epoch %d, want 101", got)
	}
	s.RaiseEpoch(50) // at or below current: no-op
	if got := s.CurrentEpoch(); got != 101 {
		t.Fatalf("lowering raise changed epoch to %d", got)
	}
	// Appends tag above the raised base and become durable normally.
	rec := sealFrame(9, 0)
	epoch, err := s.Append(0, rec)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 101 {
		t.Fatalf("append tagged epoch %d, want 101", epoch)
	}
	if err := s.WaitDurable(0, epoch); err != nil {
		t.Fatal(err)
	}
	if got := sealEpochs(t, dev.bytes()); len(got) != 1 || got[0] != 101 {
		t.Fatalf("device records %v, want [101]", got)
	}
}

package wal

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"next700/internal/testutil"
)

// setRecord builds a framed value record for stream-set tests. The Epoch
// field is zero — Append stamps it.
func setRecord(id uint64) []byte {
	return (&CommitRecord{TxnID: id, Entries: []Entry{
		{Kind: EntryUpdate, Table: 1, RID: id, Key: id, Data: []byte{byte(id)}},
	}}).Encode(nil)
}

// TestStreamSetDurability hammers a 3-stream set from one worker per stream
// and verifies every acknowledged commit is inside the merged frontier of
// the synced images — the multi-stream analogue of "acked means recovered".
func TestStreamSetDurability(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	const streams, perWorker = 3, 50
	devs := make([]Device, streams)
	mems := make([]*memDevice, streams)
	for i := range devs {
		mems[i] = &memDevice{}
		devs[i] = mems[i]
	}
	s := NewStreamSet(devs, 0)

	acked := make([][]uint64, streams)
	var wg sync.WaitGroup
	for w := 0; w < streams; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := uint64(w*1000 + i)
				ep, err := s.Append(w, setRecord(id))
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				if err := s.WaitDurable(w, ep); err != nil {
					t.Errorf("wait: %v", err)
					return
				}
				acked[w] = append(acked[w], id)
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	images := make([][]byte, streams)
	for i, m := range mems {
		images[i] = m.bytes()
	}
	got := make(map[uint64]bool)
	st, err := ReplayStreamBytes(images, func(_ int, cr *CommitRecord) error {
		got[cr.TxnID] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for w := range acked {
		want += len(acked[w])
		for _, id := range acked[w] {
			if !got[id] {
				t.Fatalf("acked txn %d lost (frontier %d)", id, st.Frontier)
			}
		}
	}
	if st.Records != want {
		t.Fatalf("replayed %d records, acked %d", st.Records, want)
	}
	if st.TruncatedRecords != 0 {
		t.Fatalf("clean close truncated %d records", st.TruncatedRecords)
	}
}

// TestStreamSetTornStreamTruncates cuts one stream's image at a byte offset
// and checks the merge truncates the global frontier rather than resurrect
// a partially present epoch from the intact streams.
func TestStreamSetTornStreamTruncates(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	const streams = 3
	devs := make([]Device, streams)
	mems := make([]*memDevice, streams)
	for i := range devs {
		mems[i] = &memDevice{}
		devs[i] = mems[i]
	}
	s := NewStreamSet(devs, 0)
	epochs := make(map[uint64]uint64) // txn -> tagged epoch
	for i := 0; i < 30; i++ {
		w := i % streams
		id := uint64(i)
		ep, err := s.Append(w, setRecord(id))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.WaitDurable(w, ep); err != nil {
			t.Fatal(err)
		}
		epochs[id] = ep
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	images := make([][]byte, streams)
	for i, m := range mems {
		images[i] = m.bytes()
	}
	// Tear stream 1 roughly in half, mid-frame.
	images[1] = images[1][:len(images[1])/2]

	applied := make(map[uint64]bool)
	st, err := ReplayStreamBytes(images, func(_ int, cr *CommitRecord) error {
		applied[cr.TxnID] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, ep := range epochs {
		if ep <= st.Frontier && !applied[id] {
			t.Fatalf("txn %d (epoch %d) within frontier %d but not applied", id, ep, st.Frontier)
		}
		if ep > st.Frontier && applied[id] {
			t.Fatalf("txn %d (epoch %d) beyond frontier %d was resurrected", id, ep, st.Frontier)
		}
	}
	// The tear must actually have cost something, or the case is vacuous.
	if st.Records == len(epochs) {
		t.Fatal("tearing half a stream dropped nothing; test is vacuous")
	}
}

// TestStreamSetFailurePoisons pins the legacy (thread-affinity) failure
// contract: a persistently failing device poisons the whole set — appends
// and waits on every stream report ErrLogFailed.
func TestStreamSetFailurePoisons(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	bad := &syncFailDevice{err: errors.New("disk gone")}
	devs := []Device{&memDevice{}, bad}
	s := NewStreamSet(devs, 0)
	defer s.Close()

	ep, err := s.Append(1, setRecord(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WaitDurable(1, ep); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("wait on failed stream: err=%v, want ErrLogFailed", err)
	}
	// The healthy stream is poisoned too: its epochs can no longer close.
	if _, err := s.Append(0, setRecord(2)); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("append after poison: err=%v, want ErrLogFailed", err)
	}
	if !s.Failed() {
		t.Fatal("Failed() false after device failure")
	}
}

// TestStreamSetScopedFailure pins the per-stream (partition-affinity)
// contract: a sticky failure on one stream surfaces as a *StreamError
// carrying the stream index and wrapping both ErrStreamFailed and
// ErrLogFailed, the set as a whole stays healthy, and after Quarantine the
// frontier re-certifies so the surviving stream's commits keep acking.
func TestStreamSetScopedFailure(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	bad := &syncFailDevice{err: errors.New("disk gone")}
	devs := []Device{&memDevice{}, bad}
	s := NewStreamSetScoped(devs, 0)

	ep, err := s.Append(1, setRecord(1))
	if err != nil {
		t.Fatal(err)
	}
	werr := s.WaitDurable(1, ep)
	if !errors.Is(werr, ErrStreamFailed) || !errors.Is(werr, ErrLogFailed) {
		t.Fatalf("wait on failed stream: err=%v, want ErrStreamFailed+ErrLogFailed", werr)
	}
	var serr *StreamError
	if !errors.As(werr, &serr) || serr.Stream != 1 {
		t.Fatalf("err=%v, want *StreamError for stream 1", werr)
	}
	// The failure index is delivered to the guard channel.
	select {
	case idx := <-s.FailureC():
		if idx != 1 {
			t.Fatalf("failureC delivered %d, want 1", idx)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no failure notification")
	}
	// Scoped: the set is NOT whole-set failed, and the healthy stream still
	// accepts appends.
	if s.Failed() {
		t.Fatal("scoped failure set whole-set Failed()")
	}
	if !s.StreamFailed(1) || s.StreamFailed(0) {
		t.Fatal("per-stream failure flags wrong")
	}
	ep0, err := s.Append(0, setRecord(2))
	if err != nil {
		t.Fatalf("append on healthy stream after scoped failure: %v", err)
	}
	// The frontier is frozen behind the dead stream's claim: the healthy
	// append cannot certify yet. Quarantine re-certifies and the wait acks.
	waitErr := make(chan error, 1)
	go func() { waitErr <- s.WaitDurable(0, ep0) }()
	if err := s.Quarantine(1); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("healthy-stream wait after quarantine: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("healthy-stream wait did not re-certify after quarantine")
	}
	// Appends on the dead stream keep failing with the typed error.
	if _, err := s.Append(1, setRecord(3)); !errors.Is(err, ErrStreamFailed) {
		t.Fatalf("append on dead stream: err=%v, want ErrStreamFailed", err)
	}
	// Close reports the stream's sticky error: staged bytes died with it.
	if err := s.Close(); !errors.Is(err, ErrStreamFailed) {
		t.Fatalf("close: err=%v, want ErrStreamFailed", err)
	}
}

// TestStreamSetReadmit drives the full quarantine lifecycle: fail, drain
// waiters, quarantine, readmit on a fresh device, and verify the stream
// commits durably again with the frontier still monotone.
func TestStreamSetReadmit(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	bad := &syncFailDevice{err: errors.New("disk gone")}
	fresh := &memDevice{}
	devs := []Device{&memDevice{}, bad}
	s := NewStreamSetScoped(devs, 0)

	if _, err := s.Append(1, setRecord(1)); err != nil {
		t.Fatal(err)
	}
	ep, _ := s.Append(1, setRecord(2))
	if err := s.WaitDurable(1, ep); !errors.Is(err, ErrStreamFailed) {
		t.Fatalf("wait: %v", err)
	}
	if err := s.Quarantine(1); err != nil {
		t.Fatal(err)
	}
	before := s.DurableEpoch()
	if err := s.Readmit(1, fresh); err != nil {
		t.Fatal(err)
	}
	if s.StreamFailed(1) || s.StreamQuarantined(1) {
		t.Fatal("stream still failed/quarantined after readmit")
	}
	if got := s.DurableEpoch(); got < before {
		t.Fatalf("frontier regressed across readmit: %d -> %d", before, got)
	}
	// The readmitted stream certifies new commits on the fresh device.
	ep2, err := s.Append(1, setRecord(3))
	if err != nil {
		t.Fatalf("append after readmit: %v", err)
	}
	if err := s.WaitDurable(1, ep2); err != nil {
		t.Fatalf("wait after readmit: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if len(fresh.bytes()) == 0 {
		t.Fatal("fresh device empty after readmitted commit")
	}
}

// TestStreamSetAppendMulti: a multi-stream append replicates the record
// into every touched stream under one epoch, and replay sees one copy per
// stream with identical epoch tags.
func TestStreamSetAppendMulti(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	mems := []*memDevice{{}, {}, {}}
	devs := []Device{mems[0], mems[1], mems[2]}
	s := NewStreamSetScoped(devs, 0)

	ep, err := s.AppendMulti([]int{0, 2}, setRecord(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WaitDurableMulti([]int{0, 2}, ep, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	images := [][]byte{mems[0].bytes(), mems[1].bytes(), mems[2].bytes()}
	var seen []int
	var epochs []uint64
	if _, err := ReplayStreamBytes(images, func(stream int, cr *CommitRecord) error {
		if cr.TxnID == 7 {
			seen = append(seen, stream)
			epochs = append(epochs, cr.Epoch)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] != 0 || seen[1] != 2 {
		t.Fatalf("copies on streams %v, want [0 2]", seen)
	}
	if epochs[0] != epochs[1] {
		t.Fatalf("copies tagged different epochs: %v", epochs)
	}
}

// TestReplayStreamsPartitioned: per-stream frontiers — a torn stream
// truncates only its own tail, never the healthy streams' later epochs.
func TestReplayStreamsPartitioned(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	const streams = 3
	devs := make([]Device, streams)
	mems := make([]*memDevice, streams)
	for i := range devs {
		mems[i] = &memDevice{}
		devs[i] = mems[i]
	}
	s := NewStreamSetScoped(devs, 0)
	epochs := make(map[uint64]uint64)
	owner := make(map[uint64]int)
	for i := 0; i < 30; i++ {
		w := i % streams
		id := uint64(i)
		ep, err := s.Append(w, setRecord(id))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.WaitDurable(w, ep); err != nil {
			t.Fatal(err)
		}
		epochs[id] = ep
		owner[id] = w
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	images := make([][]byte, streams)
	for i, m := range mems {
		images[i] = m.bytes()
	}
	// Tear stream 1 in half: only stream 1's tail may truncate.
	images[1] = images[1][:len(images[1])/2]

	readers := make([]io.Reader, streams)
	for i := range images {
		readers[i] = bytes.NewReader(images[i])
	}
	applied := make(map[uint64]bool)
	st, err := ReplayStreamsPartitioned(readers, func(_ int, cr *CommitRecord) error {
		applied[cr.TxnID] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.StreamFrontiers) != streams {
		t.Fatalf("StreamFrontiers = %v", st.StreamFrontiers)
	}
	for id, ep := range epochs {
		w := owner[id]
		if ep <= st.StreamFrontiers[w] && !applied[id] {
			t.Fatalf("txn %d (stream %d epoch %d) within own frontier %d but not applied",
				id, w, ep, st.StreamFrontiers[w])
		}
	}
	// Healthy streams replay everything they acked — the torn stream must
	// not truncate them.
	for id, w := range owner {
		if w != 1 && !applied[id] {
			t.Fatalf("healthy-stream txn %d truncated by another stream's tear", id)
		}
	}
	// And the tear must actually have cost stream 1 something.
	lost := 0
	for id, w := range owner {
		if w == 1 && !applied[id] {
			lost++
		}
	}
	if lost == 0 {
		t.Fatal("tearing half of stream 1 dropped nothing; test is vacuous")
	}
}

// TestStreamSetWaitDeadline: one stalled stream blocks the frontier for the
// whole set; a deadline-bounded wait must return ErrWaitDeadline instead of
// hanging, and after the stall clears the epoch closes normally.
func TestStreamSetWaitDeadline(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	stall := &stallDevice{release: make(chan struct{})}
	devs := []Device{&memDevice{}, stall}
	s := NewStreamSet(devs, 0)

	ep, err := s.Append(0, setRecord(1))
	if err != nil {
		t.Fatal(err)
	}
	err = s.WaitDurableUntil(0, ep, time.Now().Add(40*time.Millisecond).UnixNano())
	if !errors.Is(err, ErrWaitDeadline) {
		t.Fatalf("err = %v, want ErrWaitDeadline", err)
	}
	// Indeterminate, not lost: once the gray stream recovers, the epoch
	// closes and the commit is durable.
	close(stall.release)
	if err := s.WaitDurable(0, ep); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamSetClose: Close is idempotent and appends after Close fail with
// ErrClosed.
func TestStreamSetClose(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	s := NewStreamSet([]Device{&memDevice{}}, 0)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(0, setRecord(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: err=%v, want ErrClosed", err)
	}
}

// TestStreamSetIdleStopsEpochChurn: with no appends and no waiters a
// windowed set must stop advancing epochs — an idle engine cannot be
// allowed to burn a marker sync per stream per window forever.
func TestStreamSetIdleStopsEpochChurn(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	mem := &memDevice{}
	s := NewStreamSet([]Device{mem}, time.Millisecond)
	ep, err := s.Append(0, setRecord(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WaitDurable(0, ep); err != nil {
		t.Fatal(err)
	}
	// Let the set go quiet, then watch the epoch across many windows.
	time.Sleep(10 * time.Millisecond)
	before := s.CurrentEpoch()
	time.Sleep(20 * time.Millisecond)
	if after := s.CurrentEpoch(); after != before {
		t.Fatalf("idle set advanced epoch %d -> %d", before, after)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestManifestRoundTrip exercises the stream-count manifest.
func TestManifestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteManifest(&buf, Manifest{Streams: 4, Mode: "value"}); err != nil {
		t.Fatal(err)
	}
	m, err := ReadManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Streams != 4 || m.Mode != "value" {
		t.Fatalf("roundtrip mismatch: %+v", m)
	}
	if err := WriteManifest(&buf, Manifest{Streams: 0}); err == nil {
		t.Fatal("zero-stream manifest accepted")
	}
}

package wal

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"next700/internal/testutil"
)

// setRecord builds a framed value record for stream-set tests. The Epoch
// field is zero — Append stamps it.
func setRecord(id uint64) []byte {
	return (&CommitRecord{TxnID: id, Entries: []Entry{
		{Kind: EntryUpdate, Table: 1, RID: id, Key: id, Data: []byte{byte(id)}},
	}}).Encode(nil)
}

// TestStreamSetDurability hammers a 3-stream set from one worker per stream
// and verifies every acknowledged commit is inside the merged frontier of
// the synced images — the multi-stream analogue of "acked means recovered".
func TestStreamSetDurability(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	const streams, perWorker = 3, 50
	devs := make([]Device, streams)
	mems := make([]*memDevice, streams)
	for i := range devs {
		mems[i] = &memDevice{}
		devs[i] = mems[i]
	}
	s := NewStreamSet(devs, 0)

	acked := make([][]uint64, streams)
	var wg sync.WaitGroup
	for w := 0; w < streams; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := uint64(w*1000 + i)
				ep, err := s.Append(w, setRecord(id))
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				if err := s.WaitDurable(w, ep); err != nil {
					t.Errorf("wait: %v", err)
					return
				}
				acked[w] = append(acked[w], id)
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	images := make([][]byte, streams)
	for i, m := range mems {
		images[i] = m.bytes()
	}
	got := make(map[uint64]bool)
	st, err := ReplayStreamBytes(images, func(_ int, cr *CommitRecord) error {
		got[cr.TxnID] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for w := range acked {
		want += len(acked[w])
		for _, id := range acked[w] {
			if !got[id] {
				t.Fatalf("acked txn %d lost (frontier %d)", id, st.Frontier)
			}
		}
	}
	if st.Records != want {
		t.Fatalf("replayed %d records, acked %d", st.Records, want)
	}
	if st.TruncatedRecords != 0 {
		t.Fatalf("clean close truncated %d records", st.TruncatedRecords)
	}
}

// TestStreamSetTornStreamTruncates cuts one stream's image at a byte offset
// and checks the merge truncates the global frontier rather than resurrect
// a partially present epoch from the intact streams.
func TestStreamSetTornStreamTruncates(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	const streams = 3
	devs := make([]Device, streams)
	mems := make([]*memDevice, streams)
	for i := range devs {
		mems[i] = &memDevice{}
		devs[i] = mems[i]
	}
	s := NewStreamSet(devs, 0)
	epochs := make(map[uint64]uint64) // txn -> tagged epoch
	for i := 0; i < 30; i++ {
		w := i % streams
		id := uint64(i)
		ep, err := s.Append(w, setRecord(id))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.WaitDurable(w, ep); err != nil {
			t.Fatal(err)
		}
		epochs[id] = ep
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	images := make([][]byte, streams)
	for i, m := range mems {
		images[i] = m.bytes()
	}
	// Tear stream 1 roughly in half, mid-frame.
	images[1] = images[1][:len(images[1])/2]

	applied := make(map[uint64]bool)
	st, err := ReplayStreamBytes(images, func(_ int, cr *CommitRecord) error {
		applied[cr.TxnID] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, ep := range epochs {
		if ep <= st.Frontier && !applied[id] {
			t.Fatalf("txn %d (epoch %d) within frontier %d but not applied", id, ep, st.Frontier)
		}
		if ep > st.Frontier && applied[id] {
			t.Fatalf("txn %d (epoch %d) beyond frontier %d was resurrected", id, ep, st.Frontier)
		}
	}
	// The tear must actually have cost something, or the case is vacuous.
	if st.Records == len(epochs) {
		t.Fatal("tearing half a stream dropped nothing; test is vacuous")
	}
}

// TestStreamSetFailurePoisons: a persistently failing device poisons the
// whole set — appends and waits on every stream report ErrLogFailed.
func TestStreamSetFailurePoisons(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	bad := &syncFailDevice{err: errors.New("disk gone")}
	devs := []Device{&memDevice{}, bad}
	s := NewStreamSet(devs, 0)
	defer s.Close()

	ep, err := s.Append(1, setRecord(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WaitDurable(1, ep); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("wait on failed stream: err=%v, want ErrLogFailed", err)
	}
	// The healthy stream is poisoned too: its epochs can no longer close.
	if _, err := s.Append(0, setRecord(2)); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("append after poison: err=%v, want ErrLogFailed", err)
	}
	if !s.Failed() {
		t.Fatal("Failed() false after device failure")
	}
}

// TestStreamSetWaitDeadline: one stalled stream blocks the frontier for the
// whole set; a deadline-bounded wait must return ErrWaitDeadline instead of
// hanging, and after the stall clears the epoch closes normally.
func TestStreamSetWaitDeadline(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	stall := &stallDevice{release: make(chan struct{})}
	devs := []Device{&memDevice{}, stall}
	s := NewStreamSet(devs, 0)

	ep, err := s.Append(0, setRecord(1))
	if err != nil {
		t.Fatal(err)
	}
	err = s.WaitDurableUntil(0, ep, time.Now().Add(40*time.Millisecond).UnixNano())
	if !errors.Is(err, ErrWaitDeadline) {
		t.Fatalf("err = %v, want ErrWaitDeadline", err)
	}
	// Indeterminate, not lost: once the gray stream recovers, the epoch
	// closes and the commit is durable.
	close(stall.release)
	if err := s.WaitDurable(0, ep); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamSetClose: Close is idempotent and appends after Close fail with
// ErrClosed.
func TestStreamSetClose(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	s := NewStreamSet([]Device{&memDevice{}}, 0)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(0, setRecord(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: err=%v, want ErrClosed", err)
	}
}

// TestStreamSetIdleStopsEpochChurn: with no appends and no waiters a
// windowed set must stop advancing epochs — an idle engine cannot be
// allowed to burn a marker sync per stream per window forever.
func TestStreamSetIdleStopsEpochChurn(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	mem := &memDevice{}
	s := NewStreamSet([]Device{mem}, time.Millisecond)
	ep, err := s.Append(0, setRecord(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WaitDurable(0, ep); err != nil {
		t.Fatal(err)
	}
	// Let the set go quiet, then watch the epoch across many windows.
	time.Sleep(10 * time.Millisecond)
	before := s.CurrentEpoch()
	time.Sleep(20 * time.Millisecond)
	if after := s.CurrentEpoch(); after != before {
		t.Fatalf("idle set advanced epoch %d -> %d", before, after)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestManifestRoundTrip exercises the stream-count manifest.
func TestManifestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteManifest(&buf, Manifest{Streams: 4, Mode: "value"}); err != nil {
		t.Fatal(err)
	}
	m, err := ReadManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Streams != 4 || m.Mode != "value" {
		t.Fatalf("roundtrip mismatch: %+v", m)
	}
	if err := WriteManifest(&buf, Manifest{Streams: 0}); err == nil {
		t.Fatal("zero-stream manifest accepted")
	}
}

package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"
)

// StreamSet is the parallel (SiloR-style) log: N independent streams, each
// with its own Device, append buffer, and flusher goroutine, coordinated by
// a global epoch counter instead of a total LSN order.
//
// Workers append encoded records to their own stream — there is no shared
// mutex on the append path — and each record is stamped with the epoch
// current at append time (patched in place under the stream's mutex, which
// makes per-stream epoch tags monotone). A coordinator advances the epoch on
// a ticker (or on flush pressure in immediate mode) and wakes every stream
// flusher; a flusher drains its buffer, appends an epoch marker certifying
// the epochs it has completed, and syncs. Epoch E is durable only once every
// stream has synced through E — the durable frontier is the minimum of the
// per-stream claims, minus one — and commit waits block on that frontier,
// not on a per-stream byte offset.
//
// The flusher wake order prioritizes streams whose WaitDurableUntil waiters
// are nearest their deadlines (the streams sync concurrently; the order is
// a scheduling hint that starts the most urgent syncs first).
//
// Recovery (ReplayStreams) merges the streams by epoch and truncates to the
// last epoch fully present across all of them, so a torn tail in one stream
// can never resurrect a partially durable epoch from another.
type StreamSet struct {
	// epoch is the global epoch counter; records are tagged with it at
	// append time. First field so the raw 64-bit atomics stay aligned on
	// 32-bit targets (next700-lint atomicalign).
	epoch uint64
	// durable is the durable epoch frontier: min over streams of the synced
	// claim, minus one. Stored atomically so the wait fast path and the
	// engine's health probes are lock-free.
	durable uint64

	window time.Duration

	// failed mirrors err != nil and closing mirrors closed, both without the
	// mutex, so the append hot path gates on log health with atomic loads.
	failed  atomic.Bool
	closing atomic.Bool

	mu      sync.Mutex
	cond    *sync.Cond
	err     error
	closed  bool
	waiters int // parked waitDurable callers; the coordinator never skips an advance while any exist

	streams []*stream
	order   []int // coordinator scratch: deadline-priority wake order

	wake chan struct{}
	done chan struct{}
}

// stream is one log shard: a device, an append buffer guarded by its own
// mutex, and a dedicated flusher goroutine.
type stream struct {
	// minDeadline is the earliest deadline among current WaitDurableUntil
	// waiters appended to this stream (0 = none), maintained with raw
	// atomics; the coordinator reads it to order flusher wakeups. First
	// field so the raw 64-bit atomic stays aligned on 32-bit targets.
	minDeadline int64

	set *StreamSet
	dev Device

	mu    sync.Mutex
	buf   []byte
	spare []byte // recycled batch buffer; buf and spare ping-pong

	// claim is the epoch this stream has synced through: every record with
	// Epoch < claim is on the device. Guarded by the set mutex (it feeds the
	// frontier aggregation, not the append path).
	claim uint64

	// lastMark is the value of the last durable epoch marker written; only
	// the stream's flusher touches it.
	lastMark uint64

	// next and rotateTarget stage a pending device rotation, guarded by the
	// set mutex. The flusher installs next as the stream's device once its
	// claim reaches rotateTarget — i.e. once the rotation epoch's marker is
	// synced on the old device, so the sealed segment provably contains
	// every record tagged at or below the rotation boundary. Only the
	// flusher goroutine touches dev after construction, which is what makes
	// the swap race-free without a device lock.
	next         Device
	rotateTarget uint64

	flush chan struct{}
	done  chan struct{}
}

// NewStreamSet starts a parallel log over the given per-stream devices.
// window is the epoch advance period — the group-commit batching window;
// zero means every WaitDurable kicks an immediate epoch advance and flush.
func NewStreamSet(devs []Device, window time.Duration) *StreamSet {
	s := &StreamSet{
		epoch:  1,
		window: window,
		order:  make([]int, len(devs)),
		wake:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.streams = make([]*stream, len(devs))
	for i, dev := range devs {
		st := &stream{
			set:   s,
			dev:   dev,
			flush: make(chan struct{}, 1),
			done:  make(chan struct{}),
		}
		s.streams[i] = st
		go st.flusher()
	}
	go s.coordinator()
	return s
}

// NumStreams returns the stream count.
func (s *StreamSet) NumStreams() int { return len(s.streams) }

// RaiseEpoch raises the epoch counter so every future append tags strictly
// above base. Restart recovery calls it — after replay, before the first
// post-recovery append — with the highest epoch present anywhere in the
// surviving log, keeping epoch tags monotone across the whole manifest
// history: without it a rebooted set would restart at epoch 1 and collide
// with epochs already sealed in earlier segments. A base at or below the
// current epoch is a no-op.
func (s *StreamSet) RaiseEpoch(base uint64) {
	for {
		cur := atomic.LoadUint64(&s.epoch)
		if cur > base {
			return
		}
		if atomic.CompareAndSwapUint64(&s.epoch, cur, base+1) {
			return
		}
	}
}

// CurrentEpoch returns the epoch new appends are tagged with.
func (s *StreamSet) CurrentEpoch() uint64 { return atomic.LoadUint64(&s.epoch) }

// DurableEpoch returns the durable frontier: the highest epoch every stream
// has synced in full.
func (s *StreamSet) DurableEpoch() uint64 { return atomic.LoadUint64(&s.durable) }

// Failed reports whether the set has hit a sticky device failure on any
// stream. One atomic load; commit hot paths gate on it.
func (s *StreamSet) Failed() bool { return s.failed.Load() }

// Err returns the sticky set error (wrapping ErrLogFailed), or nil.
func (s *StreamSet) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Append stages an encoded record (produced by CommitRecord.Encode) on the
// given stream and returns the epoch the caller must wait on. The record's
// Epoch field is patched in place — rec is mutated — and the CRC re-sealed,
// under the stream's own mutex only: with per-worker stream affinity the
// append path shares nothing across workers.
//
//next700:hotpath
func (s *StreamSet) Append(streamID int, rec []byte) (uint64, error) {
	if s.failed.Load() {
		return 0, s.Err()
	}
	if s.closing.Load() {
		return 0, ErrClosed
	}
	st := s.streams[streamID]
	st.mu.Lock()
	epoch := atomic.LoadUint64(&s.epoch)
	binary.LittleEndian.PutUint64(rec[epochOffset:], epoch)
	binary.LittleEndian.PutUint32(rec[4:], crc32.ChecksumIEEE(rec[headerSize:]))
	st.buf = append(st.buf, rec...)
	st.mu.Unlock()
	return epoch, nil
}

// WaitDurable blocks until epoch is durable on every stream. streamID names
// the stream the caller appended to, for deadline-priority accounting.
func (s *StreamSet) WaitDurable(streamID int, epoch uint64) error {
	return s.waitDurable(streamID, epoch, 0)
}

// WaitDurableUntil is WaitDurable bounded by an absolute deadline in Unix
// nanoseconds (0 means wait forever). The deadline is registered with the
// caller's stream so the coordinator can start the most urgent syncs first.
func (s *StreamSet) WaitDurableUntil(streamID int, epoch uint64, deadline int64) error {
	return s.waitDurable(streamID, epoch, deadline)
}

//next700:allowalloc(blocked path only: the deadline timer and clock reads happen while parked, never on a commit that finds its epoch durable)
func (s *StreamSet) waitDurable(streamID int, epoch uint64, deadline int64) error {
	if atomic.LoadUint64(&s.durable) >= epoch {
		return nil
	}
	st := s.streams[streamID]
	var timer *time.Timer
	s.mu.Lock()
	defer s.mu.Unlock()
	s.waiters++
	defer func() { s.waiters-- }()
	kicked := false
	for atomic.LoadUint64(&s.durable) < epoch && s.err == nil && !s.closed {
		if deadline != 0 {
			st.noteDeadline(deadline)
			remaining := deadline - time.Now().UnixNano()
			if remaining <= 0 {
				if timer != nil {
					timer.Stop()
				}
				return ErrWaitDeadline
			}
			if timer == nil {
				timer = time.AfterFunc(time.Duration(remaining), func() {
					s.mu.Lock()
					s.cond.Broadcast()
					s.mu.Unlock()
				})
			}
		}
		if s.window == 0 && !kicked {
			// One kick per wait: the caller's record is already staged, so
			// the single advance the kick triggers bumps the epoch past its
			// tag and the resulting flush round certifies it. Re-kicking on
			// every broadcast wake would feed advances back into broadcasts —
			// a self-sustaining storm of empty epochs.
			s.kick()
			kicked = true
		}
		// Deadline-aware by construction when deadline != 0: the AfterFunc
		// broadcast above re-wakes this Wait and the loop head re-checks the
		// deadline. The deadline==0 form is the caller's explicit opt-out
		// (WaitDurable), kept for loaders and tests.
		s.cond.Wait() //next700:allowwait(timer broadcast re-wakes; deadline re-checked at loop head; deadline==0 is the caller's opt-out)
	}
	if timer != nil {
		timer.Stop()
	}
	if atomic.LoadUint64(&s.durable) >= epoch {
		// The epoch closed on every stream; a later failure does not retract
		// its durability.
		return nil
	}
	if s.err != nil {
		return s.err
	}
	return errClosedBeforeDurable
}

// noteDeadline registers a waiter deadline with the stream (keep-the-
// earliest). Flushers reset it at each cycle; parked waiters re-register at
// every loop iteration, so staleness is bounded by one epoch.
func (st *stream) noteDeadline(dl int64) {
	for {
		cur := atomic.LoadInt64(&st.minDeadline)
		if cur != 0 && cur <= dl {
			return
		}
		if atomic.CompareAndSwapInt64(&st.minDeadline, cur, dl) {
			return
		}
	}
}

// kick nudges the coordinator without blocking.
func (s *StreamSet) kick() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// coordinator advances the epoch on window ticks (or wait-pressure kicks in
// immediate mode) and wakes the stream flushers in deadline-priority order.
func (s *StreamSet) coordinator() {
	defer close(s.done)
	var ticker *time.Ticker
	var tick <-chan time.Time
	if s.window > 0 {
		ticker = time.NewTicker(s.window)
		tick = ticker.C
		defer ticker.Stop()
	}
	for {
		select {
		case _, ok := <-s.wake:
			if !ok {
				// Shutdown: one final advance closes the last epoch, then the
				// flushers drain and exit.
				s.advance()
				for _, st := range s.streams {
					close(st.flush)
				}
				for _, st := range s.streams {
					<-st.done //next700:allowwait(shutdown join: closing flush guarantees the stream flusher drains and exits)
				}
				return
			}
		case <-tick:
		}
		s.advance()
	}
}

// advance closes the current epoch and wakes every stream flusher, most
// urgent deadline first. A fully idle set (no staged bytes, no waiters,
// every claim caught up) skips the advance: an idle engine must not churn
// epochs and marker syncs forever.
func (s *StreamSet) advance() {
	if s.idle() {
		return
	}
	atomic.AddUint64(&s.epoch, 1)
	order := s.order
	for i := range order {
		order[i] = i
	}
	// Insertion sort by earliest registered waiter deadline (0 = no waiters
	// = last). Stream counts are small; no allocation, no sort.Slice.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && s.deadlineKey(order[j]) < s.deadlineKey(order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, idx := range order {
		st := s.streams[idx]
		select {
		case st.flush <- struct{}{}:
		default:
		}
	}
}

// idle reports whether an advance would be a pure no-op: nothing staged,
// nobody waiting, and every stream's claim already at the current epoch with
// the frontier right behind it. The waiter check is load-bearing: a record
// can be tagged with the current epoch and flushed before the epoch closes —
// on-device but uncertified — and only a further advance certifies it, so
// the set is never idle while such a commit has a parked waiter.
func (s *StreamSet) idle() bool {
	s.mu.Lock()
	if s.waiters > 0 || s.err != nil {
		s.mu.Unlock()
		return false
	}
	epoch := atomic.LoadUint64(&s.epoch)
	if atomic.LoadUint64(&s.durable) != epoch-1 {
		s.mu.Unlock()
		return false
	}
	for _, st := range s.streams {
		if st.claim != epoch {
			s.mu.Unlock()
			return false
		}
	}
	s.mu.Unlock()
	for _, st := range s.streams {
		st.mu.Lock()
		staged := len(st.buf)
		st.mu.Unlock()
		if staged > 0 {
			return false
		}
	}
	return true
}

// deadlineKey orders streams for flusher wakeup: earliest waiter deadline
// first, streams with no registered waiters last.
func (s *StreamSet) deadlineKey(idx int) int64 {
	dl := atomic.LoadInt64(&s.streams[idx].minDeadline)
	if dl == 0 {
		return int64(^uint64(0) >> 1) // no waiters: +inf
	}
	return dl
}

// flusher drains the stream on coordinator signals; closing the flush
// channel triggers one final drain and exit.
func (st *stream) flusher() {
	defer close(st.done)
	for {
		_, ok := <-st.flush //next700:allowwait(flusher parks for epoch signals; shutdown closes the channel, guaranteeing a final drain and exit)
		st.flushOnce()
		if !ok {
			return
		}
	}
}

// flushOnce writes the staged batch plus an epoch marker and syncs. On
// success it raises the stream's claim and recomputes the global frontier;
// on persistent failure it poisons the whole set.
func (st *stream) flushOnce() {
	s := st.set
	atomic.StoreInt64(&st.minDeadline, 0)
	if s.failed.Load() {
		// The set is dead. Writing more would leave gaps behind the failed
		// batch, so staged bytes are dropped — loudly: waiters observe the
		// sticky error.
		st.mu.Lock()
		st.buf = st.buf[:0]
		st.mu.Unlock()
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
		return
	}
	st.mu.Lock()
	// target is read under the stream mutex after the batch snapshot: every
	// record appended later is tagged >= target, so "synced through target"
	// is a safe claim once this batch (plus marker) hits the device.
	target := atomic.LoadUint64(&s.epoch)
	if len(st.buf) == 0 && target == st.lastMark {
		st.mu.Unlock()
		// A caught-up stream may still owe a pending rotation: lastMark ==
		// target means the claim already covers the rotation epoch, so the
		// swap can install without writing anything.
		s.mu.Lock()
		if st.next != nil && st.claim >= st.rotateTarget {
			st.dev = st.next
			st.next = nil
			s.cond.Broadcast()
		}
		s.mu.Unlock()
		return
	}
	batch := st.buf
	st.buf = st.spare[:0]
	st.spare = nil
	st.mu.Unlock()

	if target > st.lastMark {
		batch = appendMarker(batch, target)
	}
	_, err := st.dev.Write(batch)
	if err == nil {
		err = st.dev.Sync()
		// A transient sync failure is retried in place; only persistent
		// failure poisons the set.
		for retries := 0; err != nil && isTransient(err) && retries < maxSyncRetries; retries++ {
			err = st.dev.Sync()
		}
	}
	if err == nil && target > st.lastMark {
		st.lastMark = target
	}
	if cap(batch) <= maxRetainedBatchCap {
		st.mu.Lock()
		st.spare = batch[:0]
		st.mu.Unlock()
	}

	s.mu.Lock()
	if err != nil {
		if s.err == nil {
			//next700:allowalloc(device-failure path: the sticky error is built once, after which the set is dead)
			s.err = fmt.Errorf("%w: %w", ErrLogFailed, err)
			s.failed.Store(true)
		}
	} else {
		st.claim = target
		min := st.claim
		for _, other := range s.streams {
			if other.claim < min {
				min = other.claim
			}
		}
		if min > 0 && min-1 > atomic.LoadUint64(&s.durable) {
			atomic.StoreUint64(&s.durable, min-1)
		}
		if st.next != nil && st.claim >= st.rotateTarget {
			// The rotation epoch's marker is synced on the old device: every
			// record tagged <= boundary is sealed there, so writes can move
			// to the fresh device.
			st.dev = st.next
			st.next = nil
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Rotate seals the current log segments and swaps every stream onto a fresh
// device. It returns the boundary epoch: every record appended before Rotate
// returned is tagged <= boundary and is durable on the old devices when
// Rotate returns; every record appended after Rotate was entered that tags
// past the boundary lands on the new devices. Callers serialize Rotate
// against appends (the engine's checkpoint fence), which is what makes the
// boundary a clean cut: with no append in flight, the epoch bump inside
// Rotate guarantees pre-rotation commits tag <= boundary and post-rotation
// commits tag > boundary.
//
// The swap itself is performed by each stream's flusher goroutine — the only
// goroutine that ever writes to the device — after it has synced the
// rotation epoch's marker onto the old device, so the sealed segment
// provably contains everything at or below the boundary and per-stream
// epoch-tag monotonicity holds across the segment boundary.
func (s *StreamSet) Rotate(newDevs []Device) (uint64, error) {
	if len(newDevs) != len(s.streams) {
		return 0, fmt.Errorf("wal: rotate needs %d devices, have %d: %w", len(s.streams), len(newDevs), ErrCorrupt)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	if s.err != nil {
		err := s.err
		s.mu.Unlock()
		return 0, err
	}
	boundary := atomic.LoadUint64(&s.epoch)
	atomic.AddUint64(&s.epoch, 1)
	for i, st := range s.streams {
		st.next = newDevs[i]
		st.rotateTarget = boundary + 1
	}
	s.mu.Unlock()
	// Wake every flusher directly: rotation must not be skipped by the
	// coordinator's idle check, and it must not wait for the next window
	// tick either.
	for _, st := range s.streams {
		select {
		case st.flush <- struct{}{}:
		default:
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.err != nil {
			return 0, s.err
		}
		if s.closed {
			return 0, ErrClosed
		}
		pending := false
		for _, st := range s.streams {
			if st.next != nil {
				pending = true
				break
			}
		}
		if !pending {
			return boundary, nil
		}
		// Re-signal before parking: a flusher that drained its signal while
		// mid-flush with a pre-bump target syncs without installing the swap,
		// and nothing else would wake it until the next advance.
		for _, st := range s.streams {
			if st.next != nil {
				select {
				case st.flush <- struct{}{}:
				default:
				}
			}
		}
		s.cond.Wait() //next700:allowwait(flusher broadcast after every flush cycle re-wakes; sticky failure and close both break the loop)
	}
}

// Close advances one final epoch, drains every stream, and stops the
// background goroutines. When a device has failed, records staged after the
// failure cannot be made durable; Close reports the sticky error rather
// than dropping them silently.
func (s *StreamSet) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.closing.Store(true)
	close(s.wake)
	<-s.done //next700:allowwait(shutdown join: closing wake guarantees the coordinator drains the streams and exits)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cond.Broadcast()
	return s.err
}

package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"
)

// ErrStreamFailed is the per-stream sticky failure class used by scoped
// stream sets: exactly one log stream is dead, the rest of the set keeps
// certifying epochs. Errors of this class also wrap ErrLogFailed (a stream
// failure is a log failure), and carry the stream index via StreamError.
var ErrStreamFailed = errors.New("wal: log stream failed")

// ErrStreamQuarantined marks a stream failed by an external decision — a
// sustained stall escalated by the engine's gray-failure monitor, or an
// operator action — rather than by a device error surfacing in the flusher.
var ErrStreamQuarantined = errors.New("wal: log stream quarantined")

// StreamError is the typed sticky error for one failed stream in a scoped
// StreamSet. It satisfies errors.Is for both ErrStreamFailed and
// ErrLogFailed, and unwraps to the device cause.
type StreamError struct {
	// Stream is the failed stream's index (the partition, under
	// per-partition affinity).
	Stream int
	// Cause is the underlying device error (or stall-escalation sentinel).
	Cause error
}

// Error formats the stream index and cause.
func (e *StreamError) Error() string {
	return fmt.Sprintf("wal: log stream %d failed: %v", e.Stream, e.Cause)
}

// Unwrap exposes the class sentinels and the device cause to errors.Is/As.
func (e *StreamError) Unwrap() []error {
	return []error{ErrStreamFailed, ErrLogFailed, e.Cause}
}

// StreamSet is the parallel (SiloR-style) log: N independent streams, each
// with its own Device, append buffer, and flusher goroutine, coordinated by
// a global epoch counter instead of a total LSN order.
//
// Workers append encoded records to their own stream — there is no shared
// mutex on the append path — and each record is stamped with the epoch
// current at append time (patched in place under the stream's mutex, which
// makes per-stream epoch tags monotone). A coordinator advances the epoch on
// a ticker (or on flush pressure in immediate mode) and wakes every stream
// flusher; a flusher drains its buffer, appends an epoch marker certifying
// the epochs it has completed, and syncs. Epoch E is durable only once every
// stream has synced through E — the durable frontier is the minimum of the
// per-stream claims, minus one — and commit waits block on that frontier,
// not on a per-stream byte offset.
//
// The flusher wake order prioritizes streams whose WaitDurableUntil waiters
// are nearest their deadlines (the streams sync concurrently; the order is
// a scheduling hint that starts the most urgent syncs first).
//
// Recovery (ReplayStreams) merges the streams by epoch and truncates to the
// last epoch fully present across all of them, so a torn tail in one stream
// can never resurrect a partially durable epoch from another.
type StreamSet struct {
	// epoch is the global epoch counter; records are tagged with it at
	// append time. First field so the raw 64-bit atomics stay aligned on
	// 32-bit targets (next700-lint atomicalign).
	epoch uint64
	// durable is the durable epoch frontier: min over streams of the synced
	// claim, minus one. Stored atomically so the wait fast path and the
	// engine's health probes are lock-free.
	durable uint64

	window time.Duration

	// scoped selects per-stream failure semantics (NewStreamSetScoped): a
	// sticky device failure poisons only its own stream, the frontier
	// freezes until the failed stream is quarantined, and Quarantine
	// re-certifies the frontier over the surviving streams. Immutable after
	// construction, so hot paths read it without synchronization.
	scoped bool

	// failed mirrors err != nil and closing mirrors closed, both without the
	// mutex, so the append hot path gates on log health with atomic loads.
	failed  atomic.Bool
	closing atomic.Bool

	mu      sync.Mutex
	cond    *sync.Cond
	err     error
	closed  bool
	waiters int // parked waitDurable callers; the coordinator never skips an advance while any exist

	streams []*stream
	order   []int // coordinator scratch: deadline-priority wake order

	// failureC delivers failed stream indexes to the engine's quarantine
	// guard in scoped mode (buffered one slot per stream; a stream fails at
	// most once per incarnation). Closed by Close after the flushers drain.
	failureC chan int

	wake chan struct{}
	done chan struct{}
}

// stream is one log shard: a device, an append buffer guarded by its own
// mutex, and a dedicated flusher goroutine.
type stream struct {
	// minDeadline is the earliest deadline among current WaitDurableUntil
	// waiters appended to this stream (0 = none), maintained with raw
	// atomics; the coordinator reads it to order flusher wakeups. First
	// field so the raw 64-bit atomic stays aligned on 32-bit targets.
	minDeadline int64

	set *StreamSet
	dev Device
	id  int

	mu    sync.Mutex
	buf   []byte
	spare []byte // recycled batch buffer; buf and spare ping-pong

	// claim is the epoch this stream has synced through: every record with
	// Epoch < claim is on the device. Mutated under the set mutex (it feeds
	// the frontier aggregation); stored atomically so scoped-mode wait fast
	// paths and the engine's stall monitor can read it lock-free.
	claim atomic.Uint64

	// sfailed/serr are the scoped-mode per-stream sticky failure: serr (a
	// *StreamError) is written before sfailed is set, so any goroutine that
	// observes sfailed true may read serr without the set mutex.
	sfailed atomic.Bool
	serr    error

	// quarantined excludes this stream from the frontier aggregation after
	// the engine has decided to degrade around its failure. Guarded by the
	// set mutex.
	quarantined bool

	// readmit stages a replacement device for a failed stream; the flusher
	// installs it (and resets the stream's failure state) at its next cycle.
	// Guarded by the set mutex.
	readmit Device

	// lastMark is the value of the last durable epoch marker written; only
	// the stream's flusher touches it.
	lastMark uint64

	// next and rotateTarget stage a pending device rotation, guarded by the
	// set mutex. The flusher installs next as the stream's device once its
	// claim reaches rotateTarget — i.e. once the rotation epoch's marker is
	// synced on the old device, so the sealed segment provably contains
	// every record tagged at or below the rotation boundary. Only the
	// flusher goroutine touches dev after construction, which is what makes
	// the swap race-free without a device lock.
	next         Device
	rotateTarget uint64

	flush chan struct{}
	done  chan struct{}
}

// NewStreamSet starts a parallel log over the given per-stream devices.
// window is the epoch advance period — the group-commit batching window;
// zero means every WaitDurable kicks an immediate epoch advance and flush.
// Failure semantics are whole-set (legacy thread affinity): one sticky
// device failure poisons every stream. See NewStreamSetScoped for the
// per-partition alternative.
func NewStreamSet(devs []Device, window time.Duration) *StreamSet {
	return newStreamSet(devs, window, false)
}

// NewStreamSetScoped starts a parallel log with per-stream failure scope,
// for per-partition stream affinity: a sticky device failure marks only its
// own stream failed (appends and waits on that stream return a *StreamError
// carrying the stream index), the durable frontier freezes at the failed
// stream's last certified claim, and Quarantine re-certifies the frontier
// over the surviving streams so healthy partitions keep committing durably.
// Failed stream indexes are delivered on FailureC for the engine's
// quarantine guard.
func NewStreamSetScoped(devs []Device, window time.Duration) *StreamSet {
	return newStreamSet(devs, window, true)
}

func newStreamSet(devs []Device, window time.Duration, scoped bool) *StreamSet {
	s := &StreamSet{
		epoch:  1,
		window: window,
		scoped: scoped,
		order:  make([]int, len(devs)),
		wake:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	if scoped {
		s.failureC = make(chan int, len(devs))
	}
	s.cond = sync.NewCond(&s.mu)
	s.streams = make([]*stream, len(devs))
	for i, dev := range devs {
		st := &stream{
			set:   s,
			dev:   dev,
			id:    i,
			flush: make(chan struct{}, 1),
			done:  make(chan struct{}),
		}
		s.streams[i] = st
		go st.flusher()
	}
	go s.coordinator()
	return s
}

// Scoped reports whether the set runs with per-stream failure semantics.
func (s *StreamSet) Scoped() bool { return s.scoped }

// FailureC returns the channel on which a scoped set delivers the index of
// each stream that hits a sticky failure (nil for legacy sets). The channel
// is closed by Close.
func (s *StreamSet) FailureC() <-chan int { return s.failureC }

// NumStreams returns the stream count.
func (s *StreamSet) NumStreams() int { return len(s.streams) }

// RaiseEpoch raises the epoch counter so every future append tags strictly
// above base. Restart recovery calls it — after replay, before the first
// post-recovery append — with the highest epoch present anywhere in the
// surviving log, keeping epoch tags monotone across the whole manifest
// history: without it a rebooted set would restart at epoch 1 and collide
// with epochs already sealed in earlier segments. A base at or below the
// current epoch is a no-op.
func (s *StreamSet) RaiseEpoch(base uint64) {
	for {
		cur := atomic.LoadUint64(&s.epoch)
		if cur > base {
			return
		}
		if atomic.CompareAndSwapUint64(&s.epoch, cur, base+1) {
			return
		}
	}
}

// CurrentEpoch returns the epoch new appends are tagged with.
func (s *StreamSet) CurrentEpoch() uint64 { return atomic.LoadUint64(&s.epoch) }

// DurableEpoch returns the durable frontier: the highest epoch every stream
// has synced in full.
func (s *StreamSet) DurableEpoch() uint64 { return atomic.LoadUint64(&s.durable) }

// Failed reports whether the set has hit a sticky device failure on any
// stream. One atomic load; commit hot paths gate on it.
func (s *StreamSet) Failed() bool { return s.failed.Load() }

// Err returns the sticky set error (wrapping ErrLogFailed), or nil.
func (s *StreamSet) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Append stages an encoded record (produced by CommitRecord.Encode) on the
// given stream and returns the epoch the caller must wait on. The record's
// Epoch field is patched in place — rec is mutated — and the CRC re-sealed,
// under the stream's own mutex only: with per-worker stream affinity the
// append path shares nothing across workers.
//
//next700:hotpath
func (s *StreamSet) Append(streamID int, rec []byte) (uint64, error) {
	if s.failed.Load() {
		return 0, s.Err()
	}
	if s.closing.Load() {
		return 0, ErrClosed
	}
	st := s.streams[streamID]
	if s.scoped && st.sfailed.Load() {
		// serr is written before sfailed is set; observing sfailed true makes
		// the read safe without the set mutex.
		return 0, st.serr
	}
	st.mu.Lock()
	epoch := atomic.LoadUint64(&s.epoch)
	binary.LittleEndian.PutUint64(rec[epochOffset:], epoch)
	binary.LittleEndian.PutUint32(rec[4:], crc32.ChecksumIEEE(rec[headerSize:]))
	st.buf = append(st.buf, rec...)
	st.mu.Unlock()
	return epoch, nil
}

// AppendMulti stages one record on several streams — a multi-partition
// commit under per-partition affinity replicates its full record into every
// touched partition's stream, which is what keeps single-partition recovery
// self-contained. streamIDs must be sorted ascending and duplicate-free
// (the engine's touched-partition scratch is built that way); all target
// stream mutexes are taken in that order and one epoch is drawn for every
// copy, so per-stream epoch-tag monotonicity holds and no copy can tag
// ahead of another.
//
//next700:hotpath
func (s *StreamSet) AppendMulti(streamIDs []int, rec []byte) (uint64, error) {
	if len(streamIDs) == 1 {
		return s.Append(streamIDs[0], rec)
	}
	if s.failed.Load() {
		return 0, s.Err()
	}
	if s.closing.Load() {
		return 0, ErrClosed
	}
	if s.scoped {
		for _, id := range streamIDs {
			if st := s.streams[id]; st.sfailed.Load() {
				return 0, st.serr
			}
		}
	}
	for _, id := range streamIDs {
		s.streams[id].mu.Lock() //next700:allowwait(stream staging mutexes are held only for memcpy-scale critical sections, taken in ascending id order)
	}
	epoch := atomic.LoadUint64(&s.epoch)
	binary.LittleEndian.PutUint64(rec[epochOffset:], epoch)
	binary.LittleEndian.PutUint32(rec[4:], crc32.ChecksumIEEE(rec[headerSize:]))
	for _, id := range streamIDs {
		st := s.streams[id]
		st.buf = append(st.buf, rec...)
		st.mu.Unlock()
	}
	return epoch, nil
}

// WaitDurable blocks until epoch is durable on every stream. streamID names
// the stream the caller appended to, for deadline-priority accounting.
func (s *StreamSet) WaitDurable(streamID int, epoch uint64) error {
	return s.waitDurable(streamID, epoch, 0)
}

// WaitDurableUntil is WaitDurable bounded by an absolute deadline in Unix
// nanoseconds (0 means wait forever). The deadline is registered with the
// caller's stream so the coordinator can start the most urgent syncs first.
func (s *StreamSet) WaitDurableUntil(streamID int, epoch uint64, deadline int64) error {
	return s.waitDurable(streamID, epoch, deadline)
}

// WaitDurableMulti blocks until epoch is durable for a multi-stream append:
// the frontier must cover epoch and none of the touched streams may have
// died before certifying it. streamIDs must be the AppendMulti target list.
func (s *StreamSet) WaitDurableMulti(streamIDs []int, epoch uint64, deadline int64) error {
	return s.waitDurableIDs(streamIDs, epoch, deadline)
}

// deadFor reports whether a record tagged epoch on this stream can never
// become durable: the stream hit a sticky failure before its claim covered
// the epoch. Claims freeze at failure (the flusher stops raising them), so
// the comparison is stable once sfailed is observed. Records the stream
// certified before dying (epoch < claim) stay durable — durability is never
// retracted.
func (st *stream) deadFor(epoch uint64) bool {
	return st.sfailed.Load() && epoch >= st.claim.Load()
}

//next700:allowalloc(blocked path only: the deadline timer and clock reads happen while parked, never on a commit that finds its epoch durable)
func (s *StreamSet) waitDurable(streamID int, epoch uint64, deadline int64) error {
	st := s.streams[streamID]
	if atomic.LoadUint64(&s.durable) >= epoch && !(s.scoped && st.deadFor(epoch)) {
		return nil
	}
	var timer *time.Timer
	s.mu.Lock()
	defer s.mu.Unlock()
	s.waiters++
	defer func() { s.waiters-- }()
	kicked := false
	for atomic.LoadUint64(&s.durable) < epoch && s.err == nil && !s.closed &&
		!(s.scoped && st.deadFor(epoch)) {
		if deadline != 0 {
			st.noteDeadline(deadline)
			remaining := deadline - time.Now().UnixNano()
			if remaining <= 0 {
				if timer != nil {
					timer.Stop()
				}
				return ErrWaitDeadline
			}
			if timer == nil {
				//next700:locked(StreamSet.mu: deadline timer armed at most once per parked waiter; commits that find their epoch durable never reach this)
				timer = time.AfterFunc(time.Duration(remaining), func() {
					s.mu.Lock()
					s.cond.Broadcast()
					s.mu.Unlock()
				})
			}
		}
		if s.window == 0 && !kicked {
			// One kick per wait: the caller's record is already staged, so
			// the single advance the kick triggers bumps the epoch past its
			// tag and the resulting flush round certifies it. Re-kicking on
			// every broadcast wake would feed advances back into broadcasts —
			// a self-sustaining storm of empty epochs.
			s.kick()
			kicked = true
		}
		// Deadline-aware by construction when deadline != 0: the AfterFunc
		// broadcast above re-wakes this Wait and the loop head re-checks the
		// deadline. The deadline==0 form is the caller's explicit opt-out
		// (WaitDurable), kept for loaders and tests.
		s.cond.Wait() //next700:allowwait(timer broadcast re-wakes; deadline re-checked at loop head; deadline==0 is the caller's opt-out)
	}
	if timer != nil {
		timer.Stop()
	}
	if s.scoped && st.deadFor(epoch) {
		// The caller's own stream died before certifying this epoch: even if
		// the re-certified frontier has moved past it, the record is on the
		// dead device and is not durable.
		return st.serr
	}
	if atomic.LoadUint64(&s.durable) >= epoch {
		// The epoch closed on every stream; a later failure does not retract
		// its durability.
		return nil
	}
	if s.err != nil {
		return s.err
	}
	return errClosedBeforeDurable
}

// waitDurableIDs is waitDurable over a touched-stream list: the epoch must
// close on the frontier and every listed stream must have certified it.
//
//next700:allowalloc(blocked path only: the deadline timer and clock reads happen while parked, never on a commit that finds its epoch durable)
func (s *StreamSet) waitDurableIDs(streamIDs []int, epoch uint64, deadline int64) error {
	deadStream := func() *stream {
		if !s.scoped {
			return nil
		}
		for _, id := range streamIDs {
			if st := s.streams[id]; st.deadFor(epoch) {
				return st
			}
		}
		return nil
	}
	if atomic.LoadUint64(&s.durable) >= epoch && deadStream() == nil {
		return nil
	}
	var timer *time.Timer
	s.mu.Lock()
	defer s.mu.Unlock()
	s.waiters++
	defer func() { s.waiters-- }()
	kicked := false
	for atomic.LoadUint64(&s.durable) < epoch && s.err == nil && !s.closed && deadStream() == nil {
		if deadline != 0 {
			for _, id := range streamIDs {
				s.streams[id].noteDeadline(deadline)
			}
			remaining := deadline - time.Now().UnixNano()
			if remaining <= 0 {
				if timer != nil {
					timer.Stop()
				}
				return ErrWaitDeadline
			}
			if timer == nil {
				//next700:locked(StreamSet.mu: deadline timer armed at most once per parked waiter; commits that find their epoch durable never reach this)
				timer = time.AfterFunc(time.Duration(remaining), func() {
					s.mu.Lock()
					s.cond.Broadcast()
					s.mu.Unlock()
				})
			}
		}
		if s.window == 0 && !kicked {
			s.kick()
			kicked = true
		}
		s.cond.Wait() //next700:allowwait(timer broadcast re-wakes; deadline re-checked at loop head; deadline==0 is the caller's opt-out)
	}
	if timer != nil {
		timer.Stop()
	}
	if st := deadStream(); st != nil {
		return st.serr
	}
	if atomic.LoadUint64(&s.durable) >= epoch {
		return nil
	}
	if s.err != nil {
		return s.err
	}
	return errClosedBeforeDurable
}

// noteDeadline registers a waiter deadline with the stream (keep-the-
// earliest). Flushers reset it at each cycle; parked waiters re-register at
// every loop iteration, so staleness is bounded by one epoch.
func (st *stream) noteDeadline(dl int64) {
	for {
		cur := atomic.LoadInt64(&st.minDeadline)
		if cur != 0 && cur <= dl {
			return
		}
		if atomic.CompareAndSwapInt64(&st.minDeadline, cur, dl) {
			return
		}
	}
}

// kick nudges the coordinator without blocking.
func (s *StreamSet) kick() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// coordinator advances the epoch on window ticks (or wait-pressure kicks in
// immediate mode) and wakes the stream flushers in deadline-priority order.
func (s *StreamSet) coordinator() {
	defer close(s.done)
	var ticker *time.Ticker
	var tick <-chan time.Time
	if s.window > 0 {
		ticker = time.NewTicker(s.window)
		tick = ticker.C
		defer ticker.Stop()
	}
	for {
		select {
		case _, ok := <-s.wake:
			if !ok {
				// Shutdown: one final advance closes the last epoch, then the
				// flushers drain and exit.
				s.advance()
				for _, st := range s.streams {
					close(st.flush)
				}
				for _, st := range s.streams {
					<-st.done
				}
				return
			}
		case <-tick:
		}
		s.advance()
	}
}

// advance closes the current epoch and wakes every stream flusher, most
// urgent deadline first. A fully idle set (no staged bytes, no waiters,
// every claim caught up) skips the advance: an idle engine must not churn
// epochs and marker syncs forever.
func (s *StreamSet) advance() {
	if s.idle() {
		return
	}
	atomic.AddUint64(&s.epoch, 1)
	order := s.order
	for i := range order {
		order[i] = i
	}
	// Insertion sort by earliest registered waiter deadline (0 = no waiters
	// = last). Stream counts are small; no allocation, no sort.Slice.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && s.deadlineKey(order[j]) < s.deadlineKey(order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, idx := range order {
		st := s.streams[idx]
		select {
		case st.flush <- struct{}{}:
		default:
		}
	}
}

// idle reports whether an advance would be a pure no-op: nothing staged,
// nobody waiting, and every stream's claim already at the current epoch with
// the frontier right behind it. The waiter check is load-bearing: a record
// can be tagged with the current epoch and flushed before the epoch closes —
// on-device but uncertified — and only a further advance certifies it, so
// the set is never idle while such a commit has a parked waiter.
func (s *StreamSet) idle() bool {
	s.mu.Lock()
	if s.waiters > 0 || s.err != nil {
		s.mu.Unlock()
		return false
	}
	epoch := atomic.LoadUint64(&s.epoch)
	if atomic.LoadUint64(&s.durable) != epoch-1 {
		s.mu.Unlock()
		return false
	}
	for _, st := range s.streams {
		// Quarantined streams are excluded from the frontier and never catch
		// up; they must not keep the rest of the set churning empty epochs.
		if st.quarantined {
			continue
		}
		if st.claim.Load() != epoch {
			s.mu.Unlock()
			return false
		}
	}
	quarantined := s.quarantinedMaskLocked()
	s.mu.Unlock()
	for i, st := range s.streams {
		if quarantined&(1<<uint(i)) != 0 {
			continue
		}
		st.mu.Lock()
		staged := len(st.buf)
		st.mu.Unlock()
		if staged > 0 {
			return false
		}
	}
	return true
}

// quarantinedMaskLocked returns a bitmask of quarantined streams (requires
// s.mu; stream counts are capped at 64 in scoped mode by the engine).
func (s *StreamSet) quarantinedMaskLocked() uint64 {
	var m uint64
	for i, st := range s.streams {
		if st.quarantined && i < 64 {
			m |= 1 << uint(i)
		}
	}
	return m
}

// deadlineKey orders streams for flusher wakeup: earliest waiter deadline
// first, streams with no registered waiters last.
func (s *StreamSet) deadlineKey(idx int) int64 {
	dl := atomic.LoadInt64(&s.streams[idx].minDeadline)
	if dl == 0 {
		return int64(^uint64(0) >> 1) // no waiters: +inf
	}
	return dl
}

// flusher drains the stream on coordinator signals; closing the flush
// channel triggers one final drain and exit.
func (st *stream) flusher() {
	defer close(st.done)
	for {
		_, ok := <-st.flush //next700:allowwait(flusher parks for epoch signals; shutdown closes the channel, guaranteeing a final drain and exit)
		st.flushOnce()
		if !ok {
			return
		}
	}
}

// recomputeFrontierLocked re-derives the durable frontier as min over the
// non-quarantined streams' claims, minus one. Monotone: the frontier never
// regresses, so certified durability is never retracted. Requires s.mu.
func (s *StreamSet) recomputeFrontierLocked() {
	min := ^uint64(0)
	any := false
	for _, st := range s.streams {
		if st.quarantined {
			continue
		}
		c := st.claim.Load()
		if !any || c < min {
			min, any = c, true
		}
	}
	if any && min > 0 && min-1 > atomic.LoadUint64(&s.durable) {
		atomic.StoreUint64(&s.durable, min-1)
	}
}

// failStreamLocked records a sticky per-stream failure (scoped mode): the
// typed error is published before the failure flag so lock-free readers see
// a complete StreamError, the failure index is delivered to the engine's
// guard, and parked waiters are re-woken by the caller's broadcast. The
// frontier is NOT re-certified here — it freezes at the dead stream's claim
// until Quarantine excludes the stream, which keeps "durable" meaning
// "synced on every non-quarantined stream" at all times. Requires s.mu.
func (s *StreamSet) failStreamLocked(st *stream, cause error) {
	if st.serr != nil {
		return
	}
	st.serr = &StreamError{Stream: st.id, Cause: cause}
	st.sfailed.Store(true)
	select {
	case s.failureC <- st.id:
	default:
	}
}

// flushOnce writes the staged batch plus an epoch marker and syncs. On
// success it raises the stream's claim and recomputes the global frontier;
// on persistent failure it poisons the whole set (legacy mode) or just this
// stream (scoped mode).
func (st *stream) flushOnce() {
	s := st.set
	atomic.StoreInt64(&st.minDeadline, 0)
	if s.failed.Load() {
		// The set is dead. Writing more would leave gaps behind the failed
		// batch, so staged bytes are dropped — loudly: waiters observe the
		// sticky error.
		st.mu.Lock()
		st.buf = st.buf[:0]
		st.mu.Unlock()
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
		return
	}
	if s.scoped && st.sfailed.Load() {
		// This stream is dead (device failure or stall escalation). Staged
		// bytes cannot be made durable here — drop them loudly — but first
		// install a staged readmission: a repaired partition resumes on a
		// fresh device with its claim re-seated at the current epoch.
		s.mu.Lock()
		if st.readmit != nil {
			st.installReadmitLocked()
		} else {
			st.mu.Lock()
			st.buf = st.buf[:0]
			st.mu.Unlock()
		}
		s.cond.Broadcast()
		s.mu.Unlock()
		return
	}
	st.mu.Lock()
	// target is read under the stream mutex after the batch snapshot: every
	// record appended later is tagged >= target, so "synced through target"
	// is a safe claim once this batch (plus marker) hits the device.
	target := atomic.LoadUint64(&s.epoch)
	if len(st.buf) == 0 && target == st.lastMark {
		st.mu.Unlock()
		// A caught-up stream may still owe a pending rotation: lastMark ==
		// target means the claim already covers the rotation epoch, so the
		// swap can install without writing anything.
		s.mu.Lock()
		if st.next != nil && st.claim.Load() >= st.rotateTarget {
			st.dev = st.next
			st.next = nil
			s.cond.Broadcast()
		}
		s.mu.Unlock()
		return
	}
	batch := st.buf
	st.buf = st.spare[:0]
	st.spare = nil
	st.mu.Unlock()

	if target > st.lastMark {
		batch = appendMarker(batch, target)
	}
	_, err := st.dev.Write(batch)
	if err == nil {
		err = st.dev.Sync()
		// A transient sync failure is retried in place; only persistent
		// failure poisons the set.
		for retries := 0; err != nil && isTransient(err) && retries < maxSyncRetries; retries++ {
			err = st.dev.Sync()
		}
	}
	if err == nil && target > st.lastMark {
		st.lastMark = target
	}
	if cap(batch) <= maxRetainedBatchCap {
		st.mu.Lock()
		st.spare = batch[:0]
		st.mu.Unlock()
	}

	s.mu.Lock()
	if err != nil {
		if s.scoped {
			s.failStreamLocked(st, err)
		} else if s.err == nil {
			s.err = fmt.Errorf("%w: %w", ErrLogFailed, err)
			s.failed.Store(true)
		}
	} else if s.scoped && st.sfailed.Load() {
		// Externally failed (stall escalation) while this flush was in
		// flight: the bytes are on the device, but the claim stays frozen —
		// the engine has already decided to degrade around this stream, and
		// recovery re-reads the device image anyway.
	} else {
		if target > st.claim.Load() {
			st.claim.Store(target)
		}
		s.recomputeFrontierLocked()
		if st.next != nil && st.claim.Load() >= st.rotateTarget {
			// The rotation epoch's marker is synced on the old device: every
			// record tagged <= boundary is sealed there, so writes can move
			// to the fresh device.
			st.dev = st.next
			st.next = nil
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// installReadmitLocked swaps a repaired stream onto its staged replacement
// device and clears the failure state. Runs on the stream's own flusher
// goroutine (the only goroutine that touches dev), with the set mutex held.
// Ordering matters: stale staged bytes are dropped and the claim re-seated
// at the current epoch before sfailed is cleared, so a worker that observes
// the stream healthy again can only append records the fresh device will
// actually certify. Seating the claim at the current epoch keeps the
// frontier monotone — the readmitted stream rejoins the aggregation at or
// above every healthy claim, never dragging the frontier backwards below
// epochs already certified by Quarantine's re-certification.
func (st *stream) installReadmitLocked() {
	st.mu.Lock()
	st.buf = st.buf[:0]
	st.mu.Unlock()
	st.dev = st.readmit
	st.readmit = nil
	st.next = nil
	st.rotateTarget = 0
	st.lastMark = 0
	st.serr = nil
	st.quarantined = false
	st.claim.Store(atomic.LoadUint64(&st.set.epoch))
	st.set.recomputeFrontierLocked()
	st.sfailed.Store(false)
}

// Rotate seals the current log segments and swaps every stream onto a fresh
// device. It returns the boundary epoch: every record appended before Rotate
// returned is tagged <= boundary and is durable on the old devices when
// Rotate returns; every record appended after Rotate was entered that tags
// past the boundary lands on the new devices. Callers serialize Rotate
// against appends (the engine's checkpoint fence), which is what makes the
// boundary a clean cut: with no append in flight, the epoch bump inside
// Rotate guarantees pre-rotation commits tag <= boundary and post-rotation
// commits tag > boundary.
//
// The swap itself is performed by each stream's flusher goroutine — the only
// goroutine that ever writes to the device — after it has synced the
// rotation epoch's marker onto the old device, so the sealed segment
// provably contains everything at or below the boundary and per-stream
// epoch-tag monotonicity holds across the segment boundary.
func (s *StreamSet) Rotate(newDevs []Device) (uint64, error) {
	if len(newDevs) != len(s.streams) {
		return 0, fmt.Errorf("wal: rotate needs %d devices, have %d: %w", len(s.streams), len(newDevs), ErrCorrupt)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	if s.err != nil {
		err := s.err
		s.mu.Unlock()
		return 0, err
	}
	boundary := atomic.LoadUint64(&s.epoch)
	atomic.AddUint64(&s.epoch, 1)
	for i, st := range s.streams {
		st.next = newDevs[i]
		st.rotateTarget = boundary + 1
	}
	s.mu.Unlock()
	// Wake every flusher directly: rotation must not be skipped by the
	// coordinator's idle check, and it must not wait for the next window
	// tick either.
	for _, st := range s.streams {
		select {
		case st.flush <- struct{}{}:
		default:
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.err != nil {
			return 0, s.err
		}
		if s.closed {
			return 0, ErrClosed
		}
		if s.scoped {
			// A stream that died mid-rotation can never install its swap;
			// surface its typed error so the checkpoint cycle fails cleanly
			// and the engine's quarantine guard takes over.
			for _, st := range s.streams {
				if st.next != nil && st.sfailed.Load() {
					return 0, st.serr
				}
			}
		}
		pending := false
		for _, st := range s.streams {
			if st.next != nil {
				pending = true
				break
			}
		}
		if !pending {
			return boundary, nil
		}
		// Re-signal before parking: a flusher that drained its signal while
		// mid-flush with a pre-bump target syncs without installing the swap,
		// and nothing else would wake it until the next advance.
		for _, st := range s.streams {
			if st.next != nil {
				select {
				case st.flush <- struct{}{}:
				default:
				}
			}
		}
		s.cond.Wait() //next700:allowwait(flusher broadcast after every flush cycle re-wakes; sticky failure and close both break the loop)
	}
}

// errNotScoped guards the scoped-only API against misuse on legacy sets.
var errNotScoped = errors.New("wal: stream-scoped operation on a whole-set-failure StreamSet")

// FailStream marks a stream failed by external decision — the engine's
// gray-failure monitor escalating a sustained stall, or an operator pulling
// a device. The stream's waiters are woken with a *StreamError wrapping
// cause (ErrStreamQuarantined when cause is nil); the frontier freezes at
// the stream's claim until Quarantine. Idempotent; scoped sets only.
func (s *StreamSet) FailStream(i int, cause error) error {
	if !s.scoped {
		return errNotScoped
	}
	if cause == nil {
		cause = ErrStreamQuarantined
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.failStreamLocked(s.streams[i], cause)
	s.cond.Broadcast()
	return nil
}

// Quarantine excludes a failed stream from the durable-frontier aggregation
// and re-certifies the frontier over the survivors, waking commit waiters
// on healthy streams that were frozen behind the dead stream's claim. The
// stream must already be failed: quarantining is the engine's durable
// decision to degrade, taken strictly after the failure — the frontier
// freeze in between is what makes "durable" never ambiguous. Scoped only.
func (s *StreamSet) Quarantine(i int) error {
	if !s.scoped {
		return errNotScoped
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.streams[i]
	if !st.sfailed.Load() {
		return fmt.Errorf("wal: quarantine of healthy stream %d: %w", i, ErrStreamQuarantined)
	}
	st.quarantined = true
	s.recomputeFrontierLocked()
	s.cond.Broadcast()
	return nil
}

// Readmit stages a repaired stream's return on a fresh device. The swap is
// installed by the stream's own flusher (the only goroutine that touches
// dev); Readmit kicks it and waits for the install, so on return the stream
// is healthy: appends route to dev and the claim is re-seated at the
// current epoch (the frontier never regresses). The caller must have
// recovered the partition's state first — the old device's durable image is
// the authoritative tail until a later checkpoint covers it — and must
// guarantee no commit from before the failure is still between its append
// and its durability wait (the engine drains its attempt gate before
// readmitting). A stalled (unreleased) old device blocks Readmit the same
// way it blocks Close: the flusher must return from the stalled sync first.
func (s *StreamSet) Readmit(i int, dev Device) error {
	if !s.scoped {
		return errNotScoped
	}
	st := s.streams[i]
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if !st.sfailed.Load() {
		s.mu.Unlock()
		return fmt.Errorf("wal: readmit of healthy stream %d: %w", i, ErrStreamQuarantined)
	}
	st.readmit = dev
	s.mu.Unlock()
	select {
	case st.flush <- struct{}{}:
	default:
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for st.readmit != nil && !s.closed {
		// Re-kick before parking: the flusher may have consumed the signal
		// for a drop-staged cycle that raced the staging above.
		select {
		case st.flush <- struct{}{}:
		default:
		}
		s.cond.Wait() //next700:allowwait(flusher broadcast after every cycle re-wakes; close breaks the loop)
	}
	if st.readmit != nil {
		return ErrClosed
	}
	return nil
}

// StreamFailed reports per-stream sticky failure (always false for legacy
// sets, which fail whole — see Failed).
func (s *StreamSet) StreamFailed(i int) bool { return s.streams[i].sfailed.Load() }

// StreamErr returns the stream's sticky *StreamError, or nil.
func (s *StreamSet) StreamErr(i int) error {
	if !s.streams[i].sfailed.Load() {
		return nil
	}
	return s.streams[i].serr
}

// StreamClaim returns the epoch the stream has synced through (lock-free;
// the engine's stall monitor samples it for progress detection).
func (s *StreamSet) StreamClaim(i int) uint64 { return s.streams[i].claim.Load() }

// StreamQuarantined reports whether the stream is excluded from the
// frontier aggregation.
func (s *StreamSet) StreamQuarantined(i int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.streams[i].quarantined
}

// StreamPending reports whether the stream has staged bytes awaiting flush
// (the stall monitor pairs it with a stagnant claim to detect gray failure).
func (s *StreamSet) StreamPending(i int) bool {
	st := s.streams[i]
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.buf) > 0
}

// Close advances one final epoch, drains every stream, and stops the
// background goroutines. When a device has failed, records staged after the
// failure cannot be made durable; Close reports the sticky error rather
// than dropping them silently. In scoped mode that is the first failed,
// un-readmitted stream's typed error.
func (s *StreamSet) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.closing.Store(true)
	close(s.wake)
	<-s.done //next700:allowwait(shutdown join: closing wake guarantees the coordinator drains the streams and exits)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failureC != nil {
		// The flushers have drained and exited and FailStream checks closed,
		// so no further sends are possible: the guard's channel can close.
		close(s.failureC)
	}
	s.cond.Broadcast()
	if s.err != nil {
		return s.err
	}
	for _, st := range s.streams {
		if st.sfailed.Load() {
			return st.serr
		}
	}
	return nil
}

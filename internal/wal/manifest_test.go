package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func sampleManifest() Manifest {
	return Manifest{
		Streams: 2,
		Mode:    "value",
		Checkpoints: []ManifestCheckpoint{
			{Gen: 1, Name: "ckpt-000001", Epoch: 17},
			{Gen: 2, Name: "ckpt-000002", Epoch: 42},
		},
		Segments: []ManifestSegment{
			{Stream: 0, Name: "seg-000000-0", ToEpoch: 42},
			{Stream: 1, Name: "seg-000000-1", ToEpoch: 42},
			{Stream: 0, Name: "seg-000002-0"},
			{Stream: 1, Name: "seg-000002-1"},
		},
	}
}

func TestManifestEncodeDecode(t *testing.T) {
	m := sampleManifest()
	data, err := EncodeManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Streams != 2 || got.Mode != "value" || len(got.Checkpoints) != 2 || len(got.Segments) != 4 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.Checkpoints[1].Epoch != 42 || got.Segments[2].ToEpoch != 0 {
		t.Fatalf("field mismatch: %+v", got)
	}
}

func TestManifestDecodeRejectsCorruption(t *testing.T) {
	data, err := EncodeManifest(sampleManifest())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"truncated":  data[:len(data)-5],
		"empty":      nil,
		"no trailer": []byte(`{"streams":2}` + "\n"),
	}
	flip := append([]byte(nil), data...)
	flip[len(flip)/2] ^= 0x40
	cases["bit flip"] = flip
	for name, c := range cases {
		if _, err := DecodeManifest(c); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: want ErrCorrupt, got %v", name, err)
		}
	}
}

func TestManifestSaveLoadFallback(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "MANIFEST")

	m1 := sampleManifest()
	m1.Checkpoints = m1.Checkpoints[:1]
	if err := SaveManifestFile(path, m1); err != nil {
		t.Fatal(err)
	}
	got, fellBack, err := LoadManifestFile(path)
	if err != nil || fellBack || len(got.Checkpoints) != 1 {
		t.Fatalf("first load: %+v fellBack=%v err=%v", got, fellBack, err)
	}

	m2 := sampleManifest()
	if err := SaveManifestFile(path, m2); err != nil {
		t.Fatal(err)
	}
	got, fellBack, err = LoadManifestFile(path)
	if err != nil || fellBack || len(got.Checkpoints) != 2 {
		t.Fatalf("second load: %+v fellBack=%v err=%v", got, fellBack, err)
	}

	// Tear the current file: the loader must fall back to .prev — the
	// previous save — instead of failing or trusting garbage.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	got, fellBack, err = LoadManifestFile(path)
	if err != nil {
		t.Fatalf("fallback load: %v", err)
	}
	if !fellBack || len(got.Checkpoints) != 1 {
		t.Fatalf("fallback should yield the previous save: %+v fellBack=%v", got, fellBack)
	}

	// Both copies gone: a hard error, wrapped as corruption.
	if err := os.Remove(path + ".prev"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadManifestFile(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt with both copies bad, got %v", err)
	}
}

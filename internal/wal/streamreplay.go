package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
)

// Manifest describes a multi-stream log for recovery: how many streams the
// StreamSet was sharded across, plus — when the engine checkpoints online —
// the checkpoint generations and the per-stream log segments with their
// sealing epochs. The bench CLI writes it next to the stream files
// (<logpath>.manifest.json beside <logpath>.0 .. <logpath>.N-1) so a later
// -recover run can pair the readers without guessing; the checkpoint
// subsystem persists it through SaveManifestFile's CRC-sealed atomic
// install (see manifest.go).
type Manifest struct {
	// Streams is the stream count.
	Streams int `json:"streams"`
	// Mode is the logging mode the streams were written under ("value" or
	// "command"), recorded for operator sanity, not enforced.
	Mode string `json:"mode,omitempty"`
	// Checkpoints lists the retained checkpoint generations, oldest first.
	Checkpoints []ManifestCheckpoint `json:"checkpoints,omitempty"`
	// Segments lists every live log segment in per-stream append order:
	// a stream's on-disk log is the concatenation of its sealed segments
	// followed by its active (ToEpoch == 0) ones.
	Segments []ManifestSegment `json:"segments,omitempty"`
}

// WriteManifest serializes m as JSON.
func WriteManifest(w io.Writer, m Manifest) error {
	if m.Streams <= 0 {
		return fmt.Errorf("wal: manifest needs a positive stream count, have %d: %w", m.Streams, ErrCorrupt)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(m)
}

// ReadManifest parses a JSON manifest.
func ReadManifest(r io.Reader) (Manifest, error) {
	var m Manifest
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return m, fmt.Errorf("wal: bad manifest: %w", err)
	}
	if m.Streams <= 0 {
		return m, fmt.Errorf("wal: manifest stream count %d invalid: %w", m.Streams, ErrCorrupt)
	}
	return m, nil
}

// StreamReplayStats reports what a multi-stream replay consumed, truncated,
// and skipped.
type StreamReplayStats struct {
	// Streams is the number of streams merged.
	Streams int
	// Frontier is the merged durable frontier: the highest epoch fully
	// present across all streams. Records of later epochs are truncated.
	Frontier uint64
	// Records is the number of records applied (epoch <= Frontier).
	Records int
	// TruncatedRecords counts intact records beyond the frontier that were
	// dropped: they belong to epochs some stream may have lost, so replaying
	// them could resurrect a partially durable epoch.
	TruncatedRecords int
	// Markers is the number of intact epoch markers across all streams.
	Markers int
	// Bytes is the framed length of all intact frames across all streams.
	Bytes int64
	// TornBytes sums each stream's trailing torn region.
	TornBytes int64
	// CorruptTailRecords sums the per-stream in-place-torn final records.
	CorruptTailRecords int
	// MaxEpoch is the highest intact epoch tag or marker observed across all
	// streams, including records beyond the frontier that were truncated.
	// Restart recovery feeds it to StreamSet.RaiseEpoch so post-recovery
	// appends tag strictly above everything already in the log.
	MaxEpoch uint64
	// StreamFrontiers holds each stream's own certified frontier when the
	// replay ran in partitioned (per-stream-frontier) mode; nil otherwise.
	StreamFrontiers []uint64
}

// streamRecord is one buffered record awaiting the epoch merge.
type streamRecord struct {
	epoch   uint64
	txnID   uint64
	stream  int
	seq     int // per-stream append order, the final tiebreak
	payload []byte
}

// ReplayStreams merges N log streams written by a StreamSet: it scans each
// stream's intact prefix, computes the durable frontier — the last epoch
// fully present across all streams, proven per stream by its epoch markers
// and by the monotone epoch tags themselves — and applies exactly the
// records with Epoch <= frontier, ordered by (epoch, txnID, stream). A torn
// tail in one stream truncates the global frontier; intact records beyond
// it in other streams are dropped, never resurrected.
//
// Within the frontier the merge order is total and deterministic: command
// replay re-executes in commit-sequence order, and value replay's
// applied-if-newer filtering is order-independent anyway.
func ReplayStreams(readers []io.Reader, apply func(stream int, cr *CommitRecord) error) (StreamReplayStats, error) {
	st := StreamReplayStats{Streams: len(readers)}
	if len(readers) == 0 {
		return st, fmt.Errorf("wal: replay needs at least one stream: %w", ErrCorrupt)
	}

	var records []streamRecord
	frontier := ^uint64(0)
	for i, r := range readers {
		// high is the exclusive completeness bound for this stream: every
		// record with epoch < high is provably intact here. A marker C
		// certifies epochs < C; a surviving record tagged e certifies epochs
		// < e (per-stream tags are monotone, so everything earlier precedes
		// it on the device and within the intact prefix).
		var high uint64
		seq := 0
		s, err := ScanStream(r,
			func(cr *CommitRecord) error {
				if cr.Epoch > high {
					high = cr.Epoch
				}
				records = append(records, streamRecord{
					epoch:   cr.Epoch,
					txnID:   cr.TxnID,
					stream:  i,
					seq:     seq,
					payload: cr.Encode(nil)[headerSize:],
				})
				seq++
				return nil
			},
			func(epoch uint64) error {
				if epoch > high {
					high = epoch
				}
				return nil
			})
		st.Markers += s.Markers
		st.Bytes += s.Bytes
		st.TornBytes += s.TornBytes
		st.CorruptTailRecords += s.CorruptTailRecords
		if err != nil {
			return st, fmt.Errorf("wal: stream %d: %w", i, err)
		}
		if high > st.MaxEpoch {
			st.MaxEpoch = high
		}
		var complete uint64
		if high > 0 {
			complete = high - 1
		}
		if complete < frontier {
			frontier = complete
		}
	}
	st.Frontier = frontier

	sort.Slice(records, func(a, b int) bool {
		x, y := &records[a], &records[b]
		if x.epoch != y.epoch {
			return x.epoch < y.epoch
		}
		if x.txnID != y.txnID {
			return x.txnID < y.txnID
		}
		if x.stream != y.stream {
			return x.stream < y.stream
		}
		return x.seq < y.seq
	})

	var cr CommitRecord
	for i := range records {
		rec := &records[i]
		if rec.epoch > frontier {
			st.TruncatedRecords++
			continue
		}
		if err := decode(rec.payload, &cr); err != nil {
			return st, err
		}
		if err := apply(rec.stream, &cr); err != nil {
			return st, err
		}
		st.Records++
	}
	return st, nil
}

// ReplayStreamsPartitioned replays N streams written under per-partition
// affinity: each stream is authoritative for exactly its own partition, so
// every stream replays to its OWN certified frontier instead of the global
// minimum — one torn or short stream truncates only its partition's tail,
// never the healthy partitions' acknowledged epochs. That is the recovery
// face of quarantine re-certification: after a quarantined stream's set
// kept committing, healthy streams hold acked epochs far past the dead
// stream's claim, and a global-minimum merge would wrongly truncate them.
//
// The apply callback must filter entries to the stream's own partition: a
// multi-partition record is replicated into every touched stream (one copy
// per partition, all tagged with one epoch), and in the loss window at a
// dead stream's frontier a record's copies may survive in some streams but
// not others. Applying only partition-local entries keeps each partition an
// exact prefix of its own commit order; an unacknowledged cross-partition
// commit in that window recovers on the surviving partitions only —
// acknowledged commits are certified on every touched stream and always
// recover in full.
//
// Within a stream, records are applied in (epoch, txnID, seq) order;
// partitioned replay is value-mode only, so applied-if-newer filtering
// makes cross-stream order immaterial.
func ReplayStreamsPartitioned(readers []io.Reader, apply func(stream int, cr *CommitRecord) error) (StreamReplayStats, error) {
	st := StreamReplayStats{Streams: len(readers)}
	if len(readers) == 0 {
		return st, fmt.Errorf("wal: replay needs at least one stream: %w", ErrCorrupt)
	}
	st.StreamFrontiers = make([]uint64, len(readers))

	var records []streamRecord
	minFrontier := ^uint64(0)
	for i, r := range readers {
		var high uint64
		seq := 0
		s, err := ScanStream(r,
			func(cr *CommitRecord) error {
				if cr.Epoch > high {
					high = cr.Epoch
				}
				records = append(records, streamRecord{
					epoch:   cr.Epoch,
					txnID:   cr.TxnID,
					stream:  i,
					seq:     seq,
					payload: cr.Encode(nil)[headerSize:],
				})
				seq++
				return nil
			},
			func(epoch uint64) error {
				if epoch > high {
					high = epoch
				}
				return nil
			})
		st.Markers += s.Markers
		st.Bytes += s.Bytes
		st.TornBytes += s.TornBytes
		st.CorruptTailRecords += s.CorruptTailRecords
		if err != nil {
			return st, fmt.Errorf("wal: stream %d: %w", i, err)
		}
		if high > st.MaxEpoch {
			st.MaxEpoch = high
		}
		var complete uint64
		if high > 0 {
			complete = high - 1
		}
		st.StreamFrontiers[i] = complete
		if complete < minFrontier {
			minFrontier = complete
		}
	}
	st.Frontier = minFrontier

	sort.Slice(records, func(a, b int) bool {
		x, y := &records[a], &records[b]
		if x.epoch != y.epoch {
			return x.epoch < y.epoch
		}
		if x.txnID != y.txnID {
			return x.txnID < y.txnID
		}
		if x.stream != y.stream {
			return x.stream < y.stream
		}
		return x.seq < y.seq
	})

	var cr CommitRecord
	for i := range records {
		rec := &records[i]
		if rec.epoch > st.StreamFrontiers[rec.stream] {
			st.TruncatedRecords++
			continue
		}
		if err := decode(rec.payload, &cr); err != nil {
			return st, err
		}
		if err := apply(rec.stream, &cr); err != nil {
			return st, err
		}
		st.Records++
	}
	return st, nil
}

// SealSegment prepares one segment file's image for concatenated replay: it
// trims the torn tail (the partial or in-place-torn final frame a crash left
// behind — the same cases ScanStream tolerates at end of stream) and, when
// ceiling > 0, drops every frame tagged with an epoch above the ceiling.
//
// Both matter because a stream's log is the concatenation of its segment
// files: a crashed incarnation's torn tail sits mid-stream once a later
// segment follows it, where the replay scanner would reject it as hard
// corruption; and records beyond the replay frontier that one recovery
// truncated must stay dead in every later recovery, even after new epochs
// grow past them — the manifest's sealing epoch is that replay ceiling.
//
// A sealed image with ceiling > 0 ends with a marker for ceiling+1: the
// sealing epoch is itself a completeness certificate (rotation certifies
// its boundary durable on every stream before the manifest seals at it,
// and recovery seals at the merged frontier, which never exceeds any one
// stream's own complete prefix), and the marker frames that originally
// carried the claim may sit above the ceiling — the rotation boundary's
// marker is boundary+1 — so dropping them without this replacement would
// shrink the stream's provable frontier below epochs the engine already
// acknowledged.
//
// Damage before the final frame is real corruption and returns ErrCorrupt.
// The returned image is a fresh slice; data is not modified.
func SealSegment(data []byte, ceiling uint64) ([]byte, error) {
	out := make([]byte, 0, len(data))
	off := 0
	for off < len(data) {
		if off+headerSize > len(data) {
			break // torn header
		}
		size := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if size <= 0 || size > 1<<30 {
			break // zeroed/torn tail: nothing after this header is usable
		}
		end := off + headerSize + size
		if end > len(data) {
			break // torn payload
		}
		payload := data[off+headerSize : end]
		if crc32.ChecksumIEEE(payload) != crc {
			if end == len(data) {
				break // in-place-torn final record
			}
			return nil, ErrCorrupt
		}
		var epoch uint64
		switch {
		case IsMarkerPayload(payload):
			epoch = binary.LittleEndian.Uint64(payload[1:])
		case len(payload) >= 17:
			epoch = binary.LittleEndian.Uint64(payload[9:])
		default:
			return nil, ErrCorrupt
		}
		if ceiling == 0 || epoch <= ceiling {
			out = append(out, data[off:end]...)
		}
		off = end
	}
	if ceiling > 0 {
		out = appendMarker(out, ceiling+1)
	}
	return out, nil
}

// ReplayStreamBytes is ReplayStreams over in-memory stream images (tests
// and the torture harness).
func ReplayStreamBytes(streams [][]byte, apply func(stream int, cr *CommitRecord) error) (StreamReplayStats, error) {
	readers := make([]io.Reader, len(streams))
	for i := range streams {
		readers[i] = bytes.NewReader(streams[i])
	}
	return ReplayStreams(readers, apply)
}

package wal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Manifest describes a multi-stream log for recovery: how many streams the
// StreamSet was sharded across. The bench CLI writes it next to the stream
// files (<logpath>.manifest.json beside <logpath>.0 .. <logpath>.N-1) so a
// later -recover run can pair the readers without guessing.
type Manifest struct {
	// Streams is the stream count.
	Streams int `json:"streams"`
	// Mode is the logging mode the streams were written under ("value" or
	// "command"), recorded for operator sanity, not enforced.
	Mode string `json:"mode,omitempty"`
}

// WriteManifest serializes m as JSON.
func WriteManifest(w io.Writer, m Manifest) error {
	if m.Streams <= 0 {
		return fmt.Errorf("wal: manifest needs a positive stream count, have %d: %w", m.Streams, ErrCorrupt)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(m)
}

// ReadManifest parses a JSON manifest.
func ReadManifest(r io.Reader) (Manifest, error) {
	var m Manifest
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return m, fmt.Errorf("wal: bad manifest: %w", err)
	}
	if m.Streams <= 0 {
		return m, fmt.Errorf("wal: manifest stream count %d invalid: %w", m.Streams, ErrCorrupt)
	}
	return m, nil
}

// StreamReplayStats reports what a multi-stream replay consumed, truncated,
// and skipped.
type StreamReplayStats struct {
	// Streams is the number of streams merged.
	Streams int
	// Frontier is the merged durable frontier: the highest epoch fully
	// present across all streams. Records of later epochs are truncated.
	Frontier uint64
	// Records is the number of records applied (epoch <= Frontier).
	Records int
	// TruncatedRecords counts intact records beyond the frontier that were
	// dropped: they belong to epochs some stream may have lost, so replaying
	// them could resurrect a partially durable epoch.
	TruncatedRecords int
	// Markers is the number of intact epoch markers across all streams.
	Markers int
	// Bytes is the framed length of all intact frames across all streams.
	Bytes int64
	// TornBytes sums each stream's trailing torn region.
	TornBytes int64
	// CorruptTailRecords sums the per-stream in-place-torn final records.
	CorruptTailRecords int
}

// streamRecord is one buffered record awaiting the epoch merge.
type streamRecord struct {
	epoch   uint64
	txnID   uint64
	stream  int
	seq     int // per-stream append order, the final tiebreak
	payload []byte
}

// ReplayStreams merges N log streams written by a StreamSet: it scans each
// stream's intact prefix, computes the durable frontier — the last epoch
// fully present across all streams, proven per stream by its epoch markers
// and by the monotone epoch tags themselves — and applies exactly the
// records with Epoch <= frontier, ordered by (epoch, txnID, stream). A torn
// tail in one stream truncates the global frontier; intact records beyond
// it in other streams are dropped, never resurrected.
//
// Within the frontier the merge order is total and deterministic: command
// replay re-executes in commit-sequence order, and value replay's
// applied-if-newer filtering is order-independent anyway.
func ReplayStreams(readers []io.Reader, apply func(stream int, cr *CommitRecord) error) (StreamReplayStats, error) {
	st := StreamReplayStats{Streams: len(readers)}
	if len(readers) == 0 {
		return st, fmt.Errorf("wal: replay needs at least one stream: %w", ErrCorrupt)
	}

	var records []streamRecord
	frontier := ^uint64(0)
	for i, r := range readers {
		// high is the exclusive completeness bound for this stream: every
		// record with epoch < high is provably intact here. A marker C
		// certifies epochs < C; a surviving record tagged e certifies epochs
		// < e (per-stream tags are monotone, so everything earlier precedes
		// it on the device and within the intact prefix).
		var high uint64
		seq := 0
		s, err := ScanStream(r,
			func(cr *CommitRecord) error {
				if cr.Epoch > high {
					high = cr.Epoch
				}
				records = append(records, streamRecord{
					epoch:   cr.Epoch,
					txnID:   cr.TxnID,
					stream:  i,
					seq:     seq,
					payload: cr.Encode(nil)[headerSize:],
				})
				seq++
				return nil
			},
			func(epoch uint64) error {
				if epoch > high {
					high = epoch
				}
				return nil
			})
		st.Markers += s.Markers
		st.Bytes += s.Bytes
		st.TornBytes += s.TornBytes
		st.CorruptTailRecords += s.CorruptTailRecords
		if err != nil {
			return st, fmt.Errorf("wal: stream %d: %w", i, err)
		}
		var complete uint64
		if high > 0 {
			complete = high - 1
		}
		if complete < frontier {
			frontier = complete
		}
	}
	st.Frontier = frontier

	sort.Slice(records, func(a, b int) bool {
		x, y := &records[a], &records[b]
		if x.epoch != y.epoch {
			return x.epoch < y.epoch
		}
		if x.txnID != y.txnID {
			return x.txnID < y.txnID
		}
		if x.stream != y.stream {
			return x.stream < y.stream
		}
		return x.seq < y.seq
	})

	var cr CommitRecord
	for i := range records {
		rec := &records[i]
		if rec.epoch > frontier {
			st.TruncatedRecords++
			continue
		}
		if err := decode(rec.payload, &cr); err != nil {
			return st, err
		}
		if err := apply(rec.stream, &cr); err != nil {
			return st, err
		}
		st.Records++
	}
	return st, nil
}

// ReplayStreamBytes is ReplayStreams over in-memory stream images (tests
// and the torture harness).
func ReplayStreamBytes(streams [][]byte, apply func(stream int, cr *CommitRecord) error) (StreamReplayStats, error) {
	readers := make([]io.Reader, len(streams))
	for i := range streams {
		readers[i] = bytes.NewReader(streams[i])
	}
	return ReplayStreams(readers, apply)
}

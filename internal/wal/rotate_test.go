package wal

import (
	"testing"

	"next700/internal/testutil"
)

// replayIDs merges per-stream images and returns the replayed txn ids.
func replayIDs(t *testing.T, images [][]byte) map[uint64]bool {
	t.Helper()
	got := make(map[uint64]bool)
	if _, err := ReplayStreamBytes(images, func(_ int, cr *CommitRecord) error {
		got[cr.TxnID] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestStreamSetRotate seals segments mid-run and verifies the boundary
// contract: everything appended before Rotate is durable on (and only on)
// the old devices, everything appended after lands on the new ones, and the
// concatenation replays every commit exactly once.
func TestStreamSetRotate(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	const streams = 2
	old := make([]*memDevice, streams)
	devs := make([]Device, streams)
	for i := range devs {
		old[i] = &memDevice{}
		devs[i] = old[i]
	}
	s := NewStreamSet(devs, 0)

	for id := uint64(1); id <= 10; id++ {
		ep, err := s.Append(int(id)%streams, setRecord(id))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.WaitDurable(int(id)%streams, ep); err != nil {
			t.Fatal(err)
		}
	}

	fresh := make([]*memDevice, streams)
	newDevs := make([]Device, streams)
	for i := range newDevs {
		fresh[i] = &memDevice{}
		newDevs[i] = fresh[i]
	}
	boundary, err := s.Rotate(newDevs)
	if err != nil {
		t.Fatalf("rotate: %v", err)
	}
	if boundary == 0 {
		t.Fatal("boundary must be a real epoch")
	}
	if d := s.DurableEpoch(); d < boundary {
		t.Fatalf("rotation must certify the boundary durable: frontier %d < boundary %d", d, boundary)
	}

	// Pre-rotation commits are wholly in the sealed segments.
	oldImages := make([][]byte, streams)
	for i, m := range old {
		oldImages[i] = m.bytes()
	}
	sealed := replayIDs(t, oldImages)
	for id := uint64(1); id <= 10; id++ {
		if !sealed[id] {
			t.Fatalf("pre-rotation txn %d missing from sealed segments", id)
		}
	}

	// Post-rotation commits land only on the fresh devices, with epochs past
	// the boundary.
	for id := uint64(11); id <= 20; id++ {
		ep, err := s.Append(int(id)%streams, setRecord(id))
		if err != nil {
			t.Fatal(err)
		}
		if ep <= boundary {
			t.Fatalf("post-rotation append tagged %d <= boundary %d", ep, boundary)
		}
		if err := s.WaitDurable(int(id)%streams, ep); err != nil {
			t.Fatal(err)
		}
	}
	for i, m := range old {
		if got := m.bytes(); len(got) != len(oldImages[i]) {
			t.Fatalf("stream %d sealed segment grew after rotation", i)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The concatenation old+fresh replays everything exactly once, and the
	// fresh segments alone carry exactly the post-rotation tail.
	catImages := make([][]byte, streams)
	freshImages := make([][]byte, streams)
	for i := range catImages {
		catImages[i] = append(append([]byte(nil), old[i].bytes()...), fresh[i].bytes()...)
		freshImages[i] = fresh[i].bytes()
	}
	all := replayIDs(t, catImages)
	for id := uint64(1); id <= 20; id++ {
		if !all[id] {
			t.Fatalf("txn %d lost across the segment boundary", id)
		}
	}
	tail := replayIDs(t, freshImages)
	for id := uint64(1); id <= 10; id++ {
		if tail[id] {
			t.Fatalf("pre-rotation txn %d leaked into the fresh segment", id)
		}
	}
	for id := uint64(11); id <= 20; id++ {
		if !tail[id] {
			t.Fatalf("post-rotation txn %d missing from the fresh segment", id)
		}
	}
}

// TestStreamSetRotateIdle rotates a set with nothing staged: the boundary
// still certifies, the swap still installs, and a quiet set does not hang.
func TestStreamSetRotateIdle(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	devs := []Device{&memDevice{}, &memDevice{}}
	s := NewStreamSet(devs, 0)
	fresh := []Device{&memDevice{}, &memDevice{}}
	b1, err := s.Rotate(fresh)
	if err != nil {
		t.Fatal(err)
	}
	// Back-to-back rotation with no traffic in between must also complete.
	b2, err := s.Rotate([]Device{&memDevice{}, &memDevice{}})
	if err != nil {
		t.Fatal(err)
	}
	if b2 <= b1 {
		t.Fatalf("boundaries must advance: %d then %d", b1, b2)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamSetRotateClosed verifies Rotate fails cleanly on a closed set.
func TestStreamSetRotateClosed(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	s := NewStreamSet([]Device{&memDevice{}}, 0)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Rotate([]Device{&memDevice{}}); err == nil {
		t.Fatal("rotate on a closed set must fail")
	}
}

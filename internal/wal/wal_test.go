package wal

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// memDevice is an in-memory Device with fault injection: writes fail after
// failAfter bytes (0 disables), and Synced tracks how much is "on disk".
type memDevice struct {
	mu        sync.Mutex
	data      []byte
	synced    int
	syncs     int
	failAfter int
}

func (d *memDevice) Write(p []byte) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failAfter > 0 && len(d.data)+len(p) > d.failAfter {
		room := d.failAfter - len(d.data)
		if room > 0 {
			d.data = append(d.data, p[:room]...)
		}
		return room, errors.New("device full")
	}
	d.data = append(d.data, p...)
	return len(p), nil
}

func (d *memDevice) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.synced = len(d.data)
	d.syncs++
	return nil
}

func (d *memDevice) bytes() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]byte(nil), d.data...)
}

func valueRecord(id uint64, n int) *CommitRecord {
	cr := &CommitRecord{TxnID: id}
	for i := 0; i < n; i++ {
		cr.Entries = append(cr.Entries, Entry{
			Kind:  EntryKind(i % 3),
			Table: int32(i),
			RID:   uint64(i * 7),
			Key:   uint64(i * 13),
			Data:  []byte(fmt.Sprintf("data-%d-%d", id, i)),
		})
	}
	return cr
}

func TestEncodeDecodeValue(t *testing.T) {
	cr := valueRecord(42, 3)
	framed := cr.Encode(nil)
	var got CommitRecord
	if err := decode(framed[headerSize:], &got); err != nil {
		t.Fatal(err)
	}
	if got.TxnID != 42 || len(got.Entries) != 3 {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
	for i := range cr.Entries {
		a, b := cr.Entries[i], got.Entries[i]
		if a.Kind != b.Kind || a.Table != b.Table || a.RID != b.RID ||
			a.Key != b.Key || !bytes.Equal(a.Data, b.Data) {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestEncodeDecodeCommand(t *testing.T) {
	cr := &CommitRecord{TxnID: 7, Proc: 3, Params: []byte{1, 2, 3, 4}}
	framed := cr.Encode(nil)
	var got CommitRecord
	if err := decode(framed[headerSize:], &got); err != nil {
		t.Fatal(err)
	}
	if got.TxnID != 7 || got.Proc != 3 || !bytes.Equal(got.Params, []byte{1, 2, 3, 4}) {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
	if len(got.Entries) != 0 {
		t.Fatal("command record has entries")
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	err := quick.Check(func(id uint64, dataA, dataB []byte, key uint64) bool {
		cr := &CommitRecord{TxnID: id, Entries: []Entry{
			{Kind: EntryInsert, Table: 1, RID: 5, Key: key, Data: dataA},
			{Kind: EntryUpdate, Table: 2, RID: 6, Key: key + 1, Data: dataB},
		}}
		framed := cr.Encode(nil)
		var got CommitRecord
		if decode(framed[headerSize:], &got) != nil {
			return false
		}
		return got.TxnID == id &&
			bytes.Equal(got.Entries[0].Data, dataA) &&
			bytes.Equal(got.Entries[1].Data, dataB) &&
			got.Entries[0].Key == key
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestEncodeReusesBuffer(t *testing.T) {
	cr := valueRecord(1, 2)
	buf := make([]byte, 0, 4096)
	framed := cr.Encode(buf)
	if &framed[0] != &buf[:1][0] {
		t.Fatal("Encode did not reuse the provided buffer")
	}
}

func TestWriterGroupCommit(t *testing.T) {
	dev := &memDevice{}
	w := NewWriter(dev, time.Millisecond)
	const writers, per = 4, 50
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				rec := valueRecord(uint64(i*1000+j), 2).Encode(nil)
				lsn, err := w.Append(rec)
				if err != nil {
					t.Error(err)
					return
				}
				if err := w.WaitDurable(lsn); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Group commit must have batched syncs: far fewer than one per record.
	if dev.syncs >= writers*per {
		t.Fatalf("no batching: %d syncs for %d records", dev.syncs, writers*per)
	}
	// All records must replay.
	n, err := Replay(bytes.NewReader(dev.bytes()), func(cr *CommitRecord) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != writers*per {
		t.Fatalf("replayed %d records, want %d", n, writers*per)
	}
}

func TestWriterImmediateMode(t *testing.T) {
	dev := &memDevice{}
	w := NewWriter(dev, 0) // no window: WaitDurable kicks the flusher
	rec := valueRecord(1, 1).Encode(nil)
	lsn, err := w.Append(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	if w.Durable() < lsn {
		t.Fatal("durable LSN not advanced")
	}
	w.Close()
}

func TestWriterErrorPropagates(t *testing.T) {
	dev := &memDevice{failAfter: 64}
	w := NewWriter(dev, 0)
	big := valueRecord(1, 20).Encode(nil)
	lsn, err := w.Append(big)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WaitDurable(lsn); err == nil {
		t.Fatal("device failure not surfaced")
	}
	if _, err := w.Append(big); err == nil {
		t.Fatal("append after failure should error")
	}
	w.Close()
}

func TestWriterCloseIdempotent(t *testing.T) {
	w := NewWriter(&memDevice{}, time.Millisecond)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte{1}); err == nil {
		t.Fatal("append after close should fail")
	}
}

func TestReplayOrderAndContent(t *testing.T) {
	dev := &memDevice{}
	w := NewWriter(dev, 0)
	var lsn uint64
	for i := 0; i < 10; i++ {
		rec := valueRecord(uint64(i), 1).Encode(nil)
		lsn, _ = w.Append(rec)
	}
	w.WaitDurable(lsn)
	w.Close()
	var ids []uint64
	n, err := Replay(bytes.NewReader(dev.bytes()), func(cr *CommitRecord) error {
		ids = append(ids, cr.TxnID)
		return nil
	})
	if err != nil || n != 10 {
		t.Fatalf("replay: n=%d err=%v", n, err)
	}
	for i, id := range ids {
		if id != uint64(i) {
			t.Fatalf("order broken: %v", ids)
		}
	}
}

func TestReplayTornTail(t *testing.T) {
	dev := &memDevice{}
	w := NewWriter(dev, 0)
	var lsn uint64
	for i := 0; i < 5; i++ {
		lsn, _ = w.Append(valueRecord(uint64(i), 2).Encode(nil))
	}
	w.WaitDurable(lsn)
	w.Close()
	full := dev.bytes()
	// Truncate mid-record at various points: replay must return the intact
	// prefix count and no error.
	for cut := len(full) - 1; cut > len(full)-40 && cut > 0; cut -= 7 {
		n, err := Replay(bytes.NewReader(full[:cut]), func(cr *CommitRecord) error { return nil })
		if err != nil {
			t.Fatalf("torn tail at %d: %v", cut, err)
		}
		if n != 4 {
			t.Fatalf("torn tail at %d: replayed %d, want 4", cut, n)
		}
	}
}

func TestReplayMidStreamCorruption(t *testing.T) {
	dev := &memDevice{}
	w := NewWriter(dev, 0)
	var lsn uint64
	for i := 0; i < 5; i++ {
		lsn, _ = w.Append(valueRecord(uint64(i), 2).Encode(nil))
	}
	w.WaitDurable(lsn)
	w.Close()
	full := dev.bytes()
	// Flip a byte inside the second record's payload.
	full[headerSize+60] ^= 0xFF
	_, err := Replay(bytes.NewReader(full), func(cr *CommitRecord) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corruption not detected: %v", err)
	}
}

func TestReplayApplyError(t *testing.T) {
	dev := &memDevice{}
	w := NewWriter(dev, 0)
	lsn, _ := w.Append(valueRecord(1, 1).Encode(nil))
	w.WaitDurable(lsn)
	w.Close()
	boom := errors.New("boom")
	_, err := Replay(bytes.NewReader(dev.bytes()), func(cr *CommitRecord) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("apply error not propagated: %v", err)
	}
}

func TestReplayEmpty(t *testing.T) {
	n, err := Replay(bytes.NewReader(nil), func(cr *CommitRecord) error { return nil })
	if n != 0 || err != nil {
		t.Fatalf("empty log: n=%d err=%v", n, err)
	}
}

func TestModeString(t *testing.T) {
	if ModeNone.String() != "none" || ModeValue.String() != "value" || ModeCommand.String() != "command" {
		t.Fatal("mode strings wrong")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode must render")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	var cr CommitRecord
	cases := [][]byte{
		nil,
		{1},
		{9, 0, 0, 0, 0, 0, 0, 0, 0}, // unknown type
		{payloadValue, 0, 0, 0, 0, 0, 0, 0, 0, 5, 0, 0, 0},                 // claims 5 entries, no data
		{payloadCommand, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 255, 0, 0, 0}, // params overflow
	}
	for i, c := range cases {
		if err := decode(c, &cr); !errors.Is(err, ErrCorrupt) {
			t.Errorf("case %d: want ErrCorrupt, got %v", i, err)
		}
	}
}

func TestEntryRoundTripAllKinds(t *testing.T) {
	for _, k := range []EntryKind{EntryUpdate, EntryInsert, EntryDelete} {
		cr := &CommitRecord{TxnID: 1, Entries: []Entry{{Kind: k, Table: 1, RID: 2, Key: 3, Data: []byte("x")}}}
		framed := cr.Encode(nil)
		var got CommitRecord
		if err := decode(framed[headerSize:], &got); err != nil {
			t.Fatal(err)
		}
		if got.Entries[0].Kind != k {
			t.Fatalf("kind %v lost", k)
		}
	}
	if !reflect.DeepEqual(EntryKind(0), EntryUpdate) {
		t.Fatal("EntryUpdate must be zero value")
	}
}

package wal

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// memDevice is an in-memory Device with fault injection: writes fail after
// failAfter bytes (0 disables), and Synced tracks how much is "on disk".
type memDevice struct {
	mu        sync.Mutex
	data      []byte
	synced    int
	syncs     int
	failAfter int
}

func (d *memDevice) Write(p []byte) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failAfter > 0 && len(d.data)+len(p) > d.failAfter {
		room := d.failAfter - len(d.data)
		if room > 0 {
			d.data = append(d.data, p[:room]...)
		}
		return room, errors.New("device full")
	}
	d.data = append(d.data, p...)
	return len(p), nil
}

func (d *memDevice) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.synced = len(d.data)
	d.syncs++
	return nil
}

func (d *memDevice) bytes() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]byte(nil), d.data...)
}

// syncFailDevice accepts writes but fails every Sync with a fixed error.
type syncFailDevice struct {
	memDevice
	err error
}

func (d *syncFailDevice) Sync() error { return d.err }

func valueRecord(id uint64, n int) *CommitRecord {
	cr := &CommitRecord{TxnID: id}
	for i := 0; i < n; i++ {
		cr.Entries = append(cr.Entries, Entry{
			Kind:  EntryKind(i % 3),
			Table: int32(i),
			RID:   uint64(i * 7),
			Key:   uint64(i * 13),
			Data:  []byte(fmt.Sprintf("data-%d-%d", id, i)),
		})
	}
	return cr
}

func TestEncodeDecodeValue(t *testing.T) {
	cr := valueRecord(42, 3)
	framed := cr.Encode(nil)
	var got CommitRecord
	if err := decode(framed[headerSize:], &got); err != nil {
		t.Fatal(err)
	}
	if got.TxnID != 42 || len(got.Entries) != 3 {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
	for i := range cr.Entries {
		a, b := cr.Entries[i], got.Entries[i]
		if a.Kind != b.Kind || a.Table != b.Table || a.RID != b.RID ||
			a.Key != b.Key || !bytes.Equal(a.Data, b.Data) {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestEncodeDecodeCommand(t *testing.T) {
	cr := &CommitRecord{TxnID: 7, Proc: 3, Params: []byte{1, 2, 3, 4}}
	framed := cr.Encode(nil)
	var got CommitRecord
	if err := decode(framed[headerSize:], &got); err != nil {
		t.Fatal(err)
	}
	if got.TxnID != 7 || got.Proc != 3 || !bytes.Equal(got.Params, []byte{1, 2, 3, 4}) {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
	if len(got.Entries) != 0 {
		t.Fatal("command record has entries")
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	err := quick.Check(func(id uint64, dataA, dataB []byte, key uint64) bool {
		cr := &CommitRecord{TxnID: id, Entries: []Entry{
			{Kind: EntryInsert, Table: 1, RID: 5, Key: key, Data: dataA},
			{Kind: EntryUpdate, Table: 2, RID: 6, Key: key + 1, Data: dataB},
		}}
		framed := cr.Encode(nil)
		var got CommitRecord
		if decode(framed[headerSize:], &got) != nil {
			return false
		}
		return got.TxnID == id &&
			bytes.Equal(got.Entries[0].Data, dataA) &&
			bytes.Equal(got.Entries[1].Data, dataB) &&
			got.Entries[0].Key == key
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestEncodeReusesBuffer(t *testing.T) {
	cr := valueRecord(1, 2)
	buf := make([]byte, 0, 4096)
	framed := cr.Encode(buf)
	if &framed[0] != &buf[:1][0] {
		t.Fatal("Encode did not reuse the provided buffer")
	}
}

func TestWriterGroupCommit(t *testing.T) {
	dev := &memDevice{}
	w := NewWriter(dev, time.Millisecond)
	const writers, per = 4, 50
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				rec := valueRecord(uint64(i*1000+j), 2).Encode(nil)
				lsn, err := w.Append(rec)
				if err != nil {
					t.Error(err)
					return
				}
				if err := w.WaitDurable(lsn); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Group commit must have batched syncs: far fewer than one per record.
	if dev.syncs >= writers*per {
		t.Fatalf("no batching: %d syncs for %d records", dev.syncs, writers*per)
	}
	// All records must replay.
	n, err := Replay(bytes.NewReader(dev.bytes()), func(cr *CommitRecord) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != writers*per {
		t.Fatalf("replayed %d records, want %d", n, writers*per)
	}
}

func TestWriterImmediateMode(t *testing.T) {
	dev := &memDevice{}
	w := NewWriter(dev, 0) // no window: WaitDurable kicks the flusher
	rec := valueRecord(1, 1).Encode(nil)
	lsn, err := w.Append(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	if w.Durable() < lsn {
		t.Fatal("durable LSN not advanced")
	}
	w.Close()
}

func TestWriterErrorPropagates(t *testing.T) {
	dev := &memDevice{failAfter: 64}
	w := NewWriter(dev, 0)
	big := valueRecord(1, 20).Encode(nil)
	lsn, err := w.Append(big)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WaitDurable(lsn); err == nil {
		t.Fatal("device failure not surfaced")
	}
	if _, err := w.Append(big); err == nil {
		t.Fatal("append after failure should error")
	}
	w.Close()
}

// TestWriterSyncFailureBroadcasts: a failing Sync must poison the writer
// with ErrLogFailed, broadcast-wake every blocked WaitDurable caller, make
// later Appends return the sticky error, and surface the error from Close
// instead of dropping the buffered-but-unsynced state silently.
func TestWriterSyncFailureBroadcasts(t *testing.T) {
	boom := errors.New("disk on fire")
	dev := &syncFailDevice{err: boom}
	w := NewWriter(dev, 10*time.Millisecond)

	const waiters = 8
	errs := make(chan error, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := valueRecord(uint64(i), 1).Encode(nil)
			lsn, err := w.Append(rec)
			if err != nil {
				errs <- err
				return
			}
			errs <- w.WaitDurable(lsn)
		}(i)
	}
	// Every waiter must come back with the sticky error — none may hang.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("waiters hung after sync failure")
	}
	for i := 0; i < waiters; i++ {
		err := <-errs
		if !errors.Is(err, ErrLogFailed) || !errors.Is(err, boom) {
			t.Fatalf("waiter %d: err=%v, want ErrLogFailed wrapping %v", i, err, boom)
		}
	}
	if !w.Failed() {
		t.Fatal("Failed() false after sync failure")
	}
	if !errors.Is(w.Err(), ErrLogFailed) {
		t.Fatalf("Err()=%v", w.Err())
	}
	// Append after the failure returns the sticky error.
	if _, err := w.Append(valueRecord(99, 1).Encode(nil)); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("Append after failure: %v", err)
	}
	// Close reports the loss instead of silently succeeding.
	if err := w.Close(); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("Close after failure: %v", err)
	}
}

// TestWriterNoWritesAfterFailure: once the device has failed, the flusher
// must stop writing — a later batch landing after a missing one would
// corrupt the log, not extend it.
func TestWriterNoWritesAfterFailure(t *testing.T) {
	dev := &syncFailDevice{err: errors.New("gone")}
	w := NewWriter(dev, 0)
	lsn, _ := w.Append(valueRecord(1, 1).Encode(nil))
	if err := w.WaitDurable(lsn); err == nil {
		t.Fatal("sync failure not surfaced")
	}
	before := len(dev.bytes())
	// Appends are rejected, but even a direct flush must not touch the
	// device again.
	w.kick()
	time.Sleep(10 * time.Millisecond)
	if got := len(dev.bytes()); got != before {
		t.Fatalf("device grew from %d to %d bytes after failure", before, got)
	}
	w.Close()
}

// TestWaitDurableAfterLaterFailure: a record that reached the device before
// the failure stays durable; WaitDurable on it must return nil even though
// the writer is now poisoned.
func TestWaitDurableAfterLaterFailure(t *testing.T) {
	dev := &memDevice{}
	w := NewWriter(dev, 0)
	lsn, _ := w.Append(valueRecord(1, 1).Encode(nil))
	if err := w.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	// Poison the writer by hand (simplest deterministic injection).
	w.mu.Lock()
	w.err = ErrLogFailed
	w.failed.Store(true)
	w.mu.Unlock()
	if err := w.WaitDurable(lsn); err != nil {
		t.Fatalf("already-durable LSN reported failed: %v", err)
	}
	if err := w.WaitDurable(lsn + 1); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("future LSN after failure: %v", err)
	}
	w.Close()
}

func TestWriterCloseIdempotent(t *testing.T) {
	w := NewWriter(&memDevice{}, time.Millisecond)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte{1}); err == nil {
		t.Fatal("append after close should fail")
	}
}

func TestReplayOrderAndContent(t *testing.T) {
	dev := &memDevice{}
	w := NewWriter(dev, 0)
	var lsn uint64
	for i := 0; i < 10; i++ {
		rec := valueRecord(uint64(i), 1).Encode(nil)
		lsn, _ = w.Append(rec)
	}
	w.WaitDurable(lsn)
	w.Close()
	var ids []uint64
	n, err := Replay(bytes.NewReader(dev.bytes()), func(cr *CommitRecord) error {
		ids = append(ids, cr.TxnID)
		return nil
	})
	if err != nil || n != 10 {
		t.Fatalf("replay: n=%d err=%v", n, err)
	}
	for i, id := range ids {
		if id != uint64(i) {
			t.Fatalf("order broken: %v", ids)
		}
	}
}

func TestReplayTornTail(t *testing.T) {
	dev := &memDevice{}
	w := NewWriter(dev, 0)
	var lsn uint64
	for i := 0; i < 5; i++ {
		lsn, _ = w.Append(valueRecord(uint64(i), 2).Encode(nil))
	}
	w.WaitDurable(lsn)
	w.Close()
	full := dev.bytes()
	// Truncate mid-record at various points: replay must return the intact
	// prefix count and no error.
	for cut := len(full) - 1; cut > len(full)-40 && cut > 0; cut -= 7 {
		n, err := Replay(bytes.NewReader(full[:cut]), func(cr *CommitRecord) error { return nil })
		if err != nil {
			t.Fatalf("torn tail at %d: %v", cut, err)
		}
		if n != 4 {
			t.Fatalf("torn tail at %d: replayed %d, want 4", cut, n)
		}
	}
}

func TestReplayMidStreamCorruption(t *testing.T) {
	dev := &memDevice{}
	w := NewWriter(dev, 0)
	var lsn uint64
	for i := 0; i < 5; i++ {
		lsn, _ = w.Append(valueRecord(uint64(i), 2).Encode(nil))
	}
	w.WaitDurable(lsn)
	w.Close()
	full := dev.bytes()
	// Flip a byte inside the second record's payload.
	full[headerSize+60] ^= 0xFF
	_, err := Replay(bytes.NewReader(full), func(cr *CommitRecord) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corruption not detected: %v", err)
	}
}

// TestReplayTruncatedHeader: a log ending mid-header (fewer than 8 bytes of
// framing) is a torn tail, not an error, and the torn bytes are accounted.
func TestReplayTruncatedHeader(t *testing.T) {
	dev := &memDevice{}
	w := NewWriter(dev, 0)
	lsn, _ := w.Append(valueRecord(1, 2).Encode(nil))
	w.WaitDurable(lsn)
	w.Close()
	full := dev.bytes()
	for extra := 1; extra < headerSize; extra++ {
		cut := append(append([]byte(nil), full...), make([]byte, extra)...)
		st, err := ReplayWithStats(bytes.NewReader(cut), func(*CommitRecord) error { return nil })
		if err != nil {
			t.Fatalf("torn header len %d: %v", extra, err)
		}
		if st.Records != 1 || st.TornBytes != int64(extra) {
			t.Fatalf("torn header len %d: records=%d torn=%d", extra, st.Records, st.TornBytes)
		}
	}
}

// TestReplayZeroLengthHeader: a zeroed header (size 0, e.g. a preallocated
// region never written) ends replay cleanly and counts the skipped region.
func TestReplayZeroLengthHeader(t *testing.T) {
	dev := &memDevice{}
	w := NewWriter(dev, 0)
	lsn, _ := w.Append(valueRecord(1, 1).Encode(nil))
	w.WaitDurable(lsn)
	w.Close()
	log := append(dev.bytes(), make([]byte, 32)...) // 8B zero header + 24B slack
	st, err := ReplayWithStats(bytes.NewReader(log), func(*CommitRecord) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 1 || st.TornBytes != 32 {
		t.Fatalf("records=%d torn=%d, want 1/32", st.Records, st.TornBytes)
	}
}

// TestReplayZeroEntryRecord: a legitimate record with an empty payload body
// (no entries, no params) round-trips; zero-length *data* is not confused
// with a zero-length *frame*.
func TestReplayZeroEntryRecord(t *testing.T) {
	dev := &memDevice{}
	w := NewWriter(dev, 0)
	w.Append((&CommitRecord{TxnID: 5}).Encode(nil)) // value record, 0 entries
	lsn, _ := w.Append((&CommitRecord{TxnID: 6, Entries: []Entry{
		{Kind: EntryUpdate, Table: 1, RID: 1, Key: 1, Data: nil}, // zero-length row image
	}}).Encode(nil))
	w.WaitDurable(lsn)
	w.Close()
	var ids []uint64
	st, err := ReplayWithStats(bytes.NewReader(dev.bytes()), func(cr *CommitRecord) error {
		ids = append(ids, cr.TxnID)
		return nil
	})
	if err != nil || st.Records != 2 || st.TornBytes != 0 {
		t.Fatalf("records=%d torn=%d err=%v", st.Records, st.TornBytes, err)
	}
	if ids[0] != 5 || ids[1] != 6 {
		t.Fatalf("ids %v", ids)
	}
}

// TestReplayMidStreamCorruptionDoesNotTruncate: CRC corruption with intact
// records after it must surface ErrCorrupt — silently truncating there
// would drop acknowledged commits.
func TestReplayMidStreamCorruptionDoesNotTruncate(t *testing.T) {
	dev := &memDevice{}
	w := NewWriter(dev, 0)
	var lsn uint64
	recLen := 0
	for i := 0; i < 5; i++ {
		rec := valueRecord(uint64(i), 2).Encode(nil)
		recLen = len(rec)
		lsn, _ = w.Append(rec)
	}
	w.WaitDurable(lsn)
	w.Close()
	full := dev.bytes()
	// Corrupt the middle (third) record's payload.
	full[2*recLen+headerSize+4] ^= 0xFF
	st, err := ReplayWithStats(bytes.NewReader(full), func(*CommitRecord) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-stream corruption: err=%v", err)
	}
	if st.Records != 2 {
		t.Fatalf("replayed %d records before corruption, want 2", st.Records)
	}
}

// TestReplayCorruptTailCounted: a final record torn in place (CRC mismatch,
// nothing after it) is dropped without error and accounted as corrupt tail.
func TestReplayCorruptTailCounted(t *testing.T) {
	dev := &memDevice{}
	w := NewWriter(dev, 0)
	var lsn uint64
	for i := 0; i < 3; i++ {
		lsn, _ = w.Append(valueRecord(uint64(i), 2).Encode(nil))
	}
	w.WaitDurable(lsn)
	w.Close()
	full := dev.bytes()
	full[len(full)-1] ^= 0xFF // flip last payload byte
	st, err := ReplayWithStats(bytes.NewReader(full), func(*CommitRecord) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 2 || st.CorruptTailRecords != 1 || st.TornBytes == 0 {
		t.Fatalf("records=%d corruptTail=%d torn=%d", st.Records, st.CorruptTailRecords, st.TornBytes)
	}
}

func TestReplayApplyError(t *testing.T) {
	dev := &memDevice{}
	w := NewWriter(dev, 0)
	lsn, _ := w.Append(valueRecord(1, 1).Encode(nil))
	w.WaitDurable(lsn)
	w.Close()
	boom := errors.New("boom")
	_, err := Replay(bytes.NewReader(dev.bytes()), func(cr *CommitRecord) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("apply error not propagated: %v", err)
	}
}

func TestReplayEmpty(t *testing.T) {
	n, err := Replay(bytes.NewReader(nil), func(cr *CommitRecord) error { return nil })
	if n != 0 || err != nil {
		t.Fatalf("empty log: n=%d err=%v", n, err)
	}
}

func TestModeString(t *testing.T) {
	if ModeNone.String() != "none" || ModeValue.String() != "value" || ModeCommand.String() != "command" {
		t.Fatal("mode strings wrong")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode must render")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	var cr CommitRecord
	cases := [][]byte{
		nil,
		{1},
		{9, 0, 0, 0, 0, 0, 0, 0, 0}, // unknown type
		{payloadValue, 0, 0, 0, 0, 0, 0, 0, 0, 5, 0, 0, 0},                 // claims 5 entries, no data
		{payloadCommand, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 255, 0, 0, 0}, // params overflow
	}
	for i, c := range cases {
		if err := decode(c, &cr); !errors.Is(err, ErrCorrupt) {
			t.Errorf("case %d: want ErrCorrupt, got %v", i, err)
		}
	}
}

func TestEntryRoundTripAllKinds(t *testing.T) {
	for _, k := range []EntryKind{EntryUpdate, EntryInsert, EntryDelete} {
		cr := &CommitRecord{TxnID: 1, Entries: []Entry{{Kind: k, Table: 1, RID: 2, Key: 3, Data: []byte("x")}}}
		framed := cr.Encode(nil)
		var got CommitRecord
		if err := decode(framed[headerSize:], &got); err != nil {
			t.Fatal(err)
		}
		if got.Entries[0].Kind != k {
			t.Fatalf("kind %v lost", k)
		}
	}
	if !reflect.DeepEqual(EntryKind(0), EntryUpdate) {
		t.Fatal("EntryUpdate must be zero value")
	}
}

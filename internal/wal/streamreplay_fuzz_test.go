package wal

import (
	"errors"
	"testing"

	"next700/internal/xrand"
)

// FuzzReplayStreams damages a faithful multi-stream log and checks the
// epoch-merge oracle: per-stream images built exactly the way a StreamSet
// writes them (monotone epoch tags, a marker certifying each closed epoch),
// each stream cut at an arbitrary byte offset, optional foreign tail on
// stream 0. Replay must never panic, fail only with ErrCorrupt, and under a
// pure truncation must apply exactly the original records with epoch <= the
// merged frontier — a torn tail in one stream truncates epochs everywhere,
// and never loses a record the frontier covers.
func FuzzReplayStreams(f *testing.F) {
	f.Add(uint64(1), uint8(3), uint8(6), uint16(0xFFFF), uint16(0xFFFF), uint16(0xFFFF), []byte{})
	f.Add(uint64(2), uint8(2), uint8(4), uint16(100), uint16(0xFFFF), uint16(0xFFFF), []byte{})
	f.Add(uint64(3), uint8(3), uint8(8), uint16(0xFFFF), uint16(33), uint16(250), []byte{})
	f.Add(uint64(4), uint8(1), uint8(5), uint16(0xFFFF), uint16(0), uint16(0), []byte{1, 2, 3})
	f.Add(uint64(5), uint8(3), uint8(0), uint16(0), uint16(0), uint16(0), []byte("garbage"))

	f.Fuzz(func(t *testing.T, seed uint64, nStreams, rounds uint8, cutA, cutB, cutC uint16, tail []byte) {
		streams := int(nStreams%3) + 1
		origins, images := buildStreamLogs(seed, streams, int(rounds%10))

		cuts := []uint16{cutA, cutB, cutC}
		for i := range images {
			c := int(cuts[i])
			if c > len(images[i]) {
				c = len(images[i])
			}
			images[i] = images[i][:c]
		}
		images[0] = append(append([]byte{}, images[0]...), tail...)

		var applied []CommitRecord
		st, err := ReplayStreamBytes(images, func(_ int, cr *CommitRecord) error {
			applied = append(applied, copyRecord(cr))
			return nil
		})
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("replay failed with a non-corruption error: %v", err)
			}
			return
		}
		if len(tail) != 0 {
			// A foreign tail can decode as arbitrary frames with arbitrary
			// epoch tags, so the exact oracle below does not apply; the
			// no-panic / ErrCorrupt-only contract was the check.
			return
		}

		// Oracle: frontier covers an original record iff its epoch <= the
		// min over streams of (highest surviving marker-or-tag - 1); every
		// such record must be applied byte-identically, and nothing beyond
		// the frontier may be applied.
		want := 0
		for _, o := range origins {
			if o.rec.Epoch <= st.Frontier {
				want++
			}
		}
		if len(applied) != want {
			t.Fatalf("applied %d records, frontier %d covers %d", len(applied), st.Frontier, want)
		}
		got := make(map[uint64]*CommitRecord, len(applied))
		for i := range applied {
			if applied[i].Epoch > st.Frontier {
				t.Fatalf("applied record of epoch %d beyond frontier %d", applied[i].Epoch, st.Frontier)
			}
			got[applied[i].TxnID] = &applied[i]
		}
		var last uint64
		for i := range applied {
			if applied[i].Epoch < last {
				t.Fatalf("merge order not epoch-sorted at record %d", i)
			}
			last = applied[i].Epoch
		}
		for _, o := range origins {
			if o.rec.Epoch > st.Frontier {
				continue
			}
			g := got[o.rec.TxnID]
			if g == nil {
				t.Fatalf("txn %d (epoch %d) within frontier %d but lost", o.rec.TxnID, o.rec.Epoch, st.Frontier)
			}
			if !sameRecord(g, &o.rec) {
				t.Fatalf("txn %d altered by merge:\n got %+v\nwant %+v", o.rec.TxnID, *g, o.rec)
			}
		}
	})
}

type originRecord struct {
	stream int
	rec    CommitRecord
}

// buildStreamLogs emulates a StreamSet run deterministically: each round,
// every stream appends 0..2 records tagged with the current epoch, then the
// epoch advances and every stream writes a marker certifying it — exactly
// the framing and monotonicity invariants the real flushers maintain.
func buildStreamLogs(seed uint64, streams, rounds int) ([]originRecord, [][]byte) {
	rng := xrand.New(seed ^ 0x57e4)
	images := make([][]byte, streams)
	var origins []originRecord
	epoch := uint64(1)
	txn := uint64(0)
	for r := 0; r < rounds; r++ {
		for s := 0; s < streams; s++ {
			for n := rng.Intn(3); n > 0; n-- {
				txn++
				cr := CommitRecord{TxnID: txn, Epoch: epoch}
				if rng.Bool(0.3) {
					cr.Proc = int32(rng.IntRange(1, 50))
					cr.Params = randBytes(rng, rng.Intn(12))
				} else {
					cr.Entries = []Entry{{
						Kind: EntryUpdate, Table: 1,
						RID: txn, Key: txn, Data: randBytes(rng, rng.Intn(16)),
					}}
				}
				images[s] = append(images[s], cr.Encode(nil)...)
				origins = append(origins, originRecord{stream: s, rec: cr})
			}
		}
		epoch++
		for s := 0; s < streams; s++ {
			images[s] = appendMarker(images[s], epoch)
		}
	}
	return origins, images
}

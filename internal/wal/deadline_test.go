package wal

import (
	"errors"
	"testing"
	"time"

	"next700/internal/testutil"
)

// stallDevice hangs every Sync until released — the minimal gray failure:
// no error is ever reported, progress just stops.
type stallDevice struct{ release chan struct{} }

func (d *stallDevice) Write(p []byte) (int, error) { return len(p), nil }
func (d *stallDevice) Sync() error                 { <-d.release; return nil }

func TestWaitDurableUntilBoundsStalledDevice(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	dev := &stallDevice{release: make(chan struct{})}
	w := NewWriter(dev, 0)
	lsn, err := w.Append([]byte("rec"))
	if err != nil {
		t.Fatal(err)
	}

	const wait = 40 * time.Millisecond
	start := time.Now()
	err = w.WaitDurableUntil(lsn, time.Now().Add(wait).UnixNano())
	elapsed := time.Since(start)
	if !errors.Is(err, ErrWaitDeadline) {
		t.Fatalf("err = %v, want ErrWaitDeadline", err)
	}
	if elapsed > wait+2*time.Second {
		t.Fatalf("bounded wait took %v, want ~%v", elapsed, wait)
	}
	// The record stayed staged (indeterminate, not lost): once the device
	// recovers, an unbounded wait sees it durable.
	close(dev.release)
	if err := w.WaitDurable(lsn); err != nil {
		t.Fatalf("WaitDurable after recovery: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitDurableUntilPastDeadlinePendingRecord(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	dev := &stallDevice{release: make(chan struct{})}
	w := NewWriter(dev, 0)
	lsn, err := w.Append([]byte("rec"))
	if err != nil {
		t.Fatal(err)
	}
	// A deadline already in the past on a pending record sheds immediately.
	if err := w.WaitDurableUntil(lsn, time.Now().Add(-time.Millisecond).UnixNano()); !errors.Is(err, ErrWaitDeadline) {
		t.Fatalf("err = %v, want ErrWaitDeadline", err)
	}
	close(dev.release)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitDurableUntilDurableRecordIgnoresDeadline(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	dev := &stallDevice{release: make(chan struct{})}
	close(dev.release) // healthy device
	w := NewWriter(dev, 0)
	lsn, err := w.Append([]byte("rec"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	// Durability already achieved: even an expired deadline reports success.
	if err := w.WaitDurableUntil(lsn, time.Now().Add(-time.Millisecond).UnixNano()); err != nil {
		t.Fatalf("err = %v, want nil for an already-durable record", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

package index

import (
	"sync"

	"next700/internal/storage"
)

// btreeOrder is the maximum number of keys per node. 64 keys keeps nodes
// around one cache-line-multiple and trees shallow for benchmark-scale data.
const btreeOrder = 64

// node is a B+ tree node. Internal nodes hold len(keys)+1 children where
// keys[i] is the smallest key reachable under children[i+1]. Leaves hold
// parallel keys/rids slices and a next pointer forming the leaf chain.
type node struct {
	mu       sync.RWMutex
	leaf     bool
	keys     []uint64
	children []*node            // internal only
	rids     []storage.RecordID // leaf only
	next     *node              // leaf chain
}

func newLeaf() *node {
	return &node{
		leaf: true,
		keys: make([]uint64, 0, btreeOrder),
		rids: make([]storage.RecordID, 0, btreeOrder),
	}
}

func newInternal() *node {
	return &node{
		keys:     make([]uint64, 0, btreeOrder),
		children: make([]*node, 0, btreeOrder+1),
	}
}

// full reports whether an insert into this node could require a split.
func (n *node) full() bool { return len(n.keys) >= btreeOrder }

// childIndex returns which child subtree covers key: the number of
// separators <= key.
func (n *node) childIndex(key uint64) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.keys[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// search returns the insertion position of key in a sorted key slice and
// whether key is present at that position.
func (n *node) search(key uint64) (int, bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(n.keys) && n.keys[lo] == key
}

// BTree is a concurrent B+ tree with pessimistic latch crabbing: readers
// crab read-latches root-to-leaf; writers crab write-latches, releasing all
// held ancestors as soon as the current node cannot split. Deletes are lazy
// (no rebalancing), the standard simplification in main-memory OLTP engines
// where deletes are rare and space is reclaimed wholesale.
type BTree struct {
	name string
	// meta guards the root pointer and acts as the root's parent in the
	// crabbing protocol: holding meta prevents the root from changing.
	meta sync.RWMutex
	root *node
	// count tracks Len, maintained under its own mutex.
	countMu sync.Mutex
	count   int
}

// NewBTree creates an empty tree.
func NewBTree(name string) *BTree {
	return &BTree{name: name, root: newLeaf()}
}

// Name implements Index.
func (t *BTree) Name() string { return t.name }

// Len implements Index.
func (t *BTree) Len() int {
	t.countMu.Lock()
	defer t.countMu.Unlock()
	return t.count
}

func (t *BTree) addCount(d int) {
	t.countMu.Lock()
	t.count += d
	t.countMu.Unlock()
}

// descendRead crabs read latches from the root to the leaf covering key and
// returns that leaf still read-latched.
func (t *BTree) descendRead(key uint64) *node {
	t.meta.RLock()
	n := t.root
	n.mu.RLock()
	t.meta.RUnlock()
	for !n.leaf {
		child := n.children[n.childIndex(key)]
		child.mu.RLock()
		n.mu.RUnlock()
		n = child
	}
	return n
}

// Lookup implements Index.
func (t *BTree) Lookup(key uint64) (storage.RecordID, bool) {
	n := t.descendRead(key)
	defer n.mu.RUnlock()
	if i, ok := n.search(key); ok {
		return n.rids[i], true
	}
	return storage.InvalidRecordID, false
}

// Insert implements Index.
//
// Latching invariants during descent:
//   - metaHeld is true iff t.meta is write-locked, which is the case exactly
//     while the root may still be replaced by this insert (root split).
//   - held contains the write-latched ancestors, highest first, each of
//     which was full when its child was latched and may therefore need to
//     absorb a separator from a propagating split.
//   - whenever a non-full node is reached, every held ancestor (and meta)
//     is released: the split cannot propagate past a non-full node.
func (t *BTree) Insert(key uint64, rid storage.RecordID) (storage.RecordID, bool) {
	t.meta.Lock()
	metaHeld := true
	n := t.root
	n.mu.Lock()
	var held []*node

	release := func() {
		for _, a := range held {
			a.mu.Unlock()
		}
		held = held[:0]
		if metaHeld {
			t.meta.Unlock()
			metaHeld = false
		}
	}

	if !n.full() {
		t.meta.Unlock()
		metaHeld = false
	}

	for !n.leaf {
		child := n.children[n.childIndex(key)]
		child.mu.Lock()
		if child.full() {
			held = append(held, n)
		} else {
			n.mu.Unlock()
			release()
		}
		n = child
	}

	i, found := n.search(key)
	if found {
		old := n.rids[i]
		n.mu.Unlock()
		release()
		return old, false
	}
	n.keys = append(n.keys, 0)
	n.rids = append(n.rids, 0)
	copy(n.keys[i+1:], n.keys[i:])
	copy(n.rids[i+1:], n.rids[i:])
	n.keys[i] = key
	n.rids[i] = rid
	t.addCount(1)

	if len(n.keys) <= btreeOrder {
		n.mu.Unlock()
		release()
		return rid, true
	}

	// Overflow: split the leaf, then push separators up through the held
	// ancestors, bottom-up.
	sepKey, right := n.splitLeaf()
	n.mu.Unlock()

	for idx := len(held) - 1; idx >= 0; idx-- {
		parent := held[idx]
		ci := parent.childIndex(sepKey)
		parent.keys = append(parent.keys, 0)
		copy(parent.keys[ci+1:], parent.keys[ci:])
		parent.keys[ci] = sepKey
		parent.children = append(parent.children, nil)
		copy(parent.children[ci+2:], parent.children[ci+1:])
		parent.children[ci+1] = right

		if len(parent.keys) <= btreeOrder {
			// Absorbed. A non-full held ancestor can only be held[0] (its
			// own parent was released during descent because it was not
			// full at that time — but it became over-full only transiently
			// here if it was full; absorption means it was exactly at the
			// boundary). Release everything still held.
			held = held[:idx+1]
			release()
			return rid, true
		}
		sepKey, right = parent.splitInternal()
		parent.mu.Unlock()
	}
	held = held[:0]

	// The split propagated past every held ancestor, i.e. the root itself
	// split (or the root was the leaf). meta must still be held.
	if !metaHeld {
		panic("index: root split without meta latch")
	}
	newRoot := newInternal()
	newRoot.keys = append(newRoot.keys, sepKey)
	newRoot.children = append(newRoot.children, t.root, right)
	t.root = newRoot
	t.meta.Unlock()
	return rid, true
}

// splitLeaf moves the upper half of n into a new right sibling, links the
// leaf chain, and returns the separator key (first key of the right node).
// Caller holds n's write latch.
func (n *node) splitLeaf() (uint64, *node) {
	mid := len(n.keys) / 2
	right := newLeaf()
	right.keys = append(right.keys, n.keys[mid:]...)
	right.rids = append(right.rids, n.rids[mid:]...)
	n.keys = n.keys[:mid]
	n.rids = n.rids[:mid]
	right.next = n.next
	n.next = right
	return right.keys[0], right
}

// splitInternal moves the upper half of n into a new right sibling and
// returns the separator pushed up. Caller holds n's write latch.
func (n *node) splitInternal() (uint64, *node) {
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := newInternal()
	right.keys = append(right.keys, n.keys[mid+1:]...)
	right.children = append(right.children, n.children[mid+1:]...)
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	return sep, right
}

// Delete implements Index (lazy: no rebalancing). The read-to-write latch
// upgrade at the leaf opens a window where a concurrent split can move the
// key into a right sibling; the leaf chain is chased under lock coupling to
// close it.
func (t *BTree) Delete(key uint64) bool {
	t.meta.RLock()
	n := t.root
	n.mu.RLock()
	t.meta.RUnlock()
	for !n.leaf {
		child := n.children[n.childIndex(key)]
		child.mu.RLock()
		n.mu.RUnlock()
		n = child
	}
	n.mu.RUnlock()
	n.mu.Lock()

	i, found := n.search(key)
	for !found {
		// The key is absent from this leaf. It can only live to the right
		// if it is greater than everything here (or the leaf is empty,
		// which a lazy delete can produce).
		if len(n.keys) > 0 && key <= n.keys[len(n.keys)-1] {
			n.mu.Unlock()
			return false
		}
		nx := n.next
		if nx == nil {
			n.mu.Unlock()
			return false
		}
		nx.mu.Lock()
		n.mu.Unlock()
		n = nx
		i, found = n.search(key)
	}

	copy(n.keys[i:], n.keys[i+1:])
	copy(n.rids[i:], n.rids[i+1:])
	n.keys = n.keys[:len(n.keys)-1]
	n.rids = n.rids[:len(n.rids)-1]
	n.mu.Unlock()
	t.addCount(-1)
	return true
}

// Scan implements Ranger: ascending visit of [lo, hi] inclusive.
func (t *BTree) Scan(lo, hi uint64, fn func(key uint64, rid storage.RecordID) bool) int {
	if lo > hi {
		return 0
	}
	n := t.descendRead(lo)
	visited := 0
	for {
		start, _ := n.search(lo)
		for i := start; i < len(n.keys); i++ {
			if n.keys[i] > hi {
				n.mu.RUnlock()
				return visited
			}
			visited++
			if !fn(n.keys[i], n.rids[i]) {
				n.mu.RUnlock()
				return visited
			}
		}
		nx := n.next
		if nx == nil {
			n.mu.RUnlock()
			return visited
		}
		nx.mu.RLock()
		n.mu.RUnlock()
		n = nx
	}
}

// ScanDesc implements Ranger: descending visit of [lo, hi]. The leaf chain
// is singly linked, so the range is first collected ascending into a buffer
// and then visited in reverse; intended for the narrow descending ranges
// OLTP workloads use (e.g. latest-order lookups).
func (t *BTree) ScanDesc(lo, hi uint64, fn func(key uint64, rid storage.RecordID) bool) int {
	type entry struct {
		key uint64
		rid storage.RecordID
	}
	var buf []entry
	t.Scan(lo, hi, func(key uint64, rid storage.RecordID) bool {
		buf = append(buf, entry{key, rid})
		return true
	})
	visited := 0
	for i := len(buf) - 1; i >= 0; i-- {
		visited++
		if !fn(buf[i].key, buf[i].rid) {
			break
		}
	}
	return visited
}

// Iterate implements Index: an ascending full scan.
func (t *BTree) Iterate(fn func(key uint64, rid storage.RecordID) bool) {
	t.Scan(0, ^uint64(0), fn)
}

var (
	_ Index  = (*Hash)(nil)
	_ Ranger = (*BTree)(nil)
)

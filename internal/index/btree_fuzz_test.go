package index

import (
	"testing"

	"next700/internal/storage"
	"next700/internal/xrand"
)

// TestBTreeModelFuzz runs long random op sequences against a map model and
// checks full agreement, including scan results, after every batch.
func TestBTreeModelFuzz(t *testing.T) {
	const rounds = 40
	const opsPerRound = 2500
	rng := xrand.New(0xF022)
	bt := NewBTree("fuzz")
	model := make(map[uint64]storage.RecordID)

	for round := 0; round < rounds; round++ {
		for op := 0; op < opsPerRound; op++ {
			key := rng.Uint64() % 4096
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // insert
				rid := storage.RecordID(rng.Uint64())
				old, inserted := bt.Insert(key, rid)
				if prev, ok := model[key]; ok {
					if inserted || old != prev {
						t.Fatalf("insert over existing key %d: got (%d,%v) want (%d,false)",
							key, old, inserted, prev)
					}
				} else {
					if !inserted {
						t.Fatalf("insert of fresh key %d failed", key)
					}
					model[key] = rid
				}
			case 4, 5: // delete
				got := bt.Delete(key)
				_, want := model[key]
				if got != want {
					t.Fatalf("delete %d: got %v want %v", key, got, want)
				}
				delete(model, key)
			default: // lookup
				rid, ok := bt.Lookup(key)
				want, wok := model[key]
				if ok != wok || (ok && rid != want) {
					t.Fatalf("lookup %d: got (%d,%v) want (%d,%v)", key, rid, ok, want, wok)
				}
			}
		}
		// Whole-tree agreement after each round.
		if bt.Len() != len(model) {
			t.Fatalf("round %d: len %d vs model %d", round, bt.Len(), len(model))
		}
		seen := 0
		prev := int64(-1)
		bt.Scan(0, ^uint64(0), func(k uint64, rid storage.RecordID) bool {
			if int64(k) <= prev {
				t.Fatalf("scan out of order at %d", k)
			}
			prev = int64(k)
			want, ok := model[k]
			if !ok || want != rid {
				t.Fatalf("scan produced (%d,%d), model has (%d,%v)", k, rid, want, ok)
			}
			seen++
			return true
		})
		if seen != len(model) {
			t.Fatalf("scan visited %d of %d", seen, len(model))
		}

		// Random sub-range scans agree with a model filter.
		lo := rng.Uint64() % 4096
		hi := lo + rng.Uint64()%512
		wantN := 0
		for k := range model {
			if k >= lo && k <= hi {
				wantN++
			}
		}
		gotN := bt.Scan(lo, hi, func(uint64, storage.RecordID) bool { return true })
		if gotN != wantN {
			t.Fatalf("range [%d,%d]: scanned %d want %d", lo, hi, gotN, wantN)
		}
		// Descending agrees with ascending reversed.
		var asc, desc []uint64
		bt.Scan(lo, hi, func(k uint64, _ storage.RecordID) bool {
			asc = append(asc, k)
			return true
		})
		bt.ScanDesc(lo, hi, func(k uint64, _ storage.RecordID) bool {
			desc = append(desc, k)
			return true
		})
		if len(asc) != len(desc) {
			t.Fatalf("asc/desc length mismatch: %d vs %d", len(asc), len(desc))
		}
		for i := range asc {
			if asc[i] != desc[len(desc)-1-i] {
				t.Fatalf("desc not reverse of asc at %d", i)
			}
		}
	}
}

// TestBTreeIterateMatchesScan checks Iterate agrees with a full scan.
func TestBTreeIterateMatchesScan(t *testing.T) {
	bt := NewBTree("it")
	rng := xrand.New(5)
	for i := 0; i < 10000; i++ {
		bt.Insert(rng.Uint64()%100000, storage.RecordID(i))
	}
	var a, b []uint64
	bt.Scan(0, ^uint64(0), func(k uint64, _ storage.RecordID) bool {
		a = append(a, k)
		return true
	})
	bt.Iterate(func(k uint64, _ storage.RecordID) bool {
		b = append(b, k)
		return true
	})
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

// TestHashIterate checks hash iteration coverage and early stop.
func TestHashIterate(t *testing.T) {
	h := NewHash("it", 0)
	for i := uint64(0); i < 1000; i++ {
		h.Insert(i, storage.RecordID(i*2))
	}
	seen := make(map[uint64]storage.RecordID)
	h.Iterate(func(k uint64, rid storage.RecordID) bool {
		seen[k] = rid
		return true
	})
	if len(seen) != 1000 {
		t.Fatalf("iterated %d entries", len(seen))
	}
	for k, rid := range seen {
		if rid != storage.RecordID(k*2) {
			t.Fatalf("key %d has rid %d", k, rid)
		}
	}
	n := 0
	h.Iterate(func(uint64, storage.RecordID) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("early stop visited %d", n)
	}
}

// Package index provides the two index families the engine composes over:
// a partitioned concurrent hash index for point lookups and a concurrent
// B+ tree (latch crabbing) for ordered access and range scans.
//
// Keys are uint64. Composite benchmark keys (warehouse, district, ...) are
// packed into 64 bits by the workload layer; this keeps the hot lookup path
// free of allocation and comparison indirection, matching the design of the
// research engines the keynote surveys.
package index

import (
	"sync"

	"next700/internal/storage"
)

// Index is the interface the engine programs against. Implementations must
// be safe for concurrent use.
//
// Insert is idempotent-on-conflict: inserting an existing key fails and
// reports the incumbent record so unique-constraint handling is cheap.
type Index interface {
	// Name returns the index name.
	Name() string
	// Insert maps key to rid. If key is already present, Insert returns the
	// existing record id and false and does not modify the index.
	Insert(key uint64, rid storage.RecordID) (storage.RecordID, bool)
	// Lookup returns the record mapped to key, or (InvalidRecordID, false).
	Lookup(key uint64) (storage.RecordID, bool)
	// Delete removes key; it reports whether the key was present.
	Delete(key uint64) bool
	// Len returns the number of keys currently indexed.
	Len() int
	// Iterate visits every entry until fn returns false. Visit order is
	// implementation-defined. Not atomic with respect to concurrent
	// writers; intended for quiesced phases (checkpointing, verification).
	Iterate(fn func(key uint64, rid storage.RecordID) bool)
}

// Ranger is implemented by ordered indexes that support range scans.
type Ranger interface {
	Index
	// Scan visits keys in [lo, hi] in ascending order until fn returns
	// false. It returns the number of entries visited.
	Scan(lo, hi uint64, fn func(key uint64, rid storage.RecordID) bool) int
	// ScanDesc visits keys in [lo, hi] in descending order until fn returns
	// false. It returns the number of entries visited.
	ScanDesc(lo, hi uint64, fn func(key uint64, rid storage.RecordID) bool) int
}

// hashShards is the number of independently locked partitions in the hash
// index; a power of two so shard selection is a mask.
const hashShards = 64

type hashShard struct {
	mu sync.RWMutex
	m  map[uint64]storage.RecordID
}

// Hash is a partitioned hash index. Each partition is an independently
// RW-locked Go map: simple, correct, and fast enough that the concurrency
// control protocol — not the index — dominates the transaction path.
type Hash struct {
	name   string
	shards [hashShards]hashShard
}

// NewHash creates an empty hash index. sizeHint is a per-index expected key
// count used to presize the shard maps (0 is fine).
func NewHash(name string, sizeHint int) *Hash {
	h := &Hash{name: name}
	per := sizeHint / hashShards
	for i := range h.shards {
		h.shards[i].m = make(map[uint64]storage.RecordID, per)
	}
	return h
}

// Name implements Index.
func (h *Hash) Name() string { return h.name }

func (h *Hash) shard(key uint64) *hashShard {
	// Multiplicative scramble so sequential keys spread across shards.
	return &h.shards[(key*0x9e3779b97f4a7c15)>>(64-6)]
}

// Insert implements Index.
func (h *Hash) Insert(key uint64, rid storage.RecordID) (storage.RecordID, bool) {
	s := h.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.m[key]; ok {
		return old, false
	}
	s.m[key] = rid
	return rid, true
}

// Lookup implements Index.
func (h *Hash) Lookup(key uint64) (storage.RecordID, bool) {
	s := h.shard(key)
	s.mu.RLock()
	rid, ok := s.m[key]
	s.mu.RUnlock()
	if !ok {
		return storage.InvalidRecordID, false
	}
	return rid, true
}

// Delete implements Index.
func (h *Hash) Delete(key uint64) bool {
	s := h.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[key]; !ok {
		return false
	}
	delete(s.m, key)
	return true
}

// Len implements Index.
func (h *Hash) Len() int {
	n := 0
	for i := range h.shards {
		h.shards[i].mu.RLock()
		n += len(h.shards[i].m)
		h.shards[i].mu.RUnlock()
	}
	return n
}

// Iterate implements Index: shard by shard, holding one shard's read lock
// at a time.
func (h *Hash) Iterate(fn func(key uint64, rid storage.RecordID) bool) {
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.RLock()
		for k, v := range s.m {
			if !fn(k, v) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}

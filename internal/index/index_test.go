package index

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"next700/internal/storage"
	"next700/internal/xrand"
)

// both runs f against each index implementation.
func both(t *testing.T, f func(t *testing.T, idx Index)) {
	t.Helper()
	t.Run("hash", func(t *testing.T) { f(t, NewHash("h", 0)) })
	t.Run("btree", func(t *testing.T) { f(t, NewBTree("b")) })
}

func TestInsertLookup(t *testing.T) {
	both(t, func(t *testing.T, idx Index) {
		if _, ok := idx.Lookup(1); ok {
			t.Fatal("lookup in empty index")
		}
		if _, ok := idx.Insert(1, 100); !ok {
			t.Fatal("insert failed")
		}
		rid, ok := idx.Lookup(1)
		if !ok || rid != 100 {
			t.Fatalf("lookup got %d/%v", rid, ok)
		}
		// Duplicate insert reports the incumbent.
		old, ok := idx.Insert(1, 200)
		if ok || old != 100 {
			t.Fatalf("dup insert got %d/%v", old, ok)
		}
		if rid, _ := idx.Lookup(1); rid != 100 {
			t.Fatal("dup insert clobbered value")
		}
		if idx.Len() != 1 {
			t.Fatalf("len %d", idx.Len())
		}
	})
}

func TestDelete(t *testing.T) {
	both(t, func(t *testing.T, idx Index) {
		idx.Insert(5, 50)
		if !idx.Delete(5) {
			t.Fatal("delete of present key failed")
		}
		if idx.Delete(5) {
			t.Fatal("double delete succeeded")
		}
		if _, ok := idx.Lookup(5); ok {
			t.Fatal("deleted key still found")
		}
		if idx.Len() != 0 {
			t.Fatalf("len %d", idx.Len())
		}
		// Reinsert after delete.
		if _, ok := idx.Insert(5, 55); !ok {
			t.Fatal("reinsert failed")
		}
		if rid, _ := idx.Lookup(5); rid != 55 {
			t.Fatal("reinsert value wrong")
		}
	})
}

func TestBulk(t *testing.T) {
	both(t, func(t *testing.T, idx Index) {
		const n = 50000
		rng := xrand.New(1)
		keys := make([]uint64, 0, n)
		seen := make(map[uint64]bool, n)
		for len(keys) < n {
			k := rng.Uint64() % (1 << 40)
			if seen[k] {
				continue
			}
			seen[k] = true
			keys = append(keys, k)
			idx.Insert(k, storage.RecordID(k+1))
		}
		if idx.Len() != n {
			t.Fatalf("len %d want %d", idx.Len(), n)
		}
		for _, k := range keys {
			rid, ok := idx.Lookup(k)
			if !ok || rid != storage.RecordID(k+1) {
				t.Fatalf("key %d -> %d/%v", k, rid, ok)
			}
		}
		// Delete half, verify.
		for i, k := range keys {
			if i%2 == 0 {
				if !idx.Delete(k) {
					t.Fatalf("delete %d failed", k)
				}
			}
		}
		if idx.Len() != n/2 {
			t.Fatalf("len after deletes %d", idx.Len())
		}
		for i, k := range keys {
			_, ok := idx.Lookup(k)
			if (i%2 == 0) == ok {
				t.Fatalf("key %d present=%v at i=%d", k, ok, i)
			}
		}
	})
}

func TestQuickInsertLookupDelete(t *testing.T) {
	both(t, func(t *testing.T, idx Index) {
		model := make(map[uint64]storage.RecordID)
		err := quick.Check(func(key uint64, rid uint32, del bool) bool {
			key %= 512 // force collisions with the model
			if del {
				_, inModel := model[key]
				ok := idx.Delete(key)
				delete(model, key)
				return ok == inModel
			}
			old, inserted := idx.Insert(key, storage.RecordID(rid))
			if prev, inModel := model[key]; inModel {
				return !inserted && old == prev
			}
			model[key] = storage.RecordID(rid)
			return inserted
		}, &quick.Config{MaxCount: 5000})
		if err != nil {
			t.Fatal(err)
		}
		// Final state agreement.
		if idx.Len() != len(model) {
			t.Fatalf("len %d vs model %d", idx.Len(), len(model))
		}
		for k, v := range model {
			rid, ok := idx.Lookup(k)
			if !ok || rid != v {
				t.Fatalf("key %d: got %d/%v want %d", k, rid, ok, v)
			}
		}
	})
}

func TestBTreeScanAscending(t *testing.T) {
	bt := NewBTree("b")
	// Insert shuffled multiples of 3 in [0, 3000).
	rng := xrand.New(2)
	perm := make([]int, 1000)
	rng.Perm(perm)
	for _, i := range perm {
		bt.Insert(uint64(i*3), storage.RecordID(i))
	}
	var got []uint64
	n := bt.Scan(300, 600, func(k uint64, rid storage.RecordID) bool {
		got = append(got, k)
		if rid != storage.RecordID(k/3) {
			t.Fatalf("key %d has rid %d", k, rid)
		}
		return true
	})
	if n != len(got) {
		t.Fatalf("visited %d but returned %d", len(got), n)
	}
	if len(got) != 101 { // 300, 303, ..., 600
		t.Fatalf("scan returned %d keys", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("scan not ascending")
	}
	if got[0] != 300 || got[len(got)-1] != 600 {
		t.Fatalf("scan bounds wrong: %d..%d", got[0], got[len(got)-1])
	}
}

func TestBTreeScanEarlyStopAndEmpty(t *testing.T) {
	bt := NewBTree("b")
	for i := 0; i < 100; i++ {
		bt.Insert(uint64(i), storage.RecordID(i))
	}
	count := 0
	n := bt.Scan(10, 90, func(k uint64, rid storage.RecordID) bool {
		count++
		return count < 5
	})
	if n != 5 || count != 5 {
		t.Fatalf("early stop visited %d", n)
	}
	if n := bt.Scan(200, 300, func(uint64, storage.RecordID) bool { return true }); n != 0 {
		t.Fatalf("empty range visited %d", n)
	}
	if n := bt.Scan(90, 10, func(uint64, storage.RecordID) bool { return true }); n != 0 {
		t.Fatalf("inverted range visited %d", n)
	}
}

func TestBTreeScanDesc(t *testing.T) {
	bt := NewBTree("b")
	for i := 0; i < 1000; i++ {
		bt.Insert(uint64(i*2), storage.RecordID(i))
	}
	var got []uint64
	bt.ScanDesc(100, 200, func(k uint64, _ storage.RecordID) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 51 {
		t.Fatalf("desc scan returned %d", len(got))
	}
	if got[0] != 200 || got[len(got)-1] != 100 {
		t.Fatalf("desc bounds wrong: %d..%d", got[0], got[len(got)-1])
	}
	// Early stop returns the highest keys only.
	got = got[:0]
	n := bt.ScanDesc(0, 5000, func(k uint64, _ storage.RecordID) bool {
		got = append(got, k)
		return len(got) < 3
	})
	if n != 3 || got[0] != 1998 {
		t.Fatalf("desc early stop: n=%d got=%v", n, got)
	}
}

func TestBTreeSequentialAndReverseInserts(t *testing.T) {
	// Sequential inserts stress rightmost-leaf splits; reverse stresses
	// leftmost.
	for name, gen := range map[string]func(i int) uint64{
		"asc":  func(i int) uint64 { return uint64(i) },
		"desc": func(i int) uint64 { return uint64(100000 - i) },
	} {
		t.Run(name, func(t *testing.T) {
			bt := NewBTree("b")
			const n = 100000
			for i := 0; i < n; i++ {
				bt.Insert(gen(i), storage.RecordID(i))
			}
			if bt.Len() != n {
				t.Fatalf("len %d", bt.Len())
			}
			total := bt.Scan(0, 1<<63, func(uint64, storage.RecordID) bool { return true })
			if total != n {
				t.Fatalf("scan found %d", total)
			}
		})
	}
}

func TestConcurrentMixed(t *testing.T) {
	both(t, func(t *testing.T, idx Index) {
		const workers = 8
		const perWorker = 5000
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := xrand.New(uint64(w + 1))
				base := uint64(w) << 32
				for i := 0; i < perWorker; i++ {
					k := base | uint64(i)
					idx.Insert(k, storage.RecordID(k))
					if rng.Bool(0.3) {
						idx.Delete(k)
						idx.Insert(k, storage.RecordID(k))
					}
					if rid, ok := idx.Lookup(k); !ok || rid != storage.RecordID(k) {
						panic("own key lost")
					}
					// Random cross-worker lookups exercise readers during
					// structural changes.
					idx.Lookup(rng.Uint64() % (workers << 32))
				}
			}(w)
		}
		wg.Wait()
		if idx.Len() != workers*perWorker {
			t.Fatalf("len %d want %d", idx.Len(), workers*perWorker)
		}
	})
}

func TestBTreeConcurrentScanDuringInserts(t *testing.T) {
	bt := NewBTree("b")
	for i := 0; i < 10000; i += 2 {
		bt.Insert(uint64(i), storage.RecordID(i))
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i < 10000; i += 2 {
			bt.Insert(uint64(i), storage.RecordID(i))
		}
		close(stop)
	}()
	// Scanners must always see the pre-existing even keys in order.
	for {
		select {
		case <-stop:
			wg.Wait()
			return
		default:
		}
		prev := int64(-1)
		evens := 0
		bt.Scan(0, 9999, func(k uint64, _ storage.RecordID) bool {
			if int64(k) <= prev {
				t.Errorf("scan out of order: %d after %d", k, prev)
				return false
			}
			prev = int64(k)
			if k%2 == 0 {
				evens++
			}
			return true
		})
		if evens != 5000 {
			t.Fatalf("scan lost pre-existing keys: saw %d evens", evens)
		}
	}
}

func TestHashShardDistribution(t *testing.T) {
	h := NewHash("h", 1000)
	// Sequential keys must spread across shards, not pile into one.
	counts := make(map[*hashShard]int)
	for k := uint64(0); k < 1000; k++ {
		counts[h.shard(k)]++
	}
	if len(counts) < hashShards/2 {
		t.Fatalf("sequential keys hit only %d shards", len(counts))
	}
}

package det

// Planner compiles sequenced batches into per-partition queues. All
// planning state is planner-owned scratch reused across batches, so the
// steady state allocates nothing once queue capacities have grown to the
// workload's footprint. A Planner is not safe for concurrent use; the
// sequencer owns it.
type Planner struct {
	parts int
	// partOf maps a declared (table, key) to its partition; nil means
	// key % parts, matching the engine's default partitioner.
	partOf func(table int32, key uint64) int

	plan   Plan
	counts []int
}

// NewPlanner builds a planner for the given partition count. partOf may be
// nil for the default key-modulo mapping; a mapping that returns an
// out-of-range partition is folded back into range rather than trusted.
func NewPlanner(parts int, partOf func(table int32, key uint64) int) *Planner {
	if parts <= 0 {
		parts = 1
	}
	return &Planner{parts: parts, partOf: partOf}
}

// Parts returns the partition count.
func (pl *Planner) Parts() int { return pl.parts }

// partition resolves an op's partition, defensively folded into range.
func (pl *Planner) partition(op *Op) int {
	if pl.partOf == nil {
		return int(op.Key % uint64(pl.parts))
	}
	p := pl.partOf(op.Table, op.Key) % pl.parts
	if p < 0 {
		p += pl.parts
	}
	return p
}

// PlanBatch compiles txns (already sequenced: index == global priority)
// into the planner's Plan. The returned Plan and everything it references
// are valid until the next PlanBatch call.
//
// Structural guarantees (the FuzzPlanBatch invariants):
//   - every declared op appears in exactly one partition queue;
//   - each queue is sorted by (Txn, Seq): a linear extension of priority;
//   - queue p only holds ops whose key maps to partition p;
//   - within a transaction, every OpReadSend precedes every other op
//     (the hoist that makes Mailbox.Collect deadlock-free);
//   - empty, duplicate-key, and cross-partition access sets are fine.
func (pl *Planner) PlanBatch(txns []TxnPlan) *Plan {
	p := &pl.plan
	p.Txns = len(txns)
	p.canceled.Store(false)

	// Size the scratch.
	if cap(p.Queues) < pl.parts {
		p.Queues = make([][]Op, pl.parts)
	}
	p.Queues = p.Queues[:pl.parts]
	if cap(pl.counts) < pl.parts {
		pl.counts = make([]int, pl.parts)
	}
	pl.counts = pl.counts[:pl.parts]
	for i := range pl.counts {
		pl.counts[i] = 0
	}
	p.Home = growInt32(p.Home, len(txns))
	if cap(p.Mailboxes) < len(txns) {
		// Fresh allocation instead of append: mailboxes hold atomics and
		// carry no state across batches, so growing must not copy them.
		p.Mailboxes = make([]Mailbox, len(txns))
	}
	p.Mailboxes = p.Mailboxes[:len(txns)]

	// Pass 1: count per-partition ops, per-txn sends, and homes.
	for t := range txns {
		ops := txns[t].Ops
		p.Home[t] = -1
		sends := 0
		for i := range ops {
			part := pl.partition(&ops[i])
			pl.counts[part]++
			if i == 0 {
				p.Home[t] = int32(part)
			}
			if ops[i].Kind == OpReadSend {
				sends++
			}
		}
		mb := &p.Mailboxes[t]
		if cap(mb.Vals) < sends {
			mb.Vals = make([]uint64, sends)
		}
		mb.Vals = mb.Vals[:sends]
		mb.pending.Store(int32(sends))
		mb.cancel = &p.canceled
	}

	// Pass 2: bucket-fill the queues in (priority, hoisted-seq) order. The
	// queues come out sorted by construction: transactions are visited in
	// priority order and appends within a transaction follow its hoisted
	// sequence, so no sort is needed.
	for part := 0; part < pl.parts; part++ {
		q := p.Queues[part]
		if cap(q) < pl.counts[part] {
			q = make([]Op, 0, pl.counts[part])
		}
		p.Queues[part] = q[:0]
	}
	for t := range txns {
		ops := txns[t].Ops
		seq := int32(0)
		slot := int32(0)
		// Sends first (the hoist), in declared order.
		for i := range ops {
			if ops[i].Kind != OpReadSend {
				continue
			}
			op := ops[i]
			op.Txn, op.Seq, op.Slot = int32(t), seq, slot
			seq++
			slot++
			part := pl.partition(&op)
			p.Queues[part] = append(p.Queues[part], op)
		}
		// Everything else, in declared order.
		for i := range ops {
			if ops[i].Kind == OpReadSend {
				continue
			}
			op := ops[i]
			op.Txn, op.Seq, op.Slot = int32(t), seq, -1
			seq++
			part := pl.partition(&op)
			p.Queues[part] = append(p.Queues[part], op)
		}
	}
	return p
}

// growInt32 resizes s to n elements, reusing capacity.
func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

//go:build !race

package det

// raceEnabled reports whether the race detector is compiled in; the
// allocation assertions skip under it because instrumentation changes heap
// accounting.
const raceEnabled = false

package det

import (
	"fmt"
	"testing"

	"next700/internal/xrand"
)

// checkPlanInvariants verifies the structural guarantees PlanBatch
// documents. Shared by the unit tests and FuzzPlanBatch.
func checkPlanInvariants(parts int, txns []TxnPlan, p *Plan) error {
	if p.Txns != len(txns) {
		return fmt.Errorf("plan has %d txns, declared %d", p.Txns, len(txns))
	}
	if len(p.Queues) != parts {
		return fmt.Errorf("plan has %d queues, want %d partitions", len(p.Queues), parts)
	}
	// Per-txn multiset of declared ops (keyed by the fields the workload
	// declared), to check every queued op traces back to a declaration and
	// every declaration landed in exactly one queue.
	type declKey struct {
		kind  OpKind
		table int32
		key   uint64
		aux   uint64
	}
	declared := make([]map[declKey]int, len(txns))
	total := 0
	for t := range txns {
		declared[t] = make(map[declKey]int)
		for _, op := range txns[t].Ops {
			declared[t][declKey{op.Kind, op.Table, op.Key, op.Aux}]++
			total++
		}
	}
	queued := 0
	for part, q := range p.Queues {
		lastTxn, lastSeq := int32(-1), int32(-1)
		for i := range q {
			op := &q[i]
			queued++
			// Routing: the op belongs to this partition.
			if want := int(op.Key % uint64(parts)); want != part {
				return fmt.Errorf("partition %d holds key %d (belongs to %d)", part, op.Key, want)
			}
			// Priority: (Txn, Seq) strictly increasing — a linear extension
			// of the global priority order.
			if op.Txn < lastTxn || (op.Txn == lastTxn && op.Seq <= lastSeq) {
				return fmt.Errorf("partition %d order violation at %d: (%d,%d) after (%d,%d)",
					part, i, op.Txn, op.Seq, lastTxn, lastSeq)
			}
			lastTxn, lastSeq = op.Txn, op.Seq
			// Provenance: the op was declared by its transaction.
			if op.Txn < 0 || int(op.Txn) >= len(txns) {
				return fmt.Errorf("partition %d references unknown txn %d", part, op.Txn)
			}
			k := declKey{op.Kind, op.Table, op.Key, op.Aux}
			if declared[op.Txn][k] == 0 {
				return fmt.Errorf("partition %d holds undeclared op %+v for txn %d", part, *op, op.Txn)
			}
			declared[op.Txn][k]--
		}
	}
	if queued != total {
		return fmt.Errorf("%d ops queued, %d declared", queued, total)
	}
	// Per-txn: sends hoisted before everything else, slots dense, mailbox
	// sized to the send count, home = partition of the first declared op.
	sends := make([]int, len(txns))
	minNonSend := make([]int32, len(txns))
	for t := range minNonSend {
		minNonSend[t] = int32(1 << 30)
	}
	maxSend := make([]int32, len(txns))
	for t := range maxSend {
		maxSend[t] = -1
	}
	slotSeen := make(map[[2]int32]bool)
	for _, q := range p.Queues {
		for i := range q {
			op := &q[i]
			if op.Kind == OpReadSend {
				sends[op.Txn]++
				if op.Seq > maxSend[op.Txn] {
					maxSend[op.Txn] = op.Seq
				}
				if op.Slot < 0 || int(op.Slot) >= len(p.Mailboxes[op.Txn].Vals) {
					return fmt.Errorf("txn %d send slot %d out of range", op.Txn, op.Slot)
				}
				sk := [2]int32{op.Txn, op.Slot}
				if slotSeen[sk] {
					return fmt.Errorf("txn %d duplicate send slot %d", op.Txn, op.Slot)
				}
				slotSeen[sk] = true
			} else if op.Seq < minNonSend[op.Txn] {
				minNonSend[op.Txn] = op.Seq
			}
		}
	}
	for t := range txns {
		if maxSend[t] >= 0 && minNonSend[t] < int32(1<<30) && maxSend[t] > minNonSend[t] {
			return fmt.Errorf("txn %d: send at seq %d after non-send at seq %d (hoist violated)",
				t, maxSend[t], minNonSend[t])
		}
		if got := len(p.Mailboxes[t].Vals); got != sends[t] {
			return fmt.Errorf("txn %d mailbox sized %d, has %d sends", t, got, sends[t])
		}
		if got := p.Mailboxes[t].Pending(); got != sends[t] {
			return fmt.Errorf("txn %d mailbox pending %d, has %d sends", t, got, sends[t])
		}
		wantHome := int32(-1)
		if len(txns[t].Ops) > 0 {
			wantHome = int32(txns[t].Ops[0].Key % uint64(parts))
		}
		if p.Home[t] != wantHome {
			return fmt.Errorf("txn %d home %d, want %d", t, p.Home[t], wantHome)
		}
	}
	return nil
}

// randomBatch derives a batch from a seeded RNG. Tiny key domains make
// duplicate and cross-partition access sets the common case, and a txn can
// be empty.
func randomBatch(rng *xrand.RNG, maxTxns int) []TxnPlan {
	n := rng.Intn(maxTxns + 1)
	txns := make([]TxnPlan, n)
	for t := range txns {
		ops := rng.Intn(9) // 0..8 ops, 0 = empty access set
		for i := 0; i < ops; i++ {
			kind := OpKind(rng.Intn(4))
			txns[t].Add(kind, int32(rng.Intn(2)), rng.Uint64n(12), rng.Uint64())
		}
	}
	return txns
}

func TestPlanBatchBasic(t *testing.T) {
	pl := NewPlanner(2, nil)
	var a, b, c TxnPlan
	a.Add(OpUpdate, 0, 0, 1) // partition 0
	a.Add(OpUpdate, 0, 1, 2) // partition 1: cross-partition txn
	b.Add(OpRead, 0, 2, 0)   // partition 0
	// Cross-partition transfer: send from partition 1, receive on 0.
	c.Add(OpRecvUpdate, 0, 4, 10) // declared first...
	c.Add(OpReadSend, 0, 3, 0)    // ...but the send must execute first
	txns := []TxnPlan{a, b, c}

	p := pl.PlanBatch(txns)
	if err := checkPlanInvariants(2, txns, p); err != nil {
		t.Fatal(err)
	}
	// Partition 0: a's key 0, b's key 2, c's recv on key 4.
	q0 := p.Queues[0]
	if len(q0) != 3 || q0[0].Txn != 0 || q0[1].Txn != 1 || q0[2].Txn != 2 {
		t.Fatalf("partition 0 queue wrong: %+v", q0)
	}
	if q0[2].Kind != OpRecvUpdate {
		t.Fatalf("partition 0 tail should be the recv, got %v", q0[2].Kind)
	}
	// Partition 1: a's key 1, c's send on key 3.
	q1 := p.Queues[1]
	if len(q1) != 2 || q1[0].Txn != 0 || q1[1].Kind != OpReadSend {
		t.Fatalf("partition 1 queue wrong: %+v", q1)
	}
	// The hoist gave the send a lower seq than the recv.
	if !(q1[1].Seq < q0[2].Seq) {
		t.Fatalf("send seq %d not before recv seq %d", q1[1].Seq, q0[2].Seq)
	}
	if p.Mailboxes[2].Pending() != 1 {
		t.Fatalf("txn 2 mailbox pending = %d, want 1", p.Mailboxes[2].Pending())
	}
	// Homes follow the first declared op, not the hoisted order.
	if p.Home[0] != 0 || p.Home[1] != 0 || p.Home[2] != 0 {
		t.Fatalf("homes wrong: %v", p.Home)
	}
}

func TestPlanBatchEmptyAndDegenerate(t *testing.T) {
	pl := NewPlanner(4, nil)
	// Empty batch.
	p := pl.PlanBatch(nil)
	if err := checkPlanInvariants(4, nil, p); err != nil {
		t.Fatal(err)
	}
	// Batch of empty transactions.
	txns := make([]TxnPlan, 3)
	p = pl.PlanBatch(txns)
	if err := checkPlanInvariants(4, txns, p); err != nil {
		t.Fatal(err)
	}
	for _, h := range p.Home {
		if h != -1 {
			t.Fatalf("empty txn has home %d", h)
		}
	}
	// Duplicate keys within one transaction stay in declared order.
	var d TxnPlan
	d.Add(OpUpdate, 0, 8, 1)
	d.Add(OpUpdate, 0, 8, 2)
	d.Add(OpRead, 0, 8, 0)
	txns = []TxnPlan{d}
	p = pl.PlanBatch(txns)
	if err := checkPlanInvariants(4, txns, p); err != nil {
		t.Fatal(err)
	}
	q := p.Queues[0]
	if len(q) != 3 || q[0].Aux != 1 || q[1].Aux != 2 || q[2].Kind != OpRead {
		t.Fatalf("duplicate-key order not preserved: %+v", q)
	}
}

func TestPlanBatchScratchReuse(t *testing.T) {
	pl := NewPlanner(4, nil)
	rng := xrand.New(7)
	batch := randomBatch(rng, 32)
	// Warm the scratch to the batch's footprint.
	for i := 0; i < 3; i++ {
		pl.PlanBatch(batch)
	}
	if raceEnabled {
		t.Skip("allocation accounting is distorted by the race detector")
	}
	allocs := testing.AllocsPerRun(100, func() {
		pl.PlanBatch(batch)
	})
	if allocs > 0 {
		t.Errorf("PlanBatch allocates %.1f per batch at steady state, want 0", allocs)
	}
}

func TestMailboxCancel(t *testing.T) {
	pl := NewPlanner(1, nil)
	var a TxnPlan
	a.Add(OpReadSend, 0, 0, 0)
	a.Add(OpRecvUpdate, 0, 0, 0)
	p := pl.PlanBatch([]TxnPlan{a})
	p.Cancel()
	if err := p.Mailboxes[0].Collect(); err != ErrCanceled {
		t.Fatalf("Collect on canceled plan = %v, want ErrCanceled", err)
	}
	// A delivered mailbox collects cleanly regardless.
	p = pl.PlanBatch([]TxnPlan{a})
	p.Mailboxes[0].Send(0, 42)
	if err := p.Mailboxes[0].Collect(); err != nil {
		t.Fatalf("Collect after send: %v", err)
	}
	if p.Mailboxes[0].Vals[0] != 42 {
		t.Fatalf("delivered value %d, want 42", p.Mailboxes[0].Vals[0])
	}
}

func FuzzPlanBatch(f *testing.F) {
	f.Add(uint64(1), uint8(4))
	f.Add(uint64(2), uint8(1))
	f.Add(uint64(0xDEAD), uint8(8))
	f.Add(uint64(42), uint8(3))
	f.Fuzz(func(t *testing.T, seed uint64, partsByte uint8) {
		parts := int(partsByte%8) + 1
		rng := xrand.New(seed)
		txns := randomBatch(rng, 64)
		pl := NewPlanner(parts, nil)
		p := pl.PlanBatch(txns)
		if err := checkPlanInvariants(parts, txns, p); err != nil {
			t.Fatalf("seed %#x parts %d: %v", seed, parts, err)
		}
		// Replan on the same planner (scratch reuse path) and re-check.
		txns2 := randomBatch(rng, 64)
		p = pl.PlanBatch(txns2)
		if err := checkPlanInvariants(parts, txns2, p); err != nil {
			t.Fatalf("seed %#x parts %d (reuse): %v", seed, parts, err)
		}
	})
}

// Package det implements queue-oriented deterministic execution planning in
// the style of Q-Store ("A Queue-oriented Transaction Processing Paradigm"):
// a sequenced batch of transactions with declared access sets is compiled
// into per-partition operation queues ordered by global transaction
// priority. Execution then needs no locks and no validation — each record
// belongs to exactly one partition, every access to it sits in that
// partition's queue in priority order, so draining the queues serially per
// partition is equivalent to executing the whole batch serially in priority
// order. Conflicts cannot happen, which is why deterministic execution is
// abort-free by construction.
//
// Cross-partition transactions are stitched together with delivery
// dependencies: an OpReadSend on one partition reads a value and delivers it
// into the transaction's mailbox; an OpRecvUpdate on another partition
// collects the mailbox before applying its write. The planner hoists every
// send to the front of its fragment, so a fragment finishes all its sends
// before it can block on a collect — combined with priority-ordered queues
// this makes the dependency graph acyclic and the executors deadlock-free
// (see the progress argument on Mailbox.Collect).
//
// The package is pure planning and synchronization: it does not touch the
// engine, which is what makes PlanBatch independently fuzzable
// (FuzzPlanBatch) against its structural invariants.
package det

import (
	"errors"
	"runtime"
	"sync/atomic"
)

// OpKind classifies a declared operation.
type OpKind uint8

const (
	// OpRead is a point read of Key.
	OpRead OpKind = iota
	// OpUpdate is a read-modify-write of Key; Aux is workload payload
	// (e.g. an increment amount).
	OpUpdate
	// OpReadSend reads Key and delivers the workload-extracted value into
	// the transaction's mailbox at Slot. Sends are hoisted to the front of
	// their fragment by the planner.
	OpReadSend
	// OpRecvUpdate collects the transaction's mailbox (waiting for every
	// outstanding send) and then updates Key using the delivered values.
	OpRecvUpdate
)

// String names the kind for diagnostics.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpUpdate:
		return "update"
	case OpReadSend:
		return "read-send"
	case OpRecvUpdate:
		return "recv-update"
	default:
		return "unknown"
	}
}

// Op is one declared operation. The workload fills Kind, Table, Key, and
// Aux when declaring a TxnPlan; the planner assigns Txn (the batch-local
// priority), Seq (the execution order within the transaction), and Slot
// (mailbox slot for sends).
type Op struct {
	Txn   int32
	Seq   int32
	Slot  int32
	Kind  OpKind
	Table int32
	Key   uint64
	Aux   uint64
}

// TxnPlan is one transaction's declared access set, in declared order.
type TxnPlan struct {
	Ops []Op
}

// Reset clears the plan for reuse, keeping capacity.
func (p *TxnPlan) Reset() { p.Ops = p.Ops[:0] }

// Add declares an operation (fluent helper for workloads and tests).
func (p *TxnPlan) Add(kind OpKind, table int32, key uint64, aux uint64) {
	p.Ops = append(p.Ops, Op{Kind: kind, Table: table, Key: key, Aux: aux})
}

// ErrCanceled is returned by Mailbox.Collect when the batch was canceled
// (an executor hit a non-conflict fatal error, e.g. a dead log device).
var ErrCanceled = errors.New("det: batch canceled")

// Mailbox carries delivery-dependency values for one transaction. Senders
// store into disjoint slots and decrement the outstanding count; the
// receiving executor collects once the count reaches zero. The zero value
// is a mailbox with no pending sends.
type Mailbox struct {
	// Vals holds delivered values, indexed by the sending op's Slot.
	Vals    []uint64
	pending atomic.Int32
	cancel  *atomic.Bool
}

// Send delivers v into slot and retires one outstanding send. The plain
// store is ordered before the atomic decrement, and Collect's acquire load
// of the count ordering after it, so receivers never observe a torn slot.
func (m *Mailbox) Send(slot int32, v uint64) {
	m.Vals[slot] = v
	m.pending.Add(-1)
}

// Collect waits until every outstanding send has been delivered, then
// returns. Progress argument: queues are priority-ordered and every send is
// hoisted before any collect within its fragment, so the transaction
// blocking here (the batch's highest-priority incomplete transaction on
// this partition) only waits on fragments that are at or before the head of
// their own queues and contain no collect before the needed send — they
// run to completion without waiting on anyone. The spin therefore
// terminates unless the batch is canceled, which is the error path.
func (m *Mailbox) Collect() error {
	for m.pending.Load() > 0 {
		if m.cancel != nil && m.cancel.Load() {
			return ErrCanceled
		}
		runtime.Gosched()
	}
	return nil
}

// Pending returns the number of sends not yet delivered (test hook).
func (m *Mailbox) Pending() int { return int(m.pending.Load()) }

// Plan is a compiled batch: per-partition operation queues in global
// priority order plus the per-transaction mailboxes. All slices are
// planner-owned scratch, valid until the next PlanBatch call on the same
// Planner.
type Plan struct {
	// Queues[p] holds partition p's operations, sorted by (Txn, hoisted
	// Seq) — a linear extension of global priority.
	Queues [][]Op
	// Home[t] is the partition that accounts transaction t's commit (the
	// partition of its first declared op; -1 for an empty transaction).
	Home []int32
	// Mailboxes[t] is transaction t's delivery mailbox.
	Mailboxes []Mailbox
	// Txns is the number of transactions in the batch (including empty
	// ones, which commit vacuously).
	Txns int

	canceled atomic.Bool
}

// Cancel aborts the batch: every parked Collect returns ErrCanceled so the
// partition executors can unwind instead of spinning forever.
func (p *Plan) Cancel() { p.canceled.Store(true) }

// Canceled reports whether the batch was canceled.
func (p *Plan) Canceled() bool { return p.canceled.Load() }

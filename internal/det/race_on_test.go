//go:build race

package det

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true

package verify

import (
	"fmt"
	"sort"
	"strings"
)

// Class is an Adya-style isolation phenomenon class.
type Class uint8

const (
	// ClassG0 covers dirty writes: ww-only serialization cycles and every
	// structural corruption of the version chains (forks, lost updates,
	// writes over aborted or unknown versions).
	ClassG0 Class = iota
	// ClassG1a is an aborted read: a committed transaction observed a
	// version written by an aborted transaction (or by no recorded writer).
	ClassG1a
	// ClassG1b is an intermediate read: a committed transaction observed a
	// version that was not its writer's final write to that key.
	ClassG1b
	// ClassG1c is a cycle of committed information flow (ww and wr edges).
	ClassG1c
	// ClassG2 is a cycle that needs at least one rw anti-dependency edge —
	// the phenomenon (e.g. write skew) weaker isolation levels admit.
	ClassG2
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassG0:
		return "G0 (dirty write)"
	case ClassG1a:
		return "G1a (aborted read)"
	case ClassG1b:
		return "G1b (intermediate read)"
	case ClassG1c:
		return "G1c (cyclic information flow)"
	case ClassG2:
		return "G2 (anti-dependency cycle)"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// EdgeKind classifies a dependency-graph edge.
type EdgeKind uint8

const (
	// EdgeWW orders a version's writer before its overwriter.
	EdgeWW EdgeKind = iota
	// EdgeWR orders a version's writer before its readers (reads-from).
	EdgeWR
	// EdgeRW orders a version's readers before its overwriter
	// (anti-dependency).
	EdgeRW
)

// String implements fmt.Stringer.
func (k EdgeKind) String() string {
	switch k {
	case EdgeWW:
		return "ww"
	case EdgeWR:
		return "wr"
	default:
		return "rw"
	}
}

// Edge is one dependency between two recorded transactions, pivoting on a
// concrete version of a concrete key — the unit a witness is made of.
type Edge struct {
	From, To int64
	Kind     EdgeKind
	Key      uint64
	// Stamp is the version the edge pivots on: the overwritten version for
	// ww, the version read for wr and rw.
	Stamp int64
}

// String implements fmt.Stringer.
func (e Edge) String() string {
	return fmt.Sprintf("txn %d -%s[key %d @v%d]-> txn %d", e.From, e.Kind, e.Key, e.Stamp, e.To)
}

// Anomaly is one detected phenomenon with a concrete witness: for cycle
// classes the witness is the offending dependency cycle; for read anomalies
// it is the edge from the offending writer to the reader.
type Anomaly struct {
	Class   Class
	Message string
	Witness []Edge
}

// String implements fmt.Stringer.
func (a Anomaly) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s", a.Class, a.Message)
	for _, e := range a.Witness {
		b.WriteString("\n    ")
		b.WriteString(e.String())
	}
	return b.String()
}

// maxAnomalies caps the anomalies retained in a report. A genuinely broken
// protocol produces thousands of identical read anomalies; the first few
// plus a truncation marker are what a human needs.
const maxAnomalies = 64

// Report is the result of checking a history.
type Report struct {
	// Txns is the number of committed transactions checked.
	Txns int
	// AbortedTxns is the number of aborted attempts recorded.
	AbortedTxns int
	// Edges is the number of distinct dependency edges built.
	Edges int
	// Anomalies are the detected phenomena, capped at maxAnomalies.
	Anomalies []Anomaly
	// Truncated reports that anomalies beyond the cap were dropped.
	Truncated bool
}

// Ok reports whether the history is anomaly-free.
func (r *Report) Ok() bool { return len(r.Anomalies) == 0 }

// String renders a one-line summary.
func (r *Report) String() string {
	return fmt.Sprintf("verify: %d txns (%d aborted attempts), %d edges, %d anomalies",
		r.Txns, r.AbortedTxns, r.Edges, len(r.Anomalies))
}

func (r *Report) addAnomaly(class Class, witness []Edge, format string, args ...interface{}) {
	if len(r.Anomalies) >= maxAnomalies {
		r.Truncated = true
		return
	}
	r.Anomalies = append(r.Anomalies, Anomaly{Class: class, Message: fmt.Sprintf(format, args...), Witness: witness})
}

// writeInfo indexes one committed write by its stamp.
type writeInfo struct {
	txn  int64
	prev int64
	key  uint64
	// intermediate marks a stamp the same transaction later overwrote on the
	// same key — observable by others only as a G1b violation.
	intermediate bool
}

// Check analyzes the recorded history and returns a report. It must be
// called after all recording workers have quiesced. Attempts still open are
// treated as aborted.
//
// final, when non-nil, maps each key to the version stamp read from the
// database after the run; the checker then additionally verifies that every
// key's reconstructed version chain ends at exactly that version (a
// committed write beyond it, or a final version off the chain, is a lost
// update). A nil final skips that cross-check.
func (h *History) Check(final map[uint64]int64) *Report {
	rep := &Report{}

	// Gather committed transactions and aborted writes from every worker.
	var txns []Txn
	aborted := make(map[int64]abortedWrite)
	for _, w := range h.workers {
		if w.curStart >= 0 {
			w.Abort()
		}
		for _, sp := range w.spans {
			txns = append(txns, Txn{ID: sp.id, Ops: w.ops[sp.start:sp.end]})
		}
		for _, aw := range w.aborted {
			aborted[aw.stamp] = aw
		}
	}
	rep.Txns = len(txns)
	rep.AbortedTxns = len(aborted)

	// Index committed writes by stamp, marking intra-transaction
	// intermediate versions.
	writer := make(map[int64]writeInfo)
	for _, tx := range txns {
		for i, op := range tx.Ops {
			if !op.Write {
				continue
			}
			if w, dup := writer[op.Stamp]; dup {
				rep.addAnomaly(ClassG0,
					[]Edge{{From: w.txn, To: tx.ID, Kind: EdgeWW, Key: op.Key, Stamp: op.Stamp}},
					"version %d written by both txn %d and txn %d", op.Stamp, w.txn, tx.ID)
				continue
			}
			inter := false
			for j := i + 1; j < len(tx.Ops); j++ {
				if tx.Ops[j].Write && tx.Ops[j].Key == op.Key {
					inter = true
					break
				}
			}
			writer[op.Stamp] = writeInfo{txn: tx.ID, prev: op.Prev, key: op.Key, intermediate: inter}
		}
	}

	// Reconstruct per-key version chains: succ[key][v] is the committed
	// version that overwrote v on key. Version 0 is per-key (the load
	// state), so anti-dependencies on never-overwritten loader versions are
	// tracked too — that is what makes fresh-key write skew visible.
	succ := make(map[uint64]map[int64]int64)
	for _, tx := range txns {
		for _, op := range tx.Ops {
			if !op.Write {
				continue
			}
			m := succ[op.Key]
			if m == nil {
				m = make(map[int64]int64)
				succ[op.Key] = m
			}
			if prior, dup := m[op.Prev]; dup {
				rep.addAnomaly(ClassG0,
					[]Edge{
						{From: writer[prior].txn, To: tx.ID, Kind: EdgeWW, Key: op.Key, Stamp: op.Prev},
					},
					"key %d: version %d overwritten twice (by txn %d as v%d and txn %d as v%d): version fork / lost update",
					op.Key, op.Prev, writer[prior].txn, prior, tx.ID, op.Stamp)
				continue
			}
			m[op.Prev] = op.Stamp
			if op.Prev == 0 {
				continue
			}
			if aw, ok := aborted[op.Prev]; ok {
				rep.addAnomaly(ClassG0,
					[]Edge{{From: aw.txn, To: tx.ID, Kind: EdgeWW, Key: op.Key, Stamp: op.Prev}},
					"key %d: txn %d overwrote version %d written by aborted txn %d (dirty write installed)",
					op.Key, tx.ID, op.Prev, aw.txn)
			} else if _, ok := writer[op.Prev]; !ok {
				rep.addAnomaly(ClassG0,
					[]Edge{{From: 0, To: tx.ID, Kind: EdgeWW, Key: op.Key, Stamp: op.Prev}},
					"key %d: txn %d overwrote version %d which no recorded transaction wrote",
					op.Key, tx.ID, op.Prev)
			}
		}
	}

	// Walk each chain from the load version: cycles and unreachable
	// committed writes are structural G0 anomalies; with a final state the
	// chain must end exactly at the observed version.
	heads := make(map[uint64]int64, len(succ))
	for key, m := range succ {
		seen := make(map[int64]bool, len(m))
		cur := int64(0)
		for {
			next, ok := m[cur]
			if !ok {
				break
			}
			if seen[next] {
				rep.addAnomaly(ClassG0, []Edge{{From: writer[next].txn, To: writer[next].txn, Kind: EdgeWW, Key: key, Stamp: next}},
					"key %d: cycle in version chain at v%d", key, next)
				break
			}
			seen[next] = true
			cur = next
		}
		heads[key] = cur
		for prev, stamp := range m {
			if !seen[stamp] {
				w := writer[stamp]
				rep.addAnomaly(ClassG0,
					[]Edge{{From: w.txn, To: w.txn, Kind: EdgeWW, Key: key, Stamp: stamp}},
					"key %d: committed version %d (txn %d, over v%d) unreachable from the load state: lost update",
					key, stamp, w.txn, prev)
			}
		}
	}
	if final != nil {
		keys := make([]uint64, 0, len(final))
		for key := range final {
			keys = append(keys, key)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, key := range keys {
			if got, want := final[key], heads[key]; got != want {
				w := writer[want]
				rep.addAnomaly(ClassG0,
					[]Edge{{From: w.txn, To: w.txn, Kind: EdgeWW, Key: key, Stamp: want}},
					"key %d: final database version is v%d but the version chain ends at v%d: lost update",
					key, got, want)
			}
		}
	}

	// Build the dependency graph and flag read anomalies along the way.
	adj := make(map[int64][]Edge)
	dedup := make(map[Edge]bool)
	addEdge := func(e Edge) {
		if e.From == e.To || dedup[e] {
			return
		}
		dedup[e] = true
		adj[e.From] = append(adj[e.From], e)
		rep.Edges++
	}
	for _, tx := range txns {
		for _, op := range tx.Ops {
			if op.Write {
				if op.Prev != 0 {
					if w, ok := writer[op.Prev]; ok {
						addEdge(Edge{From: w.txn, To: tx.ID, Kind: EdgeWW, Key: op.Key, Stamp: op.Prev})
					}
				}
				continue
			}
			if op.Stamp != 0 {
				if aw, ok := aborted[op.Stamp]; ok {
					rep.addAnomaly(ClassG1a,
						[]Edge{{From: aw.txn, To: tx.ID, Kind: EdgeWR, Key: op.Key, Stamp: op.Stamp}},
						"txn %d read version %d of key %d written by aborted txn %d",
						tx.ID, op.Stamp, op.Key, aw.txn)
				} else if w, ok := writer[op.Stamp]; ok {
					if w.intermediate && w.txn != tx.ID {
						rep.addAnomaly(ClassG1b,
							[]Edge{{From: w.txn, To: tx.ID, Kind: EdgeWR, Key: op.Key, Stamp: op.Stamp}},
							"txn %d read intermediate version %d of key %d (txn %d overwrote it within the same transaction)",
							tx.ID, op.Stamp, op.Key, w.txn)
					}
					addEdge(Edge{From: w.txn, To: tx.ID, Kind: EdgeWR, Key: op.Key, Stamp: op.Stamp})
				} else {
					rep.addAnomaly(ClassG1a,
						[]Edge{{From: 0, To: tx.ID, Kind: EdgeWR, Key: op.Key, Stamp: op.Stamp}},
						"txn %d read version %d of key %d which no recorded transaction committed (dirty read)",
						tx.ID, op.Stamp, op.Key)
				}
			}
			if m := succ[op.Key]; m != nil {
				if next, ok := m[op.Stamp]; ok {
					if w, ok := writer[next]; ok {
						addEdge(Edge{From: tx.ID, To: w.txn, Kind: EdgeRW, Key: op.Key, Stamp: op.Stamp})
					}
				}
			}
		}
	}

	// Layered cycle search, most specific class first: a cycle of ww edges
	// alone is G0; one that needs wr edges is G1c; one that needs rw
	// anti-dependencies is G2.
	if cyc := findCycle(adj, func(k EdgeKind) bool { return k == EdgeWW }); cyc != nil {
		rep.addAnomaly(ClassG0, cyc, "write-write dependency cycle through %d transactions", cycleLen(cyc))
	} else if cyc := findCycle(adj, func(k EdgeKind) bool { return k != EdgeRW }); cyc != nil {
		rep.addAnomaly(ClassG1c, cyc, "committed information-flow cycle through %d transactions", cycleLen(cyc))
	} else if cyc := findCycle(adj, func(EdgeKind) bool { return true }); cyc != nil {
		rep.addAnomaly(ClassG2, cyc, "serialization cycle with anti-dependencies through %d transactions", cycleLen(cyc))
	}
	return rep
}

func cycleLen(cyc []Edge) int { return len(cyc) }

// findCycle searches the subgraph of edges whose kind passes allow and
// returns one cycle as its edge sequence, or nil. Nodes are visited in
// sorted order so a given history yields a deterministic witness.
func findCycle(adj map[int64][]Edge, allow func(EdgeKind) bool) []Edge {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[int64]int, len(adj))
	nodes := make([]int64, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	var path []Edge
	var cycle []Edge
	var dfs func(n int64) bool
	dfs = func(n int64) bool {
		color[n] = gray
		for _, e := range adj[n] {
			if !allow(e.Kind) {
				continue
			}
			switch color[e.To] {
			case gray:
				// Unwind the path back to where the cycle closes.
				i := len(path)
				for i > 0 && path[i-1].From != e.To {
					i--
				}
				if i > 0 {
					i--
				}
				cycle = append(append(cycle, path[i:]...), e)
				return true
			case white:
				path = append(path, e)
				if dfs(e.To) {
					return true
				}
				path = path[:len(path)-1]
			}
		}
		color[n] = black
		return false
	}
	for _, n := range nodes {
		if color[n] == white {
			if dfs(n) {
				return cycle
			}
		}
	}
	return nil
}

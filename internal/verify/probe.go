package verify

import (
	"fmt"
	"runtime"

	"next700/internal/core"
	"next700/internal/storage"
)

// Recordable is implemented by workloads that can record a stamped history
// for verification. The harness's opt-in Verify mode attaches a History
// before setup and checks it (against the workload's final versions) after
// the run.
type Recordable interface {
	// AttachHistory installs the history the workload must record into.
	AttachHistory(h *History)
	// FinalVersions reads the final version stamp of every verified key
	// from the quiesced engine.
	FinalVersions(e *core.Engine) (map[uint64]int64, error)
}

// maxProbeOps bounds a probe transaction's footprint so key planning fits
// in a stack array on the driver hot path.
const maxProbeOps = 16

// ProbeConfig parameterizes the stamped probe workload.
type ProbeConfig struct {
	// Keys is the table size; small values make the run contended
	// (default 16).
	Keys uint64
	// MinOps and MaxOps bound the distinct keys touched per transaction
	// (defaults 2 and 4; MaxOps is capped at 16).
	MinOps, MaxOps int
	// WriteRatio is the per-op probability of an update (default 0.5).
	WriteRatio float64
	// Index selects the primary index family (hash default, btree for the
	// ordered variant).
	Index core.IndexKind
	// NoInterleave disables the per-op runtime.Gosched that forces dense
	// transaction interleavings (on by default; that is the point of a
	// verification run).
	NoInterleave bool
	// CrossFraction is the probability a deterministic-probe transaction
	// appends a delivery-dependency pair (OpReadSend -> OpRecvUpdate), so
	// the conformance matrix covers cross-partition stitching too. Used by
	// DetProbe only; the interactive Probe ignores it.
	CrossFraction float64
}

func (c ProbeConfig) normalized() ProbeConfig {
	if c.Keys == 0 {
		c.Keys = 16
	}
	if c.MinOps <= 0 {
		c.MinOps = 2
	}
	if c.MaxOps < c.MinOps {
		c.MaxOps = c.MinOps + 2
	}
	if c.MaxOps > maxProbeOps {
		c.MaxOps = maxProbeOps
	}
	if c.WriteRatio <= 0 {
		c.WriteRatio = 0.5
	}
	return c
}

// Probe is the stamped verification workload: each transaction touches a
// few distinct keys of a two-column (stamp, prev) table, writing fresh
// stamps and recording every observation into a History. It implements the
// workload interface the harness drives (Name/Setup/RunOne) plus
// Recordable, so any harness run — including next700-bench -verify — can
// turn a measurement into a checked history.
type Probe struct {
	cfg  ProbeConfig
	hist *History
	sch  *storage.Schema
	tbl  *core.Table
}

// NewProbe builds a probe with defaults applied.
func NewProbe(cfg ProbeConfig) *Probe {
	return &Probe{cfg: cfg.normalized()}
}

// Name identifies the workload in reports.
func (p *Probe) Name() string { return "verify" }

// Config returns the normalized configuration.
func (p *Probe) Config() ProbeConfig { return p.cfg }

// History returns the attached history (nil until attached or Setup).
func (p *Probe) History() *History { return p.hist }

// AttachHistory implements Recordable.
func (p *Probe) AttachHistory(h *History) { p.hist = h }

// Setup creates and loads the stamped table. If no history was attached, a
// fresh one sized to the engine's worker count is created.
func (p *Probe) Setup(e *core.Engine) error {
	if p.hist == nil {
		p.hist = NewHistory(e.Config().Threads)
	}
	p.sch = storage.MustSchema("verify_probe", storage.I64("stamp"), storage.I64("prev"))
	tbl, err := e.CreateTable(p.sch, p.cfg.Index)
	if err != nil {
		return err
	}
	p.tbl = tbl
	row := p.sch.NewRow()
	for k := uint64(0); k < p.cfg.Keys; k++ {
		p.sch.SetInt64(row, 0, 0) // stamp 0: the loader's version
		p.sch.SetInt64(row, 1, -1)
		if err := e.Load(tbl, k, row); err != nil {
			return err
		}
	}
	return nil
}

// RunOne executes one stamped transaction, recording committed reads and
// writes (and aborted attempts) into the worker's recorder. The key plan is
// drawn before the body so retried attempts replay the same plan.
func (p *Probe) RunOne(tx *core.Tx) error {
	rec := p.hist.Recorder(tx.ThreadID())
	rng := tx.RNG()
	n := p.cfg.MinOps
	if spread := p.cfg.MaxOps - p.cfg.MinOps; spread > 0 {
		n += rng.Intn(spread + 1)
	}
	var keys [maxProbeOps]uint64
	var writeMask uint32
	for i := 0; i < n; i++ {
		for {
			k := rng.Uint64n(p.cfg.Keys)
			dup := false
			for j := 0; j < i; j++ {
				if keys[j] == k {
					dup = true
					break
				}
			}
			if !dup {
				keys[i] = k
				break
			}
		}
		if rng.Bool(p.cfg.WriteRatio) {
			writeMask |= 1 << i
		}
	}
	err := tx.Run(func(tx *core.Tx) error {
		rec.Begin()
		for i := 0; i < n; i++ {
			if !p.cfg.NoInterleave {
				runtime.Gosched()
			}
			k := keys[i]
			if writeMask&(1<<i) != 0 {
				r, err := tx.Update(p.tbl, k)
				if err != nil {
					return err
				}
				prev := p.sch.GetInt64(r, 0)
				stamp := rec.Write(k, prev)
				p.sch.SetInt64(r, 0, stamp)
				p.sch.SetInt64(r, 1, prev)
			} else {
				r, err := tx.Read(p.tbl, k)
				if err != nil {
					return err
				}
				rec.Read(k, p.sch.GetInt64(r, 0))
			}
		}
		return nil
	})
	if err != nil {
		rec.Abort()
		return err
	}
	rec.Commit()
	return nil
}

// FinalVersions implements Recordable: it reads every key's final stamp
// from the quiesced engine so Check can cross-verify the chain heads.
func (p *Probe) FinalVersions(e *core.Engine) (map[uint64]int64, error) {
	if p.tbl == nil {
		return nil, fmt.Errorf("verify: probe not set up")
	}
	final := make(map[uint64]int64, p.cfg.Keys)
	tx := e.NewTx(0, 1)
	err := tx.Run(func(tx *core.Tx) error {
		for k := uint64(0); k < p.cfg.Keys; k++ {
			r, err := tx.Read(p.tbl, k)
			if err != nil {
				return err
			}
			final[k] = p.sch.GetInt64(r, 0)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return final, nil
}

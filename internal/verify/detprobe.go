package verify

import (
	"fmt"

	"next700/internal/core"
	"next700/internal/det"
	"next700/internal/storage"
	"next700/internal/xrand"
)

// DetProbe is the deterministic-execution counterpart of Probe: the same
// stamped (stamp, prev) table and the same recorded-history oracle, driven
// through declared access sets instead of interactive transactions. It
// implements the workload.DeclaredAccess shape (Name/Setup/PlanTxn/ExecOp)
// plus Recordable, so harness.RunDet with Verify on turns a deterministic
// run into a checked history — the row the conformance matrix adds for the
// queue-oriented executor.
//
// Recording is deferred: partition executors run concurrently, but a
// Recorder is single-goroutine, so each executed op writes its observation
// into a disjoint (txn, seq) slot of the probe's observation matrix (slots
// are disjoint because the planner assigns each op a unique dense Seq
// within its transaction — no two goroutines ever share a slot). After the
// batch barrier, EndBatch flushes the matrix into one Recorder in priority
// order on the sequencer goroutine. Stamps are still drawn atomically at
// execution time (History.NextStamp), so chains reflect the true install
// order; Recorder.WriteStamped exists precisely for this split.
type DetProbe struct {
	cfg  ProbeConfig
	hist *History
	sch  *storage.Schema
	tbl  *core.Table

	// obs[t][s] is transaction t's observation for planned op Seq s in the
	// current batch; txns is the batch's transaction count.
	obs  [][]detObs
	txns int
}

// detObs is one deferred observation.
type detObs struct {
	key   uint64
	stamp int64
	prev  int64
	write bool
}

// NewDetProbe builds a deterministic probe with defaults applied.
func NewDetProbe(cfg ProbeConfig) *DetProbe {
	return &DetProbe{cfg: cfg.normalized()}
}

// Name identifies the workload in reports.
func (p *DetProbe) Name() string { return "verify-det" }

// History returns the attached history (nil until attached or Setup).
func (p *DetProbe) History() *History { return p.hist }

// AttachHistory implements Recordable.
func (p *DetProbe) AttachHistory(h *History) { p.hist = h }

// Setup creates and loads the stamped table (same layout as Probe).
func (p *DetProbe) Setup(e *core.Engine) error {
	if p.hist == nil {
		p.hist = NewHistory(1)
	}
	p.sch = storage.MustSchema("verify_probe", storage.I64("stamp"), storage.I64("prev"))
	tbl, err := e.CreateTable(p.sch, p.cfg.Index)
	if err != nil {
		return err
	}
	p.tbl = tbl
	row := p.sch.NewRow()
	for k := uint64(0); k < p.cfg.Keys; k++ {
		p.sch.SetInt64(row, 0, 0) // stamp 0: the loader's version
		p.sch.SetInt64(row, 1, -1)
		if err := e.Load(tbl, k, row); err != nil {
			return err
		}
	}
	return nil
}

// BeginBatch implements workload.DetBatchObserver: a new batch starts with
// an empty observation matrix.
func (p *DetProbe) BeginBatch() { p.txns = 0 }

// PlanTxn implements the DeclaredAccess planning half: a few distinct keys,
// a seeded write mask, and optionally one delivery-dependency pair. The
// observation row is sized here, when the op count is known.
func (p *DetProbe) PlanTxn(rng *xrand.RNG, plan *det.TxnPlan) {
	n := p.cfg.MinOps
	if spread := p.cfg.MaxOps - p.cfg.MinOps; spread > 0 {
		n += rng.Intn(spread + 1)
	}
	cross := p.cfg.CrossFraction > 0 && rng.Bool(p.cfg.CrossFraction)
	if cross {
		n -= 2
		if n < 0 {
			n = 0
		}
	}
	var keys [maxProbeOps]uint64
	for i := 0; i < n; i++ {
		keys[i] = p.distinctKey(rng, keys[:i])
		if rng.Bool(p.cfg.WriteRatio) {
			plan.Add(det.OpUpdate, 0, keys[i], 0)
		} else {
			plan.Add(det.OpRead, 0, keys[i], 0)
		}
	}
	if cross {
		src := p.distinctKey(rng, keys[:n])
		keys[n] = src
		dst := p.distinctKey(rng, keys[:n+1])
		// Recv declared before send: the planner's hoist is part of what the
		// conformance run must exercise.
		plan.Add(det.OpRecvUpdate, 0, dst, 0)
		plan.Add(det.OpReadSend, 0, src, 0)
	}

	t := p.txns
	p.txns++
	if t >= len(p.obs) {
		p.obs = append(p.obs, nil)
	}
	if cap(p.obs[t]) < len(plan.Ops) {
		p.obs[t] = make([]detObs, len(plan.Ops))
	}
	p.obs[t] = p.obs[t][:len(plan.Ops)]
}

// distinctKey draws a key not already in used. The probe keyspace is tiny
// by design, so this bounds attempts and then scans for any free key.
func (p *DetProbe) distinctKey(rng *xrand.RNG, used []uint64) uint64 {
	contains := func(k uint64) bool {
		for _, u := range used {
			if u == k {
				return true
			}
		}
		return false
	}
	for attempt := 0; attempt < 32; attempt++ {
		if k := rng.Uint64n(p.cfg.Keys); !contains(k) {
			return k
		}
	}
	for k := uint64(0); k < p.cfg.Keys; k++ {
		if !contains(k) {
			return k
		}
	}
	return 0
}

// ExecOp implements the DeclaredAccess execution half, writing the
// observation into the op's private (txn, seq) slot.
func (p *DetProbe) ExecOp(tx *core.Tx, op det.Op, mb *det.Mailbox) error {
	o := &p.obs[op.Txn][op.Seq]
	switch op.Kind {
	case det.OpRead, det.OpReadSend:
		row, err := tx.Read(p.tbl, op.Key)
		if err != nil {
			return err
		}
		stamp := p.sch.GetInt64(row, 0)
		if op.Kind == det.OpReadSend {
			mb.Send(op.Slot, uint64(stamp))
		}
		*o = detObs{key: op.Key, stamp: stamp}
		return nil
	case det.OpUpdate, det.OpRecvUpdate:
		if op.Kind == det.OpRecvUpdate {
			// The delivered value participates only as a read the sending op
			// already recorded; the recv's write installs a fresh stamp.
			if err := mb.Collect(); err != nil {
				return err
			}
		}
		row, err := tx.Update(p.tbl, op.Key)
		if err != nil {
			return err
		}
		prev := p.sch.GetInt64(row, 0)
		stamp := p.hist.NextStamp()
		p.sch.SetInt64(row, 0, stamp)
		p.sch.SetInt64(row, 1, prev)
		*o = detObs{key: op.Key, stamp: stamp, prev: prev, write: true}
		return nil
	default:
		return fmt.Errorf("verify: detprobe cannot execute op kind %v", op.Kind)
	}
}

// EndBatch implements workload.DetBatchObserver: after the batch barrier,
// flush the observation matrix into one Recorder in priority order. Every
// transaction in a completed batch committed (deterministic execution is
// abort-free), so every flushed attempt commits.
func (p *DetProbe) EndBatch() {
	rec := p.hist.Recorder(0)
	for t := 0; t < p.txns; t++ {
		rec.Begin()
		for i := range p.obs[t] {
			o := &p.obs[t][i]
			if o.write {
				rec.WriteStamped(o.key, o.stamp, o.prev)
			} else {
				rec.Read(o.key, o.stamp)
			}
		}
		rec.Commit()
	}
}

// FinalVersions implements Recordable (same contract as Probe).
func (p *DetProbe) FinalVersions(e *core.Engine) (map[uint64]int64, error) {
	if p.tbl == nil {
		return nil, fmt.Errorf("verify: det probe not set up")
	}
	final := make(map[uint64]int64, p.cfg.Keys)
	tx := e.NewTx(0, 1)
	err := tx.Run(func(tx *core.Tx) error {
		for k := uint64(0); k < p.cfg.Keys; k++ {
			r, err := tx.Read(p.tbl, k)
			if err != nil {
				return err
			}
			final[k] = p.sch.GetInt64(r, 0)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return final, nil
}

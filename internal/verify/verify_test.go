package verify

import "testing"

// The negative controls: hand-built histories with known anomalies must be
// flagged with the right class and a concrete witness. A checker that cannot
// detect the phenomena it claims to rule out proves nothing when it passes.

// firstOfClass returns the first anomaly of the wanted class, failing the
// test if none exists or its witness is empty.
func firstOfClass(t *testing.T, rep *Report, class Class) Anomaly {
	t.Helper()
	for _, a := range rep.Anomalies {
		if a.Class != class {
			continue
		}
		if len(a.Witness) == 0 {
			t.Fatalf("%s anomaly has no witness: %s", class, a.Message)
		}
		return a
	}
	t.Fatalf("no %s anomaly reported; got %d anomalies: %v", class, len(rep.Anomalies), rep.Anomalies)
	return Anomaly{}
}

// TestCleanHistory: a serial history is anomaly-free and the report carries
// the recorded counts.
func TestCleanHistory(t *testing.T) {
	h := NewHistory(1)
	r := h.Recorder(0)

	r.Begin()
	r.Read(1, 0)
	s1 := r.Write(1, 0)
	r.Commit()

	r.Begin()
	r.Read(1, s1)
	s2 := r.Write(1, s1)
	r.Commit()

	rep := h.Check(map[uint64]int64{1: s2})
	if !rep.Ok() {
		t.Fatalf("clean history reported anomalies: %v", rep.Anomalies)
	}
	if rep.Txns != 2 || rep.AbortedTxns != 0 {
		t.Fatalf("counts: %s", rep)
	}
	if rep.Edges == 0 {
		t.Fatal("no dependency edges built for a reads-from chain")
	}
}

// TestDetectsG0DirtyWrite: two transactions whose writes interleave on two
// keys form a ww-only cycle — the defining G0 history.
func TestDetectsG0DirtyWrite(t *testing.T) {
	h := NewHistory(2)
	r1, r2 := h.Recorder(0), h.Recorder(1)

	r1.Begin()
	s1 := r1.Write(1, 0)
	r2.Begin()
	s2 := r2.Write(2, 0)
	s3 := r1.Write(2, s2) // T1 overwrites T2's uncommitted write...
	s4 := r2.Write(1, s1) // ...and vice versa
	r1.Commit()
	r2.Commit()

	rep := h.Check(map[uint64]int64{1: s4, 2: s3})
	a := firstOfClass(t, rep, ClassG0)
	for _, e := range a.Witness {
		if e.Kind != EdgeWW {
			t.Fatalf("G0 witness contains a %s edge: %s", e.Kind, e)
		}
	}
}

// TestDetectsG0Fork: two committed writes overwriting the same version is a
// version fork (split brain / lost update), structural G0.
func TestDetectsG0Fork(t *testing.T) {
	h := NewHistory(2)
	r1, r2 := h.Recorder(0), h.Recorder(1)

	r1.Begin()
	s1 := r1.Write(1, 0)
	r1.Commit()
	r2.Begin()
	r2.Write(1, 0) // same prev: the chain forks
	r2.Commit()

	rep := h.Check(map[uint64]int64{1: s1})
	firstOfClass(t, rep, ClassG0)
}

// TestDetectsLostUpdate: a committed write whose version the final state
// does not reach is a lost update.
func TestDetectsLostUpdate(t *testing.T) {
	h := NewHistory(1)
	r := h.Recorder(0)

	r.Begin()
	r.Write(1, 0)
	r.Commit()

	rep := h.Check(map[uint64]int64{1: 0}) // database still at the load version
	firstOfClass(t, rep, ClassG0)
}

// TestDetectsG1aAbortedRead: a committed transaction observing an aborted
// transaction's write is an aborted read.
func TestDetectsG1aAbortedRead(t *testing.T) {
	h := NewHistory(2)
	r1, r2 := h.Recorder(0), h.Recorder(1)

	r1.Begin()
	s1 := r1.Write(1, 0)
	r2.Begin()
	r2.Read(1, s1) // observes the uncommitted write...
	r1.Abort()     // ...which then aborts
	r2.Commit()

	rep := h.Check(nil)
	if rep.AbortedTxns != 1 {
		t.Fatalf("aborted attempts: %s", rep)
	}
	firstOfClass(t, rep, ClassG1a)
}

// TestDetectsG1aOpenAttempt: an attempt never closed (worker died
// mid-transaction) is treated as aborted, so reads of its writes are still
// G1a.
func TestDetectsG1aOpenAttempt(t *testing.T) {
	h := NewHistory(2)
	r1, r2 := h.Recorder(0), h.Recorder(1)

	r1.Begin()
	s1 := r1.Write(1, 0)
	// r1 never commits or aborts.
	r2.Begin()
	r2.Read(1, s1)
	r2.Commit()

	rep := h.Check(nil)
	firstOfClass(t, rep, ClassG1a)
}

// TestDetectsG1bIntermediateRead: observing a version its writer overwrote
// within the same transaction is an intermediate read.
func TestDetectsG1bIntermediateRead(t *testing.T) {
	h := NewHistory(2)
	r1, r2 := h.Recorder(0), h.Recorder(1)

	r1.Begin()
	s1 := r1.Write(1, 0)
	r2.Begin()
	r2.Read(1, s1) // observes T1's first write...
	s2 := r1.Write(1, s1)
	r1.Commit() // ...which was not T1's final state of key 1
	r2.Commit()

	rep := h.Check(map[uint64]int64{1: s2})
	firstOfClass(t, rep, ClassG1b)
}

// TestOwnIntermediateReadOK: a transaction re-reading its own intermediate
// write is not G1b.
func TestOwnIntermediateReadOK(t *testing.T) {
	h := NewHistory(1)
	r := h.Recorder(0)

	r.Begin()
	s1 := r.Write(1, 0)
	r.Read(1, s1)
	s2 := r.Write(1, s1)
	r.Commit()

	rep := h.Check(map[uint64]int64{1: s2})
	if !rep.Ok() {
		t.Fatalf("own intermediate read flagged: %v", rep.Anomalies)
	}
}

// TestDetectsG1cCycle: two transactions each reading the other's committed
// write form a wr cycle — cyclic information flow without any ww cycle.
func TestDetectsG1cCycle(t *testing.T) {
	h := NewHistory(2)
	r1, r2 := h.Recorder(0), h.Recorder(1)

	r1.Begin()
	s1 := r1.Write(1, 0)
	r2.Begin()
	s2 := r2.Write(2, 0)
	r2.Read(1, s1) // T2 reads T1's write
	r1.Read(2, s2) // T1 reads T2's write
	r1.Commit()
	r2.Commit()

	rep := h.Check(map[uint64]int64{1: s1, 2: s2})
	a := firstOfClass(t, rep, ClassG1c)
	hasWR := false
	for _, e := range a.Witness {
		if e.Kind == EdgeRW {
			t.Fatalf("G1c witness contains an rw edge: %s", e)
		}
		if e.Kind == EdgeWR {
			hasWR = true
		}
	}
	if !hasWR {
		t.Fatalf("G1c witness has no wr edge: %v", a.Witness)
	}
}

// TestDetectsG2WriteSkew: the canonical write skew — both transactions read
// both keys' load versions and write disjoint keys. The cycle needs the rw
// anti-dependencies on the loader versions, which is exactly the case the
// old in-test checker could not see.
func TestDetectsG2WriteSkew(t *testing.T) {
	h := NewHistory(2)
	r1, r2 := h.Recorder(0), h.Recorder(1)

	r1.Begin()
	r2.Begin()
	r1.Read(1, 0)
	r1.Read(2, 0)
	r2.Read(1, 0)
	r2.Read(2, 0)
	s1 := r1.Write(1, 0)
	s2 := r2.Write(2, 0)
	r1.Commit()
	r2.Commit()

	rep := h.Check(map[uint64]int64{1: s1, 2: s2})
	if len(rep.Anomalies) != 1 {
		t.Fatalf("want exactly the G2 anomaly, got %v", rep.Anomalies)
	}
	a := firstOfClass(t, rep, ClassG2)
	hasRW := false
	for _, e := range a.Witness {
		if e.Kind == EdgeRW {
			hasRW = true
		}
	}
	if !hasRW {
		t.Fatalf("G2 witness has no rw edge: %v", a.Witness)
	}
}

// TestWitnessCycleCloses: cycle witnesses must be walkable — each edge's To
// is the next edge's From, and the last edge returns to the first.
func TestWitnessCycleCloses(t *testing.T) {
	h := NewHistory(2)
	r1, r2 := h.Recorder(0), h.Recorder(1)

	r1.Begin()
	r2.Begin()
	r1.Read(1, 0)
	r2.Read(2, 0)
	s2 := r2.Write(1, 0)
	s1 := r1.Write(2, 0)
	r1.Commit()
	r2.Commit()

	rep := h.Check(map[uint64]int64{1: s2, 2: s1})
	a := firstOfClass(t, rep, ClassG2)
	for i, e := range a.Witness {
		next := a.Witness[(i+1)%len(a.Witness)]
		if e.To != next.From {
			t.Fatalf("witness does not chain at %d: %s then %s", i, e, next)
		}
	}
}

// TestRetriedAttemptRecording: Begin on an open attempt auto-aborts it, so a
// retried body never leaks its first attempt's writes into the committed
// history.
func TestRetriedAttemptRecording(t *testing.T) {
	h := NewHistory(1)
	r := h.Recorder(0)

	r.Begin()
	r.Write(1, 0) // first attempt: aborted by the retry
	r.Begin()
	s2 := r.Write(1, 0)
	r.Commit()

	rep := h.Check(map[uint64]int64{1: s2})
	if !rep.Ok() {
		t.Fatalf("retried attempt flagged: %v", rep.Anomalies)
	}
	if rep.Txns != 1 || rep.AbortedTxns != 1 {
		t.Fatalf("counts: %s", rep)
	}
}

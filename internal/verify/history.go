// Package verify is the engine's standing isolation-anomaly oracle. It
// promotes the stamp/prev history-recording technique that used to live
// inside internal/core's serializability test into a reusable subsystem:
// every write stamps a globally unique version number and records the stamp
// it overwrote, every read records the stamp it observed, and aborted
// attempts keep their stamps in a separate set. From a recorded history the
// checker reconstructs per-key version chains, builds the full dependency
// graph (ww from chain order, wr reads-from, rw anti-dependencies), and
// classifies Adya-style phenomena — dirty writes (G0), aborted and
// intermediate reads (G1a/G1b), and serialization cycles (G1c/G2) — each
// with a concrete witness naming the offending transactions and versions
// rather than a bare pass/fail.
//
// The recorder is strictly opt-in and lives entirely outside the engine's
// commit path: workloads that want verification (the stamped Probe, or any
// custom driver) call Begin/Read/Write/Commit/Abort on a per-worker
// Recorder; workloads that don't never touch the package.
package verify

import "sync/atomic"

// Op is one observed operation of a recorded transaction.
type Op struct {
	// Key is the record's primary key.
	Key uint64
	// Stamp is the version written (writes) or observed (reads). Stamp 0 is
	// the bulk-load version shared by every key.
	Stamp int64
	// Prev is the version a write overwrote (writes only).
	Prev int64
	// Write distinguishes writes from reads.
	Write bool
}

// Txn is one committed transaction's recorded operation sequence.
type Txn struct {
	ID  int64
	Ops []Op
}

// span marks one committed transaction inside a Recorder's flat op log.
type span struct {
	id         int64
	start, end int
}

// abortedWrite is a write whose transaction attempt did not commit. Its
// stamp must never be observed by a committed read (G1a) nor appear in any
// version chain (G0).
type abortedWrite struct {
	txn   int64
	key   uint64
	stamp int64
	prev  int64
}

// History is a multi-worker record of committed and aborted transaction
// observations. Stamps and transaction ids are drawn from shared atomic
// counters; all other recording state is per-worker, so the recording hot
// path is an allocation-amortized append with no cross-worker contention.
type History struct {
	stampCtr atomic.Int64
	txnCtr   atomic.Int64
	workers  []*Recorder
}

// NewHistory creates a history with one Recorder per worker slot.
func NewHistory(workers int) *History {
	if workers <= 0 {
		workers = 1
	}
	h := &History{workers: make([]*Recorder, workers)}
	for i := range h.workers {
		h.workers[i] = &Recorder{h: h, curStart: -1}
	}
	return h
}

// Workers returns the number of worker slots.
func (h *History) Workers() int { return len(h.workers) }

// Recorder returns the per-worker recorder for the given slot. Each
// recorder may be used by one goroutine at a time.
func (h *History) Recorder(worker int) *Recorder { return h.workers[worker] }

// NextStamp draws a globally unique version stamp. Exposed for drivers that
// stamp outside a Recorder (none in-tree; Recorder.Write is the normal
// path).
func (h *History) NextStamp() int64 { return h.stampCtr.Add(1) }

// Recorder accumulates one worker's observations. Committed transactions
// are spans into a flat, reused op log; aborted attempts contribute only
// their writes to a separate set. The append path allocates only when a
// slice grows, which amortizes to nothing over a run.
type Recorder struct {
	h        *History
	ops      []Op
	spans    []span
	aborted  []abortedWrite
	curStart int // -1 when no attempt is open
}

// Reserve pre-sizes the recorder for about txns transactions of opsPerTxn
// operations each, so steady-state recording does not reallocate.
func (r *Recorder) Reserve(txns, opsPerTxn int) {
	if n := txns * opsPerTxn; cap(r.ops) < n {
		ops := make([]Op, len(r.ops), n)
		copy(ops, r.ops)
		r.ops = ops
	}
	if cap(r.spans) < txns {
		spans := make([]span, len(r.spans), txns)
		copy(spans, r.spans)
		r.spans = spans
	}
}

// Begin opens a new transaction attempt. An attempt left open (a retried
// body, or a worker that died mid-transaction) is recorded as aborted.
func (r *Recorder) Begin() {
	if r.curStart >= 0 {
		r.Abort()
	}
	r.curStart = len(r.ops)
}

// Read records that the open attempt observed version stamp of key.
func (r *Recorder) Read(key uint64, stamp int64) {
	r.ops = append(r.ops, Op{Key: key, Stamp: stamp})
}

// Write draws a fresh stamp for a write of key that overwrote version prev,
// records it, and returns the stamp for the caller to install in the row.
func (r *Recorder) Write(key uint64, prev int64) int64 {
	stamp := r.h.stampCtr.Add(1)
	r.ops = append(r.ops, Op{Key: key, Stamp: stamp, Prev: prev, Write: true})
	return stamp
}

// WriteStamped records a write whose stamp was drawn earlier (via
// History.NextStamp) rather than at record time. Deterministic execution
// needs this split: stamps are drawn on the partition executors at the
// moment the write happens, but the history is flushed after the batch by a
// single goroutine in priority order, so recording and stamping cannot be
// one call.
func (r *Recorder) WriteStamped(key uint64, stamp, prev int64) {
	r.ops = append(r.ops, Op{Key: key, Stamp: stamp, Prev: prev, Write: true})
}

// Commit seals the open attempt as a committed transaction.
func (r *Recorder) Commit() {
	if r.curStart < 0 {
		return
	}
	r.spans = append(r.spans, span{id: r.h.txnCtr.Add(1), start: r.curStart, end: len(r.ops)})
	r.curStart = -1
}

// Abort discards the open attempt, retaining its writes in the aborted set
// so the checker can detect reads of (and writes over) aborted versions.
func (r *Recorder) Abort() {
	if r.curStart < 0 {
		return
	}
	id := r.h.txnCtr.Add(1)
	for _, op := range r.ops[r.curStart:] {
		if op.Write {
			r.aborted = append(r.aborted, abortedWrite{txn: id, key: op.Key, stamp: op.Stamp, prev: op.Prev})
		}
	}
	r.ops = r.ops[:r.curStart]
	r.curStart = -1
}

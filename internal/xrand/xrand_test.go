package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d equal values out of 1000", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed degenerated")
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(7)
	err := quick.Check(func(n uint64) bool {
		n = n%1000 + 1
		v := r.Uint64n(n)
		return v < n
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestUint64nUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Fatalf("bucket %d count %d deviates >5%% from %f", i, c, want)
		}
	}
}

func TestIntRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.IntRange(5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("IntRange(5,9) returned %d", v)
		}
	}
	if v := r.IntRange(4, 4); v != 4 {
		t.Fatalf("degenerate range returned %d", v)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(9)
	out := make([]int, 64)
	r.Perm(out)
	seen := make(map[int]bool)
	for _, v := range out {
		if v < 0 || v >= len(out) || seen[v] {
			t.Fatalf("not a permutation: %v", out)
		}
		seen[v] = true
	}
}

func TestZipfBounds(t *testing.T) {
	r := New(13)
	for _, theta := range []float64{0, 0.5, 0.9, 0.99} {
		z := NewZipf(r, 1000, theta)
		for i := 0; i < 10000; i++ {
			if v := z.Next(); v >= 1000 {
				t.Fatalf("theta=%v produced out-of-range %d", theta, v)
			}
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(17)
	const n, draws = 1000, 200000

	freqTop10 := func(theta float64) float64 {
		z := NewZipf(r, n, theta)
		hits := 0
		for i := 0; i < draws; i++ {
			if z.Next() < 10 {
				hits++
			}
		}
		return float64(hits) / draws
	}

	uniform := freqTop10(0)
	skewed := freqTop10(0.99)
	if uniform > 0.02 {
		t.Fatalf("uniform top-10 frequency too high: %v", uniform)
	}
	// With theta=0.99 over 1000 items the top 10 should absorb a large
	// fraction of accesses (analytically ~0.45).
	if skewed < 0.3 {
		t.Fatalf("zipf top-10 frequency too low for theta=0.99: %v", skewed)
	}
	if skewed < uniform*5 {
		t.Fatalf("zipf skew not materializing: uniform=%v skewed=%v", uniform, skewed)
	}
}

func TestZipfMostPopularIsRankZero(t *testing.T) {
	r := New(19)
	z := NewZipf(r, 100, 0.9)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	max := 0
	for i, c := range counts {
		if c > counts[max] {
			max = i
		}
	}
	if max != 0 {
		t.Fatalf("most popular rank is %d, want 0", max)
	}
}

func TestZipfPanics(t *testing.T) {
	r := New(1)
	for _, f := range []func(){
		func() { NewZipf(r, 0, 0.5) },
		func() { NewZipf(r, 10, 1.0) },
		func() { NewZipf(r, 10, -0.1) },
		func() { r.Uint64n(0) },
		func() { r.IntRange(3, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestNURandRanges(t *testing.T) {
	nu := NewNURand(New(23))
	for i := 0; i < 10000; i++ {
		if v := nu.CustomerID(); v < 1 || v > 3000 {
			t.Fatalf("CustomerID out of range: %d", v)
		}
		if v := nu.ItemID(); v < 1 || v > 100000 {
			t.Fatalf("ItemID out of range: %d", v)
		}
		if v := nu.LastNameIndex(); v < 0 || v > 999 {
			t.Fatalf("LastNameIndex out of range: %d", v)
		}
	}
}

func TestNURandNonUniform(t *testing.T) {
	// NURand customer ids should be visibly non-uniform: the C-offset OR
	// construction concentrates mass on some ids.
	nu := NewNURand(New(29))
	counts := make(map[int]int)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[nu.CustomerID()]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max) < 3*float64(draws)/3000 {
		t.Fatalf("NURand looks uniform: max bucket %d", max)
	}
}

func TestLastName(t *testing.T) {
	buf := make([]byte, 24)
	cases := map[int]string{
		0:   "BARBARBAR",
		1:   "BARBAROUGHT",
		999: "EINGEINGEING",
		371: "PRICALLYOUGHT",
	}
	for num, want := range cases {
		if got := string(LastName(buf, num)); got != want {
			t.Errorf("LastName(%d) = %q, want %q", num, got, want)
		}
	}
}

func TestStrings(t *testing.T) {
	r := New(31)
	buf := make([]byte, 32)
	for i := 0; i < 1000; i++ {
		s := r.AString(buf, 8, 16)
		if len(s) < 8 || len(s) > 16 {
			t.Fatalf("AString length %d", len(s))
		}
		d := r.NString(buf, 4, 4)
		if len(d) != 4 {
			t.Fatalf("NString length %d", len(d))
		}
		for _, c := range d {
			if c < '0' || c > '9' {
				t.Fatalf("NString non-digit %q", c)
			}
		}
	}
	r.Letters(buf)
	for _, c := range buf {
		if c < 'A' || c > 'Z' {
			t.Fatalf("Letters produced %q", c)
		}
	}
}

func TestMul64(t *testing.T) {
	err := quick.Check(func(x, y uint32) bool {
		hi, lo := mul64(uint64(x), uint64(y))
		return hi == 0 && lo == uint64(x)*uint64(y)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	hi, _ := mul64(math.MaxUint64, math.MaxUint64)
	if hi != math.MaxUint64-1 {
		t.Fatalf("mul64 high word wrong: %d", hi)
	}
}

// Package xrand provides deterministic, allocation-free random number
// generation for workload drivers and simulators.
//
// Every worker thread in the engine and every simulated core owns a private
// *RNG so that experiment runs are reproducible given a seed, independent of
// goroutine scheduling. The package also implements the skewed distributions
// used by the standard OLTP benchmarks: the Zipfian generator of Gray et al.
// ("Quickly Generating Billion-Record Synthetic Databases", SIGMOD'94) used
// by YCSB, and the NURand non-uniform generator mandated by the TPC-C
// specification.
package xrand

import "math"

// RNG is a splitmix64/xorshift-style pseudo random generator. It is not
// cryptographically secure; it is fast, deterministic, and has a full 2^64
// period, which is what benchmark drivers need.
type RNG struct {
	state uint64
}

// New returns an RNG seeded with seed. A zero seed is remapped to a fixed
// non-zero constant so the generator never degenerates.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state.
func (r *RNG) Seed(seed uint64) {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	r.state = seed
	// Warm up so that close seeds diverge quickly.
	for i := 0; i < 4; i++ {
		r.Uint64()
	}
}

// Uint64 returns the next pseudo-random 64-bit value (splitmix64 step).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64n returns a uniform value in [0, n). n must be > 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	// Lemire's multiply-shift rejection method.
	hi, lo := mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform int in [0, n). n must be > 0.
func (r *RNG) Intn(n int) int {
	return int(r.Uint64n(uint64(n)))
}

// IntRange returns a uniform int in [lo, hi] inclusive, per the TPC-C
// convention for rand(x..y).
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("xrand: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm fills out with a pseudo-random permutation of [0, len(out)).
func (r *RNG) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}

// Letters fills buf with uppercase letters, as used by benchmark string
// columns, and returns buf.
func (r *RNG) Letters(buf []byte) []byte {
	const alpha = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	for i := range buf {
		buf[i] = alpha[r.Intn(len(alpha))]
	}
	return buf
}

// AString fills buf[:n] with random alphanumeric characters where n is
// uniform in [lo, hi], per TPC-C a-string semantics. It returns the filled
// prefix.
func (r *RNG) AString(buf []byte, lo, hi int) []byte {
	const alnum = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	n := r.IntRange(lo, hi)
	if n > len(buf) {
		n = len(buf)
	}
	for i := 0; i < n; i++ {
		buf[i] = alnum[r.Intn(len(alnum))]
	}
	return buf[:n]
}

// NString fills buf[:n] with random digits where n is uniform in [lo, hi],
// per TPC-C n-string semantics.
func (r *RNG) NString(buf []byte, lo, hi int) []byte {
	n := r.IntRange(lo, hi)
	if n > len(buf) {
		n = len(buf)
	}
	for i := 0; i < n; i++ {
		buf[i] = byte('0' + r.Intn(10))
	}
	return buf[:n]
}

func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask32 + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return
}

// Zipf generates Zipfian-distributed values in [0, n) using the algorithm of
// Gray et al. (SIGMOD'94), the same generator YCSB uses. theta in [0, 1)
// controls skew: 0 is uniform, 0.99 is the YCSB "hotspot" default where a
// handful of items absorb most accesses.
type Zipf struct {
	rng   *RNG
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	half  float64 // zeta(2, theta)
}

// NewZipf constructs a Zipfian generator over [0, n) with skew theta.
// theta must be in [0, 1); n must be > 0.
func NewZipf(rng *RNG, n uint64, theta float64) *Zipf {
	if n == 0 {
		panic("xrand: NewZipf with n == 0")
	}
	if theta < 0 || theta >= 1 {
		panic("xrand: NewZipf theta out of [0,1)")
	}
	z := &Zipf{rng: rng, n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.half = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.half/z.zetan)
	return z
}

// N returns the size of the generator's domain.
func (z *Zipf) N() uint64 { return z.n }

// Theta returns the skew parameter.
func (z *Zipf) Theta() float64 { return z.theta }

// Next returns the next Zipfian value in [0, n). Rank 0 is the most popular
// item.
func (z *Zipf) Next() uint64 {
	if z.theta == 0 {
		return z.rng.Uint64n(z.n)
	}
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	v := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	return v
}

// zeta computes the generalized harmonic number sum_{i=1..n} 1/i^theta.
// For the sizes used in benchmarks (<= tens of millions) the direct sum is
// fine and is computed once per generator.
func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// NURand implements the TPC-C non-uniform random function
// NURand(A, x, y) = (((rand(0..A) | rand(x..y)) + C) % (y - x + 1)) + x.
type NURand struct {
	rng *RNG
	// C constants per TPC-C clause 2.1.6; fixed at construction so a load
	// and its run phase agree.
	CLast, CID, OLID int
}

// NewNURand builds a NURand helper with randomly drawn C constants that
// satisfy the TPC-C validity rules.
func NewNURand(rng *RNG) *NURand {
	return &NURand{
		rng:   rng,
		CLast: rng.IntRange(0, 255),
		CID:   rng.IntRange(0, 1023),
		OLID:  rng.IntRange(0, 8191),
	}
}

func (nu *NURand) nurand(a, c, x, y int) int {
	return (((nu.rng.IntRange(0, a) | nu.rng.IntRange(x, y)) + c) % (y - x + 1)) + x
}

// CustomerID draws a customer id in [1, 3000] per TPC-C.
func (nu *NURand) CustomerID() int { return nu.nurand(1023, nu.CID, 1, 3000) }

// ItemID draws an item id in [1, 100000] per TPC-C.
func (nu *NURand) ItemID() int { return nu.nurand(8191, nu.OLID, 1, 100000) }

// LastNameIndex draws a last-name seed in [0, 999] for the run phase.
func (nu *NURand) LastNameIndex() int { return nu.nurand(255, nu.CLast, 0, 999) }

// LastName renders the TPC-C syllable-composed last name for num in [0,999]
// into buf and returns the filled prefix.
func LastName(buf []byte, num int) []byte {
	syllables := [...]string{"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"}
	b := buf[:0]
	b = append(b, syllables[(num/100)%10]...)
	b = append(b, syllables[(num/10)%10]...)
	b = append(b, syllables[num%10]...)
	return b
}

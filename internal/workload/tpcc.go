package workload

import (
	"fmt"
	"sync/atomic"

	"next700/internal/core"
	"next700/internal/storage"
	"next700/internal/wal"
	"next700/internal/xrand"
)

// TPCCConfig parameterizes the TPC-C order-entry benchmark. Defaults follow
// the specification scale; tests shrink Items/CustomersPerDistrict for
// speed. String columns are trimmed relative to the spec (e.g. C_DATA 500
// -> 64 bytes) to keep memory proportional to what the experiments need;
// the access pattern — which is what concurrency control sees — is
// unchanged.
type TPCCConfig struct {
	// Warehouses is the scale factor W (default 4).
	Warehouses int
	// DistrictsPerWarehouse (default 10, per spec).
	DistrictsPerWarehouse int
	// CustomersPerDistrict (default 3000, per spec).
	CustomersPerDistrict int
	// Items in the catalog (default 100_000, per spec).
	Items int
	// InitialOrdersPerDistrict pre-loaded orders (default
	// CustomersPerDistrict, per spec).
	InitialOrdersPerDistrict int
	// Mix is the cumulative percentage thresholds for
	// NewOrder/Payment/OrderStatus/Delivery/StockLevel. Zero value uses the
	// standard 45/43/4/4/4.
	Mix [5]int
	// RemoteItemPct is the chance a NewOrder line is supplied by a remote
	// warehouse (default 1, per spec).
	RemoteItemPct int
	// RemotePaymentPct is the chance Payment hits a remote customer
	// (default 15, per spec).
	RemotePaymentPct int
	// MaxThreads sizes per-worker state (default: engine thread count).
	MaxThreads int
}

func (c *TPCCConfig) normalize() {
	if c.Warehouses <= 0 {
		c.Warehouses = 4
	}
	if c.DistrictsPerWarehouse <= 0 {
		c.DistrictsPerWarehouse = 10
	}
	if c.DistrictsPerWarehouse > 15 {
		c.DistrictsPerWarehouse = 15
	}
	if c.CustomersPerDistrict <= 0 {
		c.CustomersPerDistrict = 3000
	}
	if c.Items <= 0 {
		c.Items = 100_000
	}
	if c.InitialOrdersPerDistrict <= 0 {
		c.InitialOrdersPerDistrict = c.CustomersPerDistrict
	}
	if c.Mix == [5]int{} {
		c.Mix = [5]int{45, 88, 92, 96, 100}
	}
	if c.RemoteItemPct < 0 {
		c.RemoteItemPct = 1
	}
	if c.RemotePaymentPct < 0 {
		c.RemotePaymentPct = 15
	}
}

// Key encodings. Warehouses are 1-based; districts 1..15 fit in 4 bits;
// customers and items fit in 17 bits; order numbers in 32 bits; order lines
// in 4 bits.
func wKey(w int) uint64       { return uint64(w) }
func dKey(w, d int) uint64    { return uint64(w)<<4 | uint64(d) }
func cKey(w, d, c int) uint64 { return dKey(w, d)<<17 | uint64(c) }
func iKey(i int) uint64       { return uint64(i) }
func sKey(w, i int) uint64    { return uint64(w)<<17 | uint64(i) }
func oKey(w, d int, o int64) uint64 {
	return dKey(w, d)<<32 | uint64(o)
}
func olKey(w, d int, o int64, ol int) uint64 {
	return oKey(w, d, o)<<4 | uint64(ol)
}

// cNameKey is the customer-by-name secondary key: a 24-bit hash of
// (w, d, last name) with the customer id folded into the low 17 bits so
// entries stay unique. Collisions across name groups are filtered by the
// reader.
func cNameKey(w, d int, last []byte, c int) uint64 {
	h := uint64(14695981039346656037)
	h ^= uint64(dKey(w, d))
	h *= 1099511628211
	for _, b := range last {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return (h&0xFFFFFF)<<17 | uint64(c)
}

// oCustKey is the order-by-customer secondary key: customer key in the
// high bits, order number (24 bits) low, so descending scans find the
// latest order.
func oCustKey(w, d, c int, o int64) uint64 {
	return cKey(w, d, c)<<24 | (uint64(o) & 0xFFFFFF)
}

// tpccWorker is per-thread generator state.
type tpccWorker struct {
	nurand *xrand.NURand
	buf    [64]byte
	// scratch for NewOrder item plans.
	items   []int
	supplys []int
	qtys    []int
	// scratch for by-name lookups.
	custIDs []int
}

// TPCC is the workload instance.
type TPCC struct {
	cfg TPCCConfig
	eng *core.Engine

	warehouse, district, customer *core.Table
	history, neworder, order      *core.Table
	orderline, item, stock        *core.Table

	workers []*tpccWorker
	hSeq    atomic.Uint64 // history primary keys

	// Commit counters per transaction type, for reporting.
	committed [5]atomic.Uint64
}

// NewTPCC builds a TPC-C workload.
func NewTPCC(cfg TPCCConfig) *TPCC {
	cfg.normalize()
	return &TPCC{cfg: cfg}
}

// Name implements Workload.
func (t *TPCC) Name() string { return "tpcc" }

// Config returns the normalized configuration.
func (t *TPCC) Config() TPCCConfig { return t.cfg }

// Committed returns per-type commit counts
// (NewOrder, Payment, OrderStatus, Delivery, StockLevel).
func (t *TPCC) Committed() [5]uint64 {
	var out [5]uint64
	for i := range out {
		out[i] = t.committed[i].Load()
	}
	return out
}

// Setup implements Workload: create the nine tables, their indexes, and
// load per the spec's population rules.
func (t *TPCC) Setup(e *core.Engine) error {
	if e.Config().LogMode == wal.ModeCommand {
		return fmt.Errorf("tpcc: command logging is not supported (use value logging); see DESIGN.md E8")
	}
	t.eng = e
	if t.cfg.MaxThreads <= 0 {
		t.cfg.MaxThreads = e.Config().Threads
	}
	t.workers = make([]*tpccWorker, t.cfg.MaxThreads)

	var err error
	create := func(sch *storage.Schema, kind core.IndexKind) *core.Table {
		if err != nil {
			return nil
		}
		var tbl *core.Table
		tbl, err = e.CreateTable(sch, kind)
		return tbl
	}

	t.warehouse = create(storage.MustSchema("warehouse",
		storage.Str("w_name", 10), storage.Str("w_street", 20), storage.Str("w_city", 20),
		storage.Str("w_state", 2), storage.Str("w_zip", 9),
		storage.F64("w_tax"), storage.F64("w_ytd")), core.IndexHash)
	t.district = create(storage.MustSchema("district",
		storage.Str("d_name", 10), storage.Str("d_street", 20), storage.Str("d_city", 20),
		storage.Str("d_state", 2), storage.Str("d_zip", 9),
		storage.F64("d_tax"), storage.F64("d_ytd"), storage.I64("d_next_o_id")), core.IndexHash)
	t.customer = create(storage.MustSchema("customer",
		storage.Str("c_first", 16), storage.Str("c_middle", 2), storage.Str("c_last", 16),
		storage.Str("c_street", 20), storage.Str("c_city", 20), storage.Str("c_state", 2),
		storage.Str("c_zip", 9), storage.Str("c_phone", 16), storage.I64("c_since"),
		storage.Str("c_credit", 2), storage.F64("c_credit_lim"), storage.F64("c_discount"),
		storage.F64("c_balance"), storage.F64("c_ytd_payment"),
		storage.I64("c_payment_cnt"), storage.I64("c_delivery_cnt"),
		storage.Str("c_data", 64)), core.IndexHash)
	t.history = create(storage.MustSchema("history",
		storage.I64("h_c_key"), storage.I64("h_d_key"),
		storage.I64("h_date"), storage.F64("h_amount"), storage.Str("h_data", 24)), core.IndexHash)
	t.neworder = create(storage.MustSchema("new_order",
		storage.I64("no_flag")), core.IndexBTree)
	t.order = create(storage.MustSchema("orders",
		storage.I64("o_c_id"), storage.I64("o_entry_d"), storage.I64("o_carrier_id"),
		storage.I64("o_ol_cnt"), storage.I64("o_all_local")), core.IndexBTree)
	t.orderline = create(storage.MustSchema("order_line",
		storage.I64("ol_i_id"), storage.I64("ol_supply_w_id"), storage.I64("ol_delivery_d"),
		storage.I64("ol_quantity"), storage.F64("ol_amount"), storage.Str("ol_dist_info", 24)), core.IndexBTree)
	t.item = create(storage.MustSchema("item",
		storage.I64("i_im_id"), storage.Str("i_name", 24), storage.F64("i_price"),
		storage.Str("i_data", 50)), core.IndexHash)
	t.stock = create(storage.MustSchema("stock",
		storage.I64("s_quantity"), storage.Str("s_dist", 24), storage.I64("s_ytd"),
		storage.I64("s_order_cnt"), storage.I64("s_remote_cnt"), storage.Str("s_data", 50)), core.IndexHash)
	if err != nil {
		return err
	}

	// Secondary indexes: customers by last name; orders by customer.
	csch := t.customer.Schema()
	cLastCol := csch.ColumnIndex("c_last")
	if err := e.AddIndex(t.customer, "by_name", core.IndexBTree,
		func(s *storage.Schema, row storage.Row, pk uint64) uint64 {
			w := int(pk >> 21)
			d := int(pk >> 17 & 0xF)
			c := int(pk & 0x1FFFF)
			return cNameKey(w, d, s.GetString(row, cLastCol), c)
		}); err != nil {
		return err
	}
	osch := t.order.Schema()
	oCIDCol := osch.ColumnIndex("o_c_id")
	if err := e.AddIndex(t.order, "by_customer", core.IndexBTree,
		func(s *storage.Schema, row storage.Row, pk uint64) uint64 {
			w := int(pk >> 36)
			d := int(pk >> 32 & 0xF)
			o := int64(pk & 0xFFFFFFFF)
			c := int(s.GetInt64(row, oCIDCol))
			return oCustKey(w, d, c, o)
		}); err != nil {
		return err
	}

	// Partition by warehouse: every key encodes w in a table-specific
	// position.
	e.SetPartitioner(func(tbl *core.Table, key uint64) int {
		return t.partitionOfKey(tbl, key)
	})

	return t.load(e)
}

// warehouseOfKey decodes the warehouse from a table's primary key.
func (t *TPCC) warehouseOfKey(tbl *core.Table, key uint64) int {
	switch tbl {
	case t.warehouse:
		return int(key)
	case t.district:
		return int(key >> 4)
	case t.customer:
		return int(key >> 21)
	case t.stock:
		return int(key >> 17)
	case t.neworder, t.order:
		return int(key >> 36)
	case t.orderline:
		return int(key >> 40)
	case t.history:
		// History keys are synthetic sequence numbers carrying w in the
		// top bits.
		return int(key >> 48)
	case t.item:
		// Items are read-only and replicated conceptually; map them all to
		// partition 0's warehouse (they are never written after load).
		return 1
	default:
		return 1
	}
}

// partitionOfKey maps a key to its warehouse's partition.
func (t *TPCC) partitionOfKey(tbl *core.Table, key uint64) int {
	w := t.warehouseOfKey(tbl, key)
	return t.partitionOfWarehouse(w)
}

func (t *TPCC) partitionOfWarehouse(w int) int {
	p := t.eng.Config().Partitions
	return (w - 1) % p
}

// historyKey mints a unique history pk tagged with the warehouse.
func (t *TPCC) historyKey(w int) uint64 {
	return uint64(w)<<48 | t.hSeq.Add(1)
}

// worker returns per-thread generator state.
func (t *TPCC) worker(tx *core.Tx) *tpccWorker {
	id := tx.ThreadID()
	w := t.workers[id]
	if w == nil {
		w = &tpccWorker{
			nurand:  xrand.NewNURand(tx.RNG()),
			items:   make([]int, 0, 15),
			supplys: make([]int, 0, 15),
			qtys:    make([]int, 0, 15),
		}
		t.workers[id] = w
	}
	return w
}

// load populates all tables per the spec.
func (t *TPCC) load(e *core.Engine) error {
	rng := xrand.New(0x7C9)
	nu := xrand.NewNURand(rng)
	buf := make([]byte, 64)

	// ITEM.
	isch := t.item.Schema()
	row := isch.NewRow()
	for i := 1; i <= t.cfg.Items; i++ {
		isch.SetInt64(row, 0, int64(rng.IntRange(1, 10000)))
		isch.SetString(row, 1, rng.AString(buf, 14, 24))
		isch.SetFloat64(row, 2, float64(rng.IntRange(100, 10000))/100)
		isch.SetString(row, 3, rng.AString(buf, 26, 50))
		if err := e.Load(t.item, iKey(i), row); err != nil {
			return err
		}
	}

	wsch := t.warehouse.Schema()
	dsch := t.district.Schema()
	csch := t.customer.Schema()
	hsch := t.history.Schema()
	nosch := t.neworder.Schema()
	osch := t.order.Schema()
	olsch := t.orderline.Schema()
	ssch := t.stock.Schema()

	for w := 1; w <= t.cfg.Warehouses; w++ {
		wrow := wsch.NewRow()
		wsch.SetString(wrow, 0, rng.AString(buf, 6, 10))
		wsch.SetString(wrow, 1, rng.AString(buf, 10, 20))
		wsch.SetString(wrow, 2, rng.AString(buf, 10, 20))
		wsch.SetString(wrow, 3, rng.Letters(buf[:2]))
		wsch.SetString(wrow, 4, rng.NString(buf, 9, 9))
		wsch.SetFloat64(wrow, 5, float64(rng.IntRange(0, 2000))/10000)
		wsch.SetFloat64(wrow, 6, 300000)
		if err := e.Load(t.warehouse, wKey(w), wrow); err != nil {
			return err
		}

		// STOCK.
		srow := ssch.NewRow()
		for i := 1; i <= t.cfg.Items; i++ {
			ssch.SetInt64(srow, 0, int64(rng.IntRange(10, 100)))
			ssch.SetString(srow, 1, rng.Letters(buf[:24]))
			ssch.SetInt64(srow, 2, 0)
			ssch.SetInt64(srow, 3, 0)
			ssch.SetInt64(srow, 4, 0)
			ssch.SetString(srow, 5, rng.AString(buf, 26, 50))
			if err := e.Load(t.stock, sKey(w, i), srow); err != nil {
				return err
			}
		}

		for d := 1; d <= t.cfg.DistrictsPerWarehouse; d++ {
			drow := dsch.NewRow()
			dsch.SetString(drow, 0, rng.AString(buf, 6, 10))
			dsch.SetString(drow, 1, rng.AString(buf, 10, 20))
			dsch.SetString(drow, 2, rng.AString(buf, 10, 20))
			dsch.SetString(drow, 3, rng.Letters(buf[:2]))
			dsch.SetString(drow, 4, rng.NString(buf, 9, 9))
			dsch.SetFloat64(drow, 5, float64(rng.IntRange(0, 2000))/10000)
			dsch.SetFloat64(drow, 6, 30000)
			dsch.SetInt64(drow, 7, int64(t.cfg.InitialOrdersPerDistrict)+1)
			if err := e.Load(t.district, dKey(w, d), drow); err != nil {
				return err
			}

			// CUSTOMER + 1 HISTORY row each.
			crow := csch.NewRow()
			hrow := hsch.NewRow()
			for c := 1; c <= t.cfg.CustomersPerDistrict; c++ {
				lastIdx := c - 1
				if c > 1000 {
					lastIdx = nu.LastNameIndex()
				}
				last := xrand.LastName(buf[:0], lastIdx%1000)
				csch.SetString(crow, 0, rng.AString(buf[32:], 8, 16))
				csch.SetString(crow, 1, []byte("OE"))
				csch.SetString(crow, 2, last)
				csch.SetString(crow, 3, rng.AString(buf[32:], 10, 20))
				csch.SetString(crow, 4, rng.AString(buf[32:], 10, 20))
				csch.SetString(crow, 5, rng.Letters(buf[32:34]))
				csch.SetString(crow, 6, rng.NString(buf[32:], 9, 9))
				csch.SetString(crow, 7, rng.NString(buf[32:], 16, 16))
				csch.SetInt64(crow, 8, 0)
				if rng.Intn(10) == 0 {
					csch.SetString(crow, 9, []byte("BC"))
				} else {
					csch.SetString(crow, 9, []byte("GC"))
				}
				csch.SetFloat64(crow, 10, 50000)
				csch.SetFloat64(crow, 11, float64(rng.IntRange(0, 5000))/10000)
				csch.SetFloat64(crow, 12, -10)
				csch.SetFloat64(crow, 13, 10)
				csch.SetInt64(crow, 14, 1)
				csch.SetInt64(crow, 15, 0)
				csch.SetString(crow, 16, rng.AString(buf[32:], 30, 60))
				if err := e.Load(t.customer, cKey(w, d, c), crow); err != nil {
					return err
				}

				hsch.SetInt64(hrow, 0, int64(cKey(w, d, c)))
				hsch.SetInt64(hrow, 1, int64(dKey(w, d)))
				hsch.SetInt64(hrow, 2, 0)
				hsch.SetFloat64(hrow, 3, 10)
				hsch.SetString(hrow, 4, rng.AString(buf[32:], 12, 24))
				if err := e.Load(t.history, t.historyKey(w), hrow); err != nil {
					return err
				}
			}

			// ORDERS 1..InitialOrders with a permuted customer assignment;
			// the last third have no carrier and matching NEW_ORDER rows.
			perm := make([]int, t.cfg.CustomersPerDistrict)
			rng.Perm(perm)
			orow := osch.NewRow()
			olrow := olsch.NewRow()
			norow := nosch.NewRow()
			for o := 1; o <= t.cfg.InitialOrdersPerDistrict; o++ {
				c := perm[(o-1)%len(perm)] + 1
				olCnt := rng.IntRange(5, 15)
				delivered := o <= t.cfg.InitialOrdersPerDistrict*2/3
				osch.SetInt64(orow, 0, int64(c))
				osch.SetInt64(orow, 1, 0)
				if delivered {
					osch.SetInt64(orow, 2, int64(rng.IntRange(1, 10)))
				} else {
					osch.SetInt64(orow, 2, 0)
				}
				osch.SetInt64(orow, 3, int64(olCnt))
				osch.SetInt64(orow, 4, 1)
				if err := e.Load(t.order, oKey(w, d, int64(o)), orow); err != nil {
					return err
				}
				for ol := 1; ol <= olCnt; ol++ {
					olsch.SetInt64(olrow, 0, int64(rng.IntRange(1, t.cfg.Items)))
					olsch.SetInt64(olrow, 1, int64(w))
					if delivered {
						olsch.SetInt64(olrow, 2, 1)
						olsch.SetFloat64(olrow, 4, 0)
					} else {
						olsch.SetInt64(olrow, 2, 0)
						olsch.SetFloat64(olrow, 4, float64(rng.IntRange(1, 999999))/100)
					}
					olsch.SetInt64(olrow, 3, 5)
					olsch.SetString(olrow, 5, rng.Letters(buf[:24]))
					if err := e.Load(t.orderline, olKey(w, d, int64(o), ol), olrow); err != nil {
						return err
					}
				}
				if !delivered {
					nosch.SetInt64(norow, 0, 1)
					if err := e.Load(t.neworder, oKey(w, d, int64(o)), norow); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

package workload

import (
	"errors"
	"sort"

	"next700/internal/core"
	"next700/internal/storage"
	"next700/internal/txn"
	"next700/internal/xrand"
)

// Transaction type indices for Committed().
const (
	tpccNewOrder = iota
	tpccPayment
	tpccOrderStatus
	tpccDelivery
	tpccStockLevel
)

// RunOne implements Workload: draw a transaction type from the mix and
// execute it with retries.
func (t *TPCC) RunOne(tx *core.Tx) error {
	w := t.worker(tx)
	roll := tx.RNG().IntRange(1, 100)
	var typ int
	switch {
	case roll <= t.cfg.Mix[0]:
		typ = tpccNewOrder
	case roll <= t.cfg.Mix[1]:
		typ = tpccPayment
	case roll <= t.cfg.Mix[2]:
		typ = tpccOrderStatus
	case roll <= t.cfg.Mix[3]:
		typ = tpccDelivery
	default:
		typ = tpccStockLevel
	}
	var err error
	switch typ {
	case tpccNewOrder:
		err = t.newOrder(tx, w)
	case tpccPayment:
		err = t.payment(tx, w)
	case tpccOrderStatus:
		err = t.orderStatus(tx, w)
	case tpccDelivery:
		err = t.delivery(tx, w)
	default:
		err = t.stockLevel(tx, w)
	}
	if err == nil {
		t.committed[typ].Add(1)
		return nil
	}
	// The spec's 1% NewOrder rollback is a committed business outcome, not
	// a failure.
	if errors.Is(err, txn.ErrUserAbort) {
		t.committed[typ].Add(1)
		return nil
	}
	return err
}

// homeWarehouse assigns each worker a home warehouse round-robin, the
// standard terminal model.
func (t *TPCC) homeWarehouse(tx *core.Tx) int {
	return tx.ThreadID()%t.cfg.Warehouses + 1
}

// asConflict maps duplicate-key failures from racing inserts into
// retryable conflicts: a duplicate order id means a concurrent NewOrder won
// the district sequence race and this attempt must re-read d_next_o_id.
func asConflict(err error) error {
	if errors.Is(err, txn.ErrDuplicate) {
		return txn.ErrConflict
	}
	return err
}

// newOrder is TPC-C transaction 2.4.
func (t *TPCC) newOrder(tx *core.Tx, w *tpccWorker) error {
	rng := tx.RNG()
	wid := t.homeWarehouse(tx)
	did := rng.IntRange(1, t.cfg.DistrictsPerWarehouse)
	cid := w.nurand.CustomerID() % t.cfg.CustomersPerDistrict
	if cid == 0 {
		cid = 1
	}
	olCnt := rng.IntRange(5, 15)
	rollback := rng.IntRange(1, 100) == 1 // 1%: invalid item aborts

	// Plan the lines outside the retry loop so retries are identical.
	w.items = w.items[:0]
	w.supplys = w.supplys[:0]
	w.qtys = w.qtys[:0]
	allLocal := int64(1)
	parts := []int{t.partitionOfWarehouse(wid)}
	for i := 0; i < olCnt; i++ {
		item := w.nurand.ItemID() % t.cfg.Items
		if item == 0 {
			item = 1
		}
		supply := wid
		if t.cfg.Warehouses > 1 && rng.IntRange(1, 100) <= t.cfg.RemoteItemPct {
			for supply == wid {
				supply = rng.IntRange(1, t.cfg.Warehouses)
			}
			allLocal = 0
			parts = append(parts, t.partitionOfWarehouse(supply))
		}
		w.items = append(w.items, item)
		w.supplys = append(w.supplys, supply)
		w.qtys = append(w.qtys, rng.IntRange(1, 10))
	}

	wsch, dsch, csch := t.warehouse.Schema(), t.district.Schema(), t.customer.Schema()
	isch, ssch := t.item.Schema(), t.stock.Schema()
	osch, olsch, nosch := t.order.Schema(), t.orderline.Schema(), t.neworder.Schema()

	return tx.Run(func(tx *core.Tx) error {
		if t.eng.Protocol() == "HSTORE" {
			if err := tx.DeclarePartitions(parts...); err != nil {
				return err
			}
		}
		wrow, err := tx.Read(t.warehouse, wKey(wid))
		if err != nil {
			return err
		}
		wTax := wsch.GetFloat64(wrow, 5)

		drow, err := tx.Update(t.district, dKey(wid, did))
		if err != nil {
			return err
		}
		dTax := dsch.GetFloat64(drow, 5)
		oid := dsch.GetInt64(drow, 7)
		dsch.SetInt64(drow, 7, oid+1)

		crow, err := tx.Read(t.customer, cKey(wid, did, cid))
		if err != nil {
			return err
		}
		cDiscount := csch.GetFloat64(crow, 11)

		total := 0.0
		for i := range w.items {
			irow, err := tx.Read(t.item, iKey(w.items[i]))
			if err != nil {
				return err
			}
			price := isch.GetFloat64(irow, 2)

			srow, err := tx.Update(t.stock, sKey(w.supplys[i], w.items[i]))
			if err != nil {
				return err
			}
			qty := int64(w.qtys[i])
			sq := ssch.GetInt64(srow, 0)
			if sq >= qty+10 {
				ssch.SetInt64(srow, 0, sq-qty)
			} else {
				ssch.SetInt64(srow, 0, sq-qty+91)
			}
			ssch.SetInt64(srow, 2, ssch.GetInt64(srow, 2)+qty)
			ssch.SetInt64(srow, 3, ssch.GetInt64(srow, 3)+1)
			if w.supplys[i] != wid {
				ssch.SetInt64(srow, 4, ssch.GetInt64(srow, 4)+1)
			}

			amount := float64(qty) * price
			total += amount

			olrow := olsch.NewRow()
			olsch.SetInt64(olrow, 0, int64(w.items[i]))
			olsch.SetInt64(olrow, 1, int64(w.supplys[i]))
			olsch.SetInt64(olrow, 2, 0)
			olsch.SetInt64(olrow, 3, qty)
			olsch.SetFloat64(olrow, 4, amount)
			olsch.SetString(olrow, 5, ssch.GetString(srow, 1))
			if err := tx.Insert(t.orderline, olKey(wid, did, oid, i+1), olrow); err != nil {
				return asConflict(err)
			}
		}

		orow := osch.NewRow()
		osch.SetInt64(orow, 0, int64(cid))
		osch.SetInt64(orow, 1, 1) // entry date
		osch.SetInt64(orow, 2, 0) // no carrier yet
		osch.SetInt64(orow, 3, int64(olCnt))
		osch.SetInt64(orow, 4, allLocal)
		if err := tx.Insert(t.order, oKey(wid, did, oid), orow); err != nil {
			return asConflict(err)
		}
		norow := nosch.NewRow()
		nosch.SetInt64(norow, 0, 1)
		if err := tx.Insert(t.neworder, oKey(wid, did, oid), norow); err != nil {
			return asConflict(err)
		}

		_ = total * (1 - cDiscount) * (1 + wTax + dTax)
		if rollback {
			return txn.ErrUserAbort
		}
		return nil
	})
}

// findCustomerByName resolves the spec's by-last-name lookup: collect the
// matching customers in the (w, d) group and pick the middle one.
func (t *TPCC) findCustomerByName(tx *core.Tx, w *tpccWorker, wid, did int, last []byte) (int, error) {
	key := cNameKey(wid, did, last, 0)
	lo := key &^ 0x1FFFF
	hi := key | 0x1FFFF
	csch := t.customer.Schema()
	w.custIDs = w.custIDs[:0]
	err := tx.ScanIndex(t.customer, "by_name", lo, hi, false,
		func(ik uint64, row storage.Row) bool {
			// Filter hash collisions: verify the actual last name.
			if string(csch.GetString(row, 2)) == string(last) {
				w.custIDs = append(w.custIDs, int(ik&0x1FFFF))
			}
			return true
		})
	if err != nil {
		return 0, err
	}
	if len(w.custIDs) == 0 {
		return 0, txn.ErrNotFound
	}
	sort.Ints(w.custIDs)
	return w.custIDs[len(w.custIDs)/2], nil
}

// randomLastName draws a run-phase last name into the worker buffer,
// restricted to the names the load phase actually created (relevant when
// CustomersPerDistrict is scaled below the spec's 3000, where the first
// 1000 customers carry the sequential names 0..999).
func (t *TPCC) randomLastName(w *tpccWorker) []byte {
	limit := t.cfg.CustomersPerDistrict
	if limit > 1000 {
		limit = 1000
	}
	return xrand.LastName(w.buf[:0], w.nurand.LastNameIndex()%limit)
}

// payment is TPC-C transaction 2.5.
func (t *TPCC) payment(tx *core.Tx, w *tpccWorker) error {
	rng := tx.RNG()
	wid := t.homeWarehouse(tx)
	did := rng.IntRange(1, t.cfg.DistrictsPerWarehouse)
	amount := float64(rng.IntRange(100, 500000)) / 100

	// 85% local customer, 15% remote (if W > 1).
	cwid, cdid := wid, did
	if t.cfg.Warehouses > 1 && rng.IntRange(1, 100) <= t.cfg.RemotePaymentPct {
		for cwid == wid {
			cwid = rng.IntRange(1, t.cfg.Warehouses)
		}
		cdid = rng.IntRange(1, t.cfg.DistrictsPerWarehouse)
	}
	byName := rng.IntRange(1, 100) <= 60
	var last []byte
	cid := 0
	if byName {
		last = append([]byte(nil), t.randomLastName(w)...)
	} else {
		cid = w.nurand.CustomerID() % t.cfg.CustomersPerDistrict
		if cid == 0 {
			cid = 1
		}
	}

	wsch, dsch, csch, hsch := t.warehouse.Schema(), t.district.Schema(), t.customer.Schema(), t.history.Schema()
	parts := []int{t.partitionOfWarehouse(wid), t.partitionOfWarehouse(cwid)}

	return tx.Run(func(tx *core.Tx) error {
		if t.eng.Protocol() == "HSTORE" {
			if err := tx.DeclarePartitions(parts...); err != nil {
				return err
			}
		}
		wrow, err := tx.Update(t.warehouse, wKey(wid))
		if err != nil {
			return err
		}
		wsch.SetFloat64(wrow, 6, wsch.GetFloat64(wrow, 6)+amount)

		drow, err := tx.Update(t.district, dKey(wid, did))
		if err != nil {
			return err
		}
		dsch.SetFloat64(drow, 6, dsch.GetFloat64(drow, 6)+amount)

		useCID := cid
		if byName {
			useCID, err = t.findCustomerByName(tx, w, cwid, cdid, last)
			if err != nil {
				return err
			}
		}
		crow, err := tx.Update(t.customer, cKey(cwid, cdid, useCID))
		if err != nil {
			return err
		}
		csch.SetFloat64(crow, 12, csch.GetFloat64(crow, 12)-amount)
		csch.SetFloat64(crow, 13, csch.GetFloat64(crow, 13)+amount)
		csch.SetInt64(crow, 14, csch.GetInt64(crow, 14)+1)

		hrow := hsch.NewRow()
		hsch.SetInt64(hrow, 0, int64(cKey(cwid, cdid, useCID)))
		hsch.SetInt64(hrow, 1, int64(dKey(wid, did)))
		hsch.SetInt64(hrow, 2, 1)
		hsch.SetFloat64(hrow, 3, amount)
		if err := tx.Insert(t.history, t.historyKey(wid), hrow); err != nil {
			return asConflict(err)
		}
		return nil
	})
}

// orderStatus is TPC-C transaction 2.6 (read-only).
func (t *TPCC) orderStatus(tx *core.Tx, w *tpccWorker) error {
	rng := tx.RNG()
	wid := t.homeWarehouse(tx)
	did := rng.IntRange(1, t.cfg.DistrictsPerWarehouse)
	byName := rng.IntRange(1, 100) <= 60
	var last []byte
	cid := 0
	if byName {
		last = append([]byte(nil), t.randomLastName(w)...)
	} else {
		cid = w.nurand.CustomerID() % t.cfg.CustomersPerDistrict
		if cid == 0 {
			cid = 1
		}
	}
	csch, osch, olsch := t.customer.Schema(), t.order.Schema(), t.orderline.Schema()

	return tx.Run(func(tx *core.Tx) error {
		if t.eng.Protocol() == "HSTORE" {
			if err := tx.DeclarePartitions(t.partitionOfWarehouse(wid)); err != nil {
				return err
			}
		}
		useCID := cid
		var err error
		if byName {
			useCID, err = t.findCustomerByName(tx, w, wid, did, last)
			if err != nil {
				return err
			}
		}
		crow, err := tx.Read(t.customer, cKey(wid, did, useCID))
		if err != nil {
			return err
		}
		_ = csch.GetFloat64(crow, 12) // balance

		// Latest order of this customer via the by_customer index.
		base := cKey(wid, did, useCID) << 24
		var lastOrder int64 = -1
		err = tx.ScanIndex(t.order, "by_customer", base, base|0xFFFFFF, true,
			func(ik uint64, row storage.Row) bool {
				lastOrder = int64(ik & 0xFFFFFF)
				_ = osch.GetInt64(row, 2) // carrier
				return false
			})
		if err != nil {
			return err
		}
		if lastOrder < 0 {
			return nil // customer has no orders yet
		}
		lo := olKey(wid, did, lastOrder, 0)
		hi := olKey(wid, did, lastOrder, 15)
		return tx.Scan(t.orderline, lo, hi, func(_ uint64, row storage.Row) bool {
			_ = olsch.GetFloat64(row, 4)
			return true
		})
	})
}

// delivery is TPC-C transaction 2.7: deliver the oldest undelivered order
// in each district.
func (t *TPCC) delivery(tx *core.Tx, w *tpccWorker) error {
	rng := tx.RNG()
	wid := t.homeWarehouse(tx)
	carrier := int64(rng.IntRange(1, 10))
	osch, olsch, csch := t.order.Schema(), t.orderline.Schema(), t.customer.Schema()

	return tx.Run(func(tx *core.Tx) error {
		if t.eng.Protocol() == "HSTORE" {
			if err := tx.DeclarePartitions(t.partitionOfWarehouse(wid)); err != nil {
				return err
			}
		}
		for did := 1; did <= t.cfg.DistrictsPerWarehouse; did++ {
			// Oldest undelivered order: min key in the new_order range.
			lo := oKey(wid, did, 0)
			hi := oKey(wid, did, 0xFFFFFFFF)
			var noKey uint64
			found := false
			if err := tx.Scan(t.neworder, lo, hi, func(key uint64, _ storage.Row) bool {
				noKey = key
				found = true
				return false
			}); err != nil {
				return err
			}
			if !found {
				continue
			}
			oid := int64(noKey & 0xFFFFFFFF)
			if err := tx.Delete(t.neworder, noKey); err != nil {
				if errors.Is(err, txn.ErrNotFound) {
					continue // raced with another delivery
				}
				return err
			}
			orow, err := tx.Update(t.order, oKey(wid, did, oid))
			if err != nil {
				return err
			}
			cid := int(osch.GetInt64(orow, 0))
			osch.SetInt64(orow, 2, carrier)

			total := 0.0
			ollo := olKey(wid, did, oid, 0)
			olhi := olKey(wid, did, oid, 15)
			var olKeys []uint64
			if err := tx.Scan(t.orderline, ollo, olhi, func(key uint64, row storage.Row) bool {
				total += olsch.GetFloat64(row, 4)
				olKeys = append(olKeys, key)
				return true
			}); err != nil {
				return err
			}
			for _, k := range olKeys {
				row, err := tx.Update(t.orderline, k)
				if err != nil {
					return err
				}
				olsch.SetInt64(row, 2, 1) // delivery date
			}

			crow, err := tx.Update(t.customer, cKey(wid, did, cid))
			if err != nil {
				return err
			}
			csch.SetFloat64(crow, 12, csch.GetFloat64(crow, 12)+total)
			csch.SetInt64(crow, 15, csch.GetInt64(crow, 15)+1)
		}
		return nil
	})
}

// stockLevel is TPC-C transaction 2.8 (read-only).
func (t *TPCC) stockLevel(tx *core.Tx, w *tpccWorker) error {
	rng := tx.RNG()
	wid := t.homeWarehouse(tx)
	did := rng.IntRange(1, t.cfg.DistrictsPerWarehouse)
	threshold := int64(rng.IntRange(10, 20))
	dsch, olsch, ssch := t.district.Schema(), t.orderline.Schema(), t.stock.Schema()

	return tx.Run(func(tx *core.Tx) error {
		if t.eng.Protocol() == "HSTORE" {
			if err := tx.DeclarePartitions(t.partitionOfWarehouse(wid)); err != nil {
				return err
			}
		}
		drow, err := tx.Read(t.district, dKey(wid, did))
		if err != nil {
			return err
		}
		nextOID := dsch.GetInt64(drow, 7)
		loOID := nextOID - 20
		if loOID < 1 {
			loOID = 1
		}
		seen := make(map[int64]bool, 64)
		lo := olKey(wid, did, loOID, 0)
		hi := olKey(wid, did, nextOID, 15)
		if err := tx.Scan(t.orderline, lo, hi, func(_ uint64, row storage.Row) bool {
			seen[olsch.GetInt64(row, 0)] = true
			return true
		}); err != nil {
			return err
		}
		low := 0
		for item := range seen {
			srow, err := tx.Read(t.stock, sKey(wid, int(item)))
			if err != nil {
				return err
			}
			if ssch.GetInt64(srow, 0) < threshold {
				low++
			}
		}
		_ = low
		return nil
	})
}

package workload

import (
	"fmt"

	"next700/internal/core"
	"next700/internal/storage"
)

// Verify implements Verifier with the TPC-C consistency conditions of spec
// clause 3.3.2 that our schema retains:
//
//	C1: W_YTD - initial = sum over districts of (D_YTD - initial)
//	C2: D_NEXT_O_ID - 1 = max(O_ID) in ORDER and >= every NEW_ORDER id
//	C3: for a sample of orders, O_OL_CNT equals the number of ORDER_LINE
//	    rows
//
// Runs single-threaded after the workload quiesces.
func (t *TPCC) Verify(e *core.Engine) error {
	tx := e.NewTx(0, 0x7E57)
	wsch, dsch, osch := t.warehouse.Schema(), t.district.Schema(), t.order.Schema()

	for w := 1; w <= t.cfg.Warehouses; w++ {
		var wYTD float64
		var dYTDSum float64
		err := tx.Run(func(tx *core.Tx) error {
			wrow, err := tx.Read(t.warehouse, wKey(w))
			if err != nil {
				return err
			}
			wYTD = wsch.GetFloat64(wrow, 6)
			dYTDSum = 0
			for d := 1; d <= t.cfg.DistrictsPerWarehouse; d++ {
				drow, err := tx.Read(t.district, dKey(w, d))
				if err != nil {
					return err
				}
				dYTDSum += dsch.GetFloat64(drow, 6)
			}
			return nil
		})
		if err != nil {
			return err
		}
		wantDelta := wYTD - 300000
		gotDelta := dYTDSum - 30000*float64(t.cfg.DistrictsPerWarehouse)
		if diff := wantDelta - gotDelta; diff > 0.01 || diff < -0.01 {
			return fmt.Errorf("tpcc C1: warehouse %d YTD delta %.2f != district sum delta %.2f",
				w, wantDelta, gotDelta)
		}

		for d := 1; d <= t.cfg.DistrictsPerWarehouse; d++ {
			var nextOID, maxOrder, maxNewOrder int64
			err := tx.Run(func(tx *core.Tx) error {
				drow, err := tx.Read(t.district, dKey(w, d))
				if err != nil {
					return err
				}
				nextOID = dsch.GetInt64(drow, 7)
				maxOrder, maxNewOrder = 0, 0
				if err := tx.ScanDesc(t.order, oKey(w, d, 0), oKey(w, d, 0xFFFFFFFF),
					func(key uint64, _ storage.Row) bool {
						maxOrder = int64(key & 0xFFFFFFFF)
						return false
					}); err != nil {
					return err
				}
				return tx.ScanDesc(t.neworder, oKey(w, d, 0), oKey(w, d, 0xFFFFFFFF),
					func(key uint64, _ storage.Row) bool {
						maxNewOrder = int64(key & 0xFFFFFFFF)
						return false
					})
			})
			if err != nil {
				return err
			}
			if maxOrder != nextOID-1 {
				return fmt.Errorf("tpcc C2: (%d,%d) next_o_id %d but max order %d",
					w, d, nextOID, maxOrder)
			}
			if maxNewOrder > maxOrder {
				return fmt.Errorf("tpcc C2: (%d,%d) new_order %d beyond max order %d",
					w, d, maxNewOrder, maxOrder)
			}

			// C3 on a sample: the last few orders.
			for o := maxOrder; o > maxOrder-5 && o >= 1; o-- {
				var wantCnt, gotCnt int64
				err := tx.Run(func(tx *core.Tx) error {
					orow, err := tx.Read(t.order, oKey(w, d, o))
					if err != nil {
						return err
					}
					wantCnt = osch.GetInt64(orow, 3)
					gotCnt = 0
					return tx.Scan(t.orderline, olKey(w, d, o, 0), olKey(w, d, o, 15),
						func(uint64, storage.Row) bool {
							gotCnt++
							return true
						})
				})
				if err != nil {
					return err
				}
				if wantCnt != gotCnt {
					return fmt.Errorf("tpcc C3: order (%d,%d,%d) ol_cnt %d but %d lines",
						w, d, o, wantCnt, gotCnt)
				}
			}
		}
	}
	return nil
}

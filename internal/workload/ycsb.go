package workload

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"

	"next700/internal/core"
	"next700/internal/storage"
	"next700/internal/wal"
	"next700/internal/xrand"
)

// YCSBConfig parameterizes the YCSB-style key-value microbenchmark — the
// workload every contention/scalability sweep in the design-space
// evaluation uses.
type YCSBConfig struct {
	// Records is the table size (default 100_000).
	Records uint64
	// FieldSize is the value payload per row in bytes (default 100, the
	// DBx1000 convention).
	FieldSize int
	// OpsPerTxn is the number of accesses per transaction (default 16).
	OpsPerTxn int
	// ReadRatio is the fraction of operations that are reads; the rest are
	// read-modify-writes (default 0.5).
	ReadRatio float64
	// Theta is the Zipfian skew in [0, 1) (default 0 = uniform).
	Theta float64
	// Partitions spreads keys round-robin over this many partitions for
	// the H-Store experiments (default: engine partition count).
	Partitions int
	// PartitionLocal makes each worker draw keys from its home partition
	// (plus a second one per MultiPartitionFraction) — the H-Store data
	// layout. Off by default: workers share one Zipfian keyspace, which is
	// what contention experiments require. Implied by a non-zero
	// MultiPartitionFraction.
	PartitionLocal bool
	// MultiPartitionFraction is the probability that a transaction touches
	// a second partition (default 0: single-partition). Implies
	// PartitionLocal.
	MultiPartitionFraction float64
	// MaxThreads sizes per-worker state (default: engine thread count).
	MaxThreads int
	// ScanFraction is the probability an operation is a short range scan
	// (requires a B+ tree primary; default 0).
	ScanFraction float64
	// ScanLength is the span of range scans (default 50).
	ScanLength int
	// InterleaveOps yields the scheduler between operations. On hosts with
	// few physical cores, goroutines otherwise run entire transactions
	// within one scheduling quantum and logical contention never
	// materializes; yielding restores the interleavings a many-core host
	// would produce. Costs throughput, preserves relative behavior.
	InterleaveOps bool
}

func (c *YCSBConfig) normalize() {
	if c.MultiPartitionFraction > 0 {
		c.PartitionLocal = true
	}
	if c.Records == 0 {
		c.Records = 100_000
	}
	if c.FieldSize <= 0 {
		c.FieldSize = 100
	}
	if c.OpsPerTxn <= 0 {
		c.OpsPerTxn = 16
	}
	if c.ReadRatio < 0 || c.ReadRatio > 1 {
		c.ReadRatio = 0.5
	}
	if c.ScanLength <= 0 {
		c.ScanLength = 50
	}
}

// ycsbWorker is the per-thread generator state. The transaction body
// closure and partition plan live here so RunOne allocates nothing per
// transaction: a fresh closure per call would put one heap allocation on
// every measured transaction.
type ycsbWorker struct {
	zipf  *xrand.Zipf
	keys  []uint64
	ops   []byte // 0 read, 1 rmw, 2 scan
	home  int
	other int
	body  func(tx *core.Tx) error
}

// YCSB is the workload instance.
type YCSB struct {
	cfg   YCSBConfig
	eng   *core.Engine
	table *core.Table
	sch   *storage.Schema

	// workers is indexed by ThreadID; each slot is owned by exactly one
	// goroutine (the engine's worker contract), so access is unsynchronized.
	workers []*ycsbWorker
	cmdLog  bool

	// det is the deterministic-mode planning state, owned by the single
	// sequencer goroutine (see ycsb_det.go).
	det ycsbDetState
}

// NewYCSB builds a YCSB workload with the given configuration.
func NewYCSB(cfg YCSBConfig) *YCSB {
	cfg.normalize()
	return &YCSB{cfg: cfg}
}

// Name implements Workload.
func (y *YCSB) Name() string { return "ycsb" }

// Config returns the normalized configuration.
func (y *YCSB) Config() YCSBConfig { return y.cfg }

// ycsbProcID is the stored-procedure id for command logging.
const ycsbProcID = 10

// Setup implements Workload.
func (y *YCSB) Setup(e *core.Engine) error {
	if err := y.SetupSchema(e); err != nil {
		return err
	}
	return y.LoadData()
}

// SetupSchema creates the table, partitioner, and stored procedures
// without loading any rows. This is the shape store-based recovery needs:
// core.LoadCheckpoint requires empty tables, so a recovering caller runs
// SetupSchema first and passes LoadData as the RecoverFromStore fallback
// (invoked only when no checkpoint generation is loadable).
func (y *YCSB) SetupSchema(e *core.Engine) error {
	y.eng = e
	if y.cfg.Partitions <= 0 {
		y.cfg.Partitions = e.Config().Partitions
	}
	if y.cfg.MaxThreads <= 0 {
		y.cfg.MaxThreads = e.Config().Threads
	}
	y.workers = make([]*ycsbWorker, y.cfg.MaxThreads)
	y.cmdLog = e.Config().LogMode == wal.ModeCommand

	sch, err := storage.NewSchema("usertable",
		storage.I64("ver"),
		storage.Str("field", y.cfg.FieldSize),
	)
	if err != nil {
		return err
	}
	y.sch = sch
	kind := core.IndexHash
	if y.cfg.ScanFraction > 0 {
		kind = core.IndexBTree
	}
	tbl, err := e.CreateTable(sch, kind)
	if err != nil {
		return err
	}
	y.table = tbl

	e.SetPartitioner(func(t *core.Table, key uint64) int {
		return int(key % uint64(y.cfg.Partitions))
	})

	if y.cmdLog {
		if err := e.RegisterProc(ycsbProcID, y.execProc); err != nil {
			return err
		}
	}
	return nil
}

// LoadData populates the table with the deterministic initial records.
// SetupSchema must have run first.
func (y *YCSB) LoadData() error {
	sch, tbl := y.sch, y.table
	rng := xrand.New(0xC0FFEE)
	row := sch.NewRow()
	field := make([]byte, y.cfg.FieldSize)
	for k := uint64(0); k < y.cfg.Records; k++ {
		sch.SetInt64(row, 0, 0)
		sch.SetString(row, 1, rng.Letters(field))
		if err := y.eng.Load(tbl, k, row); err != nil {
			return err
		}
	}
	return nil
}

// worker returns (creating on first use) the per-thread state. Slots are
// owned by their worker goroutine.
func (y *YCSB) worker(tx *core.Tx) *ycsbWorker {
	id := tx.ThreadID()
	w := y.workers[id]
	if w == nil {
		domain := y.cfg.Records
		if y.cfg.PartitionLocal {
			domain = y.cfg.Records / uint64(y.cfg.Partitions)
		}
		w = &ycsbWorker{
			zipf: xrand.NewZipf(tx.RNG(), domain, y.cfg.Theta),
			keys: make([]uint64, 0, y.cfg.OpsPerTxn),
			ops:  make([]byte, 0, y.cfg.OpsPerTxn),
		}
		declare := y.cfg.PartitionLocal && y.eng.Protocol() == "HSTORE"
		w.body = func(tx *core.Tx) error {
			// Pre-declare partitions only in partition-local mode; otherwise
			// HSTORE falls back to lazy try-lock acquisition.
			if declare {
				if w.other >= 0 {
					if err := tx.DeclarePartitions(w.home, w.other); err != nil {
						return err
					}
				} else if err := tx.DeclarePartitions(w.home); err != nil {
					return err
				}
			}
			return y.execOps(tx, w.keys, w.ops)
		}
		y.workers[id] = w
	}
	return w
}

// generate fills the worker's key/op plan for one transaction and returns
// the partitions it touches.
func (y *YCSB) generate(tx *core.Tx, w *ycsbWorker) (homePart, otherPart int) {
	rng := tx.RNG()
	p := y.cfg.Partitions
	homePart = tx.ThreadID() % p
	otherPart = -1
	if y.cfg.MultiPartitionFraction > 0 && p > 1 && rng.Bool(y.cfg.MultiPartitionFraction) {
		otherPart = (homePart + 1 + rng.Intn(p-1)) % p
	}
	w.keys = w.keys[:0]
	w.ops = w.ops[:0]
	for i := 0; i < y.cfg.OpsPerTxn; i++ {
		var key uint64
		if y.cfg.PartitionLocal {
			part := homePart
			if otherPart >= 0 && i%2 == 1 {
				part = otherPart
			}
			// Draw within the partition, then spread: key = draw*P + part.
			key = w.zipf.Next()*uint64(p) + uint64(part)
			if key >= y.cfg.Records {
				key = uint64(part)
			}
		} else {
			key = w.zipf.Next()
		}
		// Ensure distinct keys inside a transaction (standard driver
		// behavior; duplicate accesses distort conflict statistics).
		dup := false
		for _, k := range w.keys {
			if k == key {
				dup = true
				break
			}
		}
		if dup {
			i--
			continue
		}
		op := byte(0)
		switch {
		case y.cfg.ScanFraction > 0 && rng.Bool(y.cfg.ScanFraction):
			op = 2
		case !rng.Bool(y.cfg.ReadRatio):
			op = 1
		}
		w.keys = append(w.keys, key)
		w.ops = append(w.ops, op)
	}
	return homePart, otherPart
}

// RunOne implements Workload.
func (y *YCSB) RunOne(tx *core.Tx) error {
	w := y.worker(tx)
	w.home, w.other = y.generate(tx, w)

	if y.cmdLog {
		return tx.RunProc(ycsbProcID, y.encodeParams(w))
	}
	return tx.Run(w.body)
}

// execOps performs the planned accesses.
func (y *YCSB) execOps(tx *core.Tx, keys []uint64, ops []byte) error {
	for i, key := range keys {
		if y.cfg.InterleaveOps {
			runtime.Gosched()
		}
		switch ops[i] {
		case 1: // read-modify-write
			row, err := tx.Update(y.table, key)
			if err != nil {
				return err
			}
			y.sch.SetInt64(row, 0, y.sch.GetInt64(row, 0)+1)
		case 2: // short range scan
			hi := key + uint64(y.cfg.ScanLength)
			if err := tx.Scan(y.table, key, hi, func(uint64, storage.Row) bool {
				return true
			}); err != nil {
				return err
			}
		default: // read
			row, err := tx.Read(y.table, key)
			if err != nil {
				return err
			}
			_ = y.sch.GetInt64(row, 0)
		}
	}
	return nil
}

// encodeParams serializes the op plan for command logging.
func (y *YCSB) encodeParams(w *ycsbWorker) []byte {
	buf := make([]byte, 0, 4+9*len(w.keys))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(w.keys)))
	for i := range w.keys {
		buf = append(buf, w.ops[i])
		buf = binary.LittleEndian.AppendUint64(buf, w.keys[i])
	}
	return buf
}

// execProc is the command-logging stored procedure.
func (y *YCSB) execProc(tx *core.Tx, params []byte) error {
	if len(params) < 4 {
		return errors.New("ycsb: short params")
	}
	n := int(binary.LittleEndian.Uint32(params))
	params = params[4:]
	if len(params) < 9*n {
		return errors.New("ycsb: truncated params")
	}
	keys := make([]uint64, n)
	ops := make([]byte, n)
	for i := 0; i < n; i++ {
		ops[i] = params[0]
		keys[i] = binary.LittleEndian.Uint64(params[1:])
		params = params[9:]
	}
	return y.execOps(tx, keys, ops)
}

// Verify implements Verifier: the version column total must equal the
// number of committed RMW operations; here we only validate structural
// integrity (every key readable), since per-op commit counts live in the
// harness.
func (y *YCSB) Verify(e *core.Engine) error {
	tx := e.NewTx(0, 0xBEEF)
	step := y.cfg.Records/1000 + 1
	return tx.Run(func(tx *core.Tx) error {
		for k := uint64(0); k < y.cfg.Records; k += step {
			if _, err := tx.Read(y.table, k); err != nil {
				return fmt.Errorf("ycsb: key %d unreadable: %w", k, err)
			}
		}
		return nil
	})
}

package workload

import (
	"errors"

	"next700/internal/core"
	"next700/internal/det"
	"next700/internal/xrand"
)

// Deterministic (queue-oriented) YCSB: the same keyspace, skew, and
// read/RMW mix as the interactive driver, but with every transaction's
// access set declared up front so the det planner can compile batches.
//
// Differences from the interactive path, all forced by declaration:
//
//   - Randomness comes from the sequencer RNG, not per-worker RNGs: key
//     choice must be identical regardless of how many partitions execute
//     the batch, or the determinism oracle (same digest across worker
//     counts) would be comparing different workloads.
//   - Range scans are not declarable as point access sets, so ScanFraction
//     is ignored in deterministic mode (every op is a read or an RMW).
//   - MultiPartitionFraction selects "transfer" transactions that exercise
//     delivery dependencies: an OpReadSend of a source key delivers its
//     version counter, and an OpRecvUpdate installs delivered+1 into a
//     destination key. With keys spread modulo the partition count, these
//     routinely span partitions.

// detState is the sequencer-side planning state, lazily bound to the
// sequencer RNG on first PlanTxn.
type ycsbDetState struct {
	rng  *xrand.RNG
	zipf *xrand.Zipf
}

// PlanTxn implements DeclaredAccess. All randomness is drawn from rng (the
// sequencer's), so a (seed, batch schedule) pair fully determines every
// plan. The Zipfian generator is (re)built when the RNG changes identity,
// which keeps repeated runs on fresh sequencers independent.
func (y *YCSB) PlanTxn(rng *xrand.RNG, plan *det.TxnPlan) {
	if y.det.rng != rng {
		y.det.rng = rng
		y.det.zipf = xrand.NewZipf(rng, y.cfg.Records, y.cfg.Theta)
	}
	n := y.cfg.OpsPerTxn
	transfer := y.cfg.MultiPartitionFraction > 0 && rng.Bool(y.cfg.MultiPartitionFraction)
	if transfer {
		n -= 2
	}
	for i := 0; i < n; i++ {
		key, ok := y.detKey(plan)
		if !ok {
			break
		}
		if !rng.Bool(y.cfg.ReadRatio) {
			plan.Add(det.OpUpdate, 0, key, 1)
		} else {
			plan.Add(det.OpRead, 0, key, 0)
		}
	}
	if transfer {
		dst, ok1 := y.detKey(plan)
		src, ok2 := y.detKey(plan)
		if ok1 && ok2 {
			// Declared recv-before-send on purpose: hoisting sends to the
			// fragment front is the planner's job, and declaring in the
			// "wrong" order keeps that path exercised.
			plan.Add(det.OpRecvUpdate, 0, dst, 1)
			plan.Add(det.OpReadSend, 0, src, 0)
		}
	}
}

// detKey draws a Zipfian key distinct from every key already declared in
// plan (the standard distinct-keys driver convention). Gives up after the
// keyspace is plausibly exhausted so tiny test tables cannot wedge the
// sequencer.
func (y *YCSB) detKey(plan *det.TxnPlan) (uint64, bool) {
	for attempt := 0; attempt < 64; attempt++ {
		key := y.det.zipf.Next()
		dup := false
		for i := range plan.Ops {
			if plan.Ops[i].Key == key {
				dup = true
				break
			}
		}
		if !dup {
			return key, true
		}
	}
	return 0, false
}

// ExecOp implements DeclaredAccess. OpUpdate bumps the version counter by
// Aux (the interactive RMW semantics); OpReadSend delivers the counter;
// OpRecvUpdate installs delivered+Aux.
//
//next700:hotpath
func (y *YCSB) ExecOp(tx *core.Tx, op det.Op, mb *det.Mailbox) error {
	switch op.Kind {
	case det.OpRead:
		row, err := tx.Read(y.table, op.Key)
		if err != nil {
			return err
		}
		_ = y.sch.GetInt64(row, 0)
		return nil
	case det.OpUpdate:
		row, err := tx.Update(y.table, op.Key)
		if err != nil {
			return err
		}
		y.sch.SetInt64(row, 0, y.sch.GetInt64(row, 0)+int64(op.Aux))
		return nil
	case det.OpReadSend:
		row, err := tx.Read(y.table, op.Key)
		if err != nil {
			return err
		}
		mb.Send(op.Slot, uint64(y.sch.GetInt64(row, 0)))
		return nil
	case det.OpRecvUpdate:
		if err := mb.Collect(); err != nil {
			return err
		}
		row, err := tx.Update(y.table, op.Key)
		if err != nil {
			return err
		}
		// Transfer transactions have exactly one send, so the delivered
		// value is always slot 0.
		y.sch.SetInt64(row, 0, int64(mb.Vals[0])+int64(op.Aux))
		return nil
	default:
		return errUnplannableOp
	}
}

// errUnplannableOp is unreachable for plans produced by PlanTxn; it guards
// hand-built plans handed to the executor with kinds YCSB never declares.
var errUnplannableOp = errors.New("ycsb: unplannable deterministic op kind")

package workload

import (
	"next700/internal/core"
	"next700/internal/det"
	"next700/internal/xrand"
)

// DeclaredAccess is the deterministic-execution counterpart of Workload: a
// workload whose transactions can declare their complete access sets before
// running. The harness's deterministic mode (RunDet) sequences transactions
// by calling PlanTxn on a single sequencer goroutine, compiles each batch
// into per-partition queues with det.Planner, and executes the queues
// through core.DetExecutor, which calls ExecOp once per planned operation.
//
// The split is what makes queue-oriented execution possible at all:
// everything data-dependent (which keys, which kinds, payload values) is
// decided at planning time from the sequencer RNG, so execution is a pure
// function of (plan, database state) — no per-worker randomness, no clocks —
// and the same seed yields the same plans and therefore the same final
// state at any partition count.
//
// A type that also implements Workload (YCSB does) can run on both axes:
// interactively under the concurrency-control protocols, and batched under
// the deterministic scheduler, which is exactly the comparison the
// BENCH_det sweep draws.
type DeclaredAccess interface {
	// Name identifies the workload in reports.
	Name() string
	// Setup creates tables and loads initial data. Single-threaded; must be
	// called exactly once before any PlanTxn/ExecOp (same contract as
	// Workload.Setup).
	Setup(e *core.Engine) error
	// PlanTxn declares one transaction's access set into plan (which the
	// caller has Reset), drawing all randomness from the sequencer-owned
	// rng. It must not touch the engine.
	PlanTxn(rng *xrand.RNG, plan *det.TxnPlan)
	// ExecOp executes one planned operation in a fragment's transaction
	// context. Implementations must be pure functions of (engine state, op,
	// mailbox); OpRecvUpdate implementations call mb.Collect before reading
	// delivered values and must propagate its error (a canceled batch).
	ExecOp(tx *core.Tx, op det.Op, mb *det.Mailbox) error
}

// Package workload implements the standard OLTP benchmarks the evaluation
// drives through the engine: YCSB (skewable key-value microbenchmark),
// TPC-C (the full five-transaction order-entry mix at configurable scale),
// and SmallBank (six short banking procedures).
//
// Workloads create and load their own tables through the engine's load
// path and then produce transactions through RunOne, which drives the
// engine's retry loop; all randomness flows through the worker-local RNG so
// runs are reproducible per (seed, thread).
package workload

import (
	"fmt"

	"next700/internal/core"
)

// Workload is the interface the harness and benchmarks drive.
type Workload interface {
	// Name identifies the workload in reports.
	Name() string
	// Setup creates tables and loads initial data. Single-threaded; must
	// be called exactly once before any RunOne.
	Setup(e *core.Engine) error
	// RunOne executes one complete transaction (including retries) on the
	// given worker context. Implementations choose the transaction type
	// from the configured mix using the worker RNG.
	RunOne(tx *core.Tx) error
}

// Verifier is implemented by workloads that can check their global
// consistency invariants after a run (single-threaded).
type Verifier interface {
	// Verify returns an error describing the first violated invariant.
	Verify(e *core.Engine) error
}

// New constructs a workload by name with default configuration, for the
// CLI tools. Recognized: "ycsb", "tpcc", "smallbank".
func New(name string) (Workload, error) {
	switch name {
	case "ycsb":
		return NewYCSB(YCSBConfig{}), nil
	case "tpcc":
		return NewTPCC(TPCCConfig{}), nil
	case "smallbank":
		return NewSmallBank(SmallBankConfig{}), nil
	default:
		return nil, fmt.Errorf("workload: unknown workload %q", name)
	}
}

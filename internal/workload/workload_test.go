package workload

import (
	"sync"
	"testing"

	"next700/internal/cc"
	"next700/internal/core"
)

func openEngine(t testing.TB, protocol string, threads, partitions int) *core.Engine {
	t.Helper()
	e, err := core.Open(core.Config{Protocol: protocol, Threads: threads, Partitions: partitions})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// drive runs n transactions per worker across the configured threads.
func drive(t testing.TB, e *core.Engine, w Workload, threads, perWorker int) {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tx := e.NewTx(id, uint64(id)*7919+13)
			for j := 0; j < perWorker; j++ {
				if err := w.RunOne(tx); err != nil {
					t.Errorf("worker %d txn %d: %v", id, j, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestNewByName(t *testing.T) {
	for _, name := range []string{"ycsb", "tpcc", "smallbank"} {
		w, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		if w.Name() != name {
			t.Fatalf("Name() = %q", w.Name())
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestYCSBAllProtocols(t *testing.T) {
	for _, protocol := range cc.Names() {
		t.Run(protocol, func(t *testing.T) {
			const threads = 4
			e := openEngine(t, protocol, threads, threads)
			y := NewYCSB(YCSBConfig{
				Records: 4096, OpsPerTxn: 8, Theta: 0.6, ReadRatio: 0.5,
			})
			if err := y.Setup(e); err != nil {
				t.Fatal(err)
			}
			drive(t, e, y, threads, 100)
			if err := y.Verify(e); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestYCSBScans(t *testing.T) {
	e := openEngine(t, "SILO", 2, 2)
	y := NewYCSB(YCSBConfig{Records: 2000, OpsPerTxn: 4, ScanFraction: 0.3, ScanLength: 20})
	if err := y.Setup(e); err != nil {
		t.Fatal(err)
	}
	drive(t, e, y, 2, 50)
}

func TestYCSBMultiPartitionHStore(t *testing.T) {
	const threads = 4
	e := openEngine(t, "HSTORE", threads, threads)
	y := NewYCSB(YCSBConfig{
		Records: 4096, OpsPerTxn: 8, MultiPartitionFraction: 0.5,
	})
	if err := y.Setup(e); err != nil {
		t.Fatal(err)
	}
	drive(t, e, y, threads, 100)
	if err := y.Verify(e); err != nil {
		t.Fatal(err)
	}
}

func TestYCSBDeterministicPlan(t *testing.T) {
	// The same seed must generate the same key sequence (reproducibility).
	gen := func() []uint64 {
		e := openEngine(t, "SILO", 1, 1)
		y := NewYCSB(YCSBConfig{Records: 1000, OpsPerTxn: 8, Theta: 0.9})
		if err := y.Setup(e); err != nil {
			t.Fatal(err)
		}
		tx := e.NewTx(0, 42)
		w := y.worker(tx)
		y.generate(tx, w)
		return append([]uint64(nil), w.keys...)
	}
	a, b := gen(), gen()
	if len(a) == 0 {
		t.Fatal("no keys generated")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plans diverge at %d: %v vs %v", i, a, b)
		}
	}
}

func smallTPCCConfig() TPCCConfig {
	return TPCCConfig{
		Warehouses:               2,
		DistrictsPerWarehouse:    3,
		CustomersPerDistrict:     60,
		Items:                    200,
		InitialOrdersPerDistrict: 60,
	}
}

func TestTPCCAllProtocols(t *testing.T) {
	for _, protocol := range cc.Names() {
		t.Run(protocol, func(t *testing.T) {
			const threads = 4
			e := openEngine(t, protocol, threads, 2)
			w := NewTPCC(smallTPCCConfig())
			if err := w.Setup(e); err != nil {
				t.Fatal(err)
			}
			drive(t, e, w, threads, 60)
			committed := w.Committed()
			var total uint64
			for _, c := range committed {
				total += c
			}
			if total != threads*60 {
				t.Fatalf("committed %d txns, want %d (%v)", total, threads*60, committed)
			}
			// All five types should have run at this volume.
			for i, c := range committed {
				if c == 0 {
					t.Errorf("transaction type %d never committed", i)
				}
			}
			if err := w.Verify(e); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestTPCCKeyEncodings(t *testing.T) {
	// Round-trip the decodes used by secondary extractors and partitioning.
	cases := []struct{ w, d, c int }{{1, 1, 1}, {7, 10, 2999}, {100, 15, 1}}
	for _, tc := range cases {
		pk := cKey(tc.w, tc.d, tc.c)
		if int(pk>>21) != tc.w || int(pk>>17&0xF) != tc.d || int(pk&0x1FFFF) != tc.c {
			t.Fatalf("cKey decode broken for %+v", tc)
		}
	}
	ok := oKey(3, 7, 12345)
	if int(ok>>36) != 3 || int(ok>>32&0xF) != 7 || int64(ok&0xFFFFFFFF) != 12345 {
		t.Fatal("oKey decode broken")
	}
	olk := olKey(3, 7, 12345, 9)
	if olk>>4 != ok || int(olk&0xF) != 9 {
		t.Fatal("olKey layout broken")
	}
	if olk>>40 != 3 {
		t.Fatal("orderline warehouse bits broken")
	}
	sk := sKey(5, 99999)
	if int(sk>>17) != 5 || int(sk&0x1FFFF) != 99999 {
		t.Fatal("sKey decode broken")
	}
}

func TestTPCCNameKeyGroupsScanable(t *testing.T) {
	// All customers sharing (w, d, last) must fall in one scan range.
	last := []byte("BARBARBAR")
	base := cNameKey(2, 3, last, 0) &^ 0x1FFFF
	for c := 1; c < 100; c += 7 {
		k := cNameKey(2, 3, last, c)
		if k&^0x1FFFF != base {
			t.Fatalf("name key for c=%d left the group range", c)
		}
		if int(k&0x1FFFF) != c {
			t.Fatalf("customer id lost in name key")
		}
	}
	// A different name (usually) maps elsewhere.
	if cNameKey(2, 3, []byte("OUGHTPRIABLE"), 1)&^0x1FFFF == base {
		t.Log("hash collision between name groups (tolerated; readers filter)")
	}
}

func TestTPCCSingleThreadDeterministicMix(t *testing.T) {
	e := openEngine(t, "NO_WAIT", 1, 1)
	w := NewTPCC(smallTPCCConfig())
	if err := w.Setup(e); err != nil {
		t.Fatal(err)
	}
	drive(t, e, w, 1, 200)
	c := w.Committed()
	// With the 45/43/4/4/4 mix, NewOrder and Payment dominate.
	if c[tpccNewOrder] < 50 || c[tpccPayment] < 50 {
		t.Fatalf("mix skewed: %v", c)
	}
	if err := w.Verify(e); err != nil {
		t.Fatal(err)
	}
}

func TestSmallBankAllProtocols(t *testing.T) {
	for _, protocol := range cc.Names() {
		t.Run(protocol, func(t *testing.T) {
			const threads = 4
			e := openEngine(t, protocol, threads, threads)
			w := NewSmallBank(SmallBankConfig{Customers: 1000, HotspotSize: 10})
			if err := w.Setup(e); err != nil {
				t.Fatal(err)
			}
			drive(t, e, w, threads, 150)
			if err := w.Verify(e); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSmallBankHotspotConfig(t *testing.T) {
	w := NewSmallBank(SmallBankConfig{Customers: 50, HotspotSize: 100})
	if w.Config().HotspotSize != 50 {
		t.Fatal("hotspot not clamped to customer count")
	}
}

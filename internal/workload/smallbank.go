package workload

import (
	"fmt"

	"next700/internal/core"
	"next700/internal/storage"
)

// SmallBankConfig parameterizes the SmallBank benchmark (Alomari et al.,
// ICDE'08): six short banking procedures over two balance tables, with a
// configurable hotspot — the standard workload for isolation-anomaly and
// short-transaction studies.
type SmallBankConfig struct {
	// Customers is the number of accounts (default 100_000).
	Customers uint64
	// HotspotSize is the number of hot accounts (default 100).
	HotspotSize uint64
	// HotspotProb is the probability an access targets the hotspot
	// (default 0.25).
	HotspotProb float64
	// MaxThreads sizes per-worker state (default: engine thread count).
	MaxThreads int
}

func (c *SmallBankConfig) normalize() {
	if c.Customers == 0 {
		c.Customers = 100_000
	}
	if c.HotspotSize == 0 {
		c.HotspotSize = 100
	}
	if c.HotspotSize > c.Customers {
		c.HotspotSize = c.Customers
	}
	if c.HotspotProb <= 0 {
		c.HotspotProb = 0.25
	}
}

// smallBankInitial is the starting balance in both tables.
const smallBankInitial = 10_000

// SmallBank is the workload instance.
type SmallBank struct {
	cfg      SmallBankConfig
	eng      *core.Engine
	savings  *core.Table
	checking *core.Table
}

// NewSmallBank builds a SmallBank workload.
func NewSmallBank(cfg SmallBankConfig) *SmallBank {
	cfg.normalize()
	return &SmallBank{cfg: cfg}
}

// Name implements Workload.
func (s *SmallBank) Name() string { return "smallbank" }

// Config returns the normalized configuration.
func (s *SmallBank) Config() SmallBankConfig { return s.cfg }

// Setup implements Workload.
func (s *SmallBank) Setup(e *core.Engine) error {
	s.eng = e
	var err error
	s.savings, err = e.CreateTable(storage.MustSchema("savings", storage.F64("bal")), core.IndexHash)
	if err != nil {
		return err
	}
	s.checking, err = e.CreateTable(storage.MustSchema("checking", storage.F64("bal")), core.IndexHash)
	if err != nil {
		return err
	}
	e.SetPartitioner(func(t *core.Table, key uint64) int {
		return int(key % uint64(e.Config().Partitions))
	})
	srow := s.savings.Schema().NewRow()
	crow := s.checking.Schema().NewRow()
	s.savings.Schema().SetFloat64(srow, 0, smallBankInitial)
	s.checking.Schema().SetFloat64(crow, 0, smallBankInitial)
	for k := uint64(0); k < s.cfg.Customers; k++ {
		if err := e.Load(s.savings, k, srow); err != nil {
			return err
		}
		if err := e.Load(s.checking, k, crow); err != nil {
			return err
		}
	}
	return nil
}

// account draws a customer id, hot or cold.
func (s *SmallBank) account(tx *core.Tx) uint64 {
	rng := tx.RNG()
	if rng.Bool(s.cfg.HotspotProb) {
		return rng.Uint64n(s.cfg.HotspotSize)
	}
	return s.cfg.HotspotSize + rng.Uint64n(s.cfg.Customers-s.cfg.HotspotSize)
}

func (s *SmallBank) get(tx *core.Tx, tbl *core.Table, key uint64) (float64, error) {
	row, err := tx.Read(tbl, key)
	if err != nil {
		return 0, err
	}
	return tbl.Schema().GetFloat64(row, 0), nil
}

func (s *SmallBank) add(tx *core.Tx, tbl *core.Table, key uint64, delta float64) error {
	row, err := tx.Update(tbl, key)
	if err != nil {
		return err
	}
	tbl.Schema().SetFloat64(row, 0, tbl.Schema().GetFloat64(row, 0)+delta)
	return nil
}

// RunOne implements Workload: uniform mix over the six procedures.
func (s *SmallBank) RunOne(tx *core.Tx) error {
	a := s.account(tx)
	b := s.account(tx)
	for b == a {
		b = s.account(tx)
	}
	amount := float64(tx.RNG().IntRange(1, 100))
	declare := func(tx *core.Tx, keys ...uint64) error {
		if s.eng.Protocol() != "HSTORE" {
			return nil
		}
		p := s.eng.Config().Partitions
		parts := make([]int, len(keys))
		for i, k := range keys {
			parts[i] = int(k % uint64(p))
		}
		return tx.DeclarePartitions(parts...)
	}
	switch tx.RNG().Intn(6) {
	case 0: // Balance: read both balances of a.
		return tx.Run(func(tx *core.Tx) error {
			if err := declare(tx, a); err != nil {
				return err
			}
			if _, err := s.get(tx, s.savings, a); err != nil {
				return err
			}
			_, err := s.get(tx, s.checking, a)
			return err
		})
	case 1: // DepositChecking.
		return tx.Run(func(tx *core.Tx) error {
			if err := declare(tx, a); err != nil {
				return err
			}
			return s.add(tx, s.checking, a, amount)
		})
	case 2: // TransactSavings.
		return tx.Run(func(tx *core.Tx) error {
			if err := declare(tx, a); err != nil {
				return err
			}
			return s.add(tx, s.savings, a, amount)
		})
	case 3: // Amalgamate: move everything of a into b's checking.
		return tx.Run(func(tx *core.Tx) error {
			if err := declare(tx, a, b); err != nil {
				return err
			}
			sv, err := tx.Update(s.savings, a)
			if err != nil {
				return err
			}
			ck, err := tx.Update(s.checking, a)
			if err != nil {
				return err
			}
			total := s.savings.Schema().GetFloat64(sv, 0) + s.checking.Schema().GetFloat64(ck, 0)
			s.savings.Schema().SetFloat64(sv, 0, 0)
			s.checking.Schema().SetFloat64(ck, 0, 0)
			return s.add(tx, s.checking, b, total)
		})
	case 4: // WriteCheck: deduct from checking after a balance check.
		return tx.Run(func(tx *core.Tx) error {
			if err := declare(tx, a); err != nil {
				return err
			}
			sBal, err := s.get(tx, s.savings, a)
			if err != nil {
				return err
			}
			ck, err := tx.Update(s.checking, a)
			if err != nil {
				return err
			}
			cBal := s.checking.Schema().GetFloat64(ck, 0)
			penalty := 0.0
			if sBal+cBal < amount {
				penalty = 1
			}
			s.checking.Schema().SetFloat64(ck, 0, cBal-amount-penalty)
			return nil
		})
	default: // SendPayment: checking a -> checking b.
		return tx.Run(func(tx *core.Tx) error {
			if err := declare(tx, a, b); err != nil {
				return err
			}
			if err := s.add(tx, s.checking, a, -amount); err != nil {
				return err
			}
			return s.add(tx, s.checking, b, amount)
		})
	}
}

// Verify implements Verifier: every account row must remain readable and
// hold a finite balance (WriteCheck legitimately removes money from the
// system, so there is no conservation total to assert).
func (s *SmallBank) Verify(e *core.Engine) error {
	tx := e.NewTx(0, 0xD00D)
	return tx.Run(func(tx *core.Tx) error {
		for k := uint64(0); k < s.cfg.Customers; k++ {
			sv, err := s.get(tx, s.savings, k)
			if err != nil {
				return err
			}
			ck, err := s.get(tx, s.checking, k)
			if err != nil {
				return err
			}
			if sv != sv || ck != ck {
				return fmt.Errorf("smallbank: NaN balance at account %d", k)
			}
		}
		return nil
	})
}

package sim

import (
	"testing"
)

var allSimProtocols = []string{
	"NO_WAIT", "WAIT_DIE", "DL_DETECT", "TIMESTAMP", "MVCC", "SILO", "TICTOC", "HSTORE",
}

func run(t *testing.T, cfg Config) Result {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestAllProtocolsMakeProgress(t *testing.T) {
	for _, p := range allSimProtocols {
		t.Run(p, func(t *testing.T) {
			r := run(t, Config{
				Protocol: p, Cores: 8, Records: 1024, Theta: 0.6,
				OpsPerTxn: 8, WriteRatio: 0.5, Horizon: 500_000,
			})
			if r.Commits == 0 {
				t.Fatalf("no commits: %+v", r)
			}
			if r.Throughput <= 0 {
				t.Fatalf("no throughput: %+v", r)
			}
			if r.Latency.Count != r.Commits {
				t.Fatalf("latency samples %d != commits %d", r.Latency.Count, r.Commits)
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	for _, p := range allSimProtocols {
		cfg := Config{
			Protocol: p, Cores: 16, Records: 512, Theta: 0.8,
			OpsPerTxn: 8, WriteRatio: 0.5, Horizon: 300_000, Seed: 99,
		}
		a := run(t, cfg)
		b := run(t, cfg)
		if a.Commits != b.Commits || a.Aborts != b.Aborts || a.Latency.P99 != b.Latency.P99 {
			t.Fatalf("%s not deterministic: %+v vs %+v", p, a, b)
		}
	}
}

func TestUnknownProtocol(t *testing.T) {
	if _, err := Run(Config{Protocol: "XXX"}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestSingleCoreNoAborts(t *testing.T) {
	for _, p := range allSimProtocols {
		r := run(t, Config{
			Protocol: p, Cores: 1, Records: 256, Theta: 0.9,
			OpsPerTxn: 8, WriteRatio: 1, Horizon: 500_000,
		})
		if r.Aborts != 0 {
			t.Fatalf("%s: single core aborted %d times", p, r.Aborts)
		}
		if r.Commits == 0 {
			t.Fatalf("%s: single core made no progress", p)
		}
	}
}

func TestContentionIncreasesAborts(t *testing.T) {
	for _, p := range []string{"NO_WAIT", "SILO", "TIMESTAMP"} {
		low := run(t, Config{
			Protocol: p, Cores: 16, Records: 1 << 14, Theta: 0,
			OpsPerTxn: 8, WriteRatio: 0.5, Horizon: 500_000,
		})
		high := run(t, Config{
			Protocol: p, Cores: 16, Records: 1 << 14, Theta: 0.95,
			OpsPerTxn: 8, WriteRatio: 0.5, Horizon: 500_000,
		})
		if high.AbortRate <= low.AbortRate {
			t.Fatalf("%s: abort rate did not grow with skew (%v -> %v)",
				p, low.AbortRate, high.AbortRate)
		}
	}
}

func TestLowContentionScaling(t *testing.T) {
	// Uniform access, big keyspace: everyone should scale near-linearly
	// from 1 to 16 cores.
	for _, p := range allSimProtocols {
		one := run(t, Config{
			Protocol: p, Cores: 1, Records: 1 << 18, Theta: 0,
			OpsPerTxn: 8, WriteRatio: 0.2, Horizon: 500_000,
		})
		sixteen := run(t, Config{
			Protocol: p, Cores: 16, Records: 1 << 18, Theta: 0,
			OpsPerTxn: 8, WriteRatio: 0.2, Horizon: 500_000,
		})
		scale := sixteen.Throughput / one.Throughput
		if scale < 8 {
			t.Fatalf("%s: poor low-contention scaling: %.1fx at 16 cores", p, scale)
		}
	}
}

func TestTimestampAllocatorBottleneck(t *testing.T) {
	// TIMESTAMP throughput must saturate near the allocator's service rate
	// as cores grow, while SILO (no allocator) keeps scaling.
	mk := func(p string, cores int) Result {
		return run(t, Config{
			Protocol: p, Cores: cores, Records: 1 << 18, Theta: 0,
			OpsPerTxn: 8, WriteRatio: 0.2, Horizon: 500_000,
		})
	}
	to64, to512 := mk("TIMESTAMP", 64), mk("TIMESTAMP", 512)
	silo64, silo512 := mk("SILO", 64), mk("SILO", 512)
	toScale := to512.Throughput / to64.Throughput
	siloScale := silo512.Throughput / silo64.Throughput
	if siloScale < toScale {
		t.Fatalf("allocator bottleneck missing: TO scaled %.2fx, SILO %.2fx", toScale, siloScale)
	}
	// The allocator caps TO near 1/TsAlloc transactions per cycle.
	maxTO := 1e6 / float64(DefaultCosts().TsAlloc)
	if to512.Throughput > maxTO*1.05 {
		t.Fatalf("TO throughput %v exceeds allocator cap %v", to512.Throughput, maxTO)
	}
}

func TestHStoreMultiPartitionCliff(t *testing.T) {
	mk := func(mp float64) Result {
		return run(t, Config{
			Protocol: "HSTORE", Cores: 32, Records: 1 << 14, Theta: 0,
			OpsPerTxn: 8, WriteRatio: 0.5, Horizon: 500_000,
			Partitions: 32, MultiPartitionFraction: mp,
		})
	}
	single := mk(0)
	half := mk(0.5)
	if single.Throughput < 2*half.Throughput {
		t.Fatalf("multi-partition cliff missing: single=%v half=%v",
			single.Throughput, half.Throughput)
	}
}

func TestDLDetectThrashesUnderContention(t *testing.T) {
	// DL_DETECT's shared graph and deadlock aborts must hurt relative to
	// NO_WAIT at high core counts under contention.
	mk := func(p string) Result {
		return run(t, Config{
			Protocol: p, Cores: 128, Records: 1 << 12, Theta: 0.7,
			OpsPerTxn: 8, WriteRatio: 0.6, Horizon: 300_000,
		})
	}
	dl := mk("DL_DETECT")
	nw := mk("NO_WAIT")
	if dl.Throughput >= nw.Throughput {
		t.Fatalf("DL_DETECT should thrash at 128 cores: dl=%v nowait=%v",
			dl.Throughput, nw.Throughput)
	}
}

func TestTicTocAbortsBelowSilo(t *testing.T) {
	mk := func(p string) Result {
		return run(t, Config{
			Protocol: p, Cores: 64, Records: 1 << 12, Theta: 0.9,
			OpsPerTxn: 8, WriteRatio: 0.3, Horizon: 500_000,
		})
	}
	tt := mk("TICTOC")
	si := mk("SILO")
	if tt.AbortRate > si.AbortRate {
		t.Fatalf("TicToc extension should cut aborts: tictoc=%v silo=%v",
			tt.AbortRate, si.AbortRate)
	}
}

func TestLatencyGrowsWithCores(t *testing.T) {
	mk := func(cores int) Result {
		return run(t, Config{
			Protocol: "WAIT_DIE", Cores: cores, Records: 1 << 10, Theta: 0.7,
			OpsPerTxn: 8, WriteRatio: 0.5, Horizon: 500_000,
		})
	}
	small := mk(4)
	big := mk(128)
	if big.Latency.P99 <= small.Latency.P99 {
		t.Fatalf("p99 should grow with contention: %v vs %v",
			small.Latency.P99, big.Latency.P99)
	}
}

func TestOpsCappedAtKeyspace(t *testing.T) {
	r := run(t, Config{
		Protocol: "SILO", Cores: 2, Records: 4, OpsPerTxn: 100, Horizon: 100_000,
	})
	if r.Commits == 0 {
		t.Fatalf("tiny keyspace run broke: %+v", r)
	}
}

func TestHorizonBoundsWork(t *testing.T) {
	// Even a pathological configuration terminates: the horizon bounds
	// virtual time and the event budget bounds same-time churn.
	r := run(t, Config{
		Protocol: "DL_DETECT", Cores: 256, Records: 1 << 10, Theta: 0.8,
		OpsPerTxn: 8, WriteRatio: 0.8, Horizon: 100_000,
	})
	if r.Makespan != 100_000 {
		t.Fatalf("makespan %d", r.Makespan)
	}
}

// TestDeadlineBoundsTransactions: with a per-transaction deadline, every
// protocol still makes progress, contended runs report deadline aborts, the
// deadline-abort count stays within the total abort count, and runs remain
// deterministic. Deadline 0 must keep the historical behavior: no deadline
// aborts at all.
func TestDeadlineBoundsTransactions(t *testing.T) {
	for _, p := range allSimProtocols {
		t.Run(p, func(t *testing.T) {
			cfg := Config{
				Protocol: p, Cores: 16, Records: 256, Theta: 0.9,
				OpsPerTxn: 8, WriteRatio: 0.8, Horizon: 500_000, Seed: 7,
				Deadline: 20_000,
			}
			if p == "HSTORE" {
				cfg.MultiPartitionFraction = 0.4
			}
			a := run(t, cfg)
			if a.Commits == 0 {
				t.Fatalf("no commits under deadline: %+v", a)
			}
			if a.DeadlineAborts > a.Aborts {
				t.Fatalf("deadline aborts %d exceed total aborts %d", a.DeadlineAborts, a.Aborts)
			}
			b := run(t, cfg)
			if a.Commits != b.Commits || a.DeadlineAborts != b.DeadlineAborts {
				t.Fatalf("%s not deterministic under deadline: %+v vs %+v", p, a, b)
			}
			cfg.Deadline = 0
			c := run(t, cfg)
			if c.DeadlineAborts != 0 {
				t.Fatalf("deadline aborts without a deadline: %+v", c)
			}
		})
	}
}

// TestDeadlineExpiresParkedWaiters drives the parked-wait path specifically:
// WAIT_DIE and HSTORE park losers in waiter queues, so a tight deadline on a
// hot workload must convert some of those waits into deadline aborts rather
// than let cores sit out the horizon.
func TestDeadlineExpiresParkedWaiters(t *testing.T) {
	for _, p := range []string{"WAIT_DIE", "HSTORE"} {
		t.Run(p, func(t *testing.T) {
			cfg := Config{
				Protocol: p, Cores: 16, Records: 64, Theta: 0.99,
				OpsPerTxn: 8, WriteRatio: 0.9, Horizon: 500_000, Seed: 3,
				Deadline: 10_000,
			}
			if p == "HSTORE" {
				cfg.Partitions = 4
				cfg.MultiPartitionFraction = 0.6
			}
			r := run(t, cfg)
			if r.DeadlineAborts == 0 {
				t.Fatalf("hot %s run with tight deadline reported no deadline aborts: %+v", p, r)
			}
			if r.Commits == 0 {
				t.Fatalf("no commits: %+v", r)
			}
		})
	}
}

// TestDeadlineCapsTailLatency: the committed-latency tail must respect the
// deadline — a transaction that cannot commit inside it is abandoned, so no
// commit can record a latency beyond deadline + one commit install.
func TestDeadlineCapsTailLatency(t *testing.T) {
	for _, p := range allSimProtocols {
		cfg := Config{
			Protocol: p, Cores: 16, Records: 256, Theta: 0.9,
			OpsPerTxn: 8, WriteRatio: 0.8, Horizon: 500_000, Seed: 11,
			Deadline: 50_000,
		}
		r := run(t, cfg)
		// Commit work scheduled strictly before the deadline may finish just
		// past it; anything further means a wait outlived its deadline.
		slack := cfg.Deadline + uint64(2*cfg.OpsPerTxn)*DefaultCosts().CommitPerOp + DefaultCosts().Access
		if uint64(r.Latency.Max) > slack {
			t.Fatalf("%s: max commit latency %d exceeds deadline %d + slack (%d)",
				p, r.Latency.Max, cfg.Deadline, slack)
		}
	}
}

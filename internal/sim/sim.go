// Package sim is a deterministic discrete-event simulator of a many-core
// in-memory transaction processing engine. It substitutes for the 1000-core
// hardware simulator used by the published design-space studies (DBx1000 on
// Graphite): the same workload generators drive simplified but behaviorally
// faithful models of each concurrency-control protocol over virtual time,
// with an explicit cost model for CPU work, the centralized timestamp
// allocator, lock queueing, deadlock detection, validation, and aborts.
//
// Because time is virtual, results are exactly reproducible, independent of
// the host machine, and free of Go garbage-collection distortion — which is
// why the tail-latency experiment (E9) runs here.
package sim

import (
	"container/heap"
	"fmt"

	"next700/internal/stats"
	"next700/internal/xrand"
)

// CostModel holds per-operation costs in cycles. Defaults approximate a
// main-memory engine on a modern core (a ~1GHz-cycle interpretation keeps
// numbers intuitive: 1000 cycles = 1µs).
type CostModel struct {
	// Access is the CPU cost of one record access (index probe + copy).
	Access uint64
	// TsAlloc is the exclusive-use cost of the central timestamp counter;
	// allocation requests serialize on it.
	TsAlloc uint64
	// CommitPerOp is the per-write-set-entry install/validation cost.
	CommitPerOp uint64
	// AbortPenalty is the fixed cleanup cost of an abort, before backoff.
	AbortPenalty uint64
	// BackoffBase is the mean randomized backoff after an abort.
	BackoffBase uint64
	// DeadlockCheckPerEdge is DL_DETECT's cycle cost per waits-for edge
	// traversed under the shared graph latch.
	DeadlockCheckPerEdge uint64
	// WaitsForLatch is the serialization cost of touching the shared
	// waits-for graph at all.
	WaitsForLatch uint64
}

// DefaultCosts returns the standard cost model.
func DefaultCosts() CostModel {
	return CostModel{
		Access:               200,
		TsAlloc:              50,
		CommitPerOp:          50,
		AbortPenalty:         300,
		BackoffBase:          1000,
		DeadlockCheckPerEdge: 20,
		WaitsForLatch:        100,
	}
}

// Config describes one simulated run.
type Config struct {
	// Protocol is one of the cc protocol names (HSTORE uses Partitions).
	Protocol string
	// Cores is the simulated core count.
	Cores int
	// Records is the keyspace size.
	Records uint64
	// Theta is the Zipfian skew.
	Theta float64
	// OpsPerTxn accesses per transaction.
	OpsPerTxn int
	// WriteRatio is the fraction of accesses that write.
	WriteRatio float64
	// Horizon is the virtual-time measurement window in cycles; cores run
	// transactions back-to-back until it expires (default 2_000_000, i.e.
	// 2ms at a 1GHz-cycle interpretation).
	Horizon uint64
	// Partitions for HSTORE (default Cores).
	Partitions int
	// MultiPartitionFraction for HSTORE.
	MultiPartitionFraction float64
	// Costs is the cost model (zero value replaced by DefaultCosts).
	Costs CostModel
	// Seed for reproducibility.
	Seed uint64
	// Deadline, when > 0, bounds each logical transaction to that many
	// cycles from its first attempt start. A transaction that cannot commit
	// by its deadline is abandoned — parked waiters are pulled out of lock
	// and partition queues, retries that would land past the deadline are
	// not scheduled — and the core moves on to a fresh transaction. Counted
	// in Result.DeadlineAborts. Zero keeps the historical unbounded waits.
	Deadline uint64
}

func (c *Config) normalize() error {
	if c.Cores <= 0 {
		c.Cores = 1
	}
	if c.Records == 0 {
		c.Records = 1 << 16
	}
	if c.OpsPerTxn <= 0 {
		c.OpsPerTxn = 16
	}
	if uint64(c.OpsPerTxn) > c.Records {
		c.OpsPerTxn = int(c.Records)
	}
	if c.Horizon == 0 {
		c.Horizon = 2_000_000
	}
	if c.Partitions <= 0 {
		c.Partitions = c.Cores
	}
	if c.Costs == (CostModel{}) {
		c.Costs = DefaultCosts()
	}
	if c.Seed == 0 {
		c.Seed = 0x51D
	}
	switch c.Protocol {
	case "NO_WAIT", "WAIT_DIE", "DL_DETECT", "TIMESTAMP", "MVCC", "SILO", "TICTOC", "HSTORE":
		return nil
	default:
		return fmt.Errorf("sim: unknown protocol %q", c.Protocol)
	}
}

// Result summarizes one run.
type Result struct {
	Protocol string
	Cores    int
	// Commits and Aborts across all cores.
	Commits, Aborts uint64
	// DeadlineAborts counts transactions abandoned at their deadline
	// (subset of Aborts; 0 unless Config.Deadline is set).
	DeadlineAborts uint64
	// Makespan is the measurement window (the configured horizon).
	Makespan uint64
	// Throughput is commits per million cycles (per-GHz-core: ≈ txn/ms).
	Throughput float64
	// AbortRate is aborts / (commits + aborts).
	AbortRate float64
	// Latency is the distribution of per-transaction virtual latency in
	// cycles (from first attempt start to commit).
	Latency stats.Summary
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("%-10s cores=%-5d thru=%-10.1f abort=%-7.4f p99=%dcyc",
		r.Protocol, r.Cores, r.Throughput, r.AbortRate, r.Latency.P99)
}

// event is a scheduled core resumption. gen != 0 marks a deadline check for
// a parked core: it fires only if the core is still parked on the same wait
// generation (stale checks from completed waits are ignored).
type event struct {
	at   uint64
	core int
	seq  uint64 // tiebreak for determinism
	gen  uint64
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// coreState is one simulated core's transaction in flight.
type coreState struct {
	rng      *xrand.RNG
	zipf     *xrand.Zipf
	done     int // committed transactions
	keys     []uint64
	writes   []bool
	txnStart uint64 // virtual time the logical transaction first started
	ts       uint64 // protocol timestamp of the current attempt
	parts    []int  // HSTORE partitions
}

// Sim is a run in progress.
type Sim struct {
	cfg   Config
	now   uint64
	seq   uint64
	queue eventQueue
	cores []coreState
	model protocolModel

	commits, aborts uint64
	deadlineAborts  uint64
	makespan        uint64
	latency         *stats.Histogram
}

// New builds a simulator for cfg.
func New(cfg Config) (*Sim, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	s := &Sim{
		cfg:     cfg,
		cores:   make([]coreState, cfg.Cores),
		latency: stats.NewHistogram(),
	}
	for i := range s.cores {
		rng := xrand.New(cfg.Seed + uint64(i)*0x9E37 + 1)
		s.cores[i] = coreState{
			rng:    rng,
			zipf:   xrand.NewZipf(rng, cfg.Records, cfg.Theta),
			keys:   make([]uint64, 0, cfg.OpsPerTxn),
			writes: make([]bool, 0, cfg.OpsPerTxn),
		}
	}
	s.model = newProtocolModel(&s.cfg, s)
	return s, nil
}

// schedule enqueues core to resume at time at.
func (s *Sim) schedule(core int, at uint64) {
	s.seq++
	heap.Push(&s.queue, event{at: at, core: core, seq: s.seq})
}

// scheduleDeadline enqueues a deadline check for a core that just parked.
func (s *Sim) scheduleDeadline(core int, at, gen uint64) {
	s.seq++
	heap.Push(&s.queue, event{at: at, core: core, seq: s.seq, gen: gen})
}

// Run executes the simulation to completion and returns the result.
func Run(cfg Config) (Result, error) {
	s, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	for i := range s.cores {
		s.generate(i)
		s.cores[i].txnStart = 0
		s.schedule(i, 0)
	}
	// eventBudget is a safety backstop far above any legitimate run; the
	// horizon is the real bound.
	eventBudget := uint64(50_000_000)
	for s.queue.Len() > 0 && eventBudget > 0 {
		eventBudget--
		ev := heap.Pop(&s.queue).(event)
		if ev.at > s.cfg.Horizon {
			continue // past the measurement window
		}
		s.now = ev.at
		if ev.gen != 0 {
			s.model.expireIfParked(ev.core, ev.gen)
			continue
		}
		s.model.attempt(ev.core)
	}
	res := Result{
		Protocol:       s.cfg.Protocol,
		Cores:          s.cfg.Cores,
		Commits:        s.commits,
		Aborts:         s.aborts,
		DeadlineAborts: s.deadlineAborts,
		Makespan:       s.cfg.Horizon,
		Latency:        s.latency.Summarize(),
	}
	res.Throughput = float64(s.commits) / (float64(s.cfg.Horizon) / 1e6)
	if s.commits+s.aborts > 0 {
		res.AbortRate = float64(s.aborts) / float64(s.commits+s.aborts)
	}
	return res, nil
}

// generate plans the next transaction for core i.
func (s *Sim) generate(i int) {
	c := &s.cores[i]
	c.keys = c.keys[:0]
	c.writes = c.writes[:0]
	c.parts = c.parts[:0]

	if s.cfg.Protocol == "HSTORE" {
		home := i % s.cfg.Partitions
		c.parts = append(c.parts, home)
		if s.cfg.MultiPartitionFraction > 0 && s.cfg.Partitions > 1 &&
			c.rng.Bool(s.cfg.MultiPartitionFraction) {
			other := (home + 1 + c.rng.Intn(s.cfg.Partitions-1)) % s.cfg.Partitions
			c.parts = append(c.parts, other)
		}
	}

	// Transaction lengths vary uniformly in [ops/2, 3*ops/2] around the
	// configured mean. Heterogeneous durations matter: they let a short
	// writer commit inside a long reader's window — the schedule
	// single-version T/O rejects and MVCC accepts.
	n := s.cfg.OpsPerTxn/2 + c.rng.Intn(s.cfg.OpsPerTxn+1)
	if n < 1 {
		n = 1
	}
	if uint64(n) > s.cfg.Records {
		n = int(s.cfg.Records)
	}
	for len(c.keys) < n {
		key := c.zipf.Next()
		dup := false
		for _, k := range c.keys {
			if k == key {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		c.keys = append(c.keys, key)
		c.writes = append(c.writes, c.rng.Bool(s.cfg.WriteRatio))
	}
}

// commitTxn finalizes a committed transaction at virtual time end.
func (s *Sim) commitTxn(i int, end uint64) {
	c := &s.cores[i]
	s.commits++
	s.latency.Record(int64(end - c.txnStart))
	if end > s.makespan {
		s.makespan = end
	}
	c.done++
	s.generate(i)
	c.txnStart = end
	s.schedule(i, end)
}

// abortTxn reschedules a retry of the same transaction after backoff — or,
// when the retry would land past the transaction's deadline, abandons it as
// a deadline abort instead of retrying into certain expiry.
func (s *Sim) abortTxn(i int, at uint64) {
	c := &s.cores[i]
	backoff := s.cfg.Costs.AbortPenalty
	if s.cfg.Costs.BackoffBase > 0 {
		backoff += c.rng.Uint64n(2*s.cfg.Costs.BackoffBase) + 1
	}
	if s.cfg.Deadline > 0 && at+backoff >= c.txnStart+s.cfg.Deadline {
		s.deadlineAbort(i, at)
		return
	}
	s.aborts++
	s.schedule(i, at+backoff)
}

// deadlineAbort abandons the in-flight transaction at time at: its deadline
// has passed (or no retry can beat it), so the core gives up on it and
// moves on to a fresh transaction. Protocol state must already be released.
func (s *Sim) deadlineAbort(i int, at uint64) {
	c := &s.cores[i]
	s.aborts++
	s.deadlineAborts++
	s.generate(i)
	c.txnStart = at
	s.schedule(i, at)
}

package sim

import "sort"

// record is the per-key state shared by all protocol models; each family
// uses its own subset of fields.
type record struct {
	// Lock-based state.
	owner   int   // exclusive holder core, -1 if none
	readers []int // shared holder cores
	waiters []waiter

	// Version state (SILO).
	version     uint64
	lockedUntil uint64 // commit-install window

	// Timestamp state (TIMESTAMP, MVCC, TICTOC).
	wts, rts uint64
	pending  uint64 // TO/MVCC pre-write owner timestamp
}

type waiter struct {
	core      int
	exclusive bool
}

// partitionState is HSTORE's per-partition lock.
type partitionState struct {
	owner   int
	waiters []int
}

// protocolModel advances one core by one step at s.now. expireIfParked
// handles a fired deadline check: abandon the core's transaction if it is
// still parked under the same wait generation.
type protocolModel interface {
	attempt(core int)
	expireIfParked(core int, gen uint64)
}

func newProtocolModel(cfg *Config, s *Sim) protocolModel {
	m := &model{cfg: cfg, s: s, records: make(map[uint64]*record)}
	switch cfg.Protocol {
	case "HSTORE":
		m.parts = make([]partitionState, cfg.Partitions)
		for i := range m.parts {
			m.parts[i].owner = -1
		}
	case "DL_DETECT":
		m.waitsFor = make(map[int]map[int]bool)
	}
	// Per-core attempt scratch.
	// Transaction lengths vary up to 3*OpsPerTxn/2 (see Sim.generate).
	maxOps := 2*cfg.OpsPerTxn + 2
	m.att = make([]attemptState, cfg.Cores)
	for i := range m.att {
		m.att[i] = attemptState{
			obs:  make([]uint64, maxOps),
			obs2: make([]uint64, maxOps),
		}
	}
	return m
}

// attemptState is per-core in-flight attempt scratch.
type attemptState struct {
	pc        int
	tsDrawn   bool
	partsHeld int // HSTORE: how many of c.parts are acquired
	obs       []uint64
	obs2      []uint64
	heldKeys  []uint64 // lock-based / TO pendings
	heldMode  []bool   // exclusive?

	// Parked-wait bookkeeping for deadline expiry: parked is true while the
	// core sits in a lock or partition waiter queue, waitKey/waitPart name
	// the queue (so expiry can remove it), and waitGen increments at every
	// park so a stale deadline check from a completed wait never fires.
	parked   bool
	waitKey  uint64
	waitPart int
	waitGen  uint64
}

func (a *attemptState) reset() {
	a.pc = 0
	a.tsDrawn = false
	a.partsHeld = 0
	a.heldKeys = a.heldKeys[:0]
	a.heldMode = a.heldMode[:0]
	a.parked = false
}

// park records that the core entered a waiter queue and, when a deadline is
// configured, schedules the matching expiry check.
func (m *model) park(core int, key uint64, part int) {
	a := &m.att[core]
	a.parked = true
	a.waitKey = key
	a.waitPart = part
	a.waitGen++
	if dl := m.cfg.Deadline; dl > 0 {
		m.s.scheduleDeadline(core, m.s.cores[core].txnStart+dl, a.waitGen)
	}
}

// model implements all protocol families over the shared record map.
type model struct {
	cfg     *Config
	s       *Sim
	records map[uint64]*record
	att     []attemptState

	// central timestamp allocator (TIMESTAMP, MVCC): busy-until time.
	allocFree uint64
	nextTS    uint64

	// DL_DETECT shared graph.
	waitsFor     map[int]map[int]bool
	graphLatchAt uint64

	// HSTORE partitions.
	parts []partitionState

	// TICTOC logical commit counter is data-driven; nothing global.
}

func (m *model) rec(key uint64) *record {
	r := m.records[key]
	if r == nil {
		r = &record{owner: -1}
		m.records[key] = r
	}
	return r
}

// attempt implements protocolModel.
func (m *model) attempt(core int) {
	if dl := m.cfg.Deadline; dl > 0 && m.s.now >= m.s.cores[core].txnStart+dl {
		m.expire(core, m.s.now)
		return
	}
	switch m.cfg.Protocol {
	case "NO_WAIT", "WAIT_DIE", "DL_DETECT":
		m.stepLock(core)
	case "TIMESTAMP", "MVCC":
		m.stepTO(core)
	case "SILO", "TICTOC":
		m.stepOCC(core)
	case "HSTORE":
		m.stepHStore(core)
	}
}

// priority returns the wait-die age (smaller = older): the logical
// transaction's first start time, tie-broken by core id.
func (m *model) priority(core int) uint64 {
	return m.s.cores[core].txnStart<<16 | uint64(core)
}

// ---- lock-based family ----

func (m *model) stepLock(core int) {
	s := m.s
	c := &s.cores[core]
	a := &m.att[core]

	if a.pc >= len(c.keys) {
		// Commit: install writes, release everything at commit end.
		nW := 0
		for _, w := range c.writes {
			if w {
				nW++
			}
		}
		end := s.now + uint64(nW)*m.cfg.Costs.CommitPerOp
		m.releaseAllLocks(core, end)
		a.reset()
		s.commitTxn(core, end)
		return
	}

	key := c.keys[a.pc]
	excl := c.writes[a.pc]
	r := m.rec(key)

	if m.holdsLock(core, r, excl) {
		a.pc++
		s.schedule(core, s.now+m.cfg.Costs.Access)
		return
	}
	if m.lockFree(core, r, excl) {
		m.grantLock(core, r, excl, key, a)
		a.pc++
		s.schedule(core, s.now+m.cfg.Costs.Access)
		return
	}

	// Conflict.
	switch m.cfg.Protocol {
	case "NO_WAIT":
		m.abortLock(core, s.now)
	case "WAIT_DIE":
		me := m.priority(core)
		for _, h := range m.lockHolders(r, core, excl) {
			if me > m.priority(h) {
				m.abortLock(core, s.now)
				return
			}
		}
		r.waiters = append(r.waiters, waiter{core: core, exclusive: excl})
		m.park(core, key, 0)
	case "DL_DETECT":
		holders := m.lockHolders(r, core, excl)
		// Charge the shared-graph latch plus per-edge traversal.
		edges := 0
		for _, e := range m.waitsFor {
			edges += len(e)
		}
		cost := m.cfg.Costs.WaitsForLatch + uint64(edges)*m.cfg.Costs.DeadlockCheckPerEdge
		// The graph latch serializes all detectors.
		start := m.graphLatchAt
		if s.now > start {
			start = s.now
		}
		m.graphLatchAt = start + cost
		if m.wouldCycle(core, holders) {
			m.abortLock(core, m.graphLatchAt)
			return
		}
		edgesOf := m.waitsFor[core]
		if edgesOf == nil {
			edgesOf = make(map[int]bool)
			m.waitsFor[core] = edgesOf
		}
		for _, h := range holders {
			edgesOf[h] = true
		}
		r.waiters = append(r.waiters, waiter{core: core, exclusive: excl})
		m.park(core, key, 0)
	}
}

func (m *model) holdsLock(core int, r *record, excl bool) bool {
	if r.owner == core {
		return true
	}
	if !excl {
		for _, rd := range r.readers {
			if rd == core {
				return true
			}
		}
	}
	return false
}

func (m *model) lockFree(core int, r *record, excl bool) bool {
	if excl {
		if r.owner != -1 && r.owner != core {
			return false
		}
		for _, rd := range r.readers {
			if rd != core {
				return false
			}
		}
		return true
	}
	return r.owner == -1 || r.owner == core
}

func (m *model) lockHolders(r *record, core int, excl bool) []int {
	var out []int
	if r.owner != -1 && r.owner != core {
		out = append(out, r.owner)
	}
	if excl {
		for _, rd := range r.readers {
			if rd != core {
				out = append(out, rd)
			}
		}
	}
	return out
}

func (m *model) grantLock(core int, r *record, excl bool, key uint64, a *attemptState) {
	if excl {
		// Upgrade drops the shared entry.
		for i, rd := range r.readers {
			if rd == core {
				r.readers = append(r.readers[:i], r.readers[i+1:]...)
				break
			}
		}
		r.owner = core
	} else {
		r.readers = append(r.readers, core)
	}
	a.heldKeys = append(a.heldKeys, key)
	a.heldMode = append(a.heldMode, excl)
}

func (m *model) wouldCycle(core int, holders []int) bool {
	seen := map[int]bool{}
	var dfs func(from int) bool
	dfs = func(from int) bool {
		for next := range m.waitsFor[from] {
			if next == core {
				return true
			}
			if !seen[next] {
				seen[next] = true
				if dfs(next) {
					return true
				}
			}
		}
		return false
	}
	for _, h := range holders {
		if h == core {
			return true
		}
		if !seen[h] {
			seen[h] = true
			if dfs(h) {
				return true
			}
		}
	}
	return false
}

// releaseAllLocks drops core's locks at time t and wakes grantable waiters.
func (m *model) releaseAllLocks(core int, t uint64) {
	a := &m.att[core]
	if m.waitsFor != nil {
		delete(m.waitsFor, core)
	}
	for i, key := range a.heldKeys {
		r := m.rec(key)
		if a.heldMode[i] {
			if r.owner == core {
				r.owner = -1
			}
		} else {
			for j, rd := range r.readers {
				if rd == core {
					r.readers = append(r.readers[:j], r.readers[j+1:]...)
					break
				}
			}
		}
		m.wakeWaiters(r, t)
	}
}

// wakeWaiters grants queued waiters that are now compatible and schedules
// them. Waiters re-execute their blocked step on wake, which re-checks.
func (m *model) wakeWaiters(r *record, t uint64) {
	if len(r.waiters) == 0 {
		return
	}
	ws := r.waiters
	r.waiters = r.waiters[:0]
	for _, w := range ws {
		if m.waitsFor != nil {
			delete(m.waitsFor, w.core)
		}
		m.att[w.core].parked = false
		m.s.schedule(w.core, t)
	}
}

// abortLock rolls back a lock-family attempt.
func (m *model) abortLock(core int, t uint64) {
	m.releaseAllLocks(core, t)
	m.att[core].reset()
	m.s.abortTxn(core, t+m.cfg.Costs.AbortPenalty)
}

// ---- timestamp-ordering family (TIMESTAMP, MVCC) ----

func (m *model) stepTO(core int) {
	s := m.s
	c := &s.cores[core]
	a := &m.att[core]
	mvcc := m.cfg.Protocol == "MVCC"

	if !a.tsDrawn {
		// Serialize on the central allocator: the many-core bottleneck.
		start := m.allocFree
		if s.now > start {
			start = s.now
		}
		m.allocFree = start + m.cfg.Costs.TsAlloc
		m.nextTS++
		c.ts = m.nextTS
		a.tsDrawn = true
		s.schedule(core, m.allocFree)
		return
	}

	if a.pc < len(c.keys) {
		key := c.keys[a.pc]
		r := m.rec(key)
		if c.writes[a.pc] {
			if (r.pending != 0 && r.pending != c.ts) || c.ts < r.rts || c.ts < r.wts {
				m.abortTO(core)
				return
			}
			r.pending = c.ts
			a.heldKeys = append(a.heldKeys, key)
		} else {
			if r.pending != 0 && r.pending != c.ts && r.pending < c.ts {
				m.abortTO(core)
				return
			}
			if !mvcc && c.ts < r.wts {
				// Basic T/O: the read arrived too late. MVCC reads an
				// older version instead.
				m.abortTO(core)
				return
			}
			if c.ts > r.rts {
				r.rts = c.ts
			}
		}
		a.pc++
		s.schedule(core, s.now+m.cfg.Costs.Access)
		return
	}

	// Commit.
	nW := len(a.heldKeys)
	end := s.now + uint64(nW)*m.cfg.Costs.CommitPerOp
	for _, key := range a.heldKeys {
		r := m.rec(key)
		if r.pending == c.ts {
			r.pending = 0
		}
		if c.ts > r.wts {
			r.wts = c.ts
		}
		r.version++
	}
	a.reset()
	c.ts = 0
	s.commitTxn(core, end)
}

func (m *model) abortTO(core int) {
	c := &m.s.cores[core]
	a := &m.att[core]
	for _, key := range a.heldKeys {
		r := m.rec(key)
		if r.pending == c.ts {
			r.pending = 0
		}
	}
	a.reset()
	c.ts = 0
	m.s.abortTxn(core, m.s.now)
}

// ---- optimistic family (SILO, TICTOC) ----

func (m *model) stepOCC(core int) {
	s := m.s
	c := &s.cores[core]
	a := &m.att[core]
	ticToc := m.cfg.Protocol == "TICTOC"

	if a.pc < len(c.keys) {
		r := m.rec(c.keys[a.pc])
		if r.lockedUntil > s.now {
			// Committing writer holds the record: spin until the install
			// window ends.
			s.schedule(core, r.lockedUntil)
			return
		}
		if ticToc {
			a.obs[a.pc] = r.wts
			a.obs2[a.pc] = r.rts
		} else {
			a.obs[a.pc] = r.version
		}
		a.pc++
		s.schedule(core, s.now+m.cfg.Costs.Access)
		return
	}

	// Validation + install, one atomic virtual event (commits are totally
	// ordered in virtual time, mirroring the lock-then-validate phases).
	end := s.now + uint64(len(c.keys))*m.cfg.Costs.CommitPerOp

	if ticToc {
		// Compute the commit timestamp from observed intervals.
		var commitTs uint64
		for i := range c.keys {
			r := m.rec(c.keys[i])
			if c.writes[i] {
				if r.rts+1 > commitTs {
					commitTs = r.rts + 1
				}
			} else if a.obs[i] > commitTs {
				commitTs = a.obs[i]
			}
		}
		// Validate reads with extension.
		for i := range c.keys {
			if c.writes[i] {
				r := m.rec(c.keys[i])
				if r.wts != a.obs[i] || r.lockedUntil > s.now {
					m.abortOCC(core)
					return
				}
				continue
			}
			r := m.rec(c.keys[i])
			if a.obs2[i] >= commitTs {
				continue // observed interval already covers commitTs
			}
			if r.wts != a.obs[i] {
				m.abortOCC(core)
				return
			}
			if commitTs > r.rts {
				r.rts = commitTs // extension
			}
		}
		for i := range c.keys {
			if !c.writes[i] {
				continue
			}
			r := m.rec(c.keys[i])
			r.wts, r.rts = commitTs, commitTs
			r.version++
			r.lockedUntil = end
		}
	} else {
		for i := range c.keys {
			r := m.rec(c.keys[i])
			if r.lockedUntil > s.now {
				m.abortOCC(core)
				return
			}
			if r.version != a.obs[i] {
				m.abortOCC(core)
				return
			}
		}
		for i := range c.keys {
			if !c.writes[i] {
				continue
			}
			r := m.rec(c.keys[i])
			r.version++
			r.lockedUntil = end
		}
	}
	a.reset()
	s.commitTxn(core, end)
}

func (m *model) abortOCC(core int) {
	m.att[core].reset()
	m.s.abortTxn(core, m.s.now)
}

// ---- deadline expiry ----

// expireIfParked implements the fired deadline check: a core still parked
// under the same wait generation is expired; anything else is stale.
func (m *model) expireIfParked(core int, gen uint64) {
	a := &m.att[core]
	if !a.parked || a.waitGen != gen {
		return
	}
	m.expire(core, m.s.now)
}

// expire abandons core's in-flight transaction at time t: protocol state is
// released exactly as for an abort — parked cores are removed from their
// waiter queue first — but nothing is retried; the deadline has passed, so
// the core reports a deadline abort and moves on.
func (m *model) expire(core int, t uint64) {
	c := &m.s.cores[core]
	a := &m.att[core]
	switch m.cfg.Protocol {
	case "NO_WAIT", "WAIT_DIE", "DL_DETECT":
		if a.parked {
			r := m.rec(a.waitKey)
			for i, w := range r.waiters {
				if w.core == core {
					r.waiters = append(r.waiters[:i], r.waiters[i+1:]...)
					break
				}
			}
		}
		m.releaseAllLocks(core, t)
	case "TIMESTAMP", "MVCC":
		for _, key := range a.heldKeys {
			r := m.rec(key)
			if r.pending == c.ts {
				r.pending = 0
			}
		}
		c.ts = 0
	case "HSTORE":
		if a.parked {
			ps := &m.parts[a.waitPart]
			for i, w := range ps.waiters {
				if w == core {
					ps.waiters = append(ps.waiters[:i], ps.waiters[i+1:]...)
					break
				}
			}
		}
		m.releaseParts(core, t)
	}
	a.reset()
	m.s.deadlineAbort(core, t)
}

// ---- HSTORE ----

func (m *model) stepHStore(core int) {
	s := m.s
	c := &s.cores[core]
	a := &m.att[core]

	// Acquire partitions in ascending order, blocking on busy ones.
	if a.partsHeld < len(c.parts) {
		sorted := append([]int(nil), c.parts...)
		sort.Ints(sorted)
		p := sorted[a.partsHeld]
		ps := &m.parts[p]
		if ps.owner == core {
			a.partsHeld++
			s.schedule(core, s.now)
			return
		}
		if ps.owner == -1 {
			ps.owner = core
			a.partsHeld++
			s.schedule(core, s.now)
			return
		}
		ps.waiters = append(ps.waiters, core)
		m.park(core, 0, p)
		return
	}

	if a.pc < len(c.keys) {
		// Partition-locked execution has no per-record CC work: cheaper
		// accesses.
		a.pc++
		s.schedule(core, s.now+m.cfg.Costs.Access*3/4)
		return
	}

	end := s.now + m.cfg.Costs.CommitPerOp
	m.releaseParts(core, end)
	a.reset()
	s.commitTxn(core, end)
}

// releaseParts drops every partition core holds at time t, handing each to
// its next queued waiter.
func (m *model) releaseParts(core int, t uint64) {
	c := &m.s.cores[core]
	for _, p := range c.parts {
		ps := &m.parts[p]
		if ps.owner != core {
			continue
		}
		ps.owner = -1
		if len(ps.waiters) > 0 {
			next := ps.waiters[0]
			ps.waiters = ps.waiters[1:]
			ps.owner = next
			m.att[next].partsHeld++
			m.att[next].parked = false
			m.s.schedule(next, t)
		}
	}
}

package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"next700/internal/xrand"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	if h.Percentile(50) != 0 {
		t.Fatal("empty percentile not zero")
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram()
	h.Record(1234)
	if h.Count() != 1 || h.Min() != 1234 || h.Max() != 1234 {
		t.Fatalf("bad single-value stats: %+v", h.Summarize())
	}
	for _, p := range []float64{0, 50, 99, 100} {
		if v := h.Percentile(p); v != 1234 {
			t.Fatalf("p%v = %d, want 1234", p, v)
		}
	}
	if h.Mean() != 1234 {
		t.Fatalf("mean %v", h.Mean())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatal("negative not clamped")
	}
}

func TestBucketMonotonic(t *testing.T) {
	prev := -1
	for v := int64(0); v < 1<<20; v += 97 {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucket not monotonic at %d: %d < %d", v, b, prev)
		}
		prev = b
	}
}

func TestBucketLowInverse(t *testing.T) {
	err := quick.Check(func(raw uint32) bool {
		v := int64(raw)
		idx := bucketOf(v)
		lo := bucketLow(idx)
		// lo must be <= v and map to the same bucket.
		return lo <= v && bucketOf(lo) == idx
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPercentileAccuracy(t *testing.T) {
	// Record uniform values and check percentile error bound (~7%).
	h := NewHistogram()
	rng := xrand.New(1)
	const n = 200000
	for i := 0; i < n; i++ {
		h.Record(int64(rng.Uint64n(1_000_000)))
	}
	for _, p := range []float64{10, 50, 90, 99} {
		got := float64(h.Percentile(p))
		want := p / 100 * 1_000_000
		if math.Abs(got-want)/want > 0.08 {
			t.Fatalf("p%v = %v, want ~%v", p, got, want)
		}
	}
}

func TestPercentileOrdering(t *testing.T) {
	h := NewHistogram()
	rng := xrand.New(2)
	for i := 0; i < 10000; i++ {
		h.Record(int64(rng.Uint64n(1 << 30)))
	}
	prev := int64(-1)
	for _, p := range []float64{0, 10, 50, 90, 99, 99.9, 100} {
		v := h.Percentile(p)
		if v < prev {
			t.Fatalf("percentiles not monotone at p%v: %d < %d", p, v, prev)
		}
		prev = v
	}
	if h.Percentile(100) != h.Max() || h.Percentile(0) != h.Min() {
		t.Fatal("extreme percentiles must equal min/max")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b, all := NewHistogram(), NewHistogram(), NewHistogram()
	rng := xrand.New(3)
	for i := 0; i < 5000; i++ {
		v := int64(rng.Uint64n(1 << 22))
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		all.Record(v)
	}
	a.Merge(b)
	a.Merge(nil)
	a.Merge(NewHistogram())
	if a.Count() != all.Count() || a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatalf("merge mismatch: %+v vs %+v", a.Summarize(), all.Summarize())
	}
	if a.Percentile(50) != all.Percentile(50) {
		t.Fatal("merged median differs from combined")
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-6 {
		t.Fatal("merged mean differs")
	}
}

func TestMergeIntoEmpty(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	b.Record(7)
	b.Record(1000)
	a.Merge(b)
	if a.Min() != 7 || a.Max() != 1000 || a.Count() != 2 {
		t.Fatalf("merge into empty: %+v", a.Summarize())
	}
}

func TestRecordDuration(t *testing.T) {
	h := NewHistogram()
	h.RecordDuration(3 * time.Millisecond)
	if h.Max() != int64(3*time.Millisecond) {
		t.Fatal("duration not recorded in ns")
	}
}

func TestSummaryString(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Record(int64(i) * 1000)
	}
	s := h.Summarize().String()
	if !strings.Contains(s, "n=100") {
		t.Fatalf("summary string missing count: %s", s)
	}
}

func TestCounter(t *testing.T) {
	var a, b Counter
	a.Commits, a.Aborts, a.Reads = 10, 5, 100
	b.Commits, b.Aborts, b.Writes, b.Waits = 2, 1, 7, 3
	a.Add(&b)
	if a.Commits != 12 || a.Aborts != 6 || a.Reads != 100 || a.Writes != 7 || a.Waits != 3 {
		t.Fatalf("counter add wrong: %+v", a)
	}
	if got := a.AbortRate(); math.Abs(got-6.0/18.0) > 1e-9 {
		t.Fatalf("abort rate %v", got)
	}
	var empty Counter
	if empty.AbortRate() != 0 {
		t.Fatal("empty abort rate must be 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("scheme", "tps", "abort")
	tb.AddRow("SILO", 123456.0, 0.0123)
	tb.AddRow("2PL_NOWAIT", 98765.4, 0.5)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "scheme") || !strings.Contains(lines[0], "tps") {
		t.Fatalf("bad header: %s", lines[0])
	}
	if !strings.Contains(out, "123456") || !strings.Contains(out, "0.012") {
		t.Fatalf("bad float formatting:\n%s", out)
	}
}

func TestTableSort(t *testing.T) {
	tb := NewTable("n", "v")
	tb.AddRow(10, "a")
	tb.AddRow(2, "b")
	tb.AddRow(33, "c")
	tb.SortRowsBy(0)
	out := tb.String()
	i2, i10, i33 := strings.Index(out, "2 "), strings.Index(out, "10 "), strings.Index(out, "33 ")
	if !(i2 < i10 && i10 < i33) {
		t.Fatalf("numeric sort failed:\n%s", out)
	}
}

func TestHistogramLargeValues(t *testing.T) {
	h := NewHistogram()
	big := int64(1) << 39
	h.Record(big)
	if h.Max() != big {
		t.Fatal("large value lost")
	}
	if p := h.Percentile(99); p != big {
		t.Fatalf("p99 of single large value: %d", p)
	}
}

// Package stats collects throughput and latency measurements for the engine
// and the simulator.
//
// Latency is recorded in a log-bucketed histogram (HDR-histogram style):
// constant-time inserts, bounded memory, and ~4% relative error on reported
// percentiles, which is ample for tail-latency experiments. Histograms are
// intentionally not thread-safe; each worker owns one and they are merged at
// the end of a run, which keeps the record path free of shared-cache traffic.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
	"unsafe"
)

// subBuckets is the number of linear sub-buckets per power-of-two bucket.
// 16 sub-buckets bound relative error at 1/16 ≈ 6.25% worst case, ~3% mean.
const subBuckets = 16

// maxBuckets covers values up to 2^40 (≈ 18 minutes in nanoseconds), far
// beyond any transaction latency we measure.
const maxBuckets = 40

// Histogram is a log-bucketed value histogram. The zero value is ready to
// use. Values are recorded as int64 (typically nanoseconds or simulated
// cycles); negative values are clamped to zero.
type Histogram struct {
	counts [maxBuckets * subBuckets]uint64
	n      uint64
	sum    float64
	min    int64
	max    int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxInt64}
}

func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subBuckets {
		return int(v)
	}
	// Position of the highest set bit determines the power-of-two bucket;
	// the next log2(subBuckets) bits pick the sub-bucket.
	hi := 63 - leadingZeros64(uint64(v))
	shift := hi - 4 // log2(subBuckets)
	idx := (hi-3)*subBuckets + int((uint64(v)>>uint(shift))&(subBuckets-1))
	if idx >= len([maxBuckets * subBuckets]uint64{}) {
		idx = maxBuckets*subBuckets - 1
	}
	return idx
}

// bucketLow returns the smallest value that maps to bucket idx; used to
// reconstruct percentile values.
func bucketLow(idx int) int64 {
	if idx < subBuckets {
		return int64(idx)
	}
	hi := idx/subBuckets + 3
	sub := idx % subBuckets
	shift := hi - 4
	return (1 << uint(hi)) | int64(sub)<<uint(shift)
}

func leadingZeros64(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// Record adds a single observation.
//
//next700:hotpath
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if h.n == 0 {
		h.min = v
		h.max = v
	} else {
		if v < h.min {
			h.min = v
		}
		if v > h.max {
			h.max = v
		}
	}
	h.counts[bucketOf(v)]++
	h.n++
	h.sum += float64(v)
}

// RecordDuration adds a duration observation in nanoseconds.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// Merge adds all observations from other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.n == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.n == 0 {
		h.min = other.min
		h.max = other.max
	} else {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
	h.n += other.n
	h.sum += other.sum
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.n }

// Mean returns the arithmetic mean of observations, or 0 if empty.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min returns the smallest recorded value, or 0 if empty.
func (h *Histogram) Min() int64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value, or 0 if empty.
func (h *Histogram) Max() int64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Percentile returns an approximation of the p-th percentile (p in [0,100]).
// The exact min and max are returned at the extremes.
func (h *Histogram) Percentile(p float64) int64 {
	if h.n == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	target := uint64(math.Ceil(float64(h.n) * p / 100.0))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			v := bucketLow(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Summary holds the standard latency digest reported by experiments.
type Summary struct {
	Count         uint64
	Mean          float64
	Min, Max      int64
	P50, P90, P99 int64
	P999          int64
}

// Summarize computes the standard digest.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.n,
		Mean:  h.Mean(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Percentile(50),
		P90:   h.Percentile(90),
		P99:   h.Percentile(99),
		P999:  h.Percentile(99.9),
	}
}

// String renders the digest with duration formatting.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%s p50=%s p90=%s p99=%s p99.9=%s max=%s",
		s.Count,
		time.Duration(s.Mean).Round(time.Microsecond),
		time.Duration(s.P50), time.Duration(s.P90),
		time.Duration(s.P99), time.Duration(s.P999), time.Duration(s.Max))
}

// Counter is a plain accumulating counter for per-worker bookkeeping. It is
// not thread-safe by design: one per worker, merged at the end.
type Counter struct {
	Commits uint64
	// Aborts counts transient (conflict) aborts: attempts the retry loop
	// rolled back and re-executed. The non-retried classes are accounted
	// separately below so runs can tell contention from failure.
	Aborts      uint64
	UserAborts  uint64 // aborts requested by the transaction body itself
	FatalAborts uint64 // non-retryable failures surfaced through Run (log death, application errors)
	// DeadlineAborts counts transactions terminated because their deadline
	// expired — while queued, blocked on a lock or durability wait, or in
	// retry backoff — without committing.
	DeadlineAborts uint64
	// ShedAborts counts transactions rejected by admission control before
	// execution (queue-deadline or concurrency-limit shedding).
	ShedAborts uint64
	// PartitionAborts counts transactions terminally aborted because they
	// touched a quarantined partition (core.ErrPartitionUnavailable) while
	// the engine degraded around a partition fault.
	PartitionAborts uint64
	Reads           uint64
	Writes          uint64
	Inserts         uint64
	Deletes         uint64
	Scans           uint64
	Waits           uint64 // lock waits observed
}

// Add merges other into c.
func (c *Counter) Add(other *Counter) {
	c.Commits += other.Commits
	c.Aborts += other.Aborts
	c.UserAborts += other.UserAborts
	c.FatalAborts += other.FatalAborts
	c.DeadlineAborts += other.DeadlineAborts
	c.ShedAborts += other.ShedAborts
	c.PartitionAborts += other.PartitionAborts
	c.Reads += other.Reads
	c.Writes += other.Writes
	c.Inserts += other.Inserts
	c.Deletes += other.Deletes
	c.Scans += other.Scans
	c.Waits += other.Waits
}

// AbortRate returns aborts per attempted transaction (aborts may exceed
// commits under heavy contention because a transaction can abort many times
// before committing).
func (c *Counter) AbortRate() float64 {
	attempts := c.Commits + c.Aborts
	if attempts == 0 {
		return 0
	}
	return float64(c.Aborts) / float64(attempts)
}

// counterAlign pads each per-worker counter slot out to a multiple of 128
// bytes: two cache lines, so the adjacent-line prefetcher cannot induce
// false sharing between neighboring workers either.
const counterAlign = 128

// counterPad is the padding needed to round Counter up to counterAlign.
const counterPad = (counterAlign - unsafe.Sizeof(Counter{})%counterAlign) % counterAlign

// paddedCounter is a Counter that owns its cache lines.
//
//next700:cachepad(128)
type paddedCounter struct {
	Counter
	_ [counterPad]byte
}

// CounterSet is a fixed array of cache-line-padded per-worker counters.
// Each worker increments only its own slot (no atomics, no shared lines on
// the transaction hot path); totals are aggregated only at report time.
type CounterSet struct {
	slots []paddedCounter
}

// NewCounterSet creates a set with n padded slots (min 1).
func NewCounterSet(n int) *CounterSet {
	if n < 1 {
		n = 1
	}
	return &CounterSet{slots: make([]paddedCounter, n)}
}

// Len returns the number of slots.
func (s *CounterSet) Len() int { return len(s.slots) }

// Slot returns worker i's counter. The slot is not thread-safe; it must be
// incremented only by the worker that owns it.
//
//next700:hotpath
func (s *CounterSet) Slot(i int) *Counter {
	return &s.slots[i].Counter
}

// Total aggregates all slots. Safe to call from a coordinator while workers
// run, with the usual torn-read caveat of unsynchronized counters: totals
// are exact only after the workers have stopped.
func (s *CounterSet) Total() Counter {
	var total Counter
	for i := range s.slots {
		total.Add(&s.slots[i].Counter)
	}
	return total
}

// Reset zeroes every slot.
func (s *CounterSet) Reset() {
	for i := range s.slots {
		s.slots[i].Counter = Counter{}
	}
}

// Table is a minimal fixed-column text table used by the harness to print
// experiment results in the shape of the paper's tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, hdr := range t.header {
		widths[i] = len(hdr)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// SortRowsBy sorts rows by the given column index, numerically when both
// cells parse as numbers and lexicographically otherwise.
func (t *Table) SortRowsBy(col int) {
	sort.SliceStable(t.rows, func(i, j int) bool {
		a, b := t.rows[i][col], t.rows[j][col]
		var fa, fb float64
		na, errA := fmt.Sscanf(a, "%g", &fa)
		nb, errB := fmt.Sscanf(b, "%g", &fb)
		if na == 1 && nb == 1 && errA == nil && errB == nil {
			return fa < fb
		}
		return a < b
	})
}

package txn

import (
	"errors"
	"sync"
	"testing"

	"next700/internal/storage"
	"next700/internal/xrand"
)

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindRead: "read", KindWrite: "write", KindInsert: "insert",
		KindDelete: "delete", Kind(9): "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q want %q", k, k.String(), s)
		}
	}
}

func TestBufBumpAllocation(t *testing.T) {
	tx := NewTxn(0, xrand.New(1), nil)
	a := tx.Buf(100)
	b := tx.Buf(100)
	if len(a) != 100 || len(b) != 100 {
		t.Fatal("wrong sizes")
	}
	a[0], b[0] = 1, 2
	if a[0] != 1 {
		t.Fatal("buffers overlap")
	}
	// Capacity is clamped so append cannot bleed into the next buffer.
	if cap(a) != 100 {
		t.Fatalf("cap %d", cap(a))
	}
}

func TestBufGrowth(t *testing.T) {
	tx := NewTxn(0, xrand.New(1), nil)
	small := tx.Buf(10)
	small[0] = 42
	big := tx.Buf(1 << 20) // force arena growth
	if len(big) != 1<<20 {
		t.Fatal("big buf wrong size")
	}
	if small[0] != 42 {
		t.Fatal("old buffer invalidated by growth")
	}
	huge := tx.Buf(5 << 20)
	if len(huge) != 5<<20 {
		t.Fatal("huge buf wrong size")
	}
}

func TestResetReusesArena(t *testing.T) {
	tx := NewTxn(0, xrand.New(1), nil)
	first := tx.Buf(64)
	first[0] = 7
	tx.Accesses = append(tx.Accesses, Access{Kind: KindWrite})
	tx.ID, tx.Epoch = 5, 3
	tx.Priority = 9
	tx.Reset()
	if tx.ID != 0 || tx.Epoch != 0 || len(tx.Accesses) != 0 {
		t.Fatal("reset incomplete")
	}
	if tx.Priority != 9 {
		t.Fatal("reset must preserve priority for retries")
	}
	second := tx.Buf(64)
	if &second[0] != &first[0] {
		t.Fatal("arena not reused after reset")
	}
	tx.ClearPriority()
	if tx.Priority != 0 {
		t.Fatal("ClearPriority failed")
	}
}

func TestFindWrite(t *testing.T) {
	s := storage.MustSchema("t", storage.I64("v"))
	tblA := storage.NewTable(s, 0)
	tblB := storage.NewTable(s, 1)
	tx := NewTxn(0, xrand.New(1), nil)
	tx.Accesses = append(tx.Accesses,
		Access{Table: tblA, RID: 1, Kind: KindRead},
		Access{Table: tblA, RID: 1, Kind: KindWrite, Obs: 1},
		Access{Table: tblB, RID: 1, Kind: KindWrite, Obs: 2},
		Access{Table: tblA, RID: 1, Kind: KindWrite, Obs: 3},
	)
	got := tx.FindWrite(tblA, 1)
	if got == nil || got.Obs != 3 {
		t.Fatalf("FindWrite returned %+v, want latest write", got)
	}
	if tx.FindWrite(tblA, 2) != nil {
		t.Fatal("FindWrite invented an entry")
	}
	if tx.FindWrite(tblB, 1).Obs != 2 {
		t.Fatal("FindWrite wrong table")
	}
}

func TestHasWrites(t *testing.T) {
	tx := NewTxn(0, xrand.New(1), nil)
	if tx.HasWrites() {
		t.Fatal("empty txn has writes")
	}
	tx.Accesses = append(tx.Accesses, Access{Kind: KindRead})
	if tx.HasWrites() {
		t.Fatal("read-only txn has writes")
	}
	tx.Accesses = append(tx.Accesses, Access{Kind: KindDelete})
	if !tx.HasWrites() {
		t.Fatal("delete not seen as write")
	}
}

func TestTimestampSourceUniqueMonotone(t *testing.T) {
	var ts TimestampSource
	const workers, per = 8, 10000
	out := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := make([]uint64, per)
			for i := range mine {
				mine[i] = ts.Next()
			}
			out[w] = mine
		}(w)
	}
	wg.Wait()
	seen := make(map[uint64]bool, workers*per)
	for _, batch := range out {
		prev := uint64(0)
		for _, v := range batch {
			if v == 0 {
				t.Fatal("timestamp 0 issued")
			}
			if v <= prev {
				t.Fatal("per-thread timestamps not increasing")
			}
			prev = v
			if seen[v] {
				t.Fatalf("duplicate timestamp %d", v)
			}
			seen[v] = true
		}
	}
	if ts.Last() != workers*per {
		t.Fatalf("Last() = %d", ts.Last())
	}
}

func TestEpoch(t *testing.T) {
	ep := NewEpoch()
	if ep.Now() != 1 {
		t.Fatalf("initial epoch %d", ep.Now())
	}
	if ep.Advance() != 2 || ep.Now() != 2 {
		t.Fatal("advance broken")
	}
}

func TestErrorsAreDistinct(t *testing.T) {
	errs := []error{ErrConflict, ErrUserAbort, ErrNotFound, ErrDuplicate}
	for i, a := range errs {
		for j, b := range errs {
			if (i == j) != errors.Is(a, b) {
				t.Fatalf("error identity wrong between %v and %v", a, b)
			}
		}
	}
}

// Package txn defines the transaction runtime shared by every concurrency
// control protocol: the transaction descriptor with its ordered access set,
// a per-transaction bump allocator for row images, timestamp and epoch
// sources, and the abort/conflict error taxonomy.
//
// A single descriptor type serves all protocols. Protocol-specific state is
// carried in two scratch words per access (Obs/Obs2) and a per-descriptor
// scratch pointer, so descriptors are pooled and reused across protocols
// without allocation on the hot path.
package txn

import (
	"errors"
	"sync/atomic"
	"time"

	"next700/internal/stats"
	"next700/internal/storage"
	"next700/internal/xrand"
)

// ErrConflict is returned (wrapped or bare) by protocol operations when the
// transaction must abort due to a serializability conflict. The engine
// treats it as retryable.
var ErrConflict = errors.New("txn: conflict, transaction aborted")

// ErrUserAbort is returned when the transaction body itself requested an
// abort. It is not retried.
var ErrUserAbort = errors.New("txn: aborted by user")

// ErrNotFound is returned by reads of keys that do not exist. It is not
// retried.
var ErrNotFound = errors.New("txn: key not found")

// ErrDeadlineExceeded is returned when a transaction's deadline expires
// while it is blocked (lock wait, durability wait, retry backoff) or before
// an attempt can start. It is terminal: retrying cannot recover the budget.
var ErrDeadlineExceeded = errors.New("txn: deadline exceeded")

// ErrDuplicate is returned by inserts of keys that already exist. It is not
// retried.
var ErrDuplicate = errors.New("txn: duplicate key")

// Kind classifies an entry in a transaction's access set.
type Kind uint8

const (
	// KindRead is a committed-data read.
	KindRead Kind = iota
	// KindWrite is an update buffered in the write set.
	KindWrite
	// KindInsert is a new row, published in indexes at access time and made
	// visible at commit.
	KindInsert
	// KindDelete is a tombstone applied at commit.
	KindDelete
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindRead:
		return "read"
	case KindWrite:
		return "write"
	case KindInsert:
		return "insert"
	case KindDelete:
		return "delete"
	default:
		return "unknown"
	}
}

// Access is one entry of the ordered access set.
type Access struct {
	Table *storage.Table
	RID   storage.RecordID
	Kind  Kind
	// Key is the primary-index key for inserts/deletes so commit/abort can
	// publish or retract index entries.
	Key uint64
	// Data is the transaction-local row image for writes and inserts; it
	// points into the descriptor's arena.
	Data []byte
	// Obs and Obs2 are protocol scratch words (observed TID for Silo, wts
	// and rts for TicToc, version pointer for MVCC, lock mode for 2PL...).
	Obs  uint64
	Obs2 uint64
}

// Txn is a transaction descriptor. Descriptors belong to a single worker
// and are reset and reused between transactions.
type Txn struct {
	// ID is the protocol-assigned identity (timestamp for TO/MVCC/wait-die,
	// TID for Silo, 0 until commit for pure OCC schemes that assign late).
	ID uint64
	// Priority is a monotone per-transaction stamp assigned at Begin and
	// stable across retries of the same logical transaction, so wait-die
	// style age-based victim selection is starvation-free.
	Priority uint64
	// ThreadID is the worker slot executing this transaction.
	ThreadID int
	// Epoch is the Silo epoch observed at Begin.
	Epoch uint64
	// Deadline is the absolute wall-clock deadline in Unix nanoseconds
	// (0 = none). It survives Reset so every retry of the same logical
	// transaction charges against one budget; protocols consult it before
	// blocking and the engine's retry loop charges backoff sleeps to it.
	// A plain int64 rather than a context.Context keeps the hot path
	// allocation- and interface-free.
	Deadline int64

	// Accesses is the ordered access set.
	Accesses []Access

	// Counter accumulates per-worker statistics.
	Counter *stats.Counter
	// RNG is the worker-local random source for transaction bodies.
	RNG *xrand.RNG

	// Scratch is per-protocol descriptor state (e.g. the MVCC read view).
	Scratch interface{}

	arena    []byte
	arenaOff int
	writeIdx []int
}

// NewTxn returns a descriptor with a private arena.
func NewTxn(threadID int, rng *xrand.RNG, counter *stats.Counter) *Txn {
	return &Txn{
		ThreadID: threadID,
		RNG:      rng,
		Counter:  counter,
		Accesses: make([]Access, 0, 64),
		arena:    make([]byte, 16*1024),
	}
}

// Reset prepares the descriptor for a fresh transaction attempt. Priority is
// preserved (retries keep their age); call ClearPriority between logical
// transactions.
func (t *Txn) Reset() {
	t.ID = 0
	t.Epoch = 0
	t.Accesses = t.Accesses[:0]
	t.arenaOff = 0
}

// ClearPriority forgets the wait-die age stamp; the next Begin assigns a
// fresh one.
func (t *Txn) ClearPriority() { t.Priority = 0 }

// Expired reports whether the transaction's deadline has passed. The clock
// is read only when a deadline is set, so deadline-free transactions pay a
// single predictable branch.
func (t *Txn) Expired() bool {
	return t.Deadline != 0 && time.Now().UnixNano() >= t.Deadline
}

// Buf bump-allocates n bytes from the descriptor arena, growing it if
// needed. The memory is valid until Reset.
func (t *Txn) Buf(n int) []byte {
	if t.arenaOff+n > len(t.arena) {
		// Grow by doubling; the old arena stays referenced by earlier
		// accesses until Reset, which is fine — it is garbage afterwards.
		size := 2 * len(t.arena)
		for size < n {
			size *= 2
		}
		t.arena = make([]byte, size) //next700:allowalloc(arena growth is amortized by doubling; the steady state reuses retained capacity)
		t.arenaOff = 0
	}
	b := t.arena[t.arenaOff : t.arenaOff+n : t.arenaOff+n]
	t.arenaOff += n
	return b
}

// AddAccess appends an entry to the access set and returns a pointer to it
// (stable only until the next AddAccess).
//
//next700:hotpath
func (t *Txn) AddAccess(a Access) *Txn {
	t.Accesses = append(t.Accesses, a)
	return t
}

// FindWrite returns the latest write-set entry (write, insert or delete) for
// (table, rid), or nil. Used for own-write visibility.
func (t *Txn) FindWrite(table *storage.Table, rid storage.RecordID) *Access {
	for i := len(t.Accesses) - 1; i >= 0; i-- {
		a := &t.Accesses[i]
		if a.Table == table && a.RID == rid && a.Kind != KindRead {
			return a
		}
	}
	return nil
}

// SortedWriteIndices returns the indices of the non-read accesses sorted by
// (table id, rid) — the canonical deadlock-free lock acquisition order used
// by OCC commit phases. The returned slice is descriptor-owned scratch,
// valid until the next call; capacity is retained across transactions so the
// steady state allocates nothing.
//
//next700:hotpath
func (t *Txn) SortedWriteIndices() []int {
	idxs := t.writeIdx[:0]
	for i := range t.Accesses {
		if t.Accesses[i].Kind != KindRead {
			idxs = append(idxs, i)
		}
	}
	// Insertion sort: write sets are small and this avoids the closure and
	// interface allocations of sort.Slice on the commit hot path.
	for i := 1; i < len(idxs); i++ {
		for j := i; j > 0 && writeOrderLess(&t.Accesses[idxs[j]], &t.Accesses[idxs[j-1]]); j-- {
			idxs[j], idxs[j-1] = idxs[j-1], idxs[j]
		}
	}
	t.writeIdx = idxs
	return idxs
}

func writeOrderLess(a, b *Access) bool {
	if a.Table.ID() != b.Table.ID() {
		return a.Table.ID() < b.Table.ID()
	}
	return a.RID < b.RID
}

// HasWrites reports whether the access set contains any mutation.
func (t *Txn) HasWrites() bool {
	for i := range t.Accesses {
		if t.Accesses[i].Kind != KindRead {
			return true
		}
	}
	return false
}

// TimestampSource hands out globally unique, monotonically increasing
// timestamps from a single atomic counter — the classic centralized
// allocator whose contention the many-core experiments quantify.
type TimestampSource struct {
	ctr atomic.Uint64
}

// Next returns the next timestamp (starting at 1; 0 means "none").
func (s *TimestampSource) Next() uint64 { return s.ctr.Add(1) }

// Last returns the most recently issued timestamp.
func (s *TimestampSource) Last() uint64 { return s.ctr.Load() }

// Epoch numbers for Silo-style protocols. The epoch advances either by an
// external ticker (engine-managed) or manually in tests. TIDs generated
// within an epoch are ordered only within that epoch, which is what makes
// Silo's commit protocol cheap.
type Epoch struct {
	e atomic.Uint64
}

// NewEpoch starts at epoch 1.
func NewEpoch() *Epoch {
	ep := &Epoch{}
	ep.e.Store(1)
	return ep
}

// Now returns the current epoch.
func (ep *Epoch) Now() uint64 { return ep.e.Load() }

// Advance bumps the epoch and returns the new value.
func (ep *Epoch) Advance() uint64 { return ep.e.Add(1) }
